type series = {
  label : string;
  points : (float * float) array;
  step : bool;
}

let series ?(step = false) label points = { label; points; step }

(* Nice ticks: largest of 1, 2, 5 x 10^k giving at most [max_ticks]
   intervals over [lo, hi].  Pure float arithmetic on finite inputs. *)
let ticks ~lo ~hi ~max_ticks =
  if not (Float.is_finite lo && Float.is_finite hi) || hi <= lo then [ lo ]
  else begin
    let span = hi -. lo in
    let raw = span /. float_of_int (max 1 max_ticks) in
    let mag = 10.0 ** Float.floor (log10 raw) in
    let norm = raw /. mag in
    let step =
      if norm <= 1.0 then mag
      else if norm <= 2.0 then 2.0 *. mag
      else if norm <= 5.0 then 5.0 *. mag
      else 10.0 *. mag
    in
    let first = Float.ceil (lo /. step) *. step in
    let rec collect t acc =
      if t > hi +. (step *. 1e-9) then List.rev acc
      else collect (t +. step) ((if Float.abs t < step *. 1e-9 then 0.0 else t) :: acc)
    in
    match collect first [] with [] -> [ lo ] | ts -> ts
  end

let finite_points s =
  Array.of_seq
    (Seq.filter
       (fun (x, y) -> Float.is_finite x && Float.is_finite y)
       (Array.to_seq s.points))

(* Pad a degenerate (empty-width) range so scaling stays well-defined:
   a constant series plots as a centered flat line, a single point as a
   centered marker. *)
let pad_range lo hi =
  if hi > lo then (lo, hi)
  else begin
    let pad = Float.max 1.0 (Float.abs lo *. 0.1) in
    (lo -. pad, hi +. pad)
  end

let margin_l = 64.0
let margin_r = 18.0
let margin_t = 34.0
let margin_b = 46.0

let tick_label v =
  (* Large magnitudes render as "12k" to keep the axis quiet. *)
  if Float.abs v >= 10_000.0 && Float.is_integer (v /. 100.0) then
    Svg.f (v /. 1000.0) ^ "k"
  else Svg.f v

let frame ~w ~h ~title ?x_label ?y_label () =
  let open Svg in
  [
    text_at ~x:(w /. 2.0) ~y:20.0
      ~attrs:
        [
          ("text-anchor", "middle"); ("font-size", "14"); ("fill", text_primary);
          ("font-weight", "bold");
        ]
      title;
  ]
  @ (match x_label with
    | Some l ->
        [
          text_at ~x:((margin_l +. (w -. margin_r)) /. 2.0) ~y:(h -. 8.0)
            ~attrs:
              [
                ("text-anchor", "middle"); ("font-size", "11");
                ("fill", text_secondary);
              ]
            l;
        ]
    | None -> [])
  @
  match y_label with
  | Some l ->
      [
        text_at ~x:14.0 ~y:((margin_t +. (h -. margin_b)) /. 2.0)
          ~attrs:
            [
              ("text-anchor", "middle"); ("font-size", "11");
              ("fill", text_secondary);
              ( "transform",
                Printf.sprintf "rotate(-90 %s %s)" (Svg.f 14.0)
                  (Svg.f ((margin_t +. (h -. margin_b)) /. 2.0)) );
            ]
          l;
      ]
  | None -> []

let render ?(w = 640.0) ?(h = 400.0) ?x_label ?y_label ?(y_from_zero = true)
    ~title series_list =
  let open Svg in
  let plots = List.map (fun s -> (s, finite_points s)) series_list in
  let all = List.concat_map (fun (_, p) -> Array.to_list p) plots in
  let x0 = margin_l and x1 = w -. margin_r in
  let y0 = h -. margin_b and y1 = margin_t in
  match all with
  | [] ->
      document ~w ~h ~title
        (frame ~w ~h ~title ?x_label ?y_label ()
        @ [
            rect ~x:x0 ~y:y1 ~w:(x1 -. x0) ~h:(y0 -. y1)
              ~attrs:[ ("fill", "none"); ("stroke", axis_color) ] ();
            text_at ~x:((x0 +. x1) /. 2.0) ~y:((y0 +. y1) /. 2.0)
              ~attrs:
                [
                  ("text-anchor", "middle"); ("font-size", "12");
                  ("fill", text_secondary);
                ]
              "no data";
          ])
  | _ ->
      let xs = List.map fst all and ys = List.map snd all in
      let xmin = List.fold_left Float.min Float.infinity xs in
      let xmax = List.fold_left Float.max Float.neg_infinity xs in
      let ymin = List.fold_left Float.min Float.infinity ys in
      let ymax = List.fold_left Float.max Float.neg_infinity ys in
      let ymin = if y_from_zero && ymin >= 0.0 then 0.0 else ymin in
      let xmin, xmax = pad_range xmin xmax in
      let ymin, ymax = pad_range ymin ymax in
      let sx x = x0 +. ((x -. xmin) /. (xmax -. xmin) *. (x1 -. x0)) in
      let sy y = y0 -. ((y -. ymin) /. (ymax -. ymin) *. (y0 -. y1)) in
      let xticks = ticks ~lo:xmin ~hi:xmax ~max_ticks:6 in
      let yticks = ticks ~lo:ymin ~hi:ymax ~max_ticks:6 in
      let grid =
        List.map
          (fun v ->
            line ~x1:(sx v) ~y1:y0 ~x2:(sx v) ~y2:y1
              ~attrs:[ ("stroke", grid_color) ] ())
          xticks
        @ List.map
            (fun v ->
              line ~x1:x0 ~y1:(sy v) ~x2:x1 ~y2:(sy v)
                ~attrs:[ ("stroke", grid_color) ] ())
            yticks
      in
      let axis_labels =
        List.map
          (fun v ->
            text_at ~x:(sx v) ~y:(y0 +. 16.0)
              ~attrs:
                [
                  ("text-anchor", "middle"); ("font-size", "10");
                  ("fill", text_secondary);
                ]
              (tick_label v))
          xticks
        @ List.map
            (fun v ->
              text_at ~x:(x0 -. 6.0) ~y:(sy v +. 3.5)
                ~attrs:
                  [
                    ("text-anchor", "end"); ("font-size", "10");
                    ("fill", text_secondary);
                  ]
                (tick_label v))
            yticks
      in
      let curves =
        List.concat
          (List.mapi
             (fun i (s, pts) ->
               if Array.length pts = 0 then []
               else begin
                 let color = series_color i in
                 let coords =
                   if s.step then begin
                     (* Staircase: hold y until the next sample's x. *)
                     let acc = ref [] in
                     Array.iteri
                       (fun j (x, y) ->
                         if j > 0 then begin
                           let _, py = pts.(j - 1) in
                           acc := (sx x, sy py) :: !acc
                         end;
                         acc := (sx x, sy y) :: !acc)
                       pts;
                     List.rev !acc
                   end
                   else
                     Array.to_list (Array.map (fun (x, y) -> (sx x, sy y)) pts)
                 in
                 let line_el =
                   if Array.length pts = 1 then []
                   else
                     [
                       polyline coords
                         ~attrs:
                           [
                             ("stroke", color); ("stroke-width", "2");
                             ("stroke-linejoin", "round");
                           ];
                     ]
                 in
                 let markers =
                   if Array.length pts <= 40 then
                     Array.to_list
                       (Array.map
                          (fun (x, y) ->
                            circle ~cx:(sx x) ~cy:(sy y) ~r:4.0
                              ~attrs:
                                [ ("fill", color); ("stroke", surface);
                                  ("stroke-width", "1") ]
                              ())
                          pts)
                   else []
                 in
                 line_el @ markers
               end)
             plots)
      in
      let legend =
        if List.length series_list < 2 then []
        else
          List.concat
            (List.mapi
               (fun i (s, _) ->
                 let ly = y1 +. 8.0 +. (float_of_int i *. 16.0) in
                 [
                   rect ~x:(x1 -. 130.0) ~y:(ly -. 8.0) ~w:10.0 ~h:10.0
                     ~attrs:[ ("fill", series_color i) ] ();
                   text_at ~x:(x1 -. 115.0) ~y:ly
                     ~attrs:
                       [ ("font-size", "11"); ("fill", text_primary) ]
                     s.label;
                 ])
               plots)
      in
      document ~w ~h ~title
        (grid
        @ [
            line ~x1:x0 ~y1:y0 ~x2:x1 ~y2:y0 ~attrs:[ ("stroke", axis_color) ] ();
            line ~x1:x0 ~y1:y0 ~x2:x0 ~y2:y1 ~attrs:[ ("stroke", axis_color) ] ();
          ]
        @ axis_labels
        @ frame ~w ~h ~title ?x_label ?y_label ()
        @ curves @ legend)

let hbars ?(w = 720.0) ?(log_x = false) ?x_label ~title bars =
  let open Svg in
  let n = List.length bars in
  let bar_h = 18.0 and gap = 8.0 in
  let label_w = 260.0 in
  let top = 34.0 in
  let h =
    top +. (float_of_int n *. (bar_h +. gap)) +. 40.0
  in
  let x0 = label_w and x1 = w -. 70.0 in
  let value v = if log_x then log10 (Float.max v 1.0) else Float.max v 0.0 in
  let vmax =
    List.fold_left (fun acc (_, v) -> Float.max acc (value v)) 1.0 bars
  in
  let sx v = x0 +. (value v /. vmax *. (x1 -. x0)) in
  let elements =
    List.concat
      (List.mapi
         (fun i (label, v) ->
           let y = top +. (float_of_int i *. (bar_h +. gap)) in
           [
             text_at ~x:(x0 -. 8.0) ~y:(y +. (bar_h /. 2.0) +. 3.5)
               ~attrs:
                 [
                   ("text-anchor", "end"); ("font-size", "11");
                   ("fill", text_primary);
                 ]
               label;
             rect ~x:x0 ~y ~w:(Float.max 1.0 (sx v -. x0)) ~h:bar_h
               ~attrs:[ ("fill", series_color 0); ("rx", "3") ] ();
             text_at ~x:(sx v +. 6.0) ~y:(y +. (bar_h /. 2.0) +. 3.5)
               ~attrs:[ ("font-size", "10"); ("fill", text_secondary) ]
               (Svg.f v);
           ])
         bars)
  in
  let footer =
    match x_label with
    | Some l ->
        [
          text_at ~x:((x0 +. x1) /. 2.0) ~y:(h -. 12.0)
            ~attrs:
              [
                ("text-anchor", "middle"); ("font-size", "11");
                ("fill", text_secondary);
              ]
            (if log_x then l ^ " (log scale)" else l);
        ]
    | None -> []
  in
  document ~w ~h ~title
    (text_at ~x:(w /. 2.0) ~y:20.0
       ~attrs:
         [
           ("text-anchor", "middle"); ("font-size", "14");
           ("fill", text_primary); ("font-weight", "bold");
         ]
       title
    :: elements
    @ footer)
