(** Deterministic SVG emission.

    The report subsystem commits its figures to the repository and CI
    regenerates them and fails on drift, so rendering must be a pure
    function of the input data: no timestamps, no locale-dependent
    formatting, no hash-order iteration.  This module is the only place
    that turns numbers into SVG text — every coordinate and length goes
    through {!f}, which formats with a fixed precision and a fixed
    trimming rule, so two runs over the same data emit identical bytes. *)

type t
(** An SVG fragment (element tree). *)

val f : float -> string
(** Deterministic number formatting: two decimals, trailing zeros (and a
    trailing dot) trimmed, [-0] normalized to [0].  Non-finite values
    render as ["0"] so malformed data can never emit an attribute SVG
    parsers reject; callers that care filter non-finite points first. *)

val el : string -> (string * string) list -> t list -> t
(** [el tag attrs children] — attributes are emitted in the given order;
    values are XML-escaped. *)

val text : string -> t
(** Character data (XML-escaped). *)

(** {2 Shape helpers}

    Thin wrappers over {!el}; [attrs] is appended after the geometric
    attributes, so callers can add [stroke], [fill], [class], … *)

val line :
  ?attrs:(string * string) list ->
  x1:float -> y1:float -> x2:float -> y2:float -> unit -> t

val rect :
  ?attrs:(string * string) list ->
  x:float -> y:float -> w:float -> h:float -> unit -> t

val circle :
  ?attrs:(string * string) list -> cx:float -> cy:float -> r:float -> unit -> t

val polyline : ?attrs:(string * string) list -> (float * float) list -> t
(** An open [fill:none] polyline through the points, in order. *)

val path : ?attrs:(string * string) list -> string -> t
(** [path d] — the caller builds [d] from {!f}-formatted numbers. *)

val text_at :
  ?attrs:(string * string) list -> x:float -> y:float -> string -> t
(** A [<text>] element at [(x, y)]. *)

val group : ?attrs:(string * string) list -> t list -> t

val document : w:float -> h:float -> ?title:string -> t list -> string
(** A complete standalone SVG document: XML declaration, [viewBox]
    [0 0 w h], a white-ish surface rectangle, an optional accessible
    [<title>], and the fragments.  Ends with a newline. *)

(** {2 Palette}

    The validated light-mode palette the figures share (see
    docs/REPORT.md): categorical hues are assigned in fixed slot order,
    never cycled per-chart; the sequential ramp is a single blue,
    light to dark. *)

val series_color : int -> string
(** Categorical slot [i] (0-based); indexes beyond the palette fold onto
    the last slot — callers should cap series counts instead. *)

val sequential : float -> string
(** [sequential v] with [v] clamped to [0..1]: 0 is the chart surface
    (reads as "near zero"), 1 the darkest step of the blue ramp.
    Piecewise-linear interpolation between fixed steps, computed in
    integer RGB so the result is deterministic. *)

val text_primary : string
val text_secondary : string
val grid_color : string
val axis_color : string
val surface : string
