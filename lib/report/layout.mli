(** Layered left-to-right rendering of gadget graphs as SVG.

    The figures in Section 3 of the paper are chains (Fig 3.1) and cycles
    (Fig 3.2) of gadgets: long horizontal paths with short parallel
    sections and, in the cyclic case, one feedback edge.  A general
    force-directed layout would be overkill and nondeterministic; a
    longest-path layering over the acyclic part of the graph is exact for
    this family and a reasonable default for any mostly-forward digraph.

    Feedback edges (edges that would close a cycle, found by a
    deterministic DFS in node/edge id order) are excluded from the
    layering and drawn as an arc routed below the diagram — for a gadget
    cycle this is precisely the stitch edge [e0]. *)

val render :
  ?w:float ->
  ?edge_color:(Aqt_graph.Digraph.edge -> string) ->
  ?edge_labels:bool ->
  ?node_labels:bool ->
  ?legend:(string * string) list ->
  title:string ->
  Aqt_graph.Digraph.t ->
  string
(** [render ~title g] is a complete SVG document.

    Nodes become dots with their {!Aqt_graph.Digraph.node_name} beneath
    (suppress with [node_labels:false]); edges become arrows with their
    label at the midpoint (suppress with [edge_labels:false]).
    [edge_color] maps each edge to a stroke color — default a neutral
    dark gray; use it to distinguish edge classes (e-paths, f-paths,
    shared edges).  [legend] adds color-swatch/label pairs in the top
    right.  [w] is a minimum width; the diagram widens as layers demand.

    Deterministic: layering, per-layer ordering and feedback-edge
    detection depend only on node/edge insertion ids, and every
    coordinate is formatted through {!Svg.f}. *)
