(** Line / step plots and bar charts as deterministic SVG.

    The inputs are plain [(x, y)] arrays — typically
    [Aqt_engine.Recorder.points]-shaped trajectories or columns parsed out
    of experiment tables — and the output is a complete SVG document
    (string).  Degenerate inputs are first-class: an empty series list, a
    series with no points, a constant series or a single point all render
    a valid figure instead of raising, because the report generator feeds
    this module with whatever a campaign journal happens to contain. *)

type series = {
  label : string;
  points : (float * float) array;
  step : bool;
      (** Render as a step (staircase) line — for counters sampled at
          intervals; [false] joins points directly. *)
}

val series : ?step:bool -> string -> (float * float) array -> series
(** [series label points] — [step] defaults to [false]. *)

val render :
  ?w:float ->
  ?h:float ->
  ?x_label:string ->
  ?y_label:string ->
  ?y_from_zero:bool ->
  title:string ->
  series list ->
  string
(** A complete SVG document: title, axes with nice ticks, a recessive
    grid, one polyline per series in fixed palette order, point markers
    when a series has few points, and a legend when there are at least
    two series.  Non-finite points are dropped; if nothing remains the
    frame renders with a "no data" note.  [y_from_zero] (default [true])
    anchors the y-axis at 0 when all values are non-negative. *)

val hbars :
  ?w:float ->
  ?log_x:bool ->
  ?x_label:string ->
  title:string ->
  (string * float) list ->
  string
(** Horizontal bars, one per labelled value, in input order; bar length
    on a linear or log10 axis ([log_x] default [false]; non-positive
    values clamp to the axis minimum).  Height grows with the number of
    bars.  Values are direct-labelled at the bar end. *)

val ticks : lo:float -> hi:float -> max_ticks:int -> float list
(** Nice tick positions (1-2-5 progression) covering [[lo, hi]]; exposed
    for tests.  Returns a single tick when the interval is empty. *)
