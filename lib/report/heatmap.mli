(** Matrix heatmaps (rows x columns) as deterministic SVG.

    Used for the spacetime view (edges x time, cell = buffer length) and
    the stability sweep (policies x injection rates, cell = max queue).
    Color is the single blue sequential ramp of {!Svg.sequential}; the
    lightest value recedes into the chart surface, so zero cells read as
    "nothing here". *)

val render :
  ?w:float ->
  ?log_scale:bool ->
  ?annot:string option array array ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  rows:string list ->
  cols:string list ->
  float array array ->
  string
(** [render ~title ~rows ~cols m] draws [m] (indexed [m.(row).(col)];
    ragged or empty rows are tolerated, missing cells render as the
    surface) with row labels on the left and column labels below.
    Minimum-value cells are not emitted at all (they would render as the
    surface), which keeps dense mostly-empty matrices small.
    Column labels are downsampled to at most 12 so dense time axes stay
    legible.  Values are normalized over the finite entries of the whole
    matrix; [log_scale] (default [false]) compresses via [log1p], for
    quantities like queue sizes that span orders of magnitude.  [annot]
    optionally overlays a short text on a cell (e.g. a verdict letter);
    annotation ink flips light/dark with the cell color, chosen by the
    same deterministic rule on every run.  A min/max color-bar legend is
    drawn above the matrix. *)
