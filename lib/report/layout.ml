module D = Aqt_graph.Digraph

(* Feedback edges by DFS from every root in node-id order, visiting
   out-edges in insertion order: an edge into a node currently on the
   stack closes a cycle.  For a gadget cycle this finds exactly [e0]. *)
let feedback_edges g =
  let n = D.n_nodes g in
  let state = Array.make n `White in
  let feedback = ref [] in
  let rec visit v =
    state.(v) <- `Gray;
    List.iter
      (fun eid ->
        let w = D.dst g eid in
        match state.(w) with
        | `Gray -> feedback := eid :: !feedback
        | `White -> visit w
        | `Black -> ())
      (D.out_edges g v);
    state.(v) <- `Black
  in
  for v = 0 to n - 1 do
    if state.(v) = `White then visit v
  done;
  List.rev !feedback

(* Longest-path layering over the forward (non-feedback) edges:
   layer v = 1 + max over forward in-edges of layer (src). *)
let layers g ~is_feedback =
  let n = D.n_nodes g in
  let layer = Array.make n (-1) in
  let rec compute v =
    if layer.(v) >= 0 then layer.(v)
    else begin
      (* Mark to cut (impossible) cycles among forward edges. *)
      layer.(v) <- 0;
      let l =
        List.fold_left
          (fun acc eid ->
            if is_feedback eid then acc
            else max acc (1 + compute (D.src g eid)))
          0 (D.in_edges g v)
      in
      layer.(v) <- l;
      l
    end
  in
  for v = 0 to n - 1 do
    ignore (compute v)
  done;
  layer

let arrow_head ~x ~y ~dx ~dy ~color =
  (* A small triangle with its tip at (x, y), pointing along (dx, dy). *)
  let len = Float.hypot dx dy in
  let len = if len <= 0.0 then 1.0 else len in
  let ux = dx /. len and uy = dy /. len in
  let px = -.uy and py = ux in
  let bx = x -. (ux *. 7.0) and by = y -. (uy *. 7.0) in
  let pt (px, py) = Svg.f px ^ "," ^ Svg.f py in
  Svg.el "polygon"
    [
      ( "points",
        String.concat " "
          [
            pt (x, y);
            pt (bx +. (px *. 3.0), by +. (py *. 3.0));
            pt (bx -. (px *. 3.0), by -. (py *. 3.0));
          ] );
      ("fill", color);
    ]
    []

let render ?(w = 640.0) ?edge_color ?(edge_labels = true) ?(node_labels = true)
    ?(legend = []) ~title g =
  let open Svg in
  let color_of =
    match edge_color with Some f -> f | None -> fun _ -> text_secondary
  in
  let fb = feedback_edges g in
  let is_feedback eid = List.mem eid fb in
  let layer = layers g ~is_feedback in
  let n_layers = 1 + Array.fold_left max 0 layer in
  let by_layer = Array.make n_layers [] in
  (* Iterate ids downward so each per-layer list ends up id-ascending. *)
  for v = D.n_nodes g - 1 downto 0 do
    by_layer.(layer.(v)) <- v :: by_layer.(layer.(v))
  done;
  let max_rows = Array.fold_left (fun a l -> max a (List.length l)) 1 by_layer in
  let margin_l = 36.0 and margin_r = 36.0 in
  let margin_t = 44.0 in
  let row_gap = 56.0 in
  let has_feedback = fb <> [] in
  let margin_b = (if has_feedback then 56.0 else 34.0) +. 10.0 in
  let dx =
    Float.max 52.0
      ((w -. margin_l -. margin_r) /. float_of_int (max 1 (n_layers - 1)))
  in
  let w = margin_l +. margin_r +. (dx *. float_of_int (max 1 (n_layers - 1))) in
  let h = margin_t +. margin_b +. (row_gap *. float_of_int (max 1 (max_rows - 1))) in
  let pos = Array.make (D.n_nodes g) (0.0, 0.0) in
  Array.iteri
    (fun l nodes ->
      let k = List.length nodes in
      let x = margin_l +. (dx *. float_of_int l) in
      (* Center the layer's rows vertically. *)
      let y_top =
        margin_t +. (row_gap *. float_of_int (max_rows - k) /. 2.0)
      in
      List.iteri
        (fun i v -> pos.(v) <- (x, y_top +. (row_gap *. float_of_int i)))
        nodes)
    by_layer;
  let node_r = 3.5 in
  let forward_edge eid =
    let e = D.edge g eid in
    let x1, y1 = pos.(e.D.src) and x2, y2 = pos.(e.D.dst) in
    let dxe = x2 -. x1 and dye = y2 -. y1 in
    let len = Float.hypot dxe dye in
    let len = if len <= 0.0 then 1.0 else len in
    let ux = dxe /. len and uy = dye /. len in
    (* Shorten to the node boundary at both ends. *)
    let sx = x1 +. (ux *. node_r) and sy = y1 +. (uy *. node_r) in
    let tx = x2 -. (ux *. (node_r +. 2.0)) and ty = y2 -. (uy *. (node_r +. 2.0)) in
    let color = color_of e in
    let label =
      if not edge_labels then []
      else begin
        let mx = (sx +. tx) /. 2.0 and my = (sy +. ty) /. 2.0 in
        (* Offset the label perpendicular to the edge, favoring "above". *)
        let ox = -.uy *. 9.0 and oy = Float.min (ux *. -9.0) (-6.0) in
        [
          text_at ~x:(mx +. ox) ~y:(my +. oy)
            ~attrs:
              [
                ("text-anchor", "middle"); ("font-size", "9");
                ("fill", text_secondary);
              ]
            (D.label g eid);
        ]
      end
    in
    line ~x1:sx ~y1:sy ~x2:tx ~y2:ty
      ~attrs:[ ("stroke", color); ("stroke-width", "1.5") ]
      ()
    :: arrow_head ~x:tx ~y:ty ~dx:ux ~dy:uy ~color
    :: label
  in
  let feedback_edge eid =
    let e = D.edge g eid in
    let x1, y1 = pos.(e.D.src) and x2, y2 = pos.(e.D.dst) in
    let y_arc = h -. 18.0 in
    let color = color_of e in
    let d =
      Printf.sprintf "M %s %s C %s %s, %s %s, %s %s" (Svg.f x1)
        (Svg.f (y1 +. node_r))
        (Svg.f x1) (Svg.f y_arc) (Svg.f x2) (Svg.f y_arc) (Svg.f x2)
        (Svg.f (y2 +. node_r +. 2.0))
    in
    let label =
      if not edge_labels then []
      else
        [
          text_at ~x:((x1 +. x2) /. 2.0) ~y:(y_arc -. 5.0)
            ~attrs:
              [
                ("text-anchor", "middle"); ("font-size", "9");
                ("fill", text_secondary);
              ]
            (D.label g eid);
        ]
    in
    path d ~attrs:[ ("stroke", color); ("stroke-width", "1.5"); ("fill", "none") ]
    :: arrow_head ~x:x2 ~y:(y2 +. node_r +. 2.0) ~dx:0.0 ~dy:(-1.0) ~color
    :: label
  in
  let edges_svg =
    List.concat
      (List.init (D.n_edges g) (fun eid ->
           if is_feedback eid then feedback_edge eid else forward_edge eid))
  in
  let nodes_svg =
    List.concat
      (List.init (D.n_nodes g) (fun v ->
           let x, y = pos.(v) in
           circle ~cx:x ~cy:y ~r:node_r
             ~attrs:
               [
                 ("fill", surface); ("stroke", text_primary);
                 ("stroke-width", "1.5");
               ]
             ()
           ::
           (if node_labels then
              [
                text_at ~x ~y:(y +. 15.0)
                  ~attrs:
                    [
                      ("text-anchor", "middle"); ("font-size", "8");
                      ("fill", text_secondary);
                    ]
                  (D.node_name g v);
              ]
            else [])))
  in
  let legend_svg =
    List.concat
      (List.mapi
         (fun i (color, lbl) ->
           let ly = 14.0 +. (float_of_int i *. 15.0) in
           [
             line ~x1:(w -. 120.0) ~y1:(ly -. 3.0) ~x2:(w -. 104.0)
               ~y2:(ly -. 3.0)
               ~attrs:[ ("stroke", color); ("stroke-width", "2.5") ]
               ();
             text_at ~x:(w -. 99.0) ~y:ly
               ~attrs:[ ("font-size", "10"); ("fill", text_primary) ]
               lbl;
           ])
         legend)
  in
  document ~w ~h ~title
    (text_at ~x:(w /. 2.0) ~y:22.0
       ~attrs:
         [
           ("text-anchor", "middle"); ("font-size", "14");
           ("fill", text_primary); ("font-weight", "bold");
         ]
       title
    :: (edges_svg @ nodes_svg @ legend_svg))
