module Ratio = Aqt_util.Ratio
module Registry = Aqt_harness.Registry
module Campaign = Aqt_harness.Campaign
module Journal = Aqt_harness.Journal
module Scheduler = Aqt_harness.Scheduler
module D = Aqt_graph.Digraph
module Build = Aqt_graph.Build
module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Spacetime = Aqt_engine.Spacetime
module Phased = Aqt_adversary.Phased
module Stock = Aqt_adversary.Stock
module Policies = Aqt_policy.Policies
module G = Aqt.Gadget

type ctx = {
  results : (string * Registry.result) list;
  trajectories : (string * (string * float) list list) list;
  bench : (string * float) list;
}

type figure = {
  id : string;
  title : string;
  caption : string;
  experiments : string list;
  render : ctx -> string;
}

(* ------------------------------------------------------------------ *)
(* Data access                                                         *)
(* ------------------------------------------------------------------ *)

let find_table ctx ~experiment ~id =
  match List.assoc_opt experiment ctx.results with
  | None -> None
  | Some r ->
      List.find_map
        (function
          | Registry.Table t when t.Registry.id = id -> Some t
          | _ -> None)
        r.Registry.items

(* Table cells are display strings; parse the shapes the experiment
   tables actually use: ints, floats, "a/b" ratios, "1.85x" growth
   factors, booleans.  Anything else becomes nan and the plot layer
   drops it. *)
let cell_float s =
  let s = String.trim s in
  let s =
    let l = String.length s in
    if l > 1 && s.[l - 1] = 'x' then String.sub s 0 (l - 1) else s
  in
  match String.index_opt s '/' with
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some a, Some b when b <> 0 -> float_of_int a /. float_of_int b
      | _ -> Float.nan)
  | None -> (
      match s with
      | "true" -> 1.0
      | "false" -> 0.0
      | _ -> Option.value (float_of_string_opt s) ~default:Float.nan)

let header_index (t : Registry.table) name =
  let rec go i = function
    | [] -> raise Not_found
    | h :: _ when h = name -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 t.Registry.headers

let column_s (t : Registry.table) name =
  let i = header_index t name in
  Array.of_list
    (List.map (fun row -> try List.nth row i with _ -> "") t.Registry.rows)

let column t name = Array.map cell_float (column_s t name)

let trajectory_points rows ~x ~y =
  Array.of_seq
    (Seq.filter_map
       (fun row ->
         match (List.assoc_opt x row, List.assoc_opt y row) with
         | Some xv, Some yv -> Some (xv, yv)
         | _ -> None)
       (List.to_seq rows))

let trajectory ctx experiment =
  Option.value (List.assoc_opt experiment ctx.trajectories) ~default:[]

(* ------------------------------------------------------------------ *)
(* Figure renders                                                      *)
(* ------------------------------------------------------------------ *)

(* Edge classes of a gadget graph, by label: e-paths carry the slow old
   flow, f-paths the fat extension, a_k are the shared edges, e0 is the
   cyclic stitch. *)
let gadget_edge_color (e : D.edge) =
  if e.D.label = "e0" then Svg.series_color 7
  else
    match if e.D.label = "" then ' ' else e.D.label.[0] with
    | 'e' -> Svg.series_color 0
    | 'f' -> Svg.series_color 1
    | _ -> Svg.text_primary

let gadget_legend ~cyclic =
  [
    (Svg.series_color 0, "e-path");
    (Svg.series_color 1, "f-path");
    (Svg.text_primary, "shared a_k");
  ]
  @ if cyclic then [ (Svg.series_color 7, "stitch e0") ] else []

let render_fig_3_1 _ =
  let g = G.chain ~n:4 ~m:2 () in
  Layout.render ~edge_color:gadget_edge_color ~legend:(gadget_legend ~cyclic:false)
    ~title:"Figure 3.1 - the gadget chain F(4)^2" g.G.graph

let render_fig_3_2 _ =
  let g = G.cyclic ~n:4 ~m:4 () in
  Layout.render ~edge_color:gadget_edge_color ~legend:(gadget_legend ~cyclic:true)
    ~node_labels:false ~title:"Figure 3.2 - the cyclic chain F(4)^4 + e0"
    g.G.graph

let render_e1_growth ctx =
  let title = "Theorem 3.17 - seed queue at the start of each cycle" in
  match find_table ctx ~experiment:"e1" ~id:"e1_thm_3_17" with
  | None -> Plot.render ~title []
  | Some t ->
      let eps = column_s t "eps" in
      let cycle = column t "cycle" and seed = column t "seed" in
      let groups = ref [] in
      Array.iteri
        (fun i e ->
          let pt = (cycle.(i), seed.(i)) in
          match List.assoc_opt e !groups with
          | Some pts -> pts := pt :: !pts
          | None -> groups := (e, ref [ pt ]) :: !groups)
        eps;
      let series =
        List.rev_map
          (fun (e, pts) ->
            Plot.series ("eps=" ^ e) (Array.of_list (List.rev !pts)))
          !groups
      in
      Plot.render ~x_label:"cycle" ~y_label:"seed queue (packets)" ~title
        series

let render_e2_pump ctx =
  let title = "Lemma 3.6 - pump growth, measured vs predicted" in
  match find_table ctx ~experiment:"e2" ~id:"e2_lemma_3_6" with
  | None -> Plot.render ~title []
  | Some t ->
      let s = column t "S before" in
      let measured = column t "measured S'/S" in
      let predicted = column t "predicted 2(1-R_n)" in
      let zip ys = Array.map2 (fun x y -> (x, y)) s ys in
      Plot.render ~x_label:"S (packets before the pump)"
        ~y_label:"growth factor S'/S" ~title
        [
          Plot.series "measured" (zip measured);
          Plot.series "predicted 2(1-R_n)" (zip predicted);
        ]

let render_trajectory ~experiment ~title ctx =
  let rows = trajectory ctx experiment in
  Plot.render ~x_label:"step" ~y_label:"packets" ~title
    [
      Plot.series ~step:true "in flight"
        (trajectory_points rows ~x:"t" ~y:"in_flight");
      Plot.series ~step:true "max queue"
        (trajectory_points rows ~x:"t" ~y:"max_queue");
    ]

let render_fluid_pump _ =
  let r = 0.7 and n = 9 and total_old = 2000 in
  let p = Aqt.Fluid.pump_profile ~r ~n ~total_old in
  let dur = float_of_int p.Aqt.Fluid.duration in
  let samples = 200 in
  let series_for i =
    Plot.series
      (Printf.sprintf "buffer e'_%d" i)
      (Array.init (samples + 1) (fun j ->
           let t = dur *. float_of_int j /. float_of_int samples in
           (t, Aqt.Fluid.queue_at p ~i ~t)))
  in
  Plot.render ~x_label:"time since phase start" ~y_label:"fluid queue size"
    ~title:"Claims 3.9-3.11 - fluid buffer trajectories during one pump"
    (List.map series_for [ 1; 3; 5; 7; 9 ])

let sweep_rates =
  [
    Ratio.make 1 8;
    Ratio.make 1 4;
    Ratio.make 1 2;
    Ratio.make 3 4;
    Ratio.make 7 8;
    Ratio.make 19 20;
  ]

let render_sweep _ =
  let k = 8 and d = 4 and horizon = 4_000 in
  let w = 40 in
  let ring = Build.ring k in
  let graph = ring.Build.graph in
  let routes =
    List.init k (fun i ->
        Array.init d (fun j -> ring.Build.edges.((i + j) mod k)))
  in
  let route_table = Aqt_engine.Route_intern.create () in
  let policies = Policies.all_deterministic in
  let matrix =
    Array.of_list
      (List.map
         (fun policy ->
           Array.of_list
             (List.map
                (fun rate ->
                  (* d routes cross every edge, so the legal per-route
                     rate divides by the overlap (as in experiment e15);
                     packed bursts make the (w, r) pressure visible. *)
                  let per_route = Ratio.div rate (Ratio.of_int d) in
                  let adv =
                    Stock.windowed_burst ~packed:true ~w ~rate:per_route
                      ~routes ~horizon ()
                  in
                  let report =
                    Aqt.Sweep.classify ~route_table ~name:"report-sweep" ~graph
                      ~policy ~adversary:adv ~horizon ()
                  in
                  ( float_of_int report.Aqt.Sweep.max_queue,
                    Aqt.Sweep.verdict_to_string report.Aqt.Sweep.verdict ))
                sweep_rates))
         policies)
  in
  let values = Array.map (Array.map fst) matrix in
  let annot =
    Array.map
      (Array.map (fun (_, v) ->
           Some (String.uppercase_ascii (String.sub v 0 1))))
      matrix
  in
  Heatmap.render ~log_scale:true ~annot
    ~x_label:"injection rate" ~y_label:"policy"
    ~title:"Stability sweep - ring(8), d=4: max queue by policy and rate"
    ~rows:(List.map (fun (p : Aqt_engine.Policy_type.t) -> p.name) policies)
    ~cols:(List.map Ratio.to_string sweep_rates)
    values

(* The capacity figures read the c1/c2 campaign tables: the drop-rate
   grid as a heatmap over (cap, s), and the per-discipline tradeoff
   curves.  Both experiments are deterministic seeded simulations, so
   the figures are as reproducible as the rest. *)
let render_capacity_heatmap ctx =
  let title = "C1 - drop rate by buffer size and link speedup" in
  match find_table ctx ~experiment:"c1" ~id:"c1_drop_grid" with
  | None -> Heatmap.render ~title ~rows:[] ~cols:[] [||]
  | Some t ->
      let s = column t "s" in
      let cap = column t "cap" in
      let dr = column t "drop_rate" in
      let uniq a = List.sort_uniq compare (Array.to_list a) in
      let ss = uniq s and caps = uniq cap in
      let idx l v =
        let rec go i = function
          | [] -> 0
          | x :: tl -> if x = v then i else go (i + 1) tl
        in
        go 0 l
      in
      let values =
        Array.make_matrix (List.length ss) (List.length caps) Float.nan
      in
      Array.iteri
        (fun i sv -> values.(idx ss sv).(idx caps cap.(i)) <- dr.(i))
        s;
      let annot =
        Array.map
          (Array.map (fun v ->
               if Float.is_nan v then None
               else if v = 0.0 then Some "0"
               else Some (Printf.sprintf "%.0f%%" (100. *. v))))
          values
      in
      Heatmap.render ~annot ~x_label:"buffer capacity per edge"
        ~y_label:"link speedup" ~title
        ~rows:(List.map (fun v -> Printf.sprintf "s=%.0f" v) ss)
        ~cols:(List.map (fun v -> Printf.sprintf "%.0f" v) caps)
        values

let render_capacity_tradeoff ctx =
  let title = "C2 - drop rate vs buffer budget, by drop discipline" in
  match find_table ctx ~experiment:"c2" ~id:"c2_policies" with
  | None -> Plot.render ~title []
  | Some t ->
      let disc = column_s t "discipline" in
      let cap = column t "cap" in
      let dr = column t "drop_rate" in
      let groups = ref [] in
      Array.iteri
        (fun i d ->
          let pt = (cap.(i), dr.(i)) in
          match List.assoc_opt d !groups with
          | Some pts -> pts := pt :: !pts
          | None -> groups := (d, ref [ pt ]) :: !groups)
        disc;
      let series =
        List.rev_map
          (fun (d, pts) -> Plot.series d (Array.of_list (List.rev !pts)))
          !groups
      in
      Plot.render ~x_label:"buffer budget (cap per edge; 8*cap shared)"
        ~y_label:"drop rate" ~title series

(* The adversary-family figures read the n1/n2 campaign tables
   (ring rows only; the gadget rows stay in the tables).  Sweep order
   is preserved from the experiment, so rho decreases down the rows
   and the knob grows along the columns. *)
let grid_of t ~graph ~row_col ~col_col ~cell_col =
  let g = column_s t "graph" in
  let rv = column_s t row_col in
  let cv = column_s t col_col in
  let cell = column t cell_col in
  let push l v = if not (List.mem v !l) then l := !l @ [ v ] in
  let rows = ref [] and cols = ref [] in
  Array.iteri
    (fun i gi ->
      if gi = graph then begin
        push rows rv.(i);
        push cols cv.(i)
      end)
    g;
  let idx l v =
    let rec go i = function
      | [] -> 0
      | x :: tl -> if x = v then i else go (i + 1) tl
    in
    go 0 l
  in
  let values =
    Array.make_matrix (List.length !rows) (List.length !cols) Float.nan
  in
  Array.iteri
    (fun i gi ->
      if gi = graph then
        values.(idx !rows rv.(i)).(idx !cols cv.(i)) <- cell.(i))
    g;
  (!rows, !cols, values)

let annot_count =
  Array.map
    (Array.map (fun v ->
         if Float.is_nan v then None else Some (Printf.sprintf "%.0f" v)))

let render_local_burst_heatmap ctx =
  let title = "N1 - locally bursty: peak queue over (rho, sigma_e)" in
  match find_table ctx ~experiment:"n1" ~id:"n1_local_grid" with
  | None -> Heatmap.render ~title ~rows:[] ~cols:[] [||]
  | Some t ->
      let rows, cols, values =
        grid_of t ~graph:"ring" ~row_col:"rho" ~col_col:"burst"
          ~cell_col:"max_queue"
      in
      Heatmap.render ~log_scale:true ~annot:(annot_count values)
        ~x_label:"per-flow burst allowance" ~y_label:"aggregate rate rho"
        ~title
        ~rows:(List.map (fun r -> "rho=" ^ r) rows)
        ~cols values

let render_feedback_heatmap ctx =
  let title = "N2 - feedback routing: reroutes over (rate, hot)" in
  match find_table ctx ~experiment:"n2" ~id:"n2_feedback_grid" with
  | None -> Heatmap.render ~title ~rows:[] ~cols:[] [||]
  | Some t ->
      let rows, cols, values =
        grid_of t ~graph:"ring" ~row_col:"rate" ~col_col:"hot"
          ~cell_col:"reroutes"
      in
      Heatmap.render ~annot:(annot_count values)
        ~x_label:"hot threshold (queue length that triggers a reroute)"
        ~y_label:"injection rate" ~title
        ~rows:(List.map (fun r -> "r=" ^ r) rows)
        ~cols values

(* The fabric figures read the fab1/fab2 campaign tables: the incast
   dwell curves split by policy (queue *sizes* are policy-invariant
   under work conservation, so the interesting signal is who waits),
   and the shared-DT drop-rate grid over (alpha, total). *)
let render_fabric_incast ctx =
  let title = "FAB1 - fat-tree incast: oldest-packet dwell by policy" in
  match find_table ctx ~experiment:"fab1" ~id:"fab1_incast" with
  | None -> Plot.render ~title []
  | Some t ->
      let policy = column_s t "policy" in
      let util = column t "util" in
      let dwell = column t "max_dwell" in
      let groups = ref [] in
      Array.iteri
        (fun i p ->
          let pt = (util.(i), dwell.(i)) in
          match List.assoc_opt p !groups with
          | Some pts -> pts := pt :: !pts
          | None -> groups := (p, ref [ pt ]) :: !groups)
        policy;
      let series =
        List.rev_map
          (fun (p, pts) -> Plot.series p (Array.of_list (List.rev !pts)))
          !groups
      in
      Plot.render ~x_label:"receiver-downlink utilisation"
        ~y_label:"max dwell (steps in flight)" ~title series

let render_fabric_dt ctx =
  let title = "FAB2 - shared-DT drop rate over (alpha, total slots)" in
  match find_table ctx ~experiment:"fab2" ~id:"fab2_dt_grid" with
  | None -> Heatmap.render ~title ~rows:[] ~cols:[] [||]
  | Some t ->
      let buffers = column_s t "buffers" in
      let alpha = column_s t "alpha" in
      let total = column_s t "total" in
      let dr = column t "drop_rate" in
      let push l v = if not (List.mem v !l) then l := !l @ [ v ] in
      let rows = ref [] and cols = ref [] in
      Array.iteri
        (fun i b ->
          if b = "shared-dt" then begin
            push rows alpha.(i);
            push cols total.(i)
          end)
        buffers;
      let idx l v =
        let rec go i = function
          | [] -> 0
          | x :: tl -> if x = v then i else go (i + 1) tl
        in
        go 0 l
      in
      let values =
        Array.make_matrix (List.length !rows) (List.length !cols) Float.nan
      in
      Array.iteri
        (fun i b ->
          if b = "shared-dt" then
            values.(idx !rows alpha.(i)).(idx !cols total.(i)) <- dr.(i))
        buffers;
      let annot =
        Array.map
          (Array.map (fun v ->
               if Float.is_nan v then None
               else if v = 0.0 then Some "0"
               else Some (Printf.sprintf "%.1f%%" (100. *. v))))
          values
      in
      Heatmap.render ~annot ~x_label:"shared pool size (slots)"
        ~y_label:"DT alpha" ~title
        ~rows:(List.map (fun a -> "alpha=" ^ a) !rows)
        ~cols:!cols values

(* The loadgen figure reads the committed journal, not the campaign
   cache: `aqt_sim loadgen --snapshot-every` appends one Snapshot per
   tick, and the committed file makes the figure byte-deterministic. *)
let loadgen_journal_file =
  Filename.concat "bench_results" "loadgen_journal.jsonl"

let render_loadgen_latency _ =
  let title = "Loadgen - latency quantiles over one overload run" in
  let events = try Journal.load loadgen_journal_file with _ -> [] in
  let snaps =
    List.filter_map
      (function
        | Journal.Snapshot { label = "loadgen"; values; _ } -> Some values
        | _ -> None)
      events
  in
  let pts key =
    Array.of_list
      (List.filter_map
         (fun values ->
           match
             (List.assoc_opt "elapsed_s" values, List.assoc_opt key values)
           with
           | Some x, Some y -> Some (x, 1000. *. y)
           | _ -> None)
         snaps)
  in
  Plot.render ~x_label:"elapsed seconds" ~y_label:"latency (ms)" ~title
    [
      Plot.series "p50" (pts "loadgen_request_seconds_p50");
      Plot.series "p99" (pts "loadgen_request_seconds_p99");
      Plot.series "p999" (pts "loadgen_request_seconds_p999");
    ]

let render_spacetime _ =
  (* The `aqt_sim spacetime` scenario: small enough to read (and to
     commit as SVG), big enough to show the pump moving the queue. *)
  let eps = Ratio.make 1 5 in
  let seed = 122 in
  let params = Aqt.Params.make ~eps ~s0:(max 20 ((seed - 2) / 2)) () in
  let g = G.cyclic ~n:params.Aqt.Params.n ~m:2 () in
  let net = Network.create ~graph:g.G.graph ~policy:Policies.fifo () in
  for _ = 1 to seed do
    ignore (Network.place_initial ~tag:"seed" net (G.seed_route g))
  done;
  let st = Spacetime.make ~every:4 net in
  let run_phase phase =
    let duration = ref 0 in
    let wrapped : Phased.phase =
     fun net t ->
      let d, dur = phase net t in
      duration := dur;
      (d, dur)
    in
    let driver = Spacetime.driver_wrap st (Phased.sequence [ wrapped ]) in
    ignore (Sim.run ~net ~driver ~horizon:1 ());
    ignore (Sim.run ~net ~driver ~horizon:(!duration - 1) ())
  in
  run_phase (Aqt.Startup.phase ~params ~gadget:g);
  run_phase (Aqt.Pump.phase ~params ~gadget:g ~k:1);
  let every = Spacetime.every st in
  let matrix = Spacetime.matrix st in
  let labels = Spacetime.labels st in
  (* Keep the figure a sane size: stride columns down to <= 120 samples
     and keep only the busiest <= 48 edges (back in edge-id order), the
     same policy as the text renderer.  Both choices are pure functions
     of the sampled data. *)
  let n_samples = Spacetime.n_samples st in
  let stride = max 1 ((n_samples + 119) / 120) in
  let n_cols = (n_samples + stride - 1) / stride in
  let peak = Array.map (Array.fold_left Float.max 0.0) matrix in
  let order = Array.init (Array.length matrix) Fun.id in
  Array.sort
    (fun a b ->
      match compare peak.(b) peak.(a) with 0 -> compare a b | c -> c)
    order;
  let kept = Array.sub order 0 (min 48 (Array.length order)) in
  Array.sort compare kept;
  let rows =
    Array.to_list (Array.map (fun e -> labels.(e)) kept)
  in
  let values =
    Array.map
      (fun e -> Array.init n_cols (fun c -> matrix.(e).(c * stride)))
      kept
  in
  let cols =
    List.init n_cols (fun i -> string_of_int (i * stride * every))
  in
  Heatmap.render ~log_scale:true
    ~x_label:"step" ~y_label:"edge"
    ~title:"Startup + one pump on F(n)^2 - queue occupancy over time"
    ~rows ~cols values

let render_bench ctx =
  Plot.hbars ~log_x:true ~x_label:"ns per run"
    ~title:"Engine microbenchmarks (committed bench_results CSV)" ctx.bench

let default_figures () =
  [
    {
      id = "fig_3_1";
      title = "Figure 3.1 - the gadget";
      caption =
        "The gadget F(4)^2 as built by `Aqt.Gadget.chain ~n:4 ~m:2`: two \
         gadgets joined at the shared edges a_k, each with a slow e-path \
         and a parallel f-path from y_(k-1) to x_k.  The shared edge a_1 \
         is both the egress of the first gadget and the ingress of the \
         second, exactly as drawn in the paper.";
      experiments = [];
      render = render_fig_3_1;
    };
    {
      id = "fig_3_2";
      title = "Figure 3.2 - the cyclic chain";
      caption =
        "The cyclic chain F(4)^4 + e0 (`Aqt.Gadget.cyclic ~n:4 ~m:4`): the \
         stitch edge e0 closes the daisy chain so Lemma 3.16 can convert \
         the queue at the last egress back into seeds at the first \
         ingress.  Node names elided; the arc below is e0.";
      experiments = [];
      render = render_fig_3_2;
    };
    {
      id = "e1_growth";
      title = "E1 - seed queue growth per cycle (Theorem 3.17)";
      caption =
        "Seed queue at the start of every adversary cycle, one series per \
         epsilon, from campaign experiment `e1`.  Sustained growth at \
         every rate 1/2 + epsilon is the instability theorem made \
         visible: each cycle multiplies the seed queue by a constant \
         factor > 1.";
      experiments = [ "e1" ];
      render = render_e1_growth;
    };
    {
      id = "e2_pump";
      title = "E2 - one pump multiplies the queue (Lemma 3.6)";
      caption =
        "Measured growth factor S'/S of a single pump phase against the \
         paper's exact prediction 2(1-R_n), for increasing seed sizes S \
         (campaign experiment `e2`).  The two curves coincide: the \
         discrete simulation matches the fluid analysis point for point.";
      experiments = [ "e2" ];
      render = render_e2_pump;
    };
    {
      id = "e2_trajectory";
      title = "E2 - startup + pump trajectory";
      caption =
        "Sampled network state (every 50 steps) for the largest `e2` arm \
         (S0 = 1600): total packets in flight and the largest single \
         buffer while the startup phase establishes C(S, F(1)) and one \
         pump moves the queue into the next gadget.";
      experiments = [ "e2" ];
      render =
        (fun ctx ->
          render_trajectory ~experiment:"e2"
            ~title:"E2 startup + pump - sampled network state" ctx);
    };
    {
      id = "e7_trajectory";
      title = "E7 - a certified-stable workload (Theorem 4.3)";
      caption =
        "The FIFO run of campaign experiment `e7` (time-priority bound at \
         r = 1/d), sampled every 100 steps: the in-flight population \
         stays bounded for the whole horizon — stability, in contrast to \
         the E1/E2 instability constructions above.";
      experiments = [ "e7" ];
      render =
        (fun ctx ->
          render_trajectory ~experiment:"e7"
            ~title:"E7 time-priority workload - sampled network state" ctx);
    };
    {
      id = "fluid_pump";
      title = "Fluid pump profile (Claims 3.9-3.11)";
      caption =
        "The paper's piecewise-linear fluid trajectories for one pump \
         (r = 0.7, n = 9, 2S = 2000), evaluated by `Aqt.Fluid.queue_at`: \
         each e-path buffer fills at rate R_i + r - 1, peaks at i + t_i, \
         and drains.  Experiment `e14` checks these curves against the \
         discrete simulation.";
      experiments = [];
      render = render_fluid_pump;
    };
    {
      id = "sweep_heatmap";
      title = "Stability sweep - policy x rate";
      caption =
        "`Aqt.Sweep.classify` on the 8-ring with 4-hop routes under a \
         packed (w, r) burst adversary (w = 40, horizon 4000): darker \
         cells mean larger peak queues (log color scale); the letter is \
         the verdict (S stable / G growing / B blowup).  The ring is \
         universally stable — every verdict stays S — but peak queues \
         climb steadily as the rate approaches saturation.";
      experiments = [];
      render = render_sweep;
    };
    {
      id = "capacity_heatmap";
      title = "C1 - drop rate over (buffer size, speedup)";
      caption =
        "Campaign experiment `c1`: drop-tail FIFO on the 8-ring at \
         critical load arriving in 8-deep single-edge bursts, swept over \
         per-edge buffer capacity and integer link speedup.  Darker \
         cells shed more traffic (cell label = drop rate).  The \
         zero-drop frontier moves toward smaller buffers as the speedup \
         grows — the buffer-vs-speedup tradeoff of arXiv:1902.08069 \
         measured on this engine.";
      experiments = [ "c1" ];
      render = render_capacity_heatmap;
    };
    {
      id = "capacity_tradeoff";
      title = "C2 - drop disciplines under bursty load";
      caption =
        "Campaign experiment `c2`: drop rate against buffer budget for \
         drop-tail, drop-head and the shared Dynamic-Threshold pool, \
         under sub-critical (rho = 0.8) single-edge bursts at unit \
         speed.  The two per-edge disciplines shed identical volume \
         (service fixes what can leave; they differ in *which* packets \
         survive), while the shared pool reaches zero drops at a \
         fraction of the budget by concentrating it where the burst \
         lands — the shared-buffer advantage of arXiv:1707.03856.";
      experiments = [ "c2" ];
      render = render_capacity_tradeoff;
    };
    {
      id = "local_burst_heatmap";
      title = "N1 - locally bursty stability over (rho, sigma_e)";
      caption =
        "Campaign experiment `n1`: three overlapping 3-hop flows on the \
         6-ring under the locally bursty adversary of arXiv:2208.09522, \
         swept over aggregate rate rho and per-flow burst allowance \
         (cell label = peak single-edge queue, log color scale).  Every \
         run is admissible by construction — `Rate_check.check_local` \
         certifies each one against its per-edge (rho, sigma_e) budget \
         — and peak queues track sigma_e, not the horizon: locally \
         bursty injection moves the burst into the budget without \
         breaking stability.";
      experiments = [ "n1" ];
      render = render_local_burst_heatmap;
    };
    {
      id = "feedback_heatmap";
      title = "N2 - feedback routing aggressiveness";
      caption =
        "Campaign experiment `n2`: a feedback-driven adversary \
         (arXiv:1812.11113) that watches per-edge queue lengths and \
         truncates the route of any packet about to enter an edge with \
         more than `hot` queued packets, swept over injection rate and \
         the hot threshold on the 4-ring (cell label = number of \
         truncations performed).  At hot = 1 every packet is rerouted; \
         by hot = 4 the queues never reach the trigger and the \
         adversary goes quiet.  Peak queues stay at most 2 across the \
         whole grid — online rerouting under an admissible rate cannot \
         destabilize the ring.";
      experiments = [ "n2" ];
      render = render_feedback_heatmap;
    };
    {
      id = "fabric_incast";
      title = "FAB1 - fat-tree incast by policy and load";
      caption =
        "Campaign experiment `fab1`: 15 senders converge on one receiver \
         of a k = 4 fat-tree, flow sizes from a heavy-tailed CDF, one \
         series per queueing policy, swept over receiver-downlink \
         utilisation.  Queue *sizes* are identical across policies \
         (work conservation fixes how much waits), so the figure shows \
         the max dwell — how long the unluckiest packet waits: FIFO and \
         longest-in-system stay near the backlog drain time while LIFO \
         starves old packets for the whole run, and every policy's dwell \
         blows up once utilisation passes 1.";
      experiments = [ "fab1" ];
      render = render_fabric_incast;
    };
    {
      id = "fabric_dt";
      title = "FAB2 - shared Dynamic-Threshold buffers on a hotspot";
      caption =
        "Campaign experiment `fab2`: a spine-leaf(4, 8, 4) hotspot at \
         utilisation 1, all 128 edges sharing one Dynamic-Threshold \
         pool (admit while queue < alpha * free), swept over alpha and \
         the pool size (cell label = drop rate).  Small alpha starves \
         the hotspot queue even when slots are free; large alpha lets \
         it hog the pool.  The table adds the partitioned baseline: \
         per-edge buffers still drop packets at 1024 total slots (depth \
         8 on all 128 edges), while a shared pool of 64 drops nothing — \
         the shared-memory advantage of arXiv:1707.03856 on an \
         adversarial-queueing engine.";
      experiments = [ "fab2" ];
      render = render_fabric_dt;
    };
    {
      id = "loadgen_latency";
      title = "Loadgen - latency quantiles over a run";
      caption =
        "p50/p99/p999 request latency over the course of one loadgen \
         overload run against the serve daemon's (rho, sigma) admission \
         envelope, read from the committed \
         `bench_results/loadgen_journal.jsonl` (regenerate with `aqt_sim \
         loadgen --selftest --snapshot-every 0.25 --journal ...`).  The \
         tail settles once the token bucket's initial burst allowance is \
         spent and admission reaches steady state — bounded latency \
         under 10x overload is the serving-plane mirror of bounded \
         queues under admissible injection.";
      experiments = [];
      render = render_loadgen_latency;
    };
    {
      id = "spacetime";
      title = "Spacetime - startup + pump, queue occupancy";
      caption =
        "Every edge of a 2-gadget cyclic chain (eps = 1/5, seeded with \
         122 packets — the `aqt_sim spacetime` scenario), sampled every \
         4 steps through `Aqt_engine.Spacetime`: the seed queue drains \
         through the e-path while the pump re-concentrates it at the \
         next ingress — the paper's construction as a picture.";
      experiments = [];
      render = render_spacetime;
    };
    {
      id = "bench";
      title = "Engine microbenchmarks";
      caption =
        "ns per run for the engine microbenchmarks, read from the \
         committed `bench_results/b_microbench.csv` (regenerated by \
         `dune exec bench/main.exe -- bench`; gated against regression \
         by `aqt_sim bench-gate`).  Log scale.";
      experiments = [];
      render = render_bench;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let dedup names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let index_md ~registry figures =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# Experiment report\n\n";
  Buffer.add_string buf
    "Deterministic figures generated from the campaign cache and seeded\n\
     inline simulations.  Regenerate (byte-identical) with:\n\n\
     ```\n\
     dune exec bin/aqt_sim.exe -- report\n\
     ```\n\n\
     Do not edit this directory by hand - CI regenerates it and fails on\n\
     drift (see docs/REPORT.md).\n";
  List.iter
    (fun f ->
      Buffer.add_string buf (Printf.sprintf "\n## %s\n\n" f.title);
      Buffer.add_string buf
        (Printf.sprintf "![%s](%s.svg)\n\n" f.title f.id);
      Buffer.add_string buf f.caption;
      Buffer.add_char buf '\n';
      (match f.experiments with
      | [] ->
          Buffer.add_string buf
            "\n*Data:* inline seeded simulation (no campaign dependency).\n"
      | exps ->
          Buffer.add_string buf
            (Printf.sprintf "\n*Data:* campaign experiment%s %s.\n"
               (if List.length exps > 1 then "s" else "")
               (String.concat ", "
                  (List.map
                     (fun e ->
                       match Registry.find registry e with
                       | Some entry ->
                           Printf.sprintf "`%s` (%s)" e entry.Registry.title
                       | None -> Printf.sprintf "`%s`" e)
                     exps)))))
    figures;
  Buffer.contents buf

let build_ctx ?(bench_csv = Filename.concat "bench_results" "b_microbench.csv")
    ~registry ~options figures =
  let needed = dedup (List.concat_map (fun f -> f.experiments) figures) in
  let results, trajectories =
    if needed = [] then ([], [])
    else begin
      let summary =
        Campaign.run ~registry
          { options with Campaign.only = needed; quiet = true }
      in
      let results =
        List.filter_map
          (fun (tr : Scheduler.task_result) ->
            Option.map (fun r -> (tr.Scheduler.name, r)) tr.Scheduler.result)
          summary.Campaign.results
      in
      let from_journal =
        match
          try Some (Journal.load summary.Campaign.journal_file)
          with _ -> None
        with
        | Some events -> Journal.final_trajectories events
        | None -> []
      in
      let trajectories =
        List.map
          (fun (name, (r : Registry.result)) ->
            match List.assoc_opt name from_journal with
            | Some t -> (name, t)
            | None -> (name, r.Registry.trajectory))
          results
      in
      (results, trajectories)
    end
  in
  let bench =
    if not (Sys.file_exists bench_csv) then []
    else begin
      let ic = open_in bench_csv in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> (
                match String.split_on_char ',' line with
                | name :: value :: _ when name <> "benchmark" -> (
                    match float_of_string_opt (String.trim value) with
                    | Some v -> go ((name, v) :: acc)
                    | None -> go acc)
                | _ -> go acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    end
  in
  { results; trajectories; bench }

let generate ?figures ?only ?bench_csv ~registry ~options ~out () =
  let figures =
    match figures with Some fs -> fs | None -> default_figures ()
  in
  let figures =
    match only with
    | None | Some [] -> figures
    | Some ids ->
        List.map
          (fun id ->
            match List.find_opt (fun f -> f.id = id) figures with
            | Some f -> f
            | None ->
                failwith
                  (Printf.sprintf "report: unknown figure %S (known: %s)" id
                     (String.concat ", " (List.map (fun f -> f.id) figures))))
          ids
  in
  let ctx = build_ctx ?bench_csv ~registry ~options figures in
  mkdir_p out;
  let paths =
    List.map
      (fun f ->
        let path = Filename.concat out (f.id ^ ".svg") in
        write_file path (f.render ctx);
        path)
      figures
  in
  let index = Filename.concat out "index.md" in
  write_file index (index_md ~registry figures);
  index :: paths
