type t = El of string * (string * string) list * t list | Text of string

(* Fixed-precision, trimmed formatting: the single chokepoint for numbers
   so that regenerated figures are byte-identical.  "%.2f" of a finite
   double is deterministic; trimming is pure string surgery. *)
let f x =
  if not (Float.is_finite x) then "0"
  else begin
    let s = Printf.sprintf "%.2f" x in
    let s =
      if String.contains s '.' then begin
        let n = ref (String.length s) in
        while !n > 0 && s.[!n - 1] = '0' do
          decr n
        done;
        if !n > 0 && s.[!n - 1] = '.' then decr n;
        String.sub s 0 !n
      end
      else s
    in
    if s = "-0" then "0" else s
  end

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let el tag attrs children = El (tag, attrs, children)
let text s = Text s

let line ?(attrs = []) ~x1 ~y1 ~x2 ~y2 () =
  el "line"
    ([ ("x1", f x1); ("y1", f y1); ("x2", f x2); ("y2", f y2) ] @ attrs)
    []

let rect ?(attrs = []) ~x ~y ~w ~h () =
  el "rect" ([ ("x", f x); ("y", f y); ("width", f w); ("height", f h) ] @ attrs) []

let circle ?(attrs = []) ~cx ~cy ~r () =
  el "circle" ([ ("cx", f cx); ("cy", f cy); ("r", f r) ] @ attrs) []

let polyline ?(attrs = []) pts =
  let d =
    String.concat " " (List.map (fun (x, y) -> f x ^ "," ^ f y) pts)
  in
  el "polyline" ([ ("points", d); ("fill", "none") ] @ attrs) []

let path ?(attrs = []) d = el "path" (("d", d) :: attrs) []
let text_at ?(attrs = []) ~x ~y s = el "text" ([ ("x", f x); ("y", f y) ] @ attrs) [ text s ]
let group ?(attrs = []) children = el "g" attrs children

let rec render buf = function
  | Text s -> Buffer.add_string buf (escape s)
  | El (tag, attrs, children) ->
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape v);
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (render buf) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      end

(* Light-mode palette (validated set; see docs/REPORT.md). *)
let surface = "#fcfcfb"
let text_primary = "#0b0b0b"
let text_secondary = "#52514e"
let grid_color = "#e8e7e3"
let axis_color = "#b3b2ac"

let categorical =
  [|
    "#2a78d6" (* blue *);
    "#eb6834" (* orange *);
    "#1baf7a" (* aqua *);
    "#eda100" (* yellow *);
    "#e87ba4" (* magenta *);
    "#008300" (* green *);
    "#4a3aa7" (* violet *);
    "#e34948" (* red *);
  |]

let series_color i =
  if i < 0 then categorical.(0)
  else categorical.(min i (Array.length categorical - 1))

(* Blue sequential ramp, steps 100..700, with the surface prepended so
   that value 0 recedes into the background. *)
let ramp =
  [|
    (0xfc, 0xfc, 0xfb);
    (0xcd, 0xe2, 0xfb);
    (0xb7, 0xd3, 0xf6);
    (0x9e, 0xc5, 0xf4);
    (0x86, 0xb6, 0xef);
    (0x6d, 0xa7, 0xec);
    (0x55, 0x98, 0xe7);
    (0x39, 0x87, 0xe5);
    (0x2a, 0x78, 0xd6);
    (0x25, 0x6a, 0xbf);
    (0x1c, 0x5c, 0xab);
    (0x18, 0x4f, 0x95);
    (0x10, 0x42, 0x81);
    (0x0d, 0x36, 0x6b);
  |]

let sequential v =
  let v = if Float.is_finite v then Float.max 0.0 (Float.min 1.0 v) else 0.0 in
  let n = Array.length ramp - 1 in
  let pos = v *. float_of_int n in
  let i = int_of_float (Float.floor pos) in
  let i = min i (n - 1) in
  let t = pos -. float_of_int i in
  let r0, g0, b0 = ramp.(i) and r1, g1, b1 = ramp.(i + 1) in
  (* Round through integers: identical on every platform. *)
  let mix a b =
    a + int_of_float (Float.round (t *. float_of_int (b - a)))
  in
  Printf.sprintf "#%02x%02x%02x" (mix r0 r1) (mix g0 g1) (mix b0 b1)

let document ~w ~h ?title children =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 %s %s\" \
        width=\"%s\" height=\"%s\" font-family=\"Helvetica, Arial, \
        sans-serif\">"
       (f w) (f h) (f w) (f h));
  (match title with
  | Some t -> render buf (el "title" [] [ text t ])
  | None -> ());
  render buf
    (rect ~x:0.0 ~y:0.0 ~w ~h ~attrs:[ ("fill", surface) ] ());
  List.iter (render buf) children;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
