(** The self-regenerating experiment report.

    [generate] renders a set of {!figure}s into an output directory as
    SVG files plus a Markdown [index.md], pulling data from three
    sources:

    - the campaign layer: the experiments a figure declares are run
      through {!Aqt_harness.Campaign.run} (cache hits resolve instantly,
      so a warm [_campaign/] directory makes regeneration cheap), and
      their {!Aqt_harness.Registry.result} tables and journalled
      trajectories become plot inputs;
    - direct simulation: structural figures (the Figure 3.1/3.2 gadget
      renders, the spacetime heatmap, the stability sweep) run small
      seeded simulations inline;
    - committed artifacts: the microbenchmark figure reads
      [bench_results/b_microbench.csv].

    Everything is deterministic — seeded runs, fixed number formatting
    ({!Svg.f}), no timestamps — so regenerating over an unchanged tree
    reproduces the committed [docs/report/] byte for byte; CI relies on
    this to fail on drift. *)

type ctx = {
  results : (string * Aqt_harness.Registry.result) list;
      (** Experiment name -> campaign result, for every experiment some
          requested figure declared. *)
  trajectories : (string * (string * float) list list) list;
      (** Experiment name -> the trajectory recovered from the campaign
          journal ({!Aqt_harness.Journal.final_trajectories}), falling
          back to the result's own trajectory field. *)
  bench : (string * float) list;
      (** Parsed [benchmark -> ns/run] rows of the committed
          microbenchmark CSV; [[]] when the file is absent. *)
}

type figure = {
  id : string;  (** Output basename: [<id>.svg]. *)
  title : string;
  caption : string;  (** Markdown, shown under the figure in the index. *)
  experiments : string list;
      (** Campaign experiment names this figure consumes; the union over
          all requested figures is run once before rendering. *)
  render : ctx -> string;  (** Must return a complete SVG document. *)
}

val default_figures : unit -> figure list
(** The report shipped in [docs/report/]: gadget renders of Figures
    3.1/3.2, the E1 seed-growth curves, the E2 pump measured-vs-predicted
    plot and trajectory, the E7 stable-workload trajectory, the fluid
    pump profile, the policy x rate sweep heatmap, the startup+pump
    spacetime heatmap, and the microbenchmark chart. *)

(** {2 Data access helpers}

    Exposed for figure definitions and tests. *)

val find_table :
  ctx -> experiment:string -> id:string -> Aqt_harness.Registry.table option

val column : Aqt_harness.Registry.table -> string -> float array
(** The named column as floats.  Cells are parsed leniently: plain
    numbers, ["a/b"] ratios, a trailing [x] (growth factors) and
    [true]/[false] all convert; anything else becomes [nan] (and is
    dropped by the plot layer).  @raise Not_found on an unknown header. *)

val column_s : Aqt_harness.Registry.table -> string -> string array
(** The named column as raw strings.  @raise Not_found likewise. *)

val trajectory_points :
  (string * float) list list -> x:string -> y:string -> (float * float) array
(** Extract [(x, y)] pairs from labelled trajectory rows (the
    {!Aqt_harness.Registry.result} exchange format); rows missing either
    key are skipped. *)

val build_ctx :
  ?bench_csv:string ->
  registry:Aqt_harness.Registry.t ->
  options:Aqt_harness.Campaign.options ->
  figure list ->
  ctx
(** Assemble the data context for a set of figures without rendering
    anything: run the union of their declared experiments through the
    campaign (cache hits instant), recover journalled trajectories, and
    parse the bench CSV.  [generate] is [build_ctx] plus rendering to
    disk; the serve daemon uses [build_ctx] directly to render single
    figures in memory. *)

val generate :
  ?figures:figure list ->
  ?only:string list ->
  ?bench_csv:string ->
  registry:Aqt_harness.Registry.t ->
  options:Aqt_harness.Campaign.options ->
  out:string ->
  unit ->
  string list
(** Render [figures] (default {!default_figures}; [only] filters by
    figure id) into directory [out] (created as needed) and write
    [index.md].  [options] selects the campaign directory/salt — its
    [only]/[quiet] fields are overridden internally.  [bench_csv]
    defaults to [bench_results/b_microbench.csv].  Returns the paths
    written, index first.
    @raise Failure if [only] names an unknown figure. *)
