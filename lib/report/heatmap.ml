let transform ~log_scale v = if log_scale then Float.log1p v else v

let render ?(w = 720.0) ?(log_scale = false) ?annot ?x_label ?y_label ~title
    ~rows ~cols m =
  let open Svg in
  let n_rows = List.length rows and n_cols = List.length cols in
  let label_w = 110.0 in
  let margin_t = 56.0 in
  let margin_b = 40.0 +. (match x_label with Some _ -> 14.0 | None -> 0.0) in
  let margin_l = label_w +. (match y_label with Some _ -> 16.0 | None -> 0.0) in
  let cell_w =
    if n_cols = 0 then 0.0
    else
      Float.max 6.0
        (Float.min 42.0 ((w -. margin_l -. 18.0) /. float_of_int n_cols))
  in
  let cell_h = Float.max 14.0 (Float.min 30.0 cell_w) in
  let w = margin_l +. (cell_w *. float_of_int n_cols) +. 18.0 in
  let h = margin_t +. (cell_h *. float_of_int n_rows) +. margin_b in
  (* Normalize over all finite entries. *)
  let vmin = ref Float.infinity and vmax = ref Float.neg_infinity in
  Array.iter
    (Array.iter (fun v ->
         if Float.is_finite v then begin
           let v = transform ~log_scale v in
           if v < !vmin then vmin := v;
           if v > !vmax then vmax := v
         end))
    m;
  let vmin = if Float.is_finite !vmin then !vmin else 0.0 in
  let vmax = if Float.is_finite !vmax && !vmax > vmin then !vmax else vmin +. 1.0 in
  let norm v =
    if not (Float.is_finite v) then 0.0
    else (transform ~log_scale v -. vmin) /. (vmax -. vmin)
  in
  let cell r c =
    if r >= Array.length m || c >= Array.length m.(r) then None
    else Some m.(r).(c)
  in
  let x_of c = margin_l +. (cell_w *. float_of_int c) in
  let y_of r = margin_t +. (cell_h *. float_of_int r) in
  let cells = ref [] in
  for r = n_rows - 1 downto 0 do
    for c = n_cols - 1 downto 0 do
      match cell r c with
      | None -> ()
      (* A minimum-value cell renders as the chart surface — invisible —
         so unless it carries an annotation there is nothing to emit.
         Dense mostly-empty matrices (spacetime) shrink a lot. *)
      | Some v
        when norm v = 0.0
             && (match annot with
                | None -> true
                | Some a ->
                    r >= Array.length a
                    || c >= Array.length a.(r)
                    || a.(r).(c) = None) ->
          ()
      | Some v ->
          let t = norm v in
          let fill = sequential t in
          let base =
            rect ~x:(x_of c) ~y:(y_of r) ~w:cell_w ~h:cell_h
              ~attrs:[ ("fill", fill) ] ()
          in
          let note =
            match annot with
            | None -> []
            | Some a ->
                if r >= Array.length a || c >= Array.length a.(r) then []
                else begin
                  match a.(r).(c) with
                  | None -> []
                  | Some s ->
                      (* Ink flips once the cell is dark enough; the
                         threshold is on the normalized value, so the
                         choice is deterministic. *)
                      let ink = if t > 0.55 then surface else text_primary in
                      [
                        text_at
                          ~x:(x_of c +. (cell_w /. 2.0))
                          ~y:(y_of r +. (cell_h /. 2.0) +. 3.0)
                          ~attrs:
                            [
                              ("text-anchor", "middle"); ("font-size", "9");
                              ("fill", ink); ("stroke", "none");
                            ]
                          s;
                      ]
                end
          in
          cells := (base :: note) @ !cells
    done
  done;
  let row_labels =
    List.concat
      (List.mapi
         (fun r name ->
           [
             text_at ~x:(margin_l -. 8.0)
               ~y:(y_of r +. (cell_h /. 2.0) +. 3.5)
               ~attrs:
                 [
                   ("text-anchor", "end"); ("font-size", "10");
                   ("fill", text_primary);
                 ]
               name;
           ])
         rows)
  in
  (* Downsample dense column axes to at most 12 labels. *)
  let col_stride = max 1 ((n_cols + 11) / 12) in
  let col_labels =
    List.concat
      (List.mapi
         (fun c name ->
           if c mod col_stride <> 0 then []
           else
             [
               text_at
                 ~x:(x_of c +. (cell_w /. 2.0))
                 ~y:(margin_t +. (cell_h *. float_of_int n_rows) +. 14.0)
                 ~attrs:
                   [
                     ("text-anchor", "middle"); ("font-size", "9");
                     ("fill", text_secondary);
                   ]
                 name;
             ])
         cols)
  in
  (* Color-bar legend: a strip of the ramp with min/max value labels. *)
  let bar_x = w -. 178.0 and bar_y = 30.0 and bar_w = 100.0 and bar_h = 10.0 in
  let bar_steps = 20 in
  let bar =
    List.init bar_steps (fun i ->
        let t = float_of_int i /. float_of_int (bar_steps - 1) in
        rect
          ~x:(bar_x +. (bar_w *. float_of_int i /. float_of_int bar_steps))
          ~y:bar_y
          ~w:(bar_w /. float_of_int bar_steps +. 0.5)
          ~h:bar_h
          ~attrs:[ ("fill", sequential t) ]
          ())
    @ [
        text_at ~x:(bar_x -. 5.0) ~y:(bar_y +. 9.0)
          ~attrs:
            [
              ("text-anchor", "end"); ("font-size", "9");
              ("fill", text_secondary);
            ]
          (Svg.f (if log_scale then Float.expm1 vmin else vmin));
        text_at ~x:(bar_x +. bar_w +. 5.0) ~y:(bar_y +. 9.0)
          ~attrs:[ ("font-size", "9"); ("fill", text_secondary) ]
          ((Svg.f (if log_scale then Float.expm1 vmax else vmax))
          ^ if log_scale then " (log)" else "");
      ]
  in
  let axis_titles =
    (match x_label with
    | Some l ->
        [
          text_at
            ~x:(margin_l +. (cell_w *. float_of_int n_cols /. 2.0))
            ~y:(h -. 10.0)
            ~attrs:
              [
                ("text-anchor", "middle"); ("font-size", "11");
                ("fill", text_secondary);
              ]
            l;
        ]
    | None -> [])
    @
    match y_label with
    | Some l ->
        let cy = margin_t +. (cell_h *. float_of_int n_rows /. 2.0) in
        [
          text_at ~x:14.0 ~y:cy
            ~attrs:
              [
                ("text-anchor", "middle"); ("font-size", "11");
                ("fill", text_secondary);
                ( "transform",
                  Printf.sprintf "rotate(-90 %s %s)" (Svg.f 14.0) (Svg.f cy) );
              ]
            l;
        ]
    | None -> []
  in
  document ~w ~h ~title
    (text_at ~x:(margin_l) ~y:22.0
       ~attrs:
         [
           ("font-size", "14"); ("fill", text_primary);
           ("font-weight", "bold");
         ]
       title
    (* The 1px surface-colored stroke puts a hairline gap between cells;
       hoisted onto the group so dense matrices stay small. *)
    :: group
         ~attrs:[ ("stroke", surface); ("stroke-width", "1") ]
         !cells
    :: (row_labels @ col_labels @ bar @ axis_titles))
