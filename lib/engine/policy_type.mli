(** The queuing-policy interface of the engine.

    All policies studied in the paper are greedy and assign each packet a
    priority that is fixed for the duration of its stay in one buffer, so a
    policy is a key function evaluated when a packet enters a buffer.  The
    buffer forwards the packet with the lexicographically smallest
    [(key, seq)] pair, where [seq] is the per-buffer arrival sequence number:
    equal keys therefore resolve in arrival order, and runs are deterministic.

    Concrete policies live in [Aqt_policy.Policies]; the engine only needs
    this type. *)

type discipline =
  | Arrival_order  (** Forward in arrival order — FIFO; buffers are deques. *)
  | Reverse_arrival  (** Forward newest-arrival first — LIFO. *)
  | By_key  (** General priority per [key]; buffers are binary heaps. *)

type t = {
  name : string;
  key : Packet.t -> now:int -> seq:int -> int;
      (** Priority of a packet entering a buffer at time [now] with per-buffer
          arrival sequence number [seq]; smaller forwards first. *)
  discipline : discipline;
      (** Must agree with [key]: [Arrival_order] and [Reverse_arrival] are
          O(1) fast paths for policies whose key orders by arrival sequence
          (ascending resp. descending); the engine's choice of buffer
          representation is observationally equivalent either way. *)
  time_priority : bool;
      (** Definition 4.2: a packet that arrived at time [t] has priority over
          every packet injected (anywhere) after [t].  Holds for FIFO and LIS;
          enables the sharper 1/d stability bound of Theorem 4.3. *)
  historic : bool;
      (** Definition 3.1: scheduling ignores the remaining route beyond each
          packet's next edge, which is what legitimizes rerouting
          (Lemma 3.3).  FIFO, LIFO, LIS, NIS, FFS are historic; FTG and NTG
          are not. *)
}
