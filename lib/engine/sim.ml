type driver = {
  before_step : Network.t -> int -> unit;
  injections_at : Network.t -> int -> Network.injection list;
  observe_queues : (int array -> int -> unit) option;
}

let null_driver =
  {
    before_step = (fun _ _ -> ());
    injections_at = (fun _ _ -> []);
    observe_queues = None;
  }

let injections_only f = { null_driver with injections_at = f }

(* Feedback adversaries observe the start-of-step queue vector — exactly
   the state the stability theorems quantify over — before any reroute or
   injection decision of the step.  The snapshot is only materialised when
   a driver asks for it. *)
let feed_queues driver net t =
  match driver.observe_queues with
  | None -> ()
  | Some f ->
      let m = Aqt_graph.Digraph.n_edges (Network.graph net) in
      f (Array.init m (Network.buffer_len net)) t

type stop = Horizon | Drained | Blowup of int | Stopped of string

type outcome = {
  stop : stop;
  steps_run : int;
  final_in_flight : int;
  max_queue : int;
  max_dwell : int;
  dropped : int;
}

let run ?recorder ?blowup ?stop_when ?(drain_stop = false) ~net ~driver
    ~horizon () =
  if horizon < 0 then invalid_arg "Sim.run: negative horizon";
  let start = Network.now net in
  let observe () =
    match recorder with Some r -> Recorder.observe r net | None -> ()
  in
  let rec go steps_done =
    if steps_done >= horizon then Horizon
    else begin
      let t = Network.now net + 1 in
      feed_queues driver net t;
      driver.before_step net t;
      let injections = driver.injections_at net t in
      Network.step net injections;
      observe ();
      let blown =
        match blowup with
        | Some cap when Network.max_queue_ever net > cap ->
            Some (Blowup (Network.max_queue_ever net))
        | _ -> None
      in
      match blown with
      | Some b -> b
      | None -> (
          match stop_when with
          | Some f when Option.is_some (f net) ->
              Stopped (Option.get (f net))
          | _ ->
              (* Constructor match, not [injections = []]: polymorphic
                 equality on a list of records is a per-step call into the
                 generic compare runtime. *)
              let no_injections =
                match injections with [] -> true | _ :: _ -> false
              in
              if drain_stop && Network.in_flight net = 0 && no_injections
              then Drained
              else go (steps_done + 1))
    end
  in
  let stop = go 0 in
  {
    stop;
    steps_run = Network.now net - start;
    final_in_flight = Network.in_flight net;
    max_queue = Network.max_queue_ever net;
    max_dwell = Network.max_dwell net;
    dropped = Network.dropped net;
  }

(* The fast path for steady-state campaigns: no outcome record, no blowup or
   stop predicates, no per-step option checks — just drive the network.  The
   recorder match happens once, outside the loop. *)
let run_steps ?recorder ~net ~driver n =
  if n < 0 then invalid_arg "Sim.run_steps: negative step count";
  match recorder with
  | None ->
      for _ = 1 to n do
        let t = Network.now net + 1 in
        feed_queues driver net t;
        driver.before_step net t;
        Network.step net (driver.injections_at net t)
      done
  | Some r ->
      for _ = 1 to n do
        let t = Network.now net + 1 in
        feed_queues driver net t;
        driver.before_step net t;
        Network.step net (driver.injections_at net t);
        Recorder.observe r net
      done

let pp_stop fmt = function
  | Horizon -> Format.pp_print_string fmt "horizon"
  | Drained -> Format.pp_print_string fmt "drained"
  | Blowup q -> Format.fprintf fmt "blowup(%d)" q
  | Stopped s -> Format.fprintf fmt "stopped(%s)" s
