(* Hash-consing of route arrays.

   Adversaries in this codebase inject the same handful of routes thousands
   of times (every stock adversary cycles a fixed route list; the paper's
   pump/stitch schedules reuse the gadget's relay routes for whole phases).
   Before interning, [Network.inject] copied the route array per packet and
   re-validated it as a simple path — per-injection allocation and a
   per-injection [Hashtbl] inside [Digraph.route_is_simple].  The intern
   table maps route *contents* to one canonical immutable array, so all
   packets carrying the same route share storage and validation happens once
   per distinct route instead of once per packet.

   The canonical arrays must never be mutated in place; [Network.reroute]
   honours this by building a fresh (non-interned) array — copy-on-reroute
   instead of copy-on-inject. *)

(* Top-level so the comparison compiles to a plain recursive call: a local
   [let rec] would capture [a]/[b] in a closure allocated on every probe,
   which the hot lookup path cannot afford (without flambda the closure is
   not eliminated). *)
let rec arrays_equal_from (a : int array) b la i =
  i >= la
  || (Array.unsafe_get a i = Array.unsafe_get b i
     && arrays_equal_from a b la (i + 1))

module H = Hashtbl.Make (struct
  type t = int array

  let equal a b =
    a == b
    ||
    let la = Array.length a in
    la = Array.length b && arrays_equal_from a b la 0

  (* Mix the length, the first few and the last two elements: routes in one
     run mostly differ in their first edge or their length, and capping the
     scan keeps hashing O(1) for the long relay routes of the gadget
     chains.  Multiplicative-xor mixing plus a final avalanche: Hashtbl
     buckets by the LOW bits of the hash, and additive schemes (h*31+x)
     collapse the arithmetic-progression routes of rings and chains — for
     routes (i, i+1, .., i+L) the 31-mix strides by a multiple of 64, which
     left a 1000-route table with 8 live buckets and ~125-long chains. *)
  let hash r =
    let n = Array.length r in
    let h = ref (n * 0x9e3779b1) in
    let upto = if n > 8 then 8 else n in
    for i = 0 to upto - 1 do
      h := (!h lxor Array.unsafe_get r i) * 0x9e3779b1
    done;
    if n > 8 then begin
      h := (!h lxor Array.unsafe_get r (n - 1)) * 0x9e3779b1;
      h := (!h lxor Array.unsafe_get r (n - 2)) * 0x9e3779b1
    end;
    let h = !h in
    (h lxor (h lsr 29)) land max_int
end)

type t = { table : int array H.t; mutable hits : int; mutable misses : int }

let create ?(size = 64) () = { table = H.create size; hits = 0; misses = 0 }

let find t route =
  match H.find_opt t.table route with
  | Some _ as hit ->
      t.hits <- t.hits + 1;
      hit
  | None -> None

let add t route =
  let canonical = Array.copy route in
  H.add t.table canonical canonical;
  t.misses <- t.misses + 1;
  canonical

let intern t route =
  match H.find_opt t.table route with
  | Some c ->
      t.hits <- t.hits + 1;
      c
  | None -> add t route

let distinct t = H.length t.table
let hits t = t.hits
let misses t = t.misses

let stats t =
  Printf.sprintf "%d distinct routes, %d hits, %d misses" (distinct t) t.hits
    t.misses
