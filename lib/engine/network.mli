(** The store-and-forward network of the adversarial queuing model (§2).

    State machine semantics, exactly as in the paper:

    - The system state is observed "at time [t]" after the second substep of
      step [t]; the initial configuration is the state at time 0.
    - [step] executes the next global time step: in the first substep every
      nonempty buffer forwards the packet its policy selects (simultaneously,
      based on the start-of-step state); in the second substep forwarded
      packets are absorbed at their destination or enter the next buffer on
      their route, and then the step's injections are placed in the buffers of
      the first edges of their routes.

    The network also keeps the instrumentation the experiments need: dwell
    times (how long each packet stayed in one buffer — the quantity bounded by
    Theorems 4.1/4.3), per-edge maximum queue sizes, delivery latencies, and
    an optional injection log of [(injection time, final effective route)]
    pairs used to validate adversaries against their rate constraint after
    rerouting (Lemma 3.3). *)

type injection = { route : int array; tag : string }

type tie_order = Transit_first | Injection_first
(** Within the second substep, whether packets arriving from upstream links
    enqueue before or after the step's fresh injections.  The model leaves
    this to the adversary; the paper's fluid analysis is insensitive to it
    (ablation A5 in the benchmark harness), and [Transit_first] is the
    default. *)

type t

val create :
  ?log_injections:bool ->
  ?validate_routes:bool ->
  ?tie_order:tie_order ->
  ?tracer:(Trace.event -> unit) ->
  ?route_table:Route_intern.t ->
  ?recycle:bool ->
  ?capacity:Aqt_capacity.Model.t ->
  graph:Aqt_graph.Digraph.t ->
  policy:Policy_type.t ->
  unit ->
  t
(** [log_injections] (default false) retains [(time, final route)] for every
    adversary-injected packet, including absorbed ones — needed by the rate
    checker, costs memory proportional to the injection count.
    [validate_routes] (default true) checks that every injected route is a
    simple directed path; with interning the check runs once per {e
    distinct} route, not once per injection.
    [tracer] receives every packet event (see {!Trace}); omit it for zero
    tracing overhead — with no tracer the step loop builds no event values
    at all.
    [route_table] supplies a shared {!Route_intern} table (e.g. one table
    for every cell of a rate sweep over the same graph); by default each
    network gets a private table.  Only share across networks with the same
    graph — interned routes are validated once, against the graph of the
    network that first saw them.
    [recycle] (default false) pools absorbed packet records on a free-list
    and reuses them for later injections, making steady-state stepping
    allocation-free.  Enable it only when no code retains [Packet.t] values
    past absorption (holding buffered packets between steps is fine).  With
    a finite [capacity] model, dropped packets are pooled too.
    [capacity] (default {!Aqt_capacity.Model.unbounded}) selects the
    finite-buffer / link-speedup regime of arXiv:1707.03856 and
    arXiv:1902.08069: arrivals to full buffers are dropped under the
    model's discipline and every edge forwards up to [speedup] packets per
    step.  The default is byte-identical to the pre-capacity engine — no
    admission test runs on the unbounded path. *)

val graph : t -> Aqt_graph.Digraph.t
val policy : t -> Policy_type.t
val now : t -> int

val route_table : t -> Route_intern.t
(** The intern table this network resolves injected routes through. *)

val pooled : t -> int
(** Packet records currently parked on the recycling free-list (0 unless the
    network was created with [recycle:true]). *)

(** {1 Driving the system} *)

val place_initial : t -> ?tag:string -> int array -> Packet.t
(** Adds a packet to the initial configuration (state at time 0); it sits in
    the buffer of the first edge of its route with [buffered_at = 0].
    @raise Invalid_argument if called after the first [step], or if the route
    is invalid and validation is on. *)

val step : t -> ?exogenous:injection list -> injection list -> unit
(** Executes one global time step with the given injections arriving in its
    second substep.  [exogenous] packets (robustness experiments) enter the
    same buffers but are excluded from the adversary's rate accounting: they
    do not mark edge use for Def 3.2 and never appear in the injection
    log. *)

val reroute : t -> Packet.t -> int array -> unit
(** [reroute net p suffix] rewrites [p]'s remaining route beyond its current
    next edge [e_p] to [suffix] (which may be [[||]] to make [e_p] the last
    hop), as in Lemma 3.3.  Mechanical validity is enforced here (the packet
    is buffered, the new route is a simple path); the adversary-side
    preconditions of the lemma — shared edge, new edges — are checked by
    [Aqt.Reroute].
    @raise Invalid_argument if the packet is absorbed or the route invalid. *)

(** {1 Observation} *)

val buffer_len : t -> int -> int
val buffer_packets : t -> int -> Packet.t list
(** Contents of the buffer of edge [e], head of queue first. *)

val in_flight : t -> int
val absorbed : t -> int
val injected_count : t -> int
(** Adversary injections so far (initial-configuration packets excluded).
    Injections dropped on arrival still count — the adversary spent them. *)

val initial_count : t -> int

(** {1 Capacity and drops}

    With the default unbounded model, [dropped] and [displaced] stay 0 and
    [occupancy] equals {!in_flight} between steps.  Conservation holds as
    [initial_count + injected_count = absorbed + in_flight + dropped]. *)

val capacity : t -> Aqt_capacity.Model.t
val speedup : t -> int

val dropped : t -> int
(** Packets lost to the capacity model so far (overflow + displaced). *)

val displaced : t -> int
(** The drop-head subset of {!dropped}: buffered packets evicted by an
    arrival. *)

val dropped_on_edge : t -> int -> int
(** Packets lost at the buffer of edge [e]. *)

val occupancy : t -> int
(** Total buffered population right now (the quantity the
    Dynamic-Threshold admission test reads). *)

val peak_occupancy : t -> int
(** Largest total buffered population ever reached. *)

val iter_buffered : (Packet.t -> unit) -> t -> unit
(** Every packet currently in some buffer. *)

val count_requiring : t -> int -> int
(** Packets currently in the network whose remaining route uses edge [e]. *)

val s_initial : t -> int
(** The S of an S-initial-configuration: max over edges of packets requiring
    that edge, evaluated on the current state (meant to be called at time 0). *)

val current_max_queue : t -> int
val max_queue_ever : t -> int
val max_queue_of_edge : t -> int -> int
val sent_on_edge : t -> int -> int
(** Packets forwarded over edge [e] so far. *)

val max_dwell : t -> int
(** Maximum completed dwell: a packet that entered a buffer at time [t] and
    was forwarded at step [t'] dwelled [t' - t]. *)

val max_pending_dwell : t -> int
(** Maximum [now - buffered_at] over packets still waiting in buffers. *)

val delivered_latency_max : t -> int
val delivered_latency_mean : t -> float

val delivered_latency_percentile : t -> float -> int
(** Upper-bound estimate of a delivery-latency quantile (power-of-two
    histogram buckets; exact at the maximum). *)

val injection_log : t -> (int * int array) array
(** [(injection time, final effective route)] for every adversary-injected
    packet so far (absorbed or in flight), in injection order.
    @raise Invalid_argument if the network was created without
    [log_injections]. *)

val initial_final_routes : t -> int array array
(** The final effective routes of the initial-configuration packets, in
    placement order — together with {!injection_log} this is everything the
    static adversary A' of Lemma 3.3 needs to replay a run that rerouted.
    @raise Invalid_argument without [log_injections]. *)

val reroute_count : t -> int
(** Total reroute operations performed. *)

val last_injection_on : t -> int -> int
(** The latest time at which an adversary injection (or an initial-
    configuration packet, at time 0) had edge [e] on its route as injected;
    [min_int] if never.  Route extensions via [reroute] do not count — this
    is the quantity Definition 3.2's "new edge" condition inspects. *)

val min_injection_time_in_flight : t -> int
(** The t* of Definition 3.2: the earliest injection time over packets
    currently in the network.  [max_int] when the network is empty. *)
