module Dyn = Aqt_util.Dynarray_compat

type event =
  | Injected of { t : int; packet : int; edge : int; route_len : int; initial : bool }
  | Forwarded of { t : int; packet : int; edge : int; dwell : int }
  | Absorbed of { t : int; packet : int; latency : int }
  | Rerouted of { t : int; packet : int; route_len : int }
  | Dropped of { t : int; packet : int; edge : int; displaced : bool }

let pp_event fmt = function
  | Injected { t; packet; edge; route_len; initial } ->
      Format.fprintf fmt "t=%d inject #%d at edge %d (route %d%s)" t packet
        edge route_len
        (if initial then ", initial" else "")
  | Forwarded { t; packet; edge; dwell } ->
      Format.fprintf fmt "t=%d forward #%d over edge %d (dwell %d)" t packet
        edge dwell
  | Absorbed { t; packet; latency } ->
      Format.fprintf fmt "t=%d absorb #%d (latency %d)" t packet latency
  | Rerouted { t; packet; route_len } ->
      Format.fprintf fmt "t=%d reroute #%d (route now %d)" t packet route_len
  | Dropped { t; packet; edge; displaced } ->
      Format.fprintf fmt "t=%d drop #%d at edge %d (%s)" t packet edge
        (if displaced then "displaced" else "overflow")

let time_of = function
  | Injected { t; _ } | Forwarded { t; _ } | Absorbed { t; _ }
  | Rerouted { t; _ } | Dropped { t; _ } ->
      t

let packet_of = function
  | Injected { packet; _ }
  | Forwarded { packet; _ }
  | Absorbed { packet; _ }
  | Rerouted { packet; _ }
  | Dropped { packet; _ } ->
      packet

type t = { store : event Dyn.t }

let create () = { store = Dyn.create () }
let handler t e = Dyn.push t.store e
let length t = Dyn.length t.store
let events t = Dyn.to_array t.store

let packet_history t id =
  List.rev
    (Dyn.fold_left
       (fun acc e -> if packet_of e = id then e :: acc else acc)
       [] t.store)

let count p t =
  Dyn.fold_left (fun acc e -> if p e then acc + 1 else acc) 0 t.store

let count_forwarded t =
  count (function Forwarded _ -> true | _ -> false) t

let count_absorbed t = count (function Absorbed _ -> true | _ -> false) t
let count_injected t = count (function Injected _ -> true | _ -> false) t
let count_rerouted t = count (function Rerouted _ -> true | _ -> false) t
let count_dropped t = count (function Dropped _ -> true | _ -> false) t

let hop_times t id =
  List.filter_map
    (function
      | Forwarded { t; packet; edge; _ } when packet = id -> Some (t, edge)
      | _ -> None)
    (Array.to_list (events t))
