(** Event-level tracing of a network execution.

    A tracer is a callback the network invokes on every packet event; the
    {!t} collector stores them for offline analysis (per-packet histories,
    event counts, textual dumps).  Tracing is off unless a tracer is passed
    to [Network.create], and costs nothing when off. *)

type event =
  | Injected of { t : int; packet : int; edge : int; route_len : int; initial : bool }
      (** Packet entered the network at the tail of [edge]. *)
  | Forwarded of { t : int; packet : int; edge : int; dwell : int }
      (** Packet crossed [edge] in the first substep of step [t] after
          waiting [dwell] steps in its buffer. *)
  | Absorbed of { t : int; packet : int; latency : int }
  | Rerouted of { t : int; packet : int; route_len : int }
      (** Route suffix rewritten; [route_len] is the new full length. *)
  | Dropped of { t : int; packet : int; edge : int; displaced : bool }
      (** Packet lost at the buffer of [edge] under a finite capacity model:
          an arrival that overflowed ([displaced = false]) or a buffered
          head packet pushed out by a drop-head arrival ([displaced =
          true]).  Always follows the victim's last Injected/Forwarded
          event. *)

val pp_event : Format.formatter -> event -> unit

val time_of : event -> int
val packet_of : event -> int

(** {1 Collector} *)

type t

val create : unit -> t
val handler : t -> event -> unit
(** The callback to pass as [Network.create ~tracer:(Trace.handler tr)]. *)

val length : t -> int
val events : t -> event array
val packet_history : t -> int -> event list
(** All events of one packet, in order. *)

val count_forwarded : t -> int
val count_absorbed : t -> int
val count_injected : t -> int
val count_rerouted : t -> int
val count_dropped : t -> int

val hop_times : t -> int -> (int * int) list
(** [(time, edge)] pairs of a packet's forwards — its trajectory. *)
