(** Packets in the adversarial queuing model.

    A packet carries a full route (array of edge ids) and the index [hop] of
    the next edge it must traverse.  The route array may be rewritten while
    the packet is in flight (the rerouting technique of Lemma 3.3); only the
    suffix strictly beyond the current next edge may change.

    Time fields follow the model of Section 2: a packet enters a buffer in the
    second substep of step [t] ([buffered_at = t]) and can be forwarded in the
    first substep of step [t+1] at the earliest. *)

type t = {
  id : int;
  injected_at : int;
  initial : bool;
      (** True for packets placed by an initial configuration rather than
          injected by the adversary (Section 4's S-initial-configurations). *)
  exogenous : bool;
      (** True for background cross-traffic injected outside the adversary's
          budget (robustness experiments): excluded from rate accounting,
          Def 3.2 edge-use tracking and the injection log. *)
  tag : string;  (** Adversary annotation ("old", "short", ...); traces only. *)
  mutable route : int array;
  mutable hop : int;  (** Index into [route] of the next edge; [= length route]
                          once absorbed. *)
  mutable buffered_at : int;
  mutable reroutes : int;  (** Number of times the route suffix was rewritten. *)
}

val next_edge : t -> int option
(** The edge the packet is waiting for, or [None] if absorbed. *)

val current_edge : t -> int
(** Like [next_edge] but raises.  @raise Invalid_argument if absorbed. *)

val remaining : t -> int
(** Edges still to traverse, including the next one; 0 once absorbed. *)

val traversed : t -> int
(** Edges already crossed (= distance from source). *)

val is_absorbed : t -> bool

val pp : Format.formatter -> t -> unit
