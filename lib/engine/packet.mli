(** Packets in the adversarial queuing model.

    A packet carries a full route (array of edge ids) and the index [hop] of
    the next edge it must traverse.  The route array may be rewritten while
    the packet is in flight (the rerouting technique of Lemma 3.3); only the
    suffix strictly beyond the current next edge may change.

    Time fields follow the model of Section 2: a packet enters a buffer in the
    second substep of step [t] ([buffered_at = t]) and can be forwarded in the
    first substep of step [t+1] at the earliest.

    Sharing rules of the fast path: [route] may be an interned canonical
    array shared with other packets ({!Route_intern}) — never mutate its
    elements; route rewrites go through [Network.reroute], which installs a
    fresh array.  When the owning network recycles packets
    ([Network.create ~recycle:true]), a record may be reinitialised for a
    new packet after absorption, so do not hold on to absorbed packets —
    every field is mutable only to make that in-place reinitialisation
    possible. *)

type t = {
  mutable id : int;
  mutable injected_at : int;
  mutable initial : bool;
      (** True for packets placed by an initial configuration rather than
          injected by the adversary (Section 4's S-initial-configurations). *)
  mutable exogenous : bool;
      (** True for background cross-traffic injected outside the adversary's
          budget (robustness experiments): excluded from rate accounting,
          Def 3.2 edge-use tracking and the injection log. *)
  mutable tag : string;
      (** Adversary annotation ("old", "short", ...); traces only. *)
  mutable route : int array;
  mutable hop : int;  (** Index into [route] of the next edge; [= length route]
                          once absorbed. *)
  mutable buffered_at : int;
  mutable reroutes : int;  (** Number of times the route suffix was rewritten. *)
}

val next_edge : t -> int option
(** The edge the packet is waiting for, or [None] if absorbed. *)

val current_edge : t -> int
(** Like [next_edge] but raises.  @raise Invalid_argument if absorbed. *)

val remaining : t -> int
(** Edges still to traverse, including the next one; 0 once absorbed. *)

val traversed : t -> int
(** Edges already crossed (= distance from source). *)

val is_absorbed : t -> bool

val pp : Format.formatter -> t -> unit
