module Dyn = Aqt_util.Dynarray_compat
module Digraph = Aqt_graph.Digraph
module Capacity = Aqt_capacity.Model

type injection = { route : int array; tag : string }
type tie_order = Transit_first | Injection_first

type t = {
  graph : Digraph.t;
  policy : Policy_type.t;
  buffers : Buffer_q.t array;
  validate_routes : bool;
  tie_order : tie_order;
  tracer : (Trace.event -> unit) option;
  (* Hash-consed routes: packets injected with equal routes share one
     canonical array, validated once.  May be shared across networks on the
     same graph (see Route_intern). *)
  routes : Route_intern.t;
  (* Free-list of absorbed packet records, reused by [fresh_packet] when
     [recycle] is on so steady-state runs stop churning the heap. *)
  recycle : bool;
  pool : Packet.t Dyn.t;
  (* The capacity model, compiled: [bounded] gates every drop branch, so the
     unbounded regime runs the original code path; [caps] holds the static
     per-edge limits (max_int where none applies); a Shared model sets
     [shared_total] finite and admits by the Dynamic-Threshold test against
     [occupancy].  [speedup] is the link speed s (packets forwarded per edge
     per step). *)
  capacity : Capacity.t;
  bounded : bool;
  speedup : int;
  caps : int array;
  drop_head : bool;
  shared_total : int;
  dt_num : int;
  dt_den : int;
  mutable now : int;
  mutable next_id : int;
  mutable in_flight : int;
  mutable absorbed : int;
  mutable injected : int;
  mutable initials : int;
  mutable reroutes : int;
  (* Drop accounting.  [occupancy] is the total buffered population — equal
     to [in_flight] between steps, but maintained separately because the
     Dynamic-Threshold admission test reads it mid-substep, while packets in
     transit are in flight without occupying a buffer. *)
  mutable occupancy : int;
  mutable peak_occupancy : int;
  mutable dropped : int;
  mutable displaced : int;
  dropped_edge : int array;
  (* Active-edge bookkeeping: [active] lists exactly the edges with nonempty
     buffers, [active_flag] mirrors membership. *)
  mutable active : int Dyn.t;
  mutable active_scratch : int Dyn.t;
  active_flag : bool array;
  pending : Packet.t Dyn.t; (* packets in transit within the current step *)
  (* Instrumentation. *)
  mutable max_queue : int;
  max_queue_edge : int array;
  sent_edge : int array;
  mutable max_dwell : int;
  mutable latency_sum : int;
  mutable latency_max : int;
  latency_histo : Aqt_util.Histo.t;
  (* (injected_at, packet id, initial?, final route) of absorbed packets, in
     absorption order; live packets are appended on demand by
     [injection_log]/[initial_final_routes], which sort by (time, id) so
     same-step injections keep their original order. *)
  absorbed_log : (int * int * bool * int array) Dyn.t option;
  last_use : int array; (* per edge: latest injection whose route used it *)
}

let create ?(log_injections = false) ?(validate_routes = true)
    ?(tie_order = Transit_first) ?tracer ?route_table ?(recycle = false)
    ?(capacity = Capacity.unbounded) ~graph ~policy () =
  let m = Digraph.n_edges graph in
  {
    graph;
    policy;
    buffers = Array.init m (fun _ -> Buffer_q.create policy);
    validate_routes;
    tie_order;
    tracer;
    routes =
      (match route_table with
      | Some t -> t
      | None -> Route_intern.create ());
    recycle;
    pool = Dyn.create ();
    capacity;
    bounded = not (Capacity.is_unbounded capacity);
    speedup = Capacity.speedup capacity;
    caps = Capacity.caps capacity ~m;
    drop_head = Capacity.drop_head capacity;
    shared_total = Capacity.shared_total capacity;
    dt_num = fst (Capacity.alpha capacity);
    dt_den = snd (Capacity.alpha capacity);
    now = 0;
    next_id = 0;
    in_flight = 0;
    absorbed = 0;
    injected = 0;
    initials = 0;
    reroutes = 0;
    occupancy = 0;
    peak_occupancy = 0;
    dropped = 0;
    displaced = 0;
    dropped_edge = Array.make m 0;
    active = Dyn.create ();
    active_scratch = Dyn.create ();
    active_flag = Array.make m false;
    pending = Dyn.create ();
    max_queue = 0;
    max_queue_edge = Array.make m 0;
    sent_edge = Array.make m 0;
    max_dwell = 0;
    latency_sum = 0;
    latency_max = 0;
    latency_histo = Aqt_util.Histo.create ();
    absorbed_log = (if log_injections then Some (Dyn.create ()) else None);
    last_use = Array.make m min_int;
  }

let graph t = t.graph
let policy t = t.policy
let now t = t.now
let route_table t = t.routes
let pooled t = Dyn.length t.pool

let check_route t route =
  if t.validate_routes && not (Digraph.route_is_simple t.graph route) then
    invalid_arg
      (Format.asprintf "Network: route %a is not a simple path"
         (Digraph.pp_route t.graph) route)

(* Canonical array for an injected route; validation runs only when the
   contents are seen for the first time. *)
let intern_route t route =
  match Route_intern.find t.routes route with
  | Some canonical -> canonical
  | None ->
      check_route t route;
      Route_intern.add t.routes route

let post_enqueue t e =
  if not t.active_flag.(e) then begin
    t.active_flag.(e) <- true;
    Dyn.push t.active e
  end;
  t.occupancy <- t.occupancy + 1;
  if t.occupancy > t.peak_occupancy then t.peak_occupancy <- t.occupancy;
  let len = Buffer_q.length t.buffers.(e) in
  if len > t.max_queue then t.max_queue <- len;
  if len > t.max_queue_edge.(e) then t.max_queue_edge.(e) <- len

let enqueue_at t (p : Packet.t) e =
  p.buffered_at <- t.now;
  Buffer_q.enqueue t.buffers.(e) t.policy ~now:t.now p;
  post_enqueue t e

(* The victim [p] is out of the system: it was either never buffered (an
   overflow arrival) or just evicted from its buffer (drop-head); the caller
   has already settled [occupancy].  Like [absorb] it closes the packet's
   life — log entry, tracer event, recycling — but books it under [dropped],
   keeping created = absorbed + in flight + dropped. *)
let drop_packet t (p : Packet.t) e ~displaced =
  t.dropped <- t.dropped + 1;
  t.dropped_edge.(e) <- t.dropped_edge.(e) + 1;
  if displaced then t.displaced <- t.displaced + 1;
  t.in_flight <- t.in_flight - 1;
  (match t.tracer with
  | None -> ()
  | Some f -> f (Trace.Dropped { t = t.now; packet = p.id; edge = e; displaced }));
  (match t.absorbed_log with
  | Some log when not p.exogenous ->
      Dyn.push log (p.injected_at, p.id, p.initial, p.route)
  | _ -> ());
  if t.recycle then Dyn.push t.pool p

(* Arrival of [p] (already counted in [in_flight]) at the buffer of [e]
   under the capacity model; returns whether the packet survived.  The
   unbounded branch is the original enqueue — no length reads, no drop
   bookkeeping. *)
let admit t (p : Packet.t) e =
  if not t.bounded then begin
    enqueue_at t p e;
    true
  end
  else if t.shared_total <> max_int then begin
    (* Dynamic-Threshold shared buffer: rejections are tail drops. *)
    let len = Buffer_q.length t.buffers.(e) in
    if
      Capacity.dt_admits ~alpha_num:t.dt_num ~alpha_den:t.dt_den
        ~total:t.shared_total ~occupancy:t.occupancy ~len
    then begin
      enqueue_at t p e;
      true
    end
    else begin
      drop_packet t p e ~displaced:false;
      false
    end
  end
  else begin
    p.buffered_at <- t.now;
    match
      Buffer_q.enqueue_capped t.buffers.(e) t.policy ~now:t.now
        ~cap:t.caps.(e) ~drop_head:t.drop_head p
    with
    | Buffer_q.Admitted ->
        post_enqueue t e;
        true
    | Buffer_q.Rejected ->
        drop_packet t p e ~displaced:false;
        false
    | Buffer_q.Displaced victim ->
        t.occupancy <- t.occupancy - 1;
        drop_packet t victim e ~displaced:true;
        post_enqueue t e;
        true
  end

(* [route] must already be canonical (interned) or freshly allocated; no
   defensive copy happens here. *)
let fresh_packet t ~initial ~exogenous ~tag route : Packet.t =
  let id = t.next_id in
  t.next_id <- id + 1;
  if t.recycle && not (Dyn.is_empty t.pool) then begin
    let p = Dyn.pop t.pool in
    p.id <- id;
    p.injected_at <- t.now;
    p.initial <- initial;
    p.exogenous <- exogenous;
    p.tag <- tag;
    p.route <- route;
    p.hop <- 0;
    p.buffered_at <- t.now;
    p.reroutes <- 0;
    p
  end
  else
    {
      id;
      injected_at = t.now;
      initial;
      exogenous;
      tag;
      route;
      hop = 0;
      buffered_at = t.now;
      reroutes = 0;
    }

let mark_route_use t route =
  for i = 0 to Array.length route - 1 do
    t.last_use.(Array.unsafe_get route i) <- t.now
  done

let place_initial t ?(tag = "init") route =
  if t.now <> 0 then
    invalid_arg "Network.place_initial: the system already started";
  let route = intern_route t route in
  let p = fresh_packet t ~initial:true ~exogenous:false ~tag route in
  t.initials <- t.initials + 1;
  t.in_flight <- t.in_flight + 1;
  mark_route_use t route;
  (match t.tracer with
  | None -> ()
  | Some f ->
      f
        (Trace.Injected
           {
             t = t.now;
             packet = p.id;
             edge = route.(0);
             route_len = Array.length route;
             initial = true;
           }));
  ignore (admit t p route.(0));
  p

let absorb t (p : Packet.t) =
  t.absorbed <- t.absorbed + 1;
  t.in_flight <- t.in_flight - 1;
  let latency = t.now - p.injected_at in
  t.latency_sum <- t.latency_sum + latency;
  if latency > t.latency_max then t.latency_max <- latency;
  Aqt_util.Histo.record t.latency_histo latency;
  (match t.tracer with
  | None -> ()
  | Some f -> f (Trace.Absorbed { t = t.now; packet = p.id; latency }));
  (match t.absorbed_log with
  | Some log when not p.exogenous ->
      Dyn.push log (p.injected_at, p.id, p.initial, p.route)
  | _ -> ());
  if t.recycle then Dyn.push t.pool p

let inject t ~exogenous (inj : injection) =
  let route = intern_route t inj.route in
  let p = fresh_packet t ~initial:false ~exogenous ~tag:inj.tag route in
  t.injected <- t.injected + 1;
  t.in_flight <- t.in_flight + 1;
  if not exogenous then mark_route_use t route;
  (match t.tracer with
  | None -> ()
  | Some f ->
      f
        (Trace.Injected
           {
             t = t.now;
             packet = p.id;
             edge = route.(0);
             route_len = Array.length route;
             initial = false;
           }));
  ignore (admit t p route.(0))

(* Top-level helpers rather than local closures: [step] is the hot loop and
   must not allocate a closure per call. *)
let deliver t =
  let n = Dyn.length t.pending in
  for i = 0 to n - 1 do
    let p : Packet.t = Dyn.get t.pending i in
    p.hop <- p.hop + 1;
    if p.hop >= Array.length p.route then absorb t p
    else ignore (admit t p (Array.unsafe_get p.route p.hop))
  done

let rec inject_all t ~exogenous = function
  | [] -> ()
  | inj :: rest ->
      inject t ~exogenous inj;
      inject_all t ~exogenous rest

let step t ?(exogenous = []) injections =
  t.now <- t.now + 1;
  (* Substep 1: one send per nonempty buffer, simultaneous.  Dequeues happen
     before any enqueue of this step, so simultaneity is exact. *)
  Dyn.clear t.pending;
  let old_active = t.active in
  t.active <- t.active_scratch;
  t.active_scratch <- old_active;
  Dyn.clear t.active;
  let n_active = Dyn.length old_active in
  if t.speedup = 1 then
    for i = 0 to n_active - 1 do
      let e = Dyn.get old_active i in
      let buf = t.buffers.(e) in
      (* The active list never holds empty buffers, so [take] cannot fail. *)
      let p = Buffer_q.take buf in
      t.occupancy <- t.occupancy - 1;
      let dwell = t.now - p.buffered_at in
      if dwell > t.max_dwell then t.max_dwell <- dwell;
      t.sent_edge.(e) <- t.sent_edge.(e) + 1;
      (match t.tracer with
      | None -> ()
      | Some f ->
          f (Trace.Forwarded { t = t.now; packet = p.id; edge = e; dwell }));
      Dyn.push t.pending p;
      if Buffer_q.is_empty buf then t.active_flag.(e) <- false
      else Dyn.push t.active e
    done
  else
    for i = 0 to n_active - 1 do
      let e = Dyn.get old_active i in
      let buf = t.buffers.(e) in
      (* Link speedup s: up to s sends per edge, still simultaneous — every
         dequeue of the substep happens before any enqueue. *)
      let len = Buffer_q.length buf in
      let k = if len < t.speedup then len else t.speedup in
      for _ = 1 to k do
        let p = Buffer_q.take buf in
        t.occupancy <- t.occupancy - 1;
        let dwell = t.now - p.buffered_at in
        if dwell > t.max_dwell then t.max_dwell <- dwell;
        t.sent_edge.(e) <- t.sent_edge.(e) + 1;
        (match t.tracer with
        | None -> ()
        | Some f ->
            f (Trace.Forwarded { t = t.now; packet = p.id; edge = e; dwell }));
        Dyn.push t.pending p
      done;
      if Buffer_q.is_empty buf then t.active_flag.(e) <- false
      else Dyn.push t.active e
    done;
  (* Substep 2: deliveries and injections, in the configured tie order. *)
  (match t.tie_order with
  | Transit_first ->
      deliver t;
      inject_all t ~exogenous:false injections
  | Injection_first ->
      inject_all t ~exogenous:false injections;
      deliver t);
  match exogenous with
  | [] -> ()
  | l -> inject_all t ~exogenous:true l

let reroute t (p : Packet.t) suffix =
  if Packet.is_absorbed p then
    invalid_arg "Network.reroute: packet already absorbed";
  (* Copy-on-reroute: the current route may be a shared interned array, so
     the rewrite always builds a fresh one. *)
  let new_route =
    Array.concat [ Array.sub p.route 0 (p.hop + 1); suffix ]
  in
  check_route t new_route;
  p.route <- new_route;
  p.reroutes <- p.reroutes + 1;
  t.reroutes <- t.reroutes + 1;
  match t.tracer with
  | None -> ()
  | Some f ->
      f
        (Trace.Rerouted
           { t = t.now; packet = p.id; route_len = Array.length new_route })

let buffer_len t e = Buffer_q.length t.buffers.(e)
let buffer_packets t e = Buffer_q.to_sorted_list t.buffers.(e)
let in_flight t = t.in_flight
let absorbed t = t.absorbed
let injected_count t = t.injected
let initial_count t = t.initials
let capacity t = t.capacity
let speedup t = t.speedup
let dropped t = t.dropped
let displaced t = t.displaced
let dropped_on_edge t e = t.dropped_edge.(e)
let occupancy t = t.occupancy
let peak_occupancy t = t.peak_occupancy

let iter_buffered f t =
  Dyn.iter (fun e -> Buffer_q.iter f t.buffers.(e)) t.active

let count_requiring t e =
  let count = ref 0 in
  iter_buffered
    (fun p ->
      let rec uses i =
        i < Array.length p.route && (p.route.(i) = e || uses (i + 1))
      in
      if uses p.hop then incr count)
    t;
  !count

let s_initial t =
  let best = ref 0 in
  for e = 0 to Digraph.n_edges t.graph - 1 do
    best := max !best (count_requiring t e)
  done;
  !best

let current_max_queue t =
  Dyn.fold_left (fun acc e -> max acc (Buffer_q.length t.buffers.(e))) 0 t.active

let max_queue_ever t = t.max_queue
let max_queue_of_edge t e = t.max_queue_edge.(e)
let sent_on_edge t e = t.sent_edge.(e)
let max_dwell t = t.max_dwell

let max_pending_dwell t =
  let best = ref 0 in
  iter_buffered (fun p -> best := max !best (t.now - p.buffered_at)) t;
  !best

let delivered_latency_max t = t.latency_max
let delivered_latency_percentile t p = Aqt_util.Histo.percentile t.latency_histo p

let delivered_latency_mean t =
  if t.absorbed = 0 then 0.0
  else float_of_int t.latency_sum /. float_of_int t.absorbed

let full_log t ~want_initial =
  match t.absorbed_log with
  | None ->
      invalid_arg "Network.injection_log: created without ~log_injections"
  | Some log ->
      let selected = Dyn.create () in
      Dyn.iter
        (fun (time, id, initial, route) ->
          if initial = want_initial then Dyn.push selected (time, id, route))
        log;
      iter_buffered
        (fun p ->
          if p.initial = want_initial && not p.exogenous then
            Dyn.push selected (p.injected_at, p.id, p.route))
        t;
      let all = Dyn.to_array selected in
      Array.sort
        (fun (t1, id1, _) (t2, id2, _) ->
          if t1 <> t2 then Int.compare t1 t2 else Int.compare id1 id2)
        all;
      all

let injection_log t =
  Array.map (fun (time, _, route) -> (time, route)) (full_log t ~want_initial:false)

let initial_final_routes t =
  Array.map (fun (_, _, route) -> route) (full_log t ~want_initial:true)

let reroute_count t = t.reroutes
let last_injection_on t e = t.last_use.(e)

let min_injection_time_in_flight t =
  let best = ref max_int in
  iter_buffered (fun p -> if p.injected_at < !best then best := p.injected_at) t;
  !best
