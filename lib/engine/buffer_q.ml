module H = Aqt_util.Binheap
module Dq = Aqt_util.Deque

(* Arrival-ordered policies get O(1) deques; everything else a binary heap
   keyed at enqueue.  The two representations are observationally equivalent
   for their disciplines (tested in test_engine/test_policy). *)
type impl =
  | Fifo of Packet.t Dq.t
  | Lifo of Packet.t Dq.t
  | Keyed of Packet.t H.t

type t = { impl : impl; mutable seq : int }

let create (policy : Policy_type.t) =
  let impl =
    match policy.discipline with
    | Policy_type.Arrival_order -> Fifo (Dq.create ())
    | Policy_type.Reverse_arrival -> Lifo (Dq.create ())
    | Policy_type.By_key -> Keyed (H.create ())
  in
  { impl; seq = 0 }

let length b =
  match b.impl with Fifo d | Lifo d -> Dq.length d | Keyed h -> H.length h

let is_empty b = length b = 0

let enqueue b (policy : Policy_type.t) ~now (p : Packet.t) =
  let seq = b.seq in
  b.seq <- seq + 1;
  match b.impl with
  | Fifo d | Lifo d -> Dq.push_back d p
  | Keyed h ->
      let key = policy.key p ~now ~seq in
      H.add h ~key ~tie:seq p

type admit = Admitted | Rejected | Displaced of Packet.t

(* Option-returning primitives, not try/with: the dequeue path runs once per
   nonempty buffer per step and must not allocate exceptions. *)
let dequeue b =
  match b.impl with
  | Fifo d -> Dq.pop_front_opt d
  | Lifo d -> Dq.pop_back_opt d
  | Keyed h -> H.pop_min_opt h

(* The step loop's branch-free variant: the active-edge list guarantees the
   buffer is nonempty, so skip even the option wrapper.  Raising here means
   the active-list invariant broke — an engine bug, not control flow. *)
let take b =
  match b.impl with
  | Fifo d -> Dq.pop_front d
  | Lifo d -> Dq.pop_back d
  | Keyed h -> H.pop_min h

(* Capacity-aware insertion.  A full buffer either rejects the arrival
   (drop-tail) or, with [drop_head], evicts the packet the policy would
   forward next — the head of the service order, so FIFO sheds its oldest
   packet and LIFO its newest.  [cap = 0] rejects unconditionally: there is
   no occupant to displace in favour of the arrival.  The arrival sequence
   counter advances only for packets actually admitted. *)
let enqueue_capped b policy ~now ~cap ~drop_head (p : Packet.t) =
  let len = length b in
  if len < cap then begin
    enqueue b policy ~now p;
    Admitted
  end
  else if drop_head && len > 0 then begin
    let victim = take b in
    enqueue b policy ~now p;
    Displaced victim
  end
  else Rejected

let peek b =
  match b.impl with
  | Fifo d -> Dq.peek_front_opt d
  | Lifo d -> Dq.peek_back_opt d
  | Keyed h -> H.min_elt_opt h

let iter f b =
  match b.impl with Fifo d | Lifo d -> Dq.iter f d | Keyed h -> H.iter f h

let to_sorted_list b =
  match b.impl with
  | Fifo d -> Dq.to_list d
  | Lifo d -> List.rev (Dq.to_list d)
  | Keyed h -> H.to_sorted_list h

let arrivals b = b.seq
