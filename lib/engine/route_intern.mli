(** Hash-consing of route arrays (the engine's zero-allocation fast path).

    Interning maps route {e contents} to one canonical array: every packet
    injected with the same route shares a single immutable array instead of
    carrying its own copy, and route validation runs once per distinct route
    rather than once per injection.  Lookups take a physical-equality fast
    path, so adversaries that keep reusing the same route value pay one hash
    per injection and nothing else.

    Canonical arrays are shared — they must never be mutated in place.
    [Network.reroute] respects this by replacing a packet's route with a
    fresh, non-interned array (copy-on-reroute).

    A table may be shared between several networks over the {e same} graph
    (e.g. every cell of a rate sweep) so the route set is validated and
    allocated once for the whole grid.  Do not share a table across networks
    with different graphs: validation performed for one graph does not carry
    over to another. *)

type t

val create : ?size:int -> unit -> t
(** [size] is the initial hash-table sizing hint (default 64). *)

val find : t -> int array -> int array option
(** The canonical array for these contents, if already interned.  Counts as
    a hit when found. *)

val add : t -> int array -> int array
(** Unconditionally interns a copy of the route and returns the canonical
    array.  The caller is responsible for having validated the route and for
    checking [find] first ([Network] does, so it can validate exactly once
    per distinct route). *)

val intern : t -> int array -> int array
(** [find] then [add]: the canonical array for the given contents. *)

val distinct : t -> int
(** Number of distinct routes interned. *)

val hits : t -> int

val misses : t -> int
(** Lookups that had to intern a new route (= [distinct] unless the caller
    used [add] directly). *)

val stats : t -> string
(** One-line human-readable summary. *)
