(** The run loop: drive a network with an adversary for a horizon of steps.

    A {!driver} is the engine-side view of an adversary: a hook called before
    each step (where rerouting happens) and the injections for each step.
    Richer adversary combinators live in [Aqt_adversary]. *)

type driver = {
  before_step : Network.t -> int -> unit;
      (** Called with the step number about to execute; may reroute. *)
  injections_at : Network.t -> int -> Network.injection list;
      (** Injections arriving in the second substep of the given step. *)
  observe_queues : (int array -> int -> unit) option;
      (** Feedback hook: called with the per-edge queue-length vector as it
          stands at the {e start} of the step (before [before_step] and the
          step's forwards), plus the step number — exactly the state the
          stability theorems quantify over, and the only state the
          feedback-routing adversary of arXiv:1812.11113 may react to.
          [None] (the default) skips the snapshot entirely. *)
}

val null_driver : driver
val injections_only : (Network.t -> int -> Network.injection list) -> driver

type stop =
  | Horizon  (** Ran the full requested number of steps. *)
  | Drained  (** Network empty and the step injected nothing. *)
  | Blowup of int  (** A buffer exceeded the blowup threshold. *)
  | Stopped of string  (** Custom predicate fired. *)

type outcome = {
  stop : stop;
  steps_run : int;
  final_in_flight : int;
  max_queue : int;
  max_dwell : int;
  dropped : int;  (** capacity-model drops over the run (0 when unbounded) *)
}

val run :
  ?recorder:Recorder.t ->
  ?blowup:int ->
  ?stop_when:(Network.t -> string option) ->
  ?drain_stop:bool ->
  net:Network.t ->
  driver:driver ->
  horizon:int ->
  unit ->
  outcome
(** Runs up to [horizon] further steps.  [blowup] stops the run as unstable
    when any buffer ever exceeds that many packets.  [drain_stop] (default
    false) stops once the network is empty after a step with no injections.
    [stop_when] is evaluated after each step. *)

val run_steps : ?recorder:Recorder.t -> net:Network.t -> driver:driver -> int -> unit
(** [run_steps ~net ~driver n] executes exactly [n] steps with none of
    [run]'s per-step machinery (no blowup cap, stop predicate or outcome
    value) — the batched fast path for steady-state workloads.  Query the
    network afterwards for whatever statistics you need. *)

val pp_stop : Format.formatter -> stop -> unit
