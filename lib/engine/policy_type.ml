type discipline = Arrival_order | Reverse_arrival | By_key

type t = {
  name : string;
  key : Packet.t -> now:int -> seq:int -> int;
  discipline : discipline;
  time_priority : bool;
  historic : bool;
}
