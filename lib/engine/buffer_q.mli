(** The buffer at the tail of one link.

    A priority queue of packets ordered by the policy key computed at
    enqueue time, ties broken by arrival order.  Arrival-ordered disciplines
    (FIFO/LIFO) use O(1) deques; general priorities use an O(log k) binary
    heap. *)

type t

val create : Policy_type.t -> t
(* The policy's discipline selects the representation. *)
val length : t -> int
val is_empty : t -> bool

val enqueue : t -> Policy_type.t -> now:int -> Packet.t -> unit
(** Computes the policy key for the packet and inserts it. *)

type admit =
  | Admitted  (** the arrival was enqueued *)
  | Rejected  (** the buffer was full (or [cap = 0]); the arrival is lost *)
  | Displaced of Packet.t
      (** the arrival was enqueued after evicting the returned packet — the
          one the policy would have forwarded next *)

val enqueue_capped :
  t -> Policy_type.t -> now:int -> cap:int -> drop_head:bool -> Packet.t ->
  admit
(** [enqueue] against a finite capacity [cap].  With [drop_head] a full
    buffer evicts its service-order head to admit the arrival; without it
    the arrival is rejected (drop-tail).  [cap = 0] always rejects.  Only
    admitted packets advance the {!arrivals} counter. *)

val dequeue : t -> Packet.t option
(** Removes and returns the packet the policy forwards next. *)

val take : t -> Packet.t
(** [dequeue] for a buffer the caller knows is nonempty (the step loop only
    visits active edges); allocates nothing.
    @raise Not_found if empty — an invariant violation, not control flow. *)

val peek : t -> Packet.t option
val iter : (Packet.t -> unit) -> t -> unit
(** Arbitrary order. *)

val to_sorted_list : t -> Packet.t list
(** Forwarding order (head of the queue first). *)

val arrivals : t -> int
(** Total packets ever admitted here (the arrival sequence counter);
    arrivals rejected by {!enqueue_capped} do not count. *)
