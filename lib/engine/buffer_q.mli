(** The buffer at the tail of one link.

    A priority queue of packets ordered by the policy key computed at
    enqueue time, ties broken by arrival order.  Arrival-ordered disciplines
    (FIFO/LIFO) use O(1) deques; general priorities use an O(log k) binary
    heap. *)

type t

val create : Policy_type.t -> t
(* The policy's discipline selects the representation. *)
val length : t -> int
val is_empty : t -> bool

val enqueue : t -> Policy_type.t -> now:int -> Packet.t -> unit
(** Computes the policy key for the packet and inserts it. *)

val dequeue : t -> Packet.t option
(** Removes and returns the packet the policy forwards next. *)

val take : t -> Packet.t
(** [dequeue] for a buffer the caller knows is nonempty (the step loop only
    visits active edges); allocates nothing.
    @raise Not_found if empty — an invariant violation, not control flow. *)

val peek : t -> Packet.t option
val iter : (Packet.t -> unit) -> t -> unit
(** Arbitrary order. *)

val to_sorted_list : t -> Packet.t list
(** Forwarding order (head of the queue first). *)

val arrivals : t -> int
(** Total packets ever enqueued here (the arrival sequence counter). *)
