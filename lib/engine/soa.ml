(* Struct-of-arrays engine core with domain-partitioned parallel stepping.

   The record engine ([Network]) chases a heap-allocated [Packet.t] per
   packet through per-edge deques: every forward is at least three dependent
   pointer loads, so a step over a large graph is cache-miss-bound and
   strictly single-core.  This module keeps the same observable semantics —
   verified packet-for-packet against [Aqt_check.Ref_model] by the lockstep
   differ — but stores every packet field in a flat [int] array indexed by a
   packet *slot*, and every per-edge buffer as an index slice into a shared
   arena, so one simulation step is a cache-linear sweep with zero per-step
   allocation in steady state.

   Layout
   ------
   - Packet slab: parallel arrays [pid]/[inj_at]/[pkey]/[pseq]/[pflag] of
     identity fields, all indexed by slot; the positional fields (hop,
     route slice, buffered-at) live inline in the buffer records — see
     [stride] below.  Slots of absorbed or dropped packets go on a free
     stack and are reinitialised in place — recycling is structural here,
     not opt-in.
   - Route arena: one flat [int array] of edge ids; a packet's route is the
     slice [r_off, r_off + r_len).  Routes are content-interned (the same
     mixing discipline as [Route_intern]) so validation runs once per
     distinct route; reroutes append a fresh slice (copy-on-reroute), never
     mutate one in place.
   - Buffers: per edge an [off/cap/len/head] quadruple describing a slice
     of [stride]-word packet records in a partition-owned arena.
     Arrival-ordered policies use the slice as a ring deque; [By_key]
     policies as a binary heap on (key, seq) — the same service orders as
     [Buffer_q].  A full slice relocates to the end of its arena with
     doubled capacity (bump allocation; the abandoned slice is garbage
     until the run ends, bounded by the doubling).

   Parallel stepping
   -----------------
   Edges are partitioned into [domains] contiguous blocks, each owned by one
   OCaml 5 domain (a persistent pool; workers block on a condition variable
   between phases).  A step is two deterministic phases:

   1. Forward: every domain scans the shared active list and pops up to
      [speedup] packets from the edges it owns into position-indexed slots
      of a shared pending buffer.  Positions encode the sequential order, so
      no synchronisation order can leak into the trajectory.
   2. Exchange/deliver: every domain scans the pending buffer *in position
      order* and handles exactly the packets whose destination edge (or, for
      absorptions, last-traversed edge) it owns.  Per-destination enqueue
      order therefore equals the sequential order.  Newly activated edges
      are recorded as (position, edge) pairs per domain and merged by
      position at the barrier — the exact activation order of the
      sequential engine.  Stats are accumulated per domain and folded at
      the barrier (sums, maxima, histogram buckets — all order-free).

   Injections always run on the main domain at a barrier, and a shared
   (Dynamic-Threshold) capacity model forces the delivery phase sequential,
   because its admission test reads global occupancy mid-substep.  The
   result: trajectories are identical to the sequential engine for every
   domain count, which [Aqt_check.Diff] asserts per step. *)

module Dyn = Aqt_util.Dynarray_compat
module Digraph = Aqt_graph.Digraph
module Capacity = Aqt_capacity.Model

type injection = Network.injection = { route : int array; tag : string }

(* ------------------------------------------------------------------ *)
(* Route interning: contents -> arena offset                           *)
(* ------------------------------------------------------------------ *)

let rec arrays_equal_from (a : int array) b la i =
  i >= la
  || (Array.unsafe_get a i = Array.unsafe_get b i
     && arrays_equal_from a b la (i + 1))

module RH = Hashtbl.Make (struct
  type t = int array

  let equal a b =
    a == b
    ||
    let la = Array.length a in
    la = Array.length b && arrays_equal_from a b la 0

  (* Same mixing discipline as [Route_intern]: multiplicative-xor over the
     length, the first few and the last two elements, with a final
     avalanche shift (see that module for why h*31+x collapses ring
     routes). *)
  let hash r =
    let n = Array.length r in
    let h = ref (n * 0x9e3779b1) in
    let upto = if n > 8 then 8 else n in
    for i = 0 to upto - 1 do
      h := (!h lxor Array.unsafe_get r i) * 0x9e3779b1
    done;
    if n > 8 then begin
      h := (!h lxor Array.unsafe_get r (n - 1)) * 0x9e3779b1;
      h := (!h lxor Array.unsafe_get r (n - 2)) * 0x9e3779b1
    end;
    let h = !h in
    (h lxor (h lsr 29)) land max_int
end)

(* ------------------------------------------------------------------ *)
(* Persistent domain pool                                              *)
(* ------------------------------------------------------------------ *)

type pool = {
  size : int; (* partitions, including the main domain *)
  mutable workers : unit Domain.t array;
  lock : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable busy : int;
  mutable stopping : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  (* Cumulative minor words allocated inside jobs, per worker.  OCaml 5 GC
     counters are per-domain, so the main domain's [Gc.minor_words] misses
     everything the workers allocate; [Recorder] adds this in. *)
  worker_minor_words : float array;
}

let pool_worker pool idx () =
  let continue = ref true in
  let seen = ref 0 in
  while !continue do
    Mutex.lock pool.lock;
    while (not pool.stopping) && pool.epoch = !seen do
      Condition.wait pool.start pool.lock
    done;
    if pool.stopping then begin
      Mutex.unlock pool.lock;
      continue := false
    end
    else begin
      seen := pool.epoch;
      let job = Option.get pool.job in
      Mutex.unlock pool.lock;
      let before = Gc.minor_words () in
      let failed =
        try
          job idx;
          None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      pool.worker_minor_words.(idx - 1) <-
        pool.worker_minor_words.(idx - 1) +. (Gc.minor_words () -. before);
      Mutex.lock pool.lock;
      (match failed with
      | Some _ when pool.failure = None -> pool.failure <- failed
      | _ -> ());
      pool.busy <- pool.busy - 1;
      if pool.busy = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.lock
    end
  done

let pool_create size =
  let pool =
    {
      size;
      workers = [||];
      lock = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      epoch = 0;
      busy = 0;
      stopping = false;
      failure = None;
      worker_minor_words = Array.make (max 1 (size - 1)) 0.0;
    }
  in
  pool.workers <-
    Array.init (size - 1) (fun i -> Domain.spawn (pool_worker pool (i + 1)));
  pool

(* Run [f 0..size-1] across the pool; the main domain takes partition 0.
   Worker exceptions are re-raised here with their original backtrace. *)
let pool_run pool f =
  Mutex.lock pool.lock;
  pool.job <- Some f;
  pool.busy <- pool.size - 1;
  pool.epoch <- pool.epoch + 1;
  Condition.broadcast pool.start;
  Mutex.unlock pool.lock;
  f 0;
  Mutex.lock pool.lock;
  while pool.busy > 0 do
    Condition.wait pool.finished pool.lock
  done;
  let failure = pool.failure in
  pool.failure <- None;
  Mutex.unlock pool.lock;
  match failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let pool_shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.start;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

let flag_initial = 1

(* A buffered (or in-transit) packet is a [stride]-word record living
   inline in a buffer slice or the pending array:

     [slot; hop; r_off; r_len; buffered_at]

   Hot positional state travels WITH the packet through sequential memory —
   forwarding is a 5-word copy between slices that the hardware prefetcher
   streams — while the identity fields nobody touches per forward (logical
   id, injection time, flags, policy key/seq) stay in slot-indexed slab
   arrays, paid for only at absorb/drop/enqueue-key time.  An earlier
   all-slab layout cost ~4 dependent cache misses per delivered packet at
   10⁶ edges (uncorrelated recycled slot ids); inlining took the 10⁶-edge
   ring from ~178 to well under 40 ns/edge-step. *)
let stride = 5

let o_slot = 0
let o_hop = 1
let o_off = 2
let o_len = 3
let o_buf = 4

(* All hot per-edge state packs into one [estride]-word record — exactly a
   64-byte cache line — so a forward touches one line for the source edge
   and one for the destination instead of eight scattered arrays.  Slice
   capacities are powers of two ([grow_buffer] doubles from 4) so the ring
   positions use a mask, not a hardware division.  Cold per-edge arrays
   ([caps], [dropped_edge], [last_use]) stay separate. *)
let estride = 8

let eo_off = 0 (* slice offset in the partition arena, record units *)
let eo_cap = 1 (* slice capacity, record units; 0 or a power of two *)
let eo_len = 2
let eo_head = 3 (* ring head (deque disciplines only) *)
let eo_seq = 4 (* arrival counter *)
let eo_sent = 5 (* packets forwarded, ever *)
let eo_maxq = 6 (* max queue length, ever *)
let eo_flag = 7 (* 1 while on the active list *)

type t = {
  graph : Digraph.t;
  policy : Policy_type.t;
  keyed : bool; (* discipline = By_key: buffers are heaps *)
  lifo : bool; (* Reverse_arrival: serve the back of the deque *)
  fast : bool; (* FIFO + unbounded: fused pop/enqueue fast paths apply *)
  tie_order : Network.tie_order;
  validate_routes : bool;
  m : int;
  (* Compiled capacity model, as in [Network]. *)
  capacity : Capacity.t;
  bounded : bool;
  speedup : int;
  caps : int array;
  drop_head : bool;
  shared_total : int;
  dt_num : int;
  dt_den : int;
  (* Packet slab: identity fields only, one slot per live packet.  The
     positional fields are the inline records (see [stride] above). *)
  mutable slots : int; (* capacity of every slab array *)
  mutable pid : int array;
  mutable inj_at : int array;
  mutable pkey : int array; (* policy key, fixed at enqueue (By_key) *)
  mutable pseq : int array; (* per-edge arrival seq, fixed at enqueue *)
  mutable pflag : int array;
  mutable free : int array; (* stack of recycled slots *)
  mutable n_free : int;
  mutable hi_slot : int; (* slots [0, hi_slot) have ever been used *)
  (* Route arena + intern table. *)
  mutable rarena : int array;
  mutable rtop : int;
  rtable : int RH.t; (* contents -> offset (length = key length) *)
  (* Per-edge buffer slices of [stride]-word records; [barena.(owner e)]
     holds them.  Growth by relocation-with-doubling, owner-local so the
     exchange phase never contends on a bump pointer.  [b_off]/[b_cap]/
     [b_head] are in record units; word index = stride * element. *)
  barena : int array array; (* one record arena per partition *)
  btop : int array; (* per-partition bump pointer, record units *)
  emeta : int array; (* [estride] words per edge — see [eo_*] above *)
  (* Active-edge list, activation order, double-buffered across steps. *)
  mutable active : int array;
  mutable n_active : int;
  mutable active_old : int array;
  (* Pending (forwarded this step).  Sequential mode fills [0, pend_n)
     densely; parallel mode uses stride [speedup] per active position with
     per-position counts so writers never share an index. *)
  mutable pending : int array;
  mutable pend_n : int;
  mutable pend_cnt : int array;
  (* Parallel mode: the destination of each pending packet, written by the
     source-edge owner in phase 1 where nobody mutates [hop].  Edge id for
     an enqueue, [-1 - last_edge] for an absorption.  Ownership decisions
     in the delivery phase MUST read this, not recompute from [hop]: the
     destination owner increments [hop] mid-phase, and a non-owner
     recomputing from the incremented value would adopt the packet too —
     the classic double-delivery race. *)
  mutable pend_dest : int array;
  (* Counters and instrumentation — names match [Network]. *)
  mutable now : int;
  mutable next_id : int;
  mutable in_flight : int;
  mutable absorbed : int;
  mutable injected : int;
  mutable initials : int;
  mutable reroutes : int;
  mutable occupancy : int;
  mutable peak_occupancy : int;
  mutable dropped : int;
  mutable displaced : int;
  dropped_edge : int array;
  mutable max_queue : int;
  mutable max_dwell : int;
  mutable latency_sum : int;
  mutable latency_max : int;
  latency_histo : Aqt_util.Histo.t;
  last_use : int array;
  (* (injected_at, id, initial?, r_off, r_len) of closed packets.  Offsets
     are stable snapshots: the route arena is append-only. *)
  log : (int * int * bool * int * int) Dyn.t option;
  (* Parallelism. *)
  ndom : int;
  pool : pool option;
  block : int; (* edges per partition *)
  (* Per-domain accumulators, folded at barriers. *)
  d_occ : int array;
  d_deq : int array;
  d_absorbed : int array;
  d_dropped : int array;
  d_displaced : int array;
  d_max_dwell : int array;
  d_max_queue : int array;
  d_lat_sum : int array;
  d_lat_max : int array;
  d_histo : Aqt_util.Histo.t array;
  d_free : int Dyn.t array;
  d_log : (int * int * bool * int * int) Dyn.t array;
  (* (position, edge) streams, position-sorted by construction. *)
  d_still_pos : int Dyn.t array;
  d_still_edge : int Dyn.t array;
  d_act_pos : int Dyn.t array;
  d_act_edge : int Dyn.t array;
  (* Key computation for [By_key] policies goes through a per-domain scratch
     [Packet.t] (and per-length scratch route arrays) so arbitrary key
     functions see a faithful packet without per-enqueue allocation.  Key
     functions must be pure — the deterministic stock policies are. *)
  scratch_pkt : Packet.t array;
  scratch_routes : (int, int array) Hashtbl.t array;
  (* Per-domain staging records: words [0, stride) hold a drop-head victim
     popped mid-admission; [stride, 2*stride) a freshly injected packet
     (main domain only) — disjoint so an injection that displaces a victim
     uses both at once. *)
  scratch_rec : int array array;
  (* Lookahead accumulator: the stepping loops touch state a few
     iterations ahead to overlap the strided cache misses; the touched
     words are xor-folded here so the loads cannot be dead-code. *)
  mutable sink : int;
}

let create ?(log_injections = false) ?(validate_routes = true)
    ?(tie_order = Network.Transit_first) ?(capacity = Capacity.unbounded)
    ?(domains = 1) ~graph ~(policy : Policy_type.t) () =
  if domains < 1 then invalid_arg "Soa.create: domains must be >= 1";
  let m = Digraph.n_edges graph in
  let ndom = max 1 (min domains (max 1 m)) in
  let scratch_pkt () : Packet.t =
    {
      id = 0;
      injected_at = 0;
      initial = false;
      exogenous = false;
      tag = "";
      route = [||];
      hop = 0;
      buffered_at = 0;
      reroutes = 0;
    }
  in
  {
    graph;
    policy;
    keyed = policy.discipline = Policy_type.By_key;
    lifo = policy.discipline = Policy_type.Reverse_arrival;
    fast =
      policy.discipline = Policy_type.Arrival_order
      && Capacity.is_unbounded capacity;
    tie_order;
    validate_routes;
    m;
    capacity;
    bounded = not (Capacity.is_unbounded capacity);
    speedup = Capacity.speedup capacity;
    caps = Capacity.caps capacity ~m;
    drop_head = Capacity.drop_head capacity;
    shared_total = Capacity.shared_total capacity;
    dt_num = fst (Capacity.alpha capacity);
    dt_den = snd (Capacity.alpha capacity);
    slots = 0;
    pid = [||];
    inj_at = [||];
    pkey = [||];
    pseq = [||];
    pflag = [||];
    free = [||];
    n_free = 0;
    hi_slot = 0;
    rarena = [||];
    rtop = 0;
    rtable = RH.create 64;
    barena = Array.init ndom (fun _ -> [||]);
    btop = Array.make ndom 0;
    emeta = Array.make (estride * m) 0;
    active = Array.make 8 0;
    n_active = 0;
    active_old = Array.make 8 0;
    pending = [||];
    pend_n = 0;
    pend_cnt = [||];
    pend_dest = [||];
    now = 0;
    next_id = 0;
    in_flight = 0;
    absorbed = 0;
    injected = 0;
    initials = 0;
    reroutes = 0;
    occupancy = 0;
    peak_occupancy = 0;
    dropped = 0;
    displaced = 0;
    dropped_edge = Array.make m 0;
    max_queue = 0;
    max_dwell = 0;
    latency_sum = 0;
    latency_max = 0;
    latency_histo = Aqt_util.Histo.create ();
    last_use = Array.make m min_int;
    log = (if log_injections then Some (Dyn.create ()) else None);
    ndom;
    pool = (if ndom > 1 then Some (pool_create ndom) else None);
    block = (m + ndom - 1) / ndom;
    d_occ = Array.make ndom 0;
    d_deq = Array.make ndom 0;
    d_absorbed = Array.make ndom 0;
    d_dropped = Array.make ndom 0;
    d_displaced = Array.make ndom 0;
    d_max_dwell = Array.make ndom 0;
    d_max_queue = Array.make ndom 0;
    d_lat_sum = Array.make ndom 0;
    d_lat_max = Array.make ndom 0;
    d_histo = Array.init ndom (fun _ -> Aqt_util.Histo.create ());
    d_free = Array.init ndom (fun _ -> Dyn.create ());
    d_log = Array.init ndom (fun _ -> Dyn.create ());
    d_still_pos = Array.init ndom (fun _ -> Dyn.create ());
    d_still_edge = Array.init ndom (fun _ -> Dyn.create ());
    d_act_pos = Array.init ndom (fun _ -> Dyn.create ());
    d_act_edge = Array.init ndom (fun _ -> Dyn.create ());
    scratch_pkt = Array.init ndom (fun _ -> scratch_pkt ());
    scratch_routes = Array.init ndom (fun _ -> Hashtbl.create 8);
    scratch_rec = Array.init ndom (fun _ -> Array.make (2 * stride) 0);
    sink = 0;
  }

let shutdown t = match t.pool with Some p -> pool_shutdown p | None -> ()
let owner t e = if t.ndom = 1 then 0 else min (t.ndom - 1) (e / t.block)

(* ---------------- slab ---------------- *)

let grow_int_array a n = Array.append a (Array.make (max n (Array.length a)) 0)

let ensure_slab t =
  if t.hi_slot = t.slots then begin
    let n = if t.slots = 0 then 256 else t.slots in
    t.pid <- grow_int_array t.pid n;
    t.inj_at <- grow_int_array t.inj_at n;
    t.pkey <- grow_int_array t.pkey n;
    t.pseq <- grow_int_array t.pseq n;
    t.pflag <- grow_int_array t.pflag n;
    t.slots <- Array.length t.pid
  end

let alloc_slot t =
  if t.n_free > 0 then begin
    t.n_free <- t.n_free - 1;
    Array.unsafe_get t.free t.n_free
  end
  else begin
    ensure_slab t;
    let s = t.hi_slot in
    t.hi_slot <- s + 1;
    s
  end

let free_slot t s =
  if t.n_free = Array.length t.free then
    t.free <- grow_int_array t.free (max 256 t.n_free);
  Array.unsafe_set t.free t.n_free s;
  t.n_free <- t.n_free + 1

(* ---------------- route arena ---------------- *)

let ensure_rarena t n =
  if t.rtop + n > Array.length t.rarena then begin
    let cap = max (2 * Array.length t.rarena) (t.rtop + n) in
    let cap = max cap 64 in
    let a = Array.make cap 0 in
    Array.blit t.rarena 0 a 0 t.rtop;
    t.rarena <- a
  end

let append_route t (route : int array) =
  let n = Array.length route in
  ensure_rarena t n;
  Array.blit route 0 t.rarena t.rtop n;
  let off = t.rtop in
  t.rtop <- off + n;
  off

let check_route t route =
  if t.validate_routes && not (Digraph.route_is_simple t.graph route) then
    invalid_arg
      (Format.asprintf "Soa: route %a is not a simple path"
         (Digraph.pp_route t.graph) route)

let intern_route t route =
  match RH.find_opt t.rtable route with
  | Some off -> off
  | None ->
      check_route t route;
      let off = append_route t route in
      RH.add t.rtable (Array.copy route) off;
      off

(* ---------------- per-edge buffers ---------------- *)

(* Unrolled [stride]-word copy: [Array.blit] is a C call whose fixed cost
   (tag and bounds checks, memmove dispatch) dwarfs a 5-word move and shows
   up as ~2x on the whole step.  Word order makes overlapping forward
   copies safe for our only overlapping caller ([heap_pop], dst < src). *)
let[@inline] blit_rec src spos dst dpos =
  Array.unsafe_set dst (dpos + 0) (Array.unsafe_get src (spos + 0));
  Array.unsafe_set dst (dpos + 1) (Array.unsafe_get src (spos + 1));
  Array.unsafe_set dst (dpos + 2) (Array.unsafe_get src (spos + 2));
  Array.unsafe_set dst (dpos + 3) (Array.unsafe_get src (spos + 3));
  Array.unsafe_set dst (dpos + 4) (Array.unsafe_get src (spos + 4))

(* Relocate the slice at [emeta.(eb ..)] to the end of its partition arena
   with at least double the capacity, normalising the ring head to 0.  All
   offsets are in record units; the arena itself is a word array. *)
let grow_buffer t d eb =
  let em = t.emeta in
  let cap = Array.unsafe_get em (eb + eo_cap) in
  let ncap = if cap = 0 then 4 else 2 * cap in
  let arena = t.barena.(d) in
  let need = stride * (t.btop.(d) + ncap) in
  let arena =
    if need > Array.length arena then begin
      let c = max (2 * Array.length arena) need in
      let c = max c (stride * 64) in
      let a = Array.make c 0 in
      Array.blit arena 0 a 0 (stride * t.btop.(d));
      t.barena.(d) <- a;
      a
    end
    else arena
  in
  let noff = t.btop.(d) in
  t.btop.(d) <- noff + ncap;
  let off = Array.unsafe_get em (eb + eo_off)
  and head = Array.unsafe_get em (eb + eo_head)
  and len = Array.unsafe_get em (eb + eo_len) in
  (* Ring copy for deques; heaps have head = 0 so this is a straight blit
     for them.  Source and destination never overlap: [noff] starts past
     the old bump pointer. *)
  let mask = cap - 1 in
  for i = 0 to len - 1 do
    blit_rec arena
      (stride * (off + ((head + i) land mask)))
      arena
      (stride * (noff + i))
  done;
  Array.unsafe_set em (eb + eo_off) noff;
  Array.unsafe_set em (eb + eo_cap) ncap;
  Array.unsafe_set em (eb + eo_head) 0

(* Heap order: least (key, seq) first — the service order of [Buffer_q]'s
   [Keyed] implementation.  [wa]/[wb] are word indices of records; the key
   and seq live in the slab, so keyed policies pay the slot dereference
   the deque disciplines avoid. *)
let heap_less t arena wa wb =
  let sa = Array.unsafe_get arena (wa + o_slot)
  and sb = Array.unsafe_get arena (wb + o_slot) in
  let ka = Array.unsafe_get t.pkey sa and kb = Array.unsafe_get t.pkey sb in
  ka < kb
  || (ka = kb && Array.unsafe_get t.pseq sa < Array.unsafe_get t.pseq sb)

let swap_rec arena wa wb =
  for k = 0 to stride - 1 do
    let tmp = Array.unsafe_get arena (wa + k) in
    Array.unsafe_set arena (wa + k) (Array.unsafe_get arena (wb + k));
    Array.unsafe_set arena (wb + k) tmp
  done

(* Enqueue/dequeue move whole records: sources are the pending array or a
   scratch record, never the arena itself, so a [grow_buffer] relocation
   cannot invalidate [src]. *)
let heap_push t d eb src spos =
  let em = t.emeta in
  if em.(eb + eo_len) = em.(eb + eo_cap) then grow_buffer t d eb;
  let arena = t.barena.(d) in
  let off = Array.unsafe_get em (eb + eo_off) in
  let i = ref (Array.unsafe_get em (eb + eo_len)) in
  Array.unsafe_set em (eb + eo_len) (!i + 1);
  blit_rec src spos arena (stride * (off + !i));
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let wi = stride * (off + !i) and wp = stride * (off + parent) in
    if heap_less t arena wi wp then begin
      swap_rec arena wi wp;
      i := parent
    end
    else continue := false
  done

let heap_pop t d eb dst dpos =
  let em = t.emeta in
  let arena = t.barena.(d) in
  let off = Array.unsafe_get em (eb + eo_off) in
  blit_rec arena (stride * off) dst dpos;
  let len = Array.unsafe_get em (eb + eo_len) - 1 in
  Array.unsafe_set em (eb + eo_len) len;
  if len > 0 then begin
    blit_rec arena (stride * (off + len)) arena (stride * off);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= len then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < len
            && heap_less t arena (stride * (off + r)) (stride * (off + l))
          then r
          else l
        in
        let wc = stride * (off + c) and wi = stride * (off + !i) in
        if heap_less t arena wc wi then begin
          swap_rec arena wi wc;
          i := c
        end
        else continue := false
      end
    done
  end

let deque_push t d eb src spos =
  let em = t.emeta in
  if em.(eb + eo_len) = em.(eb + eo_cap) then grow_buffer t d eb;
  let arena = t.barena.(d) in
  let len = Array.unsafe_get em (eb + eo_len) in
  blit_rec src spos arena
    (stride
    * (Array.unsafe_get em (eb + eo_off)
      + ((Array.unsafe_get em (eb + eo_head) + len)
        land (Array.unsafe_get em (eb + eo_cap) - 1))));
  Array.unsafe_set em (eb + eo_len) (len + 1)

let deque_pop_front t d eb dst dpos =
  let em = t.emeta in
  let arena = t.barena.(d) in
  let head = Array.unsafe_get em (eb + eo_head) in
  blit_rec arena (stride * (Array.unsafe_get em (eb + eo_off) + head)) dst dpos;
  Array.unsafe_set em (eb + eo_head)
    ((head + 1) land (Array.unsafe_get em (eb + eo_cap) - 1));
  Array.unsafe_set em (eb + eo_len) (Array.unsafe_get em (eb + eo_len) - 1)

let deque_pop_back t d eb dst dpos =
  let em = t.emeta in
  let len = Array.unsafe_get em (eb + eo_len) - 1 in
  Array.unsafe_set em (eb + eo_len) len;
  blit_rec t.barena.(d)
    (stride
    * (Array.unsafe_get em (eb + eo_off)
      + ((Array.unsafe_get em (eb + eo_head) + len)
        land (Array.unsafe_get em (eb + eo_cap) - 1))))
    dst dpos

(* Pop the record the policy forwards next ([Buffer_q.take]) into
   [dst.(dpos, dpos + stride)]. *)
let take t d eb dst dpos =
  if t.keyed then heap_pop t d eb dst dpos
  else if t.lifo then deque_pop_back t d eb dst dpos
  else deque_pop_front t d eb dst dpos

(* Enqueue the record at [src.(spos ..)] on the edge whose meta is at
   [emeta.(eb ..)]: stamp the buffering time, assign the arrival seq,
   compute the policy key through the scratch packet when the discipline
   needs one, insert. *)
let push t d eb src spos =
  let seq = Array.unsafe_get t.emeta (eb + eo_seq) in
  Array.unsafe_set t.emeta (eb + eo_seq) (seq + 1);
  Array.unsafe_set src (spos + o_buf) t.now;
  if t.keyed then begin
    let s = Array.unsafe_get src (spos + o_slot) in
    Array.unsafe_set t.pseq s seq;
    let p = t.scratch_pkt.(d) in
    let len = Array.unsafe_get src (spos + o_len) in
    let route =
      match Hashtbl.find_opt t.scratch_routes.(d) len with
      | Some a -> a
      | None ->
          let a = Array.make (max len 1) 0 in
          Hashtbl.add t.scratch_routes.(d) len a;
          a
    in
    Array.blit t.rarena (Array.unsafe_get src (spos + o_off)) route 0 len;
    p.Packet.id <- Array.unsafe_get t.pid s;
    p.Packet.injected_at <- Array.unsafe_get t.inj_at s;
    p.Packet.initial <- Array.unsafe_get t.pflag s land flag_initial <> 0;
    p.Packet.route <- route;
    p.Packet.hop <- Array.unsafe_get src (spos + o_hop);
    p.Packet.buffered_at <- t.now;
    Array.unsafe_set t.pkey s (t.policy.key p ~now:t.now ~seq);
    heap_push t d eb src spos
  end
  else deque_push t d eb src spos

(* ------------------------------------------------------------------ *)
(* Admission (arrival at a buffer under the capacity model)            *)
(* ------------------------------------------------------------------ *)

(* Sequential bookkeeping after a successful enqueue — mirrors
   [Network.post_enqueue], including the per-enqueue peak update. *)
let post_enqueue_seq t e eb =
  let em = t.emeta in
  if Array.unsafe_get em (eb + eo_flag) = 0 then begin
    Array.unsafe_set em (eb + eo_flag) 1;
    if t.n_active = Array.length t.active then
      t.active <- grow_int_array t.active (max 8 t.n_active);
    Array.unsafe_set t.active t.n_active e;
    t.n_active <- t.n_active + 1
  end;
  t.occupancy <- t.occupancy + 1;
  if t.occupancy > t.peak_occupancy then t.peak_occupancy <- t.occupancy;
  let len = Array.unsafe_get em (eb + eo_len) in
  if len > t.max_queue then t.max_queue <- len;
  if len > Array.unsafe_get em (eb + eo_maxq) then
    Array.unsafe_set em (eb + eo_maxq) len

(* The route slice of a closed packet comes from its record ([off]/[len]);
   identity fields still live in the slab. *)
let log_closed t d (s : int) off len =
  match t.log with
  | Some _ when Array.unsafe_get t.pflag s land 2 = 0 ->
      (* bit 1 = exogenous; [Soa.step] has no exogenous injections, so the
         bit is never set — kept for slab-layout parity with [Packet]. *)
      Dyn.push t.d_log.(d)
        ( Array.unsafe_get t.inj_at s,
          Array.unsafe_get t.pid s,
          Array.unsafe_get t.pflag s land flag_initial <> 0,
          off,
          len )
  | _ -> ()

let drop_packet_d t d src spos e ~displaced =
  let s = Array.unsafe_get src (spos + o_slot) in
  t.d_dropped.(d) <- t.d_dropped.(d) + 1;
  t.dropped_edge.(e) <- t.dropped_edge.(e) + 1;
  if displaced then t.d_displaced.(d) <- t.d_displaced.(d) + 1;
  log_closed t d s
    (Array.unsafe_get src (spos + o_off))
    (Array.unsafe_get src (spos + o_len));
  Dyn.push t.d_free.(d) s

(* Domain-local admission of the record at [src.(spos ..)]: every branch
   that is legal in the parallel delivery phase (a shared capacity model
   forces the sequential path).  Length-based per-enqueue maxima are
   tracked in the domain accumulators and folded at the barrier. *)
let admit_d t d src spos e =
  let em = t.emeta in
  let eb = estride * e in
  let admitted =
    if not t.bounded then begin
      push t d eb src spos;
      true
    end
    else if Array.unsafe_get em (eb + eo_len) < t.caps.(e) then begin
      push t d eb src spos;
      true
    end
    else if t.drop_head && Array.unsafe_get em (eb + eo_len) > 0 then begin
      let vic = t.scratch_rec.(d) in
      take t d eb vic 0;
      t.d_occ.(d) <- t.d_occ.(d) - 1;
      drop_packet_d t d vic 0 e ~displaced:true;
      push t d eb src spos;
      true
    end
    else begin
      drop_packet_d t d src spos e ~displaced:false;
      false
    end
  in
  if admitted then begin
    t.d_occ.(d) <- t.d_occ.(d) + 1;
    let len = Array.unsafe_get em (eb + eo_len) in
    if len > t.d_max_queue.(d) then t.d_max_queue.(d) <- len;
    if len > Array.unsafe_get em (eb + eo_maxq) then
      Array.unsafe_set em (eb + eo_maxq) len;
    if Array.unsafe_get em (eb + eo_flag) = 0 then
      Array.unsafe_set em (eb + eo_flag) 1
      (* Activation recorded as (position, edge); merged by position at the
         barrier.  The caller stores the position just before us. *)
  end;
  admitted

(* Sequential admission — used for injections, initial placements and the
   whole delivery substep when the capacity model is shared. *)
let admit_seq t src spos e =
  let d = owner t e in
  let eb = estride * e in
  if not t.bounded then begin
    push t d eb src spos;
    post_enqueue_seq t e eb
  end
  else begin
  let s = Array.unsafe_get src (spos + o_slot) in
  let r_off = Array.unsafe_get src (spos + o_off)
  and r_len = Array.unsafe_get src (spos + o_len) in
  if t.shared_total <> max_int then begin
    let len = t.emeta.(eb + eo_len) in
    if
      Capacity.dt_admits ~alpha_num:t.dt_num ~alpha_den:t.dt_den
        ~total:t.shared_total ~occupancy:t.occupancy ~len
    then begin
      push t d eb src spos;
      post_enqueue_seq t e eb
    end
    else begin
      t.dropped <- t.dropped + 1;
      t.dropped_edge.(e) <- t.dropped_edge.(e) + 1;
      t.in_flight <- t.in_flight - 1;
      log_closed t 0 s r_off r_len;
      free_slot t s
    end
  end
  else if t.emeta.(eb + eo_len) < t.caps.(e) then begin
    push t d eb src spos;
    post_enqueue_seq t e eb
  end
  else if t.drop_head && t.emeta.(eb + eo_len) > 0 then begin
    let vic = t.scratch_rec.(0) in
    take t d eb vic 0;
    let vs = Array.unsafe_get vic o_slot in
    t.occupancy <- t.occupancy - 1;
    t.dropped <- t.dropped + 1;
    t.dropped_edge.(e) <- t.dropped_edge.(e) + 1;
    t.displaced <- t.displaced + 1;
    t.in_flight <- t.in_flight - 1;
    log_closed t 0 vs
      (Array.unsafe_get vic o_off)
      (Array.unsafe_get vic o_len);
    free_slot t vs;
    push t d eb src spos;
    post_enqueue_seq t e eb
  end
  else begin
    t.dropped <- t.dropped + 1;
    t.dropped_edge.(e) <- t.dropped_edge.(e) + 1;
    t.in_flight <- t.in_flight - 1;
    log_closed t 0 s r_off r_len;
    free_slot t s
  end
  end

(* Sequential absorption of the record at [src.(spos ..)]. *)
let absorb_seq t src spos =
  let s = Array.unsafe_get src (spos + o_slot) in
  t.absorbed <- t.absorbed + 1;
  t.in_flight <- t.in_flight - 1;
  let latency = t.now - Array.unsafe_get t.inj_at s in
  t.latency_sum <- t.latency_sum + latency;
  if latency > t.latency_max then t.latency_max <- latency;
  Aqt_util.Histo.record t.latency_histo latency;
  log_closed t 0 s
    (Array.unsafe_get src (spos + o_off))
    (Array.unsafe_get src (spos + o_len));
  free_slot t s

(* The per-domain log/free streams written through domain 0 in the
   sequential paths above are folded into the global structures here, so
   sequential and parallel steps share one commit point. *)
let commit_domain_streams t =
  for d = 0 to t.ndom - 1 do
    Dyn.iter (fun s -> free_slot t s) t.d_free.(d);
    Dyn.clear t.d_free.(d);
    (match t.log with
    | Some log -> Dyn.iter (fun entry -> Dyn.push log entry) t.d_log.(d)
    | None -> ());
    Dyn.clear t.d_log.(d)
  done

(* ------------------------------------------------------------------ *)
(* Injection                                                           *)
(* ------------------------------------------------------------------ *)

(* Allocate a slot for a new packet and write its record into
   [dst.(dpos ..)]. *)
let fresh_rec t ~initial off len dst dpos =
  let s = alloc_slot t in
  Array.unsafe_set t.pid s t.next_id;
  t.next_id <- t.next_id + 1;
  Array.unsafe_set t.inj_at s t.now;
  Array.unsafe_set t.pflag s (if initial then flag_initial else 0);
  Array.unsafe_set dst (dpos + o_slot) s;
  Array.unsafe_set dst (dpos + o_hop) 0;
  Array.unsafe_set dst (dpos + o_off) off;
  Array.unsafe_set dst (dpos + o_len) len;
  Array.unsafe_set dst (dpos + o_buf) t.now;
  s

let mark_route_use t off len =
  for i = off to off + len - 1 do
    t.last_use.(Array.unsafe_get t.rarena i) <- t.now
  done

let place_initial ?tag:_ t route =
  if t.now <> 0 then
    invalid_arg "Soa.place_initial: the system already started";
  let len = Array.length route in
  if len = 0 then invalid_arg "Soa.place_initial: empty route";
  let off = intern_route t route in
  let fresh = t.scratch_rec.(0) in
  let s = fresh_rec t ~initial:true off len fresh stride in
  t.initials <- t.initials + 1;
  t.in_flight <- t.in_flight + 1;
  mark_route_use t off len;
  let id = Array.unsafe_get t.pid s in
  admit_seq t fresh stride (Array.unsafe_get t.rarena off);
  commit_domain_streams t;
  id

let inject t (inj : injection) =
  let len = Array.length inj.route in
  if len = 0 then invalid_arg "Soa.inject: empty route";
  let off = intern_route t inj.route in
  let fresh = t.scratch_rec.(0) in
  ignore (fresh_rec t ~initial:false off len fresh stride);
  t.injected <- t.injected + 1;
  t.in_flight <- t.in_flight + 1;
  mark_route_use t off len;
  admit_seq t fresh stride (Array.unsafe_get t.rarena off)

let rec inject_all t = function
  | [] -> ()
  | inj :: rest ->
      inject t inj;
      inject_all t rest

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)
(* ------------------------------------------------------------------ *)

(* [n] is in records; [t.pending] stores [stride]-word records. *)
let ensure_pending t n =
  if Array.length t.pending < stride * n then
    t.pending <- Array.make (max (stride * n) (2 * Array.length t.pending)) 0

let ensure_pend_cnt t n =
  if Array.length t.pend_cnt < n then
    t.pend_cnt <- Array.make (max n (2 * Array.length t.pend_cnt)) 0

let ensure_pend_dest t n =
  if Array.length t.pend_dest < n then
    t.pend_dest <- Array.make (max n (2 * Array.length t.pend_dest)) 0

(* Swap the double-buffered active lists; the old list is returned through
   [t.active_old] with its length. *)
let rotate_active t =
  let old = t.active and n = t.n_active in
  t.active <- t.active_old;
  t.active_old <- old;
  t.n_active <- 0;
  n

(* -------- sequential phases -------- *)

(* Lookahead distance for the software-prefetch touches below.  Active
   edges arrive in activation order, which real workloads stride across
   the arrays (each DRAM/TLB miss costs several records' worth of work at
   10^6 edges), so the fast-path loops touch state [lookahead] iterations
   ahead: far enough to cover a miss, near enough to still be cached at
   use time. *)
let lookahead = 12

let phase1_seq t n_old =
  let old = t.active_old in
  ensure_pending t (n_old * t.speedup);
  t.pend_n <- 0;
  let em = t.emeta in
  if (not t.keyed) && (not t.lifo) && t.speedup = 1 then begin
    (* FIFO at speedup 1 — the common case.  One front pop per active
       edge with the emeta line read once, plus two-level lookahead:
       touch the edge metadata 2*[lookahead] ahead, then (once that line
       is warm) the head record of the edge [lookahead] ahead.  An edge
       appears at most once in the active list, so the looked-ahead
       off/head words are phase-stable. *)
    let sink = ref 0 in
    for i = 0 to n_old - 1 do
      if i + (2 * lookahead) < n_old then
        sink :=
          !sink
          lxor Array.unsafe_get em
                 ((estride * Array.unsafe_get old (i + (2 * lookahead)))
                 + eo_off);
      if i + lookahead < n_old then begin
        let ea = Array.unsafe_get old (i + lookahead) in
        let eba = estride * ea in
        sink :=
          !sink
          lxor Array.unsafe_get
                 t.barena.(owner t ea)
                 (stride
                 * (Array.unsafe_get em (eba + eo_off)
                   + Array.unsafe_get em (eba + eo_head)))
      end;
      let e = Array.unsafe_get old i in
      let eb = estride * e in
      let arena = t.barena.(owner t e) in
      let off = Array.unsafe_get em (eb + eo_off)
      and head = Array.unsafe_get em (eb + eo_head)
      and len = Array.unsafe_get em (eb + eo_len)
      and cap = Array.unsafe_get em (eb + eo_cap) in
      let w = stride * t.pend_n in
      blit_rec arena (stride * (off + head)) t.pending w;
      Array.unsafe_set em (eb + eo_head) ((head + 1) land (cap - 1));
      Array.unsafe_set em (eb + eo_len) (len - 1);
      Array.unsafe_set em (eb + eo_sent)
        (Array.unsafe_get em (eb + eo_sent) + 1);
      let dwell = t.now - Array.unsafe_get t.pending (w + o_buf) in
      if dwell > t.max_dwell then t.max_dwell <- dwell;
      t.pend_n <- t.pend_n + 1;
      t.occupancy <- t.occupancy - 1;
      if len = 1 then Array.unsafe_set em (eb + eo_flag) 0
      else begin
        if t.n_active = Array.length t.active then
          t.active <- grow_int_array t.active (max 8 t.n_active);
        Array.unsafe_set t.active t.n_active e;
        t.n_active <- t.n_active + 1
      end
    done;
    t.sink <- t.sink lxor !sink
  end
  else
    for i = 0 to n_old - 1 do
      let e = Array.unsafe_get old i in
      let eb = estride * e in
      let d = owner t e in
      let len = Array.unsafe_get em (eb + eo_len) in
      let k = if len < t.speedup then len else t.speedup in
      for _ = 1 to k do
        let w = stride * t.pend_n in
        take t d eb t.pending w;
        let dwell = t.now - Array.unsafe_get t.pending (w + o_buf) in
        if dwell > t.max_dwell then t.max_dwell <- dwell;
        t.pend_n <- t.pend_n + 1
      done;
      Array.unsafe_set em (eb + eo_sent)
        (Array.unsafe_get em (eb + eo_sent) + k);
      t.occupancy <- t.occupancy - k;
      if Array.unsafe_get em (eb + eo_len) = 0 then
        Array.unsafe_set em (eb + eo_flag) 0
      else begin
        if t.n_active = Array.length t.active then
          t.active <- grow_int_array t.active (max 8 t.n_active);
        Array.unsafe_set t.active t.n_active e;
        t.n_active <- t.n_active + 1
      end
    done

let deliver_one_seq t src spos =
  let h = Array.unsafe_get src (spos + o_hop) + 1 in
  Array.unsafe_set src (spos + o_hop) h;
  if h >= Array.unsafe_get src (spos + o_len) then absorb_seq t src spos
  else
    admit_seq t src spos
      (Array.unsafe_get t.rarena (Array.unsafe_get src (spos + o_off) + h))

let deliver_seq t =
  if t.fast then begin
    (* FIFO + unbounded: fuse hop advance, enqueue and the active/stat
       bookkeeping over a single read of the destination's emeta line,
       with a lookahead touch of the emeta line the record [lookahead]
       positions ahead will enqueue on (its destination only needs the
       pending record and a route word, both near-sequential reads). *)
    let em = t.emeta in
    let pend = t.pending in
    let sink = ref 0 in
    let n = t.pend_n in
    for i = 0 to n - 1 do
      if i + lookahead < n then begin
        let w = stride * (i + lookahead) in
        let h = Array.unsafe_get pend (w + o_hop) + 1 in
        if h < Array.unsafe_get pend (w + o_len) then
          sink :=
            !sink
            lxor Array.unsafe_get em
                   ((estride
                    * Array.unsafe_get t.rarena
                        (Array.unsafe_get pend (w + o_off) + h))
                   + eo_off)
      end;
      let spos = stride * i in
      let h = Array.unsafe_get pend (spos + o_hop) + 1 in
      Array.unsafe_set pend (spos + o_hop) h;
      if h >= Array.unsafe_get pend (spos + o_len) then absorb_seq t pend spos
      else begin
        let e =
          Array.unsafe_get t.rarena (Array.unsafe_get pend (spos + o_off) + h)
        in
        let eb = estride * e in
        let d = owner t e in
        Array.unsafe_set em (eb + eo_seq)
          (Array.unsafe_get em (eb + eo_seq) + 1);
        Array.unsafe_set pend (spos + o_buf) t.now;
        if
          Array.unsafe_get em (eb + eo_len)
          = Array.unsafe_get em (eb + eo_cap)
        then grow_buffer t d eb;
        let arena = t.barena.(d) in
        let off = Array.unsafe_get em (eb + eo_off)
        and head = Array.unsafe_get em (eb + eo_head)
        and cap = Array.unsafe_get em (eb + eo_cap) in
        let len = Array.unsafe_get em (eb + eo_len) in
        blit_rec pend spos arena
          (stride * (off + ((head + len) land (cap - 1))));
        let len = len + 1 in
        Array.unsafe_set em (eb + eo_len) len;
        if Array.unsafe_get em (eb + eo_flag) = 0 then begin
          Array.unsafe_set em (eb + eo_flag) 1;
          if t.n_active = Array.length t.active then
            t.active <- grow_int_array t.active (max 8 t.n_active);
          Array.unsafe_set t.active t.n_active e;
          t.n_active <- t.n_active + 1
        end;
        t.occupancy <- t.occupancy + 1;
        if t.occupancy > t.peak_occupancy then t.peak_occupancy <- t.occupancy;
        if len > t.max_queue then t.max_queue <- len;
        if len > Array.unsafe_get em (eb + eo_maxq) then
          Array.unsafe_set em (eb + eo_maxq) len
      end
    done;
    t.sink <- t.sink lxor !sink
  end
  else
    for i = 0 to t.pend_n - 1 do
      deliver_one_seq t t.pending (stride * i)
    done

(* -------- parallel phases -------- *)

(* Forward, partition-parallel: domain [d] handles exactly the active
   positions whose edge it owns, writing pops into the stride-[speedup]
   pending layout.  All writes are to owner-disjoint locations. *)
let phase1_par t n_old d =
  let old = t.active_old in
  let s_up = t.speedup in
  let lo = d * t.block and hi = (d + 1) * t.block in
  let still_pos = t.d_still_pos.(d) and still_edge = t.d_still_edge.(d) in
  let deq = ref 0 and max_dwell = ref t.d_max_dwell.(d) in
  let em = t.emeta in
  for i = 0 to n_old - 1 do
    let e = Array.unsafe_get old i in
    if e >= lo && (e < hi || d = t.ndom - 1) then begin
      let eb = estride * e in
      let len = Array.unsafe_get em (eb + eo_len) in
      let k = if len < s_up then len else s_up in
      for j = 0 to k - 1 do
        let w = stride * ((i * s_up) + j) in
        take t d eb t.pending w;
        let dwell = t.now - Array.unsafe_get t.pending (w + o_buf) in
        if dwell > !max_dwell then max_dwell := dwell;
        (* Destination, computed while [hop] is still phase-stable. *)
        let h = Array.unsafe_get t.pending (w + o_hop) + 1 in
        let off = Array.unsafe_get t.pending (w + o_off) in
        let len = Array.unsafe_get t.pending (w + o_len) in
        let dest =
          if h >= len then -1 - Array.unsafe_get t.rarena (off + len - 1)
          else Array.unsafe_get t.rarena (off + h)
        in
        Array.unsafe_set t.pend_dest ((i * s_up) + j) dest
      done;
      Array.unsafe_set em (eb + eo_sent)
        (Array.unsafe_get em (eb + eo_sent) + k);
      Array.unsafe_set t.pend_cnt i k;
      deq := !deq + k;
      if Array.unsafe_get em (eb + eo_len) = 0 then
        Array.unsafe_set em (eb + eo_flag) 0
      else begin
        Dyn.push still_pos i;
        Dyn.push still_edge e
      end
    end
  done;
  t.d_deq.(d) <- !deq;
  t.d_max_dwell.(d) <- !max_dwell

(* Deliver, partition-parallel: domain [d] scans every pending position in
   order and handles the packets whose destination it owns (absorptions
   belong to the owner of the last traversed edge, so ownership is total
   and disjoint). *)
let deliver_par t n_old d =
  let s_up = t.speedup in
  let lo = d * t.block and hi = (d + 1) * t.block in
  let last = t.ndom - 1 in
  let act_pos = t.d_act_pos.(d) and act_edge = t.d_act_edge.(d) in
  let histo = t.d_histo.(d) in
  for i = 0 to n_old - 1 do
    let k = Array.unsafe_get t.pend_cnt i in
    for j = 0 to k - 1 do
      let pos = (i * s_up) + j in
      let dest = Array.unsafe_get t.pend_dest pos in
      let own_edge = if dest >= 0 then dest else -1 - dest in
      if own_edge >= lo && (own_edge < hi || d = last) then begin
        let w = stride * pos in
        Array.unsafe_set t.pending (w + o_hop)
          (Array.unsafe_get t.pending (w + o_hop) + 1);
        if dest < 0 then begin
          (* Absorption. *)
          let s = Array.unsafe_get t.pending (w + o_slot) in
          t.d_absorbed.(d) <- t.d_absorbed.(d) + 1;
          let latency = t.now - Array.unsafe_get t.inj_at s in
          t.d_lat_sum.(d) <- t.d_lat_sum.(d) + latency;
          if latency > t.d_lat_max.(d) then t.d_lat_max.(d) <- latency;
          Aqt_util.Histo.record histo latency;
          log_closed t d s
            (Array.unsafe_get t.pending (w + o_off))
            (Array.unsafe_get t.pending (w + o_len));
          Dyn.push t.d_free.(d) s
        end
        else begin
          let was_active =
            Array.unsafe_get t.emeta ((estride * dest) + eo_flag)
          in
          if admit_d t d t.pending w dest && was_active = 0 then begin
            Dyn.push act_pos pos;
            Dyn.push act_edge dest
          end
        end
      end
    done
  done

(* Merge the per-domain (position, edge) streams into the active list in
   position order — each stream is already sorted, so this is a k-way merge
   with k = ndom. *)
let merge_positional t pos_streams edge_streams =
  let idx = Array.make t.ndom 0 in
  let continue = ref true in
  while !continue do
    let best = ref (-1) and best_pos = ref max_int in
    for d = 0 to t.ndom - 1 do
      if idx.(d) < Dyn.length pos_streams.(d) then begin
        let p = Dyn.get pos_streams.(d) idx.(d) in
        if p < !best_pos then begin
          best_pos := p;
          best := d
        end
      end
    done;
    if !best < 0 then continue := false
    else begin
      let d = !best in
      let e = Dyn.get edge_streams.(d) idx.(d) in
      idx.(d) <- idx.(d) + 1;
      if t.n_active = Array.length t.active then
        t.active <- grow_int_array t.active (max 8 t.n_active);
      Array.unsafe_set t.active t.n_active e;
      t.n_active <- t.n_active + 1
    end
  done;
  for d = 0 to t.ndom - 1 do
    Dyn.clear pos_streams.(d);
    Dyn.clear edge_streams.(d)
  done

(* Fold the domain accumulators into the global counters after a parallel
   delivery phase.  Sums and maxima only — order-free, hence deterministic
   regardless of which domain ran what. *)
let fold_deliver_stats t =
  for d = 0 to t.ndom - 1 do
    t.absorbed <- t.absorbed + t.d_absorbed.(d);
    t.in_flight <- t.in_flight - t.d_absorbed.(d) - t.d_dropped.(d);
    t.dropped <- t.dropped + t.d_dropped.(d);
    t.displaced <- t.displaced + t.d_displaced.(d);
    t.occupancy <- t.occupancy + t.d_occ.(d);
    t.latency_sum <- t.latency_sum + t.d_lat_sum.(d);
    if t.d_lat_max.(d) > t.latency_max then t.latency_max <- t.d_lat_max.(d);
    if t.d_max_queue.(d) > t.max_queue then t.max_queue <- t.d_max_queue.(d);
    Aqt_util.Histo.merge_into ~into:t.latency_histo t.d_histo.(d);
    Aqt_util.Histo.reset t.d_histo.(d);
    t.d_absorbed.(d) <- 0;
    t.d_dropped.(d) <- 0;
    t.d_displaced.(d) <- 0;
    t.d_occ.(d) <- 0;
    t.d_lat_sum.(d) <- 0;
    t.d_lat_max.(d) <- 0;
    t.d_max_queue.(d) <- 0
  done;
  if t.occupancy > t.peak_occupancy then t.peak_occupancy <- t.occupancy;
  commit_domain_streams t

let fold_phase1_stats t =
  for d = 0 to t.ndom - 1 do
    t.occupancy <- t.occupancy - t.d_deq.(d);
    t.d_deq.(d) <- 0;
    if t.d_max_dwell.(d) > t.max_dwell then t.max_dwell <- t.d_max_dwell.(d);
    t.d_max_dwell.(d) <- 0
  done

let step t injections =
  t.now <- t.now + 1;
  let n_old = rotate_active t in
  (* A shared (Dynamic-Threshold) model reads global occupancy on every
     admission, mid-substep — delivery must run sequentially.  Everything
     else is safe to partition. *)
  let parallel = t.ndom > 1 && t.shared_total = max_int in
  match t.pool with
  | Some pool when parallel ->
      ensure_pending t (n_old * t.speedup);
      ensure_pend_dest t (n_old * t.speedup);
      ensure_pend_cnt t n_old;
      pool_run pool (phase1_par t n_old);
      fold_phase1_stats t;
      merge_positional t t.d_still_pos t.d_still_edge;
      (match t.tie_order with
      | Network.Transit_first ->
          pool_run pool (deliver_par t n_old);
          fold_deliver_stats t;
          merge_positional t t.d_act_pos t.d_act_edge;
          inject_all t injections
      | Network.Injection_first ->
          inject_all t injections;
          pool_run pool (deliver_par t n_old);
          fold_deliver_stats t;
          merge_positional t t.d_act_pos t.d_act_edge);
      commit_domain_streams t
  | _ ->
      phase1_seq t n_old;
      (match t.tie_order with
      | Network.Transit_first ->
          deliver_seq t;
          inject_all t injections
      | Network.Injection_first ->
          inject_all t injections;
          deliver_seq t);
      if t.occupancy > t.peak_occupancy then
        t.peak_occupancy <- t.occupancy;
      commit_domain_streams t

(* ------------------------------------------------------------------ *)
(* Reroutes                                                            *)
(* ------------------------------------------------------------------ *)

(* Iterate the buffered records: [f arena w] for the record at word index
   [w] of its partition arena.  The callback may mutate record fields but
   must not enqueue or dequeue. *)
let iter_buffered_recs f t =
  for i = 0 to t.n_active - 1 do
    let e = Array.unsafe_get t.active i in
    let eb = estride * e in
    let arena = t.barena.(owner t e) in
    let off = t.emeta.(eb + eo_off)
    and head = t.emeta.(eb + eo_head)
    and len = t.emeta.(eb + eo_len)
    and cap = t.emeta.(eb + eo_cap) in
    if t.keyed then
      for j = 0 to len - 1 do
        f arena (stride * (off + j))
      done
    else
      for j = 0 to len - 1 do
        f arena (stride * (off + ((head + j) land (cap - 1))))
      done
  done

(* Rewrite the routes of every buffered packet selected by [pred] to
   (traversed prefix up to and including the current edge) @ [suffix] —
   the same rewrite as [Network.reroute], as a bulk operation because
   records are not stable handles for callers.  The new route appends to
   the arena and the record's slice is repointed in place; the old slice
   is unreachable garbage. *)
let reroute_where t pred suffix =
  iter_buffered_recs
    (fun arena w ->
      let hop = Array.unsafe_get arena (w + o_hop) in
      let len = Array.unsafe_get arena (w + o_len) in
      let remaining = len - hop in
      let id = t.pid.(Array.unsafe_get arena (w + o_slot)) in
      (* The edge the packet is buffered on is its next route entry. *)
      let edge =
        Array.unsafe_get t.rarena (Array.unsafe_get arena (w + o_off) + hop)
      in
      if pred ~id ~edge ~remaining then begin
        let keep = hop + 1 in
        let nlen = keep + Array.length suffix in
        let route = Array.make nlen 0 in
        Array.blit t.rarena (Array.unsafe_get arena (w + o_off)) route 0 keep;
        Array.blit suffix 0 route keep (Array.length suffix);
        check_route t route;
        let off = append_route t route in
        Array.unsafe_set arena (w + o_off) off;
        Array.unsafe_set arena (w + o_len) nlen;
        t.reroutes <- t.reroutes + 1
      end)
    t

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let graph t = t.graph
let policy t = t.policy
let now t = t.now
let domains t = t.ndom
let in_flight t = t.in_flight
let absorbed t = t.absorbed
let injected_count t = t.injected
let initial_count t = t.initials
let dropped t = t.dropped
let displaced t = t.displaced
let dropped_on_edge t e = t.dropped_edge.(e)
let occupancy t = t.occupancy
let peak_occupancy t = t.peak_occupancy
let max_queue_ever t = t.max_queue
let max_queue_of_edge t e = t.emeta.((estride * e) + eo_maxq)
let sent_on_edge t e = t.emeta.((estride * e) + eo_sent)
let max_dwell t = t.max_dwell
let delivered_latency_max t = t.latency_max

let delivered_latency_mean t =
  if t.absorbed = 0 then 0.0
  else float_of_int t.latency_sum /. float_of_int t.absorbed

let delivered_latency_percentile t p =
  Aqt_util.Histo.percentile t.latency_histo p

let reroute_count t = t.reroutes
let last_injection_on t e = t.last_use.(e)
let buffer_len t e = t.emeta.((estride * e) + eo_len)
let capacity t = t.capacity
let speedup t = t.speedup
let pooled t = t.n_free
let slab_slots t = t.hi_slot

let arena_words t =
  let used =
    t.rtop + (stride * Array.fold_left (fun acc top -> acc + top) 0 t.btop)
  in
  ( used,
    Array.length t.rarena
    + Array.fold_left (fun acc a -> acc + Array.length a) 0 t.barena )

let max_pending_dwell t =
  let best = ref 0 in
  iter_buffered_recs
    (fun arena w ->
      let d = t.now - Array.unsafe_get arena (w + o_buf) in
      if d > !best then best := d)
    t;
  !best

let current_max_queue t =
  let best = ref 0 in
  for i = 0 to t.n_active - 1 do
    let l = t.emeta.((estride * Array.unsafe_get t.active i) + eo_len) in
    if l > !best then best := l
  done;
  !best

type view = {
  v_id : int;
  v_injected_at : int;
  v_hop : int;
  v_buffered_at : int;
  v_route : int array;
}

let view_of_rec t arena w =
  let s = Array.unsafe_get arena (w + o_slot) in
  {
    v_id = t.pid.(s);
    v_injected_at = t.inj_at.(s);
    v_hop = Array.unsafe_get arena (w + o_hop);
    v_buffered_at = Array.unsafe_get arena (w + o_buf);
    v_route =
      Array.sub t.rarena
        (Array.unsafe_get arena (w + o_off))
        (Array.unsafe_get arena (w + o_len));
  }

(* Buffered packets of edge [e] in service order — the order
   [Buffer_q.to_sorted_list] reports: FIFO front-first, LIFO back-first,
   keyed by ascending (key, seq). *)
let buffer_packets t e =
  let d = owner t e in
  let eb = estride * e in
  let arena = t.barena.(d) in
  let off = t.emeta.(eb + eo_off)
  and head = t.emeta.(eb + eo_head)
  and len = t.emeta.(eb + eo_len)
  and cap = t.emeta.(eb + eo_cap) in
  if len = 0 then []
  else if t.keyed then begin
    let idx = Array.init len (fun j -> j) in
    Array.sort
      (fun a b ->
        let sa = arena.((stride * (off + a)) + o_slot)
        and sb = arena.((stride * (off + b)) + o_slot) in
        let c = Int.compare t.pkey.(sa) t.pkey.(sb) in
        if c <> 0 then c else Int.compare t.pseq.(sa) t.pseq.(sb))
      idx;
    Array.to_list
      (Array.map (fun j -> view_of_rec t arena (stride * (off + j))) idx)
  end
  else begin
    let nth j = stride * (off + ((head + j) mod cap)) in
    if t.lifo then
      List.init len (fun j -> view_of_rec t arena (nth (len - 1 - j)))
    else List.init len (fun j -> view_of_rec t arena (nth j))
  end

let full_log t ~want_initial =
  match t.log with
  | None -> invalid_arg "Soa.injection_log: created without ~log_injections"
  | Some log ->
      let selected = Dyn.create () in
      Dyn.iter
        (fun (time, id, initial, off, len) ->
          if initial = want_initial then
            Dyn.push selected (time, id, Array.sub t.rarena off len))
        log;
      iter_buffered_recs
        (fun arena w ->
          let s = Array.unsafe_get arena (w + o_slot) in
          if t.pflag.(s) land flag_initial <> 0 = want_initial then
            Dyn.push selected
              ( t.inj_at.(s),
                t.pid.(s),
                Array.sub t.rarena
                  (Array.unsafe_get arena (w + o_off))
                  (Array.unsafe_get arena (w + o_len)) ))
        t;
      let all = Dyn.to_array selected in
      Array.sort
        (fun (t1, id1, _) (t2, id2, _) ->
          if t1 <> t2 then Int.compare t1 t2 else Int.compare id1 id2)
        all;
      all

let injection_log t =
  Array.map (fun (time, _, route) -> (time, route)) (full_log t ~want_initial:false)

let initial_final_routes t =
  Array.map (fun (_, _, route) -> route) (full_log t ~want_initial:true)

(* Worker-domain allocation since creation, for GC-aware recorders: the
   main domain's [Gc.minor_words] does not see worker allocation (OCaml 5
   counters are per-domain). *)
let worker_minor_words t =
  match t.pool with
  | None -> 0.0
  | Some pool -> Array.fold_left ( +. ) 0.0 pool.worker_minor_words
