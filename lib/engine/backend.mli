(** Engine selection: the record engine or the struct-of-arrays core behind
    one stepping/observation surface.

    [create ~backend:(`Soa n)] gives the cache-linear {!Soa} engine with [n]
    edge partitions (domains); [`Record] (the default) gives {!Network}.
    Both produce identical trajectories — {!Aqt_check.Diff} asserts it —
    so callers choose purely on performance.  Engine-specific machinery
    (tracers, per-packet reroutes, spacetime capture) stays on the concrete
    engines, reachable through {!net} / {!soa}. *)

type injection = Network.injection = { route : int array; tag : string }

type t = Record of Network.t | Soa of Soa.t

val create :
  ?log_injections:bool ->
  ?validate_routes:bool ->
  ?tie_order:Network.tie_order ->
  ?capacity:Aqt_capacity.Model.t ->
  ?backend:[ `Record | `Soa of int ] ->
  graph:Aqt_graph.Digraph.t ->
  policy:Policy_type.t ->
  unit ->
  t

val net : t -> Network.t option
val soa : t -> Soa.t option

val kind : t -> string
(** ["record"], ["soa"], or ["soa-d<n>"] — for labelling result rows. *)

val domains : t -> int

val place_initial : t -> ?tag:string -> int array -> int
(** Returns the packet id. *)

val step : t -> injection list -> unit

val shutdown : t -> unit
(** Joins any pooled worker domains; no-op for [`Record] and single-domain
    [`Soa].  Required before dropping a parallel instance — the runtime
    caps live domains. *)

(** {1 Observation} *)

val now : t -> int
val in_flight : t -> int
val absorbed : t -> int
val injected_count : t -> int
val initial_count : t -> int
val dropped : t -> int
val displaced : t -> int
val occupancy : t -> int
val peak_occupancy : t -> int
val max_queue_ever : t -> int
val current_max_queue : t -> int
val max_dwell : t -> int
val delivered_latency_max : t -> int
val delivered_latency_mean : t -> float
val buffer_len : t -> int -> int

val observe : Recorder.t -> t -> unit
(** Samples the recorder with domain-aware GC accounting: for a parallel
    SoA backend, worker-domain allocation is aggregated in and the sample's
    [gc_domains] records the domain count. *)

val run_steps :
  ?recorder:Recorder.t -> t -> injections_at:(int -> injection list) -> int -> unit
(** [run_steps t ~injections_at n] executes [n] steps, calling
    [injections_at] with each step number about to execute — the batched
    fast path of {!Sim.run_steps}, over either engine. *)
