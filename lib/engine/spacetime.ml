module Dyn = Aqt_util.Dynarray_compat
module Digraph = Aqt_graph.Digraph

type t = {
  net : Network.t;
  every : int;
  samples : int array Dyn.t; (* one buffer-length vector per observation *)
}

let make ?(every = 1) net =
  if every < 1 then invalid_arg "Spacetime.make";
  { net; every; samples = Dyn.create () }

let observe t =
  if Network.now t.net mod t.every = 0 then begin
    let m = Digraph.n_edges (Network.graph t.net) in
    Dyn.push t.samples (Array.init m (fun e -> Network.buffer_len t.net e))
  end

let driver_wrap t (driver : Sim.driver) : Sim.driver =
  {
    driver with
    before_step =
      (fun net step ->
        observe t;
        driver.before_step net step);
  }

let n_samples t = Dyn.length t.samples
let every t = t.every

let labels t =
  let graph = Network.graph t.net in
  Array.init (Digraph.n_edges graph) (Digraph.label graph)

let matrix t =
  let samples = Dyn.to_array t.samples in
  let n = Array.length samples in
  let m = Digraph.n_edges (Network.graph t.net) in
  Array.init m (fun e ->
      Array.init n (fun s ->
          let row = samples.(s) in
          if e < Array.length row then float_of_int row.(e) else 0.0))

let glyphs = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |]

let render ?(max_rows = 64) t =
  let samples = Dyn.to_array t.samples in
  let n_samples = Array.length samples in
  if n_samples = 0 then "(no samples)\n"
  else begin
    let m = Array.length samples.(0) in
    let graph = Network.graph t.net in
    (* Down-sample columns. *)
    let n_cols = min 100 n_samples in
    let col_of c = samples.(c * (n_samples - 1) / max 1 (n_cols - 1)) in
    (* Busiest edges first if we must drop rows. *)
    let peak = Array.make m 0 in
    Array.iter
      (fun row -> Array.iteri (fun e v -> peak.(e) <- max peak.(e) v) row)
      samples;
    let order = Array.init m Fun.id in
    let keep =
      if m <= max_rows then order
      else begin
        Array.sort (fun a b -> compare peak.(b) peak.(a)) order;
        let kept = Array.sub order 0 max_rows in
        Array.sort compare kept;
        kept
      end
    in
    let global_peak = Array.fold_left max 1 peak in
    let glyph v =
      if v = 0 then ' '
      else begin
        let idx =
          (v * Array.length glyphs) / (global_peak + 1)
        in
        glyphs.(min idx (Array.length glyphs - 1))
      end
    in
    let label_width =
      Array.fold_left
        (fun acc e -> max acc (String.length (Digraph.label graph e)))
        0 keep
    in
    let buf = Buffer.create ((label_width + n_cols + 4) * Array.length keep) in
    Buffer.add_string buf
      (Printf.sprintf "queue occupancy over time (peak %d packets; %d samples)\n"
         global_peak n_samples);
    Array.iter
      (fun e ->
        let label = Digraph.label graph e in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.make (label_width - String.length label + 1) ' ');
        Buffer.add_char buf '|';
        for c = 0 to n_cols - 1 do
          Buffer.add_char buf (glyph (col_of c).(e))
        done;
        Buffer.add_string buf "|\n")
      keep;
    Buffer.contents buf
  end

let print ?max_rows t = print_string (render ?max_rows t)
