module Dyn = Aqt_util.Dynarray_compat

type sample = {
  t : int;
  in_flight : int;
  cur_max_queue : int;
  absorbed : int;
  dropped : int;
  max_dwell : int;
  (* Cumulative GC counters at sampling time (Gc.quick_stat, no collection
     triggered): campaigns record allocation per step, and the fast-path
     acceptance check is "zero major-heap growth per step after warmup". *)
  gc_minor_words : float;
  gc_major_words : float;
  gc_minor_collections : int;
  gc_major_collections : int;
  (* How many domains the gc_* fields cover.  OCaml 5 GC counters are
     per-domain: a sample taken on the main domain of a parallel-backend
     run silently misses worker allocation unless the backend adds it in
     (via [observe_raw ~extra_minor_words]), and consumers diffing samples
     across a domain-count change must not mix them. *)
  gc_domains : int;
}

type t = { every : int; store : sample Dyn.t }

let make ?(every = 1) () =
  if every < 1 then invalid_arg "Recorder.make";
  { every; store = Dyn.create () }

(* Backend-agnostic sampling: the caller supplies the network-state metrics
   and declares how many domains its allocation figure covers.
   [extra_minor_words] is the cumulative allocation of any worker domains,
   added to this domain's own counter. *)
let observe_raw r ~now ~in_flight ~cur_max_queue ~absorbed ~dropped
    ~max_dwell ~gc_domains ~extra_minor_words =
  if now mod r.every = 0 then begin
    let gc = Gc.quick_stat () in
    Dyn.push r.store
      {
        t = now;
        in_flight;
        cur_max_queue;
        absorbed;
        dropped;
        max_dwell;
        (* quick_stat's minor_words only refreshes at GC events (OCaml 5);
           Gc.minor_words reads the allocation pointer and is exact. *)
        gc_minor_words = Gc.minor_words () +. extra_minor_words;
        gc_major_words = gc.Gc.major_words;
        gc_minor_collections = gc.Gc.minor_collections;
        gc_major_collections = gc.Gc.major_collections;
        gc_domains;
      }
  end

let observe r net =
  observe_raw r ~now:(Network.now net) ~in_flight:(Network.in_flight net)
    ~cur_max_queue:(Network.current_max_queue net)
    ~absorbed:(Network.absorbed net) ~dropped:(Network.dropped net)
    ~max_dwell:(Network.max_dwell net) ~gc_domains:1 ~extra_minor_words:0.0

let samples r = Dyn.to_array r.store
let length r = Dyn.length r.store

let to_rows r =
  Array.to_list
    (Array.map
       (fun s ->
         [
           ("t", float_of_int s.t);
           ("in_flight", float_of_int s.in_flight);
           ("max_queue", float_of_int s.cur_max_queue);
           ("absorbed", float_of_int s.absorbed);
           ("dropped", float_of_int s.dropped);
           ("max_dwell", float_of_int s.max_dwell);
           ("gc_minor_words", s.gc_minor_words);
           ("gc_major_words", s.gc_major_words);
           ("gc_domains", float_of_int s.gc_domains);
         ])
       (samples r))

let points r f =
  Array.map (fun s -> (float_of_int s.t, f s)) (samples r)

let last r =
  if Dyn.is_empty r.store then None else Some (Dyn.last r.store)

let major_words_per_step r =
  if Dyn.length r.store < 2 then 0.0
  else begin
    let first = Dyn.get r.store 0 and last = Dyn.last r.store in
    let steps = last.t - first.t in
    if steps <= 0 then 0.0
    else (last.gc_major_words -. first.gc_major_words) /. float_of_int steps
  end
