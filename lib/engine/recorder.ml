module Dyn = Aqt_util.Dynarray_compat

type sample = {
  t : int;
  in_flight : int;
  cur_max_queue : int;
  absorbed : int;
  max_dwell : int;
}

type t = { every : int; store : sample Dyn.t }

let make ?(every = 1) () =
  if every < 1 then invalid_arg "Recorder.make";
  { every; store = Dyn.create () }

let observe r net =
  let now = Network.now net in
  if now mod r.every = 0 then
    Dyn.push r.store
      {
        t = now;
        in_flight = Network.in_flight net;
        cur_max_queue = Network.current_max_queue net;
        absorbed = Network.absorbed net;
        max_dwell = Network.max_dwell net;
      }

let samples r = Dyn.to_array r.store
let length r = Dyn.length r.store

let to_rows r =
  Array.to_list
    (Array.map
       (fun s ->
         [
           ("t", float_of_int s.t);
           ("in_flight", float_of_int s.in_flight);
           ("max_queue", float_of_int s.cur_max_queue);
           ("absorbed", float_of_int s.absorbed);
           ("max_dwell", float_of_int s.max_dwell);
         ])
       (samples r))

let points r f =
  Array.map (fun s -> (float_of_int s.t, f s)) (samples r)

let last r =
  if Dyn.is_empty r.store then None else Some (Dyn.last r.store)
