(* One network, two engines.

   [Network] is the reference record engine; [Soa] is the struct-of-arrays
   core with optional domain-partitioned stepping.  This module lets run
   loops and the CLI pick one with [~backend:`Soa ~domains:n] while keeping
   a single stepping and observation surface — callers that need
   engine-specific machinery (tracers, per-packet reroutes) keep talking to
   the concrete engine through [net] / [soa]. *)

type injection = Network.injection = { route : int array; tag : string }

type t = Record of Network.t | Soa of Soa.t

let create ?log_injections ?validate_routes ?tie_order ?capacity
    ?(backend = `Record) ~graph ~policy () =
  match backend with
  | `Record ->
      Record
        (Network.create ?log_injections ?validate_routes ?tie_order ?capacity
           ~graph ~policy ())
  | `Soa domains ->
      Soa
        (Soa.create ?log_injections ?validate_routes ?tie_order ?capacity
           ~domains ~graph ~policy ())

let net = function Record n -> Some n | Soa _ -> None
let soa = function Soa s -> Some s | Record _ -> None

let kind = function Record _ -> "record" | Soa s ->
  if Soa.domains s = 1 then "soa" else Printf.sprintf "soa-d%d" (Soa.domains s)

let domains = function Record _ -> 1 | Soa s -> Soa.domains s

let place_initial t ?tag route =
  match t with
  | Record n -> (Network.place_initial n ?tag route).Packet.id
  | Soa s -> Soa.place_initial ?tag s route

let step t injections =
  match t with
  | Record n -> Network.step n injections
  | Soa s -> Soa.step s injections

(* Release pooled worker domains.  A no-op for the record engine and for
   single-domain SoA instances; parallel instances must be shut down (the
   runtime caps the number of live domains). *)
let shutdown = function Record _ -> () | Soa s -> Soa.shutdown s

let now = function Record n -> Network.now n | Soa s -> Soa.now s

let in_flight = function
  | Record n -> Network.in_flight n
  | Soa s -> Soa.in_flight s

let absorbed = function
  | Record n -> Network.absorbed n
  | Soa s -> Soa.absorbed s

let injected_count = function
  | Record n -> Network.injected_count n
  | Soa s -> Soa.injected_count s

let initial_count = function
  | Record n -> Network.initial_count n
  | Soa s -> Soa.initial_count s

let dropped = function Record n -> Network.dropped n | Soa s -> Soa.dropped s

let displaced = function
  | Record n -> Network.displaced n
  | Soa s -> Soa.displaced s

let occupancy = function
  | Record n -> Network.occupancy n
  | Soa s -> Soa.occupancy s

let peak_occupancy = function
  | Record n -> Network.peak_occupancy n
  | Soa s -> Soa.peak_occupancy s

let max_queue_ever = function
  | Record n -> Network.max_queue_ever n
  | Soa s -> Soa.max_queue_ever s

let current_max_queue = function
  | Record n -> Network.current_max_queue n
  | Soa s -> Soa.current_max_queue s

let max_dwell = function
  | Record n -> Network.max_dwell n
  | Soa s -> Soa.max_dwell s

let delivered_latency_max = function
  | Record n -> Network.delivered_latency_max n
  | Soa s -> Soa.delivered_latency_max s

let delivered_latency_mean = function
  | Record n -> Network.delivered_latency_mean n
  | Soa s -> Soa.delivered_latency_mean s

let buffer_len t e =
  match t with
  | Record n -> Network.buffer_len n e
  | Soa s -> Soa.buffer_len s e

let observe recorder t =
  match t with
  | Record n -> Recorder.observe recorder n
  | Soa s ->
      Recorder.observe_raw recorder ~now:(Soa.now s)
        ~in_flight:(Soa.in_flight s) ~cur_max_queue:(Soa.current_max_queue s)
        ~absorbed:(Soa.absorbed s) ~dropped:(Soa.dropped s)
        ~max_dwell:(Soa.max_dwell s) ~gc_domains:(Soa.domains s)
        ~extra_minor_words:(Soa.worker_minor_words s)

(* The batched fast path, as [Sim.run_steps] but over either engine.
   [injections_at] receives the step number about to execute. *)
let run_steps ?recorder t ~injections_at n =
  if n < 0 then invalid_arg "Backend.run_steps: negative step count";
  match recorder with
  | None ->
      for _ = 1 to n do
        step t (injections_at (now t + 1))
      done
  | Some r ->
      for _ = 1 to n do
        step t (injections_at (now t + 1));
        observe r t
      done
