(** Space-time diagrams of queue occupancy.

    Samples every edge's buffer length each time it is observed and renders
    the result as a text heat map — time on the horizontal axis, one row per
    edge.  Intended for small networks (every edge gets a row) and short
    horizons; the examples use it to show the paper's constructions moving
    queues through gadget chains. *)

type t

val make : ?every:int -> Network.t -> t
(** Samples when [now mod every = 0] (default 1). *)

val observe : t -> unit
(** Record the current buffer lengths (respecting [every]). *)

val driver_wrap : t -> Sim.driver -> Sim.driver
(** A driver that behaves like the argument but records a sample before
    every step. *)

(** {2 Raw access}

    For renderers that draw the samples themselves (the SVG report uses
    these to build a real heatmap out of the same observations the text
    view shows). *)

val n_samples : t -> int
(** Observations recorded so far. *)

val every : t -> int
(** The sampling stride this recorder was created with; sample [i] was
    taken at simulator time [i * every] when driven by {!driver_wrap}
    from time 0. *)

val labels : t -> string array
(** Edge labels in edge-id order — row headers for {!matrix}. *)

val matrix : t -> float array array
(** [matrix t].(e).(s) is the buffer length of edge [e] at sample [s]
    (as a float, ready for plotting).  One row per edge of the network,
    one column per observation; rows are empty when nothing was
    observed. *)

val render : ?max_rows:int -> t -> string
(** Heat map with one row per edge (edge label as the row header), glyphs
    scaled to the maximum observed queue: ['.' ':' '-' '=' '+' '*' '#' '@'].
    Columns are down-sampled to at most 100 sample points.  [max_rows] caps
    the number of edge rows (default 64; busiest edges are kept). *)

val print : ?max_rows:int -> t -> unit
