(** Periodic sampling of network state during a run.

    A recorder samples global metrics every [every] steps; the samples feed
    the growth-slope stability classifier and the ASCII trajectory plots. *)

type sample = {
  t : int;
  in_flight : int;
  cur_max_queue : int;
  absorbed : int;
  dropped : int;  (** cumulative capacity-model drops (0 when unbounded) *)
  max_dwell : int;
  gc_minor_words : float;
      (** Cumulative minor-heap words allocated by this process at sampling
          time ([Gc.quick_stat]); diff two samples for allocation per step. *)
  gc_major_words : float;
      (** Cumulative major-heap words (direct allocation + promotion).  Flat
          across samples = the zero-allocation steady state. *)
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_domains : int;
      (** How many domains the gc_* counters cover.  1 for the sequential
          engine; a parallel backend that aggregates worker allocation
          reports its domain count here.  OCaml 5 GC counters are
          per-domain, so samples with different [gc_domains] are not
          comparable word-for-word. *)
}

type t

val make : ?every:int -> unit -> t
(** Default samples every step. *)

val observe : t -> Network.t -> unit
(** Call after each [Network.step]; samples when [now mod every = 0]. *)

val observe_raw :
  t ->
  now:int ->
  in_flight:int ->
  cur_max_queue:int ->
  absorbed:int ->
  dropped:int ->
  max_dwell:int ->
  gc_domains:int ->
  extra_minor_words:float ->
  unit
(** Backend-agnostic sampling for engines that are not a {!Network.t}.
    [extra_minor_words] is cumulative worker-domain allocation to add to
    this domain's [Gc.minor_words] (OCaml 5 counters are per-domain);
    [gc_domains] declares how many domains the resulting figure covers. *)

val samples : t -> sample array
val length : t -> int

val to_rows : t -> (string * float) list list
(** One labelled row per sample, in time order — the keys are [t],
    [in_flight], [max_queue], [absorbed], [dropped], [max_dwell],
    [gc_minor_words], [gc_major_words], [gc_domains].  This is the exchange format for embedding sampled
    trajectories in campaign journals and cached results without ad-hoc
    formatting at the call site. *)

val points : t -> (sample -> float) -> (float * float) array
(** [(t, f sample)] pairs, for plotting. *)

val last : t -> sample option

val major_words_per_step : t -> float
(** Major-heap growth per simulated step between the first and last sample
    (0 with fewer than two samples).  The engine's zero-allocation
    acceptance metric: a warmed-up fast-path run should report ~0. *)
