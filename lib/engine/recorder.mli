(** Periodic sampling of network state during a run.

    A recorder samples global metrics every [every] steps; the samples feed
    the growth-slope stability classifier and the ASCII trajectory plots. *)

type sample = {
  t : int;
  in_flight : int;
  cur_max_queue : int;
  absorbed : int;
  max_dwell : int;
}

type t

val make : ?every:int -> unit -> t
(** Default samples every step. *)

val observe : t -> Network.t -> unit
(** Call after each [Network.step]; samples when [now mod every = 0]. *)

val samples : t -> sample array
val length : t -> int

val to_rows : t -> (string * float) list list
(** One labelled row per sample, in time order — the keys are [t],
    [in_flight], [max_queue], [absorbed], [max_dwell].  This is the
    exchange format for embedding sampled trajectories in campaign
    journals and cached results without ad-hoc formatting at the call
    site. *)

val points : t -> (sample -> float) -> (float * float) array
(** [(t, f sample)] pairs, for plotting. *)

val last : t -> sample option
