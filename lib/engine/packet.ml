(* Every field is mutable so the network's packet pool can reinitialise a
   recycled record in place; outside [Network.fresh_packet] the identity
   fields (id, injected_at, initial, exogenous, tag) behave as immutable. *)
type t = {
  mutable id : int;
  mutable injected_at : int;
  mutable initial : bool;
  mutable exogenous : bool;
  mutable tag : string;
  mutable route : int array;
  mutable hop : int;
  mutable buffered_at : int;
  mutable reroutes : int;
}

let next_edge p =
  if p.hop >= Array.length p.route then None else Some p.route.(p.hop)

let current_edge p =
  if p.hop >= Array.length p.route then
    invalid_arg "Packet.current_edge: packet is absorbed"
  else p.route.(p.hop)

let remaining p = Array.length p.route - p.hop
let traversed p = p.hop
let is_absorbed p = p.hop >= Array.length p.route

let pp fmt p =
  Format.fprintf fmt "#%d[%s inj=%d hop=%d/%d]" p.id p.tag p.injected_at p.hop
    (Array.length p.route)
