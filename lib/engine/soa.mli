(** Struct-of-arrays engine core with domain-partitioned parallel stepping.

    Same observable semantics as {!Network} — two-substep steps, the same
    policies, tie orders and capacity models — but packet fields live in
    flat [int] arrays indexed by packet slot, routes in a shared flat arena,
    and per-edge buffers are index slices into partition-owned arenas, so a
    step is cache-linear and allocation-free in steady state.

    With [~domains:n > 1] edges are partitioned into [n] contiguous blocks,
    each owned by one OCaml 5 domain of a persistent pool, and a step runs
    as two deterministic phases: parallel forwarding into position-indexed
    pending slots, then a position-ordered exchange in which each domain
    enqueues exactly the packets destined for its own edges.  Positions
    encode the sequential processing order, so trajectories are
    byte-identical to the sequential engine for every domain count — the
    property [Aqt_check.Diff] asserts buffer-by-buffer each step.

    Differences from {!Network}: no tracer, no exogenous injections, and no
    per-packet [reroute] handle (use {!reroute_where}); a [Shared]
    (Dynamic-Threshold) capacity model runs the delivery substep
    sequentially because its admission test reads global occupancy. *)

type injection = Network.injection = { route : int array; tag : string }

type t

val create :
  ?log_injections:bool ->
  ?validate_routes:bool ->
  ?tie_order:Network.tie_order ->
  ?capacity:Aqt_capacity.Model.t ->
  ?domains:int ->
  graph:Aqt_graph.Digraph.t ->
  policy:Policy_type.t ->
  unit ->
  t
(** Options as in {!Network.create}.  [domains] (default 1) is the number of
    edge partitions; [domains - 1] worker domains are spawned immediately
    and parked on a condition variable between steps — call {!shutdown}
    when done (the OCaml runtime caps live domains).  The count is clamped
    to the number of edges.  [By_key] policy key functions must be pure:
    they run against a reusable scratch packet, possibly on a worker
    domain. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent; a no-op when [domains = 1].  The
    instance must not be stepped afterwards. *)

(** {1 Driving the system} *)

val place_initial : ?tag:string -> t -> int array -> int
(** As {!Network.place_initial}; returns the packet id.
    @raise Invalid_argument after the first step or on an invalid route. *)

val step : t -> injection list -> unit
(** One global time step with the given injections in its second substep. *)

val reroute_where :
  t -> (id:int -> edge:int -> remaining:int -> bool) -> int array -> unit
(** [reroute_where t pred suffix] rewrites the route of every buffered
    packet selected by [pred] to its traversed prefix (including the current
    edge) followed by [suffix] — the Lemma 3.3 rewrite of
    {!Network.reroute}, as a bulk operation because packet slots are not
    stable handles.  [pred] sees the packet id, the edge it is currently
    buffered on (so queue-driven feedback rules can select by local
    congestion) and its remaining hop count.  Route validation applies when
    enabled.  Selection order is unspecified; [pred] must not depend on
    it. *)

(** {1 Observation}

    Accessors mirror {!Network}'s and agree with it value-for-value on
    identical runs. *)

type view = {
  v_id : int;
  v_injected_at : int;
  v_hop : int;
  v_buffered_at : int;
  v_route : int array;  (** a fresh copy; safe to retain *)
}
(** A buffered packet, copied out of the slab. *)

val graph : t -> Aqt_graph.Digraph.t
val policy : t -> Policy_type.t
val now : t -> int

val domains : t -> int
(** The partition count this instance was created with (after clamping). *)

val buffer_len : t -> int -> int

val buffer_packets : t -> int -> view list
(** Contents of the buffer of edge [e] in service order (head first), as
    {!Network.buffer_packets}. *)

val in_flight : t -> int
val absorbed : t -> int
val injected_count : t -> int
val initial_count : t -> int
val dropped : t -> int
val displaced : t -> int
val dropped_on_edge : t -> int -> int
val occupancy : t -> int
val peak_occupancy : t -> int
val current_max_queue : t -> int
val max_queue_ever : t -> int
val max_queue_of_edge : t -> int -> int
val sent_on_edge : t -> int -> int
val max_dwell : t -> int
val max_pending_dwell : t -> int
val delivered_latency_max : t -> int
val delivered_latency_mean : t -> float
val delivered_latency_percentile : t -> float -> int
val reroute_count : t -> int
val last_injection_on : t -> int -> int
val capacity : t -> Aqt_capacity.Model.t
val speedup : t -> int

val injection_log : t -> (int * int array) array
(** As {!Network.injection_log}.
    @raise Invalid_argument without [log_injections]. *)

val initial_final_routes : t -> int array array
(** As {!Network.initial_final_routes}.
    @raise Invalid_argument without [log_injections]. *)

(** {1 Introspection for tests and recorders} *)

val pooled : t -> int
(** Recycled packet slots currently on the free stack. *)

val slab_slots : t -> int
(** Slots ever allocated (the slab high-water mark); recycling keeps this
    near the peak live population rather than the injection count. *)

val arena_words : t -> int * int
(** [(used, capacity)] in words across the route arena and every partition's
    buffer arena — growth tests assert geometric bounds on the ratio. *)

val worker_minor_words : t -> float
(** Cumulative minor-heap words allocated by the worker domains of this
    instance's pool (0 when [domains = 1]).  Add to the main domain's
    [Gc.minor_words] for a process-wide figure: OCaml 5 GC counters are
    per-domain. *)
