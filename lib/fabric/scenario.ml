module Ratio = Aqt_util.Ratio
module D = Aqt_graph.Digraph
module Build = Aqt_graph.Build
module Traffic = Aqt_workload.Traffic
module Network = Aqt_engine.Network
module Soa = Aqt_engine.Soa
module Policies = Aqt_policy.Policies
module Capacity = Aqt_capacity.Model
module Rate_check = Aqt_adversary.Rate_check

type topo =
  | Spine_leaf of { spines : int; leaves : int; hosts_per_leaf : int }
  | Fat_tree of { k : int }

let topo_name = function
  | Spine_leaf { spines; leaves; hosts_per_leaf } ->
      Printf.sprintf "spine-leaf(%d,%d,%d)" spines leaves hosts_per_leaf
  | Fat_tree { k } -> Printf.sprintf "fat-tree(%d)" k

let build_topo = function
  | Spine_leaf { spines; leaves; hosts_per_leaf } ->
      Build.spine_leaf ~spines ~leaves ~hosts_per_leaf
  | Fat_tree { k } -> Build.fat_tree ~k

type backend = Record | Soa of int

let backend_name = function
  | Record -> "record"
  | Soa d -> Printf.sprintf "soa:%d" d

type t = {
  name : string;
  topo : topo;
  pattern : Traffic.pattern;
  conns_per_pair : int;
  utilisation : Ratio.t;
  flow_cdf : (int * int) list;
  policy : Aqt_engine.Policy_type.t;
  capacity : Capacity.t;
  horizon : int;
  drain : int;
  seed : int;
}

let make ?(name = "") ?(conns_per_pair = 1) ?(flow_cdf = Traffic.default_cdf)
    ?(policy = Policies.fifo) ?(capacity = Capacity.unbounded) ?(drain = 200)
    ?(seed = 1) ~topo ~pattern ~utilisation ~horizon () =
  let name = if name <> "" then name else topo_name topo in
  {
    name;
    topo;
    pattern;
    conns_per_pair;
    utilisation;
    flow_cdf;
    policy;
    capacity;
    horizon;
    drain;
    seed;
  }

let compile t =
  let fabric = build_topo t.topo in
  let spec =
    {
      Traffic.pattern = t.pattern;
      conns_per_pair = t.conns_per_pair;
      utilisation = t.utilisation;
      flow_cdf = t.flow_cdf;
      horizon = t.horizon;
      seed = t.seed;
    }
  in
  let compiled =
    Traffic.compile
      ~n_hosts:(Array.length fabric.Build.hosts)
      ~m:(D.n_edges fabric.Build.graph)
      ~routes:fabric.Build.routes spec
  in
  (fabric, compiled)

let injections_of_step routes =
  List.map (fun route : Network.injection -> { route; tag = "fab" }) routes

type outcome = {
  scenario : t;
  backend : backend;
  nodes : int;
  edges : int;
  n_hosts : int;
  n_pairs : int;
  n_flows : int;
  injected : int;
  absorbed : int;
  dropped : int;
  in_flight : int;
  max_queue : int;
  peak_occupancy : int;
  max_dwell : int;
  latency_mean : float;
  legal : bool;
}

let run ?(backend = Record) t =
  let fabric, compiled = compile t in
  let graph = fabric.Build.graph in
  let steps = t.horizon + t.drain in
  let step_routes i =
    if i < t.horizon then compiled.Traffic.schedule.(i) else []
  in
  let finish ~injection_log ~injected ~absorbed ~dropped ~in_flight
      ~max_queue ~peak_occupancy ~max_dwell ~latency_mean =
    let legal =
      Rate_check.check_local ~rate:compiled.Traffic.rate
        ~sigmas:compiled.Traffic.sigmas injection_log
      = Ok ()
    in
    {
      scenario = t;
      backend;
      nodes = D.n_nodes graph;
      edges = D.n_edges graph;
      n_hosts = Array.length fabric.Build.hosts;
      n_pairs = Array.length compiled.Traffic.pairs;
      n_flows = Array.length compiled.Traffic.flows;
      injected;
      absorbed;
      dropped;
      in_flight;
      max_queue;
      peak_occupancy;
      max_dwell;
      latency_mean;
      legal;
    }
  in
  match backend with
  | Record ->
      let net =
        Network.create ~log_injections:true ~recycle:true
          ~capacity:t.capacity ~graph ~policy:t.policy ()
      in
      for i = 0 to steps - 1 do
        Network.step net (injections_of_step (step_routes i))
      done;
      finish
        ~injection_log:(Network.injection_log net)
        ~injected:(Network.injected_count net)
        ~absorbed:(Network.absorbed net) ~dropped:(Network.dropped net)
        ~in_flight:(Network.in_flight net)
        ~max_queue:(Network.max_queue_ever net)
        ~peak_occupancy:(Network.peak_occupancy net)
        ~max_dwell:(Network.max_dwell net)
        ~latency_mean:(Network.delivered_latency_mean net)
  | Soa domains ->
      let net =
        Soa.create ~log_injections:true ~capacity:t.capacity ~domains ~graph
          ~policy:t.policy ()
      in
      Fun.protect
        ~finally:(fun () -> Soa.shutdown net)
        (fun () ->
          for i = 0 to steps - 1 do
            Soa.step net (injections_of_step (step_routes i))
          done;
          finish
            ~injection_log:(Soa.injection_log net)
            ~injected:(Soa.injected_count net)
            ~absorbed:(Soa.absorbed net) ~dropped:(Soa.dropped net)
            ~in_flight:(Soa.in_flight net)
            ~max_queue:(Soa.max_queue_ever net)
            ~peak_occupancy:(Soa.peak_occupancy net)
            ~max_dwell:(Soa.max_dwell net)
            ~latency_mean:(Soa.delivered_latency_mean net))

(* Canned scenarios for `aqt_sim fabric --list` and quick CLI runs.  The
   shared-buffer budgets follow the exemplar sizing: a per-port budget
   times the port count, concentrated by the DT rule where the traffic
   lands. *)
let catalog () =
  [
    make ~name:"ft4-incast"
      ~topo:(Fat_tree { k = 4 })
      ~pattern:(Traffic.Incast { senders = 15 })
      ~utilisation:Ratio.one ~horizon:2_000 ();
    make ~name:"ft4-permutation"
      ~topo:(Fat_tree { k = 4 })
      ~pattern:Traffic.Permutation
      ~utilisation:(Ratio.make 9 10)
      ~horizon:2_000 ();
    make ~name:"sl-hotspot-dt"
      ~topo:(Spine_leaf { spines = 4; leaves = 8; hosts_per_leaf = 4 })
      ~pattern:(Traffic.Hotspot { hot_num = 1; hot_den = 2 })
      ~utilisation:Ratio.one
      ~capacity:(Capacity.shared ~alpha_num:1 ~alpha_den:1 256)
      ~horizon:2_000 ();
    make ~name:"sl-alltoall"
      ~topo:(Spine_leaf { spines = 2; leaves = 4; hosts_per_leaf = 2 })
      ~pattern:Traffic.All_to_all
      ~utilisation:(Ratio.make 3 4)
      ~horizon:1_000 ();
    make ~name:"ft6-permutation-lis"
      ~topo:(Fat_tree { k = 6 })
      ~pattern:Traffic.Permutation ~policy:Policies.lis
      ~utilisation:(Ratio.make 9 10)
      ~horizon:1_000 ();
  ]

let find_catalog name =
  List.find_opt (fun t -> t.name = name) (catalog ())
