(** Datacenter-fabric scenarios: a topology, a flow-level workload, a
    queueing policy and a buffer model, driven through either engine
    backend and checked for admissibility on the way out.

    This is the top of the fabric stack: {!Aqt_graph.Build.spine_leaf} /
    {!Aqt_graph.Build.fat_tree} supply the topology and ECMP route sets,
    {!Aqt_workload.Traffic} compiles the flow-level workload into an
    admissible per-step schedule, and [run] replays that schedule through
    the record engine ({!Aqt_engine.Network}) or the struct-of-arrays
    engine ({!Aqt_engine.Soa}).  The two backends produce identical
    trajectories; the fabric conformance family ([aqt_sim check --family
    fabric]) holds them to that. *)

type topo =
  | Spine_leaf of { spines : int; leaves : int; hosts_per_leaf : int }
  | Fat_tree of { k : int }

val topo_name : topo -> string
val build_topo : topo -> Aqt_graph.Build.fabric

type backend =
  | Record  (** {!Aqt_engine.Network} with packet recycling. *)
  | Soa of int  (** {!Aqt_engine.Soa} with the given domain count. *)

val backend_name : backend -> string

type t = {
  name : string;
  topo : topo;
  pattern : Aqt_workload.Traffic.pattern;
  conns_per_pair : int;
  utilisation : Aqt_util.Ratio.t;
  flow_cdf : (int * int) list;
  policy : Aqt_engine.Policy_type.t;
  capacity : Aqt_capacity.Model.t;
  horizon : int;  (** Steps of injection. *)
  drain : int;  (** Extra injection-free steps before reading counters. *)
  seed : int;
}

val make :
  ?name:string ->
  ?conns_per_pair:int ->
  ?flow_cdf:(int * int) list ->
  ?policy:Aqt_engine.Policy_type.t ->
  ?capacity:Aqt_capacity.Model.t ->
  ?drain:int ->
  ?seed:int ->
  topo:topo ->
  pattern:Aqt_workload.Traffic.pattern ->
  utilisation:Aqt_util.Ratio.t ->
  horizon:int ->
  unit ->
  t
(** Defaults: FIFO, unbounded buffers, one connection per pair, the
    heavy-tailed {!Aqt_workload.Traffic.default_cdf}, 200 drain steps,
    seed 1, [name] derived from the topology. *)

val compile : t -> Aqt_graph.Build.fabric * Aqt_workload.Traffic.compiled
(** Build the topology and compile the workload, without running. *)

type outcome = {
  scenario : t;
  backend : backend;
  nodes : int;
  edges : int;
  n_hosts : int;
  n_pairs : int;
  n_flows : int;
  injected : int;
  absorbed : int;
  dropped : int;
  in_flight : int;  (** Still queued after the drain. *)
  max_queue : int;  (** Peak single-queue length over the run. *)
  peak_occupancy : int;  (** Peak total buffered packets (shared-buffer). *)
  max_dwell : int;
  latency_mean : float;
  legal : bool;
      (** The injection log passed
          {!Aqt_adversary.Rate_check.check_local} against the compiled
          [(rate, sigmas)] budget. *)
}

val run : ?backend:backend -> t -> outcome
(** Replay the compiled schedule for [horizon] steps plus [drain]
    injection-free steps.  Deterministic: same scenario, same backend
    (and any domain count), same outcome. *)

val catalog : unit -> t list
(** Canned scenarios for [aqt_sim fabric --list]. *)

val find_catalog : string -> t option
