(** The gadget-pump adversary of Lemma 3.6.

    Preconditions (measured, not assumed): C(S, F(k)) holds, gadget k+1 is
    empty, and the edges of gadget k+1 are new in the sense of Def 3.2.  The
    phase then, over [2S + n] steps,

    + extends the routes of all 2S old packets of gadget k by
      [e'_1..e'_n, a''] (rerouting, Lemma 3.3);
    + injects rate-r single-edge flows on each [e'_i] during
      [[i, i + t_i]] with [t_i = 2S / (r + R_i)];
    + injects [rS] long packets on [a, f_1..f_n, a', f'_1..f'_n, a'']
      during [[1, S]];
    + injects [X = S' - rS + n] packets on [a', f'_1..f'_n, a''] in the first
      [X/r] steps of [[S+n+1, 2S+n]].

    Postcondition (Lemma 3.6): C(S', F(k+1)) holds with
    [S' = 2S (1 - R_n) >= S (1 + eps)], and gadget k is empty. *)

type plan = {
  total_old : int;  (** The measured 2S. *)
  s_ingress : int;  (** The measured ingress population S. *)
  duration : int;  (** 2S + n. *)
  s_target : int;  (** The predicted S'. *)
  x : int;  (** The part-(4) injection count. *)
  flows : Aqt_adversary.Flow.t list;
}

val plan :
  params:Params.t ->
  gadget:Gadget.t ->
  k:int ->
  start:int ->
  total_old:int ->
  s_ingress:int ->
  plan
(** Pure schedule computation; [start] is the phase's first step. *)

val phase :
  ?flow_filter:(Aqt_adversary.Flow.t -> bool) ->
  params:Params.t ->
  gadget:Gadget.t ->
  k:int ->
  Aqt_adversary.Phased.phase
(** The full phase: measures gadget [k], reroutes its old packets, and runs
    the planned flows.  [flow_filter] keeps only the flows it accepts — used
    by the ablation experiments to knock out parts (2)/(3)/(4) of the
    adversary (flow tags are ["short<i>"], ["long"], ["tail"]); the default
    keeps everything.
    @raise Failure if the gadget holds no old packets or rerouting
    preconditions fail. *)
