module Ratio = Aqt_util.Ratio
module Network = Aqt_engine.Network

let floor_wr ~w ~rate = Ratio.floor_mul rate w

let greedy_applicable ~rate ~d =
  Ratio.(mul_int rate (d + 1) <= one)

let time_priority_applicable ~rate ~d = Ratio.(mul_int rate d <= one)

let dwell_bound ~rate ~w ~d ~time_priority =
  let applicable =
    if time_priority then time_priority_applicable ~rate ~d
    else greedy_applicable ~rate ~d
  in
  if applicable then Some (floor_wr ~w ~rate) else None

let converted_window ~s ~w ~rate ~r_star =
  if Ratio.(rate >= r_star) then
    invalid_arg "Stability.converted_window: need rate < r_star";
  let gap = Ratio.sub r_star rate in
  (* ceil ((s + w + 1) / gap) *)
  Ratio.ceil (Ratio.div (Ratio.of_int (s + w + 1)) gap)

let corollary_bound ~s ~w ~rate ~d ~time_priority =
  let r_star = if time_priority then Ratio.make 1 d else Ratio.make 1 (d + 1) in
  if Ratio.(rate >= r_star) then None
  else begin
    let w_star = converted_window ~s ~w ~rate ~r_star in
    Some (Ratio.floor_mul r_star w_star)
  end

let d_of_routes routes =
  List.fold_left (fun acc r -> max acc (Array.length r)) 0 routes

let delivery_bound ~rate ~w ~d ~time_priority =
  Option.map (fun dwell -> d * dwell) (dwell_bound ~rate ~w ~d ~time_priority)

let buffer_bound ~rate ~w ~d ~time_priority =
  Option.map
    (fun dwell ->
      (* Packets sharing a buffer were all injected within the last
         (d+1)*dwell steps; per edge, any interval of L steps admits at most
         (floor(L/w) + 1) * floor(w r) injections requiring it. *)
      let window_span = (d + 1) * dwell in
      ((window_span / w) + 1) * dwell)
    (dwell_bound ~rate ~w ~d ~time_priority)

let converted_driver ~initial ~(driver : Aqt_engine.Sim.driver) :
    Aqt_engine.Sim.driver =
  {
    before_step = (fun net t -> if t > 1 then driver.before_step net (t - 1));
    injections_at =
      (fun net t ->
        if t = 1 then
          Array.to_list
            (Array.map
               (fun route : Network.injection -> { route; tag = "initial" })
               initial)
        else driver.injections_at net (t - 1));
    (* The wrapped adversary's clock is shifted by the synthetic first
       step, so its queue observations shift with it. *)
    observe_queues =
      Option.map
        (fun f queues t -> if t > 1 then f queues (t - 1))
        driver.Aqt_engine.Sim.observe_queues;
  }

type verdict = { bound : int; max_dwell_seen : int; max_pending : int; ok : bool }

let verify_run ?(s_initial = 0) ~w ~rate ~d net =
  let time_priority = (Network.policy net).time_priority in
  let bound =
    if s_initial = 0 then dwell_bound ~rate ~w ~d ~time_priority
    else corollary_bound ~s:s_initial ~w ~rate ~d ~time_priority
  in
  Option.map
    (fun bound ->
      let max_dwell_seen = Network.max_dwell net in
      let max_pending = Network.max_pending_dwell net in
      {
        bound;
        max_dwell_seen;
        max_pending;
        ok = max_dwell_seen <= bound && max_pending <= bound;
      })
    bound
