(** The stitch adversary of Lemma 3.16: replace a queue of old packets with a
    queue of fresh packets across three consecutive edges [a0, a1, a2].

    In the Theorem 3.17 graph, [a0] is the egress of the last gadget, [a1]
    the stitching edge [e0], and [a2] the ingress of the first gadget.
    Precondition: S old packets sit in the buffer of [a0], remaining routes
    of length 1.  Over [S + rS + r^2 S] steps the phase

    + injects [rS] packets with route [a0, a1, a2] during [[1, S]];
    + injects [r^2 S] packets with route [[a2]] during [[S+1, S+rS]];
    + injects [r^3 S] packets with route [[a2]] during
      [[S+rS+1, S+rS+r^2 S]].

    Postcondition: the buffer of [a2] holds [r^3 S] fresh packets (injected
    after time [tau + S]), and the network holds nothing else. *)

type plan = {
  s : int;  (** The measured queue at [a0]. *)
  rs : int;  (** Part-(1) volume. *)
  r2s : int;  (** Part-(2) volume. *)
  r3s : int;  (** Part-(3) volume — the fresh seed count. *)
  duration : int;
  flows : Aqt_adversary.Flow.t list;
}

val plan :
  rate:Aqt_util.Ratio.t ->
  relay:int array ->
  start:int ->
  s:int ->
  plan
(** [relay] is the three-edge path [a0; a1; a2]. *)

val phase :
  ?flow_filter:(Aqt_adversary.Flow.t -> bool) ->
  rate:Aqt_util.Ratio.t ->
  gadget:Gadget.t ->
  Aqt_adversary.Phased.phase
(** Uses the cyclic graph's relay [a_M, e0, a_0].  [flow_filter] supports the
    ablation experiments (flow tags are ["relay"], ["mixer"], ["fresh"]).
    @raise Failure if the egress buffer is empty.
    @raise Invalid_argument on a non-cyclic gadget graph. *)
