(** The fluid-limit analysis of the pump (Claims 3.8–3.12), as executable
    formulas.

    Lemma 3.6's proof tracks piecewise-linear fluid trajectories: old packets
    arrive at the tail of [e'_i] at rate [R_i] during [[i+1, 2S+i]]
    (Claim 3.9), the buffer of [e'_i] fills at rate [R_i + r - 1] while the
    part-(2) short flow runs and drains at [1 - R_i] afterwards, the short
    packets are gone exactly at [2S+i] leaving [(2S - t_i) R_i] old packets
    (Claim 3.11), and [2S R_n] old packets cross the egress by [2S+n]
    (Claim 3.10).

    This module evaluates those trajectories so experiments can compare the
    paper's analysis against the discrete simulation point by point — not
    just at the phase boundary.  All times are relative to the phase start
    ([tau = 0] in the paper's notation). *)

type profile = {
  r : float;
  n : int;
  total_old : int;  (** The 2S of the analysis. *)
  ri : float array;  (** [ri.(i-1)] = R_i, for i = 1..n+1. *)
  ti : float array;  (** [ti.(i-1)] = t_i = 2S / (r + R_i). *)
  peak_time : float array;  (** Buffer of [e'_i] peaks at [i + t_i]. *)
  peak_queue : float array;  (** Peak size [(R_i + r - 1) t_i]. *)
  final_old : float array;
      (** Old packets left in [e'_i] at time [2S+i]: [(2S - t_i) R_i]. *)
  s' : float;  (** [2S (1 - R_n)] — both sides of C(S', F'). *)
  crossed_egress : float;  (** Old packets past [a''] by [2S+n]: [2S R_n]. *)
  duration : int;  (** [2S + n]. *)
}

val pump_profile : r:float -> n:int -> total_old:int -> profile

val queue_at : profile -> i:int -> t:float -> float
(** Fluid prediction of the total population of [e'_i]'s buffer at relative
    time [t]: 0 before [i], filling at [R_i + r - 1] on [[i, i + t_i]],
    draining at [1 - R_i] until [2S + i], then (old packets only, arrivals
    over) draining at full rate 1 until empty.
    @raise Invalid_argument if [i] is outside [1..n]. *)

val arrivals_at : profile -> i:int -> t:float -> float
(** Fluid count of old packets that have arrived at the tail of [e'_i] by
    time [t] (Claim 3.9: rate [R_i] on [[i, 2S+i]], capped at [2S R_i]). *)
