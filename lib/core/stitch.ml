module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Flow = Aqt_adversary.Flow
module Phased = Aqt_adversary.Phased
module Ratio = Aqt_util.Ratio

type plan = {
  s : int;
  rs : int;
  r2s : int;
  r3s : int;
  duration : int;
  flows : Flow.t list;
}

let plan ~rate ~relay ~start ~s =
  if Array.length relay <> 3 then invalid_arg "Stitch.plan: relay must have 3 edges";
  if s < 1 then invalid_arg "Stitch.plan: empty source queue";
  let tau = start - 1 in
  let rs = Ratio.floor_mul rate s in
  let r2s = Ratio.floor_mul rate rs in
  let r3s = Ratio.floor_mul rate r2s in
  let a2 = [| relay.(2) |] in
  let part1 =
    Flow.make ~tag:"relay" ~route:relay ~rate ~start:(tau + 1) ~stop:(tau + s)
      ()
  in
  let part2 =
    if r2s = 0 then []
    else
      [
        Flow.make ~tag:"mixer" ~max_total:r2s ~route:a2 ~rate
          ~start:(tau + s + 1) ~stop:(tau + s + rs) ();
      ]
  in
  let part3 =
    if r3s = 0 then []
    else
      [
        Flow.make ~tag:"fresh" ~max_total:r3s ~route:a2 ~rate
          ~start:(tau + s + rs + 1)
          ~stop:(tau + s + rs + r2s)
          ();
      ]
  in
  {
    s;
    rs;
    r2s;
    r3s;
    duration = s + rs + r2s;
    flows = (part1 :: part2) @ part3;
  }

let phase ?(flow_filter = fun _ -> true) ~rate ~gadget : Phased.phase =
 fun net start ->
  let relay = Gadget.stitch_route gadget in
  let s = Network.buffer_len net relay.(0) in
  if s = 0 then failwith "Stitch.phase: no packets queued at the egress";
  let p = plan ~rate ~relay ~start ~s in
  let flows = List.filter flow_filter p.flows in
  (Sim.injections_only (fun _ t -> Flow.injections_at flows t), p.duration)
