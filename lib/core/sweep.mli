(** Empirical stability classification for (network, policy, adversary)
    triples.

    A run is classified by the backlog trajectory: [Blowup] if a buffer ever
    exceeds the cap, [Growing] if the in-flight population at the end of the
    horizon is well above its midpoint value (sustained linear growth),
    [Stable] otherwise.  This is a heuristic — adversarial instability can
    have long quiet prefixes — so horizons should comfortably exceed the
    workload's natural time scale; the experiment tables report the raw
    numbers next to the verdict. *)

type verdict = Stable | Growing | Blowup

val verdict_to_string : verdict -> string

type report = {
  name : string;
  policy : string;
  rate : Aqt_util.Ratio.t;
  verdict : verdict;
  max_queue : int;
  mid_backlog : int;
  final_backlog : int;
  steps_run : int;
}

val classify :
  ?blowup:int ->
  ?route_table:Aqt_engine.Route_intern.t ->
  name:string ->
  graph:Aqt_graph.Digraph.t ->
  policy:Aqt_engine.Policy_type.t ->
  adversary:Aqt_adversary.Stock.t ->
  horizon:int ->
  unit ->
  report
(** Runs for [horizon] steps (default blowup cap 200_000 packets in one
    buffer) and classifies.  Runs on the engine fast path (packet recycling
    on); pass one [route_table] across the cells of a grid — all on the same
    graph — to validate and intern each distinct route once for the whole
    sweep. *)
