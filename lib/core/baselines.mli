(** Prior-work context the paper compares against (§1, §5).

    The exact networks of the historical FIFO instability bounds are not in
    this paper; we reproduce their numbers as a reference table, the Díaz et
    al. network-dependent stability formula, and the cross-policy experiment
    that makes the paper's point concrete: the Theorem 3.17 injection
    sequence destabilizes FIFO but leaves the universally stable policies
    (LIS, FTG) bounded on the same network. *)

type threshold = {
  source : string;
  year : int;
  rate : float;  (** FIFO shown unstable for rates above this value. *)
  note : string;
}

val fifo_instability_thresholds : threshold list
(** Andrews et al. 0.85, Díaz et al. 0.8357, Koukopoulos et al. 0.749, this
    paper 0.5 (+ε), and Bhattacharjee–Goel 0 (any rate; subsequent work). *)

val diaz_stability_bound : d:int -> m:int -> alpha:int -> Aqt_util.Ratio.t
(** The per-network FIFO stability bound of Díaz et al., [1 / (2 d m alpha)]:
    FIFO is stable on a network with [m] edges, max in-degree [alpha] and
    longest route [d] below this rate.  Compare with this paper's
    network-independent [1/d]. *)

val this_paper_bound : d:int -> Aqt_util.Ratio.t
(** [1/d] (Theorem 4.3, FIFO is time-priority). *)

type replay_result = {
  policy : string;
  max_queue : int;
  backlog : int;  (** Packets still in flight when the script ends. *)
  absorbed : int;
  max_dwell : int;
}

val replay_against :
  ?initial:int array array ->
  graph:Aqt_graph.Digraph.t ->
  rate:Aqt_util.Ratio.t ->
  log:(int * int array) array ->
  policies:Aqt_engine.Policy_type.t list ->
  settle:int ->
  unit ->
  replay_result list
(** Replays a recorded injection log (the static form of a Theorem 3.17
    adversary) against each policy on a fresh copy of the network, running
    [settle] extra idle steps after the last injection so stable policies can
    drain.  [initial] places an initial configuration (one packet per route)
    before the run — pass [Network.initial_final_routes] of the recorded run
    to reproduce its seeds.  Returns one row per policy. *)
