module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Flow = Aqt_adversary.Flow
module Phased = Aqt_adversary.Phased

type plan = {
  total_old : int;
  s_ingress : int;
  duration : int;
  s_target : int;
  x : int;
  flows : Flow.t list;
}

let plan ~(params : Params.t) ~gadget ~k ~start ~total_old ~s_ingress =
  let tau = start - 1 in
  let r = params.r and n = params.n and rate = params.rate in
  let s_target = Params.s' ~r ~n ~total_old in
  let x = Params.x_param ~r ~n ~total_old ~s_ingress in
  let short_flows =
    List.init n (fun idx ->
        let i = idx + 1 in
        let ti = Params.ti ~r ~n ~total_old ~i in
        Flow.make ~tag:(Printf.sprintf "short%d" i)
          ~route:[| gadget.Gadget.e.(k).(i - 1) |]
          ~rate ~start:(tau + i) ~stop:(tau + i + ti) ())
  in
  let long_flow =
    Flow.make ~tag:"long" ~route:(Gadget.pump_long_route gadget ~k) ~rate
      ~start:(tau + 1) ~stop:(tau + s_ingress) ()
  in
  let tail_flow =
    if x = 0 then []
    else
      [
        Flow.make ~tag:"tail" ~max_total:x
          ~route:(Gadget.pump_tail_route gadget ~k) ~rate
          ~start:(tau + s_ingress + n + 1)
          ~stop:(tau + (2 * s_ingress) + n)
          ();
      ]
  in
  {
    total_old;
    s_ingress;
    duration = total_old + n;
    s_target;
    x;
    flows = (long_flow :: tail_flow) @ short_flows;
  }

(* Old packets of gadget k: the e-path and ingress packets whose remaining
   routes match Def 3.5 exactly.  Stragglers from earlier phases (single-edge
   scaffolding not yet absorbed) are left alone. *)
let old_packets net gadget ~k =
  let matching edge expected =
    List.filter
      (fun (p : Aqt_engine.Packet.t) ->
        Array.sub p.route p.hop (Array.length p.route - p.hop) = expected)
      (Network.buffer_packets net edge)
  in
  let from_e =
    List.concat
      (List.init gadget.Gadget.n (fun idx ->
           let i = idx + 1 in
           matching
             gadget.Gadget.e.(k - 1).(i - 1)
             (Gadget.e_remaining gadget ~k ~i)))
  in
  let from_ingress =
    matching (Gadget.ingress gadget ~k) (Gadget.ingress_remaining gadget ~k)
  in
  (from_e, from_ingress)

let phase ?(flow_filter = fun _ -> true) ~params ~gadget ~k : Phased.phase =
 fun net start ->
  let from_e, from_ingress = old_packets net gadget ~k in
  let total_old = List.length from_e + List.length from_ingress in
  let s_ingress = List.length from_ingress in
  let n = params.Params.n in
  if List.length from_e < n || s_ingress < n then
    failwith
      (Printf.sprintf
         "Pump.phase: C(S, F(%d)) precondition not met (e-path holds %d, \
          ingress holds %d; need >= n = %d each)"
         k (List.length from_e) s_ingress n);
  (match
     Reroute.extend_all ~rate:params.Params.rate net
       ~packets:(from_e @ from_ingress)
       ~suffix:(Gadget.extension_suffix gadget ~k)
   with
  | Ok () -> ()
  | Error e ->
      failwith
        (Format.asprintf "Pump.phase: rerouting rejected: %a" Reroute.pp_error
           e));
  let p = plan ~params ~gadget ~k ~start ~total_old ~s_ingress in
  let flows = List.filter flow_filter p.flows in
  (Sim.injections_only (fun _ t -> Flow.injections_at flows t), p.duration)
