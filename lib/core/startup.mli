(** The startup adversary of Lemma 3.15: establish C(S', F(1)) from a buffer
    of seed packets.

    Precondition: all packets in the network are 2S packets in the ingress
    buffer of gadget 1, each with remaining route of length 1 (the ingress
    edge only), and the other edges of the gadget are new (Def 3.2).  Over
    [2S + n] steps the phase

    + extends the seeds' routes to [a, e_1..e_n, a'] (rerouting);
    + injects rate-r single-edge flows on each [e_i] during [[i, t_i]];
    + injects a rate-r stream of [S' + n] packets from step 1, the first [n]
      with route [[a]] and the rest with route [a, f_1..f_n, a'].

    Postcondition: C(S', F(1)) with [S' = 2S (1 - R_n) >= S (1 + eps)]. *)

type plan = {
  total_seed : int;  (** The measured 2S. *)
  duration : int;  (** 2S + n. *)
  s_target : int;  (** The predicted S'. *)
  short_flows : Aqt_adversary.Flow.t list;
  stream_counter : Aqt_adversary.Flow.t;
      (** Pacing of the part-(3) stream; the first [n] released packets take
          the one-edge route, the rest the long route. *)
}

val plan : params:Params.t -> gadget:Gadget.t -> start:int -> total_seed:int -> plan

val phase : params:Params.t -> gadget:Gadget.t -> Aqt_adversary.Phased.phase
(** Measures the seed buffer, reroutes, runs the flows.
    @raise Failure if there are no seed packets or rerouting fails. *)
