module Network = Aqt_engine.Network
module Packet = Aqt_engine.Packet

type measurement = {
  s_epath : int;
  s_ingress : int;
  empty_e_buffers : int;
  bad_e_routes : int;
  bad_ingress_routes : int;
  extraneous : int;
  egress_occupancy : int;
}

let remaining_route (p : Packet.t) =
  Array.sub p.route p.hop (Array.length p.route - p.hop)

(* Clause checks compare a prefix: a packet whose remaining route *starts
   with* the required path and then leaves the gadget would violate clause
   (4) in spirit; Def 3.5 pins the remaining routes exactly, so we compare
   for equality. *)
let route_equals expected (p : Packet.t) =
  let rem = remaining_route p in
  rem = expected

let measure net (g : Gadget.t) ~k =
  let n = g.n in
  let s_epath = ref 0 in
  let empty_e_buffers = ref 0 in
  let bad_e_routes = ref 0 in
  for i = 1 to n do
    let edge = g.e.(k - 1).(i - 1) in
    let packets = Network.buffer_packets net edge in
    let len = List.length packets in
    s_epath := !s_epath + len;
    if len = 0 then incr empty_e_buffers;
    let expected = Gadget.e_remaining g ~k ~i in
    List.iter
      (fun p -> if not (route_equals expected p) then incr bad_e_routes)
      packets
  done;
  let ingress = Gadget.ingress g ~k in
  let ingress_packets = Network.buffer_packets net ingress in
  let expected_ingress = Gadget.ingress_remaining g ~k in
  let bad_ingress_routes =
    List.length
      (List.filter
         (fun p -> not (route_equals expected_ingress p))
         ingress_packets)
  in
  let extraneous = ref 0 in
  Array.iter
    (fun edge -> extraneous := !extraneous + Network.buffer_len net edge)
    g.f.(k - 1);
  let egress_occupancy = Network.buffer_len net (Gadget.egress g ~k) in
  {
    s_epath = !s_epath;
    s_ingress = List.length ingress_packets;
    empty_e_buffers = !empty_e_buffers;
    bad_e_routes = !bad_e_routes;
    bad_ingress_routes;
    extraneous = !extraneous;
    egress_occupancy;
  }

let check_strict net g ~k =
  let m = measure net g ~k in
  if m.empty_e_buffers > 0 then
    Error (Printf.sprintf "%d empty e-buffers" m.empty_e_buffers)
  else if m.bad_e_routes > 0 then
    Error (Printf.sprintf "%d e-path packets with wrong routes" m.bad_e_routes)
  else if m.bad_ingress_routes > 0 then
    Error
      (Printf.sprintf "%d ingress packets with wrong routes"
         m.bad_ingress_routes)
  else if m.extraneous > 0 then
    Error (Printf.sprintf "%d extraneous packets in gadget" m.extraneous)
  else if m.egress_occupancy > 0 then
    Error (Printf.sprintf "%d packets in the egress buffer" m.egress_occupancy)
  else if m.s_epath <> m.s_ingress then
    Error
      (Printf.sprintf "e-path holds %d packets but ingress holds %d"
         m.s_epath m.s_ingress)
  else Ok m.s_epath

let holds_with_slack ~slack net g ~k =
  let m = measure net g ~k in
  m.empty_e_buffers = 0
  && m.bad_e_routes <= slack
  && m.bad_ingress_routes <= slack
  && m.extraneous <= slack
  && m.s_epath > 0
  && m.s_ingress > 0
  && abs (m.s_epath - m.s_ingress) <= slack

let gadget_occupancy net g ~k =
  List.fold_left
    (fun acc e -> acc + Network.buffer_len net e)
    0
    (Gadget.gadget_edges g ~k)
