module D = Aqt_graph.Digraph

type t = {
  graph : D.t;
  n : int;
  f_len : int;
  m_gadgets : int;
  a : int array;
  e : int array array;
  f : int array array;
  e0 : int option;
}

(* Node layout: the shared edge a_k runs x_k -> y_k; gadget k's two paths run
   from y_(k-1) to x_k through n-1 fresh intermediate nodes each. *)
let build ~n ~f_len ~m ~cyclic =
  if n < 1 then invalid_arg "Gadget: n must be >= 1";
  if f_len < 1 || f_len > n then
    invalid_arg "Gadget: f_len must be in [1, n]";
  if m < 1 then invalid_arg "Gadget: m must be >= 1";
  let g = D.create () in
  let x = Array.init (m + 1) (fun k -> D.add_node ~name:(Printf.sprintf "x%d" k) g) in
  let y = Array.init (m + 1) (fun k -> D.add_node ~name:(Printf.sprintf "y%d" k) g) in
  let a =
    Array.init (m + 1) (fun k ->
        D.add_edge ~label:(Printf.sprintf "a%d" k) g ~src:x.(k) ~dst:y.(k))
  in
  let path k name len =
    (* len edges from y_(k-1) to x_k. *)
    let prev = ref y.(k - 1) in
    Array.init len (fun i ->
        let next =
          if i = len - 1 then x.(k)
          else D.add_node ~name:(Printf.sprintf "%s%d_%d" name k (i + 1)) g
        in
        let e =
          D.add_edge
            ~label:(Printf.sprintf "%s%d_%d" name k (i + 1))
            g ~src:!prev ~dst:next
        in
        prev := next;
        e)
  in
  let e = Array.init m (fun k -> path (k + 1) "e" n) in
  let f = Array.init m (fun k -> path (k + 1) "f" f_len) in
  let e0 =
    if cyclic then
      Some (D.add_edge ~label:"e0" g ~src:y.(m) ~dst:x.(0))
    else None
  in
  { graph = g; n; f_len; m_gadgets = m; a; e; f; e0 }

let chain ?f_len ~n ~m () =
  build ~n ~f_len:(Option.value f_len ~default:n) ~m ~cyclic:false

let fn ~n = chain ~n ~m:1 ()

let cyclic ?f_len ~n ~m () =
  build ~n ~f_len:(Option.value f_len ~default:n) ~m ~cyclic:true

let check_k t k =
  if k < 1 || k > t.m_gadgets then
    invalid_arg (Printf.sprintf "Gadget: gadget index %d out of range" k)

let ingress t ~k =
  check_k t k;
  t.a.(k - 1)

let egress t ~k =
  check_k t k;
  t.a.(k)

let stitch_edge t =
  match t.e0 with
  | Some e -> e
  | None -> invalid_arg "Gadget.stitch_edge: not a cyclic graph"

let seed_route t = [| t.a.(0) |]

let e_remaining t ~k ~i =
  check_k t k;
  if i < 1 || i > t.n then invalid_arg "Gadget.e_remaining: i out of range";
  let path = t.e.(k - 1) in
  Array.append (Array.sub path (i - 1) (t.n - i + 1)) [| t.a.(k) |]

let ingress_remaining t ~k =
  check_k t k;
  Array.concat [ [| t.a.(k - 1) |]; t.f.(k - 1); [| t.a.(k) |] ]

let extension_suffix t ~k =
  check_k t k;
  if k = t.m_gadgets then
    invalid_arg "Gadget.extension_suffix: gadget has no successor";
  Array.append t.e.(k) [| t.a.(k + 1) |]

let startup_extension t = Array.append t.e.(0) [| t.a.(1) |]

let pump_long_route t ~k =
  check_k t k;
  if k = t.m_gadgets then
    invalid_arg "Gadget.pump_long_route: gadget has no successor";
  Array.concat
    [ [| t.a.(k - 1) |]; t.f.(k - 1); [| t.a.(k) |]; t.f.(k); [| t.a.(k + 1) |] ]

let pump_tail_route t ~k =
  check_k t k;
  if k = t.m_gadgets then
    invalid_arg "Gadget.pump_tail_route: gadget has no successor";
  Array.concat [ [| t.a.(k) |]; t.f.(k); [| t.a.(k + 1) |] ]

let startup_long_route t = ingress_remaining t ~k:1

let stitch_route t =
  let e0 = stitch_edge t in
  [| t.a.(t.m_gadgets); e0; t.a.(0) |]

let gadget_edges t ~k =
  check_k t k;
  (t.a.(k - 1) :: Array.to_list t.e.(k - 1))
  @ Array.to_list t.f.(k - 1)
  @ [ t.a.(k) ]

let describe t =
  Printf.sprintf "F_(%d,%d)^%d%s: %d nodes, %d edges" t.n t.f_len t.m_gadgets
    (if t.e0 = None then "" else "+e0")
    (D.n_nodes t.graph) (D.n_edges t.graph)
