module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Recorder = Aqt_engine.Recorder

type verdict = Stable | Growing | Blowup

let verdict_to_string = function
  | Stable -> "stable"
  | Growing -> "growing"
  | Blowup -> "blowup"

type report = {
  name : string;
  policy : string;
  rate : Aqt_util.Ratio.t;
  verdict : verdict;
  max_queue : int;
  mid_backlog : int;
  final_backlog : int;
  steps_run : int;
}

let classify ?(blowup = 200_000) ?route_table ~name ~graph ~policy ~adversary
    ~horizon () =
  (* Recycling is safe here: classify never holds a packet handle past
     absorption.  A caller-supplied [route_table] amortises route validation
     across the cells of a sweep grid (same graph, same route set, many
     policy/rate combinations). *)
  let net = Network.create ?route_table ~recycle:true ~graph ~policy () in
  let recorder = Recorder.make ~every:(max 1 (horizon / 200)) () in
  let outcome =
    Sim.run ~recorder ~blowup ~net
      ~driver:adversary.Aqt_adversary.Stock.driver ~horizon ()
  in
  let samples = Recorder.samples recorder in
  let backlog_at frac =
    if Array.length samples = 0 then Network.in_flight net
    else
      samples.(min (Array.length samples - 1)
                 (int_of_float (frac *. float_of_int (Array.length samples))))
        .Recorder.in_flight
  in
  let mid_backlog = backlog_at 0.5 in
  let final_backlog = Network.in_flight net in
  let verdict =
    match outcome.Sim.stop with
    | Sim.Blowup _ -> Blowup
    | _ ->
        (* Linear growth from an empty start has final = 2 * mid exactly, so
           a factor-2 test would miss it; 1.5x plus an additive floor flags
           sustained growth while tolerating bounded oscillation. *)
        if final_backlog > (3 * mid_backlog / 2) + 20 then Growing else Stable
  in
  {
    name;
    policy = policy.Aqt_engine.Policy_type.name;
    rate = adversary.Aqt_adversary.Stock.rate;
    verdict;
    max_queue = Network.max_queue_ever net;
    mid_backlog;
    final_backlog;
    steps_run = outcome.Sim.steps_run;
  }
