(** The parameter calculus of Lemma 3.6 and the Appendix.

    For an instability target rate [r = 1/2 + eps] the construction picks a
    gadget path length [n] and a seed threshold [S0]:

    {ul
    {- [Ri = (1 - r) / (1 - r^i)], the rate at which old packets arrive at
       the tail of the i-th primed edge (Claim 3.9); satisfies
       [Ri / (r + Ri) = R(i+1)] (equation 3.1);}
    {- [n > max ((log eps - 2) / log r, 1 - 1 / log r)] (logs base 2);}
    {- [S0 > max (2n, n / (2 (Rn - R(n+1))))];}
    {- [ti = 2S / (r + Ri)], the short-flow duration for edge i;}
    {- [S' = 2S (1 - Rn)], the pumped queue size, with [S' >= S (1 + eps)];}
    {- [X = S' - rS + n], the part-(4) injection count, [0 < X <= rS].}}

    Rates are exact rationals (they parameterize injection flows); the derived
    quantities [Ri], [ti], [S0], [S'] are evaluated in floating point and
    rounded — the paper's own analysis drops floors and ceilings and absorbs
    the error into a larger [S0], and all experiment assertions compare
    measured values, not formulas. *)

type t = {
  eps : Aqt_util.Ratio.t;  (** The ε of Theorem 3.17; must be in (0, 1/2). *)
  rate : Aqt_util.Ratio.t;  (** r = 1/2 + ε, exact. *)
  r : float;  (** Float image of [rate]. *)
  n : int;  (** Gadget path length. *)
  s0 : int;  (** Minimum seed queue size. *)
}

val make : ?n:int -> ?s0:int -> eps:Aqt_util.Ratio.t -> unit -> t
(** Derives [n] and [s0] from the Appendix formulas unless overridden.
    @raise Invalid_argument if [eps] is outside (0, 1/2), or an override is
    inconsistent (n < 1, s0 < 2n). *)

val ri : r:float -> int -> float
(** [ri ~r i] is [R_i]; [R_1 = 1]. *)

val n_formula : r:float -> eps:float -> int
(** Smallest admissible [n] (the Appendix bound, rounded up and at least 1). *)

val s0_formula : r:float -> n:int -> int
(** Smallest admissible [S0] for a given [n]. *)

val ti : r:float -> n:int -> total_old:int -> i:int -> int
(** [ti ~r ~n ~total_old ~i] is the short-flow duration for edge i of the
    pump adversary, [2S / (r + R_i)] with [2S = total_old], rounded down. *)

val s' : r:float -> n:int -> total_old:int -> int
(** The pumped queue size [2S (1 - R_n)] with [2S = total_old], rounded
    down. *)

val x_param : r:float -> n:int -> total_old:int -> s_ingress:int -> int
(** The part-(4) count [X = S' - r*S + n] where [S = s_ingress] is the
    ingress-buffer population; clamped to [0, floor (r * s_ingress)] (Claim
    3.7 guarantees the clamp is vacuous for admissible parameters). *)

val chain_length : eps:float -> ?margin:float -> unit -> int
(** The M of Theorem 3.17: gadgets needed so a full cycle multiplies the seed
    queue by more than [margin] (default 1.25), i.e. the least M with
    [r^3 (1+eps)^M / 4 > margin]. *)

val growth_per_cycle : eps:float -> m:int -> float
(** The theorem's lower bound [r^3 (1+eps)^M / 4] on per-cycle seed growth. *)

(** {1 Exact (non-worst-case) growth model}

    The theorem's per-gadget factor (1+ε) and per-cycle loss 1/4 are loose
    bounds; the construction actually multiplies a gadget's queue by
    [2 (1 - R_n)] per pump, loses only ~n packets in the drain, and keeps an
    r^3 fraction in the stitch.  Experiments size M with this model so cycle
    lengths stay tractable; the theorem formula is reported alongside. *)

val pump_factor : r:float -> n:int -> float
(** [2 (1 - R_n)] — the exact S'/S of one pump. *)

val cycle_growth_actual : r:float -> n:int -> m:int -> float
(** Predicted seed ratio of one full cycle:
    [(1 - R_n) * (2 (1 - R_n))^(m-1) * r^3] (startup halves the seed count
    before its pump factor; the drain loss of ~n is ignored). *)

val chain_length_actual : r:float -> n:int -> ?margin:float -> unit -> int
(** Least M whose {!cycle_growth_actual} exceeds [margin] (default 1.5). *)
