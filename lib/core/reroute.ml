module Network = Aqt_engine.Network
module Packet = Aqt_engine.Packet
module Ratio = Aqt_util.Ratio

type error =
  | Policy_not_historic of string
  | No_shared_edge
  | Stale_edge of { edge : int; last_used : int; threshold : int }
  | Packet_absorbed of int
  | Invalid_path of string

let pp_error fmt = function
  | Policy_not_historic name ->
      Format.fprintf fmt "policy %s is not historic (Def 3.1)" name
  | No_shared_edge ->
      Format.fprintf fmt "packets do not share a common route edge"
  | Stale_edge { edge; last_used; threshold } ->
      Format.fprintf fmt
        "edge %d is not new (Def 3.2): last injected at %d, threshold %d" edge
        last_used threshold
  | Packet_absorbed id -> Format.fprintf fmt "packet #%d already absorbed" id
  | Invalid_path msg -> Format.fprintf fmt "invalid path: %s" msg

let ( let* ) r f = Result.bind r f

let check_new_edges ~rate net suffix =
  (* Def 3.2: new edges must be absent from every route injected at time
     tau >= t* - ceil(1/r). *)
  let t_star = Network.min_injection_time_in_flight net in
  let threshold = t_star - Ratio.ceil (Ratio.inv rate) in
  let rec go i =
    if i >= Array.length suffix then Ok ()
    else begin
      let e = suffix.(i) in
      let last_used = Network.last_injection_on net e in
      if last_used >= threshold then Error (Stale_edge { edge = e; last_used; threshold })
      else go (i + 1)
    end
  in
  go 0

let shared_edge_exists packets =
  match packets with
  | [] -> true
  | (first : Packet.t) :: rest ->
      let remaining (p : Packet.t) =
        Array.to_seq (Array.sub p.route p.hop (Array.length p.route - p.hop))
      in
      let candidate_edges = remaining first in
      Seq.exists
        (fun e ->
          List.for_all
            (fun (p : Packet.t) -> Seq.exists (Int.equal e) (remaining p))
            rest)
        candidate_edges

let extend_all ~rate net ~packets ~suffix =
  if packets = [] || Array.length suffix = 0 then Ok ()
  else begin
    let policy = Network.policy net in
    let* () =
      if policy.historic then Ok () else Error (Policy_not_historic policy.name)
    in
    let* () =
      match List.find_opt Packet.is_absorbed packets with
      | Some p -> Error (Packet_absorbed p.id)
      | None -> Ok ()
    in
    let* () = if shared_edge_exists packets then Ok () else Error No_shared_edge in
    let* () = check_new_edges ~rate net suffix in
    (* Validate every extension before mutating anything. *)
    let graph = Network.graph net in
    let extended (p : Packet.t) = Array.append p.route suffix in
    let* () =
      let rec validate = function
        | [] -> Ok ()
        | p :: rest ->
            let route = extended p in
            if Aqt_graph.Digraph.route_is_simple graph route then validate rest
            else
              Error
                (Invalid_path
                   (Format.asprintf "packet #%d: %a" p.Packet.id
                      (Aqt_graph.Digraph.pp_route graph)
                      route))
      in
      validate packets
    in
    List.iter
      (fun (p : Packet.t) ->
        (* Network.reroute replaces everything beyond the next edge; keep the
           old remainder and append the suffix. *)
        let keep =
          Array.sub p.route (p.hop + 1) (Array.length p.route - p.hop - 1)
        in
        Network.reroute net p (Array.append keep suffix))
      packets;
    Ok ()
  end
