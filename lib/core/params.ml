module Ratio = Aqt_util.Ratio

type t = { eps : Ratio.t; rate : Ratio.t; r : float; n : int; s0 : int }

let log2 x = log x /. log 2.0

let ri ~r i =
  if i < 1 then invalid_arg "Params.ri: i must be >= 1";
  (1.0 -. r) /. (1.0 -. (r ** float_of_int i))

let n_formula ~r ~eps =
  let a = (log2 eps -. 2.0) /. log2 r in
  let b = 1.0 -. (1.0 /. log2 r) in
  max 1 (int_of_float (Float.ceil (Float.max a b)))

let s0_formula ~r ~n =
  let gap = ri ~r n -. ri ~r (n + 1) in
  let a = 2.0 *. float_of_int n in
  let b = float_of_int n /. (2.0 *. gap) in
  int_of_float (Float.ceil (Float.max a b))

let make ?n ?s0 ~eps () =
  if Ratio.(eps <= zero) || Ratio.(eps >= half) then
    invalid_arg "Params.make: eps must be in (0, 1/2)";
  let rate = Ratio.add Ratio.half eps in
  let r = Ratio.to_float rate in
  let n =
    match n with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Params.make: n must be >= 1"
    | None -> n_formula ~r ~eps:(Ratio.to_float eps)
  in
  let s0 =
    match s0 with
    | Some s when s >= 2 * n -> s
    | Some _ -> invalid_arg "Params.make: s0 must be >= 2n"
    | None -> s0_formula ~r ~n
  in
  { eps; rate; r; n; s0 }

let ti ~r ~n ~total_old ~i =
  if i < 1 || i > n then invalid_arg "Params.ti: i out of range";
  int_of_float (float_of_int total_old /. (r +. ri ~r i))

let s' ~r ~n ~total_old =
  int_of_float (float_of_int total_old *. (1.0 -. ri ~r n))

let x_param ~r ~n ~total_old ~s_ingress =
  let raw =
    s' ~r ~n ~total_old
    - int_of_float (r *. float_of_int s_ingress)
    + n
  in
  let cap = int_of_float (r *. float_of_int s_ingress) in
  max 0 (min raw cap)

let growth_per_cycle ~eps ~m =
  let r = 0.5 +. eps in
  r ** 3.0 *. ((1.0 +. eps) ** float_of_int m) /. 4.0

let chain_length ~eps ?(margin = 1.25) () =
  if eps <= 0.0 then invalid_arg "Params.chain_length";
  let rec go m =
    if growth_per_cycle ~eps ~m > margin then m else go (m + 1)
  in
  go 1

let pump_factor ~r ~n = 2.0 *. (1.0 -. ri ~r n)

let cycle_growth_actual ~r ~n ~m =
  (1.0 -. ri ~r n) *. (pump_factor ~r ~n ** float_of_int (m - 1)) *. (r ** 3.0)

let chain_length_actual ~r ~n ?(margin = 1.5) () =
  if pump_factor ~r ~n <= 1.0 then
    invalid_arg "Params.chain_length_actual: pump factor not expansive";
  let rec go m =
    if cycle_growth_actual ~r ~n ~m > margin then m else go (m + 1)
  in
  go 2
