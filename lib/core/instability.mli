(** Theorem 3.17: FIFO is unstable at rate 1/2 + ε.

    The composed adversary iterates cycles on the cyclic chain of M gadgets:

    + {b startup} (Lemma 3.15): seeds at the ingress of F(1) become
      C(S2, F(1)) with S2 >= (S1/2)(1+ε);
    + {b pump} k = 1..M-1 (Lemma 3.6): C(S, F(k)) becomes C(S(1+ε), F(k+1));
    + {b drain} (Lemma 3.13's tail): idle S+n steps, leaving >= S-n >= S/2
      packets queued at the egress of F(M) with one-edge remaining routes;
    + {b stitch} (Lemma 3.16): converts them to r^3-fraction fresh seeds at
      the ingress of F(1).

    Per cycle the seed queue multiplies by at least r^3 (1+ε)^M / 4 > 1 for
    M large enough, so queues grow without bound — instability.

    [run] executes the construction on a real network and reports the seed
    size at the start of every cycle. *)

type config = {
  params : Params.t;
  m : int;  (** Number of daisy-chained gadgets. *)
  f_len : int;  (** f-path length; [n] is the paper's symmetric gadget. *)
  seed : int;  (** Initial packets at the ingress of F(1); > 2 * s0. *)
  cycles : int;  (** Full cycles to run. *)
  max_steps : int;  (** Safety cap on total simulated steps. *)
  log_injections : bool;  (** Keep the injection log for rate validation. *)
}

val config :
  ?n:int ->
  ?s0:int ->
  ?m:int ->
  ?f_len:int ->
  ?seed:int ->
  ?cycles:int ->
  ?max_steps:int ->
  ?log_injections:bool ->
  eps:Aqt_util.Ratio.t ->
  unit ->
  config
(** Defaults: [n], [s0] from {!Params.make}; [m] from
    {!Params.chain_length_actual} (the exact growth model — the theorem's own
    pessimistic M makes cycles enormously longer without changing the
    conclusion); [seed = 2 * s0 + 2]; [cycles = 3];
    [max_steps = 30_000_000]; no injection log. *)

type cycle_stat = {
  cycle : int;
  start_step : int;
  seed : int;  (** Packets queued at the ingress of F(1) when the cycle begins. *)
}

type result = {
  stats : cycle_stat array;  (** [cycles + 1] entries: seed before each cycle
                                 and after the last. *)
  growth : float array;  (** Consecutive seed ratios. *)
  outcome : Aqt_engine.Sim.outcome;
  net : Aqt_engine.Network.t;
  gadget : Gadget.t;
  collapsed : string option;
      (** [Some msg] when a phase's measured preconditions failed and the run
          stopped there — e.g. when the construction is pointed at a policy
          it does not destabilize.  [run] raises instead unless
          [resilient:true]. *)
}

val run :
  ?policy:Aqt_engine.Policy_type.t ->
  ?tie_order:Aqt_engine.Network.tie_order ->
  ?resilient:bool ->
  config ->
  result
(** Runs the construction (FIFO, transit-first ties by default).
    @raise Failure if a phase's measured preconditions fail — which is itself
    an experimental signal — unless [resilient] is set, in which case the
    failure is recorded in [collapsed] and the partial statistics are
    returned. *)

val phases : config -> Gadget.t -> Aqt_adversary.Phased.phase list
(** One cycle's phase list, exposed for tests and partial runs. *)
