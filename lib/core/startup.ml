module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Flow = Aqt_adversary.Flow
module Phased = Aqt_adversary.Phased

type plan = {
  total_seed : int;
  duration : int;
  s_target : int;
  short_flows : Flow.t list;
  stream_counter : Flow.t;
}

let plan ~(params : Params.t) ~gadget ~start ~total_seed =
  let tau = start - 1 in
  let r = params.r and n = params.n and rate = params.rate in
  let s_target = Params.s' ~r ~n ~total_old:total_seed in
  let short_flows =
    List.init n (fun idx ->
        let i = idx + 1 in
        let ti = Params.ti ~r ~n ~total_old:total_seed ~i in
        (* Lemma 3.15 runs the short flow of edge i over [i, t_i]. *)
        Flow.make ~tag:(Printf.sprintf "short%d" i)
          ~route:[| gadget.Gadget.e.(0).(i - 1) |]
          ~rate ~start:(tau + i)
          ~stop:(tau + max i ti)
          ())
  in
  let stream_counter =
    Flow.make ~tag:"stream" ~max_total:(s_target + n)
      ~route:(Gadget.seed_route gadget) ~rate ~start:(tau + 1)
      ~stop:(tau + total_seed) ()
  in
  { total_seed; duration = total_seed + n; s_target; short_flows; stream_counter }

let phase ~params ~gadget : Phased.phase =
 fun net start ->
  let ingress = Gadget.ingress gadget ~k:1 in
  let seeds =
    List.filter
      (fun (p : Aqt_engine.Packet.t) -> Aqt_engine.Packet.remaining p = 1)
      (Network.buffer_packets net ingress)
  in
  let total_seed = List.length seeds in
  if total_seed < 2 * params.Params.n then
    failwith
      (Printf.sprintf
         "Startup.phase: only %d seed packets at the ingress (need >= 2n = %d)"
         total_seed (2 * params.Params.n));
  (match
     Reroute.extend_all ~rate:params.Params.rate net ~packets:seeds
       ~suffix:(Gadget.startup_extension gadget)
   with
  | Ok () -> ()
  | Error e ->
      failwith
        (Format.asprintf "Startup.phase: rerouting rejected: %a"
           Reroute.pp_error e));
  let p = plan ~params ~gadget ~start ~total_seed in
  let n = params.Params.n in
  let short_route = Gadget.seed_route gadget in
  let long_route = Gadget.startup_long_route gadget in
  let injections _ t =
    let stream =
      let before = Flow.cumulative p.stream_counter (t - 1) in
      let count = Flow.count_at p.stream_counter t in
      List.init count (fun j : Network.injection ->
          if before + j < n then { route = short_route; tag = "pad" }
          else { route = long_route; tag = "stream" })
    in
    stream @ Flow.injections_at p.short_flows t
  in
  (Sim.injections_only injections, p.duration)
