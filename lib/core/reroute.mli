(** The rerouting technique of Lemma 3.3.

    A deterministic {e historic} policy (Def 3.1) schedules independently of
    route suffixes, so an adversary may rewrite the routes of a set of packets
    beyond their next edges — provided the packets' current routes share at
    least one common edge and the edges added are {e new} (Def 3.2: unused by
    any injection since [t* - ceil(1/r)], where [t*] is the earliest injection
    time among packets currently in the network).  The rewritten execution is
    that of an ordinary rate-r adversary (the lemma), which experiment E5
    verifies by feeding final effective routes to the exact rate checker.

    [extend_all] implements the form every Section 3 adversary uses: append a
    common suffix of new edges after each packet's current final edge.  The
    preconditions are checked, not assumed. *)

type error =
  | Policy_not_historic of string
  | No_shared_edge
  | Stale_edge of { edge : int; last_used : int; threshold : int }
      (** A suffix edge was used by an injection at or after the Def 3.2
          threshold [t* - ceil(1/r)]. *)
  | Packet_absorbed of int
  | Invalid_path of string

val pp_error : Format.formatter -> error -> unit

val check_new_edges :
  rate:Aqt_util.Ratio.t ->
  Aqt_engine.Network.t ->
  int array ->
  (unit, error) result
(** Checks Def 3.2 for every edge in the array against the current network
    state. *)

val extend_all :
  rate:Aqt_util.Ratio.t ->
  Aqt_engine.Network.t ->
  packets:Aqt_engine.Packet.t list ->
  suffix:int array ->
  (unit, error) result
(** Appends [suffix] to the route of every packet in the list, after checking
    the Lemma 3.3 preconditions.  On [Error] no packet is modified.  An empty
    suffix or empty packet list is a no-op. *)
