(** Stability under low injection rates (Section 4).

    Theorem 4.1: with a (w,r) adversary at [r <= 1/(d+1)] — [d] the longest
    route length — and any greedy schedule, no packet stays in one buffer
    longer than [floor (w * r)] steps.  Theorem 4.3 relaxes the condition to
    [r <= 1/d] for {e time-priority} protocols (Def 4.2; FIFO and LIS).
    Observation 4.4 converts an S-initial-configuration run into an
    empty-start run of a [(w°, r°)] adversary, giving Corollaries 4.5/4.6 for
    arbitrary initial configurations.

    Because dwell bounds every buffer's drain time, they also bound buffer
    sizes — by the in-degree argument, at most [(alpha + 1) * floor (w * r)]
    packets ever share a buffer (each arrival window admits one packet per
    incoming edge per step plus injections); the experiments check the dwell
    bound directly, which is the paper's stated invariant. *)

val floor_wr : w:int -> rate:Aqt_util.Ratio.t -> int

val greedy_applicable : rate:Aqt_util.Ratio.t -> d:int -> bool
(** [r <= 1/(d+1)] (Theorem 4.1's hypothesis). *)

val time_priority_applicable : rate:Aqt_util.Ratio.t -> d:int -> bool
(** [r <= 1/d] (Theorem 4.3's hypothesis). *)

val dwell_bound :
  rate:Aqt_util.Ratio.t ->
  w:int ->
  d:int ->
  time_priority:bool ->
  int option
(** The theorem bound [floor (w * r)] when the applicable hypothesis holds,
    [None] otherwise. *)

val converted_window :
  s:int -> w:int -> rate:Aqt_util.Ratio.t -> r_star:Aqt_util.Ratio.t -> int
(** Observation 4.4: [w° = ceil ((s + w + 1) / (r° - r))].
    @raise Invalid_argument unless [r < r°]. *)

val corollary_bound :
  s:int -> w:int -> rate:Aqt_util.Ratio.t -> d:int -> time_priority:bool ->
  int option
(** Corollaries 4.5/4.6: the dwell bound for an S-initial-configuration,
    [floor (w° * r°)] with [r° = 1/(d+1)] (or [1/d]); [None] when
    [r >= r°]. *)

val d_of_routes : int array list -> int
(** Longest route length in a workload. *)

val delivery_bound :
  rate:Aqt_util.Ratio.t -> w:int -> d:int -> time_priority:bool -> int option
(** End-to-end consequence of the dwell bound: a packet leaves its i-th
    buffer within [i * floor(w r)] steps of injection, so every packet is
    delivered within [d * floor(w r)] steps.  [None] when the theorem does
    not apply. *)

val buffer_bound :
  rate:Aqt_util.Ratio.t -> w:int -> d:int -> time_priority:bool -> int option
(** The paper's remark that buffers stay bounded {e independently of network
    parameters}: every packet in the buffer of [e] at time [t] requires [e]
    and — by the dwell bound — was injected within the last
    [(d+1) * floor(w r)] steps, so the buffer never exceeds
    [(floor((d+1) * floor(w r) / w) + 1) * floor(w r)] packets.  [None] when
    the corresponding theorem does not apply. *)

val converted_driver :
  initial:int array array ->
  driver:Aqt_engine.Sim.driver ->
  Aqt_engine.Sim.driver
(** Observation 4.4, executably: the empty-start adversary that injects the
    initial configuration at step 1 and thereafter replays the original
    adversary delayed by one step.  Running it on an empty network yields the
    same packet population as the original S-initial-configuration run, one
    step later; its injection log satisfies the (w°, r°) constraint for any
    r° > r and w° = ceil((S + w + 1) / (r° - r)). *)

type verdict = {
  bound : int;
  max_dwell_seen : int;  (** Completed dwells over the run. *)
  max_pending : int;  (** Unfinished dwells at the end of the run. *)
  ok : bool;  (** Both observed quantities within the bound. *)
}

val verify_run :
  ?s_initial:int ->
  w:int ->
  rate:Aqt_util.Ratio.t ->
  d:int ->
  Aqt_engine.Network.t ->
  verdict option
(** Compares a finished run's dwell statistics to the theorem bound for the
    network's policy ([time_priority] read from the policy).  [None] when no
    theorem applies at this rate.  [s_initial > 0] selects the corollary
    bound. *)
