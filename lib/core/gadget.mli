(** The gadget graphs of Section 3 (Figures 3.1 and 3.2).

    A gadget [F_n] has an ingress edge [a], an egress edge [a'], and two
    parallel directed paths of length [n] between them: [e_1..e_n] and
    [f_1..f_n].  Gadgets compose by daisy-chaining — identifying the egress of
    one with the ingress of the next — giving [F_n^M]; the cyclic graph of
    Theorem 3.17 adds a stitching edge [e0] from the head of the last egress
    back to the tail of the first ingress.

    Gadget indices [k] are 1-based ([1..m_gadgets]); within a gadget, path
    edges are 1-based ([1..n]).  [a.(k)] for [k = 0..m_gadgets] are the shared
    ingress/egress edges: gadget [k] has ingress [a.(k-1)] and egress
    [a.(k)]. *)

type t = private {
  graph : Aqt_graph.Digraph.t;
  n : int;
  f_len : int;  (** Length of the f-path; [n] in the paper's symmetric gadget. *)
  m_gadgets : int;
  a : int array;  (** [m_gadgets + 1] shared edges. *)
  e : int array array;  (** [e.(k-1).(i-1)] = edge [e_i] of gadget [k]. *)
  f : int array array;
  e0 : int option;  (** The stitching edge, in cyclic graphs only. *)
}

val fn : n:int -> t
(** A single gadget (Figure 3.1 shows [fn ~n] composed twice). *)

val chain : ?f_len:int -> n:int -> m:int -> unit -> t
(** The daisy chain [F_n^M] with [m >= 1] gadgets.  [f_len] (default [n],
    the paper's symmetric gadget) sets the f-path length, [1 <= f_len <= n]:
    the §5 remark that the chaining technique applies to other gadgets is
    realized here by the asymmetric variant [F_(n,l)] — the f-path only
    carries the part-(3)/(4) long flows and delays them, so shortening it
    preserves the pump analysis (with [l] replacing [n] in the part-(4)
    timing and the drain) while shrinking the graph and the longest route. *)

val cyclic : ?f_len:int -> n:int -> m:int -> unit -> t
(** The graph of Theorem 3.17 / Figure 3.2: [chain] plus the edge [e0]. *)

(** {1 Edge handles} *)

val ingress : t -> k:int -> int
(** Ingress edge of gadget [k] (= [a.(k-1)]). *)

val egress : t -> k:int -> int
(** Egress edge of gadget [k] (= [a.(k)]). *)

val stitch_edge : t -> int
(** @raise Invalid_argument on non-cyclic graphs. *)

(** {1 Route builders}

    All routes below are valid simple paths of the underlying graph; they are
    the routes the Section 3 adversaries inject or create by rerouting. *)

val seed_route : t -> int array
(** [[a_0]] — the single-edge route of initial/fresh packets. *)

val e_remaining : t -> k:int -> i:int -> int array
(** [e_i, e_(i+1), .., e_n, a_k] — the remaining route required of packets in
    the buffer of [e_i] by the invariant C(S, F(k)) (Def 3.5(2)). *)

val ingress_remaining : t -> k:int -> int array
(** [a_(k-1), f_1, .., f_n, a_k] — the remaining route required of packets in
    the ingress buffer by C(S, F(k)) (Def 3.5(3)). *)

val extension_suffix : t -> k:int -> int array
(** [e'_1, .., e'_n, a''] of gadget [k+1] — the suffix appended to all
    packets of gadget [k] in part (1) of the pump adversary.
    @raise Invalid_argument if [k = m_gadgets] (no next gadget). *)

val startup_extension : t -> int array
(** [e_1, .., e_n, a_1] of gadget 1 — the suffix appended to seed packets in
    part (1) of the startup adversary (Lemma 3.15). *)

val pump_long_route : t -> k:int -> int array
(** [a_(k-1), f_1..f_n, a_k, f'_1..f'_n, a_(k+1)] — part (3) of the pump. *)

val pump_tail_route : t -> k:int -> int array
(** [a_k, f'_1..f'_n, a_(k+1)] — part (4) of the pump. *)

val startup_long_route : t -> int array
(** [a_0, f_1..f_n, a_1] — part (3) of the startup adversary. *)

val stitch_route : t -> int array
(** [a_M, e0, a_0] — the three-edge relay of Lemma 3.16.
    @raise Invalid_argument on non-cyclic graphs. *)

val gadget_edges : t -> k:int -> int list
(** Every edge of gadget [k]: ingress, both paths, egress.  (Shared edges
    belong to two gadgets, as in the paper.) *)

val describe : t -> string
(** One-line structural summary (for experiment output). *)
