module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Phased = Aqt_adversary.Phased
module Dyn = Aqt_util.Dynarray_compat

type config = {
  params : Params.t;
  m : int;
  f_len : int;
  seed : int;
  cycles : int;
  max_steps : int;
  log_injections : bool;
}

let config ?n ?s0 ?m ?f_len ?seed ?cycles:(cycles_ = 3)
    ?(max_steps = 30_000_000) ?(log_injections = false) ~eps () =
  let params = Params.make ?n ?s0 ~eps () in
  let m =
    match m with
    | Some m when m >= 2 -> m
    | Some _ -> invalid_arg "Instability.config: need at least 2 gadgets"
    | None -> Params.chain_length_actual ~r:params.r ~n:params.n ()
  in
  let seed =
    match seed with
    | Some s when s > 2 * params.s0 -> s
    | Some _ -> invalid_arg "Instability.config: seed must exceed 2*s0"
    | None -> (2 * params.s0) + 2
  in
  let f_len =
    match f_len with
    | Some l when l >= 1 && l <= params.n -> l
    | Some _ -> invalid_arg "Instability.config: f_len must be in [1, n]"
    | None -> params.n
  in
  { params; m; f_len; seed; cycles = cycles_; max_steps; log_injections }

type cycle_stat = { cycle : int; start_step : int; seed : int }

type result = {
  stats : cycle_stat array;
  growth : float array;
  outcome : Sim.outcome;
  net : Network.t;
  gadget : Gadget.t;
  collapsed : string option;
}

(* The drain tail of Lemma 3.13: after C(S, F(M)) is established, S + f_len
   idle steps leave at least S - f_len packets queued at the egress of F(M) —
   the ingress packets take f_len hops to arrive, everything else is already
   pipelined. *)
let drain_phase ~(gadget : Gadget.t) : Phased.phase =
 fun net _start ->
  let s_ingress =
    Network.buffer_len net (Gadget.ingress gadget ~k:gadget.Gadget.m_gadgets)
  in
  let duration = max 1 (s_ingress + gadget.Gadget.f_len) in
  (Sim.null_driver, duration)

let phases cfg gadget =
  let params = cfg.params in
  let pumps =
    List.init (cfg.m - 1) (fun idx : Phased.phase ->
        fun net start -> Pump.phase ~params ~gadget ~k:(idx + 1) net start)
  in
  let stitch : Phased.phase =
   fun net start -> Stitch.phase ~rate:params.rate ~gadget net start
  in
  (Startup.phase ~params ~gadget :: pumps)
  @ [ drain_phase ~gadget; stitch ]

let run ?(policy = Aqt_policy.Policies.fifo) ?tie_order ?(resilient = false)
    cfg =
  let gadget = Gadget.cyclic ~f_len:cfg.f_len ~n:cfg.params.n ~m:cfg.m () in
  let net =
    Network.create ~log_injections:cfg.log_injections ?tie_order
      ~graph:gadget.graph ~policy ()
  in
  let seed_route = Gadget.seed_route gadget in
  for _ = 1 to cfg.seed do
    ignore (Network.place_initial ~tag:"seed" net seed_route)
  done;
  let stats = Dyn.create () in
  let on_cycle k t =
    Dyn.push stats
      {
        cycle = k;
        start_step = t;
        seed = Network.buffer_len net (Gadget.ingress gadget ~k:1);
      }
  in
  let driver = Phased.cycle ~on_cycle (phases cfg gadget) in
  let stop_when _ =
    if Dyn.length stats > cfg.cycles then Some "cycles-complete" else None
  in
  let outcome, collapsed =
    match Sim.run ~stop_when ~net ~driver ~horizon:cfg.max_steps () with
    | outcome -> (outcome, None)
    | exception (Failure msg | Invalid_argument msg) when resilient ->
        ( {
            Sim.stop = Sim.Stopped "phase-collapse";
            steps_run = Network.now net;
            final_in_flight = Network.in_flight net;
            max_queue = Network.max_queue_ever net;
            max_dwell = Network.max_dwell net;
            dropped = Network.dropped net;
          },
          Some msg )
  in
  let stats = Dyn.to_array stats in
  let growth =
    Array.init
      (max 0 (Array.length stats - 1))
      (fun i ->
        float_of_int stats.(i + 1).seed /. float_of_int (max 1 stats.(i).seed))
  in
  { stats; growth; outcome; net; gadget; collapsed }
