module Ratio = Aqt_util.Ratio
module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim

type threshold = { source : string; year : int; rate : float; note : string }

let fifo_instability_thresholds =
  [
    {
      source = "Andrews et al. [4]";
      year = 2001;
      rate = 0.85;
      note = "first FIFO instability bound";
    };
    {
      source = "Diaz et al. [11]";
      year = 2001;
      rate = 0.8357;
      note = "improved construction";
    };
    {
      source = "Koukopoulos et al. [15]";
      year = 2001;
      rate = 0.749;
      note = "heterogeneous-network techniques";
    };
    {
      source = "this paper (Thm 3.17)";
      year = 2002;
      rate = 0.5;
      note = "unstable at 1/2 + eps for every eps > 0";
    };
    {
      source = "Bhattacharjee-Goel [8]";
      year = 2003;
      rate = 0.0;
      note = "subsequent work: unstable at arbitrarily low rates";
    };
  ]

let diaz_stability_bound ~d ~m ~alpha =
  if d < 1 || m < 1 || alpha < 1 then invalid_arg "Baselines.diaz_stability_bound";
  Ratio.make 1 (2 * d * m * alpha)

let this_paper_bound ~d =
  if d < 1 then invalid_arg "Baselines.this_paper_bound";
  Ratio.make 1 d

type replay_result = {
  policy : string;
  max_queue : int;
  backlog : int;
  absorbed : int;
  max_dwell : int;
}

let replay_against ?(initial = [||]) ~graph ~rate ~log ~policies ~settle () =
  let last_injection =
    Array.fold_left (fun acc (t, _) -> max acc t) 0 log
  in
  List.map
    (fun policy ->
      let net = Network.create ~graph ~policy () in
      Array.iter
        (fun route -> ignore (Network.place_initial ~tag:"seed" net route))
        initial;
      let adversary = Aqt_adversary.Stock.replay ~rate log in
      let horizon = last_injection + settle in
      let _ =
        Sim.run ~net ~driver:adversary.Aqt_adversary.Stock.driver ~horizon ()
      in
      {
        policy = policy.Aqt_engine.Policy_type.name;
        max_queue = Network.max_queue_ever net;
        backlog = Network.in_flight net;
        absorbed = Network.absorbed net;
        max_dwell = Network.max_dwell net;
      })
    policies
