type profile = {
  r : float;
  n : int;
  total_old : int;
  ri : float array;
  ti : float array;
  peak_time : float array;
  peak_queue : float array;
  final_old : float array;
  s' : float;
  crossed_egress : float;
  duration : int;
}

let pump_profile ~r ~n ~total_old =
  if n < 1 then invalid_arg "Fluid.pump_profile: n must be >= 1";
  if total_old < 1 then invalid_arg "Fluid.pump_profile: empty queue";
  let two_s = float_of_int total_old in
  let ri = Array.init (n + 1) (fun idx -> Params.ri ~r (idx + 1)) in
  let ti = Array.init n (fun idx -> two_s /. (r +. ri.(idx))) in
  let peak_time = Array.init n (fun idx -> float_of_int (idx + 1) +. ti.(idx)) in
  let peak_queue =
    Array.init n (fun idx -> (ri.(idx) +. r -. 1.0) *. ti.(idx))
  in
  let final_old = Array.init n (fun idx -> (two_s -. ti.(idx)) *. ri.(idx)) in
  {
    r;
    n;
    total_old;
    ri;
    ti;
    peak_time;
    peak_queue;
    final_old;
    s' = two_s *. (1.0 -. ri.(n - 1));
    crossed_egress = two_s *. ri.(n - 1);
    duration = total_old + n;
  }

let check_i p i =
  if i < 1 || i > p.n then invalid_arg "Fluid: edge index out of range"

let queue_at p ~i ~t =
  check_i p i;
  let fi = float_of_int i in
  let two_s = float_of_int p.total_old in
  let ri = p.ri.(i - 1) and ti = p.ti.(i - 1) in
  if t <= fi then 0.0
  else if t <= fi +. ti then (ri +. p.r -. 1.0) *. (t -. fi)
  else if t <= two_s +. fi then
    ((ri +. p.r -. 1.0) *. ti) -. ((1.0 -. ri) *. (t -. fi -. ti))
  else begin
    (* Arrivals over: the leftover old queue drains at rate 1. *)
    let at_end = (two_s -. ti) *. ri in
    Float.max 0.0 (at_end -. (t -. two_s -. fi))
  end

let arrivals_at p ~i ~t =
  check_i p i;
  let fi = float_of_int i in
  let two_s = float_of_int p.total_old in
  let ri = p.ri.(i - 1) in
  if t <= fi then 0.0
  else Float.min (two_s *. ri) (ri *. (t -. fi))
