(** The gadget invariant C(S, F_n) of Definition 3.5.

    C(S, F(k)) holds when: (1) the buffers of the e-path hold S packets in
    total; (2) every e-buffer is nonempty and its packets' remaining routes
    are exactly [e_i, .., e_n, a_k]; (3) the ingress buffer holds S packets
    with remaining route [a_(k-1), f_1, .., f_n, a_k]; (4) the gadget holds
    nothing else.

    [measure] reports the state of each clause; [check_strict] demands all of
    them exactly.  The adversaries in this reproduction are exact-integer
    realizations of fluid-limit schedules, so after a pump phase the invariant
    holds up to small additive slack — experiments use [measure] with a
    tolerance, while unit tests exercise [check_strict] on hand-built
    states. *)

type measurement = {
  s_epath : int;  (** Total packets in the e-path buffers. *)
  s_ingress : int;  (** Packets in the ingress buffer. *)
  empty_e_buffers : int;  (** e-buffers that are empty (clause 2 wants 0). *)
  bad_e_routes : int;  (** e-path packets with unexpected remaining routes. *)
  bad_ingress_routes : int;
  extraneous : int;  (** Packets in the gadget's f-path buffers. *)
  egress_occupancy : int;
      (** Packets in the egress buffer — in a chain this buffer belongs to
          the next gadget's invariant, so it is reported separately. *)
}

val measure : Aqt_engine.Network.t -> Gadget.t -> k:int -> measurement

val check_strict :
  Aqt_engine.Network.t -> Gadget.t -> k:int -> (int, string) result
(** Returns [Ok s] iff C(s, F(k)) holds exactly. *)

val holds_with_slack :
  slack:int -> Aqt_engine.Network.t -> Gadget.t -> k:int -> bool
(** C(S, F(k)) up to integrality: no empty e-buffer, at most [slack] packets
    with unexpected routes or in the f-path, and
    [|s_epath - s_ingress| <= slack] with both positive.  (The egress buffer
    is not constrained; it belongs to the next gadget.) *)

val gadget_occupancy : Aqt_engine.Network.t -> Gadget.t -> k:int -> int
(** Total packets in all buffers of gadget [k]. *)
