(** Fault-injection points for the campaign harness.

    The harness calls {!hit} at the I/O and execution boundaries that can
    fail in production — cache publication, journal appends, task bodies.
    By default a hit is free (one atomic load); a test installs a hook with
    {!install} to make chosen points raise {!Injected} (simulating a crash
    mid-write), sleep (simulating a hang that overruns a timeout budget),
    or anything else.  [Aqt_check.Faults] builds the standard fail-once /
    fail-always / delay policies on top of this primitive.

    Hooks run on whichever domain reaches the fault point, so an installed
    hook must be domain-safe (use [Atomic] counters for fail-N-times
    policies).  Production code never installs a hook; the cost of a
    disabled point is a single atomic read. *)

type point =
  | Cache_write
      (** Inside [Cache.store], after the payload is written to the temp
          file but before the atomic rename publishes it.  Raising here
          simulates a writer crashing mid-store: the entry must never
          become visible and the temp file must not corrupt the cache. *)
  | Journal_append
      (** Inside [Journal.write], before the line is emitted.  Raising
          simulates a full disk / closed descriptor; the writer degrades
          to a no-op rather than failing the campaign (see
          {!Journal.degraded}). *)
  | Task_run
      (** Inside [Scheduler.run_one], at the start of every task attempt,
          before the experiment body.  Raising simulates a crashing
          experiment (retry path); sleeping simulates a hung experiment
          (timeout path). *)

exception Injected of string
(** The canonical exception raised by fault hooks.  Harness code that
    degrades gracefully on real I/O errors ([Sys_error]) treats [Injected]
    the same way, so tests exercise exactly the production error paths. *)

val pp_point : Format.formatter -> point -> unit

val install : (point -> unit) -> unit
(** [install hook] makes every subsequent {!hit} call [hook].  The hook may
    raise to fail the point or sleep to delay it.  Replaces any previous
    hook. *)

val clear : unit -> unit
(** Remove the hook; all points become free again. *)

val hit : point -> unit
(** Called by the harness at each fault point.  No-op unless a hook is
    installed. *)
