module Jsonx = Aqt_util.Jsonx
type t = { dir : string }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir

type cached = {
  key : string;
  name : string;
  saved_at : float;
  duration : float;
  result : Registry.result;
}

let key ?salt (e : Registry.entry) = Spec.hash ?salt ~name:e.name e.spec
let path t key = Filename.concat t.dir (key ^ ".json")

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let cached_of_json j =
  {
    key = Jsonx.to_str (Jsonx.get "key" j);
    name = Jsonx.to_str (Jsonx.get "name" j);
    saved_at = Jsonx.to_float (Jsonx.get "saved_at" j);
    duration = Jsonx.to_float (Jsonx.get "duration" j);
    result = Registry.result_of_json (Jsonx.get "result" j);
  }

let lookup t ~key =
  let file = path t key in
  if not (Sys.file_exists file) then None
  else
    match cached_of_json (Jsonx.of_string (read_file file)) with
    | c when c.key = key -> Some c
    | _ -> None
    | exception (Failure _ | Sys_error _) -> None

let store t ~key ~name ~spec ~duration result =
  let json =
    Jsonx.Obj
      [
        ("key", Jsonx.Str key);
        ("name", Jsonx.Str name);
        ("spec", Spec.to_json spec);
        ("saved_at", Jsonx.Float (Unix.gettimeofday ()));
        ("duration", Jsonx.Float duration);
        ("result", Registry.result_to_json result);
      ]
  in
  mkdir_p t.dir;
  (* Unique temp per writer: scheduler domains may store concurrently, and
     separate processes may share one cache dir, so the name must key on
     both the PID and the domain id — domain ids alone collide across
     processes and two writers would clobber each other's file mid-write. *)
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".%s.%d.%d.tmp" key (Unix.getpid ())
         (Domain.self () :> int))
  in
  let publish () =
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Jsonx.to_string json);
        output_char oc '\n';
        Fault.hit Fault.Cache_write);
    let target = path t key in
    (* Atomic publication.  POSIX rename replaces an existing target; on
       Windows it raises instead, so fall back to remove-then-rename —
       losing atomicity only on the platform that never had it. *)
    try Sys.rename tmp target
    with Sys_error _ ->
      (try Sys.remove target with Sys_error _ -> ());
      Sys.rename tmp target
  in
  (* A crash mid-store must never leave the temp file behind: the entry
     simply does not appear and a later lookup is a miss. *)
  try publish ()
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let touch t ~key =
  let file = path t key in
  try Unix.utimes file 0. 0. (* 0. 0. means "now" *)
  with Unix.Unix_error _ -> ()

let cache_files t =
  if not (Sys.file_exists t.dir) then []
  else
    Sys.readdir t.dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.map (Filename.concat t.dir)

let entries t =
  List.filter_map
    (fun file ->
      match cached_of_json (Jsonx.of_string (read_file file)) with
      | c -> Some c
      | exception (Failure _ | Sys_error _) -> None)
    (cache_files t)

let clean t =
  let files = cache_files t in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files;
  List.length files

let trim t ~max_bytes =
  if max_bytes < 0 then invalid_arg "Cache.trim: max_bytes must be >= 0";
  let info =
    List.filter_map
      (fun f ->
        match Unix.stat f with
        | st -> Some (f, st.Unix.st_size, st.Unix.st_mtime)
        | exception Unix.Unix_error _ -> None)
      (cache_files t)
  in
  (* Oldest first by mtime: the mtime of a published entry is its store
     time (rename preserves the temp file's), so this evicts in saved_at
     order without parsing every payload. *)
  let info =
    List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) info
  in
  let total =
    ref (List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 info)
  in
  let removed = ref 0 in
  List.iter
    (fun (f, sz, _) ->
      if !total > max_bytes then
        try
          Sys.remove f;
          total := !total - sz;
          incr removed
        with Sys_error _ -> ())
    info;
  !removed
