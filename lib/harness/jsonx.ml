(* Jsonx moved to Aqt_util (the serve layer and future tooling need it
   without pulling in the whole harness); this forwarding module keeps
   [Aqt_harness.Jsonx] working for existing users, with full type
   equality to [Aqt_util.Jsonx]. *)
include Aqt_util.Jsonx
