(** Fan experiments across domains with caching, retry, and degradation.

    Cache hits are resolved inline (no domain, no simulation); the
    remaining tasks run via [Aqt_util.Parallel.map].  A task that raises
    is retried up to [retries] extra times and then reported as [Failed]
    — one crashing experiment never aborts the campaign.  The retry scope
    covers the cache publication too: a [Cache.store] that fails mid-write
    (disk full, crash) re-runs the task instead of killing the campaign,
    and the cache's temp-file protocol guarantees nothing torn was
    published.  Timeouts are
    wall-clock and *cooperative*: a domain cannot be killed mid-OCaml
    code, so a task that overruns its budget is allowed to finish but is
    reported as [Timed_out] and its result is not cached (a later run,
    e.g. with a larger budget, will re-execute it).

    Known limitation: because the overrun check runs only {e after} the
    task returns, a genuinely hung experiment (infinite loop, deadlock)
    is never interrupted — the campaign waits for it.  When an overrun
    {e is} detected, the journal records a distinct post-hoc
    [Journal.Task_timeout] event with the configured budget and the real
    duration, so tooling can tell "ran 30s against a 10s budget" from
    "was stopped at 10s" (the latter never happens).  The fault-injection
    suite ([Aqt_check.Faults]) covers both the within-budget and the
    overrun path. *)

type task_result = {
  name : string;
  outcome : Journal.outcome;
  duration : float;  (** Seconds; for cache hits, the original run's. *)
  attempts : int;  (** 0 for cache hits. *)
  result : Registry.result option;  (** [None] iff failed or timed out. *)
}

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?salt:string ->
  ?force:bool ->
  ?fail:string list ->
  ?on_done:(int -> unit) ->
  cache:Cache.t ->
  journal:Journal.writer ->
  Registry.entry list ->
  task_result list
(** Results are returned in the order of the input entries.

    [jobs] is the number of worker domains (default [Parallel.map]'s);
    [timeout] the per-task wall-clock budget in seconds (default none);
    [retries] the extra attempts after a raise (default 1); [salt] the
    cache salt (see {!Spec.hash}); [force] skips cache lookups (results
    are still stored); [fail] names scenarios forced to raise, which
    exercises the degradation path end-to-end (used by
    [campaign run --fail] and the test suite); [on_done] is a progress
    callback invoked with the completed count (1-based) after each
    non-cached task, possibly from a worker domain. *)
