(** Fan experiments across domains with caching, retry, and degradation.

    Cache hits are resolved inline (no domain, no simulation); the
    remaining tasks run via [Aqt_util.Parallel.map].  A task that raises
    is retried up to [retries] extra times and then reported as [Failed]
    — one crashing experiment never aborts the campaign.  Timeouts are
    wall-clock and *cooperative*: a domain cannot be killed mid-OCaml
    code, so a task that overruns its budget is allowed to finish but is
    reported as [Timed_out] and its result is not cached (a later run,
    e.g. with a larger budget, will re-execute it). *)

type task_result = {
  name : string;
  outcome : Journal.outcome;
  duration : float;  (** Seconds; for cache hits, the original run's. *)
  attempts : int;  (** 0 for cache hits. *)
  result : Registry.result option;  (** [None] iff failed or timed out. *)
}

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?salt:string ->
  ?force:bool ->
  ?fail:string list ->
  ?on_done:(int -> unit) ->
  cache:Cache.t ->
  journal:Journal.writer ->
  Registry.entry list ->
  task_result list
(** Results are returned in the order of the input entries.

    [jobs] is the number of worker domains (default [Parallel.map]'s);
    [timeout] the per-task wall-clock budget in seconds (default none);
    [retries] the extra attempts after a raise (default 1); [salt] the
    cache salt (see {!Spec.hash}); [force] skips cache lookups (results
    are still stored); [fail] names scenarios forced to raise, which
    exercises the degradation path end-to-end (used by
    [campaign run --fail] and the test suite); [on_done] is a progress
    callback invoked with the completed count (1-based) after each
    non-cached task, possibly from a worker domain. *)
