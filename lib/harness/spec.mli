(** Deterministic scenario specifications.

    A spec is the complete parameter record of an experiment: every input
    that can change its output (rates, seed sizes, horizons, policy lists)
    plus a version counter bumped when the experiment code itself changes.
    Specs have a canonical encoding that is independent of field order, and
    a content hash over [name + salt + canonical spec] that keys the result
    cache: same hash, same experiment, reusable result. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Ratio of int * int  (** kept exact, not collapsed to float *)
  | Str of string
  | List of value list

type t = (string * value) list

val canonical : t -> string
(** Stable text encoding: fields sorted by key, values length-prefixed so
    no two distinct specs share an encoding.
    @raise Invalid_argument on duplicate keys. *)

val hash : ?salt:string -> name:string -> t -> string
(** Hex digest of the scenario identity ([salt] defaults to [""]).  This is
    the cache key: any change to the name, the salt, or any field value
    produces a different key. *)

val to_json : t -> Aqt_util.Jsonx.t
(** For embedding in cache files / journal events (informational; the
    canonical encoding, not this JSON, is what gets hashed). *)
