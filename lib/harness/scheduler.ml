type task_result = {
  name : string;
  outcome : Journal.outcome;
  duration : float;
  attempts : int;
  result : Registry.result option;
}

let now () = Unix.gettimeofday ()

let finish_event ?gc journal name outcome duration
    (result : Registry.result option) =
  let max_queue =
    match result with
    | None -> None
    | Some r -> List.assoc_opt "max_queue" r.metrics
  in
  let trajectory =
    match result with None -> [] | Some r -> r.trajectory
  in
  let gc_minor_words, gc_major_words =
    match gc with None -> (None, None) | Some (mi, ma) -> (Some mi, Some ma)
  in
  Journal.write journal
    (Journal.Task_finish
       {
         name;
         at = now ();
         outcome;
         duration;
         max_queue;
         gc_minor_words;
         gc_major_words;
         trajectory;
       })

let run_one ?timeout ~retries ~salt ~fail ~cache ~journal
    (entry : Registry.entry) =
  let name = entry.name in
  let key = Cache.key ?salt entry in
  let forced_failure () =
    if List.mem name fail then
      failwith (Printf.sprintf "forced failure of %s (--fail)" name)
  in
  let rec attempt k =
    Journal.write journal
      (Journal.Task_start { name; at = now (); attempt = k });
    let t0 = now () in
    (* Precise allocation counter; quick_stat's copy only refreshes at GC
       events, but major_words has no precise accessor, so the major figure
       is approximate on tasks that never trigger a collection. *)
    let minor0 = Gc.minor_words () in
    let major0 = (Gc.quick_stat ()).Gc.major_words in
    (* The whole attempt — run body *and* cache publication — sits inside
       the exception scrutinee: a store that crashes mid-write must take
       the retry path exactly like a crashing experiment, never abort the
       campaign.  (The cache itself guarantees a crashed store publishes
       nothing; see Cache.store.) *)
    match
      forced_failure ();
      Fault.hit Fault.Task_run;
      let result = entry.run () in
      let duration = now () -. t0 in
      let gc =
        ( Gc.minor_words () -. minor0,
          (Gc.quick_stat ()).Gc.major_words -. major0 )
      in
      let overrun =
        match timeout with Some t when duration > t -> Some t | _ -> None
      in
      match overrun with
      | Some limit ->
          (* Timeouts are cooperative: the overrun is only detectable
             after the task returns, so journal a distinct post-hoc
             marker carrying the budget and the real duration — the
             Task_finish timestamp is when detection happened, not when
             the budget expired. *)
          Journal.write journal
            (Journal.Task_timeout { name; at = now (); limit; duration });
          `Timed_out duration
      | None ->
          Cache.store cache ~key ~name ~spec:entry.spec ~duration result;
          `Done (duration, gc, result)
    with
    | `Timed_out duration ->
        finish_event journal name Journal.Timed_out duration None;
        {
          name;
          outcome = Journal.Timed_out;
          duration;
          attempts = k;
          result = None;
        }
    | `Done (duration, gc, result) ->
        finish_event ~gc journal name Journal.Done duration (Some result);
        {
          name;
          outcome = Journal.Done;
          duration;
          attempts = k;
          result = Some result;
        }
    | exception e ->
        let duration = now () -. t0 in
        let error = Printexc.to_string e in
        if k <= retries then begin
          Journal.write journal
            (Journal.Task_retry { name; attempt = k; error });
          attempt (k + 1)
        end
        else begin
          finish_event journal name (Journal.Failed error) duration None;
          {
            name;
            outcome = Journal.Failed error;
            duration;
            attempts = k;
            result = None;
          }
        end
  in
  attempt 1

let run ?jobs ?timeout ?(retries = 1) ?salt ?(force = false) ?(fail = [])
    ?on_done ~cache ~journal entries =
  (* Resolve cache hits inline first: they cost a file read, not a domain. *)
  let resolved =
    List.map
      (fun (entry : Registry.entry) ->
        let hit =
          if force || List.mem entry.name fail then None
          else Cache.lookup cache ~key:(Cache.key ?salt entry)
        in
        match hit with
        | Some c ->
            finish_event journal entry.name Journal.Cached c.duration
              (Some c.result);
            ( entry,
              Some
                {
                  name = entry.name;
                  outcome = Journal.Cached;
                  duration = c.duration;
                  attempts = 0;
                  result = Some c.result;
                } )
        | None -> (entry, None))
      entries
  in
  let to_run =
    List.filter_map
      (function entry, None -> Some entry | _, Some _ -> None)
      resolved
  in
  let ran =
    Aqt_util.Parallel.map ?workers:jobs ?on_done
      (run_one ?timeout ~retries ~salt ~fail ~cache ~journal)
      to_run
  in
  let by_name = Hashtbl.create 17 in
  List.iter (fun (r : task_result) -> Hashtbl.replace by_name r.name r) ran;
  List.map
    (fun ((entry : Registry.entry), hit) ->
      match hit with
      | Some r -> r
      | None -> Hashtbl.find by_name entry.name)
    resolved
