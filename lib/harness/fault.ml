type point = Cache_write | Journal_append | Task_run

exception Injected of string

let pp_point fmt = function
  | Cache_write -> Format.pp_print_string fmt "cache-write"
  | Journal_append -> Format.pp_print_string fmt "journal-append"
  | Task_run -> Format.pp_print_string fmt "task-run"

(* A single atomic holding the hook: scheduler domains read it concurrently
   with the (test-side) install/clear writes. *)
let hook : (point -> unit) option Atomic.t = Atomic.make None

let install f = Atomic.set hook (Some f)
let clear () = Atomic.set hook None

let hit p = match Atomic.get hook with None -> () | Some f -> f p
