module Tbl = Aqt_util.Tbl

(* Bump when simulator semantics change in a way that invalidates every
   cached experiment result (the per-experiment "version" spec field covers
   single-experiment changes). *)
let code_salt = "aqt-campaign-1"

type options = {
  dir : string;
  only : string list;
  force : bool;
  jobs : int option;
  timeout : float option;
  retries : int;
  salt : string;
  fail : string list;
  quiet : bool;
}

let default_options =
  {
    dir = "_campaign";
    only = [];
    force = false;
    jobs = None;
    timeout = None;
    retries = 1;
    salt = code_salt;
    fail = [];
    quiet = false;
  }

type summary = {
  results : Scheduler.task_result list;
  journal_file : string;
  ran : int;
  cached : int;
  failed : int;
}

let select ~(registry : Registry.t) (options : options) =
  let resolve name =
    match Registry.find registry name with
    | Some e -> e
    | None ->
        failwith
          (Printf.sprintf "unknown experiment %S (known: %s)" name
             (String.concat ", " (Registry.names registry)))
  in
  List.iter (fun n -> ignore (resolve n)) options.fail;
  match options.only with
  | [] -> Registry.all registry
  | names -> List.map resolve names

let journal_path options =
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  Filename.concat options.dir
    (Filename.concat "journal"
       (Printf.sprintf "run-%04d%02d%02d-%02d%02d%02d-%d.jsonl"
          (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
          tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
          (Unix.getpid ())))

let outcome_cell = function
  | Journal.Done -> "done"
  | Journal.Cached -> "cached"
  | Journal.Timed_out -> "TIMED OUT"
  | Journal.Failed msg ->
      let msg =
        if String.length msg > 48 then String.sub msg 0 48 ^ "..." else msg
      in
      "FAILED: " ^ msg

let print_summary (results : Scheduler.task_result list) =
  let tbl =
    Tbl.create ~headers:[ "experiment"; "outcome"; "seconds"; "attempts" ]
  in
  Tbl.set_align tbl [ Tbl.Left; Tbl.Left; Tbl.Right; Tbl.Right ];
  List.iter
    (fun (r : Scheduler.task_result) ->
      Tbl.add_row tbl
        [
          r.name;
          outcome_cell r.outcome;
          Tbl.ff ~dec:2 r.duration;
          (if r.attempts = 0 then "-" else Tbl.fi r.attempts);
        ])
    results;
  Tbl.print tbl

let run ~registry options =
  let entries = select ~registry options in
  let cache = Cache.create ~dir:(Filename.concat options.dir "cache") in
  let journal = Journal.create (journal_path options) in
  let t0 = Unix.gettimeofday () in
  Journal.write journal
    (Journal.Campaign_start
       { at = t0; names = List.map (fun (e : Registry.entry) -> e.name) entries });
  let total = List.length entries in
  let progress_lock = Mutex.create () in
  let on_done k =
    if not options.quiet then begin
      Mutex.lock progress_lock;
      Printf.printf "  [%d/%d] experiments finished\n%!" k total;
      Mutex.unlock progress_lock
    end
  in
  let results =
    Scheduler.run ?jobs:options.jobs ?timeout:options.timeout
      ~retries:options.retries ~salt:options.salt ~force:options.force
      ~fail:options.fail ~on_done ~cache ~journal entries
  in
  let count p = List.length (List.filter p results) in
  let ran =
    count (fun (r : Scheduler.task_result) -> r.outcome = Journal.Done)
  in
  let cached =
    count (fun (r : Scheduler.task_result) -> r.outcome = Journal.Cached)
  in
  let failed = total - ran - cached in
  Journal.write journal
    (Journal.Campaign_end
       {
         at = Unix.gettimeofday ();
         ran;
         cached;
         failed;
         duration = Unix.gettimeofday () -. t0;
       });
  let journal_file = Journal.file journal in
  Journal.close journal;
  if not options.quiet then begin
    print_newline ();
    print_summary results;
    Printf.printf "ran: %d  cache hits: %d  failed: %d  (journal: %s)\n" ran
      cached failed journal_file
  end;
  { results; journal_file; ran; cached; failed }

let status ~registry options =
  let entries = select ~registry options in
  let cache = Cache.create ~dir:(Filename.concat options.dir "cache") in
  let now = Unix.gettimeofday () in
  let tbl =
    Tbl.create ~headers:[ "experiment"; "cached"; "age (s)"; "seconds"; "key" ]
  in
  Tbl.set_align tbl [ Tbl.Left; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Left ];
  let hits = ref 0 in
  List.iter
    (fun (e : Registry.entry) ->
      let key = Cache.key ~salt:options.salt e in
      match Cache.lookup cache ~key with
      | Some c ->
          incr hits;
          Tbl.add_row tbl
            [
              e.name;
              "yes";
              Tbl.ff ~dec:0 (now -. c.saved_at);
              Tbl.ff ~dec:2 c.duration;
              String.sub key 0 12;
            ]
      | None -> Tbl.add_row tbl [ e.name; "no"; "-"; "-"; String.sub key 0 12 ])
    entries;
  Tbl.print tbl;
  Printf.printf "%d/%d cached under %s\n" !hits (List.length entries)
    (Cache.dir cache)

let trim options ~max_bytes =
  let cache = Cache.create ~dir:(Filename.concat options.dir "cache") in
  Cache.trim cache ~max_bytes

let clean options =
  let cache = Cache.create ~dir:(Filename.concat options.dir "cache") in
  let removed = Cache.clean cache in
  let journal_dir = Filename.concat options.dir "journal" in
  let journals =
    if Sys.file_exists journal_dir then
      Sys.readdir journal_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
      |> List.map (Filename.concat journal_dir)
    else []
  in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) journals;
  removed + List.length journals
