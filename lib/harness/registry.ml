module Jsonx = Aqt_util.Jsonx
module Tbl = Aqt_util.Tbl
module Csv_out = Aqt_util.Csv_out

type table = {
  id : string;
  headers : string list;
  rows : string list list;
}

type item = Table of table | Note of string

type result = {
  items : item list;
  metrics : (string * float) list;
  trajectory : (string * float) list list;
}

module Rb = struct
  type t = {
    mutable rev_items : item list;
    mutable rev_metrics : (string * float) list;
    mutable traj : (string * float) list list;
  }

  let create () = { rev_items = []; rev_metrics = []; traj = [] }

  let table t ~id ~headers rows =
    t.rev_items <- Table { id; headers; rows } :: t.rev_items

  let rec trim_newlines s =
    let n = String.length s in
    if n > 0 && (s.[n - 1] = '\n' || s.[n - 1] = '\r') then
      trim_newlines (String.sub s 0 (n - 1))
    else s

  let note t s = t.rev_items <- Note (trim_newlines s) :: t.rev_items
  let metric t k v = t.rev_metrics <- (k, v) :: t.rev_metrics
  let trajectory t rows = t.traj <- rows

  let result t =
    {
      items = List.rev t.rev_items;
      metrics = List.rev t.rev_metrics;
      trajectory = t.traj;
    }
end

type entry = {
  name : string;
  title : string;
  tags : string list;
  spec : Spec.t;
  run : unit -> result;
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable rev_order : entry list;
}

let create () = { tbl = Hashtbl.create 37; rev_order = [] }

let register t e =
  if Hashtbl.mem t.tbl e.name then
    invalid_arg (Printf.sprintf "Registry.register: duplicate name %S" e.name);
  Hashtbl.add t.tbl e.name e;
  t.rev_order <- e :: t.rev_order

let find t name = Hashtbl.find_opt t.tbl name
let all t = List.rev t.rev_order
let names t = List.map (fun e -> e.name) (all t)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let export_csv ~dir (tb : table) =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    Csv_out.with_file
      (Filename.concat dir (tb.id ^ ".csv"))
      ~headers:tb.headers
      (fun c -> Csv_out.write_rows c tb.rows)
  with Sys_error _ | Unix.Unix_error _ -> ()

let print_result ?csv_dir (r : result) =
  List.iter
    (function
      | Table tb ->
          let t = Tbl.create ~headers:tb.headers in
          Tbl.add_rows t tb.rows;
          Tbl.print t;
          (match csv_dir with None -> () | Some dir -> export_csv ~dir tb)
      | Note s -> print_endline s)
    r.items

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let table_to_json (tb : table) =
  Jsonx.Obj
    [
      ("id", Jsonx.Str tb.id);
      ("headers", Jsonx.List (List.map (fun h -> Jsonx.Str h) tb.headers));
      ( "rows",
        Jsonx.List
          (List.map
             (fun row -> Jsonx.List (List.map (fun c -> Jsonx.Str c) row))
             tb.rows) );
    ]

let item_to_json = function
  | Table tb -> Jsonx.Obj [ ("table", table_to_json tb) ]
  | Note s -> Jsonx.Obj [ ("note", Jsonx.Str s) ]

let traj_row_to_json row =
  Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) row)

let result_to_json (r : result) =
  Jsonx.Obj
    [
      ("items", Jsonx.List (List.map item_to_json r.items));
      ( "metrics",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) r.metrics) );
      ("trajectory", Jsonx.List (List.map traj_row_to_json r.trajectory));
    ]

let table_of_json j =
  {
    id = Jsonx.to_str (Jsonx.get "id" j);
    headers = List.map Jsonx.to_str (Jsonx.to_list (Jsonx.get "headers" j));
    rows =
      List.map
        (fun row -> List.map Jsonx.to_str (Jsonx.to_list row))
        (Jsonx.to_list (Jsonx.get "rows" j));
  }

let item_of_json j =
  match (Jsonx.member "table" j, Jsonx.member "note" j) with
  | Some tb, _ -> Table (table_of_json tb)
  | None, Some n -> Note (Jsonx.to_str n)
  | None, None -> failwith "Registry.item_of_json: neither table nor note"

let result_of_json j =
  {
    items = List.map item_of_json (Jsonx.to_list (Jsonx.get "items" j));
    metrics =
      List.map
        (fun (k, v) -> (k, Jsonx.to_float v))
        (Jsonx.to_obj (Jsonx.get "metrics" j));
    trajectory =
      List.map
        (fun row ->
          List.map (fun (k, v) -> (k, Jsonx.to_float v)) (Jsonx.to_obj row))
        (Jsonx.to_list (Jsonx.get "trajectory" j));
  }
