(** Content-addressed result cache.

    Results persist as one JSON file per scenario under a cache directory
    (by default [_campaign/cache/<key>.json]).  The key is
    [Spec.hash ~salt ~name spec]: changing any experiment parameter, the
    experiment name, or the campaign-wide code salt changes the key, so a
    stale file is simply never looked up again — [clean] exists for
    hygiene, not correctness.  Corrupt or unreadable files count as
    misses.  Writes go through a per-writer temp file (named by PID and
    domain id, so concurrent domains {e and} concurrent processes sharing a
    cache dir never collide) and [Sys.rename], so a torn file can never be
    published; a writer that crashes mid-store removes its temp file and
    leaves the cache exactly as it was. *)

type t

val create : dir:string -> t
(** Creates [dir] (and its parent) on demand. *)

val dir : t -> string

type cached = {
  key : string;
  name : string;
  saved_at : float;  (** Unix time of the store. *)
  duration : float;  (** Wall-clock seconds of the original run. *)
  result : Registry.result;
}

val key : ?salt:string -> Registry.entry -> string

val lookup : t -> key:string -> cached option

val store :
  t -> key:string -> name:string -> spec:Spec.t -> duration:float ->
  Registry.result -> unit

val touch : t -> key:string -> unit
(** Bump the entry's file mtime to now, if it exists.  {!trim} evicts in
    mtime order, so touching on every cache {e hit} turns store-time
    eviction into least-recently-used eviction — a hot entry survives
    trims no matter how old it is.  Errors (entry vanished, permissions)
    are ignored: the touch is an optimisation, never correctness. *)

val entries : t -> cached list
(** Every parseable cache file, unordered. *)

val clean : t -> int
(** Delete all cache files; returns how many were removed. *)

val trim : t -> max_bytes:int -> int
(** Evict oldest-first (by file mtime: store time, or last hit when the
    caller {!touch}es on lookup — i.e. LRU) until the
    cache directory's total payload size is at most [max_bytes]; returns
    how many files were removed.  Eviction is always safe: a removed
    entry is simply a future miss.  This is how a long-running daemon
    keeps the content-addressed cache bounded.
    @raise Invalid_argument if [max_bytes < 0]. *)
