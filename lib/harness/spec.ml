module Jsonx = Aqt_util.Jsonx
type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Ratio of int * int
  | Str of string
  | List of value list

type t = (string * value) list

let rec encode_value buf = function
  | Bool b -> Buffer.add_string buf (if b then "b:1" else "b:0")
  | Int i ->
      Buffer.add_string buf "i:";
      Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "f:%.17g" f)
  | Ratio (n, d) -> Buffer.add_string buf (Printf.sprintf "r:%d/%d" n d)
  | Str s ->
      Buffer.add_string buf (Printf.sprintf "s:%d:" (String.length s));
      Buffer.add_string buf s
  | List vs ->
      Buffer.add_string buf (Printf.sprintf "l:%d:[" (List.length vs));
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ';';
          encode_value buf v)
        vs;
      Buffer.add_char buf ']'

let canonical t =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) t in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Spec.canonical: duplicate key %S" a)
        else dup rest
    | _ -> ()
  in
  dup sorted;
  let buf = Buffer.create 128 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "%d:%s=" (String.length k) k);
      encode_value buf v;
      Buffer.add_char buf '\n')
    sorted;
  Buffer.contents buf

let hash ?(salt = "") ~name t =
  Digest.to_hex
    (Digest.string (name ^ "\x00" ^ salt ^ "\x00" ^ canonical t))

let rec value_to_json = function
  | Bool b -> Jsonx.Bool b
  | Int i -> Jsonx.Int i
  | Float f -> Jsonx.Float f
  | Ratio (n, d) -> Jsonx.Str (Printf.sprintf "%d/%d" n d)
  | Str s -> Jsonx.Str s
  | List vs -> Jsonx.List (List.map value_to_json vs)

let to_json t = Jsonx.Obj (List.map (fun (k, v) -> (k, value_to_json v)) t)
