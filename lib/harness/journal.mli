(** Structured run journal: one JSON object per line (JSONL).

    Every campaign run appends machine-readable events — task start,
    finish (with outcome, wall-clock duration, peak queue when the
    experiment reports one, and an optional sampled trajectory), retries,
    cache hits, and campaign start/end markers — to a journal file.  The
    writer is mutex-protected so scheduler domains can log concurrently;
    each event is flushed as a whole line, so a crashed campaign leaves a
    readable prefix.  [load] parses a journal back for tooling and tests. *)

type outcome =
  | Done  (** Ran and produced a result. *)
  | Cached  (** Result served from the content-addressed cache. *)
  | Failed of string  (** Raised after all retries; message attached. *)
  | Timed_out  (** Exceeded the per-task wall-clock budget. *)

val outcome_to_string : outcome -> string

type event =
  | Campaign_start of { at : float; names : string list }
  | Task_start of { name : string; at : float; attempt : int }
  | Task_retry of { name : string; attempt : int; error : string }
  | Task_finish of {
      name : string;
      at : float;
      outcome : outcome;
      duration : float;
      max_queue : float option;
      gc_minor_words : float option;
      gc_major_words : float option;
          (** Heap words the task allocated while running (minor = total
              allocation, major = direct major allocation + promotions);
              [None] for cached, failed and timed-out tasks.  Lets a campaign
              journal double as an allocation regression log for the engine
              fast path. *)
      trajectory : (string * float) list list;
    }
  | Task_timeout of {
      name : string;
      at : float;
      limit : float;  (** The configured wall-clock budget, seconds. *)
      duration : float;  (** How long the task actually ran. *)
    }
      (** Post-hoc timeout marker.  Timeouts are cooperative (a domain
          cannot be interrupted mid-OCaml code), so an overrunning task is
          detected only {e after} it returns: this event records, at
          detection time, that the task exceeded [limit] and ran for
          [duration] — reading [Task_finish]'s [at] as "when the timeout
          fired" would misreport it.  Written immediately before the
          corresponding [Task_finish] with outcome [Timed_out]. *)
  | Campaign_end of {
      at : float;
      ran : int;
      cached : int;
      failed : int;
      duration : float;
    }
  | Snapshot of { at : float; label : string; values : (string * float) list }
      (** Periodic state dump from a long-running process — the serve
          daemon journals its metrics registry this way (label
          ["serve.metrics"], one value per series) so a scrape-less
          deployment still leaves a load time-series behind. *)

val event_to_json : event -> Aqt_util.Jsonx.t
val event_of_json : Aqt_util.Jsonx.t -> event  (** @raise Failure on mismatch. *)

(** {2 Writer} *)

type writer

val create : string -> writer
(** Open [file] for append, creating parent directories as needed. *)

val write : writer -> event -> unit
(** Thread-safe; flushes the line.  Journaling is observability, not
    correctness: if an append fails (disk full, closed descriptor, an
    injected {!Fault.Journal_append} fault), the writer marks itself
    {!degraded} and every subsequent [write] becomes a no-op instead of
    failing the campaign — the journal keeps its readable prefix. *)

val degraded : writer -> bool
(** True once an append has failed; later writes were dropped. *)

val file : writer -> string
val close : writer -> unit

(** {2 Reader} *)

val load : string -> event list
(** @raise Failure on an unparseable line (blank lines are skipped). *)

val files : dir:string -> string list
(** Journal files under [dir/journal], oldest first.  File names embed a
    UTC timestamp, so lexicographic order is chronological.  [[]] when
    the directory does not exist. *)

val latest : dir:string -> string option
(** The newest journal file under [dir/journal], if any. *)

val final_trajectories : event list -> (string * (string * float) list list) list
(** The last non-empty trajectory each task reported, in order of each
    task's first appearance.  Cache hits replay the cached trajectory, so
    this is defined for cached as well as freshly-run tasks — the report
    generator uses it to plot per-experiment time series without
    re-running anything. *)
