(** The scenario registry: named experiments with deterministic specs.

    Every experiment of the bench suite registers itself here as an
    {!entry}: a stable name (the [f1..e15, a1.., bench] ids), a one-line
    title, a {!Spec.t} parameter record, and a run function returning a
    typed {!result}.  The campaign layer ({!Cache}, {!Scheduler},
    {!Journal}) is written entirely against this interface, so new
    experiments become campaign-able by registering — nothing else.

    A {!result} is an ordered list of items (tables interleaved with
    prose notes, preserving the presentation order of the original
    experiment), scalar metrics for the journal (e.g. peak queue), and an
    optional sampled trajectory (rows of labelled floats, typically from
    [Engine.Recorder.to_rows]). *)

type table = {
  id : string;  (** CSV basename, e.g. ["e1_thm_3_17"] *)
  headers : string list;
  rows : string list list;
}

type item = Table of table | Note of string

type result = {
  items : item list;
  metrics : (string * float) list;
  trajectory : (string * float) list list;
}

(** {2 Result builder}

    Experiments accumulate their output through a builder instead of
    printing: the same run function then serves the direct bench driver
    (which prints), the cache (which serializes) and the journal (which
    embeds metrics and trajectories). *)

module Rb : sig
  type t

  val create : unit -> t
  val table : t -> id:string -> headers:string list -> string list list -> unit

  val note : t -> string -> unit
  (** Trailing newlines are trimmed; embedded newlines are kept. *)

  val metric : t -> string -> float -> unit
  val trajectory : t -> (string * float) list list -> unit
  val result : t -> result
end

(** {2 Entries} *)

type entry = {
  name : string;
  title : string;
  tags : string list;
  spec : Spec.t;
  run : unit -> result;
}

type t

val create : unit -> t

val register : t -> entry -> unit
(** @raise Invalid_argument on a duplicate name. *)

val find : t -> string -> entry option

val all : t -> entry list
(** In registration order. *)

val names : t -> string list

(** {2 Rendering and serialization} *)

val print_result : ?csv_dir:string -> result -> unit
(** Print tables ({!Aqt_util.Tbl}) and notes in order; when [csv_dir] is
    given, mirror each table to [csv_dir/<id>.csv] (directory created on
    demand, write failures ignored as in the original bench harness). *)

val result_to_json : result -> Aqt_util.Jsonx.t
val result_of_json : Aqt_util.Jsonx.t -> result  (** @raise Failure on mismatch. *)
