(** Campaign orchestration: registry -> scheduler -> journal -> summary.

    A campaign is one invocation of "run these scenarios": it resolves the
    requested names against a {!Registry.t}, opens a fresh JSONL journal
    under [<dir>/journal/], serves unchanged scenarios from the cache
    under [<dir>/cache/], fans the rest across domains, and prints a
    summary table.  [status] and [clean] inspect / empty the campaign
    directory without running anything. *)

type options = {
  dir : string;  (** Campaign state directory, default ["_campaign"]. *)
  only : string list;  (** Scenario names; empty means all registered. *)
  force : bool;  (** Ignore cached results (they get overwritten). *)
  jobs : int option;
  timeout : float option;  (** Per-task seconds (cooperative). *)
  retries : int;
  salt : string;  (** Code-version salt mixed into every cache key. *)
  fail : string list;  (** Scenarios forced to raise (degradation demo). *)
  quiet : bool;  (** Suppress progress lines and the summary table. *)
}

val default_options : options
(** [dir = "_campaign"], no filter, [retries = 1], the built-in code
    salt, verbose. *)

type summary = {
  results : Scheduler.task_result list;
  journal_file : string;
  ran : int;
  cached : int;
  failed : int;  (** Failed + timed out. *)
}

val run : registry:Registry.t -> options -> summary
(** @raise Failure if a name in [only] (or [fail]) is not registered. *)

val status : registry:Registry.t -> options -> unit
(** Print, per registered (or selected) scenario, whether a cached result
    exists for the current spec + salt, its age, and the recorded
    duration. *)

val clean : options -> int
(** Remove cached results and journals under [options.dir]; returns the
    number of files deleted. *)

val trim : options -> max_bytes:int -> int
(** Size-capped sweep of the result cache under [options.dir]: evict
    oldest entries until at most [max_bytes] remain ({!Cache.trim});
    journals are untouched.  Returns the number of files removed. *)
