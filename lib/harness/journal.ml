module Jsonx = Aqt_util.Jsonx
type outcome = Done | Cached | Failed of string | Timed_out

let outcome_to_string = function
  | Done -> "done"
  | Cached -> "cached"
  | Failed msg -> "FAILED: " ^ msg
  | Timed_out -> "TIMED OUT"

type event =
  | Campaign_start of { at : float; names : string list }
  | Task_start of { name : string; at : float; attempt : int }
  | Task_retry of { name : string; attempt : int; error : string }
  | Task_finish of {
      name : string;
      at : float;
      outcome : outcome;
      duration : float;
      max_queue : float option;
      gc_minor_words : float option;
      gc_major_words : float option;
      trajectory : (string * float) list list;
    }
  | Task_timeout of {
      name : string;
      at : float;
      limit : float;
      duration : float;
    }
  | Campaign_end of {
      at : float;
      ran : int;
      cached : int;
      failed : int;
      duration : float;
    }
  | Snapshot of { at : float; label : string; values : (string * float) list }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let outcome_to_json = function
  | Done -> Jsonx.Obj [ ("kind", Jsonx.Str "done") ]
  | Cached -> Jsonx.Obj [ ("kind", Jsonx.Str "cached") ]
  | Failed msg ->
      Jsonx.Obj [ ("kind", Jsonx.Str "failed"); ("error", Jsonx.Str msg) ]
  | Timed_out -> Jsonx.Obj [ ("kind", Jsonx.Str "timed_out") ]

let outcome_of_json j =
  match Jsonx.to_str (Jsonx.get "kind" j) with
  | "done" -> Done
  | "cached" -> Cached
  | "failed" -> Failed (Jsonx.to_str (Jsonx.get "error" j))
  | "timed_out" -> Timed_out
  | k -> failwith (Printf.sprintf "Journal: unknown outcome kind %S" k)

let event_to_json = function
  | Campaign_start { at; names } ->
      Jsonx.Obj
        [
          ("ev", Jsonx.Str "campaign_start");
          ("at", Jsonx.Float at);
          ("names", Jsonx.List (List.map (fun n -> Jsonx.Str n) names));
        ]
  | Task_start { name; at; attempt } ->
      Jsonx.Obj
        [
          ("ev", Jsonx.Str "task_start");
          ("name", Jsonx.Str name);
          ("at", Jsonx.Float at);
          ("attempt", Jsonx.Int attempt);
        ]
  | Task_retry { name; attempt; error } ->
      Jsonx.Obj
        [
          ("ev", Jsonx.Str "task_retry");
          ("name", Jsonx.Str name);
          ("attempt", Jsonx.Int attempt);
          ("error", Jsonx.Str error);
        ]
  | Task_finish
      {
        name;
        at;
        outcome;
        duration;
        max_queue;
        gc_minor_words;
        gc_major_words;
        trajectory;
      } ->
      let opt_float key = function
        | None -> []
        | Some v -> [ (key, Jsonx.Float v) ]
      in
      Jsonx.Obj
        ([
           ("ev", Jsonx.Str "task_finish");
           ("name", Jsonx.Str name);
           ("at", Jsonx.Float at);
           ("outcome", outcome_to_json outcome);
           ("duration", Jsonx.Float duration);
         ]
        @ opt_float "max_queue" max_queue
        @ opt_float "gc_minor_words" gc_minor_words
        @ opt_float "gc_major_words" gc_major_words
        @
        if trajectory = [] then []
        else
          [
            ( "trajectory",
              Jsonx.List
                (List.map
                   (fun row ->
                     Jsonx.Obj
                       (List.map (fun (k, v) -> (k, Jsonx.Float v)) row))
                   trajectory) );
          ])
  | Task_timeout { name; at; limit; duration } ->
      Jsonx.Obj
        [
          ("ev", Jsonx.Str "task_timeout");
          ("name", Jsonx.Str name);
          ("at", Jsonx.Float at);
          ("limit", Jsonx.Float limit);
          ("duration", Jsonx.Float duration);
        ]
  | Campaign_end { at; ran; cached; failed; duration } ->
      Jsonx.Obj
        [
          ("ev", Jsonx.Str "campaign_end");
          ("at", Jsonx.Float at);
          ("ran", Jsonx.Int ran);
          ("cached", Jsonx.Int cached);
          ("failed", Jsonx.Int failed);
          ("duration", Jsonx.Float duration);
        ]
  | Snapshot { at; label; values } ->
      Jsonx.Obj
        [
          ("ev", Jsonx.Str "snapshot");
          ("at", Jsonx.Float at);
          ("label", Jsonx.Str label);
          ( "values",
            Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) values) );
        ]

let event_of_json j =
  match Jsonx.to_str (Jsonx.get "ev" j) with
  | "campaign_start" ->
      Campaign_start
        {
          at = Jsonx.to_float (Jsonx.get "at" j);
          names = List.map Jsonx.to_str (Jsonx.to_list (Jsonx.get "names" j));
        }
  | "task_start" ->
      Task_start
        {
          name = Jsonx.to_str (Jsonx.get "name" j);
          at = Jsonx.to_float (Jsonx.get "at" j);
          attempt = Jsonx.to_int (Jsonx.get "attempt" j);
        }
  | "task_retry" ->
      Task_retry
        {
          name = Jsonx.to_str (Jsonx.get "name" j);
          attempt = Jsonx.to_int (Jsonx.get "attempt" j);
          error = Jsonx.to_str (Jsonx.get "error" j);
        }
  | "task_finish" ->
      Task_finish
        {
          name = Jsonx.to_str (Jsonx.get "name" j);
          at = Jsonx.to_float (Jsonx.get "at" j);
          outcome = outcome_of_json (Jsonx.get "outcome" j);
          duration = Jsonx.to_float (Jsonx.get "duration" j);
          max_queue = Option.map Jsonx.to_float (Jsonx.member "max_queue" j);
          gc_minor_words =
            Option.map Jsonx.to_float (Jsonx.member "gc_minor_words" j);
          gc_major_words =
            Option.map Jsonx.to_float (Jsonx.member "gc_major_words" j);
          trajectory =
            (match Jsonx.member "trajectory" j with
            | None -> []
            | Some rows ->
                List.map
                  (fun row ->
                    List.map
                      (fun (k, v) -> (k, Jsonx.to_float v))
                      (Jsonx.to_obj row))
                  (Jsonx.to_list rows));
        }
  | "task_timeout" ->
      Task_timeout
        {
          name = Jsonx.to_str (Jsonx.get "name" j);
          at = Jsonx.to_float (Jsonx.get "at" j);
          limit = Jsonx.to_float (Jsonx.get "limit" j);
          duration = Jsonx.to_float (Jsonx.get "duration" j);
        }
  | "campaign_end" ->
      Campaign_end
        {
          at = Jsonx.to_float (Jsonx.get "at" j);
          ran = Jsonx.to_int (Jsonx.get "ran" j);
          cached = Jsonx.to_int (Jsonx.get "cached" j);
          failed = Jsonx.to_int (Jsonx.get "failed" j);
          duration = Jsonx.to_float (Jsonx.get "duration" j);
        }
  | "snapshot" ->
      Snapshot
        {
          at = Jsonx.to_float (Jsonx.get "at" j);
          label = Jsonx.to_str (Jsonx.get "label" j);
          values =
            List.map
              (fun (k, v) -> (k, Jsonx.to_float v))
              (Jsonx.to_obj (Jsonx.get "values" j));
        }
  | ev -> failwith (Printf.sprintf "Journal: unknown event %S" ev)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  path : string;
  oc : out_channel;
  lock : Mutex.t;
  mutable degraded : bool;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create path =
  mkdir_p (Filename.dirname path);
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  { path; oc; lock = Mutex.create (); degraded = false }

let write w ev =
  let line = Jsonx.to_string (event_to_json ev) in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      (* Journaling is best-effort: an append failure (disk full, closed
         descriptor, injected fault) degrades the writer to a no-op rather
         than crashing the campaign; the file keeps its readable prefix. *)
      if not w.degraded then
        try
          Fault.hit Fault.Journal_append;
          output_string w.oc line;
          output_char w.oc '\n';
          flush w.oc
        with Sys_error _ | Fault.Injected _ -> w.degraded <- true)

let degraded w = w.degraded
let file w = w.path
let close w = close_out_noerr w.oc

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

let files ~dir =
  let jd = Filename.concat dir "journal" in
  if Sys.file_exists jd && Sys.is_directory jd then
    Sys.readdir jd |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
    |> List.map (Filename.concat jd)
  else []

let latest ~dir =
  match List.rev (files ~dir) with [] -> None | f :: _ -> Some f

let final_trajectories events =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (function
      | Task_finish { name; trajectory; _ } when trajectory <> [] ->
          if not (Hashtbl.mem tbl name) then order := name :: !order;
          Hashtbl.replace tbl name trajectory
      | _ -> ())
    events;
  List.rev_map (fun n -> (n, Hashtbl.find tbl n)) !order

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line ->
            let acc =
              if String.trim line = "" then acc
              else event_of_json (Jsonx.of_string line) :: acc
            in
            go acc
        | exception End_of_file -> List.rev acc
      in
      go [])
