module D = Digraph

type line = { graph : D.t; nodes : int array; edges : int array }

let line k =
  if k < 1 then invalid_arg "Build.line: need at least one edge";
  let g = D.create () in
  let nodes = D.add_nodes g (k + 1) in
  let edges =
    Array.init k (fun i -> D.add_edge g ~src:nodes.(i) ~dst:nodes.(i + 1))
  in
  { graph = g; nodes; edges }

type ring = { graph : D.t; nodes : int array; edges : int array }

let ring k =
  if k < 2 then invalid_arg "Build.ring: need at least two nodes";
  let g = D.create () in
  let nodes = D.add_nodes g k in
  let edges =
    Array.init k (fun i ->
        D.add_edge g ~src:nodes.(i) ~dst:nodes.((i + 1) mod k))
  in
  { graph = g; nodes; edges }

type parallel = {
  graph : D.t;
  source : int;
  sink : int;
  paths : int array array;
}

let parallel_paths ~branches ~hops =
  if branches < 1 || hops < 1 then invalid_arg "Build.parallel_paths";
  let g = D.create () in
  let source = D.add_node ~name:"src" g and sink = D.add_node ~name:"snk" g in
  let branch b =
    let prev = ref source in
    Array.init hops (fun h ->
        let next = if h = hops - 1 then sink else D.add_node g in
        let e =
          D.add_edge ~label:(Printf.sprintf "p%d_%d" b h) g ~src:!prev ~dst:next
        in
        prev := next;
        e)
  in
  let paths = Array.init branches branch in
  { graph = g; source; sink; paths }

type grid = {
  graph : D.t;
  rows : int;
  cols : int;
  node_at : int -> int -> int;
  right_of : int -> int -> int;
  down_of : int -> int -> int;
}

(* Million-edge grids must build in O(E) with no per-element allocation:
   nodes are anonymous (default names materialise on read, the PR 2 Digraph
   fix) and the handles are arithmetic, not arrays of ids.  Nodes are added
   in row-major order; edges in row-major cell order, right before down, so
   each handle is a closed-form index. *)
let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Build.grid";
  let g = D.create () in
  ignore (D.add_nodes g (rows * cols));
  let node_at r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        ignore (D.add_edge g ~src:(node_at r c) ~dst:(node_at r (c + 1)));
      if r + 1 < rows then
        ignore (D.add_edge g ~src:(node_at r c) ~dst:(node_at (r + 1) c))
    done
  done;
  (* A non-last row holds [cols - 1] rights + [cols] downs = [2*cols - 1]
     edges; the last row only the rights.  Within a non-last row, cell [c]
     is preceded by [2c] of them. *)
  let right_of r c =
    if r < 0 || r >= rows || c < 0 || c + 1 >= cols then
      invalid_arg "Build.grid: no right edge there";
    if r < rows - 1 then (r * ((2 * cols) - 1)) + (2 * c)
    else (r * ((2 * cols) - 1)) + c
  in
  let down_of r c =
    if r < 0 || r + 1 >= rows || c < 0 || c >= cols then
      invalid_arg "Build.grid: no down edge there";
    (r * ((2 * cols) - 1)) + (2 * c) + if c + 1 < cols then 1 else 0
  in
  { graph = g; rows; cols; node_at; right_of; down_of }

type torus = {
  graph : D.t;
  rows : int;
  cols : int;
  node_at : int -> int -> int;
  right_of : int -> int -> int;
  down_of : int -> int -> int;
}

(* Directed torus: the grid with wraparound, so every node has exactly one
   right and one down edge — [2 * rows * cols] edges, uniform degree, the
   natural 2-D scaling of the ring workloads. *)
let torus ~rows ~cols =
  if rows < 2 || cols < 2 then invalid_arg "Build.torus";
  let g = D.create () in
  ignore (D.add_nodes g (rows * cols));
  let node_at r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      ignore
        (D.add_edge g ~src:(node_at r c) ~dst:(node_at r ((c + 1) mod cols)));
      ignore
        (D.add_edge g ~src:(node_at r c) ~dst:(node_at ((r + 1) mod rows) c))
    done
  done;
  let check r c =
    if r < 0 || r >= rows || c < 0 || c >= cols then
      invalid_arg "Build.torus: cell out of range"
  in
  let right_of r c =
    check r c;
    2 * ((r * cols) + c)
  and down_of r c =
    check r c;
    (2 * ((r * cols) + c)) + 1
  in
  { graph = g; rows; cols; node_at; right_of; down_of }

type tree = { graph : D.t; root : int; leaves : int array }

let in_tree ~depth =
  if depth < 0 then invalid_arg "Build.in_tree";
  let g = D.create () in
  let root = D.add_node ~name:"root" g in
  (* Level d holds 2^d nodes; edges point from level d+1 to level d. *)
  let rec expand level parents =
    if level > depth then parents
    else begin
      let children =
        Array.concat
          (Array.to_list
             (Array.map
                (fun p ->
                  let l = D.add_node g and r = D.add_node g in
                  ignore (D.add_edge g ~src:l ~dst:p);
                  ignore (D.add_edge g ~src:r ~dst:p);
                  [| l; r |])
                parents))
      in
      expand (level + 1) children
    end
  in
  let leaves = expand 1 [| root |] in
  { graph = g; root; leaves }

let random_dag ~prng ~nodes ~edge_prob_num ~edge_prob_den =
  if nodes < 1 then invalid_arg "Build.random_dag";
  let g = D.create () in
  let ids = D.add_nodes g nodes in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if Aqt_util.Prng.bernoulli prng ~num:edge_prob_num ~den:edge_prob_den
      then ignore (D.add_edge g ~src:ids.(i) ~dst:ids.(j))
    done
  done;
  g

(* The G(n, m) counterpart of [random_dag]: [edges] forward pairs drawn
   uniformly, O(E) regardless of n — [random_dag]'s Bernoulli sweep is
   O(n^2), hopeless at the million-edge scale.  Parallel edges may repeat a
   pair (the model allows multigraphs); self-pairs are redrawn. *)
let random_dag_edges ~prng ~nodes ~edges =
  if nodes < 2 then invalid_arg "Build.random_dag_edges: need >= 2 nodes";
  if edges < 0 then invalid_arg "Build.random_dag_edges: negative edge count";
  let g = D.create () in
  ignore (D.add_nodes g nodes);
  for _ = 1 to edges do
    let u = ref (Aqt_util.Prng.int prng nodes)
    and v = ref (Aqt_util.Prng.int prng nodes) in
    while !u = !v do
      u := Aqt_util.Prng.int prng nodes;
      v := Aqt_util.Prng.int prng nodes
    done;
    let src = min !u !v and dst = max !u !v in
    ignore (D.add_edge g ~src ~dst)
  done;
  g
