module D = Digraph

type line = { graph : D.t; nodes : int array; edges : int array }

let line k =
  if k < 1 then invalid_arg "Build.line: need at least one edge";
  let g = D.create () in
  let nodes = D.add_nodes g (k + 1) in
  let edges =
    Array.init k (fun i -> D.add_edge g ~src:nodes.(i) ~dst:nodes.(i + 1))
  in
  { graph = g; nodes; edges }

type ring = { graph : D.t; nodes : int array; edges : int array }

let ring k =
  if k < 2 then invalid_arg "Build.ring: need at least two nodes";
  let g = D.create () in
  let nodes = D.add_nodes g k in
  let edges =
    Array.init k (fun i ->
        D.add_edge g ~src:nodes.(i) ~dst:nodes.((i + 1) mod k))
  in
  { graph = g; nodes; edges }

type parallel = {
  graph : D.t;
  source : int;
  sink : int;
  paths : int array array;
}

let parallel_paths ~branches ~hops =
  if branches < 1 || hops < 1 then invalid_arg "Build.parallel_paths";
  let g = D.create () in
  let source = D.add_node ~name:"src" g and sink = D.add_node ~name:"snk" g in
  let branch b =
    let prev = ref source in
    Array.init hops (fun h ->
        let next = if h = hops - 1 then sink else D.add_node g in
        let e =
          D.add_edge ~label:(Printf.sprintf "p%d_%d" b h) g ~src:!prev ~dst:next
        in
        prev := next;
        e)
  in
  let paths = Array.init branches branch in
  { graph = g; source; sink; paths }

type grid = {
  graph : D.t;
  rows : int;
  cols : int;
  node_at : int -> int -> int;
  right_of : int -> int -> int;
  down_of : int -> int -> int;
}

(* Million-edge grids must build in O(E) with no per-element allocation:
   nodes are anonymous (default names materialise on read, the PR 2 Digraph
   fix) and the handles are arithmetic, not arrays of ids.  Nodes are added
   in row-major order; edges in row-major cell order, right before down, so
   each handle is a closed-form index. *)
let grid ~rows ~cols =
  if rows < 1 || cols < 1 then
    invalid_arg
      (Printf.sprintf
         "Build.grid: rows and cols must be >= 1 (got rows=%d cols=%d)" rows
         cols);
  let g = D.create () in
  ignore (D.add_nodes g (rows * cols));
  let node_at r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        ignore (D.add_edge g ~src:(node_at r c) ~dst:(node_at r (c + 1)));
      if r + 1 < rows then
        ignore (D.add_edge g ~src:(node_at r c) ~dst:(node_at (r + 1) c))
    done
  done;
  (* A non-last row holds [cols - 1] rights + [cols] downs = [2*cols - 1]
     edges; the last row only the rights.  Within a non-last row, cell [c]
     is preceded by [2c] of them. *)
  let right_of r c =
    if r < 0 || r >= rows || c < 0 || c + 1 >= cols then
      invalid_arg "Build.grid: no right edge there";
    if r < rows - 1 then (r * ((2 * cols) - 1)) + (2 * c)
    else (r * ((2 * cols) - 1)) + c
  in
  let down_of r c =
    if r < 0 || r + 1 >= rows || c < 0 || c >= cols then
      invalid_arg "Build.grid: no down edge there";
    (r * ((2 * cols) - 1)) + (2 * c) + if c + 1 < cols then 1 else 0
  in
  { graph = g; rows; cols; node_at; right_of; down_of }

type torus = {
  graph : D.t;
  rows : int;
  cols : int;
  node_at : int -> int -> int;
  right_of : int -> int -> int;
  down_of : int -> int -> int;
}

(* Directed torus: the grid with wraparound, so every node has exactly one
   right and one down edge — [2 * rows * cols] edges, uniform degree, the
   natural 2-D scaling of the ring workloads. *)
let torus ~rows ~cols =
  if rows < 2 || cols < 2 then
    invalid_arg
      (Printf.sprintf
         "Build.torus: rows and cols must be >= 2 (got rows=%d cols=%d)" rows
         cols);
  let g = D.create () in
  ignore (D.add_nodes g (rows * cols));
  let node_at r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      ignore
        (D.add_edge g ~src:(node_at r c) ~dst:(node_at r ((c + 1) mod cols)));
      ignore
        (D.add_edge g ~src:(node_at r c) ~dst:(node_at ((r + 1) mod rows) c))
    done
  done;
  let check r c =
    if r < 0 || r >= rows || c < 0 || c >= cols then
      invalid_arg "Build.torus: cell out of range"
  in
  let right_of r c =
    check r c;
    2 * ((r * cols) + c)
  and down_of r c =
    check r c;
    (2 * ((r * cols) + c)) + 1
  in
  { graph = g; rows; cols; node_at; right_of; down_of }

type tree = { graph : D.t; root : int; leaves : int array }

let in_tree ~depth =
  if depth < 0 then invalid_arg "Build.in_tree";
  let g = D.create () in
  let root = D.add_node ~name:"root" g in
  (* Level d holds 2^d nodes; edges point from level d+1 to level d. *)
  let rec expand level parents =
    if level > depth then parents
    else begin
      let children =
        Array.concat
          (Array.to_list
             (Array.map
                (fun p ->
                  let l = D.add_node g and r = D.add_node g in
                  ignore (D.add_edge g ~src:l ~dst:p);
                  ignore (D.add_edge g ~src:r ~dst:p);
                  [| l; r |])
                parents))
      in
      expand (level + 1) children
    end
  in
  let leaves = expand 1 [| root |] in
  { graph = g; root; leaves }

let random_dag ~prng ~nodes ~edge_prob_num ~edge_prob_den =
  if nodes < 1 then invalid_arg "Build.random_dag";
  let g = D.create () in
  let ids = D.add_nodes g nodes in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if Aqt_util.Prng.bernoulli prng ~num:edge_prob_num ~den:edge_prob_den
      then ignore (D.add_edge g ~src:ids.(i) ~dst:ids.(j))
    done
  done;
  g

(* ------------------------------------------------------------------ *)
(* Datacenter fabrics: spine-leaf and 3-tier k-ary fat-tree            *)
(* ------------------------------------------------------------------ *)

(* Deterministic per-flow ECMP selection: a boost-style hash combine over
   (seed, src, dst, flow) with a final avalanche, reduced mod the
   equal-cost route count.  Pure arithmetic on the native int — the same
   tuple picks the same route forever, like a switch hashing a 5-tuple.
   Constants fit in 62 bits so the result is identical on every 64-bit
   platform. *)
let ecmp_index ~seed ~src ~dst ~flow n =
  if n < 1 then invalid_arg "Build.ecmp_index: need at least one route";
  let mix h v = (h lxor (v + 0x9E37_79B9 + (h lsl 6) + (h lsr 2))) land max_int in
  let h = mix (mix (mix (mix 0x2545_F491 seed) src) dst) flow in
  let h = h lxor (h lsr 33) in
  let h = h * 0x2AAB_59E5_9EC4_D5C5 land max_int in
  let h = h lxor (h lsr 29) in
  h mod n

type fabric = {
  graph : D.t;
  hosts : int array;
  switches : int array;
  routes : src:int -> dst:int -> int array array;
  ecmp_degree : src:int -> dst:int -> int;
}

let ecmp_route (f : fabric) ~seed ~src ~dst ~flow =
  let candidates = f.routes ~src ~dst in
  candidates.(ecmp_index ~seed ~src ~dst ~flow (Array.length candidates))

(* Two-tier Clos: every leaf links up to every spine, [hosts_per_leaf]
   hosts hang off each leaf.  Links are modelled as directed edge pairs.
   Between hosts under different leaves there are exactly [spines]
   equal-cost 4-hop routes (one per spine); under the same leaf, one
   2-hop route through the shared leaf switch. *)
let spine_leaf ~spines ~leaves ~hosts_per_leaf =
  if spines < 1 then
    invalid_arg
      (Printf.sprintf "Build.spine_leaf: need at least one spine (got %d)"
         spines);
  if leaves < 1 then
    invalid_arg
      (Printf.sprintf "Build.spine_leaf: need at least one leaf (got %d)"
         leaves);
  if hosts_per_leaf < 1 then
    invalid_arg
      (Printf.sprintf
         "Build.spine_leaf: need at least one host per leaf (got %d)"
         hosts_per_leaf);
  let g = D.create () in
  let spine_ids = D.add_nodes g spines in
  let leaf_ids = D.add_nodes g leaves in
  let n_hosts = leaves * hosts_per_leaf in
  let host_ids = D.add_nodes g n_hosts in
  (* Fabric links, then access links; each recorded both ways. *)
  let up_ls = Array.make_matrix leaves spines 0 in
  let down_sl = Array.make_matrix spines leaves 0 in
  for l = 0 to leaves - 1 do
    for s = 0 to spines - 1 do
      up_ls.(l).(s) <- D.add_edge g ~src:leaf_ids.(l) ~dst:spine_ids.(s);
      down_sl.(s).(l) <- D.add_edge g ~src:spine_ids.(s) ~dst:leaf_ids.(l)
    done
  done;
  let up_host = Array.make n_hosts 0 in
  let down_host = Array.make n_hosts 0 in
  for h = 0 to n_hosts - 1 do
    let l = h / hosts_per_leaf in
    up_host.(h) <- D.add_edge g ~src:host_ids.(h) ~dst:leaf_ids.(l);
    down_host.(h) <- D.add_edge g ~src:leaf_ids.(l) ~dst:host_ids.(h)
  done;
  let check_host who h =
    if h < 0 || h >= n_hosts then
      invalid_arg
        (Printf.sprintf "Build.spine_leaf: %s host index %d out of range" who
           h)
  in
  let routes ~src ~dst =
    check_host "src" src;
    check_host "dst" dst;
    if src = dst then
      invalid_arg "Build.spine_leaf: src and dst hosts must differ";
    let ls = src / hosts_per_leaf and ld = dst / hosts_per_leaf in
    if ls = ld then [| [| up_host.(src); down_host.(dst) |] |]
    else
      Array.init spines (fun s ->
          [| up_host.(src); up_ls.(ls).(s); down_sl.(s).(ld); down_host.(dst) |])
  in
  let ecmp_degree ~src ~dst =
    check_host "src" src;
    check_host "dst" dst;
    if src / hosts_per_leaf = dst / hosts_per_leaf then 1 else spines
  in
  {
    graph = g;
    hosts = host_ids;
    switches = Array.append spine_ids leaf_ids;
    routes;
    ecmp_degree;
  }

(* The canonical 3-tier k-ary fat-tree (Al-Fares et al.): k pods of k/2
   edge and k/2 aggregation switches, (k/2)^2 core switches, k/2 hosts
   per edge switch — k^3/4 hosts total.  Aggregation switch [a] of every
   pod links to core group [a] (cores [a*(k/2) .. a*(k/2)+k/2-1]), which
   is what makes all (k/2)^2 inter-pod routes equal cost. *)
let fat_tree ~k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg
      (Printf.sprintf "Build.fat_tree: k must be even and >= 2 (got %d)" k);
  let half = k / 2 in
  let g = D.create () in
  let cores = D.add_nodes g (half * half) in
  let edge_sw = Array.init k (fun _ -> D.add_nodes g half) in
  let agg_sw = Array.init k (fun _ -> D.add_nodes g half) in
  let hosts_per_pod = half * half in
  let n_hosts = k * hosts_per_pod in
  let host_ids = D.add_nodes g n_hosts in
  (* Host h lives in pod [h / (k/2)^2] under edge switch
     [(h mod (k/2)^2) / (k/2)]. *)
  let up_ea = Array.init k (fun _ -> Array.make_matrix half half 0) in
  let down_ae = Array.init k (fun _ -> Array.make_matrix half half 0) in
  let up_ac = Array.init k (fun _ -> Array.make_matrix half half 0) in
  let down_ca = Array.init k (fun _ -> Array.make_matrix half half 0) in
  for p = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        up_ea.(p).(e).(a) <-
          D.add_edge g ~src:edge_sw.(p).(e) ~dst:agg_sw.(p).(a);
        down_ae.(p).(a).(e) <-
          D.add_edge g ~src:agg_sw.(p).(a) ~dst:edge_sw.(p).(e)
      done
    done;
    for a = 0 to half - 1 do
      for b = 0 to half - 1 do
        let c = (a * half) + b in
        up_ac.(p).(a).(b) <- D.add_edge g ~src:agg_sw.(p).(a) ~dst:cores.(c);
        down_ca.(p).(a).(b) <- D.add_edge g ~src:cores.(c) ~dst:agg_sw.(p).(a)
      done
    done
  done;
  let up_host = Array.make n_hosts 0 in
  let down_host = Array.make n_hosts 0 in
  for h = 0 to n_hosts - 1 do
    let p = h / hosts_per_pod in
    let e = h mod hosts_per_pod / half in
    up_host.(h) <- D.add_edge g ~src:host_ids.(h) ~dst:edge_sw.(p).(e);
    down_host.(h) <- D.add_edge g ~src:edge_sw.(p).(e) ~dst:host_ids.(h)
  done;
  let check_host who h =
    if h < 0 || h >= n_hosts then
      invalid_arg
        (Printf.sprintf "Build.fat_tree: %s host index %d out of range" who h)
  in
  let locate h = (h / hosts_per_pod, h mod hosts_per_pod / half) in
  let routes ~src ~dst =
    check_host "src" src;
    check_host "dst" dst;
    if src = dst then
      invalid_arg "Build.fat_tree: src and dst hosts must differ";
    let ps, es = locate src and pd, ed = locate dst in
    if ps = pd && es = ed then [| [| up_host.(src); down_host.(dst) |] |]
    else if ps = pd then
      Array.init half (fun a ->
          [|
            up_host.(src);
            up_ea.(ps).(es).(a);
            down_ae.(ps).(a).(ed);
            down_host.(dst);
          |])
    else
      Array.init (half * half) (fun i ->
          let a = i / half and b = i mod half in
          [|
            up_host.(src);
            up_ea.(ps).(es).(a);
            up_ac.(ps).(a).(b);
            down_ca.(pd).(a).(b);
            down_ae.(pd).(a).(ed);
            down_host.(dst);
          |])
  in
  let ecmp_degree ~src ~dst =
    check_host "src" src;
    check_host "dst" dst;
    let ps, es = locate src and pd, ed = locate dst in
    if ps = pd && es = ed then 1 else if ps = pd then half else half * half
  in
  let switches =
    Array.concat
      (cores :: (Array.to_list edge_sw @ Array.to_list agg_sw))
  in
  { graph = g; hosts = host_ids; switches; routes; ecmp_degree }

(* The G(n, m) counterpart of [random_dag]: [edges] forward pairs drawn
   uniformly, O(E) regardless of n — [random_dag]'s Bernoulli sweep is
   O(n^2), hopeless at the million-edge scale.  Parallel edges may repeat a
   pair (the model allows multigraphs); self-pairs are redrawn. *)
let random_dag_edges ~prng ~nodes ~edges =
  if nodes < 2 then invalid_arg "Build.random_dag_edges: need >= 2 nodes";
  if edges < 0 then invalid_arg "Build.random_dag_edges: negative edge count";
  let g = D.create () in
  ignore (D.add_nodes g nodes);
  for _ = 1 to edges do
    let u = ref (Aqt_util.Prng.int prng nodes)
    and v = ref (Aqt_util.Prng.int prng nodes) in
    while !u = !v do
      u := Aqt_util.Prng.int prng nodes;
      v := Aqt_util.Prng.int prng nodes
    done;
    let src = min !u !v and dst = max !u !v in
    ignore (D.add_edge g ~src ~dst)
  done;
  g
