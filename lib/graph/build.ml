module D = Digraph

type line = { graph : D.t; nodes : int array; edges : int array }

let line k =
  if k < 1 then invalid_arg "Build.line: need at least one edge";
  let g = D.create () in
  let nodes = D.add_nodes g (k + 1) in
  let edges =
    Array.init k (fun i -> D.add_edge g ~src:nodes.(i) ~dst:nodes.(i + 1))
  in
  { graph = g; nodes; edges }

type ring = { graph : D.t; nodes : int array; edges : int array }

let ring k =
  if k < 2 then invalid_arg "Build.ring: need at least two nodes";
  let g = D.create () in
  let nodes = D.add_nodes g k in
  let edges =
    Array.init k (fun i ->
        D.add_edge g ~src:nodes.(i) ~dst:nodes.((i + 1) mod k))
  in
  { graph = g; nodes; edges }

type parallel = {
  graph : D.t;
  source : int;
  sink : int;
  paths : int array array;
}

let parallel_paths ~branches ~hops =
  if branches < 1 || hops < 1 then invalid_arg "Build.parallel_paths";
  let g = D.create () in
  let source = D.add_node ~name:"src" g and sink = D.add_node ~name:"snk" g in
  let branch b =
    let prev = ref source in
    Array.init hops (fun h ->
        let next = if h = hops - 1 then sink else D.add_node g in
        let e =
          D.add_edge ~label:(Printf.sprintf "p%d_%d" b h) g ~src:!prev ~dst:next
        in
        prev := next;
        e)
  in
  let paths = Array.init branches branch in
  { graph = g; source; sink; paths }

type grid = { graph : D.t; node_at : int -> int -> int }

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Build.grid";
  let g = D.create () in
  let ids =
    Array.init rows (fun r ->
        Array.init cols (fun c ->
            D.add_node ~name:(Printf.sprintf "g%d_%d" r c) g))
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        ignore (D.add_edge g ~src:ids.(r).(c) ~dst:ids.(r).(c + 1));
      if r + 1 < rows then
        ignore (D.add_edge g ~src:ids.(r).(c) ~dst:ids.(r + 1).(c))
    done
  done;
  { graph = g; node_at = (fun r c -> ids.(r).(c)) }

type tree = { graph : D.t; root : int; leaves : int array }

let in_tree ~depth =
  if depth < 0 then invalid_arg "Build.in_tree";
  let g = D.create () in
  let root = D.add_node ~name:"root" g in
  (* Level d holds 2^d nodes; edges point from level d+1 to level d. *)
  let rec expand level parents =
    if level > depth then parents
    else begin
      let children =
        Array.concat
          (Array.to_list
             (Array.map
                (fun p ->
                  let l = D.add_node g and r = D.add_node g in
                  ignore (D.add_edge g ~src:l ~dst:p);
                  ignore (D.add_edge g ~src:r ~dst:p);
                  [| l; r |])
                parents))
      in
      expand (level + 1) children
    end
  in
  let leaves = expand 1 [| root |] in
  { graph = g; root; leaves }

let random_dag ~prng ~nodes ~edge_prob_num ~edge_prob_den =
  if nodes < 1 then invalid_arg "Build.random_dag";
  let g = D.create () in
  let ids = D.add_nodes g nodes in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if Aqt_util.Prng.bernoulli prng ~num:edge_prob_num ~den:edge_prob_den
      then ignore (D.add_edge g ~src:ids.(i) ~dst:ids.(j))
    done
  done;
  g
