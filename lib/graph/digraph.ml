module Dyn = Aqt_util.Dynarray_compat

type edge = { id : int; src : int; dst : int; label : string }

type t = {
  node_names : string Dyn.t;
  edge_store : edge Dyn.t;
  out_adj : int list Dyn.t; (* per node, reversed insertion order *)
  in_adj : int list Dyn.t;
}

let create () =
  {
    node_names = Dyn.create ();
    edge_store = Dyn.create ();
    out_adj = Dyn.create ();
    in_adj = Dyn.create ();
  }

let n_nodes g = Dyn.length g.node_names
let n_edges g = Dyn.length g.edge_store

(* Default names are materialised on read, not on construction: building a
   k-node graph must not allocate k strings nobody may ever look at (eager
   "v<id>"/"e<id>" labels were ~60% of ring-1000 construction time).  The
   empty string is the "no explicit name" sentinel — explicit empty names are
   indistinguishable from defaults, which is harmless. *)
let add_node ?name g =
  let id = n_nodes g in
  let name = match name with Some n -> n | None -> "" in
  Dyn.push g.node_names name;
  Dyn.push g.out_adj [];
  Dyn.push g.in_adj [];
  id

let add_nodes g k = Array.init k (fun _ -> add_node g)

let check_node g v what =
  if v < 0 || v >= n_nodes g then
    invalid_arg (Printf.sprintf "Digraph.add_edge: %s %d is not a node" what v)

let add_edge ?label g ~src ~dst =
  check_node g src "source";
  check_node g dst "destination";
  if src = dst then invalid_arg "Digraph.add_edge: self-loops are not allowed";
  let id = n_edges g in
  let label = match label with Some l -> l | None -> "" in
  Dyn.push g.edge_store { id; src; dst; label };
  Dyn.set g.out_adj src (id :: Dyn.get g.out_adj src);
  Dyn.set g.in_adj dst (id :: Dyn.get g.in_adj dst);
  id

let edge g e =
  if e < 0 || e >= n_edges g then invalid_arg "Digraph.edge: bad edge id";
  Dyn.get g.edge_store e

let edges g = Dyn.to_array g.edge_store
let src g e = (edge g e).src
let dst g e = (edge g e).dst

let label g e =
  let l = (edge g e).label in
  if l = "" then "e" ^ string_of_int e else l

let node_name g v =
  if v < 0 || v >= n_nodes g then invalid_arg "Digraph.node_name: bad node id";
  let n = Dyn.get g.node_names v in
  if n = "" then "v" ^ string_of_int v else n

let out_edges g v =
  if v < 0 || v >= n_nodes g then invalid_arg "Digraph.out_edges: bad node id";
  List.rev (Dyn.get g.out_adj v)

let in_edges g v =
  if v < 0 || v >= n_nodes g then invalid_arg "Digraph.in_edges: bad node id";
  List.rev (Dyn.get g.in_adj v)

let out_degree g v = List.length (out_edges g v)
let in_degree g v = List.length (in_edges g v)

let max_in_degree g =
  let best = ref 0 in
  for v = 0 to n_nodes g - 1 do
    best := max !best (in_degree g v)
  done;
  !best

let find_edge g ~src ~dst =
  let candidates = List.rev (Dyn.get g.out_adj src) in
  List.find_opt (fun e -> (edge g e).dst = dst) candidates

let edge_by_label g l =
  let m = n_edges g in
  let rec go i =
    if i >= m then raise Not_found
    else if String.equal (label g i) l then i
    else go (i + 1)
  in
  go 0

let route_is_path g route =
  let len = Array.length route in
  if len = 0 then false
  else begin
    let ok = ref (route.(0) >= 0 && route.(0) < n_edges g) in
    for i = 1 to len - 1 do
      ok :=
        !ok
        && route.(i) >= 0
        && route.(i) < n_edges g
        && (edge g route.(i - 1)).dst = (edge g route.(i)).src
    done;
    !ok
  end

let route_is_simple g route =
  route_is_path g route
  &&
  let seen = Hashtbl.create (Array.length route) in
  Array.for_all
    (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.add seen e ();
        true
      end)
    route

let route_length = Array.length

let route_nodes g route =
  if not (route_is_path g route) then
    invalid_arg "Digraph.route_nodes: not a path";
  (edge g route.(0)).src
  :: Array.to_list (Array.map (fun e -> (edge g e).dst) route)

let pp_route g fmt route =
  Format.fprintf fmt "[%s]"
    (String.concat ";" (Array.to_list (Array.map (label g) route)))

let topological_order g =
  let n = n_nodes g in
  let indeg = Array.init n (in_degree g) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Aqt_util.Dynarray_compat.create () in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Dyn.push order v;
    List.iter
      (fun e ->
        let u = (edge g e).dst in
        indeg.(u) <- indeg.(u) - 1;
        if indeg.(u) = 0 then Queue.add u queue)
      (out_edges g v)
  done;
  if Dyn.length order = n then Some (Dyn.to_array order) else None

let is_dag g = Option.is_some (topological_order g)

let reachable g v0 =
  check_node g v0 "source";
  let seen = Array.make (n_nodes g) false in
  let stack = Stack.create () in
  seen.(v0) <- true;
  Stack.push v0 stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    List.iter
      (fun e ->
        let u = (edge g e).dst in
        if not seen.(u) then begin
          seen.(u) <- true;
          Stack.push u stack
        end)
      (out_edges g v)
  done;
  seen

let shortest_path g ~src:s ~dst:d =
  check_node g s "source";
  check_node g d "destination";
  if s = d then Some [||]
  else begin
    let parent_edge = Array.make (n_nodes g) (-1) in
    let seen = Array.make (n_nodes g) false in
    let queue = Queue.create () in
    seen.(s) <- true;
    Queue.add s queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun e ->
          let u = (edge g e).dst in
          if not seen.(u) then begin
            seen.(u) <- true;
            parent_edge.(u) <- e;
            if u = d then found := true;
            Queue.add u queue
          end)
        (out_edges g v)
    done;
    if not !found then None
    else begin
      let rec collect v acc =
        if v = s then acc
        else
          let e = parent_edge.(v) in
          collect (edge g e).src (e :: acc)
      in
      Some (Array.of_list (collect d []))
    end
  end

let pp fmt g =
  Format.fprintf fmt "digraph: %d nodes, %d edges@." (n_nodes g) (n_edges g);
  for v = 0 to n_nodes g - 1 do
    let outs =
      out_edges g v
      |> List.map (fun e ->
             Printf.sprintf "%s->%s" (label g e) (node_name g (edge g e).dst))
    in
    Format.fprintf fmt "  %s: %s@." (node_name g v) (String.concat " " outs)
  done
