(** Stock network topologies for experiments.

    Each builder returns the graph plus the handles an experiment needs
    (node/edge arrays in construction order).  These are the substrate
    topologies for the stability experiments (Section 4 of the paper) and for
    the baseline comparisons; the paper's own gadget graphs live in
    [Aqt.Gadget]. *)

type line = { graph : Digraph.t; nodes : int array; edges : int array }

val line : int -> line
(** [line k] is a directed path with [k] edges [v0 -> v1 -> ... -> vk]. *)

type ring = { graph : Digraph.t; nodes : int array; edges : int array }

val ring : int -> ring
(** [ring k] is a directed cycle with [k >= 2] nodes and [k] edges;
    [edges.(i)] goes from node [i] to node [(i+1) mod k]. *)

type parallel = {
  graph : Digraph.t;
  source : int;
  sink : int;
  paths : int array array;  (** [paths.(i)] is the edge route of branch i. *)
}

val parallel_paths : branches:int -> hops:int -> parallel
(** [branches] edge-disjoint directed paths of [hops] edges each, sharing only
    the endpoints.  Requires [branches >= 1] and [hops >= 1]; with [hops = 1]
    this is a multigraph of parallel edges. *)

type grid = { graph : Digraph.t; node_at : int -> int -> int }

val grid : rows:int -> cols:int -> grid
(** Directed grid: edges go right and down.  [node_at r c] addresses nodes. *)

type tree = { graph : Digraph.t; root : int; leaves : int array }

val in_tree : depth:int -> tree
(** Complete binary in-tree: every edge points toward the root; [2^depth]
    leaves.  Used for the NTG low-rate instability baseline. *)

val random_dag :
  prng:Aqt_util.Prng.t -> nodes:int -> edge_prob_num:int -> edge_prob_den:int ->
  Digraph.t
(** Random DAG on [nodes] nodes: each forward pair (i,j), i<j, gets an edge
    with probability [edge_prob_num/edge_prob_den]. *)
