(** Stock network topologies for experiments.

    Each builder returns the graph plus the handles an experiment needs
    (node/edge arrays in construction order).  These are the substrate
    topologies for the stability experiments (Section 4 of the paper) and for
    the baseline comparisons; the paper's own gadget graphs live in
    [Aqt.Gadget]. *)

type line = { graph : Digraph.t; nodes : int array; edges : int array }

val line : int -> line
(** [line k] is a directed path with [k] edges [v0 -> v1 -> ... -> vk]. *)

type ring = { graph : Digraph.t; nodes : int array; edges : int array }

val ring : int -> ring
(** [ring k] is a directed cycle with [k >= 2] nodes and [k] edges;
    [edges.(i)] goes from node [i] to node [(i+1) mod k]. *)

type parallel = {
  graph : Digraph.t;
  source : int;
  sink : int;
  paths : int array array;  (** [paths.(i)] is the edge route of branch i. *)
}

val parallel_paths : branches:int -> hops:int -> parallel
(** [branches] edge-disjoint directed paths of [hops] edges each, sharing only
    the endpoints.  Requires [branches >= 1] and [hops >= 1]; with [hops = 1]
    this is a multigraph of parallel edges. *)

type grid = {
  graph : Digraph.t;
  rows : int;
  cols : int;
  node_at : int -> int -> int;
  right_of : int -> int -> int;
      (** Edge id of [(r,c) -> (r,c+1)]; requires [c + 1 < cols]. *)
  down_of : int -> int -> int;
      (** Edge id of [(r,c) -> (r+1,c)]; requires [r + 1 < rows]. *)
}

val grid : rows:int -> cols:int -> grid
(** Directed grid: edges go right and down.  O(E) construction with
    arithmetic (not tabulated) node and edge handles, so million-edge grids
    build without per-element allocation. *)

type torus = {
  graph : Digraph.t;
  rows : int;
  cols : int;
  node_at : int -> int -> int;
  right_of : int -> int -> int;  (** Edge id of [(r,c) -> (r,(c+1) mod cols)]. *)
  down_of : int -> int -> int;  (** Edge id of [(r,c) -> ((r+1) mod rows,c)]. *)
}

val torus : rows:int -> cols:int -> torus
(** Directed torus ([rows, cols >= 2]): the grid with wraparound, every node
    having exactly one right and one down edge — [2 * rows * cols] edges.
    Same O(E) construction discipline as {!grid}. *)

type tree = { graph : Digraph.t; root : int; leaves : int array }

val in_tree : depth:int -> tree
(** Complete binary in-tree: every edge points toward the root; [2^depth]
    leaves.  Used for the NTG low-rate instability baseline. *)

(** {1 Datacenter fabrics}

    Spine-leaf and 3-tier k-ary fat-tree topologies for the fabric
    scenario pack ([Aqt_fabric]).  Every physical link is a pair of
    directed edges (one per direction); hosts are the route endpoints and
    switches are transit-only.  Both builders expose deterministic
    ECMP-style shortest-path route enumeration over {e host indices}
    ([0 .. n_hosts-1], the index into [hosts]) and work with
    {!ecmp_index} / {!ecmp_route} for hash-based per-flow selection. *)

type fabric = {
  graph : Digraph.t;
  hosts : int array;  (** Host node ids, by host index. *)
  switches : int array;  (** All non-host node ids. *)
  routes : src:int -> dst:int -> int array array;
      (** All equal-cost shortest routes (edge-id arrays) between two
          distinct host {e indices}, in a fixed deterministic order.
          @raise Invalid_argument on out-of-range or equal indices. *)
  ecmp_degree : src:int -> dst:int -> int;
      (** Closed-form [Array.length (routes ~src ~dst)] without building
          the routes. *)
}

val spine_leaf : spines:int -> leaves:int -> hosts_per_leaf:int -> fabric
(** Two-tier Clos: every leaf links to every spine, [hosts_per_leaf]
    hosts per leaf.  [spines + leaves + leaves*hosts_per_leaf] nodes and
    [2*spines*leaves + 2*leaves*hosts_per_leaf] directed edges.  Host
    pairs under distinct leaves have exactly [spines] equal-cost 4-hop
    routes; under the same leaf, one 2-hop route.
    @raise Invalid_argument unless all three parameters are >= 1. *)

val fat_tree : k:int -> fabric
(** The canonical 3-tier k-ary fat-tree (k even, >= 2): [k] pods of
    [k/2] edge and [k/2] aggregation switches, [(k/2)^2] cores, [k^3/4]
    hosts; [3*k^3/2] directed edges.  Equal-cost shortest routes per
    host pair: 1 under the same edge switch (2 hops), [k/2] within a pod
    (4 hops), [(k/2)^2] across pods (6 hops).
    @raise Invalid_argument if [k] is odd or < 2. *)

val ecmp_index :
  seed:int -> src:int -> dst:int -> flow:int -> int -> int
(** [ecmp_index ~seed ~src ~dst ~flow n] deterministically hashes the
    tuple into [0 .. n-1] — the per-flow route selector (same tuple,
    same choice, on any platform), like a switch hashing a 5-tuple.
    @raise Invalid_argument if [n < 1]. *)

val ecmp_route :
  fabric -> seed:int -> src:int -> dst:int -> flow:int -> int array
(** The route {!ecmp_index} picks among [routes ~src ~dst]. *)

val random_dag :
  prng:Aqt_util.Prng.t -> nodes:int -> edge_prob_num:int -> edge_prob_den:int ->
  Digraph.t
(** Random DAG on [nodes] nodes: each forward pair (i,j), i<j, gets an edge
    with probability [edge_prob_num/edge_prob_den].  O(n²) — use
    {!random_dag_edges} at scale. *)

val random_dag_edges :
  prng:Aqt_util.Prng.t -> nodes:int -> edges:int -> Digraph.t
(** Seeded G(n, m) DAG: exactly [edges] edges, each a uniform forward pair
    (oriented low id -> high id; parallel edges possible).  O(E), so a
    10⁶-edge DAG builds in well under a second. *)
