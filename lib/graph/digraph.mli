(** Directed multigraphs for adversarial queuing networks.

    Nodes and edges are dense integer identifiers ([0 .. n-1] and
    [0 .. m-1]).  Parallel edges and self-loops are allowed by the data
    structure (the AQT model needs parallel edges; self-loops are rejected by
    [add_edge] because a packet route must be a simple directed path).

    Graphs are built once and then treated as immutable by the simulator; the
    builder API is imperative for convenience. *)

type t

type edge = private {
  id : int;
  src : int;
  dst : int;
  label : string;
      (** Human-readable name used in traces and error text.  [""] when the
          edge was added without an explicit label; use {!val-label} to get
          the effective name (defaults are materialised on read so that
          building large graphs does not allocate per-edge strings). *)
}

(** {1 Construction} *)

val create : unit -> t

val add_node : ?name:string -> t -> int
(** Returns the fresh node id.  [name] defaults to ["v<id>"]. *)

val add_nodes : t -> int -> int array
(** [add_nodes g k] adds [k] anonymous nodes, returning their ids. *)

val add_edge : ?label:string -> t -> src:int -> dst:int -> int
(** Returns the fresh edge id.  [label] defaults to ["e<id>"].
    @raise Invalid_argument if an endpoint is not a node or [src = dst]. *)

(** {1 Access} *)

val n_nodes : t -> int
val n_edges : t -> int
val edge : t -> int -> edge
val edges : t -> edge array
(** Fresh array, indexable by edge id. *)

val src : t -> int -> int
val dst : t -> int -> int
val label : t -> int -> string
val node_name : t -> int -> string

val out_edges : t -> int -> int list
(** Edge ids leaving a node, in insertion order. *)

val in_edges : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int

val max_in_degree : t -> int
(** The parameter α of Díaz et al.; 0 for the empty graph. *)

val find_edge : t -> src:int -> dst:int -> int option
(** Some edge from [src] to [dst] if one exists (first by id). *)

val edge_by_label : t -> string -> int
(** @raise Not_found if no edge carries that label. *)

(** {1 Routes}

    A route is an array of edge ids; it is valid when consecutive edges are
    head-to-tail and no edge repeats (simple directed path, per the model). *)

val route_is_path : t -> int array -> bool
(** Consecutive edges are incident and the route is non-empty. *)

val route_is_simple : t -> int array -> bool
(** [route_is_path] and additionally no repeated edge. *)

val route_length : int array -> int
val route_nodes : t -> int array -> int list
(** The node sequence visited by a valid route (length + 1 nodes). *)

val pp_route : t -> Format.formatter -> int array -> unit

(** {1 Analysis} *)

val is_dag : t -> bool

val topological_order : t -> int array option
(** Node ids in topological order, or [None] if the graph has a cycle. *)

val reachable : t -> int -> bool array
(** [reachable g v].(u) iff there is a directed path from [v] to [u]. *)

val shortest_path : t -> src:int -> dst:int -> int array option
(** A minimum-hop route (edge ids) from [src] to [dst] by BFS. *)

val pp : Format.formatter -> t -> unit
(** Adjacency summary, one line per node. *)
