(** Reusable workload scenarios: a topology plus a route family.

    A scenario fixes everything about a stability experiment except the
    policy and the adversary's timing: the graph, the set of routes packets
    may take, and the longest route length [d] that the Section 4 theorems
    key on.  Rates are the caller's business — pair a scenario with an
    [Aqt_adversary.Stock] adversary over [routes].

    All route families produce simple directed paths (validated). *)

type t = {
  name : string;
  graph : Aqt_graph.Digraph.t;
  routes : int array list;
  d : int;  (** Longest route length. *)
}

val line_full : hops:int -> t
(** One route spanning a directed line of [hops] edges — the maximal-d
    single-flow workload used for tightness checks. *)

val line_suffixes : hops:int -> t
(** On a line of [hops] edges, the [hops] suffix routes; they all share the
    final (hot) edge. *)

val line_windows : hops:int -> d:int -> t
(** Every [d]-hop contiguous subroute of a line of [hops] edges. *)

val ring_wrap : nodes:int -> d:int -> t
(** On a directed ring, one [d]-hop route starting at each node.  Every edge
    carries exactly [d] routes. *)

val parallel_spread : branches:int -> hops:int -> t
(** Edge-disjoint branch routes of a parallel-paths graph: [branches] routes
    that share no edge (the contention-free control arm). *)

val tree_to_root : depth:int -> t
(** Leaf-to-root routes of a complete binary in-tree: heavy overlap near the
    root, max in-degree 2. *)

val random_simple :
  prng:Aqt_util.Prng.t -> nodes:int -> n_routes:int -> t
(** Shortest paths between random node pairs of a random DAG (pairs with no
    connecting path are skipped, so the result may hold fewer than
    [n_routes] routes, but never zero — the generator retries until at least
    one route exists). *)

val standard_grid : unit -> t list
(** The scenario battery used by the experiment harness. *)

val validate : t -> bool
(** Every route is a simple path of the graph and [d] is correct. *)

val max_overlap : t -> int
(** The largest number of routes sharing one edge — running every route at
    rate [r / max_overlap] keeps the aggregate per-edge injection rate at
    most [r]. *)
