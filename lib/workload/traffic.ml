module Prng = Aqt_util.Prng
module Ratio = Aqt_util.Ratio
module Build = Aqt_graph.Build

type pattern =
  | Permutation
  | Incast of { senders : int }
  | All_to_all
  | Hotspot of { hot_num : int; hot_den : int }

let pattern_name = function
  | Permutation -> "permutation"
  | Incast { senders } -> Printf.sprintf "incast(%d)" senders
  | All_to_all -> "all-to-all"
  | Hotspot { hot_num; hot_den } ->
      Printf.sprintf "hotspot(%d/%d)" hot_num hot_den

type spec = {
  pattern : pattern;
  conns_per_pair : int;
  utilisation : Ratio.t;
  flow_cdf : (int * int) list;
  horizon : int;
  seed : int;
}

(* Flow sizes in packets, heavy-tailed in the spirit of the web-search
   CDFs the shared-buffer literature simulates (most flows are a few
   packets, a thin tail is orders of magnitude larger).  Weights are
   cumulative percentages. *)
let default_cdf = [ (30, 1); (55, 2); (75, 4); (88, 8); (96, 24); (100, 96) ]

(* A short-flow CDF for small conformance scenarios, so route diversity
   (one ECMP draw per flow) shows up within a tiny horizon. *)
let short_cdf = [ (60, 1); (90, 2); (100, 4) ]

type flow = {
  pair : int;
  conn : int;
  index : int;
  size : int;
  start : int;
  route : int array;
}

type compiled = {
  spec : spec;
  pairs : (int * int) array;
  conn_rate : Ratio.t;
  bottleneck : int;
  rate : Ratio.t;
  sigmas : int array;
  flows : flow array;
  packets : int;
  schedule : int array list array;
}

let validate_spec spec =
  if spec.conns_per_pair < 1 then
    invalid_arg "Traffic.compile: conns_per_pair must be >= 1";
  if spec.horizon < 1 then invalid_arg "Traffic.compile: horizon must be >= 1";
  if Ratio.(spec.utilisation <= Ratio.zero) then
    invalid_arg "Traffic.compile: utilisation must be positive";
  if spec.flow_cdf = [] then invalid_arg "Traffic.compile: empty flow CDF";
  let rec check prev = function
    | [] -> ()
    | (w, size) :: tl ->
        if w <= prev then
          invalid_arg "Traffic.compile: flow CDF weights must increase";
        if size < 1 then
          invalid_arg "Traffic.compile: flow sizes must be >= 1";
        check w tl
  in
  check 0 spec.flow_cdf;
  (match spec.pattern with
  | Incast { senders } ->
      if senders < 1 then
        invalid_arg "Traffic.compile: incast needs at least one sender"
  | Hotspot { hot_num; hot_den } ->
      if hot_den < 1 || hot_num < 0 || hot_num > hot_den then
        invalid_arg "Traffic.compile: hotspot fraction must be in [0, 1]"
  | Permutation | All_to_all -> ())

let draw_cdf prng cdf =
  let total = List.fold_left (fun _ (w, _) -> w) 0 cdf in
  let r = Prng.int prng total in
  let rec pick = function
    | [] -> assert false
    | (w, size) :: tl -> if r < w then size else pick tl
  in
  pick cdf

(* Sender/receiver pairs, seeded.  The permutation is one uniform random
   cycle over all hosts (shuffled.(i) -> shuffled.(i+1)) — a fixed-point
   free permutation in a single draw.  Hotspot keeps the permutation as
   its background and redirects each non-hot sender to the hot host with
   probability hot_num/hot_den. *)
let draw_pairs prng pattern n_hosts =
  if n_hosts < 2 then
    invalid_arg "Traffic.compile: need at least two hosts";
  let order = Array.init n_hosts Fun.id in
  Prng.shuffle prng order;
  match pattern with
  | Permutation ->
      Array.init n_hosts (fun i -> (order.(i), order.((i + 1) mod n_hosts)))
  | Incast { senders } ->
      let dst = order.(0) in
      let s = min senders (n_hosts - 1) in
      Array.init s (fun i -> (order.(i + 1), dst))
  | All_to_all ->
      let pairs = ref [] in
      for i = n_hosts - 1 downto 0 do
        for j = n_hosts - 1 downto 0 do
          if i <> j then pairs := (i, j) :: !pairs
        done
      done;
      Array.of_list !pairs
  | Hotspot { hot_num; hot_den } ->
      let hot = order.(0) in
      Array.init n_hosts (fun i ->
          let s = order.(i) and next = order.((i + 1) mod n_hosts) in
          if s <> hot && Prng.bernoulli prng ~num:hot_num ~den:hot_den then
            (s, hot)
          else (s, next))

let compile ~n_hosts ~m ~(routes : src:int -> dst:int -> int array array) spec
    =
  validate_spec spec;
  let prng = Prng.create spec.seed in
  let pairs = draw_pairs (Prng.split prng) spec.pattern n_hosts in
  let cpp = spec.conns_per_pair in
  (* Shape arrivals to the target utilisation of the busiest host access
     link: every route of a pair starts on the sender's uplink and ends
     on the receiver's downlink, so those per-host connection counts are
     exact whatever ECMP picks in the middle. *)
  let upl = Array.make n_hosts 0 and dnl = Array.make n_hosts 0 in
  Array.iter
    (fun (s, r) ->
      upl.(s) <- upl.(s) + cpp;
      dnl.(r) <- dnl.(r) + cpp)
    pairs;
  let bottleneck =
    max (Array.fold_left max 1 upl) (Array.fold_left max 1 dnl)
  in
  let conn_rate =
    Ratio.min Ratio.one
      (Ratio.div spec.utilisation (Ratio.of_int bottleneck))
  in
  (* Per-conn pacing is a floor-of-fluid token bucket: packets released
     by the end of step t number floor(conn_rate * t), so any interval
     of any length carries at most conn_rate * len + 1 of them, and any
     subsequence (the packets of the flows ECMP happens to route over
     one edge) at most the same.  Summing over the connections whose
     candidate routes can cross an edge gives the declared per-edge
     budget below, which Rate_check.check_local re-verifies. *)
  let released t = Ratio.floor_mul conn_rate t in
  let k = Array.make m 0 in
  let flows = ref [] and n_flows = ref 0 in
  let schedule = Array.make spec.horizon [] in
  let total_packets = ref 0 in
  Array.iteri
    (fun pair (src, dst) ->
      let candidates = routes ~src ~dst in
      let seen = Array.make m false in
      Array.iter
        (fun route ->
          Array.iter (fun e -> seen.(e) <- true) route)
        candidates;
      for conn = 0 to cpp - 1 do
        Array.iteri (fun e s -> if s then k.(e) <- k.(e) + 1) seen;
        let c_global = (pair * cpp) + conn in
        let sizes = Prng.stream prng (c_global + 1) in
        let budget = released spec.horizon in
        total_packets := !total_packets + budget;
        (* Partition this connection's packet stream into flows; each
           flow draws its size from the CDF and its route from the
           seeded ECMP hash. *)
        let flow_of = Array.make budget [||] in
        let filled = ref 0 and index = ref 0 in
        while !filled < budget do
          let size = min (draw_cdf sizes spec.flow_cdf) (budget - !filled) in
          let route =
            candidates.(Build.ecmp_index ~seed:spec.seed ~src ~dst
                          ~flow:((c_global * 8191) + !index)
                          (Array.length candidates))
          in
          (* start is patched once release times are known. *)
          flows :=
            { pair; conn; index = !index; size; start = 0; route } :: !flows;
          incr n_flows;
          for i = !filled to !filled + size - 1 do
            flow_of.(i) <- route
          done;
          filled := !filled + size;
          incr index
        done;
        for t = 1 to spec.horizon do
          let from = released (t - 1) and until = released t in
          for i = from to until - 1 do
            schedule.(t - 1) <- flow_of.(i) :: schedule.(t - 1)
          done
        done
      done)
    pairs;
  (* Steps were built by prepending; restore pair order within a step. *)
  let schedule = Array.map List.rev schedule in
  (* Patch flow start times: packet p of a connection releases at the
     first t with released(t) > p. *)
  let flows = Array.of_list (List.rev !flows) in
  let flows =
    let cursor = Hashtbl.create 16 in
    Array.map
      (fun f ->
        let key = (f.pair, f.conn) in
        let offset =
          match Hashtbl.find_opt cursor key with Some o -> o | None -> 0
        in
        Hashtbl.replace cursor key (offset + f.size);
        let rec first_release t =
          if released t > offset then t else first_release (t + 1)
        in
        { f with start = first_release 1 })
      flows
  in
  let k_max = Array.fold_left max 1 k in
  let rate = Ratio.mul conn_rate (Ratio.of_int k_max) in
  {
    spec;
    pairs;
    conn_rate;
    bottleneck;
    rate;
    sigmas = k;
    flows;
    packets = !total_packets;
    schedule;
  }

let describe c =
  Printf.sprintf
    "%s: %d pairs x %d conns, util %s of bottleneck %d -> conn rate %s, %d \
     flows, %d packets over %d steps (rho=%s, sigma_max=%d)"
    (pattern_name c.spec.pattern) (Array.length c.pairs)
    c.spec.conns_per_pair
    (Ratio.to_string c.spec.utilisation)
    c.bottleneck
    (Ratio.to_string c.conn_rate)
    (Array.length c.flows) c.packets c.spec.horizon (Ratio.to_string c.rate)
    (Array.fold_left max 0 c.sigmas)

let to_workload ~name ~graph c =
  let seen = Hashtbl.create 64 in
  let routes = ref [] in
  Array.iter
    (fun f ->
      let key = Array.to_list f.route in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        routes := f.route :: !routes
      end)
    c.flows;
  let routes = List.rev !routes in
  let d =
    List.fold_left (fun acc r -> max acc (Array.length r)) 0 routes
  in
  { Workloads.name; graph; routes; d }
