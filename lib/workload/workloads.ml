module D = Aqt_graph.Digraph
module B = Aqt_graph.Build

type t = {
  name : string;
  graph : D.t;
  routes : int array list;
  d : int;
}

let d_of routes =
  List.fold_left (fun acc r -> max acc (Array.length r)) 0 routes

let make name graph routes = { name; graph; routes; d = d_of routes }

let line_full ~hops =
  let l = B.line hops in
  make (Printf.sprintf "line%d/full" hops) l.graph [ l.edges ]

let line_suffixes ~hops =
  let l = B.line hops in
  let routes = List.init hops (fun j -> Array.sub l.edges j (hops - j)) in
  make (Printf.sprintf "line%d/suffixes" hops) l.graph routes

let line_windows ~hops ~d =
  if d > hops then invalid_arg "Workloads.line_windows: d > hops";
  let l = B.line hops in
  let routes = List.init (hops - d + 1) (fun j -> Array.sub l.edges j d) in
  make (Printf.sprintf "line%d/windows%d" hops d) l.graph routes

let ring_wrap ~nodes ~d =
  if d >= nodes then invalid_arg "Workloads.ring_wrap: d must be < nodes";
  let r = B.ring nodes in
  let routes =
    List.init nodes (fun i ->
        Array.init d (fun j -> r.edges.((i + j) mod nodes)))
  in
  make (Printf.sprintf "ring%d/wrap%d" nodes d) r.graph routes

let parallel_spread ~branches ~hops =
  let p = B.parallel_paths ~branches ~hops in
  make
    (Printf.sprintf "parallel%dx%d" branches hops)
    p.graph
    (Array.to_list p.paths)

let tree_to_root ~depth =
  let t = B.in_tree ~depth in
  let routes =
    Array.to_list
      (Array.map
         (fun leaf ->
           match D.shortest_path t.graph ~src:leaf ~dst:t.root with
           | Some route -> route
           | None -> assert false)
         t.leaves)
  in
  make (Printf.sprintf "tree%d/to-root" depth) t.graph routes

let random_simple ~prng ~nodes ~n_routes =
  let rec attempt tries =
    let graph =
      B.random_dag ~prng ~nodes ~edge_prob_num:1 ~edge_prob_den:3
    in
    let routes = ref [] in
    for _ = 1 to n_routes do
      let a = Aqt_util.Prng.int prng nodes
      and b = Aqt_util.Prng.int prng nodes in
      let src = min a b and dst = max a b in
      if src <> dst then
        match D.shortest_path graph ~src ~dst with
        | Some route when Array.length route > 0 -> routes := route :: !routes
        | _ -> ()
    done;
    match !routes with
    | [] when tries < 20 -> attempt (tries + 1)
    | [] -> invalid_arg "Workloads.random_simple: no routes found"
    | routes -> make (Printf.sprintf "random%d" nodes) graph routes
  in
  attempt 0

let standard_grid () =
  [
    line_full ~hops:5;
    line_suffixes ~hops:5;
    line_windows ~hops:8 ~d:4;
    ring_wrap ~nodes:12 ~d:5;
    parallel_spread ~branches:4 ~hops:3;
    tree_to_root ~depth:3;
  ]

let max_overlap t =
  let counts = Array.make (D.n_edges t.graph) 0 in
  List.iter
    (fun route -> Array.iter (fun e -> counts.(e) <- counts.(e) + 1) route)
    t.routes;
  Array.fold_left max 0 counts

let validate t =
  t.d = d_of t.routes
  && t.routes <> []
  && List.for_all (fun route -> D.route_is_simple t.graph route) t.routes
