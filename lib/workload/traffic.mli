(** Flow-level datacenter workloads compiled to admissible schedules.

    The layer between a fabric topology ({!Aqt_graph.Build.fabric}) and
    the engine: sender/receiver pairs drawn from a communication
    pattern, per-pair connections, flow sizes from an empirical CDF,
    per-flow ECMP route selection via {!Aqt_graph.Build.ecmp_index}, and
    arrivals shaped to a target utilisation of the busiest host access
    link — all compiled down to a concrete per-step injection schedule.

    The compiled schedule is {e admissible by construction} in the
    locally bursty sense of arXiv:2208.09522: each connection is paced
    as a floor-of-fluid token bucket at [conn_rate], so over any
    interval of [len] steps each edge [e] receives at most
    [rate * len + sigmas.(e)] packets, where [sigmas.(e)] counts the
    connections whose candidate ECMP routes can cross [e] and
    [rate = k_max * conn_rate].  [Aqt_adversary.Rate_check.check_local]
    re-verifies the bound on the actual injection log — the fabric check
    family's admissibility obligation.

    Everything is a deterministic function of [spec.seed]: the same
    spec compiles to the same schedule forever, on any machine. *)

type pattern =
  | Permutation  (** One uniform random cycle: every host sends to one
                     other host, no fixed points. *)
  | Incast of { senders : int }
      (** [senders] distinct hosts all send to one receiver (clamped to
          [n_hosts - 1]). *)
  | All_to_all  (** Every ordered host pair. *)
  | Hotspot of { hot_num : int; hot_den : int }
      (** Permutation background; each non-hot sender redirects to one
          hot receiver with probability [hot_num/hot_den]. *)

val pattern_name : pattern -> string

type spec = {
  pattern : pattern;
  conns_per_pair : int;  (** Parallel connections per sender/receiver pair. *)
  utilisation : Aqt_util.Ratio.t;
      (** Target load on the busiest host access link; the per-connection
          rate is [utilisation / bottleneck], clamped to 1. *)
  flow_cdf : (int * int) list;
      (** [(cumulative weight, flow size in packets)], weights strictly
          increasing; the last weight is the total. *)
  horizon : int;  (** Steps of injection. *)
  seed : int;
}

val default_cdf : (int * int) list
(** Heavy-tailed web-search-style flow sizes (1 .. 96 packets). *)

val short_cdf : (int * int) list
(** 1-4 packet flows, for small conformance scenarios. *)

type flow = {
  pair : int;  (** Index into {!compiled.pairs}. *)
  conn : int;  (** Connection index within the pair. *)
  index : int;  (** Flow sequence number within the connection. *)
  size : int;  (** Packets. *)
  start : int;  (** Release step of the flow's first packet. *)
  route : int array;  (** The ECMP route every packet of the flow takes. *)
}

type compiled = {
  spec : spec;
  pairs : (int * int) array;  (** (sender, receiver) host indices. *)
  conn_rate : Aqt_util.Ratio.t;  (** Per-connection pacing rate. *)
  bottleneck : int;
      (** Connections sharing the busiest host access link — the
          utilisation normaliser. *)
  rate : Aqt_util.Ratio.t;  (** Declared aggregate rho (= k_max * conn_rate). *)
  sigmas : int array;  (** Declared per-edge burst budgets. *)
  flows : flow array;
  packets : int;  (** Total packets scheduled. *)
  schedule : int array list array;
      (** [schedule.(t)] holds the routes injected in step [t + 1]. *)
}

val compile :
  n_hosts:int ->
  m:int ->
  routes:(src:int -> dst:int -> int array array) ->
  spec ->
  compiled
(** Compile a workload over [n_hosts] hosts on a graph with [m] edges,
    with [routes] enumerating the equal-cost candidates per host pair
    (typically {!Aqt_graph.Build.fabric.routes}).
    @raise Invalid_argument on a malformed spec or [n_hosts < 2]. *)

val describe : compiled -> string
(** One human-readable line: pattern, pair/conn counts, rates, budgets. *)

val to_workload :
  name:string -> graph:Aqt_graph.Digraph.t -> compiled -> Workloads.t
(** The distinct routes the compiled flows use, as a reusable
    {!Workloads.t} scenario (validated like any other route family). *)
