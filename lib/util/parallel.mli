(** Embarrassingly parallel map over OCaml 5 domains.

    Experiment grids (policy x rate x scenario) are independent
    single-threaded simulations, so the harness fans them out across
    domains.  Tasks must not share mutable state; every simulator object in
    this repository is created inside the task closure, so runs are isolated
    by construction. *)

val map :
  ?workers:int ->
  ?chunk:int ->
  ?on_done:(int -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~workers f xs] applies [f] to every element, preserving order.
    [workers] defaults to [Domain.recommended_domain_count - 1], at least 1;
    with one worker it degrades to [List.map].  Exceptions raised by [f] are
    re-raised in the caller (the first one encountered in input order), with
    the backtrace captured at the failure site inside the worker domain —
    not the useless one of the re-raise.

    [chunk] (default 1) makes each idle worker claim that many consecutive
    tasks at a time: larger chunks amortize contention on the shared task
    counter when tasks are tiny, at the cost of coarser load balancing.

    [on_done] is called with the total number of completed tasks (1-based,
    each value exactly once) after each task finishes; long grids use it to
    report progress.  It may be invoked concurrently from worker domains,
    so it must be safe to call from any domain. *)
