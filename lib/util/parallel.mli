(** Embarrassingly parallel map over OCaml 5 domains.

    Experiment grids (policy x rate x scenario) are independent
    single-threaded simulations, so the harness fans them out across
    domains.  Tasks must not share mutable state; every simulator object in
    this repository is created inside the task closure, so runs are isolated
    by construction. *)

val map :
  ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~workers f xs] applies [f] to every element, preserving order.
    [workers] defaults to [Domain.recommended_domain_count - 1], at least 1;
    with one worker it degrades to [List.map].  Exceptions raised by [f] are
    re-raised in the caller (the first one encountered in input order). *)
