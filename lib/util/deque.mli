(** Double-ended queues on a circular growable array.

    O(1) amortized push/pop at both ends, O(1) random access from the front.
    Used as the buffer representation for arrival-ordered queuing policies
    (FIFO/LIFO), where a priority heap's O(log n) reordering is wasted. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a
(** @raise Not_found if empty. *)

val pop_back : 'a t -> 'a
(** @raise Not_found if empty. *)

val peek_front : 'a t -> 'a
(** @raise Not_found if empty. *)

val peek_back : 'a t -> 'a
(** @raise Not_found if empty. *)

val pop_front_opt : 'a t -> 'a option
val pop_back_opt : 'a t -> 'a option
val peek_front_opt : 'a t -> 'a option

val peek_back_opt : 'a t -> 'a option
(** Option-returning variants of the above: [None] on an empty deque instead
    of raising, so callers never use exceptions as dequeue control flow. *)

val get : 'a t -> int -> 'a
(** [get d i] is the i-th element from the front.
    @raise Invalid_argument out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val to_list : 'a t -> 'a list
(** Front to back. *)

val clear : 'a t -> unit
