(** Minimal self-contained JSON.

    The container ships no JSON library, so the repo carries its own
    emitter and recursive-descent parser.  The dialect is plain RFC 8259
    minus surrogate-pair refinements: good enough for round-tripping the
    campaign harness's cache files and journal lines and the serve
    layer's request/response bodies, which is all it is used for.
    Non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering (JSONL-friendly). *)

val of_string : string -> t
(** @raise Failure on malformed input, with a byte offset in the message. *)

(** {2 Accessors}

    [member] is total; the [to_*] projections raise [Failure] on a
    constructor mismatch.  [to_float] accepts [Int] (JSON does not
    distinguish), and [get] raises on a missing key. *)

val member : string -> t -> t option
val get : string -> t -> t
val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_list : t -> t list
val to_obj : t -> (string * t) list
