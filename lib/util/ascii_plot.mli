(** Minimal ASCII line/scatter plots for terminal experiment output.

    Used by examples and the benchmark harness to show queue-size trajectories
    (the paper's "figures" are graphs and growth curves).  Not a plotting
    library: fixed-size character raster, linear or log-y scaling, one or two
    series. *)

type t

val create : ?width:int -> ?height:int -> ?logy:bool -> title:string -> unit -> t
(** Default raster is 72x20 characters. [logy] plots log10(max 1 y). *)

val add_series : t -> glyph:char -> (float * float) array -> unit

val render : t -> string
val print : t -> unit
