(** Compact histograms of nonnegative integers.

    Power-of-two buckets: values [0], [1], [2-3], [4-7], ... — constant
    memory regardless of sample count, suitable for always-on latency
    accounting in the simulator.  Percentile estimates are upper bounds
    (the top of the containing bucket), exact for values 0 and 1. *)

type t

val create : unit -> t
val record : t -> int -> unit
(** @raise Invalid_argument on negative values. *)

val count : t -> int
val max_value : t -> int
(** Exact maximum recorded value; 0 if empty. *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0, 1]: an upper bound on the p-quantile
    (the upper edge of the bucket containing it, clamped to [max_value]).
    0 if empty. *)

val mean_upper : t -> float
(** Upper-bound estimate of the mean (each sample counted at its bucket
    top). *)

val buckets : t -> (int * int * int) list
(** [(lo, hi, count)] for each nonempty bucket, ascending. *)

val merge_into : into:t -> t -> unit
(** Bucket-wise accumulation of [src] into [into].  Counts are additive and
    the maximum is the max of the two, so folding per-domain histograms at a
    barrier reproduces exactly the histogram of a sequential run. *)

val reset : t -> unit
(** Zero every bucket, the total and the maximum. *)
