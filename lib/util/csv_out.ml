type sink = Channel of out_channel | Buf of Buffer.t
type t = { sink : sink }

let to_channel oc = { sink = Channel oc }
let to_buffer b = { sink = Buf b }

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let emit t s =
  match t.sink with
  | Channel oc -> output_string oc s
  | Buf b -> Buffer.add_string b s

let write_row t cells =
  emit t (String.concat "," (List.map quote cells));
  emit t "\n"

let write_rows t rows = List.iter (write_row t) rows

let with_file file ~headers body =
  let oc = open_out file in
  let t = to_channel oc in
  match
    write_row t headers;
    body t
  with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e
