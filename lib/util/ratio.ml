type t = { p : int; q : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make p q =
  if q = 0 then invalid_arg "Ratio.make: zero denominator";
  let sign = if q < 0 then -1 else 1 in
  let p = sign * p and q = sign * q in
  let g = gcd (abs p) q in
  if g = 0 then { p = 0; q = 1 } else { p = p / g; q = q / g }

let of_int n = { p = n; q = 1 }
let zero = { p = 0; q = 1 }
let one = { p = 1; q = 1 }
let half = { p = 1; q = 2 }
let num r = r.p
let den r = r.q
let add a b = make ((a.p * b.q) + (b.p * a.q)) (a.q * b.q)
let sub a b = make ((a.p * b.q) - (b.p * a.q)) (a.q * b.q)
let mul a b = make (a.p * b.p) (a.q * b.q)

let div a b =
  if b.p = 0 then raise Division_by_zero;
  make (a.p * b.q) (a.q * b.p)

let neg a = { a with p = -a.p }

let inv a =
  if a.p = 0 then raise Division_by_zero;
  make a.q a.p

let mul_int a k = make (a.p * k) a.q
let compare a b = Stdlib.compare (a.p * b.q) (b.p * a.q)
let equal a b = a.p = b.p && a.q = b.q
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Floor division that is correct for negative numerators. *)
let fdiv p q = if p >= 0 then p / q else -(((-p) + q - 1) / q)
let cdiv p q = -fdiv (-p) q
let floor r = fdiv r.p r.q
let ceil r = cdiv r.p r.q
let floor_mul r k = fdiv (r.p * k) r.q
let ceil_mul r k = cdiv (r.p * k) r.q
let to_float r = float_of_int r.p /. float_of_int r.q

let of_float_approx ?(max_den = 10_000) x =
  if Float.is_nan x || Float.is_integer x then of_int (int_of_float x)
  else begin
    (* Continued-fraction convergents h_k / k_k until the denominator cap. *)
    let neg_input = Stdlib.( < ) x 0.0 in
    let x0 = Float.abs x in
    (* Convergents h_n/k_n with h_n = a_n h_(n-1) + h_(n-2); seeds are
       (h_(-1), k_(-1)) = (1, 0) and (h_(-2), k_(-2)) = (0, 1). *)
    let rec go x (h1, k1) (h0, k0) =
      let a = int_of_float (Float.floor x) in
      let h = (a * h1) + h0 and k = (a * k1) + k0 in
      if k > max_den then (h1, k1)
      else
        let frac = x -. Float.floor x in
        if Stdlib.( < ) frac 1e-12 then (h, k)
        else go (1.0 /. frac) (h, k) (h1, k1)
    in
    let h, k = go x0 (1, 0) (0, 1) in
    let r = make h (Stdlib.max k 1) in
    if neg_input then neg r else r
  end

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let pp fmt r =
  if r.q = 1 then Format.fprintf fmt "%d" r.p
  else Format.fprintf fmt "%d/%d" r.p r.q

let to_string r = Format.asprintf "%a" pp r
