type align = Left | Right

type t = {
  headers : string list;
  ncols : int;
  mutable rows : string list list; (* reversed *)
  mutable aligns : align array;
}

let create ~headers =
  let ncols = List.length headers in
  { headers; ncols; rows = []; aligns = Array.make ncols Right }

let add_row t row =
  if List.length row <> t.ncols then
    invalid_arg
      (Printf.sprintf "Tbl.add_row: expected %d cells, got %d" t.ncols
         (List.length row));
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let set_align t aligns =
  if List.length aligns <> t.ncols then invalid_arg "Tbl.set_align";
  t.aligns <- Array.of_list aligns

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let consider row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  List.iter consider rows;
  let buf = Buffer.create 256 in
  let emit_row ?(align_all = None) row =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        let a = match align_all with Some a -> a | None -> t.aligns.(i) in
        Buffer.add_string buf (pad a widths.(i) c))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row ~align_all:(Some Left) t.headers;
  Array.iter
    (fun w -> Buffer.add_string buf (String.make w '-' ^ "  "))
    widths;
  (* Trim the trailing separator spaces for tidiness. *)
  let s = Buffer.contents buf in
  let s = String.sub s 0 (String.length s - 2) ^ "\n" in
  Buffer.clear buf;
  Buffer.add_string buf s;
  List.iter (fun row -> emit_row row) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fi = string_of_int
let ff ?(dec = 3) x = Printf.sprintf "%.*f" dec x
let fb b = if b then "yes" else "no"
let fr = Ratio.to_string
