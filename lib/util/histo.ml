type t = {
  counts : int array; (* bucket i holds values in [2^(i-1), 2^i - 1]; bucket 0 = {0} *)
  mutable total : int;
  mutable max_value : int;
}

let n_buckets = 63

let create () =
  { counts = Array.make n_buckets 0; total = 0; max_value = 0 }

let bucket_of v =
  if v = 0 then 0
  else begin
    (* 1 + position of the highest set bit: v in [2^(i-1), 2^i - 1] -> i. *)
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    go 0 v
  end

let bucket_range i =
  if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let record t v =
  if v < 0 then invalid_arg "Histo.record: negative value";
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.total <- t.total + 1;
  if v > t.max_value then t.max_value <- v

let count t = t.total
let max_value t = t.max_value

(* Bucket-wise accumulation: used by the parallel engine backend to fold
   per-domain histograms into one at a step barrier.  Log-bucket counts are
   additive, so the merged histogram is exactly the one a sequential run
   would have built record by record. *)
let merge_into ~into src =
  Array.iteri
    (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
    src.counts;
  into.total <- into.total + src.total;
  if src.max_value > into.max_value then into.max_value <- src.max_value

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.max_value <- 0

let percentile t p =
  if t.total = 0 then 0
  else begin
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let target = int_of_float (Float.ceil (p *. float_of_int t.total)) in
    let target = max 1 target in
    let rec go i acc =
      if i >= n_buckets then t.max_value
      else begin
        let acc = acc + t.counts.(i) in
        if acc >= target then min (snd (bucket_range i)) t.max_value
        else go (i + 1) acc
      end
    in
    go 0 0
  end

let mean_upper t =
  if t.total = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    Array.iteri
      (fun i c ->
        if c > 0 then
          sum := !sum +. (float_of_int c *. float_of_int (snd (bucket_range i))))
      t.counts;
    !sum /. float_of_int t.total
  end

let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bucket_range i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc
