(** Exact rational arithmetic on machine integers.

    Rates in the adversarial queuing model are rationals [p/q]; all
    capacity-constraint checks in this repository are performed exactly with
    this module, never with floats.  Values are kept normalized: [q > 0] and
    [gcd |p| q = 1].  Overflow is the caller's concern; the magnitudes used by
    the simulator (packet counts times denominators) stay far below 2^62. *)

type t = private { p : int; q : int }

val make : int -> int -> t
(** [make p q] is the normalized rational [p/q].  @raise Invalid_argument if
    [q = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val half : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on [zero]. *)

val mul_int : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> int
(** Largest integer [<= p/q]; correct for negative values too. *)

val ceil : t -> int
(** Smallest integer [>= p/q]. *)

val floor_mul : t -> int -> int
(** [floor_mul r k] is [floor (r * k)] computed without normalization. *)

val ceil_mul : t -> int -> int
(** [ceil_mul r k] is [ceil (r * k)]. *)

val to_float : t -> float

val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation with denominator [<= max_den] (default 10_000),
    by continued fractions.  Used only to parse command-line rates. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
