type series = { glyph : char; points : (float * float) array }

type t = {
  width : int;
  height : int;
  logy : bool;
  title : string;
  mutable series : series list;
}

let create ?(width = 72) ?(height = 20) ?(logy = false) ~title () =
  { width; height; logy; title; series = [] }

let add_series t ~glyph points = t.series <- { glyph; points } :: t.series

let yval t y = if t.logy then log10 (Float.max 1.0 y) else y

let render t =
  let all =
    List.concat_map (fun s -> Array.to_list s.points) t.series
  in
  match all with
  | [] -> t.title ^ "\n(empty plot)\n"
  | _ ->
      let xs = List.map fst all and ys = List.map (fun (_, y) -> yval t y) all in
      let xmin = List.fold_left Float.min Float.infinity xs in
      let xmax = List.fold_left Float.max Float.neg_infinity xs in
      let ymin = List.fold_left Float.min Float.infinity ys in
      let ymax = List.fold_left Float.max Float.neg_infinity ys in
      let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
      let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
      let raster = Array.make_matrix t.height t.width ' ' in
      let plot s =
        Array.iter
          (fun (x, y) ->
            let y = yval t y in
            let col =
              int_of_float ((x -. xmin) /. xspan *. float_of_int (t.width - 1))
            in
            let row =
              t.height - 1
              - int_of_float
                  ((y -. ymin) /. yspan *. float_of_int (t.height - 1))
            in
            if col >= 0 && col < t.width && row >= 0 && row < t.height then
              raster.(row).(col) <- s.glyph)
          s.points
      in
      List.iter plot (List.rev t.series);
      let buf = Buffer.create ((t.width + 12) * (t.height + 3)) in
      Buffer.add_string buf t.title;
      Buffer.add_char buf '\n';
      let ylabel row =
        let frac = float_of_int (t.height - 1 - row) /. float_of_int (t.height - 1) in
        let v = ymin +. (frac *. yspan) in
        let v = if t.logy then 10.0 ** v else v in
        Printf.sprintf "%10.3g" v
      in
      for row = 0 to t.height - 1 do
        let label =
          if row = 0 || row = t.height - 1 || row = t.height / 2 then ylabel row
          else String.make 10 ' '
        in
        Buffer.add_string buf label;
        Buffer.add_string buf " |";
        Buffer.add_string buf (String.init t.width (fun c -> raster.(row).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (String.make 11 ' ');
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make t.width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%10.3g%s%.3g\n" xmin
           (String.make (max 1 (t.width - 8)) ' ')
           xmax);
      Buffer.contents buf

let print t = print_string (render t)
