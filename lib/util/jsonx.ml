type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> add_escaped buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    failwith (Printf.sprintf "Jsonx: %s at offset %d" msg !pos)
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let lit w v =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    let continue = ref true in
    while !pos < n && !continue do
      (match s.[!pos] with
      | '0' .. '9' | '-' | '+' -> ()
      | '.' | 'e' | 'E' -> is_float := true
      | _ -> continue := false);
      if !continue then incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "dangling escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            add_utf8 buf code
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some _ -> fail "unexpected character"
    | None -> fail "unexpected end of input"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        items := value () :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            go ()
        | Some ']' -> incr pos
        | _ -> fail "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else begin
      let items = ref [] in
      let rec go () =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        items := (k, v) :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            go ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !items)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let get k v =
  match member k v with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Jsonx: missing key %S" k)

let to_bool = function
  | Bool b -> b
  | _ -> failwith "Jsonx: expected bool"

let to_int = function Int i -> i | _ -> failwith "Jsonx: expected int"

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> failwith "Jsonx: expected number"

let to_str = function Str s -> s | _ -> failwith "Jsonx: expected string"
let to_list = function List vs -> vs | _ -> failwith "Jsonx: expected array"
let to_obj = function Obj kvs -> kvs | _ -> failwith "Jsonx: expected object"
