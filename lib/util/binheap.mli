(** Binary min-heaps with integer-pair keys.

    Link buffers in the simulator are heaps keyed by [(primary, tiebreak)]:
    the queuing policy computes [primary] when a packet enters the buffer and
    [tiebreak] is the per-buffer arrival sequence number, so equal-priority
    packets leave in FIFO order and every run is deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> key:int -> tie:int -> 'a -> unit
(** Insert with priority [(key, tie)]; smaller pairs (lexicographically) pop
    first. *)

val min_elt : 'a t -> 'a
(** @raise Not_found if empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the minimum.  @raise Not_found if empty. *)

val min_elt_opt : 'a t -> 'a option
val pop_min_opt : 'a t -> 'a option
(** Option-returning variants: [None] on an empty heap instead of raising. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterates in arbitrary (heap) order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
(** Arbitrary order. *)

val to_sorted_list : 'a t -> 'a list
(** Ascending priority order; O(n log n), does not disturb the heap. *)

val clear : 'a t -> unit
