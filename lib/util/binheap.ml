type 'a entry = { key : int; tie : int; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length h = h.len
let is_empty h = h.len = 0
let lt a b = a.key < b.key || (a.key = b.key && a.tie < b.tie)

let grow h e =
  let cap = Array.length h.data in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let ndata = Array.make ncap e in
  Array.blit h.data 0 ndata 0 h.len;
  h.data <- ndata

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && lt h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.len && lt h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~key ~tie value =
  let e = { key; tie; value } in
  if h.len = Array.length h.data then grow h e;
  h.data.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let min_elt h = if h.len = 0 then raise Not_found else h.data.(0).value

let pop_min h =
  if h.len = 0 then raise Not_found;
  let top = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    sift_down h 0
  end;
  top.value

let min_elt_opt h = if h.len = 0 then None else Some h.data.(0).value
let pop_min_opt h = if h.len = 0 then None else Some (pop_min h)

let iter f h =
  for i = 0 to h.len - 1 do
    f h.data.(i).value
  done

let fold f acc h =
  let acc = ref acc in
  for i = 0 to h.len - 1 do
    acc := f !acc h.data.(i).value
  done;
  !acc

let to_list h = List.init h.len (fun i -> h.data.(i).value)

let to_sorted_list h =
  let entries = Array.sub h.data 0 h.len in
  Array.sort (fun a b -> if lt a b then -1 else if lt b a then 1 else 0) entries;
  Array.to_list (Array.map (fun e -> e.value) entries)

let clear h = h.len <- 0
