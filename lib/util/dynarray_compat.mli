(** Growable arrays.

    OCaml 5.1 predates [Stdlib.Dynarray]; this is the small subset the
    simulator needs, with amortized O(1) [push] and O(1) random access. *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t
(** [make n x] is a dynarray holding [n] copies of [x]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element.  @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val swap_remove : 'a t -> int -> 'a
(** [swap_remove d i] removes index [i] in O(1) by moving the last element into
    its place; returns the removed element.  Order is not preserved. *)
