(** Deterministic pseudo-random numbers (splitmix64).

    Every randomized component of the simulator takes an explicit [Prng.t] so
    that experiments are reproducible bit-for-bit across runs and platforms.
    Splitmix64 passes BigCrush, needs 64 bits of state, and is trivially
    splittable, which keeps independent experiment arms decorrelated. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** A statistically independent generator derived from (and advancing) [t]. *)

val stream : t -> int -> t
(** [stream t i] is the [i]-th of a family of statistically independent
    generators derived from [t] {e without} advancing it: a jump, not a
    draw.  Unlike repeated {!split}, the result depends only on [t]'s
    current state and [i], so a worker pool can hand worker [i] its own
    decorrelated stream regardless of the order workers start in, and a
    re-run reproduces every per-worker sequence bit-for-bit.
    @raise Invalid_argument if [i < 0]. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0] required.
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> num:int -> den:int -> bool
(** [bernoulli t ~num ~den] is true with probability exactly [num/den]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
