type 'b outcome = Value of 'b | Failed of exn * Printexc.raw_backtrace

let map ?workers ?(chunk = 1) ?on_done f xs =
  let n = List.length xs in
  let workers =
    match workers with
    | Some w when w >= 1 -> w
    | Some _ -> invalid_arg "Parallel.map: workers must be >= 1"
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if chunk < 1 then invalid_arg "Parallel.map: chunk must be >= 1";
  let progress =
    match on_done with Some g -> g | None -> fun _ -> ()
  in
  if n = 0 then []
  else if workers = 1 || n = 1 then
    List.mapi
      (fun i x ->
        let r = f x in
        progress (i + 1);
        r)
      xs
  else begin
    let tasks = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let worker () =
      let rec go () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            (* Capture the backtrace at the failure site: the exception is
               re-raised on the caller's domain, where the original trace
               would otherwise be lost. *)
            let r =
              try Value (f tasks.(i))
              with e -> Failed (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- Some r;
            progress (1 + Atomic.fetch_and_add completed 1)
          done;
          go ()
        end
      in
      go ()
    in
    let domains =
      List.init (min workers n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Value v) -> v
         | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end
