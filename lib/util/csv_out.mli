(** CSV emission for experiment results.

    Every experiment in the benchmark harness can mirror its table to a CSV
    file so results can be post-processed outside the repository.  Quoting
    follows RFC 4180 (fields containing commas, quotes or newlines are quoted,
    embedded quotes doubled). *)

type t

val quote : string -> string
(** RFC-4180 escaping of a single field: returned verbatim unless it
    contains a comma, double quote, CR or LF, in which case it is wrapped
    in double quotes with embedded quotes doubled.  Exposed so other
    emitters (e.g. campaign summaries) quote identically. *)

val to_channel : out_channel -> t
val to_buffer : Buffer.t -> t
val write_row : t -> string list -> unit
val write_rows : t -> string list list -> unit

val with_file : string -> headers:string list -> (t -> unit) -> unit
(** Creates/truncates [file], writes the header row, runs the body, closes. *)
