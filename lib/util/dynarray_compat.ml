type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let make n x = { data = Array.make (max n 1) x; len = n }
let length d = d.len
let is_empty d = d.len = 0

let get d i =
  if i < 0 || i >= d.len then invalid_arg "Dynarray_compat.get";
  Array.unsafe_get d.data i

let set d i x =
  if i < 0 || i >= d.len then invalid_arg "Dynarray_compat.set";
  Array.unsafe_set d.data i x

let grow d x =
  let cap = Array.length d.data in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let ndata = Array.make ncap x in
  Array.blit d.data 0 ndata 0 d.len;
  d.data <- ndata

let push d x =
  if d.len = Array.length d.data then grow d x;
  Array.unsafe_set d.data d.len x;
  d.len <- d.len + 1

let pop d =
  if d.len = 0 then invalid_arg "Dynarray_compat.pop";
  d.len <- d.len - 1;
  Array.unsafe_get d.data d.len

let last d =
  if d.len = 0 then invalid_arg "Dynarray_compat.last";
  Array.unsafe_get d.data (d.len - 1)

let clear d = d.len <- 0

let iter f d =
  for i = 0 to d.len - 1 do
    f (Array.unsafe_get d.data i)
  done

let iteri f d =
  for i = 0 to d.len - 1 do
    f i (Array.unsafe_get d.data i)
  done

let fold_left f acc d =
  let acc = ref acc in
  for i = 0 to d.len - 1 do
    acc := f !acc (Array.unsafe_get d.data i)
  done;
  !acc

let exists p d =
  let rec go i = i < d.len && (p (Array.unsafe_get d.data i) || go (i + 1)) in
  go 0

let for_all p d = not (exists (fun x -> not (p x)) d)
let to_list d = List.init d.len (fun i -> Array.unsafe_get d.data i)
let to_array d = Array.sub d.data 0 d.len

let of_list l =
  let d = create () in
  List.iter (push d) l;
  d

let swap_remove d i =
  if i < 0 || i >= d.len then invalid_arg "Dynarray_compat.swap_remove";
  let x = Array.unsafe_get d.data i in
  d.len <- d.len - 1;
  Array.unsafe_set d.data i (Array.unsafe_get d.data d.len);
  x
