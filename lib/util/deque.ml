type 'a t = {
  mutable data : 'a array;
  mutable head : int; (* index of the front element *)
  mutable len : int;
}

let create () = { data = [||]; head = 0; len = 0 }
let length d = d.len
let is_empty d = d.len = 0

let grow d x =
  let cap = Array.length d.data in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let ndata = Array.make ncap x in
  for i = 0 to d.len - 1 do
    ndata.(i) <- d.data.((d.head + i) mod cap)
  done;
  d.data <- ndata;
  d.head <- 0

let push_back d x =
  if d.len = Array.length d.data then grow d x;
  let cap = Array.length d.data in
  d.data.((d.head + d.len) mod cap) <- x;
  d.len <- d.len + 1

let push_front d x =
  if d.len = Array.length d.data then grow d x;
  let cap = Array.length d.data in
  d.head <- (d.head + cap - 1) mod cap;
  d.data.(d.head) <- x;
  d.len <- d.len + 1

let pop_front d =
  if d.len = 0 then raise Not_found;
  let x = d.data.(d.head) in
  d.head <- (d.head + 1) mod Array.length d.data;
  d.len <- d.len - 1;
  if d.len = 0 then d.head <- 0;
  x

let pop_back d =
  if d.len = 0 then raise Not_found;
  let cap = Array.length d.data in
  let x = d.data.((d.head + d.len - 1) mod cap) in
  d.len <- d.len - 1;
  if d.len = 0 then d.head <- 0;
  x

let peek_front d = if d.len = 0 then raise Not_found else d.data.(d.head)

let peek_back d =
  if d.len = 0 then raise Not_found
  else d.data.((d.head + d.len - 1) mod Array.length d.data)

(* Option-returning variants: the engine's hot dequeue path must not use
   exceptions as control flow (raising allocates and defeats flambda). *)

let pop_front_opt d = if d.len = 0 then None else Some (pop_front d)
let pop_back_opt d = if d.len = 0 then None else Some (pop_back d)
let peek_front_opt d = if d.len = 0 then None else Some d.data.(d.head)

let peek_back_opt d =
  if d.len = 0 then None
  else Some d.data.((d.head + d.len - 1) mod Array.length d.data)

let get d i =
  if i < 0 || i >= d.len then invalid_arg "Deque.get";
  d.data.((d.head + i) mod Array.length d.data)

let iter f d =
  for i = 0 to d.len - 1 do
    f (get d i)
  done

let to_list d = List.init d.len (get d)

let clear d =
  d.len <- 0;
  d.head <- 0
