(** Aligned plain-text tables for experiment output.

    The benchmark harness prints every reproduced table through this module so
    that all experiment output shares one format: a header row, a rule, and
    right-aligned numeric columns. *)

type align = Left | Right

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header width. *)

val add_rows : t -> string list list -> unit

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Right] for every column. *)

val render : t -> string
val print : t -> unit
(** [render] followed by [print_string], with a trailing newline. *)

(** Cell formatting helpers. *)

val fi : int -> string
val ff : ?dec:int -> float -> string
(** Fixed-point float with [dec] decimals (default 3). *)

val fb : bool -> string
(** ["yes"] / ["no"]. *)

val fr : Ratio.t -> string
