type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let stream t i =
  if i < 0 then invalid_arg "Prng.stream: index must be >= 0";
  (* A jump, not a draw: the parent is left untouched, so [stream t i]
     is a pure function of (t, i) and workers indexed 0..n-1 get the
     same streams regardless of spawn order.  The xor constant moves the
     derived state off the parent's own golden-ratio orbit before the
     double mix, so stream outputs never collide with the parent's. *)
  let s = Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1))) in
  { state = mix (Int64.logxor (mix s) 0xD6E8FEB86659FD93L) }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let r = v mod bound in
    if v - r > mask - bound + 1 then go () else r
  in
  go ()

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~num ~den =
  if den <= 0 || num < 0 || num > den then invalid_arg "Prng.bernoulli";
  int t den < num

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
