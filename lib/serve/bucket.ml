type t = {
  rho_ : float;
  sigma_ : int;
  now : unit -> float;
  lock : Mutex.t;
  mutable tokens : float;
  mutable last : float;
}

let create ?now ~rho ~sigma () =
  if not (rho > 0.) then invalid_arg "Bucket.create: rho must be > 0";
  if sigma < 1 then invalid_arg "Bucket.create: sigma must be >= 1";
  let now = match now with Some f -> f | None -> Clock.monotonic in
  {
    rho_ = rho;
    sigma_ = sigma;
    now;
    lock = Mutex.create ();
    tokens = float_of_int sigma;
    last = now ();
  }

(* Caller holds the lock. *)
let refill t =
  let n = t.now () in
  let dt = n -. t.last in
  if dt > 0. then begin
    t.tokens <- Float.min (float_of_int t.sigma_) (t.tokens +. (dt *. t.rho_));
    t.last <- n
  end

let try_take t =
  Mutex.lock t.lock;
  refill t;
  let ok = t.tokens >= 1. in
  if ok then t.tokens <- t.tokens -. 1.;
  Mutex.unlock t.lock;
  ok

let refund t =
  Mutex.lock t.lock;
  refill t;
  t.tokens <- Float.min (float_of_int t.sigma_) (t.tokens +. 1.);
  Mutex.unlock t.lock

let level t =
  Mutex.lock t.lock;
  refill t;
  let v = t.tokens in
  Mutex.unlock t.lock;
  v

let rho t = t.rho_
let sigma t = t.sigma_

module Keyed = struct
  type bucket = t

  let bucket_create = create
  let bucket_try_take = try_take
  let bucket_refund = refund
  let bucket_level = level

  type slot = {
    b : bucket;
    mutable last_used : float; (* for LRU eviction of idle keys *)
  }

  type nonrec t = {
    rho : float;
    sigma : int;
    now : unit -> float;
    max_entries : int;
    lock : Mutex.t;
    tbl : (string, slot) Hashtbl.t;
  }

  let create ?now ?(max_entries = 1024) ~rho ~sigma () =
    if not (rho > 0.) then invalid_arg "Bucket.Keyed.create: rho must be > 0";
    if sigma < 1 then invalid_arg "Bucket.Keyed.create: sigma must be >= 1";
    if max_entries < 1 then
      invalid_arg "Bucket.Keyed.create: max_entries must be >= 1";
    let now = match now with Some f -> f | None -> Clock.monotonic in
    {
      rho;
      sigma;
      now;
      max_entries;
      lock = Mutex.create ();
      tbl = Hashtbl.create 64;
    }

  (* Caller holds the lock.  Evict the least-recently-used key.  An
     evicted key that comes back gets a fresh (full) bucket — a burst of
     [sigma] beyond its entitlement, bounded and biased toward
     admitting, which is the right failure mode for an eviction that
     only fires on idle keys anyway. *)
  let evict_lru t =
    let victim = ref None in
    Hashtbl.iter
      (fun k s ->
        match !victim with
        | Some (_, at) when at <= s.last_used -> ()
        | _ -> victim := Some (k, s.last_used))
      t.tbl;
    match !victim with
    | Some (k, _) -> Hashtbl.remove t.tbl k
    | None -> ()

  let try_take t key =
    Mutex.lock t.lock;
    let slot =
      match Hashtbl.find_opt t.tbl key with
      | Some s -> s
      | None ->
          if Hashtbl.length t.tbl >= t.max_entries then evict_lru t;
          let s =
            {
              b = bucket_create ~now:t.now ~rho:t.rho ~sigma:t.sigma ();
              last_used = 0.;
            }
          in
          Hashtbl.add t.tbl key s;
          s
    in
    slot.last_used <- t.now ();
    Mutex.unlock t.lock;
    bucket_try_take slot.b

  let refund t key =
    Mutex.lock t.lock;
    let s = Hashtbl.find_opt t.tbl key in
    Mutex.unlock t.lock;
    match s with Some s -> bucket_refund s.b | None -> ()

  let keys t =
    Mutex.lock t.lock;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.lock;
    n

  let level t key =
    Mutex.lock t.lock;
    let s = Hashtbl.find_opt t.tbl key in
    Mutex.unlock t.lock;
    Option.map (fun s -> bucket_level s.b) s
end
