type t = {
  rho_ : float;
  sigma_ : int;
  now : unit -> float;
  lock : Mutex.t;
  mutable tokens : float;
  mutable last : float;
}

let create ?now ~rho ~sigma () =
  if not (rho > 0.) then invalid_arg "Bucket.create: rho must be > 0";
  if sigma < 1 then invalid_arg "Bucket.create: sigma must be >= 1";
  let now = match now with Some f -> f | None -> Unix.gettimeofday in
  {
    rho_ = rho;
    sigma_ = sigma;
    now;
    lock = Mutex.create ();
    tokens = float_of_int sigma;
    last = now ();
  }

(* Caller holds the lock. *)
let refill t =
  let n = t.now () in
  let dt = n -. t.last in
  if dt > 0. then begin
    t.tokens <- Float.min (float_of_int t.sigma_) (t.tokens +. (dt *. t.rho_));
    t.last <- n
  end

let try_take t =
  Mutex.lock t.lock;
  refill t;
  let ok = t.tokens >= 1. in
  if ok then t.tokens <- t.tokens -. 1.;
  Mutex.unlock t.lock;
  ok

let level t =
  Mutex.lock t.lock;
  refill t;
  let v = t.tokens in
  Mutex.unlock t.lock;
  v

let rho t = t.rho_
let sigma t = t.sigma_
