external poll_stub :
  int array -> int array -> int array -> int -> int -> int = "aqt_poll"

external fd_int : Unix.file_descr -> int = "%identity"
external int_fd : int -> Unix.file_descr = "%identity"

let rd_bit = 1
let wr_bit = 2
let err_bit = 4

type t = {
  mutable fds : int array;
  mutable events : int array;
  mutable revents : int array;
  mutable n : int;
}

let create () =
  { fds = Array.make 64 (-1); events = Array.make 64 0;
    revents = Array.make 64 0; n = 0 }

let clear t = t.n <- 0

let grow t =
  let cap = Array.length t.fds * 2 in
  let copy a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.n;
    b
  in
  t.fds <- copy t.fds (-1);
  t.events <- copy t.events 0;
  t.revents <- copy t.revents 0

let add t fd ~read ~write =
  if t.n >= Array.length t.fds then grow t;
  t.fds.(t.n) <- fd_int fd;
  t.events.(t.n) <- (if read then rd_bit else 0) lor (if write then wr_bit else 0);
  t.revents.(t.n) <- 0;
  t.n <- t.n + 1

let length t = t.n

let wait t ~timeout_ms = poll_stub t.fds t.events t.revents t.n timeout_ms

let iter_ready t f =
  for i = 0 to t.n - 1 do
    let re = t.revents.(i) in
    if re <> 0 then
      f (int_fd t.fds.(i))
        ~readable:(re land rd_bit <> 0)
        ~writable:(re land wr_bit <> 0)
        ~error:(re land err_bit <> 0)
  done
