(** The rate-admission simulation service.

    A long-running HTTP/1.1 daemon that serves the simulator over
    loopback/LAN: sweeps, registered experiments, report figures,
    Prometheus metrics and health.  The serving discipline is the
    theory it simulates:

    - {b Connections} are multiplexed by a single poll(2) event-loop
      domain ({!Evpoll}): persistent keep-alive connections with
      HTTP/1.1 pipelining, nonblocking incremental parsing
      ({!Http.Parser}), and per-connection deadlines tracked on a
      hashed timer wheel ({!Timewheel}).  Pipelined responses leave in
      request order; read interest is dropped once [max_pipeline]
      requests are outstanding, which is TCP backpressure on the peer.
    - {b Admission} is layered (ρ,σ)-token buckets ({!Bucket}): a
      per-client bucket (keyed by peer address, or by a configured
      header, with LRU eviction of idle keys) bounds any single peer,
      then a per-endpoint bucket bounds the aggregate — [/sweep] has
      its own smaller bucket so grid computations cannot starve cheap
      endpoints.  The admitted stream is rate-bounded exactly like the
      paper's (w,r) adversary; everything beyond the budget is shed
      immediately with [429] — never queued.
    - {b Queueing} is bounded: admitted requests enter a queue of
      capacity σ feeding a fixed pool of worker domains (one greedy
      "link" each, in the paper's one-packet-per-step discipline);
      a full queue answers [503].  Queue depth can therefore never
      exceed σ — the serving layer is stable by construction, the
      same argument as Theorem 4.1's dwell bound.
    - {b Results} are content-addressed: sweep and experiment
      responses are keyed by {!Aqt_harness.Spec.hash} into
      {!Aqt_harness.Cache}, shared with the campaign harness; a cache
      hit refreshes the entry ({!Aqt_harness.Cache.touch}) so trim
      evicts least-recently-used results.  [/sweep] grid cells shard
      across domains with {!Aqt_util.Parallel.map}.
    - {b Observability}: a {!Metrics} registry exported at
      [/metrics] (request latency quantiles up to p999), periodically
      journalled as {!Aqt_harness.Journal.Snapshot} events, and an
      optional {!Aqt_harness.Cache.trim} sweep keeping the cache
      bounded.

    Endpoints: [/healthz], [/metrics], [/sweep] (GET query or POST
    JSON body), [/experiment/<name>], [/figure/<id>] (SVG),
    [/simulate] (live seeded run; uses the worker's own
    {!Aqt_util.Prng.stream}), [/].

    Graceful shutdown ({!stop}, or {!request_stop} from a signal
    handler): close the listener, stop reading, let in-flight work
    finish and its responses flush (bounded by a grace period), write
    a final metrics snapshot, flush and close the journal. *)

type config = {
  host : string;  (** Bind address, default ["127.0.0.1"]. *)
  port : int;  (** 0 picks an ephemeral port (see {!port}). *)
  workers : int;  (** Worker domains. *)
  rho : float;  (** Default endpoint admission rate, requests/second. *)
  sigma : int;  (** Burst budget = bucket depth = queue capacity cap. *)
  queue_capacity : int;  (** [<= 0] means σ. *)
  read_timeout : float;  (** Mid-request read deadline, seconds. *)
  write_timeout : float;  (** Response write-progress deadline, seconds. *)
  campaign_dir : string;  (** Cache + journal root, shared with campaigns. *)
  salt : string;  (** Cache-key code salt ({!Aqt_harness.Campaign}). *)
  snapshot_every : float;  (** Metrics journal period; [<= 0] disables. *)
  journal : bool;  (** Write a serve journal under [campaign_dir]. *)
  cache_max_bytes : int option;
      (** When set, {!Aqt_harness.Cache.trim} runs on every snapshot
          tick so the daemon's cache cannot grow unboundedly. *)
  quiet : bool;
  sweep_rho : float;  (** [/sweep] endpoint rate; [<= 0] means [rho / 10]. *)
  sweep_sigma : int;  (** [/sweep] burst; [<= 0] means [max 4 (sigma / 4)]. *)
  client_rho : float;  (** Per-client rate; [<= 0] means [rho]. *)
  client_sigma : int;  (** Per-client burst; [<= 0] means [sigma]. *)
  client_buckets_max : int;
      (** Bound on live per-client buckets; the least-recently-used
          idle bucket is evicted beyond this. *)
  client_key_header : string;
      (** Header naming the client key (e.g. ["x-client-id"]);
          [""] keys on the peer address. *)
  max_conns : int;  (** Connection cap; excess accepts get [503]. *)
  max_pipeline : int;
      (** Outstanding pipelined requests per connection before the
          event loop stops reading from it. *)
  idle_timeout : float;  (** Idle keep-alive connection expiry, seconds. *)
  sweep_shards : int;
      (** Domains used to shard one sweep grid; [<= 0] means
          [workers]. *)
  clock : unit -> float;
      (** Monotonic time source for deadlines, latency and bucket
          refill — {!Clock.monotonic} by default; substitutable for
          deterministic tests.  Wall-clock time is used only for
          journal timestamps. *)
}

val default_config : config
(** Loopback:8080, workers = cores-2 (min 2), ρ = 50 req/s, σ = 32,
    5 s read/write deadlines, 30 s idle timeout, 4096 connections,
    pipeline depth 8, [_campaign] state dir, 10 s snapshots, derived
    sweep/client buckets (see the field docs). *)

type t

val start :
  ?registry:Aqt_harness.Registry.t ->
  ?figures:Aqt_report.Report.figure list ->
  config ->
  t
(** Bind, spawn the worker pool (worker [i] gets PRNG stream
    [Prng.stream base i]) and the event-loop domain, and return
    immediately.  [registry] backs [/experiment/]; [figures] backs
    [/figure/].
    @raise Invalid_argument on a bad config;
    @raise Unix.Unix_error if the port cannot be bound. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val metrics : t -> Metrics.t

val request_stop : t -> unit
(** Trigger graceful shutdown and return immediately; safe to call
    from a signal handler or any domain, and idempotent. *)

val wait : t -> unit
(** Block until shutdown completes (polling, so signal handlers keep
    running in the calling thread), then join the event-loop domain. *)

val stop : t -> unit
(** [request_stop] then [wait]. *)

val stopped : t -> bool
