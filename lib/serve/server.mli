(** The rate-admission simulation service.

    A long-running HTTP/1.1 daemon that serves the simulator over
    loopback/LAN: sweeps, registered experiments, report figures,
    Prometheus metrics and health.  The serving discipline is the
    theory it simulates:

    - {b Admission} is a (ρ,σ)-token bucket ({!Bucket}): the admitted
      request stream is rate-bounded exactly like the paper's (w,r)
      adversary, and everything beyond the budget is shed immediately
      with [429] — never queued.
    - {b Queueing} is bounded: admitted requests enter a queue of
      capacity σ feeding a fixed pool of worker domains (one greedy
      "link" each, in the paper's one-packet-per-step discipline);
      a full queue answers [503].  Queue depth can therefore never
      exceed σ — the serving layer is stable by construction, the
      same argument as Theorem 4.1's dwell bound.
    - {b Results} are content-addressed: sweep and experiment
      responses are keyed by {!Aqt_harness.Spec.hash} into
      {!Aqt_harness.Cache}, shared with the campaign harness, so a
      repeated query is a cache hit and never recomputes.
    - {b Observability}: a {!Metrics} registry exported at
      [/metrics], periodically journalled as
      {!Aqt_harness.Journal.Snapshot} events, and an optional
      {!Aqt_harness.Cache.trim} sweep keeping the cache bounded.

    Endpoints: [/healthz], [/metrics], [/sweep] (GET query or POST
    JSON body), [/experiment/<name>], [/figure/<id>] (SVG),
    [/simulate] (live seeded run; uses the worker's own
    {!Aqt_util.Prng.stream}), [/].

    Graceful shutdown ({!stop}, or {!request_stop} from a signal
    handler): stop accepting, reject new work, drain the queue and
    in-flight requests (bounded by the socket deadlines), write a
    final metrics snapshot, flush and close the journal. *)

type config = {
  host : string;  (** Bind address, default ["127.0.0.1"]. *)
  port : int;  (** 0 picks an ephemeral port (see {!port}). *)
  workers : int;  (** Worker domains. *)
  rho : float;  (** Admission rate, requests/second. *)
  sigma : int;  (** Burst budget = bucket depth = queue capacity cap. *)
  queue_capacity : int;  (** [<= 0] means σ. *)
  read_timeout : float;  (** Per-request read deadline, seconds. *)
  write_timeout : float;  (** Per-response write deadline, seconds. *)
  campaign_dir : string;  (** Cache + journal root, shared with campaigns. *)
  salt : string;  (** Cache-key code salt ({!Aqt_harness.Campaign}). *)
  snapshot_every : float;  (** Metrics journal period; [<= 0] disables. *)
  journal : bool;  (** Write a serve journal under [campaign_dir]. *)
  cache_max_bytes : int option;
      (** When set, {!Aqt_harness.Cache.trim} runs on every snapshot
          tick so the daemon's cache cannot grow unboundedly. *)
  quiet : bool;
}

val default_config : config
(** Loopback:8080, workers = cores-2 (min 2), ρ = 50 req/s, σ = 32,
    5 s deadlines, [_campaign] state dir, 10 s snapshots. *)

type t

val start :
  ?registry:Aqt_harness.Registry.t ->
  ?figures:Aqt_report.Report.figure list ->
  config ->
  t
(** Bind, spawn the worker pool (worker [i] gets PRNG stream
    [Prng.stream base i]) and the accept loop, and return immediately.
    [registry] backs [/experiment/]; [figures] backs [/figure/].
    @raise Invalid_argument on a bad config;
    @raise Unix.Unix_error if the port cannot be bound. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val metrics : t -> Metrics.t

val request_stop : t -> unit
(** Trigger graceful shutdown and return immediately; safe to call
    from a signal handler or any domain, and idempotent. *)

val wait : t -> unit
(** Block until shutdown completes (polling, so signal handlers keep
    running in the calling thread), then join the server's domains. *)

val stop : t -> unit
(** [request_stop] then [wait]. *)

val stopped : t -> bool
