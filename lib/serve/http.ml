type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
  version : string;
}

type error =
  | Timeout
  | Closed
  | Too_large of string
  | Malformed of string

let error_to_string = function
  | Timeout -> "timeout"
  | Closed -> "peer closed"
  | Too_large what -> "too large: " ^ what
  | Malformed what -> "malformed: " ^ what

exception Err of error

(* ------------------------------------------------------------------ *)
(* Percent decoding                                                    *)
(* ------------------------------------------------------------------ *)

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' ->
        Buffer.add_char buf ' ';
        incr i
    | '%' when !i + 2 < n -> (
        match (hex_digit s.[!i + 1], hex_digit s.[!i + 2]) with
        | Some a, Some b ->
            Buffer.add_char buf (Char.chr ((16 * a) + b));
            i := !i + 3
        | _ ->
            Buffer.add_char buf '%';
            incr i)
    | c ->
        Buffer.add_char buf c;
        incr i)
  done;
  Buffer.contents buf

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (percent_decode kv, "")
             | Some i ->
                 Some
                   ( percent_decode (String.sub kv 0 i),
                     percent_decode
                       (String.sub kv (i + 1) (String.length kv - i - 1)) ))

(* ------------------------------------------------------------------ *)
(* Shared parsing helpers                                               *)
(* ------------------------------------------------------------------ *)

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
      ( percent_decode (String.sub target 0 i),
        parse_query (String.sub target (i + 1) (String.length target - i - 1))
      )

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> raise (Err (Malformed "header without name"))
  | Some i ->
      let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      (name, value)

let parse_request_line line =
  match List.filter (( <> ) "") (String.split_on_char ' ' line) with
  | [ meth; target; version ] ->
      if not (String.length version >= 7 && String.sub version 0 7 = "HTTP/1.")
      then raise (Err (Malformed "unsupported version"));
      (String.uppercase_ascii meth, target, version)
  | _ -> raise (Err (Malformed "bad request line"))

let content_length_of headers ~max_body =
  if List.mem_assoc "transfer-encoding" headers then
    raise (Err (Malformed "transfer-encoding unsupported"));
  match List.assoc_opt "content-length" headers with
  | None -> 0
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | None -> raise (Err (Malformed "bad content-length"))
      | Some n when n < 0 -> raise (Err (Malformed "bad content-length"))
      | Some n when n > max_body -> raise (Err (Too_large "body"))
      | Some n -> n)

let wants_keep_alive req =
  match Option.map String.lowercase_ascii (header req "connection") with
  | Some "close" -> false
  | Some v when v = "keep-alive" -> true
  | _ -> req.version <> "HTTP/1.0"

(* ------------------------------------------------------------------ *)
(* Incremental request parser                                          *)
(* ------------------------------------------------------------------ *)

module Parser = struct
  type limits = { max_line : int; max_headers : int; max_body : int }

  type state =
    | Head
    | Body of {
        meth : string;
        target : string;
        version : string;
        headers : (string * string) list;
        need : int;
      }
    | Broken of error

  type t = {
    lim : limits;
    mutable data : Bytes.t;
    mutable len : int;
    mutable scan : int; (* resume point for the blank-line search *)
    mutable line_start : int; (* start of the line [scan] is inside *)
    mutable state : state;
  }

  type outcome = [ `Request of request | `Await | `Error of error ]

  let create ?(max_line = 8192) ?(max_headers = 64) ?(max_body = 1_048_576) ()
      =
    {
      lim = { max_line; max_headers; max_body };
      data = Bytes.create 1024;
      len = 0;
      scan = 0;
      line_start = 0;
      state = Head;
    }

  let feed t src off n =
    if n > 0 then begin
      if t.len + n > Bytes.length t.data then begin
        let cap = ref (Bytes.length t.data * 2) in
        while t.len + n > !cap do
          cap := !cap * 2
        done;
        let grown = Bytes.create !cap in
        Bytes.blit t.data 0 grown 0 t.len;
        t.data <- grown
      end;
      Bytes.blit src off t.data t.len n;
      t.len <- t.len + n
    end

  let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

  let buffered t = t.len

  (* Drop the first [n] bytes and reset scanning state. *)
  let consume t n =
    if n > 0 then begin
      Bytes.blit t.data n t.data 0 (t.len - n);
      t.len <- t.len - n
    end;
    t.scan <- 0;
    t.line_start <- 0

  (* Shave leading (CR)LFs: clients may send blank lines between
     pipelined requests (RFC 9112 §2.2). *)
  let skip_leading_blanks t =
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      if !i < t.len && Bytes.get t.data !i = '\n' then incr i
      else if
        !i + 1 < t.len
        && Bytes.get t.data !i = '\r'
        && Bytes.get t.data (!i + 1) = '\n'
      then i := !i + 2
      else continue := false
    done;
    if !i > 0 then consume t !i

  let strip_cr s =
    let l = String.length s in
    if l > 0 && s.[l - 1] = '\r' then String.sub s 0 (l - 1) else s

  (* The head block [0, head_end) rendered as CR-stripped lines. *)
  let head_lines t head_end =
    String.sub (Bytes.unsafe_to_string t.data) 0 head_end
    |> String.split_on_char '\n'
    |> List.filter_map (fun l ->
           let l = strip_cr l in
           if l = "" then None else Some l)

  exception Found of int (* body offset *)
  exception Need (* terminator may straddle the buffer end: wait *)

  (* Scan for the empty line ending the head.  Returns the offset where
     the body starts, or None if more bytes are needed.  Enforces the
     per-line cap while scanning so an unbounded no-newline stream
     cannot grow the buffer forever.  When a '\n' sits at the end of
     the buffered bytes the terminator may be split across feeds, so
     the scan must park ON the '\n' (not past it) until more arrives. *)
  let find_head_end t =
    try
      while t.scan < t.len do
        (match Bytes.get t.data t.scan with
        | '\n' ->
            let nxt = t.scan + 1 in
            if nxt >= t.len then raise Need
            else if Bytes.get t.data nxt = '\n' then raise (Found (nxt + 1))
            else if Bytes.get t.data nxt = '\r' then
              if nxt + 1 >= t.len then raise Need
              else if Bytes.get t.data (nxt + 1) = '\n' then
                raise (Found (nxt + 2))
              else t.line_start <- nxt
            else t.line_start <- nxt
        | _ ->
            if t.scan - t.line_start > t.lim.max_line then
              raise (Err (Too_large "line")));
        t.scan <- t.scan + 1
      done;
      None
    with
    | Found off -> Some off
    | Need -> None

  let finish_request t ~meth ~target ~version ~headers ~need =
    let body = Bytes.sub_string t.data 0 need in
    consume t need;
    t.state <- Head;
    let path, query = split_target target in
    `Request { meth; target; path; query; headers; body; version }

  let rec next t : outcome =
    match t.state with
    | Broken e -> `Error e
    | Body { meth; target; version; headers; need } ->
        if t.len >= need then
          finish_request t ~meth ~target ~version ~headers ~need
        else `Await
    | Head -> (
        skip_leading_blanks t;
        match find_head_end t with
        | None -> `Await
        | Some body_off -> (
            match head_lines t body_off with
            | [] -> `Error (Malformed "bad request line")
            | req_line :: header_lines ->
                if List.length header_lines > t.lim.max_headers then begin
                  t.state <- Broken (Too_large "headers");
                  `Error (Too_large "headers")
                end
                else
                  let meth, target, version = parse_request_line req_line in
                  let headers = List.map parse_header_line header_lines in
                  let need =
                    content_length_of headers ~max_body:t.lim.max_body
                  in
                  consume t body_off;
                  t.state <- Body { meth; target; version; headers; need };
                  next t))

  let next t : outcome =
    match next t with
    | outcome -> outcome
    | exception Err e ->
        t.state <- Broken e;
        `Error e
end

(* ------------------------------------------------------------------ *)
(* Incremental response parser (load-generator side)                   *)
(* ------------------------------------------------------------------ *)

type response = {
  status : int;
  resp_headers : (string * string) list;
  body : string;
}

module Rparser = struct
  type state =
    | Head
    | Body of { status : int; resp_headers : (string * string) list; need : int }
    | Broken of error

  type t = {
    p : Parser.t; (* reuse the buffer/scan machinery *)
    mutable state : state;
  }

  type outcome = [ `Response of response | `Await | `Error of error ]

  let create ?(max_body = 16_777_216) () =
    { p = Parser.create ~max_line:8192 ~max_headers:256 ~max_body (); state = Head }

  let feed t src off n = Parser.feed t.p src off n
  let feed_string t s = Parser.feed_string t.p s
  let buffered t = Parser.buffered t.p

  let parse_status_line line =
    match List.filter (( <> ) "") (String.split_on_char ' ' line) with
    | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> raise (Err (Malformed "bad status code")))
    | _ -> raise (Err (Malformed "bad status line"))

  let rec next t : outcome =
    match t.state with
    | Broken e -> `Error e
    | Body { status; resp_headers; need } ->
        if t.p.Parser.len >= need then begin
          let body = Bytes.sub_string t.p.Parser.data 0 need in
          Parser.consume t.p need;
          t.state <- Head;
          `Response { status; resp_headers; body }
        end
        else `Await
    | Head -> (
        Parser.skip_leading_blanks t.p;
        match Parser.find_head_end t.p with
        | None -> `Await
        | Some body_off -> (
            match Parser.head_lines t.p body_off with
            | [] -> `Error (Malformed "bad status line")
            | status_line :: header_lines ->
                let status = parse_status_line status_line in
                let resp_headers = List.map parse_header_line header_lines in
                let need =
                  match List.assoc_opt "content-length" resp_headers with
                  | None -> raise (Err (Malformed "missing content-length"))
                  | Some v -> (
                      match int_of_string_opt (String.trim v) with
                      | Some n when n >= 0 && n <= t.p.Parser.lim.Parser.max_body
                        ->
                          n
                      | _ -> raise (Err (Malformed "bad content-length")))
                in
                Parser.consume t.p body_off;
                t.state <- Body { status; resp_headers; need };
                next t))

  let next t : outcome =
    match next t with
    | outcome -> outcome
    | exception Err e ->
        t.state <- Broken e;
        `Error e
end

(* ------------------------------------------------------------------ *)
(* Buffered blocking reading (client side)                             *)
(* ------------------------------------------------------------------ *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable lo : int;
  mutable hi : int;
}

let reader fd = { fd; buf = Bytes.create 8192; lo = 0; hi = 0 }

let rec refill r =
  match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
  | 0 -> raise (Err Closed)
  | n ->
      r.lo <- 0;
      r.hi <- n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise (Err Timeout)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      raise (Err Closed)

let read_byte r =
  if r.lo >= r.hi then refill r;
  let c = Bytes.get r.buf r.lo in
  r.lo <- r.lo + 1;
  c

(* One header/request line, CRLF (or bare LF) terminated, CR stripped. *)
let read_line r ~max =
  let buf = Buffer.create 64 in
  let rec go () =
    match read_byte r with
    | '\n' ->
        let s = Buffer.contents buf in
        let l = String.length s in
        if l > 0 && s.[l - 1] = '\r' then String.sub s 0 (l - 1) else s
    | c ->
        if Buffer.length buf >= max then raise (Err (Too_large "line"));
        Buffer.add_char buf c;
        go ()
  in
  go ()

let read_exact r n =
  let buf = Buffer.create n in
  let rec go () =
    if Buffer.length buf >= n then Buffer.contents buf
    else begin
      if r.lo >= r.hi then refill r;
      let take = min (r.hi - r.lo) (n - Buffer.length buf) in
      Buffer.add_subbytes buf r.buf r.lo take;
      r.lo <- r.lo + take;
      go ()
    end
  in
  go ()

let read_to_eof r ~max =
  let buf = Buffer.create 256 in
  let rec go () =
    match refill r with
    | () ->
        if Buffer.length buf + (r.hi - r.lo) > max then
          raise (Err (Too_large "body"));
        Buffer.add_subbytes buf r.buf r.lo (r.hi - r.lo);
        r.lo <- r.hi;
        go ()
    | exception Err Closed -> Buffer.contents buf
  in
  (* Anything still buffered counts too. *)
  Buffer.add_subbytes buf r.buf r.lo (r.hi - r.lo);
  r.lo <- r.hi;
  go ()

(* ------------------------------------------------------------------ *)
(* Blocking request parsing (tests feed via socketpair)                *)
(* ------------------------------------------------------------------ *)

let read_headers r ~max_line ~max_headers =
  let rec go acc k =
    let line = read_line r ~max:max_line in
    if line = "" then List.rev acc
    else if k >= max_headers then raise (Err (Too_large "headers"))
    else go (parse_header_line line :: acc) (k + 1)
  in
  go [] 0

let read_request ?(max_line = 8192) ?(max_headers = 64)
    ?(max_body = 1_048_576) fd =
  let r = reader fd in
  try
    let line = read_line r ~max:max_line in
    (* Tolerate one leading blank line (RFC 9112 §2.2). *)
    let line = if line = "" then read_line r ~max:max_line else line in
    let meth, target, version = parse_request_line line in
    let headers = read_headers r ~max_line ~max_headers in
    let need = content_length_of headers ~max_body in
    let body = if need = 0 then "" else read_exact r need in
    let path, query = split_target target in
    Ok { meth; target; path; query; headers; body; version }
  with Err e -> Error e

(* ------------------------------------------------------------------ *)
(* Response writing                                                    *)
(* ------------------------------------------------------------------ *)

let status_text = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let encode_response ?(headers = []) ?(head_only = false) ?(keep_alive = false)
    ~status ~body () =
  let buf = Buffer.create (256 + String.length body) in
  Printf.bprintf buf "HTTP/1.1 %d %s\r\n" status (status_text status);
  let has_ct =
    List.exists
      (fun (k, _) -> String.lowercase_ascii k = "content-type")
      headers
  in
  if not has_ct then
    Buffer.add_string buf "Content-Type: text/plain; charset=utf-8\r\n";
  List.iter (fun (k, v) -> Printf.bprintf buf "%s: %s\r\n" k v) headers;
  Printf.bprintf buf "Content-Length: %d\r\n" (String.length body);
  Buffer.add_string buf
    (if keep_alive then "Connection: keep-alive\r\n\r\n"
     else "Connection: close\r\n\r\n");
  if not head_only then Buffer.add_string buf body;
  Buffer.contents buf

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let write_response ?(headers = []) ?(head_only = false) fd ~status ~body =
  let s = encode_response ~headers ~head_only ~keep_alive:false ~status ~body () in
  write_all fd s 0 (String.length s)

(* ------------------------------------------------------------------ *)
(* Loopback clients                                                    *)
(* ------------------------------------------------------------------ *)

let encode_request ?(meth = "GET") ?(req_headers = []) ?body path =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\n" meth path;
  List.iter (fun (k, v) -> Printf.bprintf buf "%s: %s\r\n" k v) req_headers;
  (match body with
  | Some b ->
      Printf.bprintf buf "Content-Length: %d\r\n\r\n" (String.length b);
      Buffer.add_string buf b
  | None -> Buffer.add_string buf "\r\n");
  Buffer.contents buf

let read_response ?(head = false) r =
  let status_line = read_line r ~max:8192 in
  let status =
    match List.filter (( <> ) "") (String.split_on_char ' ' status_line) with
    | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> raise (Err (Malformed "bad status code")))
    | _ -> raise (Err (Malformed "bad status line"))
  in
  let resp_headers = read_headers r ~max_line:8192 ~max_headers:256 in
  let body =
    if head then ""
    else
      match List.assoc_opt "content-length" resp_headers with
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 && n <= 16_777_216 -> read_exact r n
          | _ -> raise (Err (Malformed "bad content-length")))
      | None -> read_to_eof r ~max:16_777_216
  in
  { status; resp_headers; body }

let request ?(timeout = 5.0) ?(meth = "GET") ?(req_headers = []) ?body ~port
    path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req_headers = ("Connection", "close") :: req_headers in
        let s = encode_request ~meth ~req_headers ?body path in
        write_all fd s 0 (String.length s);
        let r = reader fd in
        Ok (read_response ~head:(meth = "HEAD") r)
      with
      | Err e -> Error (error_to_string e)
      | Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

module Client = struct
  type t = { fd : Unix.file_descr; r : reader; mutable closed : bool }

  let connect ?(timeout = 5.0) ~port () =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Ok { fd; r = reader fd; closed = false }
    with Unix.Unix_error (e, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

  let close t =
    if not t.closed then begin
      t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end

  let request t ?(meth = "GET") ?(req_headers = []) ?body path =
    if t.closed then Error "connection closed"
    else
      try
        let s = encode_request ~meth ~req_headers ?body path in
        write_all t.fd s 0 (String.length s);
        Ok (read_response ~head:(meth = "HEAD") t.r)
      with
      | Err e ->
          close t;
          Error (error_to_string e)
      | Unix.Unix_error (e, fn, _) ->
          close t;
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
end
