type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type error =
  | Timeout
  | Closed
  | Too_large of string
  | Malformed of string

let error_to_string = function
  | Timeout -> "timeout"
  | Closed -> "peer closed"
  | Too_large what -> "too large: " ^ what
  | Malformed what -> "malformed: " ^ what

exception Err of error

(* ------------------------------------------------------------------ *)
(* Percent decoding                                                    *)
(* ------------------------------------------------------------------ *)

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' ->
        Buffer.add_char buf ' ';
        incr i
    | '%' when !i + 2 < n -> (
        match (hex_digit s.[!i + 1], hex_digit s.[!i + 2]) with
        | Some a, Some b ->
            Buffer.add_char buf (Char.chr ((16 * a) + b));
            i := !i + 3
        | _ ->
            Buffer.add_char buf '%';
            incr i)
    | c ->
        Buffer.add_char buf c;
        incr i)
  done;
  Buffer.contents buf

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (percent_decode kv, "")
             | Some i ->
                 Some
                   ( percent_decode (String.sub kv 0 i),
                     percent_decode
                       (String.sub kv (i + 1) (String.length kv - i - 1)) ))

(* ------------------------------------------------------------------ *)
(* Buffered reading                                                    *)
(* ------------------------------------------------------------------ *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable lo : int;
  mutable hi : int;
}

let reader fd = { fd; buf = Bytes.create 8192; lo = 0; hi = 0 }

let rec refill r =
  match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
  | 0 -> raise (Err Closed)
  | n ->
      r.lo <- 0;
      r.hi <- n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise (Err Timeout)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      raise (Err Closed)

let read_byte r =
  if r.lo >= r.hi then refill r;
  let c = Bytes.get r.buf r.lo in
  r.lo <- r.lo + 1;
  c

(* One header/request line, CRLF (or bare LF) terminated, CR stripped. *)
let read_line r ~max =
  let buf = Buffer.create 64 in
  let rec go () =
    match read_byte r with
    | '\n' ->
        let s = Buffer.contents buf in
        let l = String.length s in
        if l > 0 && s.[l - 1] = '\r' then String.sub s 0 (l - 1) else s
    | c ->
        if Buffer.length buf >= max then raise (Err (Too_large "line"));
        Buffer.add_char buf c;
        go ()
  in
  go ()

let read_exact r n =
  let buf = Buffer.create n in
  let rec go () =
    if Buffer.length buf >= n then Buffer.contents buf
    else begin
      if r.lo >= r.hi then refill r;
      let take = min (r.hi - r.lo) (n - Buffer.length buf) in
      Buffer.add_subbytes buf r.buf r.lo take;
      r.lo <- r.lo + take;
      go ()
    end
  in
  go ()

let read_to_eof r ~max =
  let buf = Buffer.create 256 in
  let rec go () =
    match refill r with
    | () ->
        if Buffer.length buf + (r.hi - r.lo) > max then
          raise (Err (Too_large "body"));
        Buffer.add_subbytes buf r.buf r.lo (r.hi - r.lo);
        r.lo <- r.hi;
        go ()
    | exception Err Closed -> Buffer.contents buf
  in
  (* Anything still buffered counts too. *)
  Buffer.add_subbytes buf r.buf r.lo (r.hi - r.lo);
  r.lo <- r.hi;
  go ()

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
      ( percent_decode (String.sub target 0 i),
        parse_query (String.sub target (i + 1) (String.length target - i - 1))
      )

let read_headers r ~max_line ~max_headers =
  let rec go acc k =
    let line = read_line r ~max:max_line in
    if line = "" then List.rev acc
    else if k >= max_headers then raise (Err (Too_large "headers"))
    else
      match String.index_opt line ':' with
      | None | Some 0 -> raise (Err (Malformed "header without name"))
      | Some i ->
          let name =
            String.lowercase_ascii (String.trim (String.sub line 0 i))
          in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          go ((name, value) :: acc) (k + 1)
  in
  go [] 0

let read_request ?(max_line = 8192) ?(max_headers = 64)
    ?(max_body = 1_048_576) fd =
  let r = reader fd in
  try
    let line = read_line r ~max:max_line in
    (* Tolerate one leading blank line (RFC 9112 §2.2). *)
    let line = if line = "" then read_line r ~max:max_line else line in
    match List.filter (( <> ) "") (String.split_on_char ' ' line) with
    | [ meth; target; version ] ->
        if
          not
            (String.length version >= 7 && String.sub version 0 7 = "HTTP/1.")
        then raise (Err (Malformed "unsupported version"));
        let meth = String.uppercase_ascii meth in
        let headers = read_headers r ~max_line ~max_headers in
        if List.mem_assoc "transfer-encoding" headers then
          raise (Err (Malformed "transfer-encoding unsupported"));
        let body =
          match List.assoc_opt "content-length" headers with
          | None -> ""
          | Some v -> (
              match int_of_string_opt (String.trim v) with
              | None -> raise (Err (Malformed "bad content-length"))
              | Some n when n < 0 -> raise (Err (Malformed "bad content-length"))
              | Some n when n > max_body -> raise (Err (Too_large "body"))
              | Some n -> read_exact r n)
        in
        let path, query = split_target target in
        Ok { meth; target; path; query; headers; body }
    | _ -> raise (Err (Malformed "bad request line"))
  with Err e -> Error e

(* ------------------------------------------------------------------ *)
(* Response writing                                                    *)
(* ------------------------------------------------------------------ *)

let status_text = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let write_response ?(headers = []) ?(head_only = false) fd ~status ~body =
  let buf = Buffer.create (256 + String.length body) in
  Printf.bprintf buf "HTTP/1.1 %d %s\r\n" status (status_text status);
  let has_ct =
    List.exists
      (fun (k, _) -> String.lowercase_ascii k = "content-type")
      headers
  in
  if not has_ct then
    Buffer.add_string buf "Content-Type: text/plain; charset=utf-8\r\n";
  List.iter (fun (k, v) -> Printf.bprintf buf "%s: %s\r\n" k v) headers;
  Printf.bprintf buf "Content-Length: %d\r\n" (String.length body);
  Buffer.add_string buf "Connection: close\r\n\r\n";
  if not head_only then Buffer.add_string buf body;
  let s = Buffer.contents buf in
  write_all fd s 0 (String.length s)

(* ------------------------------------------------------------------ *)
(* Loopback client                                                     *)
(* ------------------------------------------------------------------ *)

type response = {
  status : int;
  resp_headers : (string * string) list;
  body : string;
}

let request ?(timeout = 5.0) ?(meth = "GET") ?(req_headers = []) ?body ~port
    path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let buf = Buffer.create 256 in
        Printf.bprintf buf "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\n" meth path;
        List.iter
          (fun (k, v) -> Printf.bprintf buf "%s: %s\r\n" k v)
          req_headers;
        (match body with
        | Some b ->
            Printf.bprintf buf "Content-Length: %d\r\n\r\n" (String.length b);
            Buffer.add_string buf b
        | None -> Buffer.add_string buf "\r\n");
        let s = Buffer.contents buf in
        write_all fd s 0 (String.length s);
        let r = reader fd in
        let status_line = read_line r ~max:8192 in
        let status =
          match
            List.filter (( <> ) "") (String.split_on_char ' ' status_line)
          with
          | _ :: code :: _ -> (
              match int_of_string_opt code with
              | Some c -> c
              | None -> raise (Err (Malformed "bad status code")))
          | _ -> raise (Err (Malformed "bad status line"))
        in
        let resp_headers = read_headers r ~max_line:8192 ~max_headers:256 in
        let body =
          if meth = "HEAD" then ""
          else
            match List.assoc_opt "content-length" resp_headers with
            | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 && n <= 16_777_216 -> read_exact r n
                | _ -> raise (Err (Malformed "bad content-length")))
            | None -> read_to_eof r ~max:16_777_216
        in
        Ok { status; resp_headers; body }
      with
      | Err e -> Error (error_to_string e)
      | Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
