(** Latency-measuring load generator for the serve daemon.

    A single-domain poll(2) reactor ({!Evpoll}) driving up to thousands
    of concurrent nonblocking keep-alive connections over loopback,
    with pipelined requests encoded by {!Http.encode_request} and
    responses decoded incrementally by {!Http.Rparser}.  Request
    "sizes" are drawn from an empirical flow CDF (heavy-tailed, in the
    spirit of data-center web-search workloads) and carried as header
    padding, so the server's incremental parser sees realistic framing
    variety.

    Two driving disciplines:
    - {b closed-loop}: each connection keeps [pipeline] requests
      outstanding and tops up on every completion — offered load
      self-clocks to the server's service rate;
    - {b open-loop}: requests are issued on a fixed aggregate schedule
      regardless of completions.  Latency is measured from the
      {e scheduled} send instant, so generator-side queueing counts
      against the server (no coordinated omission).

    Latency lands in a {!Metrics} histogram ([loadgen_request_seconds],
    quantiles up to p999); per-status counts, errors and live
    connections are tracked alongside and can be journalled as a
    {!Aqt_harness.Journal.Snapshot}. *)

type mode =
  | Closed  (** self-clocked: [pipeline] outstanding per connection *)
  | Open of float  (** scheduled aggregate rate, requests/second *)

type config = {
  host : string;  (** Target address, default ["127.0.0.1"]. *)
  port : int;
  conns : int;  (** Concurrent keep-alive connections. *)
  requests : int;  (** Total requests to issue. *)
  mode : mode;
  pipeline : int;  (** Closed-loop outstanding depth per connection. *)
  paths : (int * string) list;  (** Weighted request-path mix. *)
  flow_cdf : (float * int) list;
      (** Cumulative probability -> header padding bytes; drawn per
          request.  Must be sorted and end at probability 1. *)
  seed : int;  (** PRNG seed: same seed, same workload. *)
  run_timeout : float;  (** Hard wall on the whole run, seconds. *)
  clock : unit -> float;
      (** Monotonic time source — {!Clock.monotonic} by default;
          substitutable so selftests are deterministic. *)
  quiet : bool;  (** Suppress the once-a-second progress line. *)
  snapshot_every : float;
      (** Capture a metrics snapshot every this many seconds while the
          run is in flight (plus one final snapshot); [0.] (default)
          captures nothing.  The series lands in {!result.snapshots} and
          is what {!write_journal} persists. *)
}

val default_config : config
(** Loopback:8080, 16 connections, 10k requests, closed-loop depth 4,
    all [/healthz], the built-in web-search-style flow CDF. *)

type result = {
  issued : int;
  completed : int;  (** Full responses received. *)
  errors : int;  (** Issued but never answered. *)
  ok : int;  (** 200s *)
  shed : int;  (** 429s *)
  rejected : int;  (** 503s *)
  duration : float;  (** Seconds, on [config.clock]. *)
  throughput : float;  (** Completed responses per second. *)
  p50 : float;
  p99 : float;
  p999 : float;  (** Latency quantiles, seconds. *)
  metrics : Metrics.t;  (** The full registry behind the summary. *)
  snapshots : (float * (string * float) list) list;
      (** In-run metric snapshots as [(elapsed seconds, registry dump)],
          oldest first; empty unless [config.snapshot_every > 0]. *)
}

val run : config -> result
(** Drive the configured workload to completion (or [run_timeout]) and
    summarize.  Requests lost to a dead connection are counted as
    errors, never silently re-issued — re-issuing would inflate the
    admitted rate that selftests check against the server's (ρ,σ)
    envelope.  @raise Invalid_argument on a bad config. *)

val result_json : result -> Aqt_util.Jsonx.t
val result_csv : result -> string
(** ["metric,value"] lines — the CI artifact format. *)

val write_journal : path:string -> result -> unit
(** Append the result's metric series as
    {!Aqt_harness.Journal.Snapshot} events labelled ["loadgen"] — one
    per entry of {!result.snapshots}, each with an ["elapsed_s"] value
    prepended so readers can reconstruct the time axis without the wall
    clock.  With no in-run snapshots, appends a single final snapshot. *)

val selftest :
  ?quiet:bool ->
  ?requests:int ->
  ?conns:int ->
  ?rho:float ->
  ?sigma:int ->
  ?snapshot_every:float ->
  ?emit:(result -> unit) ->
  unit ->
  bool
(** Spin a private {!Server} on an ephemeral port, drive it closed-loop
    well past its (ρ,σ) budget, and check: every request is accounted
    for, some are shed, the admitted count fits the
    [ρ·T + σ] envelope (with jitter slack), and the answered p999 stays
    bounded.  [emit] receives the run's {!result} before the verdict —
    the CI job uses it to write the latency-CSV artifact.  Defaults are
    sized for a quick tier-1 check; CI calls it with
    [requests >= 1_000_000] and [conns >= 1000]. *)
