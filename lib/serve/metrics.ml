type counter = { c_name : string; c_help : string; count : int Atomic.t }

type gauge = {
  g_name : string;
  g_help : string;
  value : float Atomic.t;
  peak : float Atomic.t;
}

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (* ascending, finite *)
  counts : int Atomic.t array;  (* length bounds + 1; last is +Inf *)
  sum : float Atomic.t;
}

type series = C of counter | G of gauge | H of histogram

type t = {
  lock : Mutex.t;
  tbl : (string, series) Hashtbl.t;
  mutable order : series list;  (* reverse registration order *)
}

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 32; order = [] }

let register t name make classify =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl name with
    | Some s -> classify s
    | None ->
        let s = make () in
        Hashtbl.add t.tbl name s;
        t.order <- s :: t.order;
        classify s
  in
  Mutex.unlock t.lock;
  match r with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Metrics: %s exists with another kind" name)

let counter t ?(help = "") name =
  register t name
    (fun () -> C { c_name = name; c_help = help; count = Atomic.make 0 })
    (function C c -> Some c | _ -> None)

let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c.count by)
let counter_value c = Atomic.get c.count

let gauge t ?(help = "") name =
  register t name
    (fun () ->
      G
        {
          g_name = name;
          g_help = help;
          value = Atomic.make 0.;
          peak = Atomic.make 0.;
        })
    (function G g -> Some g | _ -> None)

let rec raise_peak g v =
  let p = Atomic.get g.peak in
  if v > p && not (Atomic.compare_and_set g.peak p v) then raise_peak g v

let set_gauge g v =
  Atomic.set g.value v;
  raise_peak g v

let rec add_gauge g d =
  let v = Atomic.get g.value in
  if Atomic.compare_and_set g.value v (v +. d) then raise_peak g (v +. d)
  else add_gauge g d

let gauge_value g = Atomic.get g.value
let gauge_peak g = Atomic.get g.peak

let default_buckets =
  [ 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0;
    2.5; 5.0; 10.0 ]

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  let bounds = Array.of_list buckets in
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: non-finite bucket bound";
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: bounds must be ascending")
    bounds;
  register t name
    (fun () ->
      H
        {
          h_name = name;
          h_help = help;
          bounds;
          counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
        })
    (function H h -> Some h | _ -> None)

let rec add_float a d =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v +. d)) then add_float a d

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  ignore (Atomic.fetch_and_add h.counts.(bucket 0) 1);
  add_float h.sum v

let histogram_count h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

let quantile h q =
  let q = Float.max 0. (Float.min 1. q) in
  let total = histogram_count h in
  if total = 0 then 0.
  else begin
    let rank = q *. float_of_int total in
    let n = Array.length h.bounds in
    let rec go i cum =
      if i > n then h.bounds.(n - 1)
      else
        let c = Atomic.get h.counts.(i) in
        let cum' = cum +. float_of_int c in
        if cum' >= rank && c > 0 then
          if i >= n then h.bounds.(n - 1)  (* +Inf bucket: best upper bound *)
          else
            let lo = if i = 0 then 0. else h.bounds.(i - 1) in
            let hi = h.bounds.(i) in
            lo +. ((hi -. lo) *. ((rank -. cum) /. float_of_int c))
        else go (i + 1) cum'
    in
    go 0 0.
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let family name =
  match String.index_opt name '{' with
  | None -> name
  | Some i -> String.sub name 0 i

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let ordered t =
  Mutex.lock t.lock;
  let l = List.rev t.order in
  Mutex.unlock t.lock;
  l

let render t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let preamble name help kind =
    let fam = family name in
    if not (Hashtbl.mem typed fam) then begin
      Hashtbl.add typed fam ();
      if help <> "" then Printf.bprintf buf "# HELP %s %s\n" fam help;
      Printf.bprintf buf "# TYPE %s %s\n" fam kind
    end
  in
  List.iter
    (fun s ->
      match s with
      | C c ->
          preamble c.c_name c.c_help "counter";
          Printf.bprintf buf "%s %d\n" c.c_name (Atomic.get c.count)
      | G g ->
          preamble g.g_name g.g_help "gauge";
          Printf.bprintf buf "%s %s\n" g.g_name (fnum (Atomic.get g.value))
      | H h ->
          preamble h.h_name h.h_help "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + Atomic.get h.counts.(i);
              Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" h.h_name
                (Printf.sprintf "%g" b) !cum)
            h.bounds;
          let total = !cum + Atomic.get h.counts.(Array.length h.bounds) in
          Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name total;
          Printf.bprintf buf "%s_sum %s\n" h.h_name (fnum (Atomic.get h.sum));
          Printf.bprintf buf "%s_count %d\n" h.h_name total)
    (ordered t);
  Buffer.contents buf

let snapshot t =
  List.concat_map
    (fun s ->
      match s with
      | C c -> [ (c.c_name, float_of_int (Atomic.get c.count)) ]
      | G g ->
          [
            (g.g_name, Atomic.get g.value);
            (g.g_name ^ "_peak", Atomic.get g.peak);
          ]
      | H h ->
          [
            (h.h_name ^ "_count", float_of_int (histogram_count h));
            (h.h_name ^ "_sum", Atomic.get h.sum);
            (h.h_name ^ "_p50", quantile h 0.50);
            (h.h_name ^ "_p95", quantile h 0.95);
            (h.h_name ^ "_p99", quantile h 0.99);
            (h.h_name ^ "_p999", quantile h 0.999);
          ])
    (ordered t)
