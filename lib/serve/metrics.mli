(** Domain-safe metrics registry with Prometheus text exposition.

    Counters, gauges and histograms for the serve daemon: registration
    is get-or-create by full series name (labels spelled inline, e.g.
    ["serve_responses_total{status=\"200\"}"]), so handlers can mint
    per-status series lazily from any worker domain.  Hot-path updates
    are single atomic operations; the registry mutex is only taken at
    registration and render time.

    {!render} emits Prometheus text format (version 0.0.4): one
    [# HELP]/[# TYPE] pair per metric family (the name up to the label
    brace), series in registration order.  {!snapshot} flattens the
    same state into labelled floats for {!Aqt_harness.Journal.Snapshot}
    events. *)

type t

val create : unit -> t

(** {2 Counters} — monotonically increasing integers. *)

type counter

val counter : t -> ?help:string -> string -> counter
(** Get or create.  @raise Invalid_argument if the name exists with a
    different metric kind. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {2 Gauges} — floats that go both ways, with a high watermark. *)

type gauge

val gauge : t -> ?help:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val gauge_peak : gauge -> float
(** Largest value ever passed to [set_gauge]/reached by [add_gauge];
    how the selftest checks "queue depth never exceeded σ" without
    sampling races. *)

(** {2 Histograms} — cumulative buckets, Prometheus-style. *)

type histogram

val histogram : t -> ?help:string -> ?buckets:float list -> string -> histogram
(** [buckets] are ascending finite upper bounds; a [+Inf] bucket is
    implicit.  The default suits request latencies in seconds
    (0.5 ms – 10 s). *)

val observe : histogram -> float -> unit

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [0,1]: linear interpolation inside the
    containing bucket, an upper bound beyond the last finite bound.
    0 when empty. *)

val histogram_count : histogram -> int

(** {2 Export} *)

val render : t -> string
(** Prometheus text format, trailing newline included. *)

val snapshot : t -> (string * float) list
(** Counters and gauges by name (gauges also as [<name>_peak]);
    histograms as [<name>_count], [<name>_sum], [<name>_p50],
    [<name>_p95], [<name>_p99], [<name>_p999]. *)
