(** Minimal HTTP/1.1 codec over [Unix] file descriptors.

    Just enough protocol for the serve daemon: one request per
    connection ([Connection: close] semantics), [GET]/[HEAD]/[POST]
    with [Content-Length] bodies, hard caps on line length, header
    count and body size so a hostile peer cannot make a worker
    allocate unboundedly.  Deadlines are the socket's [SO_RCVTIMEO] /
    [SO_SNDTIMEO] options — a stalled peer surfaces as {!Timeout}, not
    a hung worker.  Chunked transfer encoding is deliberately
    unsupported (a simulation service controls both ends).

    The {!client} section is a matching loopback client used by the
    integration tests and [serve --selftest]. *)

type request = {
  meth : string;  (** Upper-cased method, e.g. ["GET"]. *)
  target : string;  (** Raw request target as sent. *)
  path : string;  (** Percent-decoded path, query stripped. *)
  query : (string * string) list;  (** Decoded query pairs, in order. *)
  headers : (string * string) list;  (** Names lower-cased, values trimmed. *)
  body : string;
}

type error =
  | Timeout  (** The socket deadline expired mid-read. *)
  | Closed  (** Peer closed before a complete request arrived. *)
  | Too_large of string  (** A line, header block or body over its cap. *)
  | Malformed of string  (** Anything else the parser rejects. *)

val error_to_string : error -> string

val read_request :
  ?max_line:int ->
  ?max_headers:int ->
  ?max_body:int ->
  Unix.file_descr ->
  (request, error) result
(** Parse one request from [fd].  Defaults: 8 KiB lines, 64 headers,
    1 MiB body.  Never raises on protocol or socket errors — they all
    land in [Error]. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val status_text : int -> string
(** Reason phrase for the status codes the server emits. *)

val write_response :
  ?headers:(string * string) list ->
  ?head_only:bool ->
  Unix.file_descr ->
  status:int ->
  body:string ->
  unit
(** Write a complete response ([Content-Length], [Connection: close];
    [Content-Type: text/plain; charset=utf-8] unless [headers] carries
    one).  [head_only] suppresses the body while keeping its length
    header (HEAD semantics).
    @raise Unix.Unix_error if the peer is gone or the send deadline
    expires — callers count and drop, they do not retry. *)

(** {2 Decoding helpers} (exposed for tests) *)

val percent_decode : string -> string
(** [%XX] unescaping plus [+] to space; malformed escapes pass through. *)

val parse_query : string -> (string * string) list

(** {2 Client} *)

type response = {
  status : int;
  resp_headers : (string * string) list;
  body : string;
}

val request :
  ?timeout:float ->
  ?meth:string ->
  ?req_headers:(string * string) list ->
  ?body:string ->
  port:int ->
  string ->
  (response, string) result
(** [request ~port path] performs one HTTP exchange against
    [127.0.0.1:port] with [timeout] (default 5 s) as both connect-read
    and write deadline.  A [body] implies [Content-Length]. *)
