(** HTTP/1.1 codec for the serve plane.

    Two parsing styles share one grammar:

    - {!read_request} — blocking, one request per call, used by tests
      that feed a socketpair and by the {{!section-client} clients}.
    - {!Parser} — incremental and non-blocking, fed arbitrary byte
      chunks by the event loop; multiple pipelined requests can come out
      of a single chunk, and one request can arrive split across any
      number of chunks.

    Supported surface: [GET]/[HEAD]/[POST] with [Content-Length] bodies
    and keep-alive ({!wants_keep_alive} implements the HTTP/1.1 /
    HTTP/1.0 defaulting rules).  Hard caps on line length, header count
    and body size bound what a hostile peer can make the daemon buffer.
    Chunked transfer encoding is deliberately rejected — a simulation
    service controls both ends of every connection.

    {!Rparser} is the mirror image for the load generator: an
    incremental parser of {e responses} on a pipelined client
    connection. *)

type request = {
  meth : string;  (** Upper-cased method, e.g. ["GET"]. *)
  target : string;  (** Raw request target as sent. *)
  path : string;  (** Percent-decoded path, query stripped. *)
  query : (string * string) list;  (** Decoded query pairs, in order. *)
  headers : (string * string) list;  (** Names lower-cased, values trimmed. *)
  body : string;
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] as sent. *)
}

type error =
  | Timeout  (** The socket deadline expired mid-read. *)
  | Closed  (** Peer closed before a complete request arrived. *)
  | Too_large of string  (** A line, header block or body over its cap. *)
  | Malformed of string  (** Anything else the parser rejects. *)

val error_to_string : error -> string

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val wants_keep_alive : request -> bool
(** HTTP/1.1 defaults to keep-alive unless [Connection: close];
    HTTP/1.0 defaults to close unless [Connection: keep-alive]. *)

(** {2 Incremental request parsing}

    The event loop's codec.  Feed whatever [read(2)] returned, then
    drain with {!Parser.next} until it says [`Await]:

    {[
      Parser.feed p chunk 0 n;
      let rec drain () =
        match Parser.next p with
        | `Request req -> handle req; drain ()
        | `Await -> ()
        | `Error e -> reject e
      in
      drain ()
    ]}

    Errors are sticky: after [`Error] the parser stays broken and the
    connection should be closed (a 400 may be written first). *)

module Parser : sig
  type t

  type outcome = [ `Request of request | `Await | `Error of error ]

  val create : ?max_line:int -> ?max_headers:int -> ?max_body:int -> unit -> t
  (** Defaults: 8 KiB lines, 64 headers, 1 MiB body — the same caps as
      {!read_request}. *)

  val feed : t -> bytes -> int -> int -> unit
  (** [feed p buf off len] appends [len] bytes of input.  The bytes are
      copied; [buf] may be reused immediately. *)

  val feed_string : t -> string -> unit

  val next : t -> outcome
  (** Extract the next complete request, if the buffered input holds
      one.  Call repeatedly — pipelined peers put several requests in
      one chunk. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed into a request. *)
end

(** {2 Incremental response parsing} *)

type response = {
  status : int;
  resp_headers : (string * string) list;
  body : string;
}

module Rparser : sig
  type t

  type outcome = [ `Response of response | `Await | `Error of error ]

  val create : ?max_body:int -> unit -> t
  (** [max_body] defaults to 16 MiB.  Responses must carry
      [Content-Length] (ours always do) — pipelining leaves no other way
      to delimit them. *)

  val feed : t -> bytes -> int -> int -> unit
  val feed_string : t -> string -> unit
  val next : t -> outcome
  val buffered : t -> int
end

(** {2 Blocking request parsing} *)

val read_request :
  ?max_line:int ->
  ?max_headers:int ->
  ?max_body:int ->
  Unix.file_descr ->
  (request, error) result
(** Parse one request from [fd], blocking until it is complete.
    Defaults: 8 KiB lines, 64 headers, 1 MiB body.  Never raises on
    protocol or socket errors — they all land in [Error]. *)

(** {2 Request encoding} *)

val encode_request :
  ?meth:string ->
  ?req_headers:(string * string) list ->
  ?body:string ->
  string ->
  string
(** Render a request as wire bytes ([GET] by default, [Host] always, a
    [body] implies [Content-Length]).  No [Connection] header is added,
    so the exchange defaults to keep-alive — the load generator's
    pipelined connections are built from these. *)

(** {2 Response encoding} *)

val status_text : int -> string
(** Reason phrase for the status codes the server emits. *)

val encode_response :
  ?headers:(string * string) list ->
  ?head_only:bool ->
  ?keep_alive:bool ->
  status:int ->
  body:string ->
  unit ->
  string
(** Render a complete response as wire bytes ([Content-Length] always;
    [Content-Type: text/plain; charset=utf-8] unless [headers] carries
    one; [Connection: keep-alive] or [close] per [keep_alive], default
    close).  [head_only] suppresses the body while keeping its length
    header (HEAD semantics). *)

val write_response :
  ?headers:(string * string) list ->
  ?head_only:bool ->
  Unix.file_descr ->
  status:int ->
  body:string ->
  unit
(** {!encode_response} with [keep_alive:false], written synchronously.
    @raise Unix.Unix_error if the peer is gone or the send deadline
    expires — callers count and drop, they do not retry. *)

(** {2 Decoding helpers} (exposed for tests) *)

val percent_decode : string -> string
(** [%XX] unescaping plus [+] to space; malformed escapes pass through. *)

val parse_query : string -> (string * string) list

(** {2:client Clients} *)

val request :
  ?timeout:float ->
  ?meth:string ->
  ?req_headers:(string * string) list ->
  ?body:string ->
  port:int ->
  string ->
  (response, string) result
(** [request ~port path] performs one HTTP exchange against
    [127.0.0.1:port] with [timeout] (default 5 s) as both connect-read
    and write deadline.  A [body] implies [Content-Length].  Sends
    [Connection: close] — one request per connection. *)

(** Persistent keep-alive client: one connection, sequential requests.
    Used by tests and the selftest to exercise connection reuse; the
    load generator drives its own non-blocking connections instead. *)
module Client : sig
  type t

  val connect : ?timeout:float -> port:int -> unit -> (t, string) result
  (** Connect to [127.0.0.1:port]; [timeout] (default 5 s) bounds each
      subsequent read and write. *)

  val request :
    t ->
    ?meth:string ->
    ?req_headers:(string * string) list ->
    ?body:string ->
    string ->
    (response, string) result
  (** One exchange on the shared connection.  On any error the
      connection is closed and further requests fail fast. *)

  val close : t -> unit
end
