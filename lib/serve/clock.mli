(** Monotonic time for the serve plane.

    Wall-clock time ([Unix.gettimeofday]) steps when NTP adjusts it,
    which corrupts latency measurements and token-bucket refill.  Every
    duration, deadline and refill computation in lib/serve therefore
    flows through one injectable clock source, defaulting to
    [CLOCK_MONOTONIC].  Wall time is kept only where an absolute
    timestamp is the point: journal event [at] fields and journal file
    names. *)

val monotonic : unit -> float
(** Seconds from an arbitrary fixed origin, strictly unaffected by
    wall-clock steps.  The default [now] of {!Bucket.create},
    {!Server.config} and {!Loadgen.config}. *)

val wall : unit -> float
(** [Unix.gettimeofday] — absolute timestamps for journals only. *)
