type 'a entry = { deadline : float; payload : 'a }

type 'a t = {
  slots : 'a entry list array;
  tick : float;
  mutable hand : float; (* absolute time the hand has swept up to *)
  mutable count : int;
}

let create ?(slots = 512) ~tick ~now () =
  if tick <= 0. then invalid_arg "Timewheel.create: tick must be positive";
  if slots < 2 then invalid_arg "Timewheel.create: need at least 2 slots";
  { slots = Array.make slots []; tick; hand = now; count = 0 }

let slot_of t time =
  let i = int_of_float (Float.floor (time /. t.tick)) in
  ((i mod Array.length t.slots) + Array.length t.slots) mod Array.length t.slots

let span t = float_of_int (Array.length t.slots) *. t.tick

let add t ~deadline payload =
  (* Far-future deadlines would alias onto a near slot; park them one
     revolution out and let advance recirculate them. *)
  let filed =
    if deadline > t.hand +. span t then t.hand +. span t -. t.tick
    else Float.max deadline t.hand
  in
  let s = slot_of t filed in
  t.slots.(s) <- { deadline; payload } :: t.slots.(s);
  t.count <- t.count + 1

let advance t ~now fire =
  if now > t.hand then begin
    let nslots = Array.length t.slots in
    let from_slot = slot_of t t.hand in
    let ticks = int_of_float ((now -. t.hand) /. t.tick) + 1 in
    let steps = min ticks nslots in
    for k = 0 to steps - 1 do
      let s = (from_slot + k) mod nslots in
      let entries = t.slots.(s) in
      if entries <> [] then begin
        t.slots.(s) <- [];
        List.iter
          (fun e ->
            if e.deadline <= now then begin
              t.count <- t.count - 1;
              fire e.payload
            end
            else begin
              (* Crossed the slot early (or recirculating): re-file
                 relative to the new hand position. *)
              let filed =
                if e.deadline > now +. span t then now +. span t -. t.tick
                else e.deadline
              in
              let s' = slot_of t filed in
              t.slots.(s') <- e :: t.slots.(s')
            end)
          entries
      end
    done;
    t.hand <- now
  end

let pending t = t.count
