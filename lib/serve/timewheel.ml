type 'a entry = { deadline : float; payload : 'a }

type 'a t = {
  slots : 'a entry list array;
  tick : float;
  mutable hand : float; (* absolute time the hand has swept up to *)
  mutable count : int;
}

let create ?(slots = 512) ~tick ~now () =
  if tick <= 0. then invalid_arg "Timewheel.create: tick must be positive";
  if slots < 2 then invalid_arg "Timewheel.create: need at least 2 slots";
  { slots = Array.make slots []; tick; hand = now; count = 0 }

let slot_of t time =
  let i = int_of_float (Float.floor (time /. t.tick)) in
  ((i mod Array.length t.slots) + Array.length t.slots) mod Array.length t.slots

let span t = float_of_int (Array.length t.slots) *. t.tick

let add t ~deadline payload =
  (* Far-future deadlines would alias onto a near slot; park them one
     revolution out and let advance recirculate them. *)
  let filed =
    if deadline > t.hand +. span t then t.hand +. span t -. t.tick
    else Float.max deadline t.hand
  in
  let s = slot_of t filed in
  t.slots.(s) <- { deadline; payload } :: t.slots.(s);
  t.count <- t.count + 1

let advance t ~now fire =
  if now > t.hand then begin
    let nslots = Array.length t.slots in
    let from_slot = slot_of t t.hand in
    let ticks = int_of_float ((now -. t.hand) /. t.tick) + 1 in
    let steps = min ticks nslots in
    let base = Float.floor (t.hand /. t.tick) *. t.tick in
    let refile e =
      (* Crossed the slot early (or recirculating): re-file relative to
         the new hand position. *)
      let filed =
        if e.deadline > now +. span t then now +. span t -. t.tick
        else e.deadline
      in
      let s' = slot_of t filed in
      t.slots.(s') <- e :: t.slots.(s')
    in
    for k = 0 to steps - 1 do
      let s = (from_slot + k) mod nslots in
      (* Advance the hand INTO this slot before draining it.  [add] files
         due entries at the hand, so a fire callback that re-arms with a
         past deadline lands in the slot being drained (re-checked below)
         or a later one still in this sweep — with a stale hand it would
         land in an already-swept slot and fire a whole revolution late. *)
      t.hand <-
        Float.max t.hand (Float.min now (base +. (float_of_int k *. t.tick)));
      (* Drain to a fixpoint: fire callbacks may insert entries due in
         this very slot.  The first pass always sweeps (recirculating
         parked far-future entries); later passes only run while due
         entries keep appearing, so the loop terminates unless callbacks
         keep manufacturing already-due work (a livelock in any design). *)
      let rec drain first =
        let entries = t.slots.(s) in
        if
          entries <> []
          && (first || List.exists (fun e -> e.deadline <= now) entries)
        then begin
          t.slots.(s) <- [];
          List.iter
            (fun e ->
              if e.deadline <= now then begin
                t.count <- t.count - 1;
                fire e.payload
              end
              else refile e)
            entries;
          drain false
        end
      in
      drain true
    done;
    t.hand <- now
  end

let pending t = t.count
