module Ratio = Aqt_util.Ratio
module Prng = Aqt_util.Prng
module Jsonx = Aqt_util.Jsonx
module Build = Aqt_graph.Build
module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Policies = Aqt_policy.Policies
module Stock = Aqt_adversary.Stock
module Spec = Aqt_harness.Spec
module Registry = Aqt_harness.Registry
module Cache = Aqt_harness.Cache
module Journal = Aqt_harness.Journal
module Campaign = Aqt_harness.Campaign
module Report = Aqt_report.Report
module Capacity = Aqt_capacity.Model
module Tradeoff = Aqt_capacity.Tradeoff

type config = {
  host : string;
  port : int;
  workers : int;
  rho : float;
  sigma : int;
  queue_capacity : int;
  read_timeout : float;
  write_timeout : float;
  campaign_dir : string;
  salt : string;
  snapshot_every : float;
  journal : bool;
  cache_max_bytes : int option;
  quiet : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    workers = max 2 (Domain.recommended_domain_count () - 2);
    rho = 50.;
    sigma = 32;
    queue_capacity = 0;
    read_timeout = 5.;
    write_timeout = 5.;
    campaign_dir = Campaign.default_options.Campaign.dir;
    salt = Campaign.default_options.Campaign.salt;
    snapshot_every = 10.;
    journal = true;
    cache_max_bytes = None;
    quiet = false;
  }

(* ------------------------------------------------------------------ *)
(* Metrics handles                                                     *)
(* ------------------------------------------------------------------ *)

type handles = {
  requests : Metrics.counter;
  shed : Metrics.counter;
  rejected : Metrics.counter;
  cache_hits : Metrics.counter;
  cache_misses : Metrics.counter;
  read_errors : Metrics.counter;
  write_errors : Metrics.counter;
  in_flight : Metrics.gauge;
  queue_depth : Metrics.gauge;
  tokens : Metrics.gauge;
  latency : Metrics.histogram;
  sim_dropped : Metrics.counter;
  sim_displaced : Metrics.counter;
  sim_peak_occupancy : Metrics.gauge;
}

let make_handles m =
  {
    requests =
      Metrics.counter m "serve_requests_total"
        ~help:"Connections accepted by the listener.";
    shed =
      Metrics.counter m "serve_shed_total"
        ~help:"Requests shed with 429 by the (rho,sigma) admission bucket.";
    rejected =
      Metrics.counter m "serve_rejected_total"
        ~help:"Admitted requests rejected with 503 (queue full or draining).";
    cache_hits =
      Metrics.counter m "serve_cache_hits_total"
        ~help:"Sweep/experiment responses served from the result cache.";
    cache_misses =
      Metrics.counter m "serve_cache_misses_total"
        ~help:"Sweep/experiment responses that had to be computed.";
    read_errors =
      Metrics.counter m "serve_read_errors_total"
        ~help:"Requests that died before a response (timeout, close, parse).";
    write_errors =
      Metrics.counter m "serve_write_errors_total"
        ~help:"Responses the peer did not take (gone or send deadline).";
    in_flight =
      Metrics.gauge m "serve_in_flight" ~help:"Requests being served now.";
    queue_depth =
      Metrics.gauge m "serve_queue_depth"
        ~help:"Admitted requests waiting for a worker.";
    tokens =
      Metrics.gauge m "serve_admission_tokens"
        ~help:"Admission bucket level at the last snapshot tick.";
    latency =
      Metrics.histogram m "serve_request_seconds"
        ~help:"Accept-to-response latency of served requests.";
    sim_dropped =
      Metrics.counter m "serve_sim_dropped_total"
        ~help:"Packets dropped by finite-capacity buffers across /simulate runs.";
    sim_displaced =
      Metrics.counter m "serve_sim_displaced_total"
        ~help:"Buffered packets evicted by drop-head arrivals across /simulate runs.";
    sim_peak_occupancy =
      Metrics.gauge m "serve_sim_peak_occupancy"
        ~help:"Peak total buffered packets of the most recent /simulate run.";
  }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type conn = { fd : Unix.file_descr; accepted_at : float }

type t = {
  cfg : config;
  registry : Registry.t;
  figures : Report.figure list;
  listen_fd : Unix.file_descr;
  bound_port : int;
  bucket : Bucket.t;
  queue : conn Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable draining : bool;  (* under qlock *)
  queue_cap : int;
  stop_flag : bool Atomic.t;
  stopped_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  metrics : Metrics.t;
  m : handles;
  cache : Cache.t;
  journal : Journal.writer option;
  figure_memo : (string, string) Hashtbl.t;
  flock : Mutex.t;
  base_rng : Prng.t;
  mutable worker_domains : unit Domain.t list;
  mutable accept_domain : unit Domain.t option;
}

let port t = t.bound_port
let metrics t = t.metrics
let stopped t = Atomic.get t.stopped_flag

let now () = Unix.gettimeofday ()

let status_counter t status =
  Metrics.counter t.metrics
    (Printf.sprintf "serve_responses_total{status=\"%d\"}" status)
    ~help:"Responses written, by status code."

(* ------------------------------------------------------------------ *)
(* Request parameter parsing                                           *)
(* ------------------------------------------------------------------ *)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let q_str q key default = Option.value (List.assoc_opt key q) ~default

let q_int q key default =
  match List.assoc_opt key q with
  | None -> default
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some i -> i
      | None -> bad "parameter %s: expected an integer, got %S" key v)

let parse_ratio ~what s =
  let s = String.trim s in
  match String.index_opt s '/' with
  | Some i -> (
      let num = int_of_string_opt (String.sub s 0 i)
      and den =
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      in
      match (num, den) with
      | Some p, Some q when q <> 0 -> Ratio.make p q
      | _ -> bad "%s: bad rational %S" what s)
  | None -> (
      match float_of_string_opt s with
      | Some f when Float.is_finite f -> Ratio.of_float_approx f
      | _ -> bad "%s: bad rate %S" what s)

type net_spec = Line of int | Ring of int

let net_spec_to_string = function
  | Line k -> Printf.sprintf "line:%d" k
  | Ring k -> Printf.sprintf "ring:%d" k

let max_net_size = 4096

let parse_net s =
  let size k lo =
    match int_of_string_opt k with
    | Some k when k >= lo && k <= max_net_size -> k
    | Some _ -> bad "network %S: size out of range [%d, %d]" s lo max_net_size
    | None -> bad "network %S: bad size" s
  in
  match String.split_on_char ':' (String.trim s) with
  | [ "line"; k ] -> Line (size k 1)
  | [ "ring"; k ] -> Ring (size k 3)
  | _ -> bad "unknown network %S (line:K | ring:K)" s

let build_net ~d = function
  | Line k ->
      let l = Build.line k in
      let d = min d k in
      (l.Build.graph, List.init (k - d + 1) (fun i -> Array.sub l.Build.edges i d))
  | Ring k ->
      let r = Build.ring k in
      let d = min d (k - 1) in
      ( r.Build.graph,
        List.init k (fun i ->
            Array.init d (fun j -> r.Build.edges.((i + j) mod k))) )

let resolve_policy name =
  let name = String.trim name in
  try Policies.by_name name with Not_found -> bad "unknown policy %S" name

let max_horizon = 200_000

let check_horizon h =
  if h < 1 || h > max_horizon then
    bad "horizon %d out of range [1, %d]" h max_horizon;
  h

let check_hops d = if d < 1 || d > 64 then bad "hops %d out of range [1, 64]" d else d

(* ------------------------------------------------------------------ *)
(* Handler outcome                                                     *)
(* ------------------------------------------------------------------ *)

type out = { status : int; ctype : string; content : string }

let text ?(status = 200) content =
  { status; ctype = "text/plain; charset=utf-8"; content }

let json ?(status = 200) j =
  { status; ctype = "application/json"; content = Jsonx.to_string j ^ "\n" }

(* ------------------------------------------------------------------ *)
(* /sweep                                                              *)
(* ------------------------------------------------------------------ *)

type sweep_params = {
  sp_net : net_spec;
  sp_d : int;
  sp_horizon : int;
  sp_rates : Ratio.t list;
  sp_policies : Aqt_engine.Policy_type.t list;
}

let check_rates rates =
  if rates = [] then bad "at least one rate is required";
  if List.length rates > 16 then bad "at most 16 rates per sweep";
  List.iter
    (fun r ->
      if Ratio.(r <= zero) then bad "rate %s must be positive" (Ratio.to_string r))
    rates;
  rates

let parse_policies s =
  match String.trim s with
  | "" | "all" -> Policies.all_deterministic
  | s -> List.map resolve_policy (String.split_on_char ',' s)

let sweep_params_of_query q =
  {
    sp_net = parse_net (q_str q "network" "ring:8");
    sp_d = check_hops (q_int q "d" 4);
    sp_horizon = check_horizon (q_int q "horizon" 20_000);
    sp_rates =
      check_rates
        (List.map (parse_ratio ~what:"rates")
           (String.split_on_char ',' (q_str q "rates" "1/8,1/4,1/2,3/4")));
    sp_policies = parse_policies (q_str q "policy" "all");
  }

(* POST /sweep body: {"network": "ring:8", "d": 4, "horizon": 20000,
   "rates": ["1/4", 0.5], "policies": ["fifo", "lis"] | "all"} *)
let sweep_params_of_json body =
  let j =
    try Jsonx.of_string body with Failure msg -> bad "body is not JSON: %s" msg
  in
  let obj = match j with Jsonx.Obj _ -> j | _ -> bad "body must be a JSON object" in
  let str_field key default =
    match Jsonx.member key obj with
    | None | Some Jsonx.Null -> default
    | Some (Jsonx.Str s) -> s
    | Some _ -> bad "field %s must be a string" key
  in
  let int_field key default =
    match Jsonx.member key obj with
    | None | Some Jsonx.Null -> default
    | Some (Jsonx.Int i) -> i
    | Some _ -> bad "field %s must be an integer" key
  in
  let rate_of = function
    | Jsonx.Str s -> parse_ratio ~what:"rates" s
    | Jsonx.Int i -> Ratio.of_int i
    | Jsonx.Float f when Float.is_finite f -> Ratio.of_float_approx f
    | _ -> bad "rates must be strings or numbers"
  in
  let rates =
    match Jsonx.member "rates" obj with
    | None | Some Jsonx.Null ->
        [ Ratio.make 1 8; Ratio.make 1 4; Ratio.make 1 2; Ratio.make 3 4 ]
    | Some (Jsonx.List l) -> List.map rate_of l
    | Some v -> [ rate_of v ]
  in
  let policies =
    match Jsonx.member "policies" obj with
    | None | Some Jsonx.Null -> parse_policies (str_field "policy" "all")
    | Some (Jsonx.Str s) -> parse_policies s
    | Some (Jsonx.List l) ->
        List.map
          (function
            | Jsonx.Str s -> resolve_policy s
            | _ -> bad "policies must be strings")
          l
    | Some _ -> bad "field policies must be a string or a list"
  in
  {
    sp_net = parse_net (str_field "network" "ring:8");
    sp_d = check_hops (int_field "d" 4);
    sp_horizon = check_horizon (int_field "horizon" 20_000);
    sp_rates = check_rates rates;
    sp_policies = policies;
  }

let sweep_spec p =
  [
    ("version", Spec.Int 1);
    ("network", Spec.Str (net_spec_to_string p.sp_net));
    ("d", Spec.Int p.sp_d);
    ("horizon", Spec.Int p.sp_horizon);
    ( "rates",
      Spec.List
        (List.map (fun r -> Spec.Ratio (Ratio.num r, Ratio.den r)) p.sp_rates) );
    ( "policies",
      Spec.List
        (List.map
           (fun (pol : Aqt_engine.Policy_type.t) -> Spec.Str pol.name)
           p.sp_policies) );
  ]

(* Same grid as `aqt_sim sweep`, built into a Registry.result so it can be
   content-addressed into the shared campaign cache. *)
let compute_sweep p =
  let graph, routes = build_net ~d:p.sp_d p.sp_net in
  let route_table = Aqt_engine.Route_intern.create () in
  let rb = Registry.Rb.create () in
  let rows = ref [] in
  let cells = ref 0 in
  List.iter
    (fun (policy : Aqt_engine.Policy_type.t) ->
      List.iter
        (fun rate ->
          let per_route =
            Ratio.div rate (Ratio.of_int (max 1 (List.length routes)))
          in
          let adv =
            Stock.shared_token_bucket ~rate:per_route ~routes
              ~horizon:p.sp_horizon ()
          in
          let adv = { adv with Stock.rate } in
          let report =
            Aqt.Sweep.classify ~route_table ~name:"serve.sweep" ~graph ~policy
              ~adversary:adv ~horizon:p.sp_horizon ()
          in
          incr cells;
          rows :=
            [
              policy.name;
              Ratio.to_string rate;
              Aqt.Sweep.verdict_to_string report.Aqt.Sweep.verdict;
              string_of_int report.Aqt.Sweep.max_queue;
              string_of_int report.Aqt.Sweep.final_backlog;
            ]
            :: !rows)
        p.sp_rates)
    p.sp_policies;
  Registry.Rb.table rb ~id:"serve_sweep"
    ~headers:[ "policy"; "rate"; "verdict"; "max queue"; "final backlog" ]
    (List.rev !rows);
  Registry.Rb.metric rb "cells" (float_of_int !cells);
  Registry.Rb.result rb

let result_payload ~name ~key ~cached ~duration result =
  Jsonx.Obj
    [
      ("name", Jsonx.Str name);
      ("key", Jsonx.Str key);
      ("cached", Jsonx.Bool cached);
      ("duration", Jsonx.Float duration);
      ("result", Registry.result_to_json result);
    ]

let serve_cached t ~name ~spec ~compute =
  let key = Spec.hash ~salt:t.cfg.salt ~name spec in
  match Cache.lookup t.cache ~key with
  | Some c ->
      Metrics.inc t.m.cache_hits;
      json
        (result_payload ~name ~key ~cached:true ~duration:c.Cache.duration
           c.Cache.result)
  | None ->
      Metrics.inc t.m.cache_misses;
      let t0 = now () in
      let result = compute () in
      let duration = now () -. t0 in
      Cache.store t.cache ~key ~name ~spec ~duration result;
      json (result_payload ~name ~key ~cached:false ~duration result)

let sweep_handler t p =
  serve_cached t ~name:"serve.sweep" ~spec:(sweep_spec p) ~compute:(fun () ->
      compute_sweep p)

(* ------------------------------------------------------------------ *)
(* /experiment/<name>                                                  *)
(* ------------------------------------------------------------------ *)

let experiment_handler t name =
  match Registry.find t.registry name with
  | None -> text ~status:404 (Printf.sprintf "unknown experiment %S\n" name)
  | Some entry ->
      serve_cached t ~name:entry.Registry.name ~spec:entry.Registry.spec
        ~compute:entry.Registry.run

(* ------------------------------------------------------------------ *)
(* /figure/<id>                                                        *)
(* ------------------------------------------------------------------ *)

let render_figure t (fig : Report.figure) =
  let options =
    {
      Campaign.default_options with
      Campaign.dir = t.cfg.campaign_dir;
      salt = t.cfg.salt;
      quiet = true;
    }
  in
  let ctx = Report.build_ctx ~registry:t.registry ~options [ fig ] in
  fig.Report.render ctx

let figure_handler t id =
  let svg body = { status = 200; ctype = "image/svg+xml"; content = body } in
  (* One mutex serializes renders: figure campaigns journal into the shared
     campaign dir, and a render is expensive enough that piling every worker
     onto a cold figure would only waste domains. *)
  Mutex.lock t.flock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.flock)
    (fun () ->
      match Hashtbl.find_opt t.figure_memo id with
      | Some body ->
          Metrics.inc t.m.cache_hits;
          svg body
      | None -> (
          match
            List.find_opt (fun (f : Report.figure) -> f.Report.id = id) t.figures
          with
          | None -> text ~status:404 (Printf.sprintf "unknown figure %S\n" id)
          | Some fig ->
              Metrics.inc t.m.cache_misses;
              let body = render_figure t fig in
              Hashtbl.replace t.figure_memo id body;
              svg body))

(* ------------------------------------------------------------------ *)
(* /simulate                                                           *)
(* ------------------------------------------------------------------ *)

let simulate_handler t rng q =
  let spec = parse_net (q_str q "network" "ring:8") in
  let d = check_hops (q_int q "d" 4) in
  let horizon = check_horizon (q_int q "horizon" 5_000) in
  let rate = parse_ratio ~what:"rate" (q_str q "rate" "1/4") in
  if Ratio.(rate <= zero) then bad "rate must be positive";
  let policy = resolve_policy (q_str q "policy" "fifo") in
  let stochastic =
    match String.lowercase_ascii (q_str q "stochastic" "false") with
    | "1" | "true" | "yes" -> true
    | "0" | "false" | "no" -> false
    | v -> bad "parameter stochastic: expected a boolean, got %S" v
  in
  let speedup = q_int q "speedup" 1 in
  if speedup < 1 then bad "speedup must be >= 1";
  let drop =
    let v = q_str q "drop" "drop-tail" in
    match Capacity.policy_of_string v with
    | Some p -> p
    | None -> bad "parameter drop: expected drop-tail or drop-head, got %S" v
  in
  let capacity =
    match List.assoc_opt "cap" q with
    | None | Some "" | Some "inf" ->
        if speedup = 1 then Capacity.unbounded
        else Capacity.make ~speedup Capacity.Unbounded
    | Some v -> (
        match int_of_string_opt v with
        | Some c when c >= 0 -> Capacity.uniform ~policy:drop ~speedup c
        | _ -> bad "parameter cap: expected a non-negative integer, got %S" v)
  in
  let seed =
    match List.assoc_opt "seed" q with
    | Some v -> (
        match int_of_string_opt v with
        | Some s -> s
        | None -> bad "parameter seed: expected an integer, got %S" v)
    | None ->
        (* The worker's own decorrelated stream: each worker draws distinct
           seeds, and the chosen seed is reported so the run can be replayed. *)
        Int64.to_int (Prng.bits64 rng) land 0x3FFFFFFF
  in
  let graph, routes = build_net ~d spec in
  let nroutes = List.length routes in
  let per_route = Ratio.div rate (Ratio.of_int (max 1 (min d nroutes))) in
  let adv =
    if stochastic then
      Stock.bernoulli ~prng:(Prng.create seed) ~rate:per_route ~routes ()
    else Stock.windowed_burst ~w:40 ~rate:per_route ~routes ~horizon ()
  in
  let net = Network.create ~capacity ~graph ~policy () in
  let outcome = Sim.run ~net ~driver:adv.Stock.driver ~horizon () in
  let injected = Network.injected_count net in
  let dropped = Network.dropped net in
  let edge_drops =
    List.filter_map
      (fun e ->
        match Network.dropped_on_edge net e with
        | 0 -> None
        | n -> Some (e, n))
      (List.init (Aqt_graph.Digraph.n_edges graph) Fun.id)
  in
  (* Per-edge drop counters carry the edge id as an inline Prometheus
     label; simulate networks are small, so the label set stays modest.
     The aggregate counters accumulate across runs; the occupancy gauge
     tracks the latest run (its _peak snapshot the all-time high). *)
  Metrics.inc ~by:dropped t.m.sim_dropped;
  Metrics.inc ~by:(Network.displaced net) t.m.sim_displaced;
  Metrics.set_gauge t.m.sim_peak_occupancy
    (float_of_int (Network.peak_occupancy net));
  List.iter
    (fun (e, n) ->
      Metrics.inc ~by:n
        (Metrics.counter t.metrics
           (Printf.sprintf "serve_sim_edge_drops_total{edge=\"%d\"}" e)
           ~help:"Per-edge drop totals across /simulate runs."))
    edge_drops;
  json
    (Jsonx.Obj
       [
         ("network", Jsonx.Str (net_spec_to_string spec));
         ("policy", Jsonx.Str policy.Aqt_engine.Policy_type.name);
         ("rate", Jsonx.Str (Ratio.to_string rate));
         ("adversary", Jsonx.Str adv.Stock.name);
         ("seed", Jsonx.Int seed);
         ("capacity", Jsonx.Str (Capacity.describe capacity));
         ("speedup", Jsonx.Int speedup);
         ("steps", Jsonx.Int outcome.Sim.steps_run);
         ("injected", Jsonx.Int injected);
         ("absorbed", Jsonx.Int (Network.absorbed net));
         ("in_flight", Jsonx.Int (Network.in_flight net));
         ("dropped", Jsonx.Int dropped);
         ("displaced", Jsonx.Int (Network.displaced net));
         ("drop_rate", Jsonx.Float (Tradeoff.drop_rate ~injected ~dropped));
         ("peak_occupancy", Jsonx.Int (Network.peak_occupancy net));
         ( "edge_drops",
           Jsonx.Obj
             (List.map
                (fun (e, n) -> (string_of_int e, Jsonx.Int n))
                edge_drops) );
         ("max_queue", Jsonx.Int (Network.max_queue_ever net));
         ("max_dwell", Jsonx.Int (Network.max_dwell net));
         ("mean_latency", Jsonx.Float (Network.delivered_latency_mean net));
       ])

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let index_body t =
  let b = Buffer.create 512 in
  Buffer.add_string b "aqt_sim serve: rate-admission simulation service\n\n";
  Printf.bprintf b "admission: rho=%g req/s, sigma=%d (token bucket)\n"
    t.cfg.rho t.cfg.sigma;
  Printf.bprintf b "workers: %d, queue capacity: %d\n\n" t.cfg.workers
    t.queue_cap;
  Buffer.add_string b
    "endpoints:\n\
    \  GET  /healthz              liveness\n\
    \  GET  /metrics              Prometheus text format\n\
    \  GET  /sweep?network=ring:8&d=4&horizon=20000&rates=1/4,1/2&policy=all\n\
    \  POST /sweep                same parameters as a JSON body\n\
    \  GET  /experiment/<name>    cached run of a registered experiment\n\
    \  GET  /figure/<id>          report figure as SVG\n\
    \  GET  /simulate?network=ring:8&policy=fifo&rate=1/4&horizon=5000\n\
    \       [&seed=N][&cap=K&drop=drop-tail|drop-head&speedup=S]\n";
  Buffer.contents b

let strip_prefix ~prefix s =
  if String.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let route t rng (req : Http.request) =
  let get_like = req.Http.meth = "GET" || req.Http.meth = "HEAD" in
  match req.Http.path with
  | "/healthz" when get_like -> text "ok\n"
  | "/metrics" when get_like ->
      {
        status = 200;
        ctype = "text/plain; version=0.0.4; charset=utf-8";
        content = Metrics.render t.metrics;
      }
  | "/" when get_like -> text (index_body t)
  | "/sweep" when get_like -> sweep_handler t (sweep_params_of_query req.Http.query)
  | "/sweep" when req.Http.meth = "POST" ->
      sweep_handler t (sweep_params_of_json req.Http.body)
  | "/simulate" when get_like -> simulate_handler t rng req.Http.query
  | ("/healthz" | "/metrics" | "/" | "/sweep" | "/simulate") ->
      text ~status:405 "method not allowed\n"
  | path -> (
      match strip_prefix ~prefix:"/experiment/" path with
      | Some name when get_like -> experiment_handler t name
      | Some _ -> text ~status:405 "method not allowed\n"
      | None -> (
          match strip_prefix ~prefix:"/figure/" path with
          | Some id when get_like -> figure_handler t id
          | Some _ -> text ~status:405 "method not allowed\n"
          | None -> text ~status:404 "not found\n"))

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let serve_conn t rng conn =
  Metrics.add_gauge t.m.in_flight 1.;
  let fd = conn.fd in
  let respond ?(head_only = false) (o : out) =
    (try
       Http.write_response fd
         ~headers:[ ("Content-Type", o.ctype) ]
         ~head_only ~status:o.status ~body:o.content
     with Unix.Unix_error _ -> Metrics.inc t.m.write_errors);
    Metrics.inc (status_counter t o.status);
    Metrics.observe t.m.latency (now () -. conn.accepted_at)
  in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout;
     match Http.read_request fd with
     | Error Http.Closed -> Metrics.inc t.m.read_errors
     | Error Http.Timeout ->
         Metrics.inc t.m.read_errors;
         respond (text ~status:408 "request read timed out\n")
     | Error (Http.Too_large what) ->
         Metrics.inc t.m.read_errors;
         respond (text ~status:413 (Printf.sprintf "too large: %s\n" what))
     | Error (Http.Malformed what) ->
         Metrics.inc t.m.read_errors;
         respond (text ~status:400 (Printf.sprintf "malformed request: %s\n" what))
     | Ok req ->
         let o =
           try route t rng req with
           | Bad_request msg -> text ~status:400 ("bad request: " ^ msg ^ "\n")
           | Failure msg -> text ~status:500 ("internal error: " ^ msg ^ "\n")
           | Invalid_argument msg ->
               text ~status:500 ("internal error: " ^ msg ^ "\n")
         in
         respond ~head_only:(req.Http.meth = "HEAD") o
   with e ->
     (* A handler bug must never take a worker domain down with it. *)
     Metrics.inc t.m.read_errors;
     ignore (Printexc.to_string e));
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  close_quietly fd;
  Metrics.add_gauge t.m.in_flight (-1.)

let worker_loop t i () =
  let rng = Prng.stream t.base_rng i in
  let gc_words =
    Metrics.gauge t.metrics
      (Printf.sprintf "serve_worker_minor_words{worker=\"%d\"}" i)
      ~help:"Minor heap words allocated by each worker domain."
  in
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.qcond t.qlock
    done;
    let job =
      if Queue.is_empty t.queue then None
      else begin
        let c = Queue.pop t.queue in
        Metrics.set_gauge t.m.queue_depth (float_of_int (Queue.length t.queue));
        Some c
      end
    in
    Mutex.unlock t.qlock;
    match job with
    | None -> ()  (* draining and empty: exit *)
    | Some conn ->
        serve_conn t rng conn;
        Metrics.set_gauge gc_words (Gc.minor_words ());
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)
(* ------------------------------------------------------------------ *)

let write_snapshot t =
  Metrics.set_gauge t.m.tokens (Bucket.level t.bucket);
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.write j
        (Journal.Snapshot
           { at = now (); label = "serve.metrics"; values = Metrics.snapshot t.metrics })

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* 429/503 are written from the accept loop itself: shed work must not
   consume the worker pool it is protecting. *)
let respond_direct t fd status body =
  (try
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout;
     Http.write_response fd ~headers:[ ("Retry-After", "1") ] ~status ~body
   with Unix.Unix_error _ -> Metrics.inc t.m.write_errors);
  Metrics.inc (status_counter t status);
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  close_quietly fd

let handle_new t fd =
  Metrics.inc t.m.requests;
  if not (Bucket.try_take t.bucket) then begin
    Metrics.inc t.m.shed;
    respond_direct t fd 429 "shed: (rho,sigma) admission budget exhausted\n"
  end
  else begin
    Mutex.lock t.qlock;
    if t.draining || Queue.length t.queue >= t.queue_cap then begin
      Mutex.unlock t.qlock;
      Metrics.inc t.m.rejected;
      respond_direct t fd 503
        (if Atomic.get t.stop_flag then "shutting down\n" else "queue full\n")
    end
    else begin
      Queue.push { fd; accepted_at = now () } t.queue;
      Metrics.set_gauge t.m.queue_depth (float_of_int (Queue.length t.queue));
      Condition.signal t.qcond;
      Mutex.unlock t.qlock
    end
  end

let accept_burst t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        handle_new t fd;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> go ()
  in
  go ()

let shutdown t =
  close_quietly t.listen_fd;
  Mutex.lock t.qlock;
  t.draining <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qlock;
  List.iter Domain.join t.worker_domains;
  t.worker_domains <- [];
  write_snapshot t;
  (match t.journal with Some j -> Journal.close j | None -> ());
  close_quietly t.wake_r;
  close_quietly t.wake_w;
  if not t.cfg.quiet then Printf.printf "serve: drained, bye\n%!";
  Atomic.set t.stopped_flag true

let accept_loop t () =
  let tick = if t.cfg.snapshot_every > 0. then t.cfg.snapshot_every else 3600. in
  let next_snapshot = ref (now () +. tick) in
  while not (Atomic.get t.stop_flag) do
    (match Unix.select [ t.listen_fd; t.wake_r ] [] [] 0.25 with
    | ready, _, _ ->
        if List.mem t.wake_r ready then drain_wake t;
        if List.mem t.listen_fd ready then accept_burst t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if now () >= !next_snapshot then begin
      next_snapshot := now () +. tick;
      if t.cfg.snapshot_every > 0. then write_snapshot t;
      match t.cfg.cache_max_bytes with
      | Some max_bytes -> ignore (Cache.trim t.cache ~max_bytes)
      | None -> ()
    end
  done;
  shutdown t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let journal_path dir =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Filename.concat
    (Filename.concat dir "journal")
    (Printf.sprintf "serve-%04d%02d%02d-%02d%02d%02d-%d.jsonl"
       (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
       tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec (Unix.getpid ()))

let start ?(registry = Registry.create ()) ?(figures = []) cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.rho <= 0. || not (Float.is_finite cfg.rho) then
    invalid_arg "Server.start: rho must be positive";
  if cfg.sigma < 1 then invalid_arg "Server.start: sigma must be >= 1";
  if cfg.read_timeout <= 0. || cfg.write_timeout <= 0. then
    invalid_arg "Server.start: timeouts must be positive";
  let queue_cap = if cfg.queue_capacity <= 0 then cfg.sigma else cfg.queue_capacity in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      let addr =
        try Unix.inet_addr_of_string cfg.host
        with Failure _ -> invalid_arg ("Server.start: bad host " ^ cfg.host)
      in
      Unix.bind listen_fd (Unix.ADDR_INET (addr, cfg.port));
      Unix.listen listen_fd 128;
      Unix.set_nonblock listen_fd;
      let bound_port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      let wake_r, wake_w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock wake_r;
      Unix.set_nonblock wake_w;
      let metrics = Metrics.create () in
      {
        cfg;
        registry;
        figures;
        listen_fd;
        bound_port;
        bucket = Bucket.create ~rho:cfg.rho ~sigma:cfg.sigma ();
        queue = Queue.create ();
        qlock = Mutex.create ();
        qcond = Condition.create ();
        draining = false;
        queue_cap;
        stop_flag = Atomic.make false;
        stopped_flag = Atomic.make false;
        wake_r;
        wake_w;
        metrics;
        m = make_handles metrics;
        cache = Cache.create ~dir:(Filename.concat cfg.campaign_dir "cache");
        journal =
          (if cfg.journal then Some (Journal.create (journal_path cfg.campaign_dir))
           else None);
        figure_memo = Hashtbl.create 8;
        flock = Mutex.create ();
        base_rng = Prng.create 0x53455256;
        worker_domains = [];
        accept_domain = None;
      }
    with e ->
      close_quietly listen_fd;
      raise e
  in
  t.worker_domains <- List.init cfg.workers (fun i -> Domain.spawn (worker_loop t i));
  t.accept_domain <- Some (Domain.spawn (accept_loop t));
  if not cfg.quiet then
    Printf.printf "serve: listening on %s:%d (workers=%d rho=%g sigma=%d queue=%d)\n%!"
      cfg.host t.bound_port cfg.workers cfg.rho cfg.sigma queue_cap;
  t

let request_stop t =
  if not (Atomic.exchange t.stop_flag true) then
    try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (* Poll instead of blocking in join so the calling thread keeps servicing
     OCaml signal handlers (SIGTERM/SIGINT call request_stop). *)
  while not (Atomic.get t.stopped_flag) do
    Unix.sleepf 0.05
  done;
  match t.accept_domain with
  | Some d ->
      t.accept_domain <- None;
      Domain.join d
  | None -> ()

let stop t =
  request_stop t;
  wait t
