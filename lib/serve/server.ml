module Ratio = Aqt_util.Ratio
module Prng = Aqt_util.Prng
module Jsonx = Aqt_util.Jsonx
module Parallel = Aqt_util.Parallel
module Build = Aqt_graph.Build
module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Policies = Aqt_policy.Policies
module Stock = Aqt_adversary.Stock
module Spec = Aqt_harness.Spec
module Registry = Aqt_harness.Registry
module Cache = Aqt_harness.Cache
module Journal = Aqt_harness.Journal
module Campaign = Aqt_harness.Campaign
module Report = Aqt_report.Report
module Capacity = Aqt_capacity.Model
module Tradeoff = Aqt_capacity.Tradeoff

type config = {
  host : string;
  port : int;
  workers : int;
  rho : float;
  sigma : int;
  queue_capacity : int;
  read_timeout : float;
  write_timeout : float;
  campaign_dir : string;
  salt : string;
  snapshot_every : float;
  journal : bool;
  cache_max_bytes : int option;
  quiet : bool;
  sweep_rho : float;
  sweep_sigma : int;
  client_rho : float;
  client_sigma : int;
  client_buckets_max : int;
  client_key_header : string;
  max_conns : int;
  max_pipeline : int;
  idle_timeout : float;
  sweep_shards : int;
  clock : unit -> float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    workers = max 2 (Domain.recommended_domain_count () - 2);
    rho = 50.;
    sigma = 32;
    queue_capacity = 0;
    read_timeout = 5.;
    write_timeout = 5.;
    campaign_dir = Campaign.default_options.Campaign.dir;
    salt = Campaign.default_options.Campaign.salt;
    snapshot_every = 10.;
    journal = true;
    cache_max_bytes = None;
    quiet = false;
    sweep_rho = 0.;
    sweep_sigma = 0;
    client_rho = 0.;
    client_sigma = 0;
    client_buckets_max = 1024;
    client_key_header = "";
    max_conns = 4096;
    max_pipeline = 8;
    idle_timeout = 30.;
    sweep_shards = 0;
    clock = Clock.monotonic;
  }

(* ------------------------------------------------------------------ *)
(* Metrics handles                                                     *)
(* ------------------------------------------------------------------ *)

type handles = {
  requests : Metrics.counter;
  conns_total : Metrics.counter;
  shed : Metrics.counter;
  shed_client : Metrics.counter;
  rejected : Metrics.counter;
  cache_hits : Metrics.counter;
  cache_misses : Metrics.counter;
  read_errors : Metrics.counter;
  write_errors : Metrics.counter;
  in_flight : Metrics.gauge;
  queue_depth : Metrics.gauge;
  open_conns : Metrics.gauge;
  tokens : Metrics.gauge;
  sweep_tokens : Metrics.gauge;
  client_keys : Metrics.gauge;
  latency : Metrics.histogram;
  sim_dropped : Metrics.counter;
  sim_displaced : Metrics.counter;
  sim_peak_occupancy : Metrics.gauge;
}

let make_handles m =
  {
    requests =
      Metrics.counter m "serve_requests_total"
        ~help:"Requests parsed off client connections.";
    conns_total =
      Metrics.counter m "serve_connections_total"
        ~help:"Connections accepted by the listener.";
    shed =
      Metrics.counter m "serve_shed_total"
        ~help:"Requests shed with 429 by a (rho,sigma) admission bucket.";
    shed_client =
      Metrics.counter m "serve_shed_client_total"
        ~help:"The subset of sheds charged to a per-client bucket.";
    rejected =
      Metrics.counter m "serve_rejected_total"
        ~help:"Admitted requests rejected with 503 (queue full or draining).";
    cache_hits =
      Metrics.counter m "serve_cache_hits_total"
        ~help:"Sweep/experiment responses served from the result cache.";
    cache_misses =
      Metrics.counter m "serve_cache_misses_total"
        ~help:"Sweep/experiment responses that had to be computed.";
    read_errors =
      Metrics.counter m "serve_read_errors_total"
        ~help:"Requests that died before a response (timeout, close, parse).";
    write_errors =
      Metrics.counter m "serve_write_errors_total"
        ~help:"Responses the peer did not take (gone or send deadline).";
    in_flight =
      Metrics.gauge m "serve_in_flight" ~help:"Requests being served now.";
    queue_depth =
      Metrics.gauge m "serve_queue_depth"
        ~help:"Admitted requests waiting for a worker.";
    open_conns =
      Metrics.gauge m "serve_open_connections"
        ~help:"Connections currently held by the event loop.";
    tokens =
      Metrics.gauge m "serve_admission_tokens"
        ~help:"Default endpoint bucket level at the last snapshot tick.";
    sweep_tokens =
      Metrics.gauge m "serve_sweep_admission_tokens"
        ~help:"/sweep endpoint bucket level at the last snapshot tick.";
    client_keys =
      Metrics.gauge m "serve_client_buckets"
        ~help:"Live per-client admission buckets.";
    latency =
      Metrics.histogram m "serve_request_seconds"
        ~help:"Arrival-to-response latency of served requests.";
    sim_dropped =
      Metrics.counter m "serve_sim_dropped_total"
        ~help:"Packets dropped by finite-capacity buffers across /simulate runs.";
    sim_displaced =
      Metrics.counter m "serve_sim_displaced_total"
        ~help:"Buffered packets evicted by drop-head arrivals across /simulate runs.";
    sim_peak_occupancy =
      Metrics.gauge m "serve_sim_peak_occupancy"
        ~help:"Peak total buffered packets of the most recent /simulate run.";
  }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

(* Handler outcome, before encoding. *)
type out = { status : int; ctype : string; content : string }

(* A fully-ordered response ready to enter a connection's write queue. *)
type resp = {
  rseq : int;
  rstatus : int;
  rkeep : bool;
  rarrival : float;
  rbytes : string;
}

(* Per-connection state machine, owned by the event-loop domain. *)
type conn = {
  fd : Unix.file_descr;
  id : int;
  peer : string;
  accepted_at : float;
  parser : Http.Parser.t;
  outq : string Queue.t;
  mutable cur : string; (* partially-written head of outq *)
  mutable cur_off : int;
  mutable next_seq : int; (* next request sequence number *)
  mutable emit_seq : int; (* next response allowed into outq *)
  mutable pending : resp list; (* completed out of order *)
  mutable inflight : int; (* dispatched to workers, not yet back *)
  mutable close_after : bool; (* stop reading; close once flushed *)
  mutable eof : bool;
  mutable dl_gen : int; (* invalidates stale timer-wheel entries *)
  mutable alive : bool;
}

type job = {
  jid : int;
  jseq : int;
  jarrival : float;
  jhead : bool;
  jkeep : bool;
  jreq : Http.request;
}

type completion = {
  cid : int;
  cseq : int;
  carrival : float;
  chead : bool;
  ckeep : bool;
  cout : out;
}

type t = {
  cfg : config;
  registry : Registry.t;
  figures : Report.figure list;
  listen_fd : Unix.file_descr;
  bound_port : int;
  now_mono : unit -> float;
  (* admission *)
  bucket : Bucket.t; (* default endpoint class *)
  sweep_bucket : Bucket.t; (* /sweep endpoint class *)
  client_buckets : Bucket.Keyed.t;
  client_key_header : string; (* lower-cased; "" = key on peer address *)
  (* worker dispatch *)
  jobs : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable draining : bool; (* under qlock *)
  queue_cap : int;
  (* completions, workers -> event loop *)
  comps : completion Queue.t;
  comp_lock : Mutex.t;
  (* lifecycle *)
  stop_flag : bool Atomic.t;
  stopped_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* event-loop-owned connection state (no lock needed) *)
  conns : (int, conn) Hashtbl.t; (* by conn id *)
  by_fd : (int, conn) Hashtbl.t; (* by raw fd *)
  wheel : (int * int) Timewheel.t; (* (conn id, dl_gen) *)
  rbuf : Bytes.t; (* shared read scratch *)
  metrics : Metrics.t;
  m : handles;
  cache : Cache.t;
  journal : Journal.writer option;
  figure_memo : (string, string * int ref) Hashtbl.t;
  flock : Mutex.t;
  base_rng : Prng.t;
  mutable worker_domains : unit Domain.t list;
  mutable loop_domain : unit Domain.t option;
  mutable next_conn_id : int;
}

let port t = t.bound_port
let metrics t = t.metrics
let stopped t = Atomic.get t.stopped_flag

external fd_int : Unix.file_descr -> int = "%identity"

let status_counter t status =
  Metrics.counter t.metrics
    (Printf.sprintf "serve_responses_total{status=\"%d\"}" status)
    ~help:"Responses written, by status code."

(* ------------------------------------------------------------------ *)
(* Request parameter parsing                                           *)
(* ------------------------------------------------------------------ *)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let q_str q key default = Option.value (List.assoc_opt key q) ~default

let q_int q key default =
  match List.assoc_opt key q with
  | None -> default
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some i -> i
      | None -> bad "parameter %s: expected an integer, got %S" key v)

let parse_ratio ~what s =
  let s = String.trim s in
  match String.index_opt s '/' with
  | Some i -> (
      let num = int_of_string_opt (String.sub s 0 i)
      and den =
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      in
      match (num, den) with
      | Some p, Some q when q <> 0 -> Ratio.make p q
      | _ -> bad "%s: bad rational %S" what s)
  | None -> (
      match float_of_string_opt s with
      | Some f when Float.is_finite f -> Ratio.of_float_approx f
      | _ -> bad "%s: bad rate %S" what s)

type net_spec = Line of int | Ring of int

let net_spec_to_string = function
  | Line k -> Printf.sprintf "line:%d" k
  | Ring k -> Printf.sprintf "ring:%d" k

let max_net_size = 4096

let parse_net s =
  let size k lo =
    match int_of_string_opt k with
    | Some k when k >= lo && k <= max_net_size -> k
    | Some _ -> bad "network %S: size out of range [%d, %d]" s lo max_net_size
    | None -> bad "network %S: bad size" s
  in
  match String.split_on_char ':' (String.trim s) with
  | [ "line"; k ] -> Line (size k 1)
  | [ "ring"; k ] -> Ring (size k 3)
  | _ -> bad "unknown network %S (line:K | ring:K)" s

let build_net ~d = function
  | Line k ->
      let l = Build.line k in
      let d = min d k in
      (l.Build.graph, List.init (k - d + 1) (fun i -> Array.sub l.Build.edges i d))
  | Ring k ->
      let r = Build.ring k in
      let d = min d (k - 1) in
      ( r.Build.graph,
        List.init k (fun i ->
            Array.init d (fun j -> r.Build.edges.((i + j) mod k))) )

let resolve_policy name =
  let name = String.trim name in
  try Policies.by_name name with Not_found -> bad "unknown policy %S" name

let max_horizon = 200_000

let check_horizon h =
  if h < 1 || h > max_horizon then
    bad "horizon %d out of range [1, %d]" h max_horizon;
  h

let check_hops d = if d < 1 || d > 64 then bad "hops %d out of range [1, 64]" d else d

let text ?(status = 200) content =
  { status; ctype = "text/plain; charset=utf-8"; content }

let json ?(status = 200) j =
  { status; ctype = "application/json"; content = Jsonx.to_string j ^ "\n" }

(* ------------------------------------------------------------------ *)
(* /sweep                                                              *)
(* ------------------------------------------------------------------ *)

type sweep_params = {
  sp_net : net_spec;
  sp_d : int;
  sp_horizon : int;
  sp_rates : Ratio.t list;
  sp_policies : Aqt_engine.Policy_type.t list;
}

let check_rates rates =
  if rates = [] then bad "at least one rate is required";
  if List.length rates > 16 then bad "at most 16 rates per sweep";
  List.iter
    (fun r ->
      if Ratio.(r <= zero) then bad "rate %s must be positive" (Ratio.to_string r))
    rates;
  rates

let parse_policies s =
  match String.trim s with
  | "" | "all" -> Policies.all_deterministic
  | s -> List.map resolve_policy (String.split_on_char ',' s)

let sweep_params_of_query q =
  {
    sp_net = parse_net (q_str q "network" "ring:8");
    sp_d = check_hops (q_int q "d" 4);
    sp_horizon = check_horizon (q_int q "horizon" 20_000);
    sp_rates =
      check_rates
        (List.map (parse_ratio ~what:"rates")
           (String.split_on_char ',' (q_str q "rates" "1/8,1/4,1/2,3/4")));
    sp_policies = parse_policies (q_str q "policy" "all");
  }

(* POST /sweep body: {"network": "ring:8", "d": 4, "horizon": 20000,
   "rates": ["1/4", 0.5], "policies": ["fifo", "lis"] | "all"} *)
let sweep_params_of_json body =
  let j =
    try Jsonx.of_string body with Failure msg -> bad "body is not JSON: %s" msg
  in
  let obj = match j with Jsonx.Obj _ -> j | _ -> bad "body must be a JSON object" in
  let str_field key default =
    match Jsonx.member key obj with
    | None | Some Jsonx.Null -> default
    | Some (Jsonx.Str s) -> s
    | Some _ -> bad "field %s must be a string" key
  in
  let int_field key default =
    match Jsonx.member key obj with
    | None | Some Jsonx.Null -> default
    | Some (Jsonx.Int i) -> i
    | Some _ -> bad "field %s must be an integer" key
  in
  let rate_of = function
    | Jsonx.Str s -> parse_ratio ~what:"rates" s
    | Jsonx.Int i -> Ratio.of_int i
    | Jsonx.Float f when Float.is_finite f -> Ratio.of_float_approx f
    | _ -> bad "rates must be strings or numbers"
  in
  let rates =
    match Jsonx.member "rates" obj with
    | None | Some Jsonx.Null ->
        [ Ratio.make 1 8; Ratio.make 1 4; Ratio.make 1 2; Ratio.make 3 4 ]
    | Some (Jsonx.List l) -> List.map rate_of l
    | Some v -> [ rate_of v ]
  in
  let policies =
    match Jsonx.member "policies" obj with
    | None | Some Jsonx.Null -> parse_policies (str_field "policy" "all")
    | Some (Jsonx.Str s) -> parse_policies s
    | Some (Jsonx.List l) ->
        List.map
          (function
            | Jsonx.Str s -> resolve_policy s
            | _ -> bad "policies must be strings")
          l
    | Some _ -> bad "field policies must be a string or a list"
  in
  {
    sp_net = parse_net (str_field "network" "ring:8");
    sp_d = check_hops (int_field "d" 4);
    sp_horizon = check_horizon (int_field "horizon" 20_000);
    sp_rates = check_rates rates;
    sp_policies = policies;
  }

let sweep_spec p =
  [
    ("version", Spec.Int 1);
    ("network", Spec.Str (net_spec_to_string p.sp_net));
    ("d", Spec.Int p.sp_d);
    ("horizon", Spec.Int p.sp_horizon);
    ( "rates",
      Spec.List
        (List.map (fun r -> Spec.Ratio (Ratio.num r, Ratio.den r)) p.sp_rates) );
    ( "policies",
      Spec.List
        (List.map
           (fun (pol : Aqt_engine.Policy_type.t) -> Spec.Str pol.name)
           p.sp_policies) );
  ]

(* Same grid as `aqt_sim sweep`, built into a Registry.result so it can be
   content-addressed into the shared campaign cache.  Cells are
   independent (policy, rate) classifications, so they shard across
   domains; each cell interns its own routes, which costs a little
   duplicate work in exchange for no shared mutable state. *)
let compute_sweep ?(shards = 1) p =
  let graph, routes = build_net ~d:p.sp_d p.sp_net in
  let cells =
    List.concat_map
      (fun policy -> List.map (fun rate -> (policy, rate)) p.sp_rates)
      p.sp_policies
  in
  let run_cell ((policy : Aqt_engine.Policy_type.t), rate) =
    let route_table = Aqt_engine.Route_intern.create () in
    let per_route =
      Ratio.div rate (Ratio.of_int (max 1 (List.length routes)))
    in
    let adv =
      Stock.shared_token_bucket ~rate:per_route ~routes ~horizon:p.sp_horizon ()
    in
    let adv = { adv with Stock.rate } in
    let report =
      Aqt.Sweep.classify ~route_table ~name:"serve.sweep" ~graph ~policy
        ~adversary:adv ~horizon:p.sp_horizon ()
    in
    [
      policy.name;
      Ratio.to_string rate;
      Aqt.Sweep.verdict_to_string report.Aqt.Sweep.verdict;
      string_of_int report.Aqt.Sweep.max_queue;
      string_of_int report.Aqt.Sweep.final_backlog;
    ]
  in
  let workers = max 1 (min shards (List.length cells)) in
  let rows = Parallel.map ~workers run_cell cells in
  let rb = Registry.Rb.create () in
  Registry.Rb.table rb ~id:"serve_sweep"
    ~headers:[ "policy"; "rate"; "verdict"; "max queue"; "final backlog" ]
    rows;
  Registry.Rb.metric rb "cells" (float_of_int (List.length cells));
  Registry.Rb.result rb

let result_payload ~name ~key ~cached ~duration result =
  Jsonx.Obj
    [
      ("name", Jsonx.Str name);
      ("key", Jsonx.Str key);
      ("cached", Jsonx.Bool cached);
      ("duration", Jsonx.Float duration);
      ("result", Registry.result_to_json result);
    ]

let serve_cached t ~name ~spec ~compute =
  let key = Spec.hash ~salt:t.cfg.salt ~name spec in
  match Cache.lookup t.cache ~key with
  | Some c ->
      Metrics.inc t.m.cache_hits;
      (* The hit refreshes the entry's mtime, turning trim's
         oldest-first eviction into LRU. *)
      Cache.touch t.cache ~key;
      json
        (result_payload ~name ~key ~cached:true ~duration:c.Cache.duration
           c.Cache.result)
  | None ->
      Metrics.inc t.m.cache_misses;
      let t0 = t.now_mono () in
      let result = compute () in
      let duration = t.now_mono () -. t0 in
      Cache.store t.cache ~key ~name ~spec ~duration result;
      json (result_payload ~name ~key ~cached:false ~duration result)

let sweep_handler t p =
  serve_cached t ~name:"serve.sweep" ~spec:(sweep_spec p) ~compute:(fun () ->
      compute_sweep ~shards:(max 1 t.cfg.sweep_shards) p)

(* ------------------------------------------------------------------ *)
(* /experiment/<name>                                                  *)
(* ------------------------------------------------------------------ *)

let experiment_handler t name =
  match Registry.find t.registry name with
  | None -> text ~status:404 (Printf.sprintf "unknown experiment %S\n" name)
  | Some entry ->
      serve_cached t ~name:entry.Registry.name ~spec:entry.Registry.spec
        ~compute:entry.Registry.run

(* ------------------------------------------------------------------ *)
(* /figure/<id>                                                        *)
(* ------------------------------------------------------------------ *)

let render_figure t (fig : Report.figure) =
  let options =
    {
      Campaign.default_options with
      Campaign.dir = t.cfg.campaign_dir;
      salt = t.cfg.salt;
      quiet = true;
    }
  in
  let ctx = Report.build_ctx ~registry:t.registry ~options [ fig ] in
  fig.Report.render ctx

let max_figure_memo = 64

let figure_handler t id =
  let svg body = { status = 200; ctype = "image/svg+xml"; content = body } in
  (* One mutex serializes renders: figure campaigns journal into the shared
     campaign dir, and a render is expensive enough that piling every worker
     onto a cold figure would only waste domains. *)
  Mutex.lock t.flock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.flock)
    (fun () ->
      match Hashtbl.find_opt t.figure_memo id with
      | Some (body, hits) ->
          Metrics.inc t.m.cache_hits;
          incr hits;
          svg body
      | None -> (
          match
            List.find_opt (fun (f : Report.figure) -> f.Report.id = id) t.figures
          with
          | None -> text ~status:404 (Printf.sprintf "unknown figure %S\n" id)
          | Some fig ->
              Metrics.inc t.m.cache_misses;
              let body = render_figure t fig in
              (* Bounded memo with hit-count retention: when full, the
                 least-requested render goes first. *)
              if Hashtbl.length t.figure_memo >= max_figure_memo then begin
                let victim = ref None in
                Hashtbl.iter
                  (fun k (_, h) ->
                    match !victim with
                    | Some (_, hv) when hv <= !h -> ()
                    | _ -> victim := Some (k, !h))
                  t.figure_memo;
                match !victim with
                | Some (k, _) -> Hashtbl.remove t.figure_memo k
                | None -> ()
              end;
              Hashtbl.replace t.figure_memo id (body, ref 1);
              svg body))

(* ------------------------------------------------------------------ *)
(* /simulate                                                           *)
(* ------------------------------------------------------------------ *)

let simulate_handler t rng q =
  let spec = parse_net (q_str q "network" "ring:8") in
  let d = check_hops (q_int q "d" 4) in
  let horizon = check_horizon (q_int q "horizon" 5_000) in
  let rate = parse_ratio ~what:"rate" (q_str q "rate" "1/4") in
  if Ratio.(rate <= zero) then bad "rate must be positive";
  let policy = resolve_policy (q_str q "policy" "fifo") in
  let stochastic =
    match String.lowercase_ascii (q_str q "stochastic" "false") with
    | "1" | "true" | "yes" -> true
    | "0" | "false" | "no" -> false
    | v -> bad "parameter stochastic: expected a boolean, got %S" v
  in
  let speedup = q_int q "speedup" 1 in
  if speedup < 1 then bad "speedup must be >= 1";
  let drop =
    let v = q_str q "drop" "drop-tail" in
    match Capacity.policy_of_string v with
    | Some p -> p
    | None -> bad "parameter drop: expected drop-tail or drop-head, got %S" v
  in
  let capacity =
    match List.assoc_opt "cap" q with
    | None | Some "" | Some "inf" ->
        if speedup = 1 then Capacity.unbounded
        else Capacity.make ~speedup Capacity.Unbounded
    | Some v -> (
        match int_of_string_opt v with
        | Some c when c >= 0 -> Capacity.uniform ~policy:drop ~speedup c
        | _ -> bad "parameter cap: expected a non-negative integer, got %S" v)
  in
  let seed =
    match List.assoc_opt "seed" q with
    | Some v -> (
        match int_of_string_opt v with
        | Some s -> s
        | None -> bad "parameter seed: expected an integer, got %S" v)
    | None ->
        (* The worker's own decorrelated stream: each worker draws distinct
           seeds, and the chosen seed is reported so the run can be replayed. *)
        Int64.to_int (Prng.bits64 rng) land 0x3FFFFFFF
  in
  let graph, routes = build_net ~d spec in
  let nroutes = List.length routes in
  let per_route = Ratio.div rate (Ratio.of_int (max 1 (min d nroutes))) in
  let adv =
    if stochastic then
      Stock.bernoulli ~prng:(Prng.create seed) ~rate:per_route ~routes ()
    else Stock.windowed_burst ~w:40 ~rate:per_route ~routes ~horizon ()
  in
  let net = Network.create ~capacity ~graph ~policy () in
  let outcome = Sim.run ~net ~driver:adv.Stock.driver ~horizon () in
  let injected = Network.injected_count net in
  let dropped = Network.dropped net in
  let edge_drops =
    List.filter_map
      (fun e ->
        match Network.dropped_on_edge net e with
        | 0 -> None
        | n -> Some (e, n))
      (List.init (Aqt_graph.Digraph.n_edges graph) Fun.id)
  in
  (* Per-edge drop counters carry the edge id as an inline Prometheus
     label; simulate networks are small, so the label set stays modest.
     The aggregate counters accumulate across runs; the occupancy gauge
     tracks the latest run (its _peak snapshot the all-time high). *)
  Metrics.inc ~by:dropped t.m.sim_dropped;
  Metrics.inc ~by:(Network.displaced net) t.m.sim_displaced;
  Metrics.set_gauge t.m.sim_peak_occupancy
    (float_of_int (Network.peak_occupancy net));
  List.iter
    (fun (e, n) ->
      Metrics.inc ~by:n
        (Metrics.counter t.metrics
           (Printf.sprintf "serve_sim_edge_drops_total{edge=\"%d\"}" e)
           ~help:"Per-edge drop totals across /simulate runs."))
    edge_drops;
  json
    (Jsonx.Obj
       [
         ("network", Jsonx.Str (net_spec_to_string spec));
         ("policy", Jsonx.Str policy.Aqt_engine.Policy_type.name);
         ("rate", Jsonx.Str (Ratio.to_string rate));
         ("adversary", Jsonx.Str adv.Stock.name);
         ("seed", Jsonx.Int seed);
         ("capacity", Jsonx.Str (Capacity.describe capacity));
         ("speedup", Jsonx.Int speedup);
         ("steps", Jsonx.Int outcome.Sim.steps_run);
         ("injected", Jsonx.Int injected);
         ("absorbed", Jsonx.Int (Network.absorbed net));
         ("in_flight", Jsonx.Int (Network.in_flight net));
         ("dropped", Jsonx.Int dropped);
         ("displaced", Jsonx.Int (Network.displaced net));
         ("drop_rate", Jsonx.Float (Tradeoff.drop_rate ~injected ~dropped));
         ("peak_occupancy", Jsonx.Int (Network.peak_occupancy net));
         ( "edge_drops",
           Jsonx.Obj
             (List.map
                (fun (e, n) -> (string_of_int e, Jsonx.Int n))
                edge_drops) );
         ("max_queue", Jsonx.Int (Network.max_queue_ever net));
         ("max_dwell", Jsonx.Int (Network.max_dwell net));
         ("mean_latency", Jsonx.Float (Network.delivered_latency_mean net));
       ])

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let index_body t =
  let b = Buffer.create 512 in
  Buffer.add_string b "aqt_sim serve: rate-admission simulation service\n\n";
  Printf.bprintf b
    "admission: rho=%g req/s sigma=%d (default), sweep rho=%g sigma=%d,\n\
    \           per-client rho=%g sigma=%d (keyed by %s, max %d keys)\n"
    (Bucket.rho t.bucket) (Bucket.sigma t.bucket)
    (Bucket.rho t.sweep_bucket) (Bucket.sigma t.sweep_bucket)
    t.cfg.client_rho t.cfg.client_sigma
    (if t.client_key_header = "" then "peer address"
     else t.client_key_header ^ " header")
    t.cfg.client_buckets_max;
  Printf.bprintf b
    "workers: %d, queue capacity: %d, max conns: %d, pipeline depth: %d\n\n"
    t.cfg.workers t.queue_cap t.cfg.max_conns t.cfg.max_pipeline;
  Buffer.add_string b
    "endpoints:\n\
    \  GET  /healthz              liveness\n\
    \  GET  /metrics              Prometheus text format\n\
    \  GET  /sweep?network=ring:8&d=4&horizon=20000&rates=1/4,1/2&policy=all\n\
    \  POST /sweep                same parameters as a JSON body\n\
    \  GET  /experiment/<name>    cached run of a registered experiment\n\
    \  GET  /figure/<id>          report figure as SVG\n\
    \  GET  /simulate?network=ring:8&policy=fifo&rate=1/4&horizon=5000\n\
    \       [&seed=N][&cap=K&drop=drop-tail|drop-head&speedup=S]\n";
  Buffer.contents b

let strip_prefix ~prefix s =
  if String.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let route t rng (req : Http.request) =
  let get_like = req.Http.meth = "GET" || req.Http.meth = "HEAD" in
  match req.Http.path with
  | "/healthz" when get_like -> text "ok\n"
  | "/metrics" when get_like ->
      {
        status = 200;
        ctype = "text/plain; version=0.0.4; charset=utf-8";
        content = Metrics.render t.metrics;
      }
  | "/" when get_like -> text (index_body t)
  | "/sweep" when get_like -> sweep_handler t (sweep_params_of_query req.Http.query)
  | "/sweep" when req.Http.meth = "POST" ->
      sweep_handler t (sweep_params_of_json req.Http.body)
  | "/simulate" when get_like -> simulate_handler t rng req.Http.query
  | ("/healthz" | "/metrics" | "/" | "/sweep" | "/simulate") ->
      text ~status:405 "method not allowed\n"
  | path -> (
      match strip_prefix ~prefix:"/experiment/" path with
      | Some name when get_like -> experiment_handler t name
      | Some _ -> text ~status:405 "method not allowed\n"
      | None -> (
          match strip_prefix ~prefix:"/figure/" path with
          | Some id when get_like -> figure_handler t id
          | Some _ -> text ~status:405 "method not allowed\n"
          | None -> text ~status:404 "not found\n"))

(* The event loop answers these inline, bypassing admission entirely;
   everything else passes the buckets and goes to the worker pool.
   They are cheap, allocation-light and never block — and a liveness
   probe that sheds under load gets a healthy daemon killed by its
   orchestrator. *)
let fast_path = function "/healthz" | "/metrics" | "/" -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Connection lifecycle (event-loop domain only)                       *)
(* ------------------------------------------------------------------ *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close_conn t c =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.remove t.conns c.id;
    Hashtbl.remove t.by_fd (fd_int c.fd);
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    close_quietly c.fd;
    Metrics.add_gauge t.m.open_conns (-1.)
  end

(* Re-arm the connection's single deadline for its current state.  The
   generation counter lazily invalidates whatever was already filed. *)
let rearm t c =
  if c.alive then begin
    c.dl_gen <- c.dl_gen + 1;
    let now = t.now_mono () in
    let dl =
      if c.cur <> "" || not (Queue.is_empty c.outq) then
        now +. t.cfg.write_timeout
      else if Http.Parser.buffered c.parser > 0 then now +. t.cfg.read_timeout
      else now +. t.cfg.idle_timeout
    in
    Timewheel.add t.wheel ~deadline:dl (c.id, c.dl_gen)
  end

(* A fired deadline with a current generation: no progress since the
   arm, so act on whatever the connection is stuck in. *)
let timeout_action t c =
  if c.cur <> "" || not (Queue.is_empty c.outq) then begin
    (* Peer is not draining its responses. *)
    Metrics.inc t.m.write_errors;
    close_conn t c
  end
  else if c.inflight > 0 || c.pending <> [] then
    (* A worker is still computing; that is not the peer's fault. *)
    rearm t c
  else if Http.Parser.buffered c.parser > 0 then begin
    (* Mid-request stall: answer 408 and hang up. *)
    Metrics.inc t.m.read_errors;
    let bytes =
      Http.encode_response ~keep_alive:false ~status:408
        ~body:"request read timed out\n" ()
    in
    Metrics.inc (status_counter t 408);
    Queue.push bytes c.outq;
    c.close_after <- true;
    rearm t c
  end
  else close_conn t c (* idle keep-alive expiry *)

(* Write as much of the out-queue as the socket accepts. *)
let rec flush t c =
  if c.alive then begin
    if c.cur = "" && not (Queue.is_empty c.outq) then begin
      c.cur <- Queue.pop c.outq;
      c.cur_off <- 0
    end;
    if c.cur <> "" then begin
      match
        Unix.write_substring c.fd c.cur c.cur_off
          (String.length c.cur - c.cur_off)
      with
      | n ->
          c.cur_off <- c.cur_off + n;
          if c.cur_off >= String.length c.cur then begin
            c.cur <- "";
            c.cur_off <- 0
          end;
          rearm t c;
          flush t c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush t c
      | exception Unix.Unix_error _ ->
          Metrics.inc t.m.write_errors;
          close_conn t c
    end;
    if
      c.alive && c.close_after && c.cur = ""
      && Queue.is_empty c.outq
      && c.inflight = 0 && c.pending = []
    then close_conn t c
  end

(* Pipelined responses must leave in request order: a response for the
   wrong sequence number parks in [pending] until its turn. *)
let rec emit t c (r : resp) =
  if not c.alive then ()
  else if r.rseq = c.emit_seq then begin
    Queue.push r.rbytes c.outq;
    c.emit_seq <- c.emit_seq + 1;
    Metrics.inc (status_counter t r.rstatus);
    Metrics.observe t.m.latency (t.now_mono () -. r.rarrival);
    if not r.rkeep then c.close_after <- true;
    match List.partition (fun p -> p.rseq = c.emit_seq) c.pending with
    | [ nxt ], rest ->
        c.pending <- rest;
        emit t c nxt
    | _ -> ()
  end
  else c.pending <- r :: c.pending

let make_resp t ~seq ~arrival ~head ~keep (o : out) =
  let keep = keep && not (Atomic.get t.stop_flag) in
  let headers =
    ("Content-Type", o.ctype)
    ::
    (if o.status = 429 || o.status = 503 then [ ("Retry-After", "1") ] else [])
  in
  {
    rseq = seq;
    rstatus = o.status;
    rkeep = keep;
    rarrival = arrival;
    rbytes =
      Http.encode_response ~headers ~head_only:head ~keep_alive:keep
        ~status:o.status ~body:o.content ();
  }

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

(* Two layers, both (rho,sigma) buckets: the per-client bucket bounds
   any single peer, then the per-endpoint bucket bounds the aggregate
   into the handler class.  The expensive class (/sweep, /experiment,
   /figure) has its own (smaller) endpoint bucket so grid computations
   cannot starve cheap endpoints.  An endpoint-layer shed refunds the
   client token: aggregate overload must not drain the budget of a
   client still inside its own envelope. *)
let expensive_class path =
  path = "/sweep"
  || String.starts_with ~prefix:"/experiment/" path
  || String.starts_with ~prefix:"/figure/" path

let admit t c (req : Http.request) =
  let key =
    match
      if t.client_key_header = "" then None
      else Http.header req t.client_key_header
    with
    | Some v -> v
    | None -> c.peer
  in
  if not (Bucket.Keyed.try_take t.client_buckets key) then begin
    Metrics.inc t.m.shed;
    Metrics.inc t.m.shed_client;
    Error (text ~status:429 "shed: client (rho,sigma) budget exhausted\n")
  end
  else
    let b =
      if expensive_class req.Http.path then t.sweep_bucket else t.bucket
    in
    if not (Bucket.try_take b) then begin
      Bucket.Keyed.refund t.client_buckets key;
      Metrics.inc t.m.shed;
      Error (text ~status:429 "shed: (rho,sigma) admission budget exhausted\n")
    end
    else Ok ()

(* ------------------------------------------------------------------ *)
(* Dispatch and request handling                                       *)
(* ------------------------------------------------------------------ *)

let dispatch t c ~seq ~arrival ~head ~keep req =
  let job = { jid = c.id; jseq = seq; jarrival = arrival; jhead = head;
              jkeep = keep; jreq = req } in
  Mutex.lock t.qlock;
  if t.draining || Queue.length t.jobs >= t.queue_cap then begin
    Mutex.unlock t.qlock;
    Metrics.inc t.m.rejected;
    let msg =
      if Atomic.get t.stop_flag then "shutting down\n" else "queue full\n"
    in
    emit t c (make_resp t ~seq ~arrival ~head ~keep:false (text ~status:503 msg))
  end
  else begin
    Queue.push job t.jobs;
    Metrics.set_gauge t.m.queue_depth (float_of_int (Queue.length t.jobs));
    Condition.signal t.qcond;
    Mutex.unlock t.qlock;
    c.inflight <- c.inflight + 1
  end

let on_request t c (req : Http.request) =
  Metrics.inc t.m.requests;
  let arrival = t.now_mono () in
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  let head = req.Http.meth = "HEAD" in
  let keep = Http.wants_keep_alive req in
  if Atomic.get t.stop_flag then
    emit t c
      (make_resp t ~seq ~arrival ~head ~keep:false
         (text ~status:503 "shutting down\n"))
  else if fast_path req.Http.path then begin
    (* Inline and unadmitted: liveness probes and metrics scrapes must
       answer especially while the daemon is shedding everything else. *)
    let o =
      try route t t.base_rng req
      with
      | Bad_request msg -> text ~status:400 ("bad request: " ^ msg ^ "\n")
      | Failure msg -> text ~status:500 ("internal error: " ^ msg ^ "\n")
      | Invalid_argument msg ->
          text ~status:500 ("internal error: " ^ msg ^ "\n")
    in
    emit t c (make_resp t ~seq ~arrival ~head ~keep o)
  end
  else
    match admit t c req with
    | Error o -> emit t c (make_resp t ~seq ~arrival ~head ~keep o)
    | Ok () -> dispatch t c ~seq ~arrival ~head ~keep req

let paused t c = c.inflight >= t.cfg.max_pipeline

(* Pull every complete request out of the connection's parser.  Pauses
   at [max_pipeline] outstanding dispatches — the poll registration
   drops read interest, which is TCP backpressure on the peer. *)
let rec drain_parser t c =
  if c.alive && not c.close_after && not (paused t c) then
    match Http.Parser.next c.parser with
    | `Await -> ()
    | `Request req ->
        on_request t c req;
        drain_parser t c
    | `Error e ->
        Metrics.inc t.m.read_errors;
        let o =
          match e with
          | Http.Too_large what ->
              text ~status:413 (Printf.sprintf "too large: %s\n" what)
          | Http.Malformed what ->
              text ~status:400 (Printf.sprintf "malformed request: %s\n" what)
          | Http.Timeout | Http.Closed ->
              text ~status:400 "malformed request\n"
        in
        let seq = c.next_seq in
        c.next_seq <- seq + 1;
        emit t c (make_resp t ~seq ~arrival:(t.now_mono ()) ~head:false
                    ~keep:false o)

let on_eof t c =
  c.eof <- true;
  if c.inflight = 0 && c.pending = [] && c.cur = "" && Queue.is_empty c.outq
  then begin
    if Http.Parser.buffered c.parser > 0 then Metrics.inc t.m.read_errors;
    close_conn t c
  end
  else c.close_after <- true

let on_readable t c =
  let continue = ref true in
  let budget = ref 65536 in
  while !continue && !budget > 0 && c.alive do
    match Unix.read c.fd t.rbuf 0 (Bytes.length t.rbuf) with
    | 0 ->
        continue := false;
        on_eof t c
    | n ->
        budget := !budget - n;
        Http.Parser.feed c.parser t.rbuf 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        Metrics.inc t.m.read_errors;
        close_conn t c;
        continue := false
  done;
  if c.alive then begin
    drain_parser t c;
    flush t c;
    rearm t c
  end

(* ------------------------------------------------------------------ *)
(* Completions: worker -> event loop                                   *)
(* ------------------------------------------------------------------ *)

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
  with Unix.Unix_error _ -> ()

let push_completion t comp =
  Mutex.lock t.comp_lock;
  Queue.push comp t.comps;
  Mutex.unlock t.comp_lock;
  wake t

let process_completions t =
  let rec pop () =
    Mutex.lock t.comp_lock;
    let x = if Queue.is_empty t.comps then None else Some (Queue.pop t.comps) in
    Mutex.unlock t.comp_lock;
    match x with
    | None -> ()
    | Some comp ->
        (match Hashtbl.find_opt t.conns comp.cid with
        | None -> () (* connection died while the worker computed *)
        | Some c ->
            c.inflight <- c.inflight - 1;
            emit t c
              (make_resp t ~seq:comp.cseq ~arrival:comp.carrival
                 ~head:comp.chead ~keep:comp.ckeep comp.cout);
            (* Un-pausing may expose already-buffered pipelined
               requests that arrived while we were at depth. *)
            drain_parser t c;
            flush t c;
            rearm t c);
        pop ()
  in
  pop ()

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let worker_loop t i () =
  let rng = Prng.stream t.base_rng i in
  let gc_words =
    Metrics.gauge t.metrics
      (Printf.sprintf "serve_worker_minor_words{worker=\"%d\"}" i)
      ~help:"Minor heap words allocated by each worker domain."
  in
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.jobs && not t.draining do
      Condition.wait t.qcond t.qlock
    done;
    let job =
      if Queue.is_empty t.jobs then None
      else begin
        let j = Queue.pop t.jobs in
        Metrics.set_gauge t.m.queue_depth (float_of_int (Queue.length t.jobs));
        Some j
      end
    in
    Mutex.unlock t.qlock;
    match job with
    | None -> () (* draining and empty: exit *)
    | Some j ->
        Metrics.add_gauge t.m.in_flight 1.;
        let o =
          (* A handler bug must never take a worker domain down with it. *)
          try route t rng j.jreq with
          | Bad_request msg -> text ~status:400 ("bad request: " ^ msg ^ "\n")
          | Failure msg -> text ~status:500 ("internal error: " ^ msg ^ "\n")
          | Invalid_argument msg ->
              text ~status:500 ("internal error: " ^ msg ^ "\n")
          | e ->
              text ~status:500
                ("internal error: " ^ Printexc.to_string e ^ "\n")
        in
        Metrics.add_gauge t.m.in_flight (-1.);
        push_completion t
          {
            cid = j.jid;
            cseq = j.jseq;
            carrival = j.jarrival;
            chead = j.jhead;
            ckeep = j.jkeep;
            cout = o;
          };
        Metrics.set_gauge gc_words (Gc.minor_words ());
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accept                                                              *)
(* ------------------------------------------------------------------ *)

let handle_accept t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, addr ->
        Metrics.inc t.m.conns_total;
        if Hashtbl.length t.conns >= t.cfg.max_conns then begin
          (* Over the connection cap: best-effort 503 and hang up —
             shed work must not consume the loop it is protecting. *)
          Metrics.inc t.m.rejected;
          Metrics.inc (status_counter t 503);
          let bytes =
            Http.encode_response
              ~headers:[ ("Retry-After", "1") ]
              ~keep_alive:false ~status:503 ~body:"too many connections\n" ()
          in
          (try
             Unix.set_nonblock fd;
             ignore (Unix.write_substring fd bytes 0 (String.length bytes))
           with Unix.Unix_error _ -> ());
          close_quietly fd
        end
        else begin
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let peer =
            match addr with
            | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
            | Unix.ADDR_UNIX s -> s
          in
          let id = t.next_conn_id in
          t.next_conn_id <- id + 1;
          let c =
            {
              fd;
              id;
              peer;
              accepted_at = t.now_mono ();
              parser = Http.Parser.create ();
              outq = Queue.create ();
              cur = "";
              cur_off = 0;
              next_seq = 0;
              emit_seq = 0;
              pending = [];
              inflight = 0;
              close_after = false;
              eof = false;
              dl_gen = 0;
              alive = true;
            }
          in
          Hashtbl.replace t.conns id c;
          Hashtbl.replace t.by_fd (fd_int fd) c;
          Metrics.add_gauge t.m.open_conns 1.;
          rearm t c
        end;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let write_snapshot t =
  Metrics.set_gauge t.m.tokens (Bucket.level t.bucket);
  Metrics.set_gauge t.m.sweep_tokens (Bucket.level t.sweep_bucket);
  Metrics.set_gauge t.m.client_keys
    (float_of_int (Bucket.Keyed.keys t.client_buckets));
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.write j
        (Journal.Snapshot
           {
             at = Clock.wall ();
             label = "serve.metrics";
             values = Metrics.snapshot t.metrics;
           })

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let finalize t =
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (close_conn t) cs;
  List.iter Domain.join t.worker_domains;
  t.worker_domains <- [];
  write_snapshot t;
  (match t.journal with Some j -> Journal.close j | None -> ());
  close_quietly t.wake_r;
  close_quietly t.wake_w;
  if not t.cfg.quiet then Printf.printf "serve: drained, bye\n%!";
  Atomic.set t.stopped_flag true

(* How long a graceful drain may take before stragglers are cut off. *)
let drain_grace = 75.

let event_loop t () =
  let ep = Evpoll.create () in
  let tick = if t.cfg.snapshot_every > 0. then t.cfg.snapshot_every else 3600. in
  let next_snapshot = ref (t.now_mono () +. tick) in
  let draining_started = ref false in
  let drain_deadline = ref Float.infinity in
  let finished = ref false in
  let listen_int = fd_int t.listen_fd and wake_int = fd_int t.wake_r in
  while not !finished do
    if Atomic.get t.stop_flag && not !draining_started then begin
      draining_started := true;
      drain_deadline := t.now_mono () +. drain_grace;
      close_quietly t.listen_fd;
      Mutex.lock t.qlock;
      t.draining <- true;
      Condition.broadcast t.qcond;
      Mutex.unlock t.qlock;
      (* Stop reading everywhere; in-flight work still completes and
         its responses still flush. *)
      let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      List.iter
        (fun c ->
          c.close_after <- true;
          flush t c)
        cs
    end;
    Evpoll.clear ep;
    if not !draining_started then
      Evpoll.add ep t.listen_fd ~read:true ~write:false;
    Evpoll.add ep t.wake_r ~read:true ~write:false;
    Hashtbl.iter
      (fun _ c ->
        let want_read = (not c.close_after) && (not c.eof) && not (paused t c) in
        let want_write = c.cur <> "" || not (Queue.is_empty c.outq) in
        if want_read || want_write then
          Evpoll.add ep c.fd ~read:want_read ~write:want_write)
      t.conns;
    let timeout_ms = if !draining_started then 20 else 100 in
    ignore (Evpoll.wait ep ~timeout_ms);
    Evpoll.iter_ready ep (fun fd ~readable ~writable ~error ->
        let fdi = fd_int fd in
        if fdi = wake_int then begin
          if readable then drain_wake t
        end
        else if fdi = listen_int && not !draining_started then begin
          if readable then handle_accept t
        end
        else
          match Hashtbl.find_opt t.by_fd fdi with
          | None -> ()
          | Some c ->
              if error then close_conn t c
              else begin
                if writable && c.alive then flush t c;
                if readable && c.alive then on_readable t c
              end);
    process_completions t;
    let now = t.now_mono () in
    Timewheel.advance t.wheel ~now (fun (cid, gen) ->
        match Hashtbl.find_opt t.conns cid with
        | Some c when c.alive && c.dl_gen = gen -> timeout_action t c
        | _ -> ());
    if now >= !next_snapshot then begin
      next_snapshot := now +. tick;
      if t.cfg.snapshot_every > 0. then write_snapshot t;
      match t.cfg.cache_max_bytes with
      | Some max_bytes -> ignore (Cache.trim t.cache ~max_bytes)
      | None -> ()
    end;
    if !draining_started then begin
      Mutex.lock t.qlock;
      let queued = Queue.length t.jobs in
      Mutex.unlock t.qlock;
      let busy = ref (queued > 0) in
      Hashtbl.iter
        (fun _ c ->
          if
            c.inflight > 0 || c.pending <> [] || c.cur <> ""
            || not (Queue.is_empty c.outq)
          then busy := true)
        t.conns;
      if (not !busy) || now > !drain_deadline then finished := true
    end
  done;
  finalize t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let journal_path dir =
  let tm = Unix.gmtime (Clock.wall ()) in
  Filename.concat
    (Filename.concat dir "journal")
    (Printf.sprintf "serve-%04d%02d%02d-%02d%02d%02d-%d.jsonl"
       (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
       tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec (Unix.getpid ()))

let start ?(registry = Registry.create ()) ?(figures = []) cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.rho <= 0. || not (Float.is_finite cfg.rho) then
    invalid_arg "Server.start: rho must be positive";
  if cfg.sigma < 1 then invalid_arg "Server.start: sigma must be >= 1";
  if cfg.read_timeout <= 0. || cfg.write_timeout <= 0. then
    invalid_arg "Server.start: timeouts must be positive";
  if cfg.idle_timeout <= 0. then
    invalid_arg "Server.start: idle_timeout must be positive";
  if cfg.max_pipeline < 1 then
    invalid_arg "Server.start: max_pipeline must be >= 1";
  if cfg.max_conns < 1 then invalid_arg "Server.start: max_conns must be >= 1";
  (* Resolve the <= 0 "inherit" sentinels once, so both the buckets and
     the index page see the effective values. *)
  let cfg =
    {
      cfg with
      sweep_rho = (if cfg.sweep_rho > 0. then cfg.sweep_rho else cfg.rho /. 10.);
      sweep_sigma =
        (if cfg.sweep_sigma > 0 then cfg.sweep_sigma else max 4 (cfg.sigma / 4));
      client_rho = (if cfg.client_rho > 0. then cfg.client_rho else cfg.rho);
      client_sigma =
        (if cfg.client_sigma > 0 then cfg.client_sigma else cfg.sigma);
      sweep_shards =
        (if cfg.sweep_shards > 0 then cfg.sweep_shards else cfg.workers);
      client_buckets_max = max 1 cfg.client_buckets_max;
    }
  in
  (* Writes to half-closed keep-alive sockets must surface as EPIPE,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let queue_cap = if cfg.queue_capacity <= 0 then cfg.sigma else cfg.queue_capacity in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      let addr =
        try Unix.inet_addr_of_string cfg.host
        with Failure _ -> invalid_arg ("Server.start: bad host " ^ cfg.host)
      in
      Unix.bind listen_fd (Unix.ADDR_INET (addr, cfg.port));
      Unix.listen listen_fd 511;
      Unix.set_nonblock listen_fd;
      let bound_port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      let wake_r, wake_w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock wake_r;
      Unix.set_nonblock wake_w;
      let metrics = Metrics.create () in
      let now_mono = cfg.clock in
      {
        cfg;
        registry;
        figures;
        listen_fd;
        bound_port;
        now_mono;
        bucket = Bucket.create ~now:now_mono ~rho:cfg.rho ~sigma:cfg.sigma ();
        sweep_bucket =
          Bucket.create ~now:now_mono ~rho:cfg.sweep_rho ~sigma:cfg.sweep_sigma
            ();
        client_buckets =
          Bucket.Keyed.create ~now:now_mono ~max_entries:cfg.client_buckets_max
            ~rho:cfg.client_rho ~sigma:cfg.client_sigma ();
        client_key_header = String.lowercase_ascii cfg.client_key_header;
        jobs = Queue.create ();
        qlock = Mutex.create ();
        qcond = Condition.create ();
        draining = false;
        queue_cap;
        comps = Queue.create ();
        comp_lock = Mutex.create ();
        stop_flag = Atomic.make false;
        stopped_flag = Atomic.make false;
        wake_r;
        wake_w;
        conns = Hashtbl.create 256;
        by_fd = Hashtbl.create 256;
        wheel = Timewheel.create ~slots:1024 ~tick:0.05 ~now:(now_mono ()) ();
        rbuf = Bytes.create 16384;
        metrics;
        m = make_handles metrics;
        cache = Cache.create ~dir:(Filename.concat cfg.campaign_dir "cache");
        journal =
          (if cfg.journal then Some (Journal.create (journal_path cfg.campaign_dir))
           else None);
        figure_memo = Hashtbl.create 8;
        flock = Mutex.create ();
        base_rng = Prng.create 0x53455256;
        worker_domains = [];
        loop_domain = None;
        next_conn_id = 0;
      }
    with e ->
      close_quietly listen_fd;
      raise e
  in
  t.worker_domains <- List.init cfg.workers (fun i -> Domain.spawn (worker_loop t i));
  t.loop_domain <- Some (Domain.spawn (event_loop t));
  if not cfg.quiet then
    Printf.printf
      "serve: listening on %s:%d (workers=%d rho=%g sigma=%d queue=%d \
       max_conns=%d pipeline=%d)\n\
       %!"
      cfg.host t.bound_port cfg.workers cfg.rho cfg.sigma queue_cap
      cfg.max_conns cfg.max_pipeline;
  t

let request_stop t =
  if not (Atomic.exchange t.stop_flag true) then
    try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (* Poll instead of blocking in join so the calling thread keeps servicing
     OCaml signal handlers (SIGTERM/SIGINT call request_stop). *)
  while not (Atomic.get t.stopped_flag) do
    Unix.sleepf 0.05
  done;
  match t.loop_domain with
  | Some d ->
      t.loop_domain <- None;
      Domain.join d
  | None -> ()

let stop t =
  request_stop t;
  wait t
