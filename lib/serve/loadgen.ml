module Prng = Aqt_util.Prng
module Jsonx = Aqt_util.Jsonx
module Journal = Aqt_harness.Journal

type mode = Closed | Open of float

type config = {
  host : string;
  port : int;
  conns : int;
  requests : int;
  mode : mode;
  pipeline : int;
  paths : (int * string) list;
  flow_cdf : (float * int) list;
  seed : int;
  run_timeout : float;
  clock : unit -> float;
  quiet : bool;
  snapshot_every : float;
}

(* Empirical web-search-style flow CDF (heavy tail), rescaled to header
   padding bytes.  Mirrors the shape of the DCTCP websearch workload:
   most exchanges are tiny, a thin tail is ~two orders larger. *)
let default_flow_cdf =
  [
    (0.40, 0);
    (0.60, 64);
    (0.72, 128);
    (0.82, 256);
    (0.90, 512);
    (0.95, 1024);
    (0.98, 2048);
    (1.00, 4096);
  ]

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    conns = 16;
    requests = 10_000;
    mode = Closed;
    pipeline = 4;
    paths = [ (1, "/healthz") ];
    flow_cdf = default_flow_cdf;
    seed = 0x10AD;
    run_timeout = 300.;
    clock = Clock.monotonic;
    quiet = true;
    snapshot_every = 0.;
  }

type result = {
  issued : int;
  completed : int;
  errors : int;
  ok : int;  (** 200s *)
  shed : int;  (** 429s *)
  rejected : int;  (** 503s *)
  duration : float;
  throughput : float;
  p50 : float;
  p99 : float;
  p999 : float;
  metrics : Metrics.t;
  snapshots : (float * (string * float) list) list;
}

(* ------------------------------------------------------------------ *)
(* Workload draws                                                      *)
(* ------------------------------------------------------------------ *)

let pick_path rng paths =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 paths in
  if total <= 0 then "/healthz"
  else
    let x = Prng.int rng total in
    let rec go acc = function
      | [] -> "/healthz"
      | (w, p) :: rest ->
          let acc = acc + max 0 w in
          if x < acc then p else go acc rest
    in
    go 0 paths

let draw_flow rng cdf =
  let u = Prng.float rng 1.0 in
  let rec go = function
    | [] -> 0
    | [ (_, sz) ] -> sz
    | (c, sz) :: rest -> if u <= c then sz else go rest
  in
  go cdf

(* ------------------------------------------------------------------ *)
(* Connection state                                                    *)
(* ------------------------------------------------------------------ *)

type cstate = {
  mutable fd : Unix.file_descr;
  mutable rp : Http.Rparser.t;
  mutable connected : bool;  (** nonblocking connect completed *)
  wq : string Queue.t;  (** encoded requests awaiting the socket *)
  mutable cur : string;
  mutable cur_off : int;
  sent : float Queue.t;  (** latency origins of outstanding requests *)
  mutable alive : bool;
}

type state = {
  cfg : config;
  addr : Unix.sockaddr;
  rng : Prng.t;
  slots : cstate option array;
  metrics : Metrics.t;
  latency : Metrics.histogram;
  errors_c : Metrics.counter;
  mutable issued : int;
  mutable completed : int;
  mutable errors : int;
  mutable ok : int;
  mutable shed : int;
  mutable rejected : int;
  mutable respawns : int;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let open_conn st =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let connected =
    match Unix.connect fd st.addr with
    | () -> true
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
      ->
        false
  in
  {
    fd;
    rp = Http.Rparser.create ();
    connected;
    wq = Queue.create ();
    cur = "";
    cur_off = 0;
    sent = Queue.create ();
    alive = true;
  }

(* A dead connection takes its unanswered requests with it: they count
   as errors and are never re-issued (re-issuing would silently inflate
   the admitted rate the selftest checks against the (rho,sigma)
   envelope). *)
let kill_conn st i c =
  if c.alive then begin
    c.alive <- false;
    let lost = Queue.length c.sent in
    st.errors <- st.errors + lost;
    Metrics.inc ~by:lost st.errors_c;
    close_quietly c.fd;
    st.slots.(i) <- None
  end

let status_of st status =
  Metrics.inc
    (Metrics.counter st.metrics
       (Printf.sprintf "loadgen_responses_total{status=\"%d\"}" status)
       ~help:"Responses received, by status code.");
  match status with
  | 200 -> st.ok <- st.ok + 1
  | 429 -> st.shed <- st.shed + 1
  | 503 -> st.rejected <- st.rejected + 1
  | _ -> ()

let enqueue_request st c ~origin =
  let path = pick_path st.rng st.cfg.paths in
  let pad = draw_flow st.rng st.cfg.flow_cdf in
  let req_headers = if pad > 0 then [ ("x-pad", String.make pad 'x') ] else [] in
  Queue.push (Http.encode_request ~req_headers path) c.wq;
  Queue.push origin c.sent;
  st.issued <- st.issued + 1

let flush st i c =
  if c.alive && c.connected then begin
    let continue = ref true in
    while !continue && c.alive do
      if c.cur = "" then
        if Queue.is_empty c.wq then continue := false
        else begin
          c.cur <- Queue.pop c.wq;
          c.cur_off <- 0
        end;
      if !continue then
        match
          Unix.write_substring c.fd c.cur c.cur_off
            (String.length c.cur - c.cur_off)
        with
        | n ->
            c.cur_off <- c.cur_off + n;
            if c.cur_off >= String.length c.cur then begin
              c.cur <- "";
              c.cur_off <- 0
            end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> kill_conn st i c
    done
  end

let drain_responses st i c =
  let continue = ref true in
  while !continue && c.alive do
    match Http.Rparser.next c.rp with
    | `Await -> continue := false
    | `Response r ->
        (match Queue.pop c.sent with
        | origin ->
            st.completed <- st.completed + 1;
            status_of st r.Http.status;
            Metrics.observe st.latency (st.cfg.clock () -. origin)
        | exception Queue.Empty ->
            (* A response we never asked for: protocol desync. *)
            kill_conn st i c)
    | `Error _ -> kill_conn st i c
  done

let on_readable st rbuf i c =
  let continue = ref true in
  let budget = ref 262144 in
  while !continue && !budget > 0 && c.alive do
    match Unix.read c.fd rbuf 0 (Bytes.length rbuf) with
    | 0 ->
        (* Server closed (drain, idle expiry, or a close-after 503).
           Responses delivered in the same readable burst as the FIN —
           typical for Connection: close answers — are still buffered in
           the parser: count them before charging the remainder as
           errors. *)
        continue := false;
        drain_responses st i c;
        kill_conn st i c
    | n ->
        budget := !budget - n;
        Http.Rparser.feed c.rp rbuf 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        continue := false;
        kill_conn st i c
  done;
  if c.alive then drain_responses st i c

let on_writable st i c =
  if c.alive && not c.connected then begin
    match Unix.getsockopt_error c.fd with
    | None -> c.connected <- true
    | Some _ -> kill_conn st i c
  end;
  if c.alive then flush st i c

(* ------------------------------------------------------------------ *)
(* The run loop                                                        *)
(* ------------------------------------------------------------------ *)

let max_outstanding_open = 64
let max_respawns_factor = 4

let run cfg =
  if cfg.conns < 1 then invalid_arg "Loadgen.run: conns must be >= 1";
  if cfg.requests < 1 then invalid_arg "Loadgen.run: requests must be >= 1";
  if cfg.pipeline < 1 then invalid_arg "Loadgen.run: pipeline must be >= 1";
  (match cfg.mode with
  | Open r when r <= 0. || not (Float.is_finite r) ->
      invalid_arg "Loadgen.run: open-loop rate must be positive"
  | _ -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let addr =
    Unix.ADDR_INET
      ( (try Unix.inet_addr_of_string cfg.host
         with Failure _ -> invalid_arg ("Loadgen.run: bad host " ^ cfg.host)),
        cfg.port )
  in
  let metrics = Metrics.create () in
  let st =
    {
      cfg;
      addr;
      rng = Prng.create cfg.seed;
      slots = Array.make cfg.conns None;
      metrics;
      latency =
        Metrics.histogram metrics "loadgen_request_seconds"
          ~help:"Client-observed request latency (send to full response).";
      errors_c =
        Metrics.counter metrics "loadgen_errors_total"
          ~help:"Requests that died without a complete response.";
      issued = 0;
      completed = 0;
      errors = 0;
      ok = 0;
      shed = 0;
      rejected = 0;
      respawns = 0;
    }
  in
  let open_gauge =
    Metrics.gauge metrics "loadgen_open_connections"
      ~help:"Live load-generator connections."
  in
  let ep = Evpoll.create () in
  let rbuf = Bytes.create 65536 in
  let start = cfg.clock () in
  let hard_deadline = start +. cfg.run_timeout in
  (* Open-loop send schedule: [sched] is the next intended send instant;
     instants that have come due but found every connection saturated
     wait in [due] and keep their original timestamp, so queueing delay
     at the generator still lands in the latency measurement
     (no coordinated omission). *)
  let sched = ref start in
  let due = Queue.create () in
  let next_report = ref (start +. 1.) in
  (* Periodic metric snapshots (elapsed seconds, registry dump) for the
     latency time-series figure; off when snapshot_every = 0. *)
  let snaps = ref [] in
  let next_snap =
    ref
      (if cfg.snapshot_every > 0. then start +. cfg.snapshot_every
       else Float.infinity)
  in
  let live_slots () =
    let n = ref 0 in
    Array.iter (function Some c when c.alive -> incr n | _ -> ()) st.slots;
    !n
  in
  let finished () =
    st.completed + st.errors >= cfg.requests
    || (st.issued >= cfg.requests && live_slots () = 0)
  in
  while (not (finished ())) && cfg.clock () < hard_deadline do
    (* Respawn dead slots while there is still work to issue. *)
    if st.issued < cfg.requests then
      Array.iteri
        (fun i -> function
          | Some _ -> ()
          | None ->
              if st.respawns < cfg.conns * max_respawns_factor then begin
                st.respawns <- st.respawns + 1;
                st.slots.(i) <- Some (open_conn st)
              end
              else begin
                (* The server is unreachable: charge the rest of the
                   budget to errors and stop retrying. *)
                let lost = cfg.requests - st.issued in
                st.issued <- cfg.requests;
                st.errors <- st.errors + lost;
                Metrics.inc ~by:lost st.errors_c
              end)
        st.slots;
    (* Issue requests. *)
    (match cfg.mode with
    | Closed ->
        Array.iteri
          (fun i -> function
            | Some c when c.alive && c.connected ->
                while
                  st.issued < cfg.requests
                  && Queue.length c.sent < cfg.pipeline
                do
                  enqueue_request st c ~origin:(cfg.clock ())
                done;
                flush st i c
            | _ -> ())
          st.slots
    | Open rate ->
        let now = cfg.clock () in
        let step = 1. /. rate in
        while !sched <= now && st.issued + Queue.length due < cfg.requests do
          Queue.push !sched due;
          sched := !sched +. step
        done;
        let slot = ref 0 in
        let tries = ref 0 in
        while (not (Queue.is_empty due)) && !tries < cfg.conns do
          (match st.slots.(!slot mod cfg.conns) with
          | Some c
            when c.alive && c.connected
                 && Queue.length c.sent < max_outstanding_open ->
              enqueue_request st c ~origin:(Queue.pop due);
              tries := 0
          | _ -> incr tries);
          incr slot
        done;
        Array.iteri
          (fun i -> function
            | Some c when c.alive -> flush st i c | _ -> ())
          st.slots);
    (* Retire connections that have nothing left to do. *)
    Array.iteri
      (fun i -> function
        | Some c
          when c.alive && st.issued >= cfg.requests
               && Queue.is_empty c.sent
               && Queue.is_empty c.wq
               && c.cur = "" ->
            c.alive <- false;
            close_quietly c.fd;
            st.slots.(i) <- None
        | _ -> ())
      st.slots;
    (* Poll. *)
    Evpoll.clear ep;
    Array.iter
      (function
        | Some c when c.alive ->
            let want_write =
              (not c.connected) || c.cur <> "" || not (Queue.is_empty c.wq)
            in
            let want_read = c.connected && not (Queue.is_empty c.sent) in
            if want_read || want_write then
              Evpoll.add ep c.fd ~read:want_read ~write:want_write
        | _ -> ())
      st.slots;
    let timeout_ms =
      match cfg.mode with
      | Closed -> 50
      | Open _ ->
          let now = cfg.clock () in
          if not (Queue.is_empty due) then 1
          else max 1 (min 50 (int_of_float (ceil ((!sched -. now) *. 1000.))))
    in
    if Evpoll.length ep > 0 then ignore (Evpoll.wait ep ~timeout_ms)
    else Unix.sleepf 0.001;
    let by_fd = Hashtbl.create (2 * cfg.conns) in
    Array.iteri
      (fun i -> function
        | Some c when c.alive -> Hashtbl.replace by_fd c.fd (i, c) | _ -> ())
      st.slots;
    Evpoll.iter_ready ep (fun fd ~readable ~writable ~error ->
        match Hashtbl.find_opt by_fd fd with
        | None -> ()
        | Some (i, c) ->
            if error then kill_conn st i c
            else begin
              if writable && c.alive then on_writable st i c;
              if readable && c.alive then on_readable st rbuf i c
            end);
    Metrics.set_gauge open_gauge (float_of_int (live_slots ()));
    (let now = cfg.clock () in
     if now >= !next_snap then begin
       snaps := (now -. start, Metrics.snapshot metrics) :: !snaps;
       next_snap := !next_snap +. cfg.snapshot_every
     end);
    if not cfg.quiet then begin
      let now = cfg.clock () in
      if now >= !next_report then begin
        next_report := now +. 1.;
        Printf.printf
          "loadgen: %d issued, %d completed, %d errors, %d conns, %.0f req/s\n\
           %!"
          st.issued st.completed st.errors (live_slots ())
          (float_of_int st.completed /. (now -. start))
      end
    end
  done;
  Array.iteri
    (fun i -> function Some c -> kill_conn st i c | None -> ())
    st.slots;
  (* Anything still unanswered at the deadline is an error. *)
  if st.completed + st.errors < st.issued then begin
    let lost = st.issued - st.completed - st.errors in
    st.errors <- st.errors + lost;
    Metrics.inc ~by:lost st.errors_c
  end;
  let duration = Float.max 1e-9 (cfg.clock () -. start) in
  if cfg.snapshot_every > 0. then
    snaps := (duration, Metrics.snapshot metrics) :: !snaps;
  {
    issued = st.issued;
    completed = st.completed;
    errors = st.errors;
    ok = st.ok;
    shed = st.shed;
    rejected = st.rejected;
    duration;
    throughput = float_of_int st.completed /. duration;
    p50 = Metrics.quantile st.latency 0.50;
    p99 = Metrics.quantile st.latency 0.99;
    p999 = Metrics.quantile st.latency 0.999;
    metrics;
    snapshots = List.rev !snaps;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let result_json (r : result) =
  Jsonx.Obj
    [
      ("issued", Jsonx.Int r.issued);
      ("completed", Jsonx.Int r.completed);
      ("errors", Jsonx.Int r.errors);
      ("ok", Jsonx.Int r.ok);
      ("shed", Jsonx.Int r.shed);
      ("rejected", Jsonx.Int r.rejected);
      ("duration", Jsonx.Float r.duration);
      ("throughput", Jsonx.Float r.throughput);
      ("p50", Jsonx.Float r.p50);
      ("p99", Jsonx.Float r.p99);
      ("p999", Jsonx.Float r.p999);
    ]

let result_csv (r : result) =
  Printf.sprintf
    "metric,value\n\
     issued,%d\n\
     completed,%d\n\
     errors,%d\n\
     ok,%d\n\
     shed,%d\n\
     rejected,%d\n\
     duration_s,%.6f\n\
     throughput_rps,%.1f\n\
     p50_s,%.6f\n\
     p99_s,%.6f\n\
     p999_s,%.6f\n"
    r.issued r.completed r.errors r.ok r.shed r.rejected r.duration
    r.throughput r.p50 r.p99 r.p999

(* One Snapshot per in-run tick (plus the final state).  Each carries
   [elapsed_s] so consumers (the report's latency time-series figure)
   can plot against run-relative time without trusting wall clocks. *)
let write_journal ~path (r : result) =
  let j = Journal.create path in
  let wall = Clock.wall () in
  let base = wall -. r.duration in
  List.iter
    (fun (elapsed, values) ->
      Journal.write j
        (Journal.Snapshot
           {
             at = base +. elapsed;
             label = "loadgen";
             values = ("elapsed_s", elapsed) :: values;
           }))
    r.snapshots;
  if r.snapshots = [] then
    Journal.write j
      (Journal.Snapshot
         {
           at = wall;
           label = "loadgen";
           values = ("elapsed_s", r.duration) :: Metrics.snapshot r.metrics;
         });
  Journal.close j

(* ------------------------------------------------------------------ *)
(* Selftest                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base
        (Printf.sprintf "aqt-loadgen-%d-%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir d 0o755 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

(* Fast-path endpoints (/healthz) bypass admission, so the envelope
   under test must be driven through a dispatched endpoint: a tiny
   seeded /simulate is the cheapest admitted request.  Sheds answer 429
   inline without touching the worker pool, so only the ~rho*T admitted
   requests actually compute. *)
let admitted_path =
  "/simulate?network=ring:4&policy=fifo&rate=1/4&horizon=60&seed=1"

(* Spin a private server, drive it closed-loop well past its (rho,sigma)
   budget, and check the admitted stream obeys the envelope while the
   answered tail stays bounded.  [requests] and [conns] scale from a
   quick tier-1 check to the CI load run. *)
let selftest ?(quiet = false) ?(requests = 20_000) ?(conns = 64)
    ?(rho = 2000.) ?(sigma = 200) ?(snapshot_every = 0.)
    ?(emit = fun (_ : result) -> ()) () =
  let scfg =
    {
      Server.default_config with
      Server.port = 0;
      workers = 2;
      rho;
      sigma;
      (* The generator is one peer: give the per-client layer the same
         budget so the envelope under test is the endpoint bucket's. *)
      client_rho = rho;
      client_sigma = sigma;
      sweep_rho = rho;
      sweep_sigma = sigma;
      queue_capacity = 0;
      max_conns = conns + 64;
      max_pipeline = 32;
      campaign_dir = fresh_dir ();
      snapshot_every = 0.;
      journal = false;
      quiet = true;
    }
  in
  let srv = Server.start scfg in
  let r =
    run
      {
        default_config with
        port = Server.port srv;
        conns;
        requests;
        pipeline = 8;
        paths = [ (1, admitted_path) ];
        quiet;
        snapshot_every;
      }
  in
  Server.stop srv;
  let failures = ref [] in
  let check label ok detail =
    if not ok then failures := label :: !failures;
    if not quiet then
      Printf.printf "loadgen selftest %-10s %-6s %s\n%!" label
        (if ok then "ok" else "FAILED")
        detail
  in
  check "complete"
    (r.completed + r.errors = requests && r.errors <= requests / 50)
    (Printf.sprintf "%d completed + %d errors of %d" r.completed r.errors
       requests);
  check "answered"
    (r.ok > 0 && r.completed = r.ok + r.shed + r.rejected)
    (Printf.sprintf "%d ok, %d shed, %d rejected" r.ok r.shed r.rejected);
  (* The offered load is far above rho, so the bucket must shed... *)
  check "sheds" (r.shed > 0) (Printf.sprintf "%d x 429" r.shed);
  (* ...and what it admits must fit the (rho,sigma) envelope:
     admitted <= rho * T + sigma, with slack for scheduling jitter. *)
  let envelope = (rho *. r.duration *. 1.25) +. float_of_int sigma +. 64. in
  check "envelope"
    (float_of_int r.ok <= envelope)
    (Printf.sprintf "admitted %d <= envelope %.0f (rho=%g T=%.2fs sigma=%d)"
       r.ok envelope rho r.duration sigma);
  check "tail"
    (r.p999 < 2.5 && r.p999 >= 0.)
    (Printf.sprintf "p50=%.4fs p99=%.4fs p999=%.4fs throughput=%.0f req/s"
       r.p50 r.p99 r.p999 r.throughput);
  if not quiet then print_string (result_csv r);
  emit r;
  !failures = []
