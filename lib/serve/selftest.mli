(** In-process acceptance check for the serve daemon.

    [run ()] boots a server on an ephemeral loopback port with a known
    (ρ,σ) admission budget and drives it through four phases with real
    client domains over real sockets:

    + {b admissible load} — aggregate client rate well under ρ, burst
      under σ: every request must answer [200], and the observed
      p50/p99 latencies are reported;
    + {b overload} — clients fire as fast as they can at roughly twice
      the (ρ,σ) budget: some requests are shed with [429], none hangs,
      and the queue-depth high watermark stays ≤ σ;
    + {b warm cache} — the same [/sweep] twice: the first response
      computes ([cached:false]), the repeat must be served from
      {!Aqt_harness.Cache} ([cached:true], cache-hit counter grows);
    + {b graceful drain} — stop is requested while requests are in
      flight: every in-flight client still gets a complete response
      and shutdown finishes.

    Prints one line per phase and returns [true] iff all pass.
    State (cache, no journal) lives in a throwaway temp directory. *)

val run : ?quiet:bool -> unit -> bool
