external monotonic : unit -> float = "aqt_monotonic_time"

let wall = Unix.gettimeofday
