(** Hashed timer wheel for connection deadlines.

    The event loop tracks one deadline per connection (idle, header,
    body or write, whichever applies to its current state) for thousands
    of connections, and deadlines are rescheduled on every state change.
    A sorted structure would pay O(log n) per reschedule; the wheel pays
    O(1) by filing each entry in the slot [deadline / tick mod slots]
    and only looking at slots the clock hand actually crosses.

    Cancellation is lazy: entries are never removed, the caller instead
    revalidates each expired payload (e.g. against a per-connection
    generation counter) and discards stale ones.  Deadlines further out
    than one wheel revolution recirculate until they come into range. *)

type 'a t

val create : ?slots:int -> tick:float -> now:float -> unit -> 'a t
(** [create ~tick ~now ()] starts the wheel's hand at [now].  [tick] is
    the slot granularity in seconds — deadlines fire up to one tick
    late.  [slots] (default 512) spans [slots * tick] seconds per
    revolution.
    @raise Invalid_argument if [tick <= 0.] or [slots < 2]. *)

val add : 'a t -> deadline:float -> 'a -> unit
(** File [payload] to fire once the hand passes [deadline].  A deadline
    at or before the hand fires on the next {!advance}. *)

val advance : 'a t -> now:float -> ('a -> unit) -> unit
(** Move the hand forward to [now], calling the callback on every entry
    whose deadline has passed, in no particular order.  Entries filed in
    a crossed slot but not yet due are re-filed.  Time moving backwards
    is ignored (the hand never retreats).

    Reentrant with {!add}: the hand advances slot-by-slot during the
    sweep and each slot is drained to a fixpoint, so a callback that
    re-arms with an already-due deadline fires in {e this} advance, not
    one wheel revolution later. *)

val pending : 'a t -> int
(** Entries currently filed, including stale ones awaiting lazy
    discard. *)
