(** (ρ,σ) token-bucket admission control.

    The serving layer's admission rule is the same constraint the paper
    places on its adversary: over any interval of length [t] at most
    [ρ·t + σ] requests enter the system — Rosenbaum's (ρ,σ)-token-bucket
    formulation of the (w,r) rate-bounded adversary, applied to
    ourselves.  The bucket holds at most [σ] tokens, refills
    continuously at [ρ] tokens/second, and {!try_take} admits exactly
    when a whole token is available, so the admitted request stream is
    (ρ,σ)-bounded by construction and everything past it is shed at the
    door instead of queueing unboundedly.

    Domain-safe: a single mutex guards the refill-and-take, which is a
    handful of float operations. *)

type t

val create : ?now:(unit -> float) -> rho:float -> sigma:int -> unit -> t
(** [create ~rho ~sigma ()] starts full ([σ] tokens).  [now] defaults
    to [Unix.gettimeofday]; tests inject a fake clock to drive refill
    deterministically.
    @raise Invalid_argument unless [rho > 0] and [sigma >= 1]. *)

val try_take : t -> bool
(** Admit one request if a token is available; never blocks. *)

val level : t -> float
(** Current token count (after refill); for metrics export. *)

val rho : t -> float
val sigma : t -> int
