(** (ρ,σ) token-bucket admission control.

    The serving layer's admission rule is the same constraint the paper
    places on its adversary: over any interval of length [t] at most
    [ρ·t + σ] requests enter the system — Rosenbaum's (ρ,σ)-token-bucket
    formulation of the (w,r) rate-bounded adversary, applied to
    ourselves.  The bucket holds at most [σ] tokens, refills
    continuously at [ρ] tokens/second, and {!try_take} admits exactly
    when a whole token is available, so the admitted request stream is
    (ρ,σ)-bounded by construction and everything past it is shed at the
    door instead of queueing unboundedly.

    The server layers two of these: a per-endpoint bucket bounds the
    aggregate rate into each handler class, and a {!Keyed} per-client
    family bounds any single peer, so one greedy client exhausts its own
    envelope instead of the endpoint's.

    Domain-safe: a single mutex guards the refill-and-take, which is a
    handful of float operations. *)

type t

val create : ?now:(unit -> float) -> rho:float -> sigma:int -> unit -> t
(** [create ~rho ~sigma ()] starts full ([σ] tokens).  [now] defaults to
    {!Clock.monotonic} so refill is immune to wall-clock steps; tests
    inject a fake clock to drive refill deterministically.
    @raise Invalid_argument unless [rho > 0] and [sigma >= 1]. *)

val try_take : t -> bool
(** Admit one request if a token is available; never blocks. *)

val refund : t -> unit
(** Return one token taken by {!try_take}, capped at [σ].  Used when a
    later admission layer sheds a request this bucket already admitted,
    so passing one gate but not the other costs nothing. *)

val level : t -> float
(** Current token count (after refill); for metrics export. *)

val rho : t -> float
val sigma : t -> int

(** A family of identical buckets keyed by string — per-client admission
    keyed by peer address (or a trusted client-id header).  Keys
    materialise lazily on first use; when the table is full the
    least-recently-{e used} key is evicted, so only idle clients lose
    their bucket.  A re-materialised key starts full, which errs toward
    admitting — acceptable because eviction only reaches keys that have
    been quiet longest. *)
module Keyed : sig
  type t

  val create :
    ?now:(unit -> float) ->
    ?max_entries:int ->
    rho:float ->
    sigma:int ->
    unit ->
    t
  (** Every key gets its own [(rho, sigma)] bucket.  [max_entries]
      (default 1024) caps live keys; [now] defaults to
      {!Clock.monotonic}.
      @raise Invalid_argument unless [rho > 0], [sigma >= 1] and
      [max_entries >= 1]. *)

  val try_take : t -> string -> bool
  (** Admit one request for [key], creating (possibly evicting) as
      needed; never blocks. *)

  val refund : t -> string -> unit
  (** Return one token to [key]'s bucket, capped at [σ]; a no-op when
      the key is not live (evicted between take and refund). *)

  val keys : t -> int
  (** Live keys; for metrics export. *)

  val level : t -> string -> float option
  (** Token count for [key], if it is live. *)
end
