module Prng = Aqt_util.Prng
module Jsonx = Aqt_util.Jsonx

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let d =
      Filename.concat base
        (Printf.sprintf "aqt-serve-selftest-%d-%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir d 0o755 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

(* [clients] domains, [each] sequential requests per domain; returns every
   response status, [-1] standing for "no complete response" (the failure
   the no-hangs check looks for). *)
let fire ?(pause = 0.) ~clients ~each ~port path =
  let work ci () =
    let rng = Prng.stream (Prng.create 0xC11E57) ci in
    List.init each (fun _ ->
        if pause > 0. then Unix.sleepf (pause +. Prng.float rng (pause /. 4.));
        match Http.request ~timeout:10. ~port path with
        | Ok r -> r.Http.status
        | Error _ -> -1)
  in
  let doms = List.init clients (fun ci -> Domain.spawn (work ci)) in
  List.concat_map Domain.join doms

let count x statuses = List.length (List.filter (Int.equal x) statuses)

let sweep_path =
  "/sweep?network=ring:6&d=3&horizon=400&rates=1/4&policy=fifo"

(* The cheapest admitted request: /healthz is fast-path (bypasses
   admission entirely), so every phase that exercises the buckets
   drives a tiny seeded /simulate through the worker pool instead. *)
let sim_path = "/simulate?network=ring:6&policy=fifo&rate=1/4&horizon=200&seed=5"

let cached_field body =
  match Jsonx.member "cached" (Jsonx.of_string body) with
  | Some (Jsonx.Bool b) -> Some b
  | _ -> None

let run ?(quiet = false) () =
  let cfg =
    {
      Server.default_config with
      Server.port = 0;
      workers = 4;
      rho = 200.;
      sigma = 20;
      queue_capacity = 0;
      read_timeout = 2.;
      write_timeout = 2.;
      campaign_dir = fresh_dir ();
      snapshot_every = 0.;
      journal = false;
      (* Loopback is one peer: park the per-client layer out of the way
         so each phase exercises exactly one bucket.  The per-client
         layer has its own tests (header-keyed isolation). *)
      client_rho = 1000.;
      client_sigma = 200;
      quiet = true;
    }
  in
  let srv = Server.start cfg in
  let port = Server.port srv in
  let m = Server.metrics srv in
  let shed = Metrics.counter m "serve_shed_total" in
  let conns_total = Metrics.counter m "serve_connections_total" in
  let accepted = Metrics.counter m "serve_requests_total" in
  let hits = Metrics.counter m "serve_cache_hits_total" in
  let depth = Metrics.gauge m "serve_queue_depth" in
  let latency = Metrics.histogram m "serve_request_seconds" in
  let failures = ref [] in
  let phase label ok detail =
    if not ok then failures := label :: !failures;
    if not quiet then
      Printf.printf "selftest %-10s %-6s %s\n%!" label
        (if ok then "ok" else "FAILED")
        detail
  in

  (* Phase 1: aggregate client rate ~160/s < rho = 200/s, burst 4 <= sigma:
     an admissible workload must never be shed. *)
  let statuses = fire ~pause:0.025 ~clients:4 ~each:20 ~port sim_path in
  let total = List.length statuses in
  let ok200 = count 200 statuses in
  phase "admissible" (ok200 = total)
    (Printf.sprintf "%d/%d answered 200, latency p50=%.4fs p99=%.4fs" ok200
       total
       (Metrics.quantile latency 0.50)
       (Metrics.quantile latency 0.99));

  (* Phase 1b: one keep-alive connection, many sequential requests —
     connection reuse means the accept counter moves by exactly one. *)
  Unix.sleepf 0.2;
  let conns0 = Metrics.counter_value conns_total in
  let ka_ok, ka_total =
    match Http.Client.connect ~port () with
    | Error _ -> (0, 25)
    | Ok cl ->
        let ok = ref 0 in
        for _ = 1 to 25 do
          Unix.sleepf 0.01;
          match Http.Client.request cl "/healthz" with
          | Ok r when r.Http.status = 200 -> incr ok
          | Ok _ | Error _ -> ()
        done;
        Http.Client.close cl;
        (!ok, 25)
  in
  let conn_delta = Metrics.counter_value conns_total - conns0 in
  phase "keepalive"
    (ka_ok = ka_total && conn_delta = 1)
    (Printf.sprintf "%d/%d answered 200 over %d connection(s)" ka_ok ka_total
       conn_delta);

  (* Phase 2: fire at roughly twice the (rho,sigma) budget: bounded shedding,
     every request still gets an answer, queue depth never exceeds sigma. *)
  Unix.sleepf 0.3 (* let the bucket refill to sigma *);
  let statuses = fire ~clients:4 ~each:60 ~port sim_path in
  let total = List.length statuses in
  let ok200 = count 200 statuses in
  let shed429 = count 429 statuses in
  let hung = count (-1) statuses in
  let peak = Metrics.gauge_peak depth in
  phase "overload"
    (ok200 > 0 && shed429 > 0 && hung = 0
    && peak <= float_of_int cfg.Server.sigma
    && Metrics.counter_value shed > 0)
    (Printf.sprintf "%d x 200, %d x 429, %d hung of %d; queue peak %.0f <= sigma=%d"
       ok200 shed429 hung total peak cfg.Server.sigma);

  (* Phase 3: the same sweep twice; the repeat must come from the cache. *)
  Unix.sleepf 0.2;
  let hits0 = Metrics.counter_value hits in
  let cold = Http.request ~timeout:10. ~port sweep_path in
  let warm = Http.request ~timeout:10. ~port sweep_path in
  let cold_cached =
    match cold with Ok r when r.Http.status = 200 -> cached_field r.Http.body | _ -> None
  and warm_cached =
    match warm with Ok r when r.Http.status = 200 -> cached_field r.Http.body | _ -> None
  in
  let hit_delta = Metrics.counter_value hits - hits0 in
  phase "cache"
    (cold_cached = Some false && warm_cached = Some true && hit_delta >= 1)
    (Printf.sprintf "cold cached=%s, warm cached=%s, cache hits +%d"
       (match cold_cached with Some b -> string_of_bool b | None -> "?")
       (match warm_cached with Some b -> string_of_bool b | None -> "?")
       hit_delta);

  (* Phase 3b: hammer /sweep past its own (smaller) endpoint bucket while
     trickling the default-bucket /simulate within budget and /healthz on
     the fast path: the sweep class must shed, the cheap admitted
     endpoint must not notice, and liveness must stay untouched. *)
  Unix.sleepf 0.3 (* refill both endpoint buckets *);
  let sweeper =
    Domain.spawn (fun () ->
        match Http.Client.connect ~port () with
        | Error _ -> (0, 0)
        | Ok cl ->
            let shed = ref 0 and answered = ref 0 in
            for _ = 1 to 30 do
              Unix.sleepf 0.005;
              match Http.Client.request cl sweep_path with
              | Ok r ->
                  incr answered;
                  if r.Http.status = 429 then incr shed
              | Error _ -> ()
            done;
            Http.Client.close cl;
            (!answered, !shed))
  in
  let trickle path =
    Domain.spawn (fun () ->
        List.init 15 (fun _ ->
            Unix.sleepf 0.015;
            match Http.request ~timeout:10. ~port path with
            | Ok r -> r.Http.status
            | Error _ -> -1))
  in
  let hz_d = trickle "/healthz" and sim_d = trickle sim_path in
  let hz = Domain.join hz_d and sim = Domain.join sim_d in
  let sweep_answered, sweep_shed = Domain.join sweeper in
  let hz_ok = count 200 hz and sim_ok = count 200 sim in
  phase "isolation"
    (sweep_answered = 30 && sweep_shed > 0
    && hz_ok = List.length hz
    && sim_ok = List.length sim)
    (Printf.sprintf
       "/sweep: %d/30 answered, %d x 429; concurrent /simulate %d/%d and \
        /healthz %d/%d x 200"
       sweep_answered sweep_shed sim_ok (List.length sim) hz_ok
       (List.length hz));

  (* Phase 4: request stop while requests are in flight; each must still be
     answered in full and shutdown must drain. *)
  Unix.sleepf 0.2;
  let before = Metrics.counter_value accepted in
  let doms =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            Http.request ~timeout:10. ~port
              "/simulate?network=ring:8&policy=fifo&rate=1/4&horizon=200000&seed=7"))
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    Metrics.counter_value accepted < before + 3 && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.002
  done;
  let t0 = Unix.gettimeofday () in
  Server.request_stop srv;
  let answers = List.map Domain.join doms in
  Server.wait srv;
  let drain = Unix.gettimeofday () -. t0 in
  let complete =
    List.for_all
      (function Ok r -> r.Http.status = 200 && r.Http.body <> "" | Error _ -> false)
      answers
  in
  phase "drain"
    (complete && Server.stopped srv)
    (Printf.sprintf "3/3 in-flight answered, drained in %.3fs" drain);

  !failures = []
