/* poll(2) and CLOCK_MONOTONIC bindings for the serve event loop.

   The OCaml stdlib exposes only select(2), whose fd_set caps file
   descriptors at FD_SETSIZE (1024 on Linux) — too small for a daemon
   holding thousands of keep-alive connections plus a load generator in
   the same process.  poll(2) has no such cap.  The binding is
   deliberately array-shaped: the OCaml side keeps flat int arrays of
   fds/events/revents and the stub copies through a scratch pollfd
   vector, so a wait allocates nothing on the OCaml heap. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

/* Event bits mirrored on the OCaml side (Evpoll). */
#define AQT_RD 1
#define AQT_WR 2
#define AQT_ERR 4

CAMLprim value aqt_poll(value v_fds, value v_events, value v_revents,
                        value v_n, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_n, v_timeout_ms);
  int n = Int_val(v_n);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd stack_pfds[64];
  struct pollfd *pfds = stack_pfds;
  int i, ret;

  if (n < 0 || n > Wosize_val(v_fds) || n > Wosize_val(v_events)
      || n > Wosize_val(v_revents))
    caml_invalid_argument("Evpoll.wait: inconsistent array sizes");

  if (n > 64) {
    pfds = malloc((size_t)n * sizeof(struct pollfd));
    if (pfds == NULL) caml_raise_out_of_memory();
  }

  for (i = 0; i < n; i++) {
    int ev = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = (short)(((ev & AQT_RD) ? POLLIN : 0)
                             | ((ev & AQT_WR) ? POLLOUT : 0));
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  ret = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (ret < 0) {
    int err = errno;
    if (pfds != stack_pfds) free(pfds);
    if (err == EINTR) CAMLreturn(Val_int(0));
    caml_failwith("Evpoll.wait: poll failed");
  }

  for (i = 0; i < n; i++) {
    short re = pfds[i].revents;
    int out = 0;
    if (re & (POLLIN | POLLHUP)) out |= AQT_RD;
    if (re & POLLOUT) out |= AQT_WR;
    if (re & (POLLERR | POLLNVAL)) out |= AQT_ERR;
    Field(v_revents, i) = Val_int(out);
  }

  if (pfds != stack_pfds) free(pfds);
  CAMLreturn(Val_int(ret));
}

/* Monotonic time in seconds as a float: immune to wall-clock steps, so
   latency math and token-bucket refill are too.  Falls back to
   CLOCK_REALTIME only if CLOCK_MONOTONIC is somehow unavailable. */
CAMLprim value aqt_monotonic_time(value v_unit)
{
  CAMLparam1(v_unit);
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    (void)clock_gettime(CLOCK_REALTIME, &ts);
  CAMLreturn(caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9));
}
