(** Readiness polling over poll(2).

    The event loop's one blocking point.  [Unix.select] caps file
    descriptors at FD_SETSIZE (1024); a daemon holding thousands of
    keep-alive connections — or a load generator opening a thousand of
    its own in the same process — needs poll(2), bound here through a C
    stub that releases the OCaml runtime lock for the duration of the
    wait.

    A {!t} is a reusable registration buffer: {!clear} it, {!add} every
    fd of interest, {!wait}, then {!iter_ready}.  The buffer reuses its
    arrays across iterations, so a steady-state loop allocates nothing
    per wait beyond closure captures. *)

type t

val create : unit -> t

val clear : t -> unit
(** Forget all registrations; capacity is retained. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register interest in [fd].  An fd registered with neither flag is
    still polled for errors/hangup (reported via [error]). *)

val length : t -> int
(** Registrations since the last {!clear}. *)

val wait : t -> timeout_ms:int -> int
(** Block until at least one registered fd is ready or the timeout (in
    milliseconds; [0] returns immediately, negative blocks forever)
    expires.  Returns the number of ready fds ([0] on timeout or
    [EINTR]).
    @raise Failure on an unrecoverable poll error. *)

val iter_ready :
  t -> (Unix.file_descr -> readable:bool -> writable:bool -> error:bool -> unit) -> unit
(** Visit every fd the last {!wait} reported ready, in registration
    order.  [error] covers [POLLERR]/[POLLNVAL]; peer hangup surfaces as
    [readable] (the next read returns 0). *)
