type failure_report = {
  seed : int;
  original : Diff.failure;
  scenario : Gen.scenario;
  failure : Diff.failure;
}

type summary = { seeds_run : int; failures : failure_report list }

let run_seed ?families ?mutant ?soa_domains seed =
  Diff.run ?mutant ?soa_domains (Gen.generate ?families seed)

let run_seeds ?families ?mutant ?soa_domains ?(base = 0) ?progress ~n () =
  let failures = ref [] in
  for i = 0 to n - 1 do
    let seed = base + i in
    (match run_seed ?families ?mutant ?soa_domains seed with
    | None -> ()
    | Some original ->
        let scenario, failure =
          Shrink.minimize
            ~run:(Diff.run ?mutant ?soa_domains)
            (Gen.generate ?families seed)
            original
        in
        failures := { seed; original; scenario; failure } :: !failures);
    match progress with Some f -> f (i + 1) | None -> ()
  done;
  { seeds_run = n; failures = List.rev !failures }

let find_mutant_failure ?families ?(max_seeds = 100) mutant =
  let rec scan seed =
    if seed >= max_seeds then None
    else
      match run_seed ?families ~mutant seed with
      | None -> scan (seed + 1)
      | Some original ->
          Some
            (Shrink.minimize ~run:(Diff.run ~mutant)
               (Gen.generate ?families seed)
               original)
  in
  scan 0

let pp_summary fmt s =
  if s.failures = [] then
    Format.fprintf fmt
      "check: %d seeds, no divergences, no invariant violations@."
      s.seeds_run
  else begin
    Format.fprintf fmt "check: %d seeds, %d FAILED@.@." s.seeds_run
      (List.length s.failures);
    List.iter
      (fun r ->
        Format.fprintf fmt "seed %d: %a@." r.seed Diff.pp_failure r.original;
        Format.fprintf fmt "shrunk reproducer (%a):@.%a@."
          Diff.pp_failure r.failure Gen.pp r.scenario;
        Format.fprintf fmt "replay: aqt_sim check --seed %d@.@." r.seed)
      s.failures
  end
