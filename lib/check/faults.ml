module Fault = Aqt_harness.Fault
module Registry = Aqt_harness.Registry
module Spec = Aqt_harness.Spec
module Cache = Aqt_harness.Cache
module Journal = Aqt_harness.Journal
module Scheduler = Aqt_harness.Scheduler

type action = Fail | Delay of float

type spec = { point : Fault.point; action : action; times : int option }

let fail_once point = { point; action = Fail; times = Some 1 }
let fail_n point n = { point; action = Fail; times = Some n }
let fail_always point = { point; action = Fail; times = None }
let delay point seconds = { point; action = Delay seconds; times = None }

let with_faults specs f =
  let specs = Array.of_list specs in
  let counts = Array.map (fun _ -> Atomic.make 0) specs in
  Fault.install (fun p ->
      Array.iteri
        (fun i s ->
          if s.point = p then begin
            let n = Atomic.fetch_and_add counts.(i) 1 in
            let active =
              match s.times with None -> true | Some k -> n < k
            in
            if active then
              match s.action with
              | Fail ->
                  raise
                    (Fault.Injected
                       (Format.asprintf "injected at %a" Fault.pp_point p))
              | Delay seconds -> Unix.sleepf seconds
          end)
        specs);
  Fun.protect ~finally:Fault.clear f

(* {2 Self-test} *)

type outcome = { case : string; passed : bool; detail : string }

exception Check_failed of string

let require cond fmt =
  Printf.ksprintf
    (fun msg -> if not cond then raise (Check_failed msg))
    fmt

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "aqt_check_faults_%d_%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let entry name : Registry.entry =
  {
    name;
    title = name;
    tags = [ "selftest" ];
    spec = [ ("name", Spec.Str name) ];
    run =
      (fun () ->
        let rb = Registry.Rb.create () in
        Registry.Rb.metric rb "max_queue" 1.0;
        Registry.Rb.note rb ("ran " ^ name);
        Registry.Rb.result rb);
  }

(* One scheduler invocation against a fresh cache + journal under [dir].
   jobs:1 keeps fault-hit order deterministic. *)
let run_sched ?timeout ?(retries = 1) ~dir entries =
  let cache = Cache.create ~dir:(Filename.concat dir "cache") in
  let journal = Journal.create (Filename.concat dir "journal.jsonl") in
  let results =
    Scheduler.run ~jobs:1 ?timeout ~retries ~cache ~journal entries
  in
  Journal.close journal;
  (results, cache, Filename.concat dir "journal.jsonl")

let no_temp_files cache =
  Array.for_all
    (fun f -> not (Filename.check_suffix f ".tmp"))
    (Sys.readdir (Cache.dir cache))

let outcome_of (r : Scheduler.task_result) = r.outcome

let case name f =
  let dir = fresh_dir () in
  let result =
    try
      f dir;
      { case = name; passed = true; detail = "ok" }
    with
    | Check_failed msg -> { case = name; passed = false; detail = msg }
    | e ->
        { case = name; passed = false; detail = Printexc.to_string e }
  in
  (try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ());
  result

let cache_write_crash_retries dir =
  (* One crash mid-store: the attempt fails after the run body, the retry
     re-runs and publishes.  Nothing torn is ever visible. *)
  let entries = [ entry "a"; entry "b"; entry "c" ] in
  let results, cache, journal_file =
    with_faults
      [ fail_once Fault.Cache_write ]
      (fun () -> run_sched ~dir entries)
  in
  require
    (List.for_all (fun r -> outcome_of r = Journal.Done) results)
    "expected every task Done";
  let a = List.hd results in
  require (a.attempts = 2) "victim should need 2 attempts, got %d" a.attempts;
  require
    (List.for_all
       (fun (r : Scheduler.task_result) -> r.name = "a" || r.attempts = 1)
       results)
    "non-victims should succeed first try";
  require
    (List.length (Cache.entries cache) = 3)
    "all three results should be cached";
  require (no_temp_files cache) "temp file leaked into the cache";
  let retries =
    List.filter
      (function Journal.Task_retry _ -> true | _ -> false)
      (Journal.load journal_file)
  in
  require (List.length retries = 1) "expected exactly one journalled retry"

let cache_write_crash_permanent dir =
  (* The victim's store crashes on both attempts; it must be reported
     Failed, stay out of the cache, and leave the others untouched.  A
     later fault-free run recovers it. *)
  let entries = [ entry "a"; entry "b"; entry "c" ] in
  let results, cache, _ =
    with_faults
      [ fail_n Fault.Cache_write 2 ]
      (fun () -> run_sched ~dir entries)
  in
  (match List.map outcome_of results with
  | [ Journal.Failed _; Journal.Done; Journal.Done ] -> ()
  | outs ->
      require false "expected [Failed; Done; Done], got [%s]"
        (String.concat "; " (List.map Journal.outcome_to_string outs)));
  require
    (List.length (Cache.entries cache) = 2)
    "only the two successes should be cached";
  require (no_temp_files cache) "temp file leaked into the cache";
  let results2, cache2, _ = run_sched ~dir entries in
  (match List.map outcome_of results2 with
  | [ Journal.Done; Journal.Cached; Journal.Cached ] -> ()
  | outs ->
      require false "recovery run: expected [Done; Cached; Cached], got [%s]"
        (String.concat "; " (List.map Journal.outcome_to_string outs)));
  require
    (List.length (Cache.entries cache2) = 3)
    "recovery run should complete the cache"

let journal_append_degrades dir =
  (* Journaling is observability, not correctness: when every append
     fails, the campaign must still complete and cache its results; the
     journal keeps a readable (here: empty) prefix. *)
  let entries = [ entry "a"; entry "b" ] in
  let cache = Cache.create ~dir:(Filename.concat dir "cache") in
  let journal = Journal.create (Filename.concat dir "journal.jsonl") in
  let results =
    with_faults
      [ fail_always Fault.Journal_append ]
      (fun () ->
        Scheduler.run ~jobs:1 ~retries:1 ~cache ~journal entries)
  in
  require (Journal.degraded journal) "writer should have marked degraded";
  Journal.close journal;
  require
    (List.for_all (fun r -> outcome_of r = Journal.Done) results)
    "tasks must succeed despite the dead journal";
  require
    (List.length (Cache.entries cache) = 2)
    "results must still be cached";
  let events = Journal.load (Filename.concat dir "journal.jsonl") in
  require (events = []) "degraded journal should hold a clean empty prefix"

let task_timeout_posthoc dir =
  (* A hung task (simulated by a delay at the task boundary) overruns its
     budget: reported Timed_out, journalled with the distinct post-hoc
     Task_timeout marker, never cached — and a later, fault-free run
     re-executes it. *)
  let entries = [ entry "slow" ] in
  let results, cache, journal_file =
    with_faults
      [ delay Fault.Task_run 0.05 ]
      (fun () -> run_sched ~timeout:0.01 ~dir entries)
  in
  (match results with
  | [ r ] ->
      require (outcome_of r = Journal.Timed_out)
        "expected Timed_out, got %s"
        (Journal.outcome_to_string (outcome_of r));
      require (r.result = None) "timed-out task must carry no result";
      require (r.attempts = 1) "timeouts are not retried"
  | _ -> require false "expected one result");
  require (Cache.entries cache = []) "timed-out result must not be cached";
  let events = Journal.load journal_file in
  let rec find_timeout = function
    | Journal.Task_timeout { name; limit; duration; _ } :: next :: _ ->
        require (name = "slow") "timeout event names the wrong task";
        require
          (Float.abs (limit -. 0.01) < 1e-6)
          "timeout event carries the wrong budget (got %g)" limit;
        require (duration >= 0.04)
          "timeout event should record the real duration (got %g)" duration;
        (match next with
        | Journal.Task_finish { outcome = Journal.Timed_out; _ } -> ()
        | _ ->
            require false
              "Task_timeout must immediately precede the Timed_out finish")
    | _ :: rest -> find_timeout rest
    | [] -> require false "no Task_timeout event journalled"
  in
  find_timeout events;
  let results2, cache2, _ = run_sched ~timeout:10.0 ~dir entries in
  require
    (List.map outcome_of results2 = [ Journal.Done ])
    "fault-free rerun should execute and succeed";
  require
    (List.length (Cache.entries cache2) = 1)
    "rerun should cache the result"

let fast_task_no_timeout_event dir =
  (* The within-budget path: a quick task under a generous budget produces
     a plain Done finish and no Task_timeout marker. *)
  let entries = [ entry "quick" ] in
  let results, _, journal_file = run_sched ~timeout:10.0 ~dir entries in
  require
    (List.map outcome_of results = [ Journal.Done ])
    "expected a plain Done";
  require
    (not
       (List.exists
          (function Journal.Task_timeout _ -> true | _ -> false)
          (Journal.load journal_file)))
    "no Task_timeout event may appear for a within-budget task"

let task_crash_retries_exhausted dir =
  (* A task that crashes on every attempt: retried as configured, then
     reported Failed with the journal recording each retry; the cache is
     untouched. *)
  let entries = [ entry "crash" ] in
  let results, cache, journal_file =
    with_faults
      [ fail_always Fault.Task_run ]
      (fun () -> run_sched ~retries:2 ~dir entries)
  in
  (match results with
  | [ r ] ->
      (match outcome_of r with
      | Journal.Failed _ -> ()
      | o ->
          require false "expected Failed, got %s"
            (Journal.outcome_to_string o));
      require (r.attempts = 3) "expected 3 attempts, got %d" r.attempts
  | _ -> require false "expected one result");
  require (Cache.entries cache = []) "failed result must not be cached";
  let retries =
    List.filter
      (function Journal.Task_retry _ -> true | _ -> false)
      (Journal.load journal_file)
  in
  require (List.length retries = 2) "expected two journalled retries"

let selftest () =
  [
    case "cache-write-crash-retries" cache_write_crash_retries;
    case "cache-write-crash-permanent" cache_write_crash_permanent;
    case "journal-append-degrades" journal_append_degrades;
    case "task-timeout-posthoc" task_timeout_posthoc;
    case "fast-task-no-timeout-event" fast_task_no_timeout_event;
    case "task-crash-retries-exhausted" task_crash_retries_exhausted;
  ]
