module P = Aqt_engine.Packet
module Digraph = Aqt_graph.Digraph
module Network = Aqt_engine.Network
module Capacity = Aqt_capacity.Model

(* One buffered packet: priority key (fixed at enqueue), per-buffer arrival
   sequence number, packet record.  The buffer forwards the least (key, seq);
   keeping the list in arrival order and sorting on demand is the most
   obviously correct reading of that rule. *)
type slot = { key : int; seq : int; pkt : P.t }

type t = {
  graph : Digraph.t;
  policy : Aqt_engine.Policy_type.t;
  tie_order : Network.tie_order;
  capacity : Capacity.t;
  caps : int array; (* static per-edge limits, max_int where none *)
  mutable dropped : int;
  mutable displaced : int;
  dropped_edge : int array;
  mutable peak_occupancy : int;
  buffers : slot list array; (* arrival order; selection sorts on demand *)
  seqs : int array; (* per-buffer arrival counters *)
  mutable active : int list; (* nonempty buffers, activation order *)
  mutable now : int;
  mutable next_id : int;
  mutable in_flight : int;
  mutable absorbed : int;
  mutable injected : int;
  mutable initials : int;
  mutable reroutes : int;
  mutable max_queue : int;
  max_queue_edge : int array;
  sent_edge : int array;
  mutable max_dwell : int;
  mutable latency_sum : int;
  mutable latency_max : int;
  (* (injected_at, id, packet) of every adversary injection, oldest first;
     the packet record is retained so [injection_log] reads the *final*
     route after any reroutes, as the engine does. *)
  mutable log : (int * int * P.t) list;
  last_use : int array;
}

let create ?(tie_order = Network.Transit_first)
    ?(capacity = Capacity.unbounded) ~graph ~policy () =
  let m = Digraph.n_edges graph in
  {
    graph;
    policy;
    tie_order;
    capacity;
    caps = Capacity.caps capacity ~m;
    dropped = 0;
    displaced = 0;
    dropped_edge = Array.make m 0;
    peak_occupancy = 0;
    buffers = Array.make m [];
    seqs = Array.make m 0;
    active = [];
    now = 0;
    next_id = 0;
    in_flight = 0;
    absorbed = 0;
    injected = 0;
    initials = 0;
    reroutes = 0;
    max_queue = 0;
    max_queue_edge = Array.make m 0;
    sent_edge = Array.make m 0;
    max_dwell = 0;
    latency_sum = 0;
    latency_max = 0;
    log = [];
    last_use = Array.make m min_int;
  }

let check_route t route =
  if not (Digraph.route_is_simple t.graph route) then
    invalid_arg
      (Format.asprintf "Ref_model: route %a is not a simple path"
         (Digraph.pp_route t.graph) route)

let slot_compare a b = compare (a.key, a.seq) (b.key, b.seq)

(* Total buffered population, recomputed from scratch — the naive reading of
   the quantity the engine maintains incrementally. *)
let occupancy t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.buffers

let enqueue t (p : P.t) e =
  p.P.buffered_at <- t.now;
  let seq = t.seqs.(e) in
  t.seqs.(e) <- seq + 1;
  let key = t.policy.key p ~now:t.now ~seq in
  t.buffers.(e) <- t.buffers.(e) @ [ { key; seq; pkt = p } ];
  if not (List.mem e t.active) then t.active <- t.active @ [ e ];
  let occ = occupancy t in
  if occ > t.peak_occupancy then t.peak_occupancy <- occ;
  let len = List.length t.buffers.(e) in
  if len > t.max_queue then t.max_queue <- len;
  if len > t.max_queue_edge.(e) then t.max_queue_edge.(e) <- len

let drop_packet t (_p : P.t) e ~displaced =
  t.dropped <- t.dropped + 1;
  t.dropped_edge.(e) <- t.dropped_edge.(e) + 1;
  if displaced then t.displaced <- t.displaced + 1;
  t.in_flight <- t.in_flight - 1

(* Capacity-model arrival, mirroring [Network]'s admission exactly: a
   Shared model admits by the Dynamic-Threshold test (rejections are tail
   drops); a static cap rejects the arrival (drop-tail) or evicts the least
   (key, seq) slot — the packet the policy would forward next (drop-head);
   the unbounded model is a plain enqueue. *)
let admit t (p : P.t) e =
  if Capacity.is_unbounded t.capacity then enqueue t p e
  else begin
    let total = Capacity.shared_total t.capacity in
    let len = List.length t.buffers.(e) in
    if total <> max_int then begin
      let alpha_num, alpha_den = Capacity.alpha t.capacity in
      if
        Capacity.dt_admits ~alpha_num ~alpha_den ~total
          ~occupancy:(occupancy t) ~len
      then enqueue t p e
      else drop_packet t p e ~displaced:false
    end
    else if len < t.caps.(e) then enqueue t p e
    else if Capacity.drop_head t.capacity && len > 0 then begin
      let victim = List.hd (List.sort slot_compare t.buffers.(e)) in
      t.buffers.(e) <-
        List.filter (fun s -> s.seq <> victim.seq) t.buffers.(e);
      drop_packet t victim.pkt e ~displaced:true;
      enqueue t p e
    end
    else drop_packet t p e ~displaced:false
  end

let fresh_packet t ~initial ~tag route : P.t =
  let id = t.next_id in
  t.next_id <- id + 1;
  {
    id;
    injected_at = t.now;
    initial;
    exogenous = false;
    tag;
    route;
    hop = 0;
    buffered_at = t.now;
    reroutes = 0;
  }

let mark_route_use t route =
  Array.iter (fun e -> t.last_use.(e) <- t.now) route

let place_initial t ?(tag = "init") route =
  if t.now <> 0 then
    invalid_arg "Ref_model.place_initial: the system already started";
  check_route t route;
  let route = Array.copy route in
  let p = fresh_packet t ~initial:true ~tag route in
  t.initials <- t.initials + 1;
  t.in_flight <- t.in_flight + 1;
  mark_route_use t route;
  admit t p route.(0);
  p

let absorb t (p : P.t) =
  t.absorbed <- t.absorbed + 1;
  t.in_flight <- t.in_flight - 1;
  let latency = t.now - p.P.injected_at in
  t.latency_sum <- t.latency_sum + latency;
  if latency > t.latency_max then t.latency_max <- latency

let inject t (inj : Network.injection) =
  check_route t inj.route;
  let route = Array.copy inj.route in
  let p = fresh_packet t ~initial:false ~tag:inj.tag route in
  t.injected <- t.injected + 1;
  t.in_flight <- t.in_flight + 1;
  mark_route_use t route;
  t.log <- (p.P.injected_at, p.P.id, p) :: t.log;
  admit t p route.(0)

let deliver t pending =
  List.iter
    (fun (p : P.t) ->
      p.P.hop <- p.P.hop + 1;
      if p.P.hop >= Array.length p.P.route then absorb t p
      else admit t p p.P.route.(p.P.hop))
    pending

let rec first_n n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: first_n (n - 1) rest

let step t injections =
  t.now <- t.now + 1;
  (* Substep 1: every nonempty buffer forwards its (up to [speedup]) least
     (key, seq) packets, simultaneously — all removals happen before any
     substep-2 enqueue.  Edges that stay nonempty keep their active-list
     order. *)
  let speedup = Capacity.speedup t.capacity in
  let old_active = t.active in
  let forwards =
    List.concat_map
      (fun e ->
        let chosen =
          first_n speedup (List.sort slot_compare t.buffers.(e))
        in
        List.map
          (fun best ->
            t.buffers.(e) <-
              List.filter (fun s -> s.seq <> best.seq) t.buffers.(e);
            let p = best.pkt in
            let dwell = t.now - p.P.buffered_at in
            if dwell > t.max_dwell then t.max_dwell <- dwell;
            t.sent_edge.(e) <- t.sent_edge.(e) + 1;
            (e, p))
          chosen)
      old_active
  in
  t.active <- List.filter (fun e -> t.buffers.(e) <> []) old_active;
  (* Substep 2: forwarded packets re-enter (or are absorbed) in forwarding
     order; the step's injections enter in list order; [tie_order] says
     which group goes first.  Buffers emptied in substep 1 and refilled here
     re-activate at the back of the active list. *)
  let pending = List.map snd forwards in
  (match t.tie_order with
  | Network.Transit_first ->
      deliver t pending;
      List.iter (inject t) injections
  | Network.Injection_first ->
      List.iter (inject t) injections;
      deliver t pending);
  List.map (fun (e, (p : P.t)) -> (e, p.P.id)) forwards

let reroute t (p : P.t) suffix =
  if P.is_absorbed p then
    invalid_arg "Ref_model.reroute: packet already absorbed";
  let new_route =
    Array.concat [ Array.sub p.P.route 0 (p.P.hop + 1); suffix ]
  in
  check_route t new_route;
  p.P.route <- new_route;
  p.P.reroutes <- p.P.reroutes + 1;
  t.reroutes <- t.reroutes + 1

let now t = t.now
let buffer_len t e = List.length t.buffers.(e)

let buffer_packets t e =
  List.map (fun s -> s.pkt) (List.sort slot_compare t.buffers.(e))

let iter_buffered f t =
  List.iter (fun e -> List.iter (fun s -> f s.pkt) t.buffers.(e)) t.active

let in_flight t = t.in_flight
let absorbed t = t.absorbed
let injected_count t = t.injected
let initial_count t = t.initials
let max_queue_ever t = t.max_queue
let max_queue_of_edge t e = t.max_queue_edge.(e)
let sent_on_edge t e = t.sent_edge.(e)
let max_dwell t = t.max_dwell

let max_pending_dwell t =
  let best = ref 0 in
  iter_buffered (fun p -> best := max !best (t.now - p.P.buffered_at)) t;
  !best

let delivered_latency_max t = t.latency_max

let delivered_latency_mean t =
  if t.absorbed = 0 then 0.0
  else float_of_int t.latency_sum /. float_of_int t.absorbed

let reroute_count t = t.reroutes
let last_injection_on t e = t.last_use.(e)
let dropped t = t.dropped
let displaced t = t.displaced
let dropped_on_edge t e = t.dropped_edge.(e)
let peak_occupancy t = t.peak_occupancy

let injection_log t =
  let all =
    List.sort
      (fun (t1, id1, _) (t2, id2, _) ->
        if t1 <> t2 then Int.compare t1 t2 else Int.compare id1 id2)
      t.log
  in
  Array.of_list (List.map (fun (time, _, p) -> (time, p.P.route)) all)

let nonempty_edges t = t.active
