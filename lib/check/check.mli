(** Conformance campaign driver: seeds in, shrunk reproducers out.

    Ties the pieces together for the CLI and the test suite: generate a
    scenario per seed ({!Gen}), run it differentially against the engine
    ({!Diff}), shrink any failure to a minimal reproducer ({!Shrink}), and
    render a report whose every failure is replayable from its seed alone
    ([aqt_sim check --seed K]). *)

type failure_report = {
  seed : int;
  original : Diff.failure;  (** What the unshrunk scenario reported. *)
  scenario : Gen.scenario;  (** The shrunk reproducer. *)
  failure : Diff.failure;  (** What the shrunk scenario reports. *)
}

type summary = {
  seeds_run : int;
  failures : failure_report list;  (** Empty = the engine conforms. *)
}

val run_seed :
  ?families:Gen.family list ->
  ?mutant:Diff.mutant ->
  ?soa_domains:int list ->
  int ->
  Diff.failure option
(** Generate and differentially run one seed (no shrinking).
    [families] restricts generation as in {!Gen.generate};
    [soa_domains] adds struct-of-arrays arms as in {!Diff.run}. *)

val run_seeds :
  ?families:Gen.family list ->
  ?mutant:Diff.mutant ->
  ?soa_domains:int list ->
  ?base:int ->
  ?progress:(int -> unit) ->
  n:int ->
  unit ->
  summary
(** Seeds [base .. base + n - 1] ([base] defaults to 0); every failure is
    shrunk before being reported.  [progress] is called with the number of
    seeds completed. *)

val find_mutant_failure :
  ?families:Gen.family list ->
  ?max_seeds:int ->
  Diff.mutant ->
  (Gen.scenario * Diff.failure) option
(** Scan seeds until the mutant makes one diverge, then shrink it.  This
    is the self-check that the differ can actually catch engine bugs —
    used by the test suite and by [aqt_sim check --mutant-demo]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable report: pass line, or per-failure the seed, the
    failure, the shrunk scenario dump, and the replay command. *)
