(** Seeded generation of random conformance scenarios.

    Every scenario is derived deterministically from a single integer seed
    via {!Aqt_util.Prng} (splitmix64), so any failure the differential
    driver finds is replayable from the seed alone — on any machine,
    forever.  A scenario bundles a topology, a policy, a tie order, an
    initial configuration, a fully materialised per-step injection
    schedule, and the list of {e obligations} the run must satisfy beyond
    agreeing with the reference model.

    Eight families are drawn (the family is the seed's first decision):

    - {b free}: arbitrary injection schedules over rings and lines, any
      deterministic policy, optional rerouting — maximal schedule
      diversity, differential checking only;
    - {b shared-bucket}: a {!Aqt_adversary.Stock.shared_token_bucket}
      adversary over overlapping routes — the injection log must pass the
      all-intervals rate-r check ([Rate_ok]);
    - {b windowed}: a (w,r) {!Aqt_adversary.Stock.windowed_burst} over
      edge-disjoint routes, with the rate chosen against the route length
      [d] so Theorem 4.1 (r = 1/(d+1), any greedy policy) or Theorem 4.3
      (r = 1/d, time-priority policies) applies — obligations
      [Windowed_ok] and [Dwell_bound];
    - {b leaky}: a (b,r) {!Aqt_adversary.Stock.leaky_bucket} over
      edge-disjoint routes — obligation [Leaky_ok];
    - {b capacity}: dense free-style schedules against a finite
      {!Aqt_capacity.Model} — small uniform, per-edge or Dynamic-Threshold
      shared buffers under every drop discipline, link speedups 1..3 — so
      the engine's admission, eviction and multi-send decisions are
      differentially checked against the oracle's;
    - {b local}: a {!Aqt_adversary.Local_burst} locally bursty adversary
      (arXiv:2208.09522) — one token-bucket flow per route plus per-flow
      one-off bursts, with the (rho, sigma_e) budgets derived from the
      flow set — obligation [Local_ok];
    - {b feedback}: feedback-driven routing (arXiv:1812.11113,
      {!Aqt_adversary.Feedback}) — the schedule stores only per-step
      release counts; each differential arm re-derives the greedy route
      choice and the hot-edge truncation pass from its {e own} observed
      queue vector, so observation divergence becomes buffer divergence —
      obligation [Rate_ok] (one aggregate release bucket bounds every edge
      regardless of route choice);
    - {b fabric}: a tiny spine-leaf or fat-tree with ECMP route sets and a
      flow-level {!Aqt_workload.Traffic} workload compiled to an
      admissible schedule, under unbounded or small shared-DT buffers —
      obligations [Local_ok] (the compiled (rho, sigma_e) budget holds on
      the log), [Routes_valid] and [Drop_accounting].

    All families except {b capacity} and {b fabric} carry the unbounded
    capacity model, so the paper's regime keeps its full differential
    coverage.

    Schedules from stock adversaries are materialised once at generation
    time, so the reference model, the fast engine and the traced engine
    all replay byte-identical injection sequences.  Excluded by design:
    the [bernoulli] adversary and the [random] policy — both consume a
    mutable PRNG {e during} the run, so two arms would not see the same
    draws. *)

type obligation =
  | Rate_ok of Aqt_util.Ratio.t
      (** Injection log must pass [Rate_check.check_rate]. *)
  | Windowed_ok of { w : int; rate : Aqt_util.Ratio.t }
      (** Must pass [Rate_check.check_windowed] (Def 2.1). *)
  | Leaky_ok of { b : int; rate : Aqt_util.Ratio.t }
      (** Must pass [Rate_check.check_leaky]. *)
  | Local_ok of { rate : Aqt_util.Ratio.t; sigmas : int array }
      (** Must pass [Rate_check.check_local] (locally bursty,
          arXiv:2208.09522). *)
  | Dwell_bound of { w : int; rate : Aqt_util.Ratio.t; d : int }
      (** [Aqt.Stability.verify_run] must not report a violated theorem
          bound (scenarios where no theorem applies verify vacuously). *)
  | Routes_valid
      (** Every route in the injection log is a simple path of the
          scenario graph ([Digraph.route_is_simple]). *)
  | Drop_accounting
      (** Per-edge drop counters sum to the global drop counter,
          displacements never exceed drops, and an unbounded capacity
          model drops nothing. *)

type feedback = { pool : int array array; hot : int }
(** The feedback-routing scenario parameters: the candidate route pool and
    the queue-length truncation threshold.  Present only on the
    {b feedback} family; the differ re-derives route choices per arm with
    {!Aqt_adversary.Feedback.assign} and truncations with
    {!Aqt_adversary.Feedback.should_truncate}. *)

type scenario = {
  seed : int;
  label : string;  (** Family, topology, policy, tie order — for humans. *)
  graph : Aqt_graph.Digraph.t;
  policy : Aqt_engine.Policy_type.t;
  tie_order : Aqt_engine.Network.tie_order;
  initial : int array list;  (** Routes placed at time 0. *)
  schedule : Aqt_engine.Network.injection list array;
      (** [schedule.(i)] arrives in the second substep of step [i + 1];
          the horizon is the array length. *)
  reroutes : bool;
      (** Run the deterministic truncation-reroute pass before each step. *)
  capacity : Aqt_capacity.Model.t;
      (** The buffer/speedup regime all three arms run under; unbounded for
          every family except {b capacity}. *)
  feedback : feedback option;
      (** When [Some], routes in [schedule] are placeholders: each arm
          reassigns them online from its own queue observations. *)
  obligations : obligation list;
}

val horizon : scenario -> int

type family =
  | Free
  | Shared_bucket
  | Windowed
  | Leaky
  | Capacity_regime
  | Local_bursty
  | Feedback_routing
  | Fabric

val all_families : family list

val family_name : family -> string
(** The CLI name: ["free"], ["shared-bucket"], ["windowed"], ["leaky"],
    ["capacity"], ["local"], ["feedback"], ["fabric"]. *)

val family_of_string : string -> family option
(** Inverse of {!family_name} (also accepts ["shared"], ["local-burst"]
    and ["dc"]). *)

val generate : ?families:family list -> int -> scenario
(** The scenario of a seed, drawn from [families] (default: all eight).
    Total: every seed yields a well-formed scenario.  Restricting
    [families] changes which scenario a given seed maps to.
    @raise Invalid_argument on an empty family list. *)

val pp : Format.formatter -> scenario -> unit
(** Full human-readable dump: label, sizes, initial routes, the nonempty
    schedule entries, obligations.  This is what a shrunk reproducer
    prints. *)

val pp_obligation : Format.formatter -> obligation -> unit
