module P = Aqt_engine.Packet
module Network = Aqt_engine.Network
module Soa = Aqt_engine.Soa
module Trace = Aqt_engine.Trace
module Digraph = Aqt_graph.Digraph
module Rate_check = Aqt_adversary.Rate_check
module Feedback = Aqt_adversary.Feedback
module Stability = Aqt.Stability
module Capacity = Aqt_capacity.Model

type mutant =
  | Drop_injection of int
  | Flip_tie_order
  | Skip_reroutes
  | Ignore_capacity
  | Violate_local_budget

type failure = { kind : string; step : int option; detail : string }

let pp_failure fmt f =
  match f.step with
  | Some s -> Format.fprintf fmt "[%s @ step %d] %s" f.kind s f.detail
  | None -> Format.fprintf fmt "[%s] %s" f.kind f.detail

exception Fail of failure

let fail kind ?step detail = raise (Fail { kind; step; detail })

(* Everything observable about a buffered packet.  Routes are compared as
   lists so reroutes (which install fresh arrays) still compare by value. *)
let print_of_packet (p : P.t) =
  Printf.sprintf "#%d inj@%d hop=%d buf@%d route=[%s]" p.P.id p.P.injected_at
    p.P.hop p.P.buffered_at
    (String.concat ";" (List.map string_of_int (Array.to_list p.P.route)))

let packet_fp (p : P.t) =
  (p.P.id, p.P.injected_at, p.P.hop, p.P.buffered_at, Array.to_list p.P.route)

let print_of_view (v : Soa.view) =
  Printf.sprintf "#%d inj@%d hop=%d buf@%d route=[%s]" v.Soa.v_id
    v.Soa.v_injected_at v.Soa.v_hop v.Soa.v_buffered_at
    (String.concat ";" (List.map string_of_int (Array.to_list v.Soa.v_route)))

let view_fp (v : Soa.view) =
  ( v.Soa.v_id,
    v.Soa.v_injected_at,
    v.Soa.v_hop,
    v.Soa.v_buffered_at,
    Array.to_list v.Soa.v_route )

let compare_buffers ~arm ~step refm net =
  let m = Digraph.n_edges (Network.graph net) in
  for e = 0 to m - 1 do
    let want = Ref_model.buffer_packets refm e in
    let got = Network.buffer_packets net e in
    if List.map packet_fp want <> List.map packet_fp got then
      fail "divergence" ~step
        (Printf.sprintf "%s arm, edge %d:\n  reference: %s\n  engine:    %s"
           arm e
           (String.concat " | " (List.map print_of_packet want))
           (String.concat " | " (List.map print_of_packet got)))
  done;
  if Network.in_flight net <> Ref_model.in_flight refm then
    fail "divergence" ~step
      (Printf.sprintf "%s arm: in_flight %d, reference %d" arm
         (Network.in_flight net) (Ref_model.in_flight refm));
  if Network.absorbed net <> Ref_model.absorbed refm then
    fail "divergence" ~step
      (Printf.sprintf "%s arm: absorbed %d, reference %d" arm
         (Network.absorbed net) (Ref_model.absorbed refm));
  if Network.dropped net <> Ref_model.dropped refm then
    fail "divergence" ~step
      (Printf.sprintf "%s arm: dropped %d, reference %d" arm
         (Network.dropped net) (Ref_model.dropped refm))

(* The SoA arms expose buffered packets as copied-out views rather than
   [Packet.t] handles; the comparison is the same fingerprint. *)
let compare_soa_buffers ~arm ~step refm soa =
  let m = Digraph.n_edges (Soa.graph soa) in
  for e = 0 to m - 1 do
    let want = Ref_model.buffer_packets refm e in
    let got = Soa.buffer_packets soa e in
    if List.map packet_fp want <> List.map view_fp got then
      fail "divergence" ~step
        (Printf.sprintf "%s arm, edge %d:\n  reference: %s\n  engine:    %s"
           arm e
           (String.concat " | " (List.map print_of_packet want))
           (String.concat " | " (List.map print_of_view got)))
  done;
  if Soa.in_flight soa <> Ref_model.in_flight refm then
    fail "divergence" ~step
      (Printf.sprintf "%s arm: in_flight %d, reference %d" arm
         (Soa.in_flight soa) (Ref_model.in_flight refm));
  if Soa.absorbed soa <> Ref_model.absorbed refm then
    fail "divergence" ~step
      (Printf.sprintf "%s arm: absorbed %d, reference %d" arm
         (Soa.absorbed soa) (Ref_model.absorbed refm));
  if Soa.dropped soa <> Ref_model.dropped refm then
    fail "divergence" ~step
      (Printf.sprintf "%s arm: dropped %d, reference %d" arm
         (Soa.dropped soa) (Ref_model.dropped refm))

(* Capacity-never-exceeded: after every step, each buffer respects its
   static cap and a shared pool respects its total.  Checked against the
   scenario's model, not the arm's (so the ignore-capacity mutant is caught
   here as soon as it overfills a buffer). *)
let check_capacity ~arm ~step (capacity : Capacity.t) net =
  if not (Capacity.is_unbounded capacity) then begin
    let m = Digraph.n_edges (Network.graph net) in
    let caps = Capacity.caps capacity ~m in
    for e = 0 to m - 1 do
      if Network.buffer_len net e > caps.(e) then
        fail "capacity-exceeded" ~step
          (Printf.sprintf "%s arm: edge %d holds %d packets, cap %d" arm e
             (Network.buffer_len net e) caps.(e))
    done;
    let total = Capacity.shared_total capacity in
    if total <> max_int && Network.occupancy net > total then
      fail "capacity-exceeded" ~step
        (Printf.sprintf "%s arm: %d packets buffered, shared total %d" arm
           (Network.occupancy net) total)
  end

let check_stat ~arm name want got =
  if want <> got then
    fail "stat-divergence"
      (Printf.sprintf "%s arm: %s = %d, reference %d" arm name got want)

let compare_stats ~arm refm net =
  let m = Digraph.n_edges (Network.graph net) in
  check_stat ~arm "injected" (Ref_model.injected_count refm)
    (Network.injected_count net);
  check_stat ~arm "initials" (Ref_model.initial_count refm)
    (Network.initial_count net);
  check_stat ~arm "max_queue" (Ref_model.max_queue_ever refm)
    (Network.max_queue_ever net);
  check_stat ~arm "max_dwell" (Ref_model.max_dwell refm)
    (Network.max_dwell net);
  check_stat ~arm "max_pending_dwell"
    (Ref_model.max_pending_dwell refm)
    (Network.max_pending_dwell net);
  check_stat ~arm "latency_max"
    (Ref_model.delivered_latency_max refm)
    (Network.delivered_latency_max net);
  check_stat ~arm "reroutes" (Ref_model.reroute_count refm)
    (Network.reroute_count net);
  check_stat ~arm "dropped" (Ref_model.dropped refm) (Network.dropped net);
  check_stat ~arm "displaced" (Ref_model.displaced refm)
    (Network.displaced net);
  check_stat ~arm "peak_occupancy"
    (Ref_model.peak_occupancy refm)
    (Network.peak_occupancy net);
  if
    Ref_model.delivered_latency_mean refm
    <> Network.delivered_latency_mean net
  then
    fail "stat-divergence"
      (Printf.sprintf "%s arm: latency_mean %g, reference %g" arm
         (Network.delivered_latency_mean net)
         (Ref_model.delivered_latency_mean refm));
  for e = 0 to m - 1 do
    check_stat ~arm
      (Printf.sprintf "max_queue_of_edge %d" e)
      (Ref_model.max_queue_of_edge refm e)
      (Network.max_queue_of_edge net e);
    check_stat ~arm
      (Printf.sprintf "sent_on_edge %d" e)
      (Ref_model.sent_on_edge refm e)
      (Network.sent_on_edge net e);
    check_stat ~arm
      (Printf.sprintf "last_injection_on %d" e)
      (Ref_model.last_injection_on refm e)
      (Network.last_injection_on net e);
    check_stat ~arm
      (Printf.sprintf "dropped_on_edge %d" e)
      (Ref_model.dropped_on_edge refm e)
      (Network.dropped_on_edge net e)
  done

let check_soa_capacity ~arm ~step (capacity : Capacity.t) soa =
  if not (Capacity.is_unbounded capacity) then begin
    let m = Digraph.n_edges (Soa.graph soa) in
    let caps = Capacity.caps capacity ~m in
    for e = 0 to m - 1 do
      if Soa.buffer_len soa e > caps.(e) then
        fail "capacity-exceeded" ~step
          (Printf.sprintf "%s arm: edge %d holds %d packets, cap %d" arm e
             (Soa.buffer_len soa e) caps.(e))
    done;
    let total = Capacity.shared_total capacity in
    if total <> max_int && Soa.occupancy soa > total then
      fail "capacity-exceeded" ~step
        (Printf.sprintf "%s arm: %d packets buffered, shared total %d" arm
           (Soa.occupancy soa) total)
  end

let compare_soa_stats ~arm refm soa =
  let m = Digraph.n_edges (Soa.graph soa) in
  check_stat ~arm "injected" (Ref_model.injected_count refm)
    (Soa.injected_count soa);
  check_stat ~arm "initials" (Ref_model.initial_count refm)
    (Soa.initial_count soa);
  check_stat ~arm "max_queue" (Ref_model.max_queue_ever refm)
    (Soa.max_queue_ever soa);
  check_stat ~arm "max_dwell" (Ref_model.max_dwell refm) (Soa.max_dwell soa);
  check_stat ~arm "max_pending_dwell"
    (Ref_model.max_pending_dwell refm)
    (Soa.max_pending_dwell soa);
  check_stat ~arm "latency_max"
    (Ref_model.delivered_latency_max refm)
    (Soa.delivered_latency_max soa);
  check_stat ~arm "reroutes" (Ref_model.reroute_count refm)
    (Soa.reroute_count soa);
  check_stat ~arm "dropped" (Ref_model.dropped refm) (Soa.dropped soa);
  check_stat ~arm "displaced" (Ref_model.displaced refm) (Soa.displaced soa);
  check_stat ~arm "peak_occupancy"
    (Ref_model.peak_occupancy refm)
    (Soa.peak_occupancy soa);
  if Ref_model.delivered_latency_mean refm <> Soa.delivered_latency_mean soa
  then
    fail "stat-divergence"
      (Printf.sprintf "%s arm: latency_mean %g, reference %g" arm
         (Soa.delivered_latency_mean soa)
         (Ref_model.delivered_latency_mean refm));
  for e = 0 to m - 1 do
    check_stat ~arm
      (Printf.sprintf "max_queue_of_edge %d" e)
      (Ref_model.max_queue_of_edge refm e)
      (Soa.max_queue_of_edge soa e);
    check_stat ~arm
      (Printf.sprintf "sent_on_edge %d" e)
      (Ref_model.sent_on_edge refm e)
      (Soa.sent_on_edge soa e);
    check_stat ~arm
      (Printf.sprintf "last_injection_on %d" e)
      (Ref_model.last_injection_on refm e)
      (Soa.last_injection_on soa e);
    check_stat ~arm
      (Printf.sprintf "dropped_on_edge %d" e)
      (Ref_model.dropped_on_edge refm e)
      (Soa.dropped_on_edge soa e)
  done

let compare_logs ~arm refm net =
  let want = Ref_model.injection_log refm in
  let got = Network.injection_log net in
  if Array.length want <> Array.length got then
    fail "injection-log"
      (Printf.sprintf "%s arm: %d entries, reference %d" arm
         (Array.length got) (Array.length want));
  Array.iteri
    (fun i (wt, wr) ->
      let gt, gr = got.(i) in
      if wt <> gt || Array.to_list wr <> Array.to_list gr then
        fail "injection-log"
          (Printf.sprintf "%s arm: entry %d is (t=%d, [%s]), reference (t=%d, [%s])"
             arm i gt
             (String.concat ";" (List.map string_of_int (Array.to_list gr)))
             wt
             (String.concat ";" (List.map string_of_int (Array.to_list wr)))))
    want

let compare_soa_logs ~arm refm soa =
  let want = Ref_model.injection_log refm in
  let got = Soa.injection_log soa in
  if Array.length want <> Array.length got then
    fail "injection-log"
      (Printf.sprintf "%s arm: %d entries, reference %d" arm
         (Array.length got) (Array.length want));
  Array.iteri
    (fun i (wt, wr) ->
      let gt, gr = got.(i) in
      if wt <> gt || Array.to_list wr <> Array.to_list gr then
        fail "injection-log"
          (Printf.sprintf
             "%s arm: entry %d is (t=%d, [%s]), reference (t=%d, [%s])" arm i
             gt
             (String.concat ";" (List.map string_of_int (Array.to_list gr)))
             wt
             (String.concat ";" (List.map string_of_int (Array.to_list wr)))))
    want

let check_soa_conservation ~arm soa =
  let made = Soa.initial_count soa + Soa.injected_count soa in
  let accounted = Soa.absorbed soa + Soa.in_flight soa + Soa.dropped soa in
  if made <> accounted then
    fail "conservation"
      (Printf.sprintf
         "%s arm: %d packets created but %d accounted for \
          (absorbed + in flight + dropped)"
         arm made accounted)

(* The deterministic reroute pass (same rule as the fast-path tests):
   before each step, every buffered packet with [id mod 5 = 2] and more
   than one remaining hop gets its route truncated at the current edge.
   Applied identically to the reference and (unless the mutant suppresses
   it) to each engine arm; truncation is per-packet, so the application
   order within an arm does not matter. *)
let should_truncate (p : P.t) = p.P.id mod 5 = 2 && P.remaining p > 1

let reroute_ref refm =
  let victims = ref [] in
  Ref_model.iter_buffered
    (fun p -> if should_truncate p then victims := p :: !victims)
    refm;
  List.iter (fun p -> Ref_model.reroute refm p [||]) !victims

let reroute_net net =
  let victims = ref [] in
  Network.iter_buffered
    (fun p -> if should_truncate p then victims := p :: !victims)
    net;
  List.iter (fun p -> Network.reroute net p [||]) !victims

let reroute_soa soa =
  Soa.reroute_where soa
    (fun ~id ~edge:_ ~remaining -> id mod 5 = 2 && remaining > 1)
    [||]

(* Feedback-routing support: each arm observes its OWN start-of-step queue
   vector, then re-derives the truncation pass and the greedy route
   assignment from it with the pure [Feedback] rules.  If any arm's queues
   have drifted, its choices drift, and the buffer compare reports the
   divergence the same step. *)
let queues_ref refm m = Array.init m (Ref_model.buffer_len refm)
let queues_net net m = Array.init m (Network.buffer_len net)
let queues_soa soa m = Array.init m (Soa.buffer_len soa)

let feedback_reroute_ref ~queues ~hot refm =
  let victims = ref [] in
  Ref_model.iter_buffered
    (fun p ->
      if
        Feedback.should_truncate ~queues ~hot ~edge:(P.current_edge p)
          ~remaining:(P.remaining p)
      then victims := p :: !victims)
    refm;
  List.iter (fun p -> Ref_model.reroute refm p [||]) !victims

let feedback_reroute_net ~queues ~hot net =
  let victims = ref [] in
  Network.iter_buffered
    (fun p ->
      if
        Feedback.should_truncate ~queues ~hot ~edge:(P.current_edge p)
          ~remaining:(P.remaining p)
      then victims := p :: !victims)
    net;
  List.iter (fun p -> Network.reroute net p [||]) !victims

let feedback_reroute_soa ~queues ~hot soa =
  Soa.reroute_where soa
    (fun ~id:_ ~edge ~remaining ->
      Feedback.should_truncate ~queues ~hot ~edge ~remaining)
    [||]

(* Replace the placeholder routes of a feedback step with the greedy
   water-filling assignment derived from [qs].  A no-op on every other
   family. *)
let assign_feedback (scenario : Gen.scenario) qs injs =
  match scenario.Gen.feedback with
  | None -> injs
  | Some fb ->
      List.map2
        (fun (inj : Network.injection) route -> { inj with route })
        injs
        (Feedback.assign ~queues:qs ~pool:fb.Gen.pool (List.length injs))

(* Trace-level invariants: at most [speedup] forwards per (step, edge), and
   each step's forwarded-edge multiset equals the reference model's — the
   engine is greedy and never idles a backlogged link.  The sorted lists
   compare as multisets, so a speedup-s edge appearing s times on both
   sides matches. *)
let check_trace_invariants ~speedup tr ref_forwards =
  let by_step = Hashtbl.create 64 in
  Array.iter
    (function
      | Trace.Forwarded { t; edge; _ } ->
          let prev = try Hashtbl.find by_step t with Not_found -> [] in
          let uses = List.length (List.filter (Int.equal edge) prev) in
          if uses >= speedup then
            fail "trace-invariant" ~step:t
              (Printf.sprintf
                 "edge %d forwarded %d times in step %d (speedup %d)" edge
                 (uses + 1) t speedup);
          Hashtbl.replace by_step t (edge :: prev)
      | _ -> ())
    (Trace.events tr);
  Array.iteri
    (fun i expected ->
      let t = i + 1 in
      let got =
        List.sort Int.compare
          (try Hashtbl.find by_step t with Not_found -> [])
      in
      let want = List.sort Int.compare expected in
      if want <> got then
        fail "trace-invariant" ~step:t
          (Printf.sprintf
             "step %d forwarded edges {%s}, nonempty buffers were {%s}" t
             (String.concat "," (List.map string_of_int got))
             (String.concat "," (List.map string_of_int want))))
    ref_forwards

let check_conservation ~arm net =
  let made = Network.initial_count net + Network.injected_count net in
  let accounted =
    Network.absorbed net + Network.in_flight net + Network.dropped net
  in
  if made <> accounted then
    fail "conservation"
      (Printf.sprintf
         "%s arm: %d packets created but %d accounted for \
          (absorbed + in flight + dropped)"
         arm made accounted)

let check_obligation scenario net = function
  | Gen.Rate_ok rate ->
      let m = Digraph.n_edges scenario.Gen.graph in
      (match Rate_check.check_rate ~m ~rate (Network.injection_log net) with
      | Ok () -> ()
      | Error v ->
          fail "rate" (Format.asprintf "%a" Rate_check.pp_violation v))
  | Gen.Windowed_ok { w; rate } ->
      let m = Digraph.n_edges scenario.Gen.graph in
      (match
         Rate_check.check_windowed ~m ~w ~rate (Network.injection_log net)
       with
      | Ok () -> ()
      | Error v ->
          fail "windowed" (Format.asprintf "%a" Rate_check.pp_violation v))
  | Gen.Leaky_ok { b; rate } ->
      let m = Digraph.n_edges scenario.Gen.graph in
      (match
         Rate_check.check_leaky ~m ~b ~rate (Network.injection_log net)
       with
      | Ok () -> ()
      | Error v ->
          fail "leaky" (Format.asprintf "%a" Rate_check.pp_violation v))
  | Gen.Local_ok { rate; sigmas } ->
      (match
         Rate_check.check_local ~rate ~sigmas (Network.injection_log net)
       with
      | Ok () -> ()
      | Error v ->
          fail "local" (Format.asprintf "%a" Rate_check.pp_violation v))
  | Gen.Routes_valid ->
      Array.iter
        (fun (t, route) ->
          if not (Digraph.route_is_simple scenario.Gen.graph route) then
            fail "routes" ~step:t
              (Printf.sprintf "injected route [%s] is not a simple path"
                 (String.concat ";"
                    (List.map string_of_int (Array.to_list route)))))
        (Network.injection_log net)
  | Gen.Drop_accounting ->
      let m = Digraph.n_edges scenario.Gen.graph in
      let per_edge = ref 0 in
      for e = 0 to m - 1 do
        per_edge := !per_edge + Network.dropped_on_edge net e
      done;
      let dropped = Network.dropped net in
      if !per_edge <> dropped then
        fail "drops"
          (Printf.sprintf "per-edge drops sum to %d but %d dropped" !per_edge
             dropped);
      if Network.displaced net > dropped then
        fail "drops"
          (Printf.sprintf "%d displaced exceeds %d dropped"
             (Network.displaced net) dropped);
      if Capacity.is_unbounded scenario.Gen.capacity && dropped <> 0 then
        fail "drops"
          (Printf.sprintf "unbounded buffers dropped %d packets" dropped)
  | Gen.Dwell_bound { w; rate; d } -> (
      match Stability.verify_run ~w ~rate ~d net with
      | None | Some { Stability.ok = true; _ } -> ()
      | Some v ->
          fail "dwell"
            (Printf.sprintf
               "dwell bound %d exceeded: max completed %d, max pending %d"
               v.Stability.bound v.Stability.max_dwell_seen
               v.Stability.max_pending))

(* The budget-violation mutant corrupts the SCHEDULE itself — identically
   for every arm — by replaying one injection [sigma_e + 1] extra times in
   its step, blowing the per-edge budget on that route's first edge.  No
   arm diverges from any other, so the differential layer is blind to it by
   construction: only the [Local_ok] admissibility obligation can catch it.
   Scenarios without that obligation are immune (the mutant is a no-op). *)
let violate_local (scenario : Gen.scenario) =
  let sigmas =
    List.find_map
      (function
        | Gen.Local_ok { rate = _; sigmas } -> Some sigmas
        | _ -> None)
      scenario.Gen.obligations
  in
  match sigmas with
  | None -> scenario.Gen.schedule
  | Some sigmas ->
      let schedule = Array.copy scenario.Gen.schedule in
      let idx = ref (-1) in
      Array.iteri
        (fun i injs -> if !idx < 0 && injs <> [] then idx := i)
        schedule;
      (if !idx >= 0 then
         match schedule.(!idx) with
         | [] -> ()
         | (inj : Network.injection) :: _ ->
             let e0 = inj.route.(0) in
             let extra = List.init (sigmas.(e0) + 1) (fun _ -> inj) in
             schedule.(!idx) <- extra @ schedule.(!idx));
      schedule

let run ?mutant ?(soa_domains = []) (scenario : Gen.scenario) =
  let engine_tie =
    match mutant with
    | Some Flip_tie_order -> (
        match scenario.tie_order with
        | Network.Transit_first -> Network.Injection_first
        | Network.Injection_first -> Network.Transit_first)
    | _ -> scenario.tie_order
  in
  let engine_reroutes =
    scenario.reroutes && mutant <> Some Skip_reroutes
  in
  let engine_capacity =
    if mutant = Some Ignore_capacity then Capacity.unbounded
    else scenario.capacity
  in
  let schedule =
    if mutant = Some Violate_local_budget then violate_local scenario
    else scenario.schedule
  in
  let refm =
    Ref_model.create ~tie_order:scenario.tie_order
      ~capacity:scenario.capacity ~graph:scenario.graph
      ~policy:scenario.policy ()
  in
  let fast =
    Network.create ~log_injections:true ~tie_order:engine_tie ~recycle:true
      ~capacity:engine_capacity ~graph:scenario.graph
      ~policy:scenario.policy ()
  in
  let tr = Trace.create () in
  let traced =
    Network.create ~log_injections:true ~tie_order:engine_tie
      ~tracer:(Trace.handler tr) ~capacity:engine_capacity
      ~graph:scenario.graph ~policy:scenario.policy ()
  in
  (* One SoA arm per requested domain count — the struct-of-arrays engine,
     sequential and partition-parallel, must all match the oracle
     buffer-for-buffer each step. *)
  let soa_arms =
    List.map
      (fun d ->
        ( Printf.sprintf "soa-d%d" d,
          Soa.create ~log_injections:true ~tie_order:engine_tie
            ~capacity:engine_capacity ~domains:d ~graph:scenario.graph
            ~policy:scenario.policy () ))
      soa_domains
  in
  let finally () = List.iter (fun (_, s) -> Soa.shutdown s) soa_arms in
  Fun.protect ~finally @@ fun () ->
  try
    List.iter
      (fun route ->
        ignore (Ref_model.place_initial refm route);
        ignore (Network.place_initial fast route);
        ignore (Network.place_initial traced route);
        List.iter (fun (_, s) -> ignore (Soa.place_initial s route)) soa_arms)
      scenario.initial;
    let horizon = Gen.horizon scenario in
    let ref_forwards = Array.make horizon [] in
    let injections_seen = ref 0 in
    let m = Digraph.n_edges scenario.graph in
    for i = 0 to horizon - 1 do
      let step = i + 1 in
      (* Each arm's queue snapshot, taken BEFORE the reroute pass: this is
         the state the feedback adversary observes, and truncation must not
         retroactively change what it saw. *)
      let qs_ref, qs_fast, qs_traced, qs_soa =
        match scenario.feedback with
        | None -> ([||], [||], [||], List.map (fun _ -> [||]) soa_arms)
        | Some _ ->
            ( queues_ref refm m,
              queues_net fast m,
              queues_net traced m,
              List.map (fun (_, s) -> queues_soa s m) soa_arms )
      in
      (match scenario.feedback with
      | Some { Gen.hot; _ } ->
          if scenario.reroutes then
            feedback_reroute_ref ~queues:qs_ref ~hot refm;
          if engine_reroutes then begin
            feedback_reroute_net ~queues:qs_fast ~hot fast;
            feedback_reroute_net ~queues:qs_traced ~hot traced;
            List.iter2
              (fun (_, s) qs -> feedback_reroute_soa ~queues:qs ~hot s)
              soa_arms qs_soa
          end
      | None ->
          if scenario.reroutes then reroute_ref refm;
          if engine_reroutes then begin
            reroute_net fast;
            reroute_net traced;
            List.iter (fun (_, s) -> reroute_soa s) soa_arms
          end);
      let injs = schedule.(i) in
      let engine_injs =
        match mutant with
        | Some (Drop_injection k) ->
            List.filter
              (fun _ ->
                let n = !injections_seen in
                incr injections_seen;
                n <> k)
              injs
        | _ -> injs
      in
      let forwards =
        Ref_model.step refm (assign_feedback scenario qs_ref injs)
      in
      ref_forwards.(i) <- List.map fst forwards;
      Network.step fast (assign_feedback scenario qs_fast engine_injs);
      Network.step traced (assign_feedback scenario qs_traced engine_injs);
      List.iter2
        (fun (_, s) qs -> Soa.step s (assign_feedback scenario qs engine_injs))
        soa_arms qs_soa;
      compare_buffers ~arm:"fast" ~step refm fast;
      compare_buffers ~arm:"traced" ~step refm traced;
      List.iter
        (fun (arm, s) -> compare_soa_buffers ~arm ~step refm s)
        soa_arms;
      check_capacity ~arm:"fast" ~step scenario.capacity fast;
      check_capacity ~arm:"traced" ~step scenario.capacity traced;
      List.iter
        (fun (arm, s) -> check_soa_capacity ~arm ~step scenario.capacity s)
        soa_arms
    done;
    compare_stats ~arm:"fast" refm fast;
    compare_stats ~arm:"traced" refm traced;
    compare_logs ~arm:"fast" refm fast;
    compare_logs ~arm:"traced" refm traced;
    check_conservation ~arm:"fast" fast;
    check_conservation ~arm:"traced" traced;
    List.iter
      (fun (arm, s) ->
        compare_soa_stats ~arm refm s;
        compare_soa_logs ~arm refm s;
        check_soa_conservation ~arm s)
      soa_arms;
    check_trace_invariants
      ~speedup:(Capacity.speedup scenario.capacity)
      tr ref_forwards;
    if Trace.count_dropped tr <> Ref_model.dropped refm then
      fail "trace-invariant"
        (Printf.sprintf "traced arm emitted %d drop events, reference %d"
           (Trace.count_dropped tr) (Ref_model.dropped refm));
    List.iter (check_obligation scenario fast) scenario.obligations;
    None
  with Fail f -> Some f
