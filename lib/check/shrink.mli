(** Greedy delta-debugging of a failing conformance scenario.

    Given a scenario on which [run] reports a failure, produce a smaller
    scenario that still fails: the horizon is truncated to the first
    failing step, whole schedule steps are emptied (latest first), single
    injections and initial packets are dropped one at a time, and the
    reroute pass is disabled if the failure survives without it.  Passes
    repeat to a fixpoint under a fuel bound, so shrinking always
    terminates quickly even on pathological inputs.

    Every candidate is re-validated by calling [run] — a candidate is kept
    only if it still fails (with whatever failure it now produces, not
    necessarily the original kind: any failing smaller input is a better
    reproducer than a larger one).  Because dropping injections only
    lowers per-edge injection counts, shrinking preserves the scenario's
    admissibility obligations — a correct engine cannot start failing a
    rate or dwell check on a shrunk candidate, so shrinking never
    manufactures spurious reproducers. *)

val minimize :
  run:(Gen.scenario -> Diff.failure option) ->
  Gen.scenario ->
  Diff.failure ->
  Gen.scenario * Diff.failure
(** [minimize ~run scenario failure] requires that [run scenario] fails
    (with [failure]); returns the shrunk scenario and its failure.  [run]
    is typically [Diff.run] or [Diff.run ~mutant:m]. *)
