(* Candidate budget: each kept or rejected candidate costs one full
   differential run, so bound the total.  Generated scenarios hold at most
   a few hundred injections; the bound is never reached in practice. *)
let max_candidates = 2000

let minimize ~run scenario failure =
  let cur = ref scenario in
  let curf = ref failure in
  let fuel = ref max_candidates in
  let try_candidate c =
    !fuel > 0
    &&
    (decr fuel;
     match run c with
     | Some f ->
         cur := c;
         curf := f;
         true
     | None -> false)
  in
  let truncate_to_failure () =
    match !curf.Diff.step with
    | Some s when s < Gen.horizon !cur ->
        try_candidate
          { !cur with Gen.schedule = Array.sub !cur.Gen.schedule 0 s }
    | _ -> false
  in
  ignore (truncate_to_failure ());
  let changed = ref true in
  while !changed && !fuel > 0 do
    changed := false;
    (* Empty whole steps, latest first: late injections are the likeliest
       to be irrelevant to an early divergence. *)
    for i = Gen.horizon !cur - 1 downto 0 do
      if !cur.Gen.schedule.(i) <> [] then begin
        let sch = Array.copy !cur.Gen.schedule in
        sch.(i) <- [];
        if try_candidate { !cur with Gen.schedule = sch } then changed := true
      end
    done;
    (* Drop single injections. *)
    for i = 0 to Gen.horizon !cur - 1 do
      let rec drop_at j =
        let injs = !cur.Gen.schedule.(i) in
        if j < List.length injs then begin
          let sch = Array.copy !cur.Gen.schedule in
          sch.(i) <- List.filteri (fun idx _ -> idx <> j) injs;
          if try_candidate { !cur with Gen.schedule = sch } then begin
            changed := true;
            drop_at j (* index j now holds the next injection *)
          end
          else drop_at (j + 1)
        end
      in
      drop_at 0
    done;
    (* Drop initial-configuration packets.  Packet ids shift when one is
       removed, so candidates are re-run from scratch like any other. *)
    let rec drop_init j =
      let init = !cur.Gen.initial in
      if j < List.length init then begin
        let cand =
          { !cur with Gen.initial = List.filteri (fun idx _ -> idx <> j) init }
        in
        if try_candidate cand then begin
          changed := true;
          drop_init j
        end
        else drop_init (j + 1)
      end
    in
    drop_init 0;
    if !cur.Gen.reroutes then
      if try_candidate { !cur with Gen.reroutes = false } then changed := true;
    if truncate_to_failure () then changed := true
  done;
  (!cur, !curf)
