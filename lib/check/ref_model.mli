(** Executable reference model of the AQT step semantics (§2).

    This is the conformance oracle for [Aqt_engine.Network]: the same
    observable state machine, written for obviousness instead of speed.
    Buffers are plain lists of [(key, seq, packet)] triples; the forwarded
    packet is found by sorting; membership tests are linear scans; every
    injection allocates a fresh packet record and a fresh route array.  No
    free-lists, no interning, no deque/heap specialisations — every
    mechanism the fast engine uses to go fast is absent here, so a
    divergence between the two is evidence about the engine, not about the
    oracle.

    Semantics replicated exactly (all of it observable through the public
    engine API and therefore checked by [Diff]):

    - two-substep steps: every nonempty buffer forwards the packet with the
      lexicographically least [(key, seq)] (key fixed at enqueue), then
      forwarded packets are absorbed or re-enqueued in forwarding order,
      then the step's injections enter in list order ([tie_order] decides
      whether transit beats injections);
    - forwarding order follows the engine's active-edge list: edges that
      stay nonempty keep their relative order, edges activated during the
      second substep append in activation order.  The order is observable —
      it determines the per-buffer arrival [seq] of same-step arrivals;
    - instrumentation: dwell, per-edge queue maxima and send counts,
      delivery latencies, the [(time, final route)] injection log, and the
      Definition 3.2 [last_use] tracking. *)

type t

val create :
  ?tie_order:Aqt_engine.Network.tie_order ->
  ?capacity:Aqt_capacity.Model.t ->
  graph:Aqt_graph.Digraph.t ->
  policy:Aqt_engine.Policy_type.t ->
  unit ->
  t
(** [capacity] (default unbounded) mirrors the engine's finite-buffer and
    link-speedup semantics naively: static caps compare against a
    [List.length], the Dynamic-Threshold test recomputes the occupancy by
    summing every buffer, the drop-head victim is found by sorting. *)

(** {1 Driving} *)

val place_initial : t -> ?tag:string -> int array -> Aqt_engine.Packet.t
(** Mirrors [Network.place_initial].
    @raise Invalid_argument after the first step or on an invalid route. *)

val step : t -> Aqt_engine.Network.injection list -> (int * int) list
(** One global step.  Returns the substep-1 forwards as [(edge, packet id)]
    pairs in forwarding order — the reference answer for the trace-level
    invariants (at most [speedup] packets per link per step, greedy
    non-idling).  With speedup s > 1 an edge may appear up to s times. *)

val reroute : t -> Aqt_engine.Packet.t -> int array -> unit
(** Mirrors [Network.reroute]: rewrite the route suffix beyond the current
    next edge (fresh array, Lemma 3.3 mechanics). *)

(** {1 Observation — same surface as [Network]} *)

val now : t -> int
val buffer_len : t -> int -> int

val buffer_packets : t -> int -> Aqt_engine.Packet.t list
(** Policy order, head of queue first (ties by arrival [seq]). *)

val iter_buffered : (Aqt_engine.Packet.t -> unit) -> t -> unit
val in_flight : t -> int
val absorbed : t -> int
val injected_count : t -> int
val initial_count : t -> int
val max_queue_ever : t -> int
val max_queue_of_edge : t -> int -> int
val sent_on_edge : t -> int -> int
val max_dwell : t -> int
val max_pending_dwell : t -> int
val delivered_latency_max : t -> int
val delivered_latency_mean : t -> float
val reroute_count : t -> int
val last_injection_on : t -> int -> int
val dropped : t -> int
val displaced : t -> int
val dropped_on_edge : t -> int -> int
val peak_occupancy : t -> int

val injection_log : t -> (int * int array) array
(** [(injection time, final effective route)] of every adversary-injected
    packet, sorted by (time, id) like the engine's. *)

val nonempty_edges : t -> int list
(** Edges whose buffers are currently nonempty, in active-list order.
    Captured before a step, this is the reference non-idling set: exactly
    these edges must forward in the next substep 1. *)
