module Prng = Aqt_util.Prng
module Ratio = Aqt_util.Ratio
module Digraph = Aqt_graph.Digraph
module Build = Aqt_graph.Build
module Network = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Policies = Aqt_policy.Policies
module Stock = Aqt_adversary.Stock
module Flow = Aqt_adversary.Flow
module Capacity = Aqt_capacity.Model
module Traffic = Aqt_workload.Traffic

type obligation =
  | Rate_ok of Ratio.t
  | Windowed_ok of { w : int; rate : Ratio.t }
  | Leaky_ok of { b : int; rate : Ratio.t }
  | Local_ok of { rate : Ratio.t; sigmas : int array }
  | Dwell_bound of { w : int; rate : Ratio.t; d : int }
  | Routes_valid
  | Drop_accounting

type feedback = { pool : int array array; hot : int }

type scenario = {
  seed : int;
  label : string;
  graph : Digraph.t;
  policy : Aqt_engine.Policy_type.t;
  tie_order : Network.tie_order;
  initial : int array list;
  schedule : Network.injection list array;
  reroutes : bool;
  capacity : Capacity.t;
  feedback : feedback option;
  obligations : obligation list;
}

let horizon s = Array.length s.schedule

(* The [random] policy consumes a mutable PRNG per key evaluation, so two
   arms would drift; every other named policy is a pure key function. *)
let policies = Array.of_list Policies.all_deterministic

let pick_policy prng = Prng.pick prng policies

let pick_tie prng =
  if Prng.bool prng then Network.Transit_first else Network.Injection_first

(* Replay a stock adversary's injection function into a concrete per-step
   schedule, so all arms see byte-identical injections.  The network
   argument is unused by every stock driver (they are pure in [t]); a
   throwaway instance satisfies the type. *)
let materialize ~graph driver ~horizon =
  let dummy = Network.create ~graph ~policy:Policies.fifo () in
  Array.init horizon (fun i -> driver.Sim.injections_at dummy (i + 1))

(* Routes over a directed ring: arcs of up to [k - 1] edges (longer would
   repeat an edge).  Overlap freely. *)
let ring_arc prng (r : Build.ring) ~max_len =
  let k = Array.length r.edges in
  let start = Prng.int prng k in
  let len = 1 + Prng.int prng (min max_len (k - 1)) in
  Array.init len (fun j -> r.edges.((start + j) mod k))

let line_segment prng (l : Build.line) =
  let k = Array.length l.edges in
  let start = Prng.int prng k in
  let len = 1 + Prng.int prng (k - start) in
  Array.sub l.edges start len

(* Edge-disjoint routes: the branches of a parallel-paths graph. *)
let disjoint_pool prng =
  let branches = 2 + Prng.int prng 3 and hops = 1 + Prng.int prng 4 in
  let p = Build.parallel_paths ~branches ~hops in
  (p.Build.graph, Array.to_list p.Build.paths, hops)

let overlapping_pool prng =
  if Prng.bool prng then begin
    let k = 3 + Prng.int prng 6 in
    let r = Build.ring k in
    let n = 2 + Prng.int prng 4 in
    ( r.Build.graph,
      List.init n (fun _ -> ring_arc prng r ~max_len:(k - 1)),
      Printf.sprintf "ring(%d)" k )
  end
  else begin
    let k = 2 + Prng.int prng 7 in
    let l = Build.line k in
    let n = 2 + Prng.int prng 4 in
    ( l.Build.graph,
      List.init n (fun _ -> line_segment prng l),
      Printf.sprintf "line(%d)" k )
  end

let free prng seed =
  let graph, pool, topo = overlapping_pool prng in
  let pool = Array.of_list pool in
  let policy = pick_policy prng in
  let tie_order = pick_tie prng in
  let reroutes = Prng.bool prng in
  let n_initial = Prng.int prng 5 in
  let initial = List.init n_initial (fun _ -> Prng.pick prng pool) in
  let horizon = 20 + Prng.int prng 41 in
  let schedule =
    Array.init horizon (fun _ ->
        List.init (Prng.int prng 4) (fun _ : Network.injection ->
            { route = Prng.pick prng pool; tag = "free" }))
  in
  {
    seed;
    label =
      Printf.sprintf "free %s %s %s%s" topo policy.name
        (match tie_order with
        | Network.Transit_first -> "transit-first"
        | Network.Injection_first -> "injection-first")
        (if reroutes then " +reroutes" else "");
    graph;
    policy;
    tie_order;
    initial;
    schedule;
    reroutes;
    capacity = Capacity.unbounded;
    feedback = None;
    obligations = [];
  }

let shared_bucket prng seed =
  let graph, pool, topo = overlapping_pool prng in
  let policy = pick_policy prng in
  let tie_order = pick_tie prng in
  let den = 2 + Prng.int prng 6 in
  let rate = Ratio.make (1 + Prng.int prng den) den in
  let horizon = 30 + Prng.int prng 51 in
  let adv = Stock.shared_token_bucket ~rate ~routes:pool ~horizon () in
  {
    seed;
    label =
      Printf.sprintf "shared-bucket %s %s rate=%s" topo policy.name
        (Ratio.to_string rate);
    graph;
    policy;
    tie_order;
    initial = [];
    schedule = materialize ~graph adv.Stock.driver ~horizon;
    reroutes = false;
    capacity = Capacity.unbounded;
    feedback = None;
    obligations = [ Rate_ok rate ];
  }

let windowed prng seed =
  let graph, pool, d = disjoint_pool prng in
  let policy = pick_policy prng in
  let tie_order = pick_tie prng in
  (* Pitch the rate exactly at a theorem hypothesis: 1/(d+1) puts every
     greedy policy under Theorem 4.1, 1/d puts time-priority policies under
     Theorem 4.3 (for the rest the dwell obligation verifies vacuously). *)
  let rate =
    if Prng.bool prng then Ratio.make 1 (d + 1) else Ratio.make 1 d
  in
  let w = Ratio.den rate * (1 + Prng.int prng 3) in
  let packed = Prng.bool prng in
  let horizon = w * (3 + Prng.int prng 4) in
  let adv = Stock.windowed_burst ~packed ~w ~rate ~routes:pool ~horizon () in
  {
    seed;
    label =
      Printf.sprintf "windowed parallel(d=%d) %s w=%d rate=%s%s" d policy.name
        w (Ratio.to_string rate)
        (if packed then " packed" else "");
    graph;
    policy;
    tie_order;
    initial = [];
    schedule = materialize ~graph adv.Stock.driver ~horizon;
    reroutes = false;
    capacity = Capacity.unbounded;
    feedback = None;
    obligations = [ Windowed_ok { w; rate }; Dwell_bound { w; rate; d } ];
  }

let leaky prng seed =
  let graph, pool, d = disjoint_pool prng in
  let policy = pick_policy prng in
  let tie_order = pick_tie prng in
  (* b >= 1: a lone token-bucket flow has burstiness 1 relative to the
     real-valued bound (count <= r*len + b), so b = 0 would be violated by
     the adversary's own release pattern, not by an engine bug. *)
  let b = 1 + Prng.int prng 3 in
  let den = 2 + Prng.int prng 5 in
  let rate = Ratio.make (1 + Prng.int prng (den - 1)) den in
  let horizon = 30 + Prng.int prng 31 in
  let adv = Stock.leaky_bucket ~b ~rate ~routes:pool ~horizon () in
  {
    seed;
    label =
      Printf.sprintf "leaky parallel(d=%d) %s b=%d rate=%s" d policy.name b
        (Ratio.to_string rate);
    graph;
    policy;
    tie_order;
    initial = [];
    schedule = materialize ~graph adv.Stock.driver ~horizon;
    reroutes = false;
    capacity = Capacity.unbounded;
    feedback = None;
    obligations = [ Leaky_ok { b; rate } ];
  }

(* The capacity regime: dense free-style schedules against small finite
   buffers (all three drop disciplines) and link speedups 1..3, so drops,
   displacements and multi-sends all actually happen.  Unlike the other
   families the point is not an adversary class but the admission logic
   itself: every engine drop decision must match the oracle's. *)
let capacity_regime prng seed =
  let graph, pool, topo = overlapping_pool prng in
  let pool = Array.of_list pool in
  let policy = pick_policy prng in
  let tie_order = pick_tie prng in
  let reroutes = Prng.bool prng in
  let speedup = 1 + Prng.int prng 3 in
  let m = Digraph.n_edges graph in
  let capacity =
    match Prng.int prng 4 with
    | 0 ->
        Capacity.make ~speedup
          (Capacity.Uniform { cap = Prng.int prng 3; policy = Capacity.Drop_tail })
    | 1 ->
        Capacity.make ~speedup
          (Capacity.Uniform { cap = 1 + Prng.int prng 3; policy = Capacity.Drop_head })
    | 2 ->
        Capacity.make ~speedup
          (Capacity.Per_edge
             {
               caps = Array.init m (fun _ -> Prng.int prng 4);
               policy = (if Prng.bool prng then Capacity.Drop_head else Capacity.Drop_tail);
             })
    | _ ->
        Capacity.make ~speedup
          (Capacity.Shared
             {
               total = 1 + Prng.int prng 8;
               alpha_num = 1 + Prng.int prng 2;
               alpha_den = 1 + Prng.int prng 2;
             })
  in
  let n_initial = Prng.int prng 4 in
  let initial = List.init n_initial (fun _ -> Prng.pick prng pool) in
  let horizon = 20 + Prng.int prng 31 in
  let schedule =
    Array.init horizon (fun _ ->
        List.init (Prng.int prng 5) (fun _ : Network.injection ->
            { route = Prng.pick prng pool; tag = "cap" }))
  in
  {
    seed;
    label =
      Printf.sprintf "capacity %s %s %s%s" topo policy.name
        (Capacity.describe capacity)
        (if reroutes then " +reroutes" else "");
    graph;
    policy;
    tie_order;
    initial;
    schedule;
    reroutes;
    capacity;
    feedback = None;
    obligations = [];
  }

(* Locally bursty (arXiv:2208.09522): one token-bucket flow per route with
   a small one-off burst, per-edge budgets derived by [Local_burst.budgets]
   so the scenario provably satisfies its own (rho, sigma_e) condition. *)
let local_burst prng seed =
  let graph, pool, topo = overlapping_pool prng in
  let policy = pick_policy prng in
  let tie_order = pick_tie prng in
  let m = Digraph.n_edges graph in
  let flows = List.map (fun route -> (route, Prng.int prng 3)) pool in
  (* rho = k_max * flow_rate must stay <= 1 for the per-flow rate to be a
     legal Flow rate and the aggregate to be subcritical; k_max <= |pool|,
     so a denominator of k_max * (2..5) keeps rho in (0, 1/2]. *)
  let k = Array.make m 0 in
  List.iter
    (fun (route, _) -> Array.iter (fun e -> k.(e) <- k.(e) + 1) route)
    flows;
  let k_max = Array.fold_left max 1 k in
  let den = k_max * (2 + Prng.int prng 4) in
  let flow_rate = Ratio.make 1 den in
  let horizon = 30 + Prng.int prng 51 in
  let adv =
    Aqt_adversary.Local_burst.make ~m ~flow_rate ~flows ~horizon ()
  in
  {
    seed;
    label =
      Printf.sprintf "local-burst %s %s rho=%s flows=%d" topo policy.name
        (Ratio.to_string adv.Aqt_adversary.Local_burst.rate)
        (List.length flows);
    graph;
    policy;
    tie_order;
    initial = [];
    schedule = materialize ~graph adv.Aqt_adversary.Local_burst.driver ~horizon;
    reroutes = false;
    capacity = Capacity.unbounded;
    feedback = None;
    obligations =
      [
        Local_ok
          {
            rate = adv.Aqt_adversary.Local_burst.rate;
            sigmas = adv.Aqt_adversary.Local_burst.sigmas;
          };
      ];
  }

(* Feedback-driven routing (arXiv:1812.11113): the schedule stores only the
   release counts (placeholder routes); the differ re-derives the route
   choice and the truncation pass per arm from that arm's own observed
   queue vector, so a divergence in observed state becomes a divergence in
   behaviour the buffer compare catches. *)
let feedback_routing prng seed =
  let graph, pool, topo = overlapping_pool prng in
  let pool = Array.of_list pool in
  let policy = pick_policy prng in
  let tie_order = pick_tie prng in
  let den = 2 + Prng.int prng 6 in
  let rate = Ratio.make (1 + Prng.int prng den) den in
  let hot = 1 + Prng.int prng 4 in
  let horizon = 30 + Prng.int prng 51 in
  let counter = Flow.make ~route:pool.(0) ~rate ~start:1 ~stop:horizon () in
  let schedule =
    Array.init horizon (fun i ->
        let n =
          Flow.cumulative counter (i + 1) - Flow.cumulative counter i
        in
        List.init n (fun _ : Network.injection ->
            { route = pool.(0); tag = "feedback" }))
  in
  let n_initial = Prng.int prng 4 in
  let initial =
    List.init n_initial (fun _ -> pool.(Prng.int prng (Array.length pool)))
  in
  {
    seed;
    label =
      Printf.sprintf "feedback %s %s rate=%s hot=%d" topo policy.name
        (Ratio.to_string rate) hot;
    graph;
    policy;
    tie_order;
    initial;
    schedule;
    reroutes = true;
    capacity = Capacity.unbounded;
    feedback = Some { pool; hot };
    obligations = [ Rate_ok rate ];
  }

(* Datacenter fabric: a tiny spine-leaf or fat-tree with ECMP route
   sets, a flow-level Traffic workload compiled to an admissible
   per-step schedule, under unbounded or small shared-DT buffers.  The
   obligations assert the three fabric-specific contracts: the compiled
   (rho, sigma_e) budget really holds on the injection log, every
   injected route is a valid simple path of the fabric, and the drop
   counters balance. *)
let fabric prng seed =
  let fab, topo =
    if Prng.bool prng then begin
      let spines = 1 + Prng.int prng 2
      and leaves = 2 + Prng.int prng 2
      and hosts_per_leaf = 1 + Prng.int prng 2 in
      ( Build.spine_leaf ~spines ~leaves ~hosts_per_leaf,
        Printf.sprintf "spine-leaf(%d,%d,%d)" spines leaves hosts_per_leaf )
    end
    else (Build.fat_tree ~k:2, "fat-tree(2)")
  in
  let policy = pick_policy prng in
  let tie_order = pick_tie prng in
  let pattern =
    match Prng.int prng 4 with
    | 0 -> Traffic.Permutation
    | 1 -> Traffic.Incast { senders = 1 + Prng.int prng 3 }
    | 2 -> Traffic.All_to_all
    | _ -> Traffic.Hotspot { hot_num = 1 + Prng.int prng 2; hot_den = 2 }
  in
  let horizon = 20 + Prng.int prng 41 in
  let spec =
    {
      Traffic.pattern;
      conns_per_pair = 1 + Prng.int prng 2;
      utilisation = Ratio.make (1 + Prng.int prng 4) 4;
      flow_cdf = Traffic.short_cdf;
      horizon;
      seed;
    }
  in
  let compiled =
    Traffic.compile
      ~n_hosts:(Array.length fab.Build.hosts)
      ~m:(Digraph.n_edges fab.Build.graph)
      ~routes:fab.Build.routes spec
  in
  let capacity =
    if Prng.bool prng then Capacity.unbounded
    else
      Capacity.shared
        ~alpha_num:(1 + Prng.int prng 2)
        ~alpha_den:(1 + Prng.int prng 2)
        (4 + Prng.int prng 29)
  in
  let schedule =
    Array.map
      (List.map (fun route : Network.injection -> { route; tag = "fab" }))
      compiled.Traffic.schedule
  in
  {
    seed;
    label =
      Printf.sprintf "fabric %s %s %s %s" topo
        (Traffic.pattern_name pattern)
        policy.name
        (Capacity.describe capacity);
    graph = fab.Build.graph;
    policy;
    tie_order;
    initial = [];
    schedule;
    reroutes = false;
    capacity;
    feedback = None;
    obligations =
      [
        Local_ok
          { rate = compiled.Traffic.rate; sigmas = compiled.Traffic.sigmas };
        Routes_valid;
        Drop_accounting;
      ];
  }

type family =
  | Free
  | Shared_bucket
  | Windowed
  | Leaky
  | Capacity_regime
  | Local_bursty
  | Feedback_routing
  | Fabric

let all_families =
  [
    Free;
    Shared_bucket;
    Windowed;
    Leaky;
    Capacity_regime;
    Local_bursty;
    Feedback_routing;
    Fabric;
  ]

let family_name = function
  | Free -> "free"
  | Shared_bucket -> "shared-bucket"
  | Windowed -> "windowed"
  | Leaky -> "leaky"
  | Capacity_regime -> "capacity"
  | Local_bursty -> "local"
  | Feedback_routing -> "feedback"
  | Fabric -> "fabric"

let family_of_string = function
  | "free" -> Some Free
  | "shared-bucket" | "shared" -> Some Shared_bucket
  | "windowed" -> Some Windowed
  | "leaky" -> Some Leaky
  | "capacity" -> Some Capacity_regime
  | "local" | "local-burst" -> Some Local_bursty
  | "feedback" -> Some Feedback_routing
  | "fabric" | "dc" -> Some Fabric
  | _ -> None

let build = function
  | Free -> free
  | Shared_bucket -> shared_bucket
  | Windowed -> windowed
  | Leaky -> leaky
  | Capacity_regime -> capacity_regime
  | Local_bursty -> local_burst
  | Feedback_routing -> feedback_routing
  | Fabric -> fabric

let generate ?(families = all_families) seed =
  if families = [] then invalid_arg "Gen.generate: empty family list";
  let prng = Prng.create seed in
  let fams = Array.of_list families in
  let fam = fams.(Prng.int prng (Array.length fams)) in
  build fam prng seed

let pp_obligation fmt = function
  | Rate_ok rate -> Format.fprintf fmt "rate-%a all-intervals" Ratio.pp rate
  | Windowed_ok { w; rate } ->
      Format.fprintf fmt "(w=%d, r=%a) windowed (Def 2.1)" w Ratio.pp rate
  | Leaky_ok { b; rate } ->
      Format.fprintf fmt "leaky-bucket b=%d r=%a" b Ratio.pp rate
  | Local_ok { rate; sigmas } ->
      Format.fprintf fmt "locally bursty rho=%a sigma_max=%d" Ratio.pp rate
        (Array.fold_left max 0 sigmas)
  | Dwell_bound { w; rate; d } ->
      Format.fprintf fmt "dwell bound (w=%d, r=%a, d=%d, Thm 4.1/4.3)" w
        Ratio.pp rate d
  | Routes_valid -> Format.fprintf fmt "injected routes are simple paths"
  | Drop_accounting ->
      Format.fprintf fmt "drop counters balance (per-edge, displaced)"

let pp fmt s =
  Format.fprintf fmt "@[<v>seed %d: %s@," s.seed s.label;
  Format.fprintf fmt "graph: %d nodes, %d edges; horizon %d@,"
    (Digraph.n_nodes s.graph) (Digraph.n_edges s.graph) (horizon s);
  if not (Capacity.is_trivial s.capacity) then
    Format.fprintf fmt "capacity: %s@," (Capacity.describe s.capacity);
  (match s.feedback with
  | None -> ()
  | Some fb ->
      Format.fprintf fmt "feedback: pool of %d routes, hot=%d@,"
        (Array.length fb.pool) fb.hot);
  if s.initial <> [] then begin
    Format.fprintf fmt "initial:@,";
    List.iter
      (fun r -> Format.fprintf fmt "  %a@," (Digraph.pp_route s.graph) r)
      s.initial
  end;
  Array.iteri
    (fun i injs ->
      if injs <> [] then begin
        Format.fprintf fmt "step %d:@," (i + 1);
        List.iter
          (fun (inj : Network.injection) ->
            Format.fprintf fmt "  %a@," (Digraph.pp_route s.graph) inj.route)
          injs
      end)
    s.schedule;
  List.iter
    (fun o -> Format.fprintf fmt "obligation: %a@," pp_obligation o)
    s.obligations;
  Format.fprintf fmt "@]"
