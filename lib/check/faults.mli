(** Fault-injection policies and the harness degradation self-test.

    {!Aqt_harness.Fault} is the mechanism (a single hook the harness calls
    at its failure-prone boundaries); this module is the policy layer:
    fail-once, fail-N-times, fail-always and delay policies composed into
    a hook, installed for the duration of a callback.  Counters are
    atomic, so policies behave deterministically even when scheduler
    domains race through fault points.

    {!selftest} is the executable claim that the campaign harness degrades
    gracefully: it builds throwaway campaign directories and drives
    {!Aqt_harness.Scheduler.run} through crash-mid-cache-write,
    journal-append-failure, hung-task-timeout and crashing-task scenarios,
    asserting after each that retries happened as configured, outcomes are
    reported honestly, the journal keeps a readable prefix, and the
    content-addressed cache is never corrupted (no stray temp files, no
    partially-written entries, failed and timed-out results never
    published).  Both the CLI ([aqt_sim check --faults]) and the test
    suite run it. *)

type action =
  | Fail  (** Raise {!Aqt_harness.Fault.Injected} at the point. *)
  | Delay of float  (** Sleep that many seconds at the point. *)

type spec = {
  point : Aqt_harness.Fault.point;
  action : action;
  times : int option;  (** Trigger only on the first [n] hits; [None] = always. *)
}

val fail_once : Aqt_harness.Fault.point -> spec
val fail_n : Aqt_harness.Fault.point -> int -> spec
val fail_always : Aqt_harness.Fault.point -> spec
val delay : Aqt_harness.Fault.point -> float -> spec

val with_faults : spec list -> (unit -> 'a) -> 'a
(** Install the specs as the global fault hook, run the callback, always
    clear the hook (even on exceptions).  Not reentrant — the harness has
    one hook slot. *)

type outcome = { case : string; passed : bool; detail : string }

val selftest : unit -> outcome list
(** Runs every degradation scenario in fresh temp directories (removed
    afterwards).  All [passed] flags true means the harness honoured its
    fault contract. *)
