(** Differential execution: reference model vs. the fast engine.

    One scenario is executed three ways in lockstep — the naive
    {!Ref_model}, the engine on its zero-allocation fast path
    ([recycle:true], no tracer), and the engine with a {!Aqt_engine.Trace}
    collector attached (the traced and untraced step loops are distinct
    code paths; both must conform).  After every step the full observable
    state is compared packet-by-packet: per-edge buffer contents in policy
    order, with each packet's id, injection time, hop, buffered-at time
    and full route.  The first mismatching step is reported precisely,
    which is what makes shrinking cheap.

    After the run, the invariant layer checks:

    - the engine's event trace forwards at most [speedup] packets per link
      per step, and the forwarded-edge multiset of every step equals the
      reference model's pre-step answer (greedy non-idling);
    - under a finite capacity model, no buffer ever exceeds its static cap
      and a shared pool never exceeds its total (checked after every step),
      and drop counts — total, displaced, per-edge — agree with the oracle;
    - end-of-run statistics agree (queue maxima, send counts, dwell,
      latency, Def 3.2 last-use times, drop and occupancy peaks);
    - the [(time, final route)] injection logs agree entry-for-entry;
    - packet conservation with drops:
      initial + injected = absorbed + in flight + dropped;
    - every scenario obligation: {!Aqt_adversary.Rate_check} admissibility
      for the scenario's adversary class, and the Theorem 4.1/4.3 dwell
      bound via [Aqt.Stability.verify_run] where a theorem applies.

    A {!mutant} deliberately corrupts the {e engine-side} execution while
    leaving the reference untouched; the committed test suite uses mutants
    to prove the differ actually detects and shrinks engine bugs (a
    checker that can never fail verifies nothing). *)

type mutant =
  | Drop_injection of int
      (** Silently skip the k-th (0-based, in schedule order) injection on
          the engine arms — models a lost packet. *)
  | Flip_tie_order
      (** Build the engine arms with the opposite substep-2 tie order —
          models a tie-breaking regression. *)
  | Skip_reroutes
      (** Engine arms ignore the reroute pass — models a reroute that
          fails to apply. *)
  | Ignore_capacity
      (** Engine arms run the paper's unbounded unit-speed regime while the
          reference enforces the scenario's capacity model — models an
          admission test that silently stopped running.  Only capacity-family
          scenarios can expose it. *)
  | Violate_local_budget
      (** Corrupt the schedule {e identically for all arms} — replay one
          injection [sigma_e + 1] extra times — so the adversary escapes its
          declared (rho, sigma_e) budget without any arm diverging.  By
          construction the differential layer cannot see it: only the
          [Local_ok] admissibility obligation can.  Only local-family
          scenarios expose it. *)

type failure = {
  kind : string;  (** "divergence", "trace-invariant", "rate", ... *)
  step : int option;  (** First failing step, when the check is per-step. *)
  detail : string;
}

val pp_failure : Format.formatter -> failure -> unit

val run :
  ?mutant:mutant -> ?soa_domains:int list -> Gen.scenario -> failure option
(** [None] = the engine conforms on this scenario and every obligation
    holds.  Deterministic: same scenario, same answer.

    [soa_domains] adds one {!Aqt_engine.Soa} arm per listed domain count
    (e.g. [[1; 2; 4]]) to the lockstep comparison: buffers each step,
    stats, logs and conservation at the end — the byte-identical-trajectory
    guarantee of the struct-of-arrays backend, sequential and parallel.
    Worker domains are shut down on every exit path.  Default: no SoA
    arms. *)
