module P = Aqt_engine.Packet

type t = Aqt_engine.Policy_type.t

let fifo : t =
  {
    name = "fifo";
    (* Arrival order is exactly the (now, seq) tie chain; key 0 suffices. *)
    key = (fun _ ~now:_ ~seq:_ -> 0);
    discipline = Aqt_engine.Policy_type.Arrival_order;
    time_priority = true;
    historic = true;
  }

let lifo : t =
  {
    name = "lifo";
    key = (fun _ ~now:_ ~seq -> -seq);
    discipline = Aqt_engine.Policy_type.Reverse_arrival;
    time_priority = false;
    historic = true;
  }

let lis : t =
  {
    name = "lis";
    key = (fun p ~now:_ ~seq:_ -> p.P.injected_at);
    discipline = Aqt_engine.Policy_type.By_key;
    time_priority = true;
    historic = true;
  }

let nis : t =
  {
    name = "nis";
    key = (fun p ~now:_ ~seq:_ -> -p.P.injected_at);
    discipline = Aqt_engine.Policy_type.By_key;
    time_priority = false;
    historic = true;
  }

let sis : t = { nis with name = "sis" }

let ftg : t =
  {
    name = "ftg";
    key = (fun p ~now:_ ~seq:_ -> -P.remaining p);
    discipline = Aqt_engine.Policy_type.By_key;
    time_priority = false;
    historic = false;
  }

let ntg : t =
  {
    name = "ntg";
    key = (fun p ~now:_ ~seq:_ -> P.remaining p);
    discipline = Aqt_engine.Policy_type.By_key;
    time_priority = false;
    historic = false;
  }

let ffs : t =
  {
    name = "ffs";
    key = (fun p ~now:_ ~seq:_ -> -P.traversed p);
    discipline = Aqt_engine.Policy_type.By_key;
    time_priority = false;
    historic = true;
  }

let nts : t =
  {
    name = "nts";
    key = (fun p ~now:_ ~seq:_ -> P.traversed p);
    discipline = Aqt_engine.Policy_type.By_key;
    time_priority = false;
    historic = true;
  }

let random ~seed : t =
  let prng = Aqt_util.Prng.create seed in
  {
    name = Printf.sprintf "random(%d)" seed;
    key = (fun _ ~now:_ ~seq:_ -> Aqt_util.Prng.int prng 1_000_000_000);
    discipline = Aqt_engine.Policy_type.By_key;
    time_priority = false;
    historic = true;
  }

let all_deterministic = [ fifo; lifo; lis; nis; ftg; ntg; ffs; nts ]

let by_name name =
  match String.lowercase_ascii name with
  | "sis" -> sis
  | other ->
      List.find
        (fun (p : t) -> String.equal p.name other)
        all_deterministic
