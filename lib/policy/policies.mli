(** The greedy queuing policies of the adversarial queuing literature.

    Every policy here fixes a packet's priority when it enters a buffer (see
    [Aqt_engine.Policy_type]); ties always resolve in arrival order.  The
    classification flags record two properties the paper relies on:

    - {e historic} (Def 3.1): scheduling is independent of the remaining route
      beyond each packet's next edge — these policies admit the rerouting
      technique of Lemma 3.3;
    - {e time-priority} (Def 4.2): a packet arriving at time [t] beats any
      packet injected after [t] — these policies get the sharper 1/d
      stability bound of Theorem 4.3. *)

type t = Aqt_engine.Policy_type.t

val fifo : t
(** First-in-first-out at each buffer.  Historic, time-priority. *)

val lifo : t
(** Last-in-first-out.  Historic, not time-priority. *)

val lis : t
(** Longest-in-system: earliest injection time first.  Universally stable
    (Andrews et al.).  Historic, time-priority. *)

val nis : t
(** Newest-in-system: latest injection time first.  Historic. *)

val sis : t
(** Shortest-in-system — alias of {!nis}, the name used in part of the
    literature. *)

val ftg : t
(** Furthest-to-go: most remaining edges first.  Universally stable.
    Not historic (looks at the remaining route). *)

val ntg : t
(** Nearest-to-go: fewest remaining edges first.  Unstable at arbitrarily low
    rates on suitable networks (Borodin et al.).  Not historic. *)

val ffs : t
(** Furthest-from-source: most traversed edges first.  Historic. *)

val nts : t
(** Nearest-to-source: fewest traversed edges first.  Historic. *)

val random : seed:int -> t
(** Uniform random choice among buffered packets (keys are random draws at
    enqueue).  Greedy; used as a sanity arm in stability sweeps.  Each call
    makes an independent deterministic policy. *)

val all_deterministic : t list
(** The nine named deterministic policies above, [sis] excluded (it equals
    [nis]). *)

val by_name : string -> t
(** Look up a deterministic policy by name ("fifo", "ntg", ...).
    @raise Not_found for unknown names. *)
