type t = {
  meta : (string * string) list;
  initial : int array array;
  log : (int * int array) array;
}

let meta_value t key = List.assoc_opt key t.meta

let route_to_string route =
  String.concat " " (Array.to_list (Array.map string_of_int route))

let to_string t =
  let buf = Buffer.create (1024 + (Array.length t.log * 16)) in
  Buffer.add_string buf "# aqt injection log\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "meta %s %s\n" k v))
    t.meta;
  Array.iter
    (fun route ->
      Buffer.add_string buf "init ";
      Buffer.add_string buf (route_to_string route);
      Buffer.add_char buf '\n')
    t.initial;
  Array.iter
    (fun (time, route) ->
      Buffer.add_string buf (string_of_int time);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (route_to_string route);
      Buffer.add_char buf '\n')
    t.log;
  Buffer.contents buf

let of_string s =
  let meta = ref [] and initial = ref [] and log = ref [] in
  let prev_time = ref min_int in
  let parse_route what words =
    match List.map int_of_string words with
    | [] -> failwith (Printf.sprintf "Log_io: empty route in %s record" what)
    | edges -> Array.of_list edges
  in
  String.split_on_char '\n' s
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then ()
         else begin
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ "meta"; k; v ] ->
               if !initial <> [] || !log <> [] then
                 failwith "Log_io: meta record after data records";
               meta := (k, v) :: !meta
           | "init" :: rest ->
               if !log <> [] then
                 failwith "Log_io: init record after injection records";
               initial := parse_route "init" rest :: !initial
           | time :: rest -> (
               match int_of_string_opt time with
               | None ->
                   failwith
                     (Printf.sprintf "Log_io: bad time on line %d" (lineno + 1))
               | Some time ->
                   if time < !prev_time then
                     failwith "Log_io: injection times not sorted";
                   prev_time := time;
                   log := (time, parse_route "injection" rest) :: !log)
           | [] -> ()
         end);
  {
    meta = List.rev !meta;
    initial = Array.of_list (List.rev !initial);
    log = Array.of_list (List.rev !log);
  }

let save file t =
  let oc = open_out file in
  (match output_string oc (to_string t) with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e)

let load file =
  let ic = open_in_bin file in
  let s =
    match really_input_string ic (in_channel_length ic) with
    | s ->
        close_in ic;
        s
    | exception e ->
        close_in_noerr ic;
        raise e
  in
  of_string s

let of_network ?(meta = []) net =
  {
    meta;
    initial = Aqt_engine.Network.initial_final_routes net;
    log = Aqt_engine.Network.injection_log net;
  }
