(** Feedback-driven routing: the adversarial-routing-with-feedback model of
    Chlebus, Cholvi and Kowalski (arXiv:1812.11113).

    Unlike every other adversary in this library, routes are not fixed at
    injection time as a pure function of the step number: the adversary
    {e observes the per-edge queue lengths at the start of each step} and
    reacts — released packets are steered onto the currently least-loaded
    candidate route, and buffered packets stuck on a congested edge have
    their remaining route truncated through the engine's Lemma 3.3 reroute
    path.  The observation arrives through {!Aqt_engine.Sim.driver}'s
    [observe_queues] hook, so the adversary sees exactly the state the
    stability theorems quantify over.

    Admissibility is by construction, not by luck: releases come from one
    aggregate-rate token bucket, so every edge's count over any interval is
    bounded by the total release count regardless of which routes the
    feedback rule picks — the final injection log always passes
    {!Rate_check.check_rate}.  Truncations only shorten routes, which never
    adds demand (Lemma 3.3's direction).

    The decision rules ({!assign}, {!should_truncate}) are pure functions
    of the observed queue vector, exposed so the differential harness
    ([Aqt_check.Diff]) can re-derive the identical choices independently on
    the reference model, the record engine and the SoA backend. *)

val route_cost : int array -> int array -> int
(** [route_cost queues route] is the total backlog along [route]. *)

val assign : queues:int array -> pool:int array array -> int -> int array list
(** [assign ~queues ~pool n] routes [n] same-step releases greedily: each
    takes the pool route with the least total backlog (ties to the lowest
    pool index), counting virtual load from the packets already placed this
    step.  Pure: identical inputs give identical choices.
    @raise Invalid_argument on an empty pool. *)

val should_truncate :
  queues:int array -> hot:int -> edge:int -> remaining:int -> bool
(** The truncation rule: a packet buffered on an edge whose queue length
    has reached [hot], with more than one remaining hop, gives up the rest
    of its route (it is absorbed after crossing its current edge). *)

type t = {
  name : string;
  rate : Aqt_util.Ratio.t;  (** Aggregate release rate. *)
  pool : int array array;  (** Candidate routes. *)
  hot : int;  (** Queue length that triggers truncation. *)
  driver : Aqt_engine.Sim.driver;
}

val make :
  ?name:string ->
  rate:Aqt_util.Ratio.t ->
  pool:int array array ->
  hot:int ->
  horizon:int ->
  unit ->
  t
(** [make ~rate ~pool ~hot ~horizon ()] builds the driver: a rate-[rate]
    release bucket active on steps [1 .. horizon], {!assign} route choice,
    {!should_truncate} rerouting in [before_step].  The driver prefers the
    queue vector delivered by [observe_queues] and falls back to reading
    the network directly when stepped outside {!Aqt_engine.Sim} (the two
    agree: both precede the step's forwards).
    @raise Invalid_argument on an empty pool, [hot < 1], or a rate outside
    (0, 1]. *)

val run_steps :
  ?recorder:Aqt_engine.Recorder.t -> net:Aqt_engine.Network.t -> t -> int -> unit
