module Ratio = Aqt_util.Ratio
module Dyn = Aqt_util.Dynarray_compat

type violation = { edge : int; t1 : int; t2 : int; count : int; allowed : int }

let pp_violation fmt v =
  Format.fprintf fmt
    "edge %d: %d packets injected in [%d,%d] but only %d allowed" v.edge
    v.count v.t1 v.t2 v.allowed

(* Per-edge event lists: (time, multiplicity), times strictly increasing.
   Routes are simple, so one packet contributes at most once per edge. *)
let bucketize ~m log =
  let buckets = Array.init m (fun _ -> Dyn.create ()) in
  let prev_time = ref min_int in
  Array.iter
    (fun (t, route) ->
      if t < !prev_time then
        invalid_arg "Rate_check: log not sorted by injection time";
      if t < 1 then invalid_arg "Rate_check: injection before step 1";
      prev_time := t;
      Array.iter
        (fun e ->
          if e < 0 || e >= m then invalid_arg "Rate_check: edge out of range";
          let b = buckets.(e) in
          if (not (Dyn.is_empty b)) && fst (Dyn.last b) = t then begin
            let _, c = Dyn.last b in
            Dyn.set b (Dyn.length b - 1) (t, c + 1)
          end
          else Dyn.push b (t, 1))
        route)
    log;
  buckets

(* Scan one edge's events with the potential D_t = q*S_t - p*t.  Returns the
   maximum over t2 of (D_t2 - min_(u < t2) D_u) along with a witness, which is
   enough for both the exact check (violation iff max > q - 1) and the
   burstiness measure. *)
let scan_events ~p ~q events =
  let s = ref 0 in
  (* Minimum of D_u for u < current event time, with its witness. *)
  let min_d = ref 0 and min_t = ref 0 and min_s = ref 0 in
  let worst = ref min_int in
  let witness = ref None in
  Dyn.iter
    (fun (t, c) ->
      let candidate = (q * !s) - (p * (t - 1)) in
      if candidate < !min_d then begin
        min_d := candidate;
        min_t := t - 1;
        min_s := !s
      end;
      s := !s + c;
      let d = (q * !s) - (p * t) in
      let excess = d - !min_d in
      if excess > !worst then begin
        worst := excess;
        witness := Some (!min_t + 1, t, !s - !min_s)
      end)
    events;
  (!worst, !witness)

let check_rate ~m ~rate log =
  let p = Ratio.num rate and q = Ratio.den rate in
  let buckets = bucketize ~m log in
  let result = ref (Ok ()) in
  (try
     for e = 0 to m - 1 do
       let worst, witness = scan_events ~p ~q buckets.(e) in
       if worst > q - 1 then begin
         match witness with
         | Some (t1, t2, count) ->
             result :=
               Error
                 {
                   edge = e;
                   t1;
                   t2;
                   count;
                   allowed = Ratio.ceil_mul rate (t2 - t1 + 1);
                 };
             raise Exit
         | None -> assert false
       end
     done
   with Exit -> ());
  !result

let check_rate_brute ~m ~rate log =
  let buckets = bucketize ~m log in
  let result = ref (Ok ()) in
  (try
     for e = 0 to m - 1 do
       let events = Dyn.to_array buckets.(e) in
       let n = Array.length events in
       for i = 0 to n - 1 do
         let count = ref 0 in
         for j = i to n - 1 do
           let t1 = fst events.(i) and t2 = fst events.(j) in
           count := !count + snd events.(j);
           let allowed = Ratio.ceil_mul rate (t2 - t1 + 1) in
           if !count > allowed && !result = Ok () then
             result := Error { edge = e; t1; t2; count = !count; allowed }
         done
       done;
       if !result <> Ok () then raise Exit
     done
   with Exit -> ());
  !result

let check_windowed ~m ~w ~rate log =
  if w < 1 then invalid_arg "Rate_check.check_windowed: w must be positive";
  let allowed = Ratio.floor_mul rate w in
  let buckets = bucketize ~m log in
  let result = ref (Ok ()) in
  (try
     for e = 0 to m - 1 do
       let events = Dyn.to_array buckets.(e) in
       let n = Array.length events in
       let i = ref 0 and sum = ref 0 in
       for j = 0 to n - 1 do
         sum := !sum + snd events.(j);
         let t2 = fst events.(j) in
         while fst events.(!i) <= t2 - w do
           sum := !sum - snd events.(!i);
           incr i
         done;
         if !sum > allowed && !result = Ok () then
           result :=
             Error { edge = e; t1 = t2 - w + 1; t2; count = !sum; allowed }
       done;
       if !result <> Ok () then raise Exit
     done
   with Exit -> ());
  !result

let check_leaky ~m ~b ~rate log =
  if b < 0 then invalid_arg "Rate_check.check_leaky: negative burst";
  let p = Ratio.num rate and q = Ratio.den rate in
  let buckets = bucketize ~m log in
  let result = ref (Ok ()) in
  (try
     for e = 0 to m - 1 do
       (* count <= r*len + b  <=>  D_t2 - D_u <= q*b  (integer arithmetic). *)
       let worst, witness = scan_events ~p ~q buckets.(e) in
       if worst > q * b then begin
         match witness with
         | Some (t1, t2, count) ->
             let len = t2 - t1 + 1 in
             result :=
               Error
                 {
                   edge = e;
                   t1;
                   t2;
                   count;
                   allowed = Ratio.floor_mul rate len + b;
                 };
             raise Exit
         | None -> assert false
       end
     done
   with Exit -> ());
  !result

(* Locally bursty admissibility (Rosenbaum, arXiv:2208.09522): one global
   rate rho but a per-edge burst budget sigma_e.  Per edge this is exactly
   the leaky-bucket scan with b = sigmas.(e):
   count <= rho*len + sigma_e  <=>  excess <= q * sigma_e. *)
let check_local ~rate ~sigmas log =
  let m = Array.length sigmas in
  Array.iteri
    (fun e s ->
      if s < 0 then
        invalid_arg
          (Printf.sprintf "Rate_check.check_local: negative sigma on edge %d" e))
    sigmas;
  let p = Ratio.num rate and q = Ratio.den rate in
  let buckets = bucketize ~m log in
  let result = ref (Ok ()) in
  (try
     for e = 0 to m - 1 do
       let worst, witness = scan_events ~p ~q buckets.(e) in
       if worst > q * sigmas.(e) then begin
         match witness with
         | Some (t1, t2, count) ->
             let len = t2 - t1 + 1 in
             result :=
               Error
                 {
                   edge = e;
                   t1;
                   t2;
                   count;
                   allowed = Ratio.floor_mul rate len + sigmas.(e);
                 };
             raise Exit
         | None -> assert false
       end
     done
   with Exit -> ());
  !result

let check_local_brute ~rate ~sigmas log =
  let m = Array.length sigmas in
  let buckets = bucketize ~m log in
  let result = ref (Ok ()) in
  (try
     for e = 0 to m - 1 do
       let events = Dyn.to_array buckets.(e) in
       let n = Array.length events in
       for i = 0 to n - 1 do
         let count = ref 0 in
         for j = i to n - 1 do
           let t1 = fst events.(i) and t2 = fst events.(j) in
           count := !count + snd events.(j);
           let allowed = Ratio.floor_mul rate (t2 - t1 + 1) + sigmas.(e) in
           if !count > allowed && !result = Ok () then
             result := Error { edge = e; t1; t2; count = !count; allowed }
         done
       done;
       if !result <> Ok () then raise Exit
     done
   with Exit -> ());
  !result

let scan_edge ~rate events =
  let p = Ratio.num rate and q = Ratio.den rate in
  let dyn = Dyn.create () in
  let prev = ref min_int in
  Array.iter
    (fun ((t, c) as ev) ->
      if t <= !prev then
        invalid_arg "Rate_check.scan_edge: times must be strictly increasing";
      if t < 1 then invalid_arg "Rate_check.scan_edge: event before step 1";
      if c < 1 then
        invalid_arg "Rate_check.scan_edge: multiplicity must be positive";
      prev := t;
      Dyn.push dyn ev)
    events;
  scan_events ~p ~q dyn

let burstiness ~m ~rate log =
  let p = Ratio.num rate and q = Ratio.den rate in
  let buckets = bucketize ~m log in
  let worst = ref 0 in
  for e = 0 to m - 1 do
    let excess, _ = scan_events ~p ~q buckets.(e) in
    (* Slack b needed on this edge: count <= ceil(r*len) + b translates to
       excess - q*b <= q - 1. *)
    if excess > q - 1 then begin
      let need = (excess - (q - 1) + q - 1) / q in
      if need > !worst then worst := need
    end
  done;
  !worst
