(** Stock adversaries for stability experiments and sweeps.

    Each value is a {!Aqt_engine.Sim.driver} plus metadata describing the
    constraint class it satisfies.  The deterministic ones satisfy their
    stated constraint exactly (validated in the test suite by
    {!Rate_check}); [bernoulli] satisfies it only in expectation and is
    marked accordingly. *)

type t = {
  name : string;
  rate : Aqt_util.Ratio.t;
  window : int option;  (** [Some w] if built as a (w,r) adversary. *)
  exact : bool;  (** Whether the constraint holds surely (vs in expectation). *)
  driver : Aqt_engine.Sim.driver;
}

val of_flows :
  name:string -> rate:Aqt_util.Ratio.t -> ?window:int -> Flow.t list -> t
(** Wrap explicit flows; the caller asserts the constraint (tests verify). *)

val token_bucket :
  ?name:string ->
  rate:Aqt_util.Ratio.t ->
  routes:int array list ->
  horizon:int ->
  unit ->
  t
(** One token-bucket flow per route, each at rate [rate], active on
    [1 .. horizon].  Satisfies rate-r per edge provided the routes are
    edge-disjoint; for overlapping routes the per-edge rate is the sum of the
    rates of the routes using the edge — callers size [rate] accordingly. *)

val shared_token_bucket :
  ?name:string ->
  rate:Aqt_util.Ratio.t ->
  routes:int array list ->
  horizon:int ->
  unit ->
  t
(** A single token bucket at rate [rate]; each released packet takes the next
    route in round-robin order.  Aggregate injections on any edge are at most
    the bucket's, so the rate-r constraint holds on every edge regardless of
    route overlap. *)

val windowed_burst :
  ?name:string ->
  ?packed:bool ->
  w:int ->
  rate:Aqt_util.Ratio.t ->
  routes:int array list ->
  horizon:int ->
  unit ->
  t
(** The extremal (w,r) adversary: injects [floor (r * w)] packets per route at
    the start of every window of length [w].  With [packed] (default false)
    all of them land in the window's first step — the model permits
    simultaneous injections, and this drives dwell times toward the
    [floor (w r)] bound of Theorems 4.1/4.3; otherwise they are spread one
    per step over the window's first [floor (r * w)] steps.  Per-edge load is
    the sum over routes using the edge, as in [token_bucket]. *)

val leaky_bucket :
  ?name:string ->
  b:int ->
  rate:Aqt_util.Ratio.t ->
  routes:int array list ->
  horizon:int ->
  unit ->
  t
(** The extremal (b, r) leaky-bucket adversary of Borodin et al.: per route,
    [b] packets land in step 1 and the rest follow a rate-[r] token bucket —
    saturating [count <= r*len + b] on every prefix.  Per-edge load adds
    across routes sharing an edge, as in [token_bucket]. *)

val replay :
  ?name:string -> rate:Aqt_util.Ratio.t -> (int * int array) array -> t
(** Replays a recorded injection log: at step [t], injects every route logged
    with time [t].  Given the [(time, final route)] log of a run that used
    rerouting, this is precisely the equivalent static adversary A' of
    Lemma 3.3 — replaying it under the same historic policy reproduces the
    original execution step for step.  The log must be sorted by time. *)

val bernoulli :
  ?name:string ->
  prng:Aqt_util.Prng.t ->
  rate:Aqt_util.Ratio.t ->
  routes:int array list ->
  unit ->
  t
(** Each step, independently for each route, injects one packet with
    probability [rate].  Average rate [rate] per route; not an exact
    adversary. *)

val run_steps :
  ?recorder:Aqt_engine.Recorder.t -> net:Aqt_engine.Network.t -> t -> int -> unit
(** [run_steps ~net adv n] drives [net] with [adv]'s driver for exactly [n]
    steps via {!Aqt_engine.Sim.run_steps} — the batched fast path with no
    per-step stop machinery.  Query the network (or the recorder) afterwards. *)
