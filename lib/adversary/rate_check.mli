(** Exact validation of injection sequences against adversary definitions.

    Two adversary classes appear in the paper:

    - a {e rate-r adversary} (used for the instability results) may inject, in
      every time interval [[t1, t2]] and for every edge [e], at most
      [ceil (r * (t2 - t1 + 1))] packets whose routes require [e];
    - a {e (w,r) adversary} (Def 2.1, used for the stability results) may
      inject, in every window of [w] consecutive steps and for every edge,
      at most [floor (r * w)] packets requiring that edge.

    Both checks are exact (integer arithmetic on [r = p/q], no floats).  The
    all-intervals rate-r condition is checked in O(1) amortized per injection
    via the potential [D_t = q*S_t - p*t], where [S_t] is the per-edge
    injection prefix count: the condition holds iff
    [D_t2 - min_(u < t2) D_u <= q - 1] for all [t2].

    Checking the {e final effective routes} of a run that used rerouting
    against the plain rate-r condition is exactly the content of Lemma 3.3:
    the dynamic adversary is equivalent to a static rate-r adversary. *)

type violation = {
  edge : int;
  t1 : int;
  t2 : int;
  count : int;  (** Packets requiring [edge] injected during [[t1, t2]]. *)
  allowed : int;
}

val pp_violation : Format.formatter -> violation -> unit

val check_rate :
  m:int -> rate:Aqt_util.Ratio.t -> (int * int array) array ->
  (unit, violation) result
(** [check_rate ~m ~rate log] validates a log of [(injection time, route)]
    pairs, sorted by time, on a graph with [m] edges, against the rate-r
    all-intervals condition.  Routes must be simple (each edge at most once
    per route).  Returns the first violation found (smallest edge id, then
    earliest [t2]). *)

val check_rate_brute :
  m:int -> rate:Aqt_util.Ratio.t -> (int * int array) array ->
  (unit, violation) result
(** Reference implementation enumerating all intervals; O(T^2) per edge.
    For cross-validation in tests only. *)

val check_windowed :
  m:int -> w:int -> rate:Aqt_util.Ratio.t -> (int * int array) array ->
  (unit, violation) result
(** Validates the log against the (w,r) windowed condition of Def 2.1:
    at most [floor (r * w)] packets requiring any edge per window of [w]
    consecutive steps. *)

val check_leaky :
  m:int -> b:int -> rate:Aqt_util.Ratio.t -> (int * int array) array ->
  (unit, violation) result
(** Validates against the original Borodin et al. leaky-bucket condition: at
    most [r * len + b] packets requiring any edge over every interval of
    [len] steps ([b >= 0] is the burst allowance).  [b = 0] is the strictest
    form; the rate-r condition of this paper sits between [b = 0] and
    [b = 1]. *)

val check_local :
  rate:Aqt_util.Ratio.t ->
  sigmas:int array ->
  (int * int array) array ->
  (unit, violation) result
(** Validates against the {e locally bursty} condition of Rosenbaum
    (arXiv:2208.09522): one global rate [rho] but a per-edge burst budget,
    [count <= rho * len + sigmas.(e)] for every edge [e] and every interval
    of [len] steps.  The edge count is [Array.length sigmas]; per edge this
    is the leaky-bucket scan of {!check_leaky} with [b = sigmas.(e)]
    (exact integer arithmetic, same potential as {!scan_edge}).
    [check_leaky ~b] is the special case of a constant sigma vector.
    @raise Invalid_argument on a negative sigma. *)

val check_local_brute :
  rate:Aqt_util.Ratio.t ->
  sigmas:int array ->
  (int * int array) array ->
  (unit, violation) result
(** Reference implementation of {!check_local} enumerating all intervals;
    O(T^2) per edge.  For cross-validation in tests only. *)

val burstiness :
  m:int -> rate:Aqt_util.Ratio.t -> (int * int array) array -> int
(** The smallest [b >= 0] such that every interval and edge satisfy
    [count <= ceil (r * len) + b]; 0 iff [check_rate] accepts. *)

val scan_edge :
  rate:Aqt_util.Ratio.t ->
  (int * int) array ->
  int * (int * int * int) option
(** The potential-function scan underlying [check_rate], [check_leaky] and
    [burstiness], exposed over one edge's event list for direct testing.
    Input: [(time, multiplicity)] pairs with strictly increasing times
    [>= 1] and positive multiplicities (the per-edge shape [bucketize]
    produces).  With [r = p/q], returns the maximum over event times [t2]
    of [D_t2 - min_(u < t2) D_u] where [D_t = q*S_t - p*t] and [S_t] is
    the prefix count, plus a witness [(t1, t2, count)] attaining it.

    The sentinel for an empty event list is [(min_int, None)] — strictly
    below every achievable excess (the checks compare the excess against
    thresholds [>= 0], so the sentinel makes an idle edge trivially
    admissible rather than a special case).  The rate-r condition holds on
    the edge iff the excess is [<= q - 1]; the leaky-bucket [(b, r)]
    condition iff it is [<= q * b].
    @raise Invalid_argument on unsorted, pre-step-1 or zero-multiplicity
    events. *)
