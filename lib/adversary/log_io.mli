(** Saving and loading injection logs.

    An injection log — the [(time, route)] pairs from
    [Network.injection_log], optionally preceded by initial-configuration
    routes — fully determines an adversary's behaviour (Lemma 3.3), so
    persisting one decouples recording a construction from replaying it
    under other policies or in other sessions.

    Format: plain text, one record per line.
    {v
    # comment
    meta <key> <value>
    init <edge> <edge> ...
    <time> <edge> <edge> ...
    v}
    Injection lines must be sorted by time; [meta] and [init] lines come
    first.  Metadata is free-form; the CLI stores the gadget parameters
    ([n], [m]) there so `replay' can rebuild the graph. *)

type t = {
  meta : (string * string) list;
  initial : int array array;  (** Routes of the initial configuration. *)
  log : (int * int array) array;  (** Sorted by injection time. *)
}

val meta_value : t -> string -> string option

val save : string -> t -> unit
(** Writes the log to a file (truncates). *)

val load : string -> t
(** @raise Failure on malformed input (bad numbers, unsorted times,
    empty routes). *)

val of_network : ?meta:(string * string) list -> Aqt_engine.Network.t -> t
(** Capture a run's initial routes and injection log (the network must have
    been created with [~log_injections:true]). *)

val to_string : t -> string
val of_string : string -> t
