(** Sequencing adaptive adversary phases.

    The paper's instability adversary (Theorem 3.17) is built by running
    parameterized sub-adversaries one after another, each constructed from
    the network state at the moment its phase starts (the measured queue size
    S determines the phase's flows and duration).  A {!phase} is therefore a
    constructor: given the network and the phase's start step, it returns the
    driver to run and the phase length in steps. *)

type phase = Aqt_engine.Network.t -> int -> Aqt_engine.Sim.driver * int
(** [phase net start] — [start] is the first step of the phase; the returned
    duration must be positive. *)

val of_driver : Aqt_engine.Sim.driver -> int -> phase
(** A fixed driver run for a fixed number of steps. *)

val idle : int -> phase
(** No injections for the given number of steps. *)

val sequence : ?on_phase:(int -> int -> unit) -> phase list -> Aqt_engine.Sim.driver
(** Runs the phases in order; after the last one, injects nothing.
    [on_phase i start] is called when phase [i] (0-based) begins. *)

val cycle :
  ?on_cycle:(int -> int -> unit) ->
  ?on_phase:(int -> int -> unit) ->
  phase list ->
  Aqt_engine.Sim.driver
(** Like {!sequence} but restarts the phase list forever.  [on_cycle k start]
    fires when cycle [k] (0-based) begins. *)
