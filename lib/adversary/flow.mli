(** Deterministic token-bucket injection flows.

    A flow injects packets with a fixed route at an exact long-run rate
    [r = p/q]: the cumulative number of packets injected by the end of step
    [t] inside the flow's active window is [floor (r * elapsed)], optionally
    capped at [max_total].  This "as late as possible, never above the fluid
    line" discretization is how every adversary in the paper's constructions
    is realized: any single flow trivially satisfies the rate-r constraint on
    the edges it uses, and disjoint-window flows compose.

    Flows are pure descriptions; [count_at] is a function of the step number
    only, so drivers built from flows are replayable. *)

type t

val make :
  ?tag:string ->
  ?max_total:int ->
  route:int array ->
  rate:Aqt_util.Ratio.t ->
  start:int ->
  stop:int ->
  unit ->
  t
(** Active on steps [start .. stop] inclusive.  [rate] must be in (0, 1] —
    the model forbids more than one packet per step per flow only through
    the rate itself, so rates above 1 are rejected to keep flows honest.
    @raise Invalid_argument if [start > stop], the rate is out of range, or
    [max_total < 0]. *)

val route : t -> int array
val tag : t -> string
val start : t -> int
val stop : t -> int

val cumulative : t -> int -> int
(** Packets injected by the end of step [t] (0 before [start]). *)

val count_at : t -> int -> int
(** Packets injected exactly at step [t]. *)

val total : t -> int
(** Packets injected over the flow's lifetime. *)

val last_injection_step : t -> int option
(** The step of the flow's final injection, or [None] for an empty flow. *)

val injections_at : t list -> int -> Aqt_engine.Network.injection list
(** All injections from a flow list at step [t], in list order. *)
