(** The locally bursty adversary of Rosenbaum (arXiv:2208.09522).

    The classical (b, r) leaky-bucket adversary grants one {e global} burst
    allowance; the locally bursty model refines it to a per-edge budget: in
    every time interval [I] and for every edge [e], the adversary may inject
    at most [rho * |I| + sigma_e] packets whose routes require [e].  A small
    [sigma_e] on a bottleneck link coexisting with generous budgets
    elsewhere is exactly the regime the classical model cannot express.

    The concrete adversary is a set of token-bucket {!Flow}s (one per
    route, common per-flow rate) plus an optional one-off burst per flow at
    [t = 1].  The per-edge budgets [sigma_e] and the global [rho] are
    {e derived} from the flow set so the adversary provably satisfies its
    own condition ({!Aqt_adversary.Rate_check.check_local} re-verifies it
    exactly, in integer arithmetic, after every differential run). *)

type t = {
  name : string;
  rate : Aqt_util.Ratio.t;  (** The global [rho] of the (rho, sigma_e) model. *)
  sigmas : int array;
      (** Per-edge burst budgets, indexed by edge id (0 on unused edges). *)
  driver : Aqt_engine.Sim.driver;
}

val budgets :
  m:int ->
  flow_rate:Aqt_util.Ratio.t ->
  (int array * int) list ->
  Aqt_util.Ratio.t * int array
(** [budgets ~m ~flow_rate flows] derives [(rho, sigmas)] for a flow set of
    [(route, burst)] pairs on a graph with [m] edges: [rho = k_max *
    flow_rate] with [k_max] the largest number of flows sharing one edge,
    and [sigma_e] the sum of [burst_i + 1] over the flows using [e].
    @raise Invalid_argument on a negative burst, an out-of-range edge, or a
    flow set using no edge at all. *)

val make :
  ?name:string ->
  m:int ->
  flow_rate:Aqt_util.Ratio.t ->
  flows:(int array * int) list ->
  horizon:int ->
  unit ->
  t
(** [make ~m ~flow_rate ~flows ~horizon ()] builds the adversary: each
    [(route, burst)] pair becomes a rate-[flow_rate] token-bucket flow
    active on steps [1 .. horizon] plus [burst] extra packets at [t = 1].
    [rate] and [sigmas] are {!budgets} of the flow set.
    @raise Invalid_argument as {!budgets}, or if [flow_rate] is outside
    (0, 1] (per {!Flow.make}). *)

val run_steps :
  ?recorder:Aqt_engine.Recorder.t -> net:Aqt_engine.Network.t -> t -> int -> unit
