module Ratio = Aqt_util.Ratio
module Sim = Aqt_engine.Sim
module Network = Aqt_engine.Network
module P = Aqt_engine.Packet
module Digraph = Aqt_graph.Digraph

let route_cost queues route =
  Array.fold_left (fun acc e -> acc + queues.(e)) 0 route

(* Greedy water-filling: each released packet takes the candidate route
   with the least total backlog, counting the virtual load of the packets
   already placed this step (so a same-step batch spreads out instead of
   piling onto one momentarily-idle route).  Ties break to the lowest pool
   index — a pure function of (queues, pool, n), which is what lets the
   differential arms re-derive identical choices from identical states. *)
let assign ~queues ~pool n =
  if Array.length pool = 0 then invalid_arg "Feedback.assign: empty pool";
  let load = Array.copy queues in
  List.init n (fun _ ->
      let best = ref 0 and best_cost = ref max_int in
      Array.iteri
        (fun i route ->
          let c = route_cost load route in
          if c < !best_cost then begin
            best := i;
            best_cost := c
          end)
        pool;
      let route = pool.(!best) in
      Array.iter (fun e -> load.(e) <- load.(e) + 1) route;
      route)

let should_truncate ~queues ~hot ~edge ~remaining =
  remaining > 1 && queues.(edge) >= hot

type t = {
  name : string;
  rate : Ratio.t;
  pool : int array array;
  hot : int;
  driver : Sim.driver;
}

let queues_of net =
  let m = Digraph.n_edges (Network.graph net) in
  Array.init m (Network.buffer_len net)

let make ?(name = "feedback") ~rate ~pool ~hot ~horizon () =
  if Array.length pool = 0 then invalid_arg "Feedback.make: empty route pool";
  if hot < 1 then invalid_arg "Feedback.make: hot threshold must be >= 1";
  (* One aggregate-rate bucket releases packets; the route of each release
     is chosen online.  Admissibility is therefore independent of the
     choice rule: every edge's interval count is bounded by the total
     release count, which is floor-discretized at [rate]. *)
  let counter = Flow.make ~route:pool.(0) ~rate ~start:1 ~stop:horizon () in
  (* The Sim hook hands us the start-of-step queue vector; when the driver
     is stepped outside Sim (no hook call), reading the network directly
     is equivalent, because both hooks run before the step's forwards and
     truncation never changes queue lengths. *)
  let snapshot = ref None in
  let queues net t =
    match !snapshot with
    | Some (t', qs) when t' = t -> qs
    | _ -> queues_of net
  in
  let driver =
    {
      Sim.observe_queues = Some (fun qs t -> snapshot := Some (t, qs));
      before_step =
        (fun net t ->
          let qs = queues net t in
          let victims = ref [] in
          Network.iter_buffered
            (fun p ->
              if
                should_truncate ~queues:qs ~hot ~edge:(P.current_edge p)
                  ~remaining:(P.remaining p)
              then victims := p :: !victims)
            net;
          List.iter (fun p -> Network.reroute net p [||]) !victims);
      injections_at =
        (fun net t ->
          let n = Flow.cumulative counter t - Flow.cumulative counter (t - 1) in
          if n = 0 then []
          else
            List.map
              (fun route : Network.injection -> { route; tag = name })
              (assign ~queues:(queues net t) ~pool n));
    }
  in
  { name; rate; pool; hot; driver }

let run_steps ?recorder ~net adv n =
  Sim.run_steps ?recorder ~net ~driver:adv.driver n
