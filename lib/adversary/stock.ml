module Ratio = Aqt_util.Ratio
module Sim = Aqt_engine.Sim

type t = {
  name : string;
  rate : Ratio.t;
  window : int option;
  exact : bool;
  driver : Sim.driver;
}

let of_flows ~name ~rate ?window flows =
  {
    name;
    rate;
    window;
    exact = true;
    driver = Sim.injections_only (fun _ t -> Flow.injections_at flows t);
  }

let token_bucket ?(name = "token-bucket") ~rate ~routes ~horizon () =
  let flows =
    List.map
      (fun route -> Flow.make ~tag:name ~route ~rate ~start:1 ~stop:horizon ())
      routes
  in
  of_flows ~name ~rate flows

let shared_token_bucket ?(name = "shared-bucket") ~rate ~routes ~horizon () =
  let routes = Array.of_list routes in
  if Array.length routes = 0 then invalid_arg "Stock.shared_token_bucket";
  (* One bucket; the k-th released packet takes routes.(k mod n).  Arrival
     counts come from a single flow on a dummy route, so the cumulative
     release count is floor(rate * t). *)
  let counter =
    Flow.make ~route:routes.(0) ~rate ~start:1 ~stop:horizon ()
  in
  let driver =
    Sim.injections_only (fun _ t ->
        let from = Flow.cumulative counter (t - 1)
        and upto = Flow.cumulative counter t in
        List.init (upto - from) (fun i : Aqt_engine.Network.injection ->
            {
              route = routes.((from + i) mod Array.length routes);
              tag = name;
            }))
  in
  { name; rate; window = None; exact = true; driver }

let windowed_burst ?(name = "window-burst") ?(packed = false) ~w ~rate ~routes
    ~horizon () =
  if w < 1 then invalid_arg "Stock.windowed_burst: w must be positive";
  let per_window = Ratio.floor_mul rate w in
  let routes = Array.of_list routes in
  let one_per_route =
    Array.to_list
      (Array.map
         (fun route : Aqt_engine.Network.injection -> { route; tag = name })
         routes)
  in
  let driver =
    Sim.injections_only (fun _ t ->
        if t > horizon then []
        else begin
          let offset = (t - 1) mod w in
          if packed then
            if offset = 0 then
              List.concat (List.init per_window (fun _ -> one_per_route))
            else []
          else if offset < per_window then one_per_route
          else []
        end)
  in
  { name; rate; window = Some w; exact = true; driver }

let leaky_bucket ?(name = "leaky-bucket") ~b ~rate ~routes ~horizon () =
  if b < 0 then invalid_arg "Stock.leaky_bucket: negative burst";
  let flows =
    List.map
      (fun route -> Flow.make ~tag:name ~route ~rate ~start:1 ~stop:horizon ())
      routes
  in
  let routes_arr = Array.of_list routes in
  let driver =
    Sim.injections_only (fun _ t ->
        let burst =
          if t = 1 then
            List.concat
              (List.init b (fun _ ->
                   Array.to_list
                     (Array.map
                        (fun route : Aqt_engine.Network.injection ->
                          { route; tag = name })
                        routes_arr)))
          else []
        in
        burst @ Flow.injections_at flows t)
  in
  { name; rate; window = None; exact = true; driver }

let replay ?(name = "replay") ~rate log =
  (* Index the log by time once; lookups per step are then O(count). *)
  let by_time = Hashtbl.create (Array.length log) in
  Array.iter
    (fun (t, route) ->
      let prev = try Hashtbl.find by_time t with Not_found -> [] in
      Hashtbl.replace by_time t (route :: prev))
    log;
  Hashtbl.iter
    (fun t routes -> Hashtbl.replace by_time t (List.rev routes))
    (Hashtbl.copy by_time);
  let driver =
    Sim.injections_only (fun _ t ->
        match Hashtbl.find_opt by_time t with
        | None -> []
        | Some routes ->
            List.map
              (fun route : Aqt_engine.Network.injection ->
                { route; tag = name })
              routes)
  in
  { name; rate; window = None; exact = true; driver }

let bernoulli ?(name = "bernoulli") ~prng ~rate ~routes () =
  let num = Ratio.num rate and den = Ratio.den rate in
  let driver =
    Sim.injections_only (fun _ _ ->
        List.filter_map
          (fun route ->
            if Aqt_util.Prng.bernoulli prng ~num ~den then
              Some ({ route; tag = name } : Aqt_engine.Network.injection)
            else None)
          routes)
  in
  { name; rate; window = None; exact = false; driver }

let run_steps ?recorder ~net adv n =
  Sim.run_steps ?recorder ~net ~driver:adv.driver n
