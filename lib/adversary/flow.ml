module Ratio = Aqt_util.Ratio

type t = {
  tag : string;
  max_total : int option;
  route : int array;
  rate : Ratio.t;
  start : int;
  stop : int;
}

let make ?(tag = "flow") ?max_total ~route ~rate ~start ~stop () =
  if start > stop then invalid_arg "Flow.make: start > stop";
  if Array.length route = 0 then invalid_arg "Flow.make: empty route";
  if Ratio.(rate <= zero) || Ratio.(rate > one) then
    invalid_arg "Flow.make: rate must be in (0, 1]";
  (match max_total with
  | Some m when m < 0 -> invalid_arg "Flow.make: negative max_total"
  | _ -> ());
  { tag; max_total; route; rate; start; stop }

let route f = f.route
let tag f = f.tag
let start f = f.start
let stop f = f.stop

let cumulative f t =
  if t < f.start then 0
  else begin
    let t = min t f.stop in
    let raw = Ratio.floor_mul f.rate (t - f.start + 1) in
    match f.max_total with None -> raw | Some m -> min raw m
  end

let count_at f t = cumulative f t - cumulative f (t - 1)
let total f = cumulative f f.stop

let last_injection_step f =
  let n = total f in
  if n = 0 then None
  else begin
    (* Binary search for the first step whose cumulative count reaches n. *)
    let lo = ref f.start and hi = ref f.stop in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative f mid >= n then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

let injections_at flows t =
  List.concat_map
    (fun f ->
      let c = count_at f t in
      List.init c (fun _ : Aqt_engine.Network.injection ->
          { route = f.route; tag = f.tag }))
    flows
