module Ratio = Aqt_util.Ratio
module Sim = Aqt_engine.Sim

type t = {
  name : string;
  rate : Ratio.t;
  sigmas : int array;
  driver : Sim.driver;
}

(* Per-edge budgets derived from the flow set, tight enough that the
   adversary provably satisfies its own (rho, sigma_e) condition:

   - each token-bucket flow of rate r_f contributes at most
     [floor (r_f * len) + 1] packets to any interval of [len] steps on the
     edges its route uses, plus its one-off burst [b_i] at t = 1;
   - an edge used by [k_e] flows therefore sees at most
     [k_e * floor (r_f * len) + sum_(i on e) (b_i + 1)] packets, and
     [k_e * floor (r_f * len) <= floor (k_max * r_f * len)] whenever
     [k_e <= k_max].

   So [rho = k_max * r_f] and [sigma_e = sum_(i on e) (b_i + 1)] make every
   interval admissible by construction — exactly the shape
   [Rate_check.check_local] verifies after the run. *)
let budgets ~m ~flow_rate flows =
  let k = Array.make m 0 in
  let sigmas = Array.make m 0 in
  List.iter
    (fun (route, burst) ->
      if burst < 0 then invalid_arg "Local_burst: negative burst";
      Array.iter
        (fun e ->
          if e < 0 || e >= m then invalid_arg "Local_burst: edge out of range";
          k.(e) <- k.(e) + 1;
          sigmas.(e) <- sigmas.(e) + burst + 1)
        route)
    flows;
  let k_max = Array.fold_left max 0 k in
  if k_max = 0 then invalid_arg "Local_burst: no flow uses any edge";
  (Ratio.mul_int flow_rate k_max, sigmas)

let make ?(name = "local-burst") ~m ~flow_rate ~flows ~horizon () =
  let rate, sigmas = budgets ~m ~flow_rate flows in
  let token_flows =
    List.map
      (fun (route, _) ->
        Flow.make ~tag:name ~route ~rate:flow_rate ~start:1 ~stop:horizon ())
      flows
  in
  let bursts = Array.of_list flows in
  let driver =
    Sim.injections_only (fun _ t ->
        let burst =
          if t = 1 then
            List.concat_map
              (fun (route, b) ->
                List.init b (fun _ : Aqt_engine.Network.injection ->
                    { route; tag = name }))
              (Array.to_list bursts)
          else []
        in
        burst @ Flow.injections_at token_flows t)
  in
  { name; rate; sigmas; driver }

let run_steps ?recorder ~net adv n =
  Sim.run_steps ?recorder ~net ~driver:adv.driver n
