module Sim = Aqt_engine.Sim
module Network = Aqt_engine.Network

type phase = Network.t -> int -> Sim.driver * int

let of_driver driver duration : phase =
  if duration < 1 then invalid_arg "Phased.of_driver: duration must be >= 1";
  fun _ _ -> (driver, duration)

let idle duration = of_driver Sim.null_driver duration

type state = {
  mutable remaining : phase list;
  mutable current : Sim.driver option;
  mutable phase_end : int; (* last step of the current phase *)
  mutable phase_index : int;
}

(* [next_phases t] supplies a fresh phase list when the current one is
   exhausted; returning [] ends the adversary (no further injections). *)
let make_driver ~next_phases ~on_phase st =
  let rec ensure_phase net t =
    match st.current with
    | Some _ when t <= st.phase_end -> ()
    | _ -> (
        match st.remaining with
        | [] -> (
            match next_phases t with
            | [] -> st.current <- None
            | phases ->
                st.remaining <- phases;
                ensure_phase net t)
        | phase :: rest ->
            st.remaining <- rest;
            let driver, duration = phase net t in
            if duration < 1 then
              invalid_arg "Phased: phase returned non-positive duration";
            on_phase st.phase_index t;
            st.phase_index <- st.phase_index + 1;
            st.current <- Some driver;
            st.phase_end <- t + duration - 1)
  in
  {
    Sim.before_step =
      (fun net t ->
        ensure_phase net t;
        match st.current with
        | Some d -> d.Sim.before_step net t
        | None -> ());
    injections_at =
      (fun net t ->
        ensure_phase net t;
        match st.current with
        | Some d -> d.Sim.injections_at net t
        | None -> []);
    (* The current phase is only resolved lazily inside the two hooks
       above, so a per-phase [observe_queues] cannot be forwarded
       statically; phase drivers that need queue feedback read the
       network in [before_step] instead. *)
    observe_queues = None;
  }

let fresh_state phases =
  { remaining = phases; current = None; phase_end = min_int; phase_index = 0 }

let sequence ?(on_phase = fun _ _ -> ()) phases =
  make_driver ~next_phases:(fun _ -> []) ~on_phase (fresh_state phases)

let cycle ?(on_cycle = fun _ _ -> ()) ?(on_phase = fun _ _ -> ()) phases =
  if phases = [] then invalid_arg "Phased.cycle: empty phase list";
  let cycle_no = ref 0 in
  let next_phases t =
    on_cycle !cycle_no t;
    incr cycle_no;
    phases
  in
  (* The first cycle also goes through [next_phases], so start empty. *)
  make_driver ~next_phases ~on_phase (fresh_state [])
