(** The finite-capacity model axis: bounded buffers, drop disciplines, and
    integer link speedup.

    The source paper (SPAA 2002) idealises unbounded queues and unit-speed
    links.  Its successors — arXiv:1707.03856 (buffer size for limited-rate
    adversarial traffic) and arXiv:1902.08069 (speedup vs. small buffers) —
    bound the buffers and speed up the links.  This module is the pure
    description of that regime; {!Aqt_engine.Network} executes it. *)

type policy =
  | Drop_tail  (** reject the arriving packet *)
  | Drop_head
      (** displace the packet the scheduling policy would forward next (the
          head of the service order) to admit the arrival *)

type buffers =
  | Unbounded  (** the paper's regime: no drops ever *)
  | Uniform of { cap : int; policy : policy }
      (** every edge buffer holds at most [cap] packets *)
  | Per_edge of { caps : int array; policy : policy }
      (** buffer of edge [e] holds at most [caps.(e)] packets *)
  | Shared of { total : int; alpha_num : int; alpha_den : int }
      (** one buffer pool of [total] slots shared by all edges, partitioned
          by the Dynamic-Threshold discipline: an arrival to a queue of
          length [L] is admitted iff
          [alpha_den * L < alpha_num * (total - occupancy)] where
          [occupancy] is the total buffered population.  Rejections are tail
          drops. *)

type t = { buffers : buffers; speedup : int }
(** [speedup] is the integer link speed s >= 1: each edge forwards up to [s]
    packets per step (substep 1 stays simultaneous). *)

val unbounded : t
(** The paper's regime: [Unbounded] buffers, speedup 1.  A network created
    with this model is byte-identical in behaviour to one created without a
    capacity model. *)

val make : ?speedup:int -> buffers -> t
(** @raise Invalid_argument on a negative capacity, [speedup < 1], or a
    non-positive alpha. *)

val uniform : ?policy:policy -> ?speedup:int -> int -> t
(** [uniform k] = [make (Uniform { cap = k; policy = Drop_tail })]. *)

val shared : ?alpha_num:int -> ?alpha_den:int -> ?speedup:int -> int -> t
(** [shared b] is a Dynamic-Threshold shared buffer of [b] slots with
    alpha = 1. *)

val is_unbounded : t -> bool
val is_trivial : t -> bool
(** Unbounded {e and} speedup 1 — the regime in which the engine's fast path
    must be untouched. *)

val speedup : t -> int

(** {1 The compiled form the engine consumes} *)

val caps : t -> m:int -> int array
(** Static per-edge capacities for an [m]-edge graph; [max_int] where no
    static cap applies (unbounded and shared models).
    @raise Invalid_argument if [Per_edge] caps disagree with [m]. *)

val drop_head : t -> bool
(** Whether rejected static-cap arrivals displace the service-order head. *)

val shared_total : t -> int
(** The shared pool size, [max_int] unless [Shared]. *)

val alpha : t -> int * int
(** The DT ratio [(num, den)]; [(1, 1)] unless [Shared]. *)

val dt_admits :
  alpha_num:int -> alpha_den:int -> total:int -> occupancy:int -> len:int ->
  bool
(** The Dynamic-Threshold admission test.  [occupancy = total] makes the
    free space 0 and rejects everything, so fullness is subsumed. *)

(** {1 Naming} *)

val policy_name : policy -> string
val policy_of_string : string -> policy option
(** Accepts ["drop-tail"]/["tail"] and ["drop-head"]/["head"]. *)

val describe : t -> string
