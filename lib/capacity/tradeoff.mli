(** Analytic baselines for the buffer-size-vs-speedup tradeoff.

    The committed figures plot measured drop behaviour against these
    network-calculus baselines: a token-bucket (rho, sigma) flow through a
    single queue served at integer rate [s] keeps its backlog at or below
    [sigma] whenever [rho <= s], and needs [s >= ceil rho] to be drainable at
    all.  The multi-hop curves of arXiv:1707.03856 / arXiv:1902.08069 are
    measured by the [c1]/[c2] experiments rather than restated here. *)

val min_speedup : rho_num:int -> rho_den:int -> int
(** Smallest integer speedup that can sustain arrival rate rho = num/den.
    @raise Invalid_argument on a non-positive rate. *)

val single_hop_backlog :
  rho_num:int -> rho_den:int -> sigma:int -> speedup:int -> int option
(** [Some sigma] when [rho <= speedup] (the backlog bound of a single
    (rho, sigma)-bounded queue), [None] when the queue is unstable.
    @raise Invalid_argument on bad parameters. *)

val drop_rate : injected:int -> dropped:int -> float
(** [dropped / injected], 0 on an empty run. *)

val delivered_fraction : injected:int -> dropped:int -> float
