type policy = Drop_tail | Drop_head

type buffers =
  | Unbounded
  | Uniform of { cap : int; policy : policy }
  | Per_edge of { caps : int array; policy : policy }
  | Shared of { total : int; alpha_num : int; alpha_den : int }

type t = { buffers : buffers; speedup : int }

let unbounded = { buffers = Unbounded; speedup = 1 }

let make ?(speedup = 1) buffers =
  if speedup < 1 then invalid_arg "Capacity.Model.make: speedup must be >= 1";
  (match buffers with
  | Unbounded -> ()
  | Uniform { cap; _ } ->
      if cap < 0 then invalid_arg "Capacity.Model.make: negative capacity"
  | Per_edge { caps; _ } ->
      Array.iter
        (fun c ->
          if c < 0 then invalid_arg "Capacity.Model.make: negative capacity")
        caps
  | Shared { total; alpha_num; alpha_den } ->
      if total < 0 then invalid_arg "Capacity.Model.make: negative total";
      if alpha_num < 1 || alpha_den < 1 then
        invalid_arg "Capacity.Model.make: alpha must be a positive ratio");
  { buffers; speedup }

let uniform ?(policy = Drop_tail) ?speedup cap =
  make ?speedup (Uniform { cap; policy })

let shared ?(alpha_num = 1) ?(alpha_den = 1) ?speedup total =
  make ?speedup (Shared { total; alpha_num; alpha_den })

let is_unbounded t = match t.buffers with Unbounded -> true | _ -> false
let is_trivial t = is_unbounded t && t.speedup = 1
let speedup t = t.speedup

let caps t ~m =
  match t.buffers with
  | Unbounded | Shared _ -> Array.make m max_int
  | Uniform { cap; _ } -> Array.make m cap
  | Per_edge { caps; _ } ->
      if Array.length caps <> m then
        invalid_arg
          (Printf.sprintf "Capacity.Model.caps: %d caps for %d edges"
             (Array.length caps) m)
      else Array.copy caps

let drop_head t =
  match t.buffers with
  | Uniform { policy = Drop_head; _ } | Per_edge { policy = Drop_head; _ } ->
      true
  | _ -> false

let shared_total t =
  match t.buffers with Shared { total; _ } -> total | _ -> max_int

let alpha t =
  match t.buffers with
  | Shared { alpha_num; alpha_den; _ } -> (alpha_num, alpha_den)
  | _ -> (1, 1)

(* The Dynamic-Threshold admission test (Choudhury-Hahne): a packet may join
   a queue of length [len] iff the queue stays below alpha times the free
   space of the shared buffer.  [occupancy = total] makes the right side 0,
   so fullness rejection is subsumed. *)
let dt_admits ~alpha_num ~alpha_den ~total ~occupancy ~len =
  alpha_den * len < alpha_num * (total - occupancy)

let policy_name = function Drop_tail -> "drop-tail" | Drop_head -> "drop-head"

let policy_of_string = function
  | "drop-tail" | "tail" -> Some Drop_tail
  | "drop-head" | "head" -> Some Drop_head
  | _ -> None

let describe t =
  let b =
    match t.buffers with
    | Unbounded -> "unbounded"
    | Uniform { cap; policy } ->
        Printf.sprintf "cap=%d %s" cap (policy_name policy)
    | Per_edge { caps; policy } ->
        Printf.sprintf "per-edge caps (%d edges) %s" (Array.length caps)
          (policy_name policy)
    | Shared { total; alpha_num; alpha_den } ->
        Printf.sprintf "shared=%d dt(%d/%d)" total alpha_num alpha_den
  in
  if t.speedup = 1 then b else Printf.sprintf "%s s=%d" b t.speedup
