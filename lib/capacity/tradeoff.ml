let cdiv a b = ((a + b) - 1) / b

let min_speedup ~rho_num ~rho_den =
  if rho_num <= 0 || rho_den <= 0 then
    invalid_arg "Capacity.Tradeoff.min_speedup: rate must be positive";
  max 1 (cdiv rho_num rho_den)

let single_hop_backlog ~rho_num ~rho_den ~sigma ~speedup =
  if rho_num <= 0 || rho_den <= 0 || sigma < 0 || speedup < 1 then
    invalid_arg "Capacity.Tradeoff.single_hop_backlog: bad parameters";
  (* Arrivals over any window of d steps are bounded by rho*d + sigma while
     the server drains speedup*d, so with rho <= s the standing backlog
     never exceeds the burst allowance. *)
  if rho_num <= speedup * rho_den then Some sigma else None

let drop_rate ~injected ~dropped =
  if injected <= 0 then 0.0 else float_of_int dropped /. float_of_int injected

let delivered_fraction ~injected ~dropped =
  1.0 -. drop_rate ~injected ~dropped
