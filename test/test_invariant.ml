(* Tests for the C(S, F_n) invariant checker (Definition 3.5), on hand-built
   network states. *)

module N = Aqt_engine.Network
module G = Aqt.Gadget
module I = Aqt.Invariant
module Policies = Aqt_policy.Policies

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build C(s, F(1)) exactly on a fresh fn-graph network at time 0: one seed
   per e-buffer plus extras on e_1, and s packets at the ingress. *)
let build_c ~n ~s =
  let g = G.fn ~n in
  let net = N.create ~graph:g.graph ~policy:Policies.fifo () in
  assert (s >= n);
  (* Clause 2: every e_i buffer nonempty, remaining route e_i..e_n,a1. *)
  for i = 1 to n do
    ignore (N.place_initial net (G.e_remaining g ~k:1 ~i))
  done;
  for _ = n + 1 to s do
    ignore (N.place_initial net (G.e_remaining g ~k:1 ~i:1))
  done;
  (* Clause 3: s packets at the ingress. *)
  for _ = 1 to s do
    ignore (N.place_initial net (G.ingress_remaining g ~k:1))
  done;
  (net, g)

let strict_holds () =
  let net, g = build_c ~n:4 ~s:7 in
  match I.check_strict net g ~k:1 with
  | Ok s -> check_int "C(7, F)" 7 s
  | Error e -> Alcotest.failf "invariant should hold: %s" e

let measurement_fields () =
  let net, g = build_c ~n:4 ~s:7 in
  let m = I.measure net g ~k:1 in
  check_int "s_epath" 7 m.s_epath;
  check_int "s_ingress" 7 m.s_ingress;
  check_int "empty e-buffers" 0 m.empty_e_buffers;
  check_int "bad e routes" 0 m.bad_e_routes;
  check_int "bad ingress routes" 0 m.bad_ingress_routes;
  check_int "extraneous" 0 m.extraneous;
  check_int "egress occupancy" 0 m.egress_occupancy;
  check_int "occupancy" 14 (I.gadget_occupancy net g ~k:1)

let detects_empty_buffer () =
  let g = G.fn ~n:3 in
  let net = N.create ~graph:g.graph ~policy:Policies.fifo () in
  (* Skip e_2's buffer. *)
  ignore (N.place_initial net (G.e_remaining g ~k:1 ~i:1));
  ignore (N.place_initial net (G.e_remaining g ~k:1 ~i:3));
  ignore (N.place_initial net (G.ingress_remaining g ~k:1));
  ignore (N.place_initial net (G.ingress_remaining g ~k:1));
  match I.check_strict net g ~k:1 with
  | Ok _ -> Alcotest.fail "must detect the empty e_2 buffer"
  | Error e -> check_bool "mentions empty" true (String.length e > 0)

let detects_wrong_route () =
  let g = G.fn ~n:3 in
  let net = N.create ~graph:g.graph ~policy:Policies.fifo () in
  for i = 1 to 3 do
    ignore (N.place_initial net (G.e_remaining g ~k:1 ~i))
  done;
  (* An e-path packet that stops short of the egress. *)
  ignore (N.place_initial net [| g.e.(0).(0) |]);
  for _ = 1 to 4 do
    ignore (N.place_initial net (G.ingress_remaining g ~k:1))
  done;
  let m = I.measure net g ~k:1 in
  check_int "one bad e route" 1 m.bad_e_routes;
  check_bool "strict fails" true (Result.is_error (I.check_strict net g ~k:1))

let detects_extraneous () =
  let net, g = build_c ~n:3 ~s:5 in
  ignore net;
  let g2 = g in
  let net2 = N.create ~graph:g2.graph ~policy:Policies.fifo () in
  for i = 1 to 3 do
    ignore (N.place_initial net2 (G.e_remaining g2 ~k:1 ~i))
  done;
  for _ = 1 to 3 do
    ignore (N.place_initial net2 (G.ingress_remaining g2 ~k:1))
  done;
  (* A packet on the f-path. *)
  ignore (N.place_initial net2 [| g2.f.(0).(1) |]);
  let m = I.measure net2 g2 ~k:1 in
  check_int "extraneous" 1 m.extraneous;
  check_bool "strict fails" true (Result.is_error (I.check_strict net2 g2 ~k:1))

let detects_imbalance () =
  let g = G.fn ~n:2 in
  let net = N.create ~graph:g.graph ~policy:Policies.fifo () in
  for i = 1 to 2 do
    ignore (N.place_initial net (G.e_remaining g ~k:1 ~i))
  done;
  (* Only one ingress packet for two e-path packets. *)
  ignore (N.place_initial net (G.ingress_remaining g ~k:1));
  (match I.check_strict net g ~k:1 with
  | Ok _ -> Alcotest.fail "imbalance must fail strict check"
  | Error _ -> ());
  check_bool "slack 1 accepts" true (I.holds_with_slack ~slack:1 net g ~k:1);
  check_bool "slack 0 rejects" false (I.holds_with_slack ~slack:0 net g ~k:1)

let detects_bad_ingress_route () =
  let g = G.fn ~n:2 in
  let net = N.create ~graph:g.graph ~policy:Policies.fifo () in
  for i = 1 to 2 do
    ignore (N.place_initial net (G.e_remaining g ~k:1 ~i))
  done;
  ignore (N.place_initial net (G.ingress_remaining g ~k:1));
  (* An ingress packet with a single-edge route. *)
  ignore (N.place_initial net (G.seed_route g));
  let m = I.measure net g ~k:1 in
  check_int "bad ingress route" 1 m.bad_ingress_routes

let second_gadget_of_chain () =
  let g = G.chain ~n:3 ~m:2 () in
  let net = N.create ~graph:g.graph ~policy:Policies.fifo () in
  for i = 1 to 3 do
    ignore (N.place_initial net (G.e_remaining g ~k:2 ~i))
  done;
  for _ = 1 to 3 do
    ignore (N.place_initial net (G.ingress_remaining g ~k:2))
  done;
  (match I.check_strict net g ~k:2 with
  | Ok s -> check_int "C(3, F(2))" 3 s
  | Error e -> Alcotest.failf "should hold on gadget 2: %s" e);
  (* Gadget 1 sees those ingress packets in its egress buffer... *)
  let m1 = I.measure net g ~k:1 in
  check_int "gadget1 egress occupancy" 3 m1.egress_occupancy;
  check_int "gadget1 epath empty" 3 m1.empty_e_buffers

(* Any exactly-built C(S, F(k)) state passes the strict check, for random
   gadget parameters and distributions of packets over the e-buffers. *)
let prop_built_states_pass =
  QCheck.Test.make ~name:"constructed C(S,F) states satisfy the checker"
    ~count:100
    (QCheck.triple (QCheck.int_range 1 6) (QCheck.int_range 1 3)
       (QCheck.int_range 0 10_000))
    (fun (n, k, seed) ->
      let prng = Aqt_util.Prng.create seed in
      let m = k + Aqt_util.Prng.int prng 2 in
      let g = G.chain ~n ~m () in
      let net = N.create ~graph:g.graph ~policy:Policies.fifo () in
      let extra = Aqt_util.Prng.int prng 12 in
      let s = n + extra in
      (* One packet per e-buffer, the surplus scattered randomly. *)
      for i = 1 to n do
        ignore (N.place_initial net (G.e_remaining g ~k ~i))
      done;
      for _ = 1 to extra do
        let i = 1 + Aqt_util.Prng.int prng n in
        ignore (N.place_initial net (G.e_remaining g ~k ~i))
      done;
      for _ = 1 to s do
        ignore (N.place_initial net (G.ingress_remaining g ~k))
      done;
      I.check_strict net g ~k = Ok s)

let () =
  Alcotest.run "aqt_invariant"
    [
      ( "invariant",
        [
          Alcotest.test_case "strict holds" `Quick strict_holds;
          Alcotest.test_case "measurement fields" `Quick measurement_fields;
          Alcotest.test_case "empty buffer detected" `Quick detects_empty_buffer;
          Alcotest.test_case "wrong route detected" `Quick detects_wrong_route;
          Alcotest.test_case "extraneous detected" `Quick detects_extraneous;
          Alcotest.test_case "imbalance and slack" `Quick detects_imbalance;
          Alcotest.test_case "bad ingress route" `Quick detects_bad_ingress_route;
          Alcotest.test_case "second gadget" `Quick second_gadget_of_chain;
          QCheck_alcotest.to_alcotest prop_built_states_pass;
        ] );
    ]
