(* Tests for the datacenter-fabric stack: flow-level workload
   compilation (admissible by construction), scenario replay, and
   record/SoA backend parity. *)

module B = Aqt_graph.Build
module D = Aqt_graph.Digraph
module Ratio = Aqt_util.Ratio
module Traffic = Aqt_workload.Traffic
module Workloads = Aqt_workload.Workloads
module Rate_check = Aqt_adversary.Rate_check
module Scenario = Aqt_fabric.Scenario
module Capacity = Aqt_capacity.Model
module Policies = Aqt_policy.Policies

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile_on fabric spec =
  Traffic.compile
    ~n_hosts:(Array.length fabric.B.hosts)
    ~m:(D.n_edges fabric.B.graph)
    ~routes:fabric.B.routes spec

let spec ?(pattern = Traffic.Permutation) ?(conns = 1)
    ?(util = Ratio.make 3 4) ?(cdf = Traffic.short_cdf) ?(horizon = 40)
    ?(seed = 11) () =
  {
    Traffic.pattern;
    conns_per_pair = conns;
    utilisation = util;
    flow_cdf = cdf;
    horizon;
    seed;
  }

(* Replay a compiled schedule into the (time, route) log shape that
   Rate_check consumes, as if every scheduled packet were injected. *)
let log_of_schedule (c : Traffic.compiled) =
  let log = ref [] in
  Array.iteri
    (fun i routes ->
      List.iter (fun route -> log := (i + 1, route) :: !log) routes)
    c.Traffic.schedule;
  Array.of_list (List.rev !log)

let schedule_accounting () =
  let f = B.spine_leaf ~spines:2 ~leaves:3 ~hosts_per_leaf:2 in
  let c = compile_on f (spec ()) in
  let scheduled =
    Array.fold_left (fun acc l -> acc + List.length l) 0 c.Traffic.schedule
  in
  check_int "every budgeted packet is scheduled" c.Traffic.packets scheduled;
  let flow_packets =
    Array.fold_left (fun acc fl -> acc + fl.Traffic.size) 0 c.Traffic.flows
  in
  check_int "flows partition the packet stream" c.Traffic.packets flow_packets;
  check_int "schedule covers the horizon" c.Traffic.spec.Traffic.horizon
    (Array.length c.Traffic.schedule);
  Array.iter
    (fun fl ->
      check_bool "flow start within horizon" true
        (fl.Traffic.start >= 1
        && fl.Traffic.start <= c.Traffic.spec.Traffic.horizon))
    c.Traffic.flows

let admissible_by_construction () =
  List.iter
    (fun (pattern, conns, util_n, util_d) ->
      let f = B.fat_tree ~k:4 in
      let c =
        compile_on f
          (spec ~pattern ~conns ~util:(Ratio.make util_n util_d) ())
      in
      let log = log_of_schedule c in
      check_bool
        (Printf.sprintf "%s admissible (fast)"
           (Traffic.pattern_name pattern))
        true
        (Rate_check.check_local ~rate:c.Traffic.rate ~sigmas:c.Traffic.sigmas
           log
        = Ok ());
      check_bool
        (Printf.sprintf "%s admissible (brute)"
           (Traffic.pattern_name pattern))
        true
        (Rate_check.check_local_brute ~rate:c.Traffic.rate
           ~sigmas:c.Traffic.sigmas log
        = Ok ()))
    [
      (Traffic.Permutation, 1, 3, 4);
      (Traffic.Incast { senders = 15 }, 1, 1, 1);
      (Traffic.All_to_all, 1, 9, 10);
      (Traffic.Hotspot { hot_num = 1; hot_den = 2 }, 2, 1, 2);
    ]

let deterministic_compile () =
  let f = B.fat_tree ~k:4 in
  let c1 = compile_on f (spec ~seed:42 ()) in
  let c2 = compile_on f (spec ~seed:42 ()) in
  check_bool "same seed, same schedule" true
    (c1.Traffic.schedule = c2.Traffic.schedule);
  check_bool "same seed, same flows" true (c1.Traffic.flows = c2.Traffic.flows);
  let c3 = compile_on f (spec ~seed:43 ()) in
  check_bool "different seed, different schedule" true
    (c1.Traffic.schedule <> c3.Traffic.schedule)

let utilisation_shaping () =
  let f = B.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:2 in
  (* Permutation: bottleneck 1 conn per access link, so conn_rate =
     utilisation. *)
  let c = compile_on f (spec ~util:(Ratio.make 1 2) ()) in
  check_bool "permutation conn rate = util" true
    (Ratio.equal c.Traffic.conn_rate (Ratio.make 1 2));
  check_int "permutation bottleneck" 1 c.Traffic.bottleneck;
  (* Incast of 3 senders: receiver downlink carries 3 connections. *)
  let c =
    compile_on f (spec ~pattern:(Traffic.Incast { senders = 3 }) ~util:Ratio.one ())
  in
  check_int "incast bottleneck" 3 c.Traffic.bottleneck;
  check_bool "incast conn rate = 1/3" true
    (Ratio.equal c.Traffic.conn_rate (Ratio.make 1 3))

let traffic_rejects () =
  let f = B.spine_leaf ~spines:1 ~leaves:2 ~hosts_per_leaf:1 in
  let bad s = Alcotest.check_raises "rejects" (Invalid_argument s) in
  bad "Traffic.compile: conns_per_pair must be >= 1" (fun () ->
      ignore (compile_on f (spec ~conns:0 ())));
  bad "Traffic.compile: flow CDF weights must increase" (fun () ->
      ignore (compile_on f (spec ~cdf:[ (5, 1); (5, 2) ] ())));
  bad "Traffic.compile: incast needs at least one sender" (fun () ->
      ignore
        (compile_on f (spec ~pattern:(Traffic.Incast { senders = 0 }) ())));
  bad "Traffic.compile: hotspot fraction must be in [0, 1]" (fun () ->
      ignore
        (compile_on f
           (spec ~pattern:(Traffic.Hotspot { hot_num = 3; hot_den = 2 }) ())))

let to_workload_validates () =
  let f = B.fat_tree ~k:2 in
  let c = compile_on f (spec ~horizon:20 ()) in
  let w = Traffic.to_workload ~name:"fabric" ~graph:f.B.graph c in
  check_bool "workload validates" true (Workloads.validate w);
  check_bool "has routes" true (w.Workloads.routes <> [])

let scenario_runs_and_is_legal () =
  let t =
    Scenario.make
      ~topo:(Scenario.Spine_leaf { spines = 2; leaves = 3; hosts_per_leaf = 2 })
      ~pattern:(Traffic.Hotspot { hot_num = 1; hot_den = 2 })
      ~utilisation:(Ratio.make 3 4) ~horizon:60 ~drain:120 ~seed:5 ()
  in
  let o = Scenario.run t in
  check_bool "injection log admissible" true o.Scenario.legal;
  check_int "all packets injected"
    (snd (Scenario.compile t)).Traffic.packets o.Scenario.injected;
  check_int "unbounded drops nothing" 0 o.Scenario.dropped;
  check_int "everything drains" o.Scenario.injected o.Scenario.absorbed

let scenario_backend_parity () =
  List.iter
    (fun capacity ->
      let t =
        Scenario.make
          ~topo:(Scenario.Fat_tree { k = 4 })
          ~pattern:(Traffic.Incast { senders = 15 })
          ~utilisation:Ratio.one ~capacity ~horizon:80 ~drain:100 ~seed:3 ()
      in
      let a = Scenario.run ~backend:Scenario.Record t in
      let project (o : Scenario.outcome) =
        ( o.Scenario.injected,
          o.Scenario.absorbed,
          o.Scenario.dropped,
          o.Scenario.in_flight,
          o.Scenario.max_queue,
          o.Scenario.peak_occupancy,
          o.Scenario.latency_mean,
          o.Scenario.legal )
      in
      List.iter
        (fun domains ->
          let b = Scenario.run ~backend:(Scenario.Soa domains) t in
          check_bool
            (Printf.sprintf "record = soa:%d" domains)
            true
            (project a = project b))
        [ 1; 2 ])
    [ Capacity.unbounded; Capacity.shared ~alpha_num:1 ~alpha_den:1 64 ]

let scenario_shared_buffer_drops () =
  let t =
    Scenario.make
      ~topo:(Scenario.Spine_leaf { spines = 2; leaves = 4; hosts_per_leaf = 2 })
      ~pattern:(Traffic.Incast { senders = 7 })
      ~utilisation:Ratio.one
      ~capacity:(Capacity.shared ~alpha_num:1 ~alpha_den:2 8)
      ~horizon:200 ~drain:100 ~seed:9 ()
  in
  let o = Scenario.run t in
  check_bool "tiny shared buffer drops" true (o.Scenario.dropped > 0);
  check_bool "peak occupancy within total" true (o.Scenario.peak_occupancy <= 8);
  check_int "conservation" o.Scenario.injected
    (o.Scenario.absorbed + o.Scenario.dropped + o.Scenario.in_flight)

let catalog_is_well_formed () =
  let cat = Scenario.catalog () in
  check_bool "non-empty" true (cat <> []);
  let names = List.map (fun t -> t.Scenario.name) cat in
  check_int "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun t -> ignore (Scenario.compile t))
    cat;
  check_bool "lookup hit" true (Scenario.find_catalog "ft4-incast" <> None);
  check_bool "lookup miss" true (Scenario.find_catalog "nope" = None)

let prop_compiled_admissible =
  QCheck.Test.make ~name:"compiled traffic is locally admissible" ~count:40
    (QCheck.pair (QCheck.int_range 0 3) (QCheck.int_range 0 10_000))
    (fun (which, seed) ->
      let pattern =
        match which with
        | 0 -> Traffic.Permutation
        | 1 -> Traffic.Incast { senders = 3 }
        | 2 -> Traffic.All_to_all
        | _ -> Traffic.Hotspot { hot_num = 1; hot_den = 3 }
      in
      let f = B.spine_leaf ~spines:2 ~leaves:2 ~hosts_per_leaf:2 in
      let c =
        compile_on f
          (spec ~pattern ~util:(Ratio.make ((seed mod 4) + 1) 4) ~horizon:30
             ~seed ())
      in
      Rate_check.check_local ~rate:c.Traffic.rate ~sigmas:c.Traffic.sigmas
        (log_of_schedule c)
      = Ok ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "aqt_fabric"
    [
      ( "traffic",
        [
          Alcotest.test_case "schedule accounting" `Quick schedule_accounting;
          Alcotest.test_case "admissible by construction" `Quick
            admissible_by_construction;
          Alcotest.test_case "deterministic" `Quick deterministic_compile;
          Alcotest.test_case "utilisation shaping" `Quick utilisation_shaping;
          Alcotest.test_case "rejections" `Quick traffic_rejects;
          Alcotest.test_case "to_workload" `Quick to_workload_validates;
          q prop_compiled_admissible;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "runs and is legal" `Quick
            scenario_runs_and_is_legal;
          Alcotest.test_case "backend parity" `Quick scenario_backend_parity;
          Alcotest.test_case "shared buffer drops" `Quick
            scenario_shared_buffer_drops;
          Alcotest.test_case "catalog" `Quick catalog_is_well_formed;
        ] );
    ]
