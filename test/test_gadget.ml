(* Structural tests for the gadget graphs of Figures 3.1 and 3.2. *)

module D = Aqt_graph.Digraph
module G = Aqt.Gadget

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A chain of M gadgets with path length n has:
   nodes: 2(M+1) shared-edge endpoints + 2M(n-1) path interiors
   edges: (M+1) shared + 2Mn path edges (+1 stitch when cyclic). *)
let expected_nodes ~n ~m = (2 * (m + 1)) + (2 * m * (n - 1))
let expected_edges ~n ~m = m + 1 + (2 * m * n)

let structure_counts () =
  List.iter
    (fun (n, m) ->
      let g = G.chain ~n ~m () in
      check_int
        (Printf.sprintf "nodes n=%d m=%d" n m)
        (expected_nodes ~n ~m)
        (D.n_nodes g.graph);
      check_int
        (Printf.sprintf "edges n=%d m=%d" n m)
        (expected_edges ~n ~m)
        (D.n_edges g.graph);
      let c = G.cyclic ~n ~m () in
      check_int "cyclic adds one edge"
        (expected_edges ~n ~m + 1)
        (D.n_edges c.graph))
    [ (1, 1); (2, 1); (4, 2); (8, 3); (3, 5) ]

let asymmetric_f_len () =
  let g = G.chain ~f_len:2 ~n:5 ~m:3 () in
  check_int "f-path shorter" 2 (Array.length g.f.(0));
  check_int "e-path unchanged" 5 (Array.length g.e.(0));
  (* Edges: (m+1) shared + m*(n + f_len). *)
  check_int "edges" (4 + (3 * 7)) (D.n_edges g.graph);
  (* Every construction route is still a simple path. *)
  check_bool "ingress remaining" true
    (D.route_is_simple g.graph (G.ingress_remaining g ~k:2));
  check_bool "pump long" true
    (D.route_is_simple g.graph (G.pump_long_route g ~k:1));
  Alcotest.check_raises "f_len > n rejected"
    (Invalid_argument "Gadget: f_len must be in [1, n]") (fun () ->
      ignore (G.chain ~f_len:6 ~n:5 ~m:1 ()))

let figure_3_1 () =
  (* Figure 3.1 is F_n^2. *)
  let g = G.chain ~n:4 ~m:2 () in
  check_int "three shared edges" 3 (Array.length g.a);
  check_int "ingress of F" g.a.(0) (G.ingress g ~k:1);
  check_int "egress of F = ingress of F'" (G.egress g ~k:1) (G.ingress g ~k:2);
  check_bool "acyclic" true (D.is_dag g.graph);
  (* Degree-1 source and sink. *)
  let src = D.src g.graph g.a.(0) in
  check_int "source degree" 1 (D.out_degree g.graph src);
  check_int "source in-degree" 0 (D.in_degree g.graph src)

let figure_3_2 () =
  let g = G.cyclic ~n:4 ~m:3 () in
  check_bool "has stitch edge" true (g.e0 <> None);
  check_bool "cyclic" false (D.is_dag g.graph);
  let e0 = G.stitch_edge g in
  check_int "e0 leaves the last egress head" (D.dst g.graph g.a.(3))
    (D.src g.graph e0);
  check_int "e0 enters the first ingress tail" (D.src g.graph g.a.(0))
    (D.dst g.graph e0);
  (* Removing e0 conceptually: the chain part remains a DAG; verify the
     stitch route is a valid simple path. *)
  check_bool "stitch route valid" true
    (D.route_is_simple g.graph (G.stitch_route g))

let routes_are_simple_paths () =
  let g = G.cyclic ~n:5 ~m:4 () in
  let check name route =
    if not (D.route_is_simple g.graph route) then
      Alcotest.failf "%s is not a simple path" name
  in
  check "seed" (G.seed_route g);
  check "startup extension" (Array.append (G.seed_route g) (G.startup_extension g));
  check "startup long" (G.startup_long_route g);
  for k = 1 to 3 do
    check
      (Printf.sprintf "pump long %d" k)
      (G.pump_long_route g ~k);
    check (Printf.sprintf "pump tail %d" k) (G.pump_tail_route g ~k);
    check
      (Printf.sprintf "ingress remaining %d" k)
      (G.ingress_remaining g ~k)
  done;
  for k = 1 to 4 do
    for i = 1 to 5 do
      check (Printf.sprintf "e remaining %d %d" k i) (G.e_remaining g ~k ~i)
    done
  done;
  check "stitch" (G.stitch_route g)

let route_contents () =
  let g = G.chain ~n:3 ~m:2 () in
  (* e_remaining k=1 i=2 is e2,e3,a1. *)
  let r = G.e_remaining g ~k:1 ~i:2 in
  check_int "length n - i + 2" 3 (Array.length r);
  check_bool "labels" true
    (Array.to_list (Array.map (D.label g.graph) r) = [ "e1_2"; "e1_3"; "a1" ]);
  let ir = G.ingress_remaining g ~k:2 in
  check_bool "ingress route labels" true
    (Array.to_list (Array.map (D.label g.graph) ir)
    = [ "a1"; "f2_1"; "f2_2"; "f2_3"; "a2" ]);
  let ext = G.extension_suffix g ~k:1 in
  check_bool "extension labels" true
    (Array.to_list (Array.map (D.label g.graph) ext)
    = [ "e2_1"; "e2_2"; "e2_3"; "a2" ]);
  let pl = G.pump_long_route g ~k:1 in
  check_bool "pump long spans both f-paths" true
    (Array.to_list (Array.map (D.label g.graph) pl)
    = [ "a0"; "f1_1"; "f1_2"; "f1_3"; "a1"; "f2_1"; "f2_2"; "f2_3"; "a2" ])

let gadget_edges_cover () =
  let g = G.chain ~n:3 ~m:2 () in
  let edges1 = G.gadget_edges g ~k:1 in
  check_int "gadget edge count (2n + 2 shared)" 8 (List.length edges1);
  check_bool "contains ingress" true (List.mem (G.ingress g ~k:1) edges1);
  check_bool "contains egress" true (List.mem (G.egress g ~k:1) edges1);
  (* Shared edge belongs to both gadgets. *)
  let edges2 = G.gadget_edges g ~k:2 in
  check_bool "a1 in both" true
    (List.mem g.a.(1) edges1 && List.mem g.a.(1) edges2)

let rejections () =
  Alcotest.check_raises "n >= 1" (Invalid_argument "Gadget: n must be >= 1")
    (fun () -> ignore (G.fn ~n:0));
  Alcotest.check_raises "m >= 1" (Invalid_argument "Gadget: m must be >= 1")
    (fun () -> ignore (G.chain ~n:2 ~m:0 ()));
  let g = G.chain ~n:2 ~m:2 () in
  Alcotest.check_raises "k range"
    (Invalid_argument "Gadget: gadget index 3 out of range") (fun () ->
      ignore (G.ingress g ~k:3));
  Alcotest.check_raises "no successor"
    (Invalid_argument "Gadget.extension_suffix: gadget has no successor")
    (fun () -> ignore (G.extension_suffix g ~k:2));
  Alcotest.check_raises "stitch on chain"
    (Invalid_argument "Gadget.stitch_edge: not a cyclic graph") (fun () ->
      ignore (G.stitch_edge g))

let describe_smoke () =
  let g = G.cyclic ~n:2 ~m:3 () in
  let s = G.describe g in
  check_bool "mentions size" true (String.length s > 10)

(* Random gadget parameters preserve every structural invariant. *)
let prop_gadget_structure =
  QCheck.Test.make ~name:"random gadget parameters keep structure sound"
    ~count:100
    (QCheck.triple (QCheck.int_range 1 10) (QCheck.int_range 1 10)
       (QCheck.int_range 1 6))
    (fun (n, f_len_raw, m) ->
      let f_len = 1 + (f_len_raw mod n) in
      let g = G.chain ~f_len ~n ~m () in
      D.n_edges g.graph = m + 1 + (m * (n + f_len))
      && D.n_nodes g.graph = (2 * (m + 1)) + (m * (n - 1)) + (m * (f_len - 1))
      && D.is_dag g.graph
      && (let ok = ref true in
          for k = 1 to m do
            if not (D.route_is_simple g.graph (G.ingress_remaining g ~k)) then
              ok := false;
            for i = 1 to n do
              if not (D.route_is_simple g.graph (G.e_remaining g ~k ~i)) then
                ok := false
            done
          done;
          !ok))

let () =
  Alcotest.run "aqt_gadget"
    [
      ( "structure",
        [
          Alcotest.test_case "node/edge counts" `Quick structure_counts;
          Alcotest.test_case "asymmetric f_len" `Quick asymmetric_f_len;
          Alcotest.test_case "figure 3.1" `Quick figure_3_1;
          Alcotest.test_case "figure 3.2" `Quick figure_3_2;
        ] );
      ( "routes",
        [
          Alcotest.test_case "all simple paths" `Quick routes_are_simple_paths;
          Alcotest.test_case "contents" `Quick route_contents;
          Alcotest.test_case "gadget edges" `Quick gadget_edges_cover;
        ] );
      ( "errors",
        [
          Alcotest.test_case "rejections" `Quick rejections;
          Alcotest.test_case "describe" `Quick describe_smoke;
          QCheck_alcotest.to_alcotest prop_gadget_structure;
        ] );
    ]
