(* Tests for the queuing policies: each policy's forwarding choice on crafted
   buffer contents, plus the classification flags the paper's theorems key on. *)

module B = Aqt_graph.Build
module N = Aqt_engine.Network
module Packet = Aqt_engine.Packet
module Policies = Aqt_policy.Policies

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let inj tag route : N.injection = { route; tag }

let head_tag net e =
  match N.buffer_packets net e with
  | p :: _ -> p.Packet.tag
  | [] -> Alcotest.fail "empty contested buffer"

(* Scenario A: two packets injected into the same buffer in one step, "first"
   then "second" in list order (arrival sequence).  Distinguishes policies
   keyed on arrival order within a step. *)
let same_step_heads policy =
  let l = B.line 4 in
  let net = N.create ~graph:l.graph ~policy () in
  N.step net
    [ inj "first" (Array.sub l.edges 1 1); inj "second" (Array.sub l.edges 1 1) ];
  head_tag net l.edges.(1)

(* Scenario B: a transit packet (injected at step 1, one edge traversed) and a
   fresh injection meet at e1 in step 2.  Distinguishes injection-time and
   source-distance policies. *)
let transit_vs_fresh_heads policy =
  let l = B.line 4 in
  let net = N.create ~graph:l.graph ~policy () in
  N.step net [ inj "transit" (Array.sub l.edges 0 2) ];
  N.step net [ inj "fresh" (Array.sub l.edges 1 1) ];
  check_int "both at e1" 2 (N.buffer_len net l.edges.(1));
  head_tag net l.edges.(1)

(* Scenario C: long route vs short route injected together.  Distinguishes
   remaining-distance policies. *)
let long_vs_short_heads policy =
  let l = B.line 4 in
  let net = N.create ~graph:l.graph ~policy () in
  N.step net
    [ inj "long" (Array.sub l.edges 1 3); inj "short" (Array.sub l.edges 1 1) ];
  head_tag net l.edges.(1)

let fifo_arrival_order () =
  check_string "fifo same-step" "first" (same_step_heads Policies.fifo);
  check_string "fifo transit first" "transit"
    (transit_vs_fresh_heads Policies.fifo)

let lifo_reverses () =
  check_string "lifo same-step" "second" (same_step_heads Policies.lifo);
  check_string "lifo fresh first" "fresh"
    (transit_vs_fresh_heads Policies.lifo)

let lis_oldest_injection () =
  check_string "lis picks older packet" "transit"
    (transit_vs_fresh_heads Policies.lis)

let nis_newest_injection () =
  check_string "nis picks newer packet" "fresh"
    (transit_vs_fresh_heads Policies.nis)

let ftg_longest_remaining () =
  check_string "ftg picks long route" "long" (long_vs_short_heads Policies.ftg)

let ntg_shortest_remaining () =
  check_string "ntg picks short route" "short"
    (long_vs_short_heads Policies.ntg)

let ffs_furthest_from_source () =
  check_string "ffs picks traversed packet" "transit"
    (transit_vs_fresh_heads Policies.ffs)

let nts_nearest_to_source () =
  check_string "nts picks fresh packet" "fresh"
    (transit_vs_fresh_heads Policies.nts)

(* FIFO order must persist across multiple steps of drain. *)
let fifo_drains_in_order () =
  let l = B.line 1 in
  let net = N.create ~graph:l.graph ~policy:Policies.fifo () in
  N.step net (List.init 5 (fun i -> inj (string_of_int i) l.edges));
  let order = ref [] in
  for _ = 1 to 5 do
    (match N.buffer_packets net l.edges.(0) with
    | p :: _ -> order := p.Packet.tag :: !order
    | [] -> ());
    N.step net []
  done;
  check_bool "drained in arrival order" true
    (List.rev !order = [ "0"; "1"; "2"; "3"; "4" ])

let flags () =
  let open Policies in
  check_bool "fifo time-priority" true fifo.time_priority;
  check_bool "lis time-priority" true lis.time_priority;
  check_bool "lifo not time-priority" false lifo.time_priority;
  check_bool "ntg not time-priority" false ntg.time_priority;
  check_bool "fifo historic" true fifo.historic;
  check_bool "lifo historic" true lifo.historic;
  check_bool "lis historic" true lis.historic;
  check_bool "nis historic" true nis.historic;
  check_bool "ffs historic" true ffs.historic;
  check_bool "nts historic" true nts.historic;
  check_bool "ftg not historic" false ftg.historic;
  check_bool "ntg not historic" false ntg.historic

let by_name_lookup () =
  check_string "fifo" "fifo" (Policies.by_name "FIFO").name;
  check_string "sis alias" "sis" (Policies.by_name "sis").name;
  check_int "eight deterministic policies" 8
    (List.length Policies.all_deterministic);
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Policies.by_name "wfq"))

let sis_equals_nis () =
  check_string "same choice" (transit_vs_fresh_heads Policies.nis)
    (transit_vs_fresh_heads Policies.sis)

let random_policy_greedy_deterministic () =
  let run seed =
    let l = B.line 2 in
    let net = N.create ~graph:l.graph ~policy:(Policies.random ~seed) () in
    for t = 1 to 30 do
      N.step net (if t <= 10 then [ inj "x" l.edges ] else [])
    done;
    (N.absorbed net, N.max_queue_ever net)
  in
  let a1 = run 1 and a1' = run 1 in
  check_bool "deterministic given seed" true (a1 = a1');
  check_int "greedy: everything delivered" 10 (fst a1)

(* Work conservation holds for every policy: a single always-loaded edge
   forwards exactly one packet per step. *)
let work_conservation () =
  List.iter
    (fun policy ->
      let l = B.line 1 in
      let net = N.create ~graph:l.graph ~policy () in
      for _ = 1 to 20 do
        N.step net [ inj "w" l.edges ]
      done;
      (* First send happens at step 2: 19 sends over 20 steps. *)
      check_int
        ("work conserving: " ^ policy.Aqt_engine.Policy_type.name)
        19 (N.absorbed net))
    Policies.all_deterministic

(* Whatever the policy, total throughput is identical on a fixed workload —
   greedy policies differ only in who waits. *)
let prop_policies_agree_on_throughput =
  QCheck.Test.make ~name:"all policies deliver the same packet count"
    ~count:30
    (QCheck.int_range 0 1000)
    (fun seed ->
      let totals =
        List.map
          (fun policy ->
            let prng = Aqt_util.Prng.create seed in
            let l = B.line 3 in
            let net = N.create ~graph:l.graph ~policy () in
            for _ = 1 to 80 do
              let k = Aqt_util.Prng.int prng 3 in
              N.step net
                (List.init k (fun _ ->
                     let len = 1 + Aqt_util.Prng.int prng 3 in
                     inj "p" (Array.sub l.edges 0 len)))
            done;
            for _ = 1 to 200 do
              N.step net []
            done;
            N.absorbed net)
          Policies.all_deterministic
      in
      match totals with
      | [] -> true
      | x :: rest -> List.for_all (Int.equal x) rest)

(* The deque fast path for FIFO/LIFO is observationally equivalent to the
   generic heap with the same ordering key: run identical random workloads
   through both representations and require identical traces. *)
let heap_variant (p : Policies.t) =
  { p with name = p.name ^ "-heap"; discipline = Aqt_engine.Policy_type.By_key }

let lifo_heap : Policies.t =
  (* LIFO as a pure key policy: newest arrival first. *)
  {
    Policies.lifo with
    name = "lifo-heap";
    discipline = Aqt_engine.Policy_type.By_key;
  }

let prop_buffer_representations_equivalent =
  QCheck.Test.make ~name:"deque and heap buffers are observationally equal"
    ~count:60
    (QCheck.pair QCheck.bool (QCheck.int_range 0 10_000))
    (fun (use_lifo, seed) ->
      let fast, slow =
        if use_lifo then (Policies.lifo, lifo_heap)
        else (Policies.fifo, heap_variant Policies.fifo)
      in
      let run policy =
        let prng = Aqt_util.Prng.create seed in
        let l = B.line 4 in
        let tr = Aqt_engine.Trace.create () in
        let net =
          N.create ~tracer:(Aqt_engine.Trace.handler tr) ~graph:l.graph
            ~policy ()
        in
        for _ = 1 to 120 do
          let k = Aqt_util.Prng.int prng 3 in
          N.step net
            (List.init k (fun _ ->
                 let len = 1 + Aqt_util.Prng.int prng 4 in
                 inj "p" (Array.sub l.edges 0 len)))
        done;
        Aqt_engine.Trace.events tr
      in
      run fast = run slow)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "aqt_policy"
    [
      ( "ordering",
        [
          Alcotest.test_case "fifo" `Quick fifo_arrival_order;
          Alcotest.test_case "lifo" `Quick lifo_reverses;
          Alcotest.test_case "lis" `Quick lis_oldest_injection;
          Alcotest.test_case "nis" `Quick nis_newest_injection;
          Alcotest.test_case "ftg" `Quick ftg_longest_remaining;
          Alcotest.test_case "ntg" `Quick ntg_shortest_remaining;
          Alcotest.test_case "ffs" `Quick ffs_furthest_from_source;
          Alcotest.test_case "nts" `Quick nts_nearest_to_source;
          Alcotest.test_case "fifo drain order" `Quick fifo_drains_in_order;
          Alcotest.test_case "sis = nis" `Quick sis_equals_nis;
        ] );
      ( "classification",
        [
          Alcotest.test_case "flags" `Quick flags;
          Alcotest.test_case "by_name" `Quick by_name_lookup;
        ] );
      ( "greediness",
        [
          Alcotest.test_case "random policy" `Quick
            random_policy_greedy_deterministic;
          Alcotest.test_case "work conservation" `Quick work_conservation;
          q prop_policies_agree_on_throughput;
          q prop_buffer_representations_equivalent;
        ] );
    ]
