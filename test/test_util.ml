(* Unit and property tests for the aqt_util substrate. *)

module Ratio = Aqt_util.Ratio
module Dyn = Aqt_util.Dynarray_compat
module Heap = Aqt_util.Binheap
module Prng = Aqt_util.Prng
module Tbl = Aqt_util.Tbl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Ratio                                                               *)
(* ------------------------------------------------------------------ *)

let ratio_normalization () =
  let r = Ratio.make 6 4 in
  check_int "num" 3 (Ratio.num r);
  check_int "den" 2 (Ratio.den r);
  let r = Ratio.make (-6) 4 in
  check_int "neg num" (-3) (Ratio.num r);
  check_int "neg den" 2 (Ratio.den r);
  let r = Ratio.make 6 (-4) in
  check_int "den sign moves" (-3) (Ratio.num r);
  check_int "den positive" 2 (Ratio.den r);
  let r = Ratio.make 0 (-7) in
  check_int "zero num" 0 (Ratio.num r);
  check_int "zero den" 1 (Ratio.den r)

let ratio_zero_den () =
  Alcotest.check_raises "zero denominator"
    (Invalid_argument "Ratio.make: zero denominator") (fun () ->
      ignore (Ratio.make 1 0))

let ratio_arith () =
  let a = Ratio.make 1 2 and b = Ratio.make 1 3 in
  check_bool "add" true Ratio.(equal (add a b) (make 5 6));
  check_bool "sub" true Ratio.(equal (sub a b) (make 1 6));
  check_bool "mul" true Ratio.(equal (mul a b) (make 1 6));
  check_bool "div" true Ratio.(equal (div a b) (make 3 2));
  check_bool "neg" true Ratio.(equal (neg a) (make (-1) 2));
  check_bool "inv" true Ratio.(equal (inv (make 2 5)) (make 5 2));
  check_bool "mul_int" true Ratio.(equal (mul_int b 6) (of_int 2))

let ratio_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Ratio.div Ratio.one Ratio.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Ratio.inv Ratio.zero))

let ratio_floor_ceil () =
  check_int "floor 7/2" 3 (Ratio.floor (Ratio.make 7 2));
  check_int "ceil 7/2" 4 (Ratio.ceil (Ratio.make 7 2));
  check_int "floor -7/2" (-4) (Ratio.floor (Ratio.make (-7) 2));
  check_int "ceil -7/2" (-3) (Ratio.ceil (Ratio.make (-7) 2));
  check_int "floor integer" 5 (Ratio.floor (Ratio.of_int 5));
  check_int "ceil integer" 5 (Ratio.ceil (Ratio.of_int 5));
  check_int "floor_mul 3/5 * 7" 4 (Ratio.floor_mul (Ratio.make 3 5) 7);
  check_int "ceil_mul 3/5 * 7" 5 (Ratio.ceil_mul (Ratio.make 3 5) 7);
  check_int "floor_mul exact" 3 (Ratio.floor_mul (Ratio.make 3 5) 5);
  check_int "ceil_mul exact" 3 (Ratio.ceil_mul (Ratio.make 3 5) 5)

let ratio_compare () =
  check_bool "lt" true Ratio.(make 1 3 < make 1 2);
  check_bool "le eq" true Ratio.(make 2 4 <= make 1 2);
  check_bool "gt" true Ratio.(make 2 3 > make 1 2);
  check_bool "min" true Ratio.(equal (min (make 1 3) (make 1 2)) (make 1 3));
  check_bool "max" true Ratio.(equal (max (make 1 3) (make 1 2)) (make 1 2))

let ratio_of_float () =
  check_bool "1/3" true
    Ratio.(equal (of_float_approx (1.0 /. 3.0)) (make 1 3));
  check_bool "0.75" true Ratio.(equal (of_float_approx 0.75) (make 3 4));
  check_bool "negative" true
    Ratio.(equal (of_float_approx (-0.5)) (make (-1) 2));
  check_bool "integer" true Ratio.(equal (of_float_approx 4.0) (of_int 4))

let ratio_to_string () =
  check_string "fraction" "3/7" (Ratio.to_string (Ratio.make 3 7));
  check_string "integer" "2" (Ratio.to_string (Ratio.of_int 2))

let small_ratio =
  QCheck.map
    (fun (p, q) -> Ratio.make p q)
    (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range 1 50))

let prop_ratio_add_commutes =
  QCheck.Test.make ~name:"ratio add commutes" ~count:500
    (QCheck.pair small_ratio small_ratio) (fun (a, b) ->
      Ratio.(equal (add a b) (add b a)))

let prop_ratio_mul_assoc =
  QCheck.Test.make ~name:"ratio mul associates" ~count:500
    (QCheck.triple small_ratio small_ratio small_ratio) (fun (a, b, c) ->
      Ratio.(equal (mul (mul a b) c) (mul a (mul b c))))

let prop_ratio_floor_mul =
  QCheck.Test.make ~name:"floor_mul matches floor of product" ~count:500
    (QCheck.pair small_ratio (QCheck.int_range 0 100)) (fun (r, k) ->
      Ratio.floor_mul r k = Ratio.floor (Ratio.mul_int r k))

let prop_ratio_floor_ceil_adjacent =
  QCheck.Test.make ~name:"ceil - floor is 0 or 1" ~count:500 small_ratio
    (fun r ->
      let d = Ratio.ceil r - Ratio.floor r in
      d = 0 || d = 1)

(* ------------------------------------------------------------------ *)
(* Dynarray_compat                                                     *)
(* ------------------------------------------------------------------ *)

let dyn_basics () =
  let d = Dyn.create () in
  check_bool "fresh empty" true (Dyn.is_empty d);
  for i = 0 to 99 do
    Dyn.push d i
  done;
  check_int "length" 100 (Dyn.length d);
  check_int "get 57" 57 (Dyn.get d 57);
  Dyn.set d 57 (-1);
  check_int "set/get" (-1) (Dyn.get d 57);
  check_int "last" 99 (Dyn.last d);
  check_int "pop" 99 (Dyn.pop d);
  check_int "length after pop" 99 (Dyn.length d);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Dynarray_compat.get") (fun () -> ignore (Dyn.get d 99))

let dyn_swap_remove () =
  let d = Dyn.of_list [ 10; 20; 30; 40 ] in
  let removed = Dyn.swap_remove d 1 in
  check_int "removed" 20 removed;
  check_int "length" 3 (Dyn.length d);
  check_bool "40 moved into slot" true (Dyn.get d 1 = 40)

let dyn_iter_fold () =
  let d = Dyn.of_list [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Dyn.fold_left ( + ) 0 d);
  let acc = ref [] in
  Dyn.iteri (fun i x -> acc := (i, x) :: !acc) d;
  check_int "iteri count" 4 (List.length !acc);
  check_bool "exists" true (Dyn.exists (fun x -> x = 3) d);
  check_bool "for_all" true (Dyn.for_all (fun x -> x > 0) d);
  check_bool "to_list" true (Dyn.to_list d = [ 1; 2; 3; 4 ]);
  Dyn.clear d;
  check_int "cleared" 0 (Dyn.length d)

let prop_dyn_model =
  QCheck.Test.make ~name:"dynarray behaves like a list" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let d = Dyn.create () in
      List.iter (Dyn.push d) xs;
      Dyn.to_list d = xs && Dyn.length d = List.length xs)

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

module Dq = Aqt_util.Deque

let deque_basics () =
  let d = Dq.create () in
  check_bool "empty" true (Dq.is_empty d);
  Dq.push_back d 1;
  Dq.push_back d 2;
  Dq.push_front d 0;
  check_int "length" 3 (Dq.length d);
  check_bool "order" true (Dq.to_list d = [ 0; 1; 2 ]);
  check_int "peek front" 0 (Dq.peek_front d);
  check_int "peek back" 2 (Dq.peek_back d);
  check_int "get" 1 (Dq.get d 1);
  check_int "pop front" 0 (Dq.pop_front d);
  check_int "pop back" 2 (Dq.pop_back d);
  check_int "pop last" 1 (Dq.pop_front d);
  Alcotest.check_raises "empty pop" Not_found (fun () ->
      ignore (Dq.pop_front d))

let deque_wraparound () =
  (* Force the head to travel around the ring several times. *)
  let d = Dq.create () in
  for i = 0 to 4 do
    Dq.push_back d i
  done;
  for round = 0 to 99 do
    let x = Dq.pop_front d in
    Dq.push_back d (x + 1000);
    if round mod 7 = 0 then begin
      Dq.push_front d (-round);
      ignore (Dq.pop_back d)
    end
  done;
  check_int "stable size" 5 (Dq.length d);
  check_int "iter count" 5
    (let n = ref 0 in
     Dq.iter (fun _ -> incr n) d;
     !n)

let deque_option_variants () =
  let d = Dq.create () in
  check_bool "pop_front_opt empty" true (Dq.pop_front_opt d = None);
  check_bool "pop_back_opt empty" true (Dq.pop_back_opt d = None);
  check_bool "peek_front_opt empty" true (Dq.peek_front_opt d = None);
  check_bool "peek_back_opt empty" true (Dq.peek_back_opt d = None);
  Dq.push_back d 1;
  Dq.push_back d 2;
  check_bool "peek_front_opt" true (Dq.peek_front_opt d = Some 1);
  check_bool "peek_back_opt" true (Dq.peek_back_opt d = Some 2);
  check_bool "pop_front_opt" true (Dq.pop_front_opt d = Some 1);
  check_bool "pop_back_opt" true (Dq.pop_back_opt d = Some 2);
  check_bool "drained" true (Dq.pop_front_opt d = None)

(* Model check against two stdlib lists (front/back). *)
let prop_deque_model =
  QCheck.Test.make ~name:"deque behaves like a functional sequence" ~count:300
    QCheck.(list (pair (int_range 0 3) small_int))
    (fun ops ->
      let d = Dq.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
              Dq.push_back d v;
              model := !model @ [ v ]
          | 1 ->
              Dq.push_front d v;
              model := v :: !model
          | 2 -> (
              match !model with
              | [] -> (
                  try
                    ignore (Dq.pop_front d);
                    ok := false
                  with Not_found -> ())
              | x :: rest ->
                  model := rest;
                  if Dq.pop_front d <> x then ok := false)
          | _ -> (
              match List.rev !model with
              | [] -> (
                  try
                    ignore (Dq.pop_back d);
                    ok := false
                  with Not_found -> ())
              | x :: rest ->
                  model := List.rev rest;
                  if Dq.pop_back d <> x then ok := false))
        ops;
      !ok && Dq.to_list d = !model)

(* ------------------------------------------------------------------ *)
(* Binheap                                                             *)
(* ------------------------------------------------------------------ *)

let heap_order () =
  let h = Heap.create () in
  Heap.add h ~key:3 ~tie:0 "c";
  Heap.add h ~key:1 ~tie:0 "a";
  Heap.add h ~key:2 ~tie:0 "b";
  check_string "min" "a" (Heap.min_elt h);
  check_string "pop1" "a" (Heap.pop_min h);
  check_string "pop2" "b" (Heap.pop_min h);
  check_string "pop3" "c" (Heap.pop_min h);
  Alcotest.check_raises "empty pop" Not_found (fun () ->
      ignore (Heap.pop_min h))

let heap_option_variants () =
  let h = Heap.create () in
  check_bool "min_elt_opt empty" true (Heap.min_elt_opt h = None);
  check_bool "pop_min_opt empty" true (Heap.pop_min_opt h = None);
  Heap.add h ~key:2 ~tie:0 "b";
  Heap.add h ~key:1 ~tie:0 "a";
  check_bool "min_elt_opt" true (Heap.min_elt_opt h = Some "a");
  check_bool "pop_min_opt" true (Heap.pop_min_opt h = Some "a");
  check_bool "pop_min_opt next" true (Heap.pop_min_opt h = Some "b");
  check_bool "drained" true (Heap.pop_min_opt h = None)

let heap_tie_stability () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.add h ~key:7 ~tie:i i
  done;
  let popped = List.init 10 (fun _ -> Heap.pop_min h) in
  check_bool "ties pop in insertion order" true
    (popped = List.init 10 Fun.id)

let prop_heap_sorted_view =
  QCheck.Test.make ~name:"to_sorted_list equals drain order" ~count:200
    QCheck.(list small_int)
    (fun ks ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.add h ~key:k ~tie:i (k, i)) ks;
      let view = Heap.to_sorted_list h in
      let popped = List.init (List.length ks) (fun _ -> Heap.pop_min h) in
      view = popped)

let prop_heap_matches_sort =
  QCheck.Test.make ~name:"heap order equals stable sort by key" ~count:200
    QCheck.(list small_int)
    (fun ks ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.add h ~key:k ~tie:i (k, i)) ks;
      let popped = List.init (List.length ks) (fun _ -> Heap.pop_min h) in
      let expected =
        List.stable_sort compare (List.mapi (fun i k -> (k, i)) ks)
      in
      popped = expected)

(* ------------------------------------------------------------------ *)
(* Histo                                                               *)
(* ------------------------------------------------------------------ *)

module Histo = Aqt_util.Histo

let histo_basics () =
  let h = Histo.create () in
  check_int "empty count" 0 (Histo.count h);
  check_int "empty percentile" 0 (Histo.percentile h 0.5);
  List.iter (Histo.record h) [ 0; 1; 1; 3; 6; 100 ];
  check_int "count" 6 (Histo.count h);
  check_int "max" 100 (Histo.max_value h);
  check_int "p100 = max" 100 (Histo.percentile h 1.0);
  (* p50: third sample in sorted order is 1. *)
  check_int "p50 upper bound" 1 (Histo.percentile h 0.5);
  check_int "buckets" 5 (List.length (Histo.buckets h));
  Alcotest.check_raises "negative"
    (Invalid_argument "Histo.record: negative value") (fun () ->
      Histo.record h (-1))

let prop_histo_percentile_upper_bound =
  QCheck.Test.make ~name:"percentile upper-bounds the exact quantile"
    ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (int_range 0 500))
              (int_range 0 100))
    (fun (xs, pi) ->
      let p = float_of_int pi /. 100.0 in
      let h = Histo.create () in
      List.iter (Histo.record h) xs;
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let idx = max 0 (int_of_float (Float.ceil (p *. float_of_int n)) - 1) in
      let exact = List.nth sorted idx in
      let est = Histo.percentile h p in
      est >= exact && est <= Histo.max_value h)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  check_bool "same seed same stream" true (xs = ys);
  let c = Prng.create 43 in
  let zs = List.init 20 (fun _ -> Prng.int c 1000) in
  check_bool "different seed different stream" false (xs = zs)

let prng_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "nonpositive bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int p 0))

let prng_bernoulli_mean () =
  let p = Prng.create 11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli p ~num:3 ~den:10 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  check_bool "mean near 0.3" true (abs_float (mean -. 0.3) < 0.02)

let prng_shuffle_permutes () =
  let p = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "permutation" true (sorted = Array.init 50 Fun.id)

let prng_split_independent () =
  let p = Prng.create 9 in
  let q = Prng.split p in
  let xs = List.init 10 (fun _ -> Prng.int p 1000) in
  let ys = List.init 10 (fun _ -> Prng.int q 1000) in
  check_bool "split streams differ" false (xs = ys)

(* ------------------------------------------------------------------ *)
(* Parallel                                                            *)
(* ------------------------------------------------------------------ *)

module Par = Aqt_util.Parallel

let parallel_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  check_bool "2 workers" true (Par.map ~workers:2 f xs = List.map f xs);
  check_bool "5 workers" true (Par.map ~workers:5 f xs = List.map f xs);
  check_bool "1 worker" true (Par.map ~workers:1 f xs = List.map f xs);
  check_bool "empty" true (Par.map ~workers:3 f [] = []);
  check_bool "singleton" true (Par.map ~workers:3 f [ 7 ] = [ 50 ])

let parallel_propagates_exceptions () =
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Par.map ~workers:3
           (fun x -> if x = 42 then failwith "boom" else x)
           (List.init 100 Fun.id)))

exception Deep of int

(* The first failure's backtrace must survive the trip across the worker
   domain: Parallel.map captures the raw backtrace at the raise site and
   re-raises with [Printexc.raise_with_backtrace], so the caller's
   [get_raw_backtrace] still points into the worker's stack. *)
let parallel_preserves_backtraces () =
  Printexc.record_backtrace true;
  let rec burrow n = if n = 0 then raise (Deep 42) else 1 + burrow (n - 1) in
  match
    Par.map ~workers:2
      (fun x ->
        Printexc.record_backtrace true;
        if x = 7 then burrow 5 else x)
      (List.init 16 Fun.id)
  with
  | _ -> Alcotest.fail "expected Deep to propagate"
  | exception Deep 42 ->
      let bt = Printexc.get_raw_backtrace () in
      check_bool "backtrace non-empty" true
        (Printexc.raw_backtrace_length bt > 0)
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let parallel_rejects_bad_workers () =
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Parallel.map: workers must be >= 1") (fun () ->
      ignore (Par.map ~workers:0 Fun.id [ 1 ]))

(* Independent simulations give identical results under domains. *)
let parallel_simulations_deterministic () =
  let run seed =
    let prng = Prng.create seed in
    let total = ref 0 in
    for _ = 1 to 1000 do
      total := !total + Prng.int prng 100
    done;
    !total
  in
  let seeds = List.init 8 Fun.id in
  check_bool "domain isolation" true
    (Par.map ~workers:4 run seeds = List.map run seeds)

let parallel_chunked_matches () =
  let xs = List.init 97 Fun.id in
  let f x = (3 * x) - 1 in
  check_bool "chunk 8" true (Par.map ~workers:3 ~chunk:8 f xs = List.map f xs);
  check_bool "chunk > n" true
    (Par.map ~workers:3 ~chunk:1000 f xs = List.map f xs);
  Alcotest.check_raises "chunk >= 1"
    (Invalid_argument "Parallel.map: chunk must be >= 1") (fun () ->
      ignore (Par.map ~chunk:0 Fun.id [ 1 ]))

let parallel_progress_callback () =
  (* Each completed count in 1..n is reported exactly once, in any order. *)
  let n = 50 in
  let seen = Array.make (n + 1) 0 in
  let mu = Mutex.create () in
  let on_done k =
    Mutex.lock mu;
    seen.(k) <- seen.(k) + 1;
    Mutex.unlock mu
  in
  ignore (Par.map ~workers:4 ~on_done Fun.id (List.init n Fun.id));
  check_bool "each count once" true
    (Array.for_all (fun c -> c = 1) (Array.sub seen 1 n));
  (* Sequential path reports too. *)
  let calls = ref [] in
  ignore
    (Par.map ~workers:1 ~on_done:(fun k -> calls := k :: !calls) Fun.id
       [ 10; 20; 30 ]);
  check_bool "sequential progress" true (List.rev !calls = [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Tbl / Csv / Ascii_plot                                              *)
(* ------------------------------------------------------------------ *)

let tbl_render () =
  let t = Tbl.create ~headers:[ "name"; "value" ] in
  Tbl.add_row t [ "alpha"; "1" ];
  Tbl.add_row t [ "b"; "22" ];
  let out = Tbl.render t in
  check_bool "mentions header" true
    (String.length out > 0
    && String.sub out 0 4 = "name");
  Alcotest.check_raises "row width"
    (Invalid_argument "Tbl.add_row: expected 2 cells, got 1") (fun () ->
      Tbl.add_row t [ "only" ])

let tbl_format_helpers () =
  check_string "fi" "42" (Tbl.fi 42);
  check_string "ff" "3.142" (Tbl.ff 3.14159);
  check_string "ff dec" "3.1" (Tbl.ff ~dec:1 3.14159);
  check_string "fb" "yes" (Tbl.fb true);
  check_string "fr" "1/2" (Tbl.fr Ratio.half)

let csv_quoting () =
  let buf = Buffer.create 64 in
  let c = Aqt_util.Csv_out.to_buffer buf in
  Aqt_util.Csv_out.write_row c [ "plain"; "with,comma"; "with\"quote" ];
  check_string "rfc4180" "plain,\"with,comma\",\"with\"\"quote\"\n"
    (Buffer.contents buf)

let csv_quote_field () =
  let q = Aqt_util.Csv_out.quote in
  check_string "plain untouched" "abc" (q "abc");
  check_string "empty untouched" "" (q "");
  check_string "comma" "\"a,b\"" (q "a,b");
  check_string "quote doubled" "\"a\"\"b\"" (q "a\"b");
  check_string "newline" "\"a\nb\"" (q "a\nb");
  check_string "cr" "\"a\rb\"" (q "a\rb")

(* ------------------------------------------------------------------ *)
(* Prng.stream                                                         *)
(* ------------------------------------------------------------------ *)

let prng_stream_decorrelated () =
  let p = Prng.create 123 in
  let take g = List.init 16 (fun _ -> Prng.int g 1_000_000) in
  let a = take (Prng.stream p 0) in
  let b = take (Prng.stream p 1) in
  let c = take (Prng.stream p 2) in
  check_bool "streams 0/1 differ" false (a = b);
  check_bool "streams 1/2 differ" false (b = c);
  check_bool "streams 0/2 differ" false (a = c)

let prng_stream_pure () =
  let p = Prng.create 7 in
  let mirror = Prng.copy p in
  let s = Prng.stream p 4 in
  ignore (List.init 8 (fun _ -> Prng.bits64 s));
  let after = List.init 8 (fun _ -> Prng.bits64 p) in
  let expected = List.init 8 (fun _ -> Prng.bits64 mirror) in
  check_bool "jump does not advance the parent" true (after = expected)

let prng_stream_reproducible () =
  (* Pure in (state, index): any worker start order yields the same
     per-worker sequences. *)
  let take g = List.init 16 (fun _ -> Prng.bits64 g) in
  let a = take (Prng.stream (Prng.create 99) 17) in
  let b = take (Prng.stream (Prng.create 99) 17) in
  check_bool "same (seed, index), same stream" true (a = b)

let prng_stream_negative () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.stream: index must be >= 0") (fun () ->
      ignore (Prng.stream (Prng.create 1) (-1)))

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)
(* ------------------------------------------------------------------ *)

module Jsonx = Aqt_util.Jsonx

let jsonx_parse_basics () =
  check_bool "null" true (Jsonx.of_string " null " = Jsonx.Null);
  check_bool "int" true (Jsonx.of_string "-42" = Jsonx.Int (-42));
  check_bool "float" true (Jsonx.of_string "2.5" = Jsonx.Float 2.5);
  check_bool "escapes" true
    (Jsonx.of_string {|"a\nbA"|} = Jsonx.Str "a\nbA");
  check_bool "nested" true
    (Jsonx.of_string {|{"k":[1,true,"s"],"m":{}}|}
    = Jsonx.Obj
        [ ("k", Jsonx.List [ Jsonx.Int 1; Jsonx.Bool true; Jsonx.Str "s" ]);
          ("m", Jsonx.Obj []) ])

let jsonx_parse_rejects () =
  let bad s =
    match Jsonx.of_string s with
    | _ -> Alcotest.failf "accepted %S" s
    | exception Failure _ -> ()
  in
  List.iter bad
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{1:2}" ]

let jsonx_value_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Jsonx.Null;
        map (fun b -> Jsonx.Bool b) bool;
        map (fun i -> Jsonx.Int i) (int_range (-1_000_000) 1_000_000);
        (* Multiples of 1/64 are binary-exact, so equality is meaningful;
           non-finite floats are excluded (they serialize as null). *)
        map
          (fun i -> Jsonx.Float (float_of_int i /. 64.))
          (int_range (-1_000_000) 1_000_000);
        map (fun s -> Jsonx.Str s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let key = string_size ~gen:printable (int_bound 8) in
  sized
    (fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 1,
                 map
                   (fun l -> Jsonx.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Jsonx.Obj kvs)
                   (list_size (int_bound 4) (pair key (self (n / 2)))) );
             ]))

let prop_jsonx_roundtrip =
  QCheck.Test.make ~count:500 ~name:"jsonx decode (encode v) = v"
    (QCheck.make ~print:Jsonx.to_string jsonx_value_gen) (fun v ->
      Jsonx.of_string (Jsonx.to_string v) = v)

let ascii_plot_smoke () =
  let plot = Aqt_util.Ascii_plot.create ~title:"t" () in
  Aqt_util.Ascii_plot.add_series plot ~glyph:'*'
    (Array.init 10 (fun i -> (float_of_int i, float_of_int (i * i))));
  let s = Aqt_util.Ascii_plot.render plot in
  check_bool "nonempty" true (String.length s > 100);
  check_bool "contains glyph" true (String.contains s '*')

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "aqt_util"
    [
      ( "ratio",
        [
          Alcotest.test_case "normalization" `Quick ratio_normalization;
          Alcotest.test_case "zero denominator" `Quick ratio_zero_den;
          Alcotest.test_case "arithmetic" `Quick ratio_arith;
          Alcotest.test_case "division by zero" `Quick ratio_div_by_zero;
          Alcotest.test_case "floor/ceil" `Quick ratio_floor_ceil;
          Alcotest.test_case "comparisons" `Quick ratio_compare;
          Alcotest.test_case "of_float_approx" `Quick ratio_of_float;
          Alcotest.test_case "to_string" `Quick ratio_to_string;
          q prop_ratio_add_commutes;
          q prop_ratio_mul_assoc;
          q prop_ratio_floor_mul;
          q prop_ratio_floor_ceil_adjacent;
        ] );
      ( "dynarray",
        [
          Alcotest.test_case "basics" `Quick dyn_basics;
          Alcotest.test_case "swap_remove" `Quick dyn_swap_remove;
          Alcotest.test_case "iterators" `Quick dyn_iter_fold;
          q prop_dyn_model;
        ] );
      ( "deque",
        [
          Alcotest.test_case "basics" `Quick deque_basics;
          Alcotest.test_case "wraparound" `Quick deque_wraparound;
          Alcotest.test_case "option variants" `Quick deque_option_variants;
          q prop_deque_model;
        ] );
      ( "binheap",
        [
          Alcotest.test_case "order" `Quick heap_order;
          Alcotest.test_case "option variants" `Quick heap_option_variants;
          Alcotest.test_case "tie stability" `Quick heap_tie_stability;
          q prop_heap_sorted_view;
          q prop_heap_matches_sort;
        ] );
      ( "histo",
        [
          Alcotest.test_case "basics" `Quick histo_basics;
          q prop_histo_percentile_upper_bound;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick prng_deterministic;
          Alcotest.test_case "bounds" `Quick prng_bounds;
          Alcotest.test_case "bernoulli mean" `Quick prng_bernoulli_mean;
          Alcotest.test_case "shuffle permutes" `Quick prng_shuffle_permutes;
          Alcotest.test_case "split independence" `Quick prng_split_independent;
          Alcotest.test_case "stream decorrelation" `Quick
            prng_stream_decorrelated;
          Alcotest.test_case "stream is a jump" `Quick prng_stream_pure;
          Alcotest.test_case "stream reproducible" `Quick
            prng_stream_reproducible;
          Alcotest.test_case "stream negative index" `Quick
            prng_stream_negative;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "parse basics" `Quick jsonx_parse_basics;
          Alcotest.test_case "parse rejects" `Quick jsonx_parse_rejects;
          q prop_jsonx_roundtrip;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick
            parallel_matches_sequential;
          Alcotest.test_case "exception propagation" `Quick
            parallel_propagates_exceptions;
          Alcotest.test_case "backtrace preservation" `Quick
            parallel_preserves_backtraces;
          Alcotest.test_case "bad workers" `Quick parallel_rejects_bad_workers;
          Alcotest.test_case "simulation isolation" `Quick
            parallel_simulations_deterministic;
          Alcotest.test_case "chunked claiming" `Quick parallel_chunked_matches;
          Alcotest.test_case "progress callback" `Quick
            parallel_progress_callback;
        ] );
      ( "output",
        [
          Alcotest.test_case "table render" `Quick tbl_render;
          Alcotest.test_case "format helpers" `Quick tbl_format_helpers;
          Alcotest.test_case "csv quoting" `Quick csv_quoting;
          Alcotest.test_case "csv quote field" `Quick csv_quote_field;
          Alcotest.test_case "ascii plot" `Quick ascii_plot_smoke;
        ] );
    ]
