(* The conformance subsystem's own tests: reference-model semantics on
   hand-built scenarios, the differential driver over a block of seeds,
   mutant detection + shrinking (the proof the differ can fail), and the
   harness fault-injection selftest. *)

module B = Aqt_graph.Build
module N = Aqt_engine.Network
module Policies = Aqt_policy.Policies
module Ref_model = Aqt_check.Ref_model
module Gen = Aqt_check.Gen
module Diff = Aqt_check.Diff
module Shrink = Aqt_check.Shrink
module Check = Aqt_check.Check
module Faults = Aqt_check.Faults

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ref_model on hand-built scenarios                                   *)
(* ------------------------------------------------------------------ *)

(* A single packet walks a 3-edge line to absorption; every counter the
   model exposes has a value computable by hand. *)
let ref_model_single_packet () =
  let l = B.line 3 in
  let m = Ref_model.create ~graph:l.graph ~policy:Policies.fifo () in
  let fwd1 = Ref_model.step m [ { N.route = [| 0; 1; 2 |]; tag = "t" } ] in
  check_bool "no forwards before arrival" true (fwd1 = []);
  check_int "buffered on edge 0" 1 (Ref_model.buffer_len m 0);
  let fwd2 = Ref_model.step m [] in
  check_int "one forward" 1 (List.length fwd2);
  check_bool "forwarded on edge 0" true (List.mem_assoc 0 fwd2);
  let _ = Ref_model.step m [] in
  let _ = Ref_model.step m [] in
  check_int "absorbed" 1 (Ref_model.absorbed m);
  check_int "in flight" 0 (Ref_model.in_flight m);
  check_int "sent on 0" 1 (Ref_model.sent_on_edge m 0);
  check_int "sent on 2" 1 (Ref_model.sent_on_edge m 2);
  check_int "max queue" 1 (Ref_model.max_queue_ever m);
  (* Injected end of step 1, absorbed end of step 4. *)
  check_int "latency" 3 (Ref_model.delivered_latency_max m);
  check_bool "injection log" true
    (Ref_model.injection_log m = [| (1, [| 0; 1; 2 |]) |])

(* Policy order is observable through buffer_packets and the forward
   choice: under LIFO the later arrival goes first. *)
let ref_model_lifo_order () =
  let l = B.line 1 in
  let m = Ref_model.create ~graph:l.graph ~policy:Policies.lifo () in
  let p1 = Ref_model.place_initial m [| 0 |] in
  let p2 = Ref_model.place_initial m [| 0 |] in
  check_int "two buffered" 2 (Ref_model.buffer_len m 0);
  (match Ref_model.buffer_packets m 0 with
  | [ head; tail ] ->
      check_int "lifo head is later arrival" p2.Aqt_engine.Packet.id
        head.Aqt_engine.Packet.id;
      check_int "lifo tail" p1.Aqt_engine.Packet.id tail.Aqt_engine.Packet.id
  | _ -> Alcotest.fail "expected two packets");
  let fwd = Ref_model.step m [] in
  check_bool "lifo forwards p2 first" true (fwd = [ (0, p2.Aqt_engine.Packet.id) ])

(* The reference model must agree with the engine even without the
   differential driver in the loop: a tiny lockstep run, compared by the
   public counters. *)
let ref_model_matches_engine_smoke () =
  let l = B.ring 4 in
  let routes = [ [| 0; 1 |]; [| 1; 2; 3 |]; [| 2 |] ] in
  let m = Ref_model.create ~graph:l.graph ~policy:Policies.ftg () in
  let net = N.create ~graph:l.graph ~policy:Policies.ftg () in
  List.iter (fun r -> ignore (Ref_model.place_initial m (Array.copy r))) routes;
  List.iter (fun r -> ignore (N.place_initial net (Array.copy r))) routes;
  for _ = 1 to 6 do
    ignore (Ref_model.step m []);
    N.step net []
  done;
  check_int "absorbed agree" (N.absorbed net) (Ref_model.absorbed m);
  check_int "in flight agree" (N.in_flight net) (Ref_model.in_flight m);
  check_int "max queue agree" (N.max_queue_ever net)
    (Ref_model.max_queue_ever m);
  check_int "max dwell agree" (N.max_dwell net) (Ref_model.max_dwell m);
  for e = 0 to 3 do
    check_int
      (Printf.sprintf "sent on %d agree" e)
      (N.sent_on_edge net e)
      (Ref_model.sent_on_edge m e)
  done

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let gen_deterministic () =
  (* Same seed, same scenario — the replayability contract. *)
  let s1 = Gen.generate 17 and s2 = Gen.generate 17 in
  check_bool "labels equal" true (s1.Gen.label = s2.Gen.label);
  check_bool "schedules equal" true (s1.Gen.schedule = s2.Gen.schedule);
  check_bool "initial equal" true (s1.Gen.initial = s2.Gen.initial);
  (* Different seeds eventually differ (not a tautology: check a block). *)
  let distinct =
    List.init 16 Gen.generate
    |> List.map (fun s -> s.Gen.label)
    |> List.sort_uniq compare |> List.length
  in
  check_bool "seeds vary" true (distinct > 1)

let gen_total_and_wellformed () =
  (* Every seed in a block yields a scenario the differ can execute. *)
  for seed = 0 to 31 do
    let s = Gen.generate seed in
    check_bool
      (Printf.sprintf "seed %d has positive horizon" seed)
      true
      (Gen.horizon s > 0);
    let m = Aqt_graph.Digraph.n_edges s.Gen.graph in
    List.iter
      (fun r ->
        Array.iter
          (fun e ->
            check_bool
              (Printf.sprintf "seed %d initial edge in range" seed)
              true (e >= 0 && e < m))
          r)
      s.Gen.initial;
    Array.iter
      (List.iter (fun (inj : N.injection) ->
           check_bool
             (Printf.sprintf "seed %d injection nonempty" seed)
             true
             (Array.length inj.N.route > 0)))
      s.Gen.schedule
  done

let family_label_prefix f =
  (* Scenario labels lead with the family tag. *)
  match f with
  | Gen.Free -> "free"
  | Gen.Shared_bucket -> "shared-bucket"
  | Gen.Windowed -> "windowed"
  | Gen.Leaky -> "leaky"
  | Gen.Capacity_regime -> "capacity"
  | Gen.Local_bursty -> "local-burst"
  | Gen.Feedback_routing -> "feedback"
  | Gen.Fabric -> "fabric"

let gen_all_families_reachable () =
  (* Unrestricted generation reaches all eight families in a modest seed
     block, and a restricted draw yields only the requested family. *)
  let seen = Hashtbl.create 8 in
  for seed = 0 to 199 do
    let s = Gen.generate seed in
    List.iter
      (fun f ->
        let p = family_label_prefix f in
        if
          String.length s.Gen.label >= String.length p
          && String.sub s.Gen.label 0 (String.length p) = p
        then Hashtbl.replace seen f ())
      Gen.all_families
  done;
  (* "local-burst" also prefixes "local"; count distinct family keys. *)
  check_bool "all eight families reachable" true (Hashtbl.length seen >= 8);
  List.iter
    (fun f ->
      for seed = 0 to 15 do
        let s = Gen.generate ~families:[ f ] seed in
        let p = family_label_prefix f in
        check_bool
          (Printf.sprintf "restricted draw yields %s" (Gen.family_name f))
          true
          (String.length s.Gen.label >= String.length p
          && String.sub s.Gen.label 0 (String.length p) = p)
      done)
    Gen.all_families;
  check_bool "family names round-trip" true
    (List.for_all
       (fun f -> Gen.family_of_string (Gen.family_name f) = Some f)
       Gen.all_families)

let gen_scenarios_self_admissible () =
  (* Every generated scenario's own schedule already satisfies every
     rate-style obligation it declares — admissibility is by construction,
     not an artifact of the engine run.  (Dwell bounds need a run and are
     covered by the differ.) *)
  let module RC = Aqt_adversary.Rate_check in
  for seed = 0 to 149 do
    let s = Gen.generate seed in
    let m = Aqt_graph.Digraph.n_edges s.Gen.graph in
    let log =
      Array.of_list
        (List.concat
           (List.mapi
              (fun i injs ->
                List.map (fun (inj : N.injection) -> (i + 1, inj.N.route)) injs)
              (Array.to_list s.Gen.schedule)))
    in
    let name k = Printf.sprintf "seed %d %s admissible" seed k in
    List.iter
      (function
        | Gen.Rate_ok rate ->
            check_bool (name "rate") true (RC.check_rate ~m ~rate log = Ok ())
        | Gen.Windowed_ok { w; rate } ->
            check_bool (name "windowed") true
              (RC.check_windowed ~m ~w ~rate log = Ok ())
        | Gen.Leaky_ok { b; rate } ->
            check_bool (name "leaky") true
              (RC.check_leaky ~m ~b ~rate log = Ok ())
        | Gen.Local_ok { rate; sigmas } ->
            check_bool (name "local") true
              (RC.check_local ~rate ~sigmas log = Ok ())
        | Gen.Dwell_bound _ | Gen.Routes_valid | Gen.Drop_accounting -> ())
      s.Gen.obligations
  done

(* ------------------------------------------------------------------ *)
(* Differential driver                                                 *)
(* ------------------------------------------------------------------ *)

let engine_conforms_on_seed_block () =
  let summary = Check.run_seeds ~n:40 () in
  check_int "seeds run" 40 summary.Check.seeds_run;
  (match summary.Check.failures with
  | [] -> ()
  | { Check.seed; failure; _ } :: _ ->
      Alcotest.failf "seed %d diverged: %a" seed Diff.pp_failure failure);
  check_bool "no failures" true (summary.Check.failures = [])

let mutant_is_caught ?families name mutant () =
  match Check.find_mutant_failure ?families ~max_seeds:60 mutant with
  | None -> Alcotest.failf "mutant %s not caught by any scanned seed" name
  | Some (scenario, failure) ->
      (* The shrunk reproducer must still fail under the mutant... *)
      (match Diff.run ~mutant scenario with
      | None -> Alcotest.failf "shrunk %s reproducer no longer fails" name
      | Some f -> check_bool "same kind" true (f.Diff.kind = failure.Diff.kind));
      (* ...and the pristine engine must pass the same scenario, so the
         failure is attributable to the mutation, not the shrink. *)
      check_bool "clean engine passes shrunk scenario" true
        (Diff.run scenario = None)

(* Shrinking must preserve the failure while only removing work. *)
let shrink_reduces () =
  match Check.find_mutant_failure ~max_seeds:60 Diff.Flip_tie_order with
  | None -> Alcotest.fail "flip-tie-order mutant not caught"
  | Some (shrunk, _) ->
      let original = Gen.generate shrunk.Gen.seed in
      let count s =
        List.length s.Gen.initial
        + Array.fold_left
            (fun acc l -> acc + List.length l)
            0 s.Gen.schedule
      in
      check_bool "no larger than original" true
        (count shrunk <= count original
        && Gen.horizon shrunk <= Gen.horizon original)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let fault_selftest_passes () =
  let outcomes = Faults.selftest () in
  check_bool "has cases" true (List.length outcomes >= 6);
  List.iter
    (fun (o : Faults.outcome) ->
      if not o.Faults.passed then
        Alcotest.failf "fault case %s failed: %s" o.Faults.case o.Faults.detail)
    outcomes

let () =
  Alcotest.run "aqt_check"
    [
      ( "ref-model",
        [
          Alcotest.test_case "single packet walk" `Quick
            ref_model_single_packet;
          Alcotest.test_case "lifo order" `Quick ref_model_lifo_order;
          Alcotest.test_case "matches engine smoke" `Quick
            ref_model_matches_engine_smoke;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick gen_deterministic;
          Alcotest.test_case "total and well-formed" `Quick
            gen_total_and_wellformed;
          Alcotest.test_case "all families reachable" `Quick
            gen_all_families_reachable;
          Alcotest.test_case "scenarios self-admissible" `Quick
            gen_scenarios_self_admissible;
        ] );
      ( "diff",
        [
          Alcotest.test_case "engine conforms on 40 seeds" `Quick
            engine_conforms_on_seed_block;
          Alcotest.test_case "catches drop-injection" `Quick
            (mutant_is_caught "drop-injection" (Diff.Drop_injection 3));
          Alcotest.test_case "catches flip-tie-order" `Quick
            (mutant_is_caught "flip-tie-order" Diff.Flip_tie_order);
          Alcotest.test_case "catches skip-reroutes" `Quick
            (mutant_is_caught "skip-reroutes" Diff.Skip_reroutes);
          Alcotest.test_case "catches violate-local-budget" `Quick
            (mutant_is_caught ~families:[ Gen.Local_bursty ]
               "violate-local-budget" Diff.Violate_local_budget);
          Alcotest.test_case "shrink reduces" `Quick shrink_reduces;
        ] );
      ( "faults",
        [ Alcotest.test_case "harness degrades gracefully" `Quick
            fault_selftest_passes ] );
    ]
