(* Tests for the parameter calculus of Lemma 3.6 and the Appendix. *)

module R = Aqt_util.Ratio
module P = Aqt.Params

let check_int = Alcotest.(check int)
let _ = check_int
let check_bool = Alcotest.(check bool)

let near ?(tol = 1e-9) a b = abs_float (a -. b) < tol

let ri_basics () =
  (* R_1 = (1-r)/(1-r) = 1 for every r. *)
  check_bool "R_1 = 1" true (near (P.ri ~r:0.6 1) 1.0);
  check_bool "R_1 = 1 (r=0.7)" true (near (P.ri ~r:0.7 1) 1.0);
  (* R_2 = (1-r)/(1-r^2) = 1/(1+r). *)
  check_bool "R_2 = 1/(1+r)" true (near (P.ri ~r:0.6 2) (1.0 /. 1.6));
  Alcotest.check_raises "i >= 1" (Invalid_argument "Params.ri: i must be >= 1")
    (fun () -> ignore (P.ri ~r:0.6 0))

(* Equation (3.1): R_i / (r + R_i) = R_(i+1). *)
let ri_recurrence () =
  List.iter
    (fun r ->
      for i = 1 to 30 do
        let lhs = P.ri ~r i /. (r +. P.ri ~r i) in
        if not (near ~tol:1e-9 lhs (P.ri ~r (i + 1))) then
          Alcotest.failf "recurrence fails at r=%.2f i=%d" r i
      done)
    [ 0.51; 0.55; 0.6; 0.7; 0.75 ]

let ri_monotone () =
  List.iter
    (fun r ->
      for i = 1 to 40 do
        if P.ri ~r (i + 1) >= P.ri ~r i then
          Alcotest.failf "R_i must strictly decrease (r=%.2f i=%d)" r i
      done;
      (* Limit is 1 - r. *)
      if abs_float (P.ri ~r 300 -. (1.0 -. r)) > 1e-6 then
        Alcotest.failf "R_i limit wrong for r=%.2f" r)
    [ 0.55; 0.6; 0.7 ]

(* The Appendix: log(1/e)+2 < n < 2 log(1/e)+4 for 0 < eps < 1/sqrt 2 - 1/2. *)
let n_asymptotics () =
  List.iter
    (fun eps ->
      let r = 0.5 +. eps in
      let n = float_of_int (P.n_formula ~r ~eps) in
      let lo = (log (1.0 /. eps) /. log 2.0) +. 2.0 in
      let hi = (2.0 *. (log (1.0 /. eps) /. log 2.0)) +. 4.0 in
      if not (n > lo -. 1.0 && n < hi +. 1.0) then
        Alcotest.failf "n=%f outside appendix band (%f, %f) at eps=%f" n lo hi
          eps)
    [ 0.01; 0.02; 0.05; 0.1; 0.15; 0.2 ]

(* S0 = Theta(n r^-n): check s0 >= 2n always and the ratio s0/(n r^-n) is
   bounded by the appendix constants (1/16 .. 8 with slack). *)
let s0_asymptotics () =
  List.iter
    (fun eps ->
      let r = 0.5 +. eps in
      let n = P.n_formula ~r ~eps in
      let s0 = P.s0_formula ~r ~n in
      check_bool "s0 >= 2n" true (s0 >= 2 * n);
      let scale = float_of_int n *. (r ** float_of_int (-n)) in
      let ratio = float_of_int s0 /. scale in
      if not (ratio > 0.01 && ratio < 10.0) then
        Alcotest.failf "s0 not Theta(n r^-n): ratio %f at eps=%f" ratio eps)
    [ 0.01; 0.05; 0.1; 0.2 ]

let make_validation () =
  let p = P.make ~eps:(R.make 1 10) () in
  check_bool "rate = 3/5" true (R.equal p.rate (R.make 3 5));
  check_bool "r float" true (near p.r 0.6);
  check_bool "n from formula" true (p.n = P.n_formula ~r:0.6 ~eps:0.1);
  Alcotest.check_raises "eps too large"
    (Invalid_argument "Params.make: eps must be in (0, 1/2)") (fun () ->
      ignore (P.make ~eps:R.half ()));
  Alcotest.check_raises "eps zero"
    (Invalid_argument "Params.make: eps must be in (0, 1/2)") (fun () ->
      ignore (P.make ~eps:R.zero ()));
  Alcotest.check_raises "bad n" (Invalid_argument "Params.make: n must be >= 1")
    (fun () -> ignore (P.make ~n:0 ~eps:(R.make 1 10) ()));
  Alcotest.check_raises "bad s0"
    (Invalid_argument "Params.make: s0 must be >= 2n") (fun () ->
      ignore (P.make ~n:8 ~s0:3 ~eps:(R.make 1 10) ()))

(* Lemma 3.6's chain: S' = 2S(1-R_n) >= S(1+eps) for admissible n. *)
let s'_growth () =
  List.iter
    (fun (num, den) ->
      let eps = R.make num den in
      let p = P.make ~eps () in
      let s = 2 * p.s0 in
      let total_old = 2 * s in
      let s' = P.s' ~r:p.r ~n:p.n ~total_old in
      let target =
        int_of_float (float_of_int s *. (1.0 +. R.to_float eps))
      in
      if s' < target then
        Alcotest.failf "S'=%d below S(1+eps)=%d at eps=%d/%d" s' target num den)
    [ (1, 20); (1, 10); (3, 20); (1, 5) ]

(* Claim 3.7: 0 < X <= rS. *)
let x_in_range () =
  List.iter
    (fun (num, den) ->
      let eps = R.make num den in
      let p = P.make ~eps () in
      List.iter
        (fun mult ->
          let s = mult * p.s0 in
          let x = P.x_param ~r:p.r ~n:p.n ~total_old:(2 * s) ~s_ingress:s in
          let rs = int_of_float (p.r *. float_of_int s) in
          if not (x > 0 && x <= rs) then
            Alcotest.failf "X=%d outside (0, rS=%d] at eps=%d/%d S=%d" x rs num
              den s)
        [ 2; 3; 10; 50 ])
    [ (1, 20); (1, 10); (1, 5) ]

let ti_monotone () =
  let p = P.make ~eps:(R.make 1 10) () in
  let total_old = 4 * p.s0 in
  for i = 1 to p.n - 1 do
    let a = P.ti ~r:p.r ~n:p.n ~total_old ~i in
    let b = P.ti ~r:p.r ~n:p.n ~total_old ~i:(i + 1) in
    if a > b then Alcotest.failf "t_i must be nondecreasing (i=%d)" i;
    (* t_i < 2S: the short flows end before the phase does. *)
    if b >= total_old then Alcotest.failf "t_i exceeds phase length"
  done

let chain_lengths () =
  let m = P.chain_length ~eps:0.1 () in
  check_bool "theorem growth exceeded" true
    (P.growth_per_cycle ~eps:0.1 ~m > 1.25);
  check_bool "minimal" true (P.growth_per_cycle ~eps:0.1 ~m:(m - 1) <= 1.25);
  let p = P.make ~eps:(R.make 1 10) () in
  let ma = P.chain_length_actual ~r:p.r ~n:p.n () in
  check_bool "actual growth exceeded" true
    (P.cycle_growth_actual ~r:p.r ~n:p.n ~m:ma > 1.5);
  check_bool "actual model needs fewer gadgets" true (ma <= m)

let pump_factor_expansive () =
  List.iter
    (fun (num, den) ->
      let p = P.make ~eps:(R.make num den) () in
      let f = P.pump_factor ~r:p.r ~n:p.n in
      if f <= 1.0 +. R.to_float (R.make num den) then
        Alcotest.failf "pump factor %f not above 1+eps at eps=%d/%d" f num den)
    [ (1, 20); (1, 10); (1, 5) ]

let () =
  Alcotest.run "aqt_params"
    [
      ( "ri",
        [
          Alcotest.test_case "basics" `Quick ri_basics;
          Alcotest.test_case "recurrence (3.1)" `Quick ri_recurrence;
          Alcotest.test_case "monotone, limit 1-r" `Quick ri_monotone;
        ] );
      ( "appendix",
        [
          Alcotest.test_case "n = Theta(log 1/eps)" `Quick n_asymptotics;
          Alcotest.test_case "s0 = Theta(n r^-n)" `Quick s0_asymptotics;
        ] );
      ( "lemma-3.6",
        [
          Alcotest.test_case "make validation" `Quick make_validation;
          Alcotest.test_case "S' >= S(1+eps)" `Quick s'_growth;
          Alcotest.test_case "Claim 3.7: X range" `Quick x_in_range;
          Alcotest.test_case "t_i monotone" `Quick ti_monotone;
        ] );
      ( "composition",
        [
          Alcotest.test_case "chain lengths" `Quick chain_lengths;
          Alcotest.test_case "pump factor" `Quick pump_factor_expansive;
        ] );
    ]
