(* Tests for the workload scenario library and the space-time recorder. *)

module W = Aqt_workload.Workloads
module D = Aqt_graph.Digraph
module N = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Policies = Aqt_policy.Policies

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_scenarios_valid () =
  List.iter
    (fun (s : W.t) ->
      if not (W.validate s) then Alcotest.failf "invalid scenario %s" s.name)
    (W.standard_grid ())

let line_full () =
  let s = W.line_full ~hops:6 in
  check_int "one route" 1 (List.length s.routes);
  check_int "d" 6 s.d;
  check_int "overlap" 1 (W.max_overlap s)

let line_suffixes () =
  let s = W.line_suffixes ~hops:5 in
  check_int "routes" 5 (List.length s.routes);
  check_int "d" 5 s.d;
  (* Every suffix route uses the last edge. *)
  check_int "hot edge overlap" 5 (W.max_overlap s)

let line_windows () =
  let s = W.line_windows ~hops:8 ~d:3 in
  check_int "routes" 6 (List.length s.routes);
  check_int "d" 3 s.d;
  check_int "middle overlap" 3 (W.max_overlap s);
  Alcotest.check_raises "d > hops"
    (Invalid_argument "Workloads.line_windows: d > hops") (fun () ->
      ignore (W.line_windows ~hops:2 ~d:3))

let ring_wrap () =
  let s = W.ring_wrap ~nodes:10 ~d:4 in
  check_int "routes" 10 (List.length s.routes);
  check_int "every edge carries d routes" 4 (W.max_overlap s)

let parallel_spread () =
  let s = W.parallel_spread ~branches:3 ~hops:4 in
  check_int "routes" 3 (List.length s.routes);
  check_int "edge-disjoint" 1 (W.max_overlap s)

let tree_to_root () =
  let s = W.tree_to_root ~depth:3 in
  check_int "one route per leaf" 8 (List.length s.routes);
  check_int "d = depth" 3 s.d;
  (* All routes converge on the root's two in-edges: overlap 4 on each. *)
  check_int "root-side overlap" 4 (W.max_overlap s)

let random_simple () =
  let prng = Aqt_util.Prng.create 31 in
  let s = W.random_simple ~prng ~nodes:20 ~n_routes:15 in
  check_bool "valid" true (W.validate s);
  check_bool "nonempty" true (s.routes <> [])

(* Space-time recorder: samples have the right shape and the renderer shows
   occupied edges. *)
let spacetime_records () =
  let s = W.line_full ~hops:3 in
  let net = N.create ~graph:s.graph ~policy:Policies.fifo () in
  let st = Aqt_engine.Spacetime.make net in
  let driver =
    Aqt_engine.Spacetime.driver_wrap st
      (Sim.injections_only (fun _ t ->
           if t <= 5 then
             [ ({ route = List.hd s.routes; tag = "x" } : N.injection) ]
           else []))
  in
  let _ = Sim.run ~net ~driver ~horizon:12 () in
  let out = Aqt_engine.Spacetime.render st in
  check_bool "mentions peak" true
    (String.length out > 0 && String.sub out 0 5 = "queue");
  (* Three edge rows plus the title line. *)
  check_int "rows" 4 (List.length (String.split_on_char '\n' (String.trim out)))

let spacetime_downsamples () =
  let s = W.line_full ~hops:2 in
  let net = N.create ~graph:s.graph ~policy:Policies.fifo () in
  let st = Aqt_engine.Spacetime.make net in
  for _ = 1 to 500 do
    N.step net [];
    Aqt_engine.Spacetime.observe st
  done;
  let out = Aqt_engine.Spacetime.render st in
  (* Two edge rows, each clipped to <= 100 sample columns + label + bars. *)
  List.iter
    (fun line ->
      if String.length line > 0 && String.contains line '|' then
        check_bool "row width bounded" true (String.length line < 120))
    (String.split_on_char '\n' out)

let () =
  Alcotest.run "aqt_workload"
    [
      ( "scenarios",
        [
          Alcotest.test_case "standard grid valid" `Quick all_scenarios_valid;
          Alcotest.test_case "line full" `Quick line_full;
          Alcotest.test_case "line suffixes" `Quick line_suffixes;
          Alcotest.test_case "line windows" `Quick line_windows;
          Alcotest.test_case "ring wrap" `Quick ring_wrap;
          Alcotest.test_case "parallel spread" `Quick parallel_spread;
          Alcotest.test_case "tree to root" `Quick tree_to_root;
          Alcotest.test_case "random simple" `Quick random_simple;
        ] );
      ( "spacetime",
        [
          Alcotest.test_case "records and renders" `Quick spacetime_records;
          Alcotest.test_case "downsampling" `Quick spacetime_downsamples;
        ] );
    ]
