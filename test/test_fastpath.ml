(* Differential tests for the zero-allocation engine fast path.

   The fast configuration (no tracer, packet recycling, shared pre-warmed
   route intern table) must be observationally identical to the fully
   instrumented slow configuration (tracer attached, injection logging,
   private table, no recycling) on the same injection schedule: same
   per-step recorder trajectory, same buffer contents, same aggregate
   statistics.  Randomised over graphs, policies and schedules, including
   reroute-heavy runs (reroutes build fresh arrays next to interned ones). *)

module D = Aqt_graph.Digraph
module B = Aqt_graph.Build
module N = Aqt_engine.Network
module RI = Aqt_engine.Route_intern
module Packet = Aqt_engine.Packet
module Sim = Aqt_engine.Sim
module Recorder = Aqt_engine.Recorder
module Policies = Aqt_policy.Policies
module Prng = Aqt_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Route_intern units                                                  *)
(* ------------------------------------------------------------------ *)

let intern_canonical_sharing () =
  let tbl = RI.create () in
  let r1 = [| 3; 4; 5 |] and r2 = [| 3; 4; 5 |] in
  let c1 = RI.intern tbl r1 in
  let c2 = RI.intern tbl r2 in
  check_bool "same contents share one canonical array" true (c1 == c2);
  check_int "one distinct route" 1 (RI.distinct tbl);
  check_int "one miss" 1 (RI.misses tbl);
  check_int "one hit" 1 (RI.hits tbl);
  (* Copy-on-intern: the canonical array is detached from the caller's. *)
  check_bool "canonical is a copy" true (c1 != r1);
  r1.(0) <- 99;
  check_int "mutating the source does not corrupt the table" 3 c1.(0);
  check_bool "lookup still works after source mutation" true
    (RI.intern tbl r2 == c1)

let intern_distinguishes_contents () =
  let tbl = RI.create () in
  let a = RI.intern tbl [| 1; 2 |] in
  let b = RI.intern tbl [| 1; 3 |] in
  let c = RI.intern tbl [| 1; 2; 3 |] in
  check_bool "different contents, different canonicals" true
    (a != b && b != c && a != c);
  check_int "three distinct" 3 (RI.distinct tbl)

let intern_validation_once () =
  (* The network validates a route only on its first appearance; invalid
     routes are still rejected on injection. *)
  let l = B.line 3 in
  let net = N.create ~graph:l.graph ~policy:Policies.fifo () in
  Alcotest.check_raises "invalid route rejected"
    (Invalid_argument "Network: route [e0;e2] is not a simple path")
    (fun () -> N.step net [ { N.route = [| l.edges.(0); l.edges.(2) |]; tag = "x" } ]);
  N.step net [ { N.route = l.edges; tag = "ok" } ];
  let tbl = N.route_table net in
  let misses_before = RI.misses tbl in
  for _ = 1 to 10 do
    N.step net [ { N.route = Array.copy l.edges; tag = "ok" } ]
  done;
  check_int "ten re-injections validate nothing new" misses_before
    (RI.misses tbl);
  check_int "all further injections are table hits" (RI.hits tbl - 0) (RI.hits tbl)

let shared_table_across_networks () =
  let l = B.line 4 in
  let tbl = RI.create () in
  let net1 = N.create ~route_table:tbl ~graph:l.graph ~policy:Policies.fifo () in
  let net2 = N.create ~route_table:tbl ~graph:l.graph ~policy:Policies.lifo () in
  N.step net1 [ { N.route = l.edges; tag = "a" } ];
  let misses = RI.misses tbl in
  N.step net2 [ { N.route = Array.copy l.edges; tag = "b" } ];
  check_int "second network reuses the first one's validation" misses
    (RI.misses tbl);
  check_int "one distinct route across both" 1 (RI.distinct tbl)

(* ------------------------------------------------------------------ *)
(* Packet pool                                                         *)
(* ------------------------------------------------------------------ *)

let pool_recycles_records () =
  let l = B.line 2 in
  let net = N.create ~recycle:true ~graph:l.graph ~policy:Policies.fifo () in
  N.step net [ { N.route = l.edges; tag = "first" } ];
  N.step net [];
  N.step net [];
  check_int "absorbed" 1 (N.absorbed net);
  check_int "record parked in the pool" 1 (N.pooled net);
  (* The recycled record is reinitialised for the next packet. *)
  N.step net [ { N.route = Array.sub l.edges 0 1; tag = "second" } ];
  check_int "pool drained by the new injection" 0 (N.pooled net);
  let seen = ref [] in
  N.iter_buffered (fun p -> seen := p :: !seen) net;
  (match !seen with
  | [ p ] ->
      check_int "fresh id" 1 p.Packet.id;
      check_int "fresh hop" 0 p.Packet.hop;
      check_int "fresh injected_at" 4 p.Packet.injected_at;
      check_bool "fresh tag" true (p.Packet.tag = "second");
      check_int "fresh route" 1 (Array.length p.Packet.route)
  | l -> Alcotest.failf "expected exactly one buffered packet, got %d"
           (List.length l));
  (* Without recycling nothing is pooled. *)
  let plain = N.create ~graph:l.graph ~policy:Policies.fifo () in
  N.step plain [ { N.route = l.edges; tag = "x" } ];
  N.step plain [];
  N.step plain [];
  check_int "no pooling by default" 0 (N.pooled plain)

(* ------------------------------------------------------------------ *)
(* Steady-state allocation                                             *)
(* ------------------------------------------------------------------ *)

let steady_state_zero_major_growth () =
  let k = 50 in
  let ring = B.ring k in
  let routes =
    Array.init k (fun i -> Array.init 4 (fun j -> ring.edges.((i + j) mod k)))
  in
  let net = N.create ~recycle:true ~graph:ring.graph ~policy:Policies.fifo () in
  let t = ref 0 in
  let driver =
    Sim.injections_only (fun _ _ ->
        incr t;
        if !t land 1 = 0 then [ { N.route = routes.(!t mod k); tag = "s" } ]
        else [])
  in
  (* Warm up: intern every route, size every buffer, fill the pool. *)
  Sim.run_steps ~net ~driver 2_000;
  Gc.full_major ();
  let recorder = Recorder.make ~every:100 () in
  Sim.run_steps ~recorder ~net ~driver 50_000;
  Gc.full_major ();
  let growth = Recorder.major_words_per_step recorder in
  if growth > 1.0 then
    Alcotest.failf "major heap grows %.3f words/step in steady state" growth;
  check_bool "recorder saw gc counters move monotonically" true
    (let s = Recorder.samples recorder in
     Array.length s >= 2
     && s.(0).Recorder.gc_minor_words
        <= s.(Array.length s - 1).Recorder.gc_minor_words);
  check_int "network still conserves packets" (N.injected_count net)
    (N.absorbed net + N.in_flight net)

(* ------------------------------------------------------------------ *)
(* Differential property: fast path == instrumented path               *)
(* ------------------------------------------------------------------ *)

type scenario = {
  graph : D.t;
  routes : int array array;
  policy_name : string;
  schedule : int list array; (* per step, indices into routes *)
  reroute_heavy : bool;
}

let gen_scenario seed =
  let rng = Prng.create seed in
  let graph, routes =
    match Prng.int rng 3 with
    | 0 ->
        let k = 3 + Prng.int rng 8 in
        let r = B.ring k in
        let routes =
          Array.init (2 * k) (fun _ ->
              let start = Prng.int rng k and len = 1 + Prng.int rng (k - 1) in
              Array.init len (fun j -> r.edges.((start + j) mod k)))
        in
        (r.graph, routes)
    | 1 ->
        let k = 2 + Prng.int rng 8 in
        let l = B.line k in
        let routes =
          Array.init (2 * k) (fun _ ->
              let start = Prng.int rng k in
              let len = 1 + Prng.int rng (k - start) in
              Array.sub l.edges start len)
        in
        (l.graph, routes)
    | _ ->
        let p = B.parallel_paths ~branches:(2 + Prng.int rng 3) ~hops:(2 + Prng.int rng 3) in
        (p.graph, Array.concat [ p.paths; p.paths ])
  in
  let policy_name =
    Prng.pick rng [| "fifo"; "lifo"; "lis"; "nis"; "ftg"; "ntg" |]
  in
  let horizon = 60 + Prng.int rng 120 in
  let schedule =
    Array.init horizon (fun _ ->
        if Prng.int rng 2 = 0 then []
        else
          List.init (1 + Prng.int rng 2) (fun _ ->
              Prng.int rng (Array.length routes)))
  in
  { graph; routes; policy_name; schedule; reroute_heavy = Prng.bool rng }

(* Deterministic reroute pass: truncate the route of every buffered packet
   whose id matches, so it gets absorbed at its next hop.  Identical packet
   ids see identical rewrites in both configurations. *)
let reroute_pass net =
  let victims = ref [] in
  N.iter_buffered
    (fun p ->
      if p.Packet.id mod 5 = 2 && Packet.remaining p > 1 then
        victims := p :: !victims)
    net;
  List.iter (fun p -> N.reroute net p [||]) !victims

let buffer_fingerprint net graph =
  let b = Buffer.create 256 in
  for e = 0 to D.n_edges graph - 1 do
    List.iter
      (fun (p : Packet.t) ->
        Buffer.add_string b
          (Printf.sprintf "e%d:id%d,hop%d,inj%d,rr%d,[%s];" e p.id p.hop
             p.injected_at p.reroutes
             (String.concat ","
                (Array.to_list (Array.map string_of_int p.route)))))
      (N.buffer_packets net e)
  done;
  Buffer.contents b

let sample_fingerprint (s : Recorder.sample) =
  (* GC fields differ between configurations by design; everything
     observable about the simulation must not. *)
  (s.t, s.in_flight, s.cur_max_queue, s.absorbed, s.max_dwell)

let run_config ~fast scenario =
  let policy = Policies.by_name scenario.policy_name in
  let net =
    if fast then begin
      (* Shared, pre-warmed table: every route interned before the run. *)
      let table = RI.create () in
      Array.iter (fun r -> ignore (RI.intern table r)) scenario.routes;
      N.create ~route_table:table ~recycle:true ~graph:scenario.graph ~policy ()
    end
    else
      N.create ~log_injections:true ~tracer:(fun _ -> ()) ~graph:scenario.graph
        ~policy ()
  in
  let recorder = Recorder.make () in
  Array.iter
    (fun idxs ->
      if scenario.reroute_heavy then reroute_pass net;
      N.step net
        (List.map (fun i -> { N.route = scenario.routes.(i); tag = "d" }) idxs);
      Recorder.observe recorder net)
    scenario.schedule;
  let trajectory =
    Array.to_list (Array.map sample_fingerprint (Recorder.samples recorder))
  in
  ( trajectory,
    buffer_fingerprint net scenario.graph,
    ( N.max_queue_ever net,
      N.max_dwell net,
      N.absorbed net,
      N.in_flight net,
      N.injected_count net,
      N.reroute_count net,
      N.delivered_latency_max net ) )

let prop_fastpath_differential =
  QCheck.Test.make ~count:60 ~name:"fast path == instrumented path"
    QCheck.(map (fun n -> abs n) int)
    (fun seed ->
      let scenario = gen_scenario seed in
      let slow_traj, slow_bufs, slow_stats = run_config ~fast:false scenario in
      let fast_traj, fast_bufs, fast_stats = run_config ~fast:true scenario in
      if slow_traj <> fast_traj then
        QCheck.Test.fail_reportf "trajectories diverge (seed %d)" seed;
      if slow_bufs <> fast_bufs then
        QCheck.Test.fail_reportf "buffer contents diverge (seed %d):\n%s\nvs\n%s"
          seed slow_bufs fast_bufs;
      if slow_stats <> fast_stats then
        QCheck.Test.fail_reportf "aggregate statistics diverge (seed %d)" seed;
      true)

(* run_steps must drive the network exactly like the same number of
   Network.step calls through Sim.run. *)
let run_steps_equivalence () =
  let ring = B.ring 6 in
  let routes =
    Array.init 6 (fun i -> Array.init 3 (fun j -> ring.edges.((i + j) mod 6)))
  in
  let mk () = N.create ~graph:ring.graph ~policy:Policies.fifo () in
  let driver_of t =
    Sim.injections_only (fun _ _ ->
        incr t;
        if !t mod 3 = 0 then [ { N.route = routes.(!t mod 6); tag = "r" } ]
        else [])
  in
  let net1 = mk () in
  let t1 = ref 0 in
  ignore (Sim.run ~net:net1 ~driver:(driver_of t1) ~horizon:500 ());
  let net2 = mk () in
  let t2 = ref 0 in
  Sim.run_steps ~net:net2 ~driver:(driver_of t2) 500;
  check_int "same now" (N.now net1) (N.now net2);
  check_int "same absorbed" (N.absorbed net1) (N.absorbed net2);
  check_int "same in flight" (N.in_flight net1) (N.in_flight net2);
  check_int "same max queue" (N.max_queue_ever net1) (N.max_queue_ever net2);
  check_int "same max dwell" (N.max_dwell net1) (N.max_dwell net2);
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Sim.run_steps: negative step count") (fun () ->
      Sim.run_steps ~net:net2 ~driver:Sim.null_driver (-1))

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "aqt_fastpath"
    [
      ( "route_intern",
        [
          Alcotest.test_case "canonical sharing" `Quick intern_canonical_sharing;
          Alcotest.test_case "distinguishes contents" `Quick
            intern_distinguishes_contents;
          Alcotest.test_case "validation once" `Quick intern_validation_once;
          Alcotest.test_case "shared across networks" `Quick
            shared_table_across_networks;
        ] );
      ( "pool",
        [ Alcotest.test_case "recycles records" `Quick pool_recycles_records ] );
      ( "steady-state",
        [
          Alcotest.test_case "zero major growth" `Quick
            steady_state_zero_major_growth;
        ] );
      ( "differential",
        [
          q prop_fastpath_differential;
          Alcotest.test_case "run_steps == run" `Quick run_steps_equivalence;
        ] );
    ]
