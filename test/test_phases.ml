(* Integration tests for the Section 3 constructions: startup (Lemma 3.15),
   pump (Lemma 3.6), stitch (Lemma 3.16), and the composed instability
   adversary (Theorem 3.17), executed on the real simulator.

   The adversaries are exact-integer realizations of fluid schedules, so
   postconditions are checked against measured values with small additive
   slack (the paper absorbs the same error into a larger S0). *)

module R = Aqt_util.Ratio
module N = Aqt_engine.Network
module Sim = Aqt_engine.Sim
module Phased = Aqt_adversary.Phased
module G = Aqt.Gadget
module I = Aqt.Invariant
module Policies = Aqt_policy.Policies

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let eps = R.make 1 5
let params = Aqt.Params.make ~eps ~s0:400 ()

(* Run one phase to completion on a network. *)
let run_phase net phase =
  let duration = ref 0 in
  let wrapped : Phased.phase =
   fun net t ->
    let d, dur = phase net t in
    duration := dur;
    (d, dur)
  in
  let driver = Phased.sequence [ wrapped ] in
  ignore (Sim.run ~net ~driver ~horizon:1 ());
  ignore (Sim.run ~net ~driver ~horizon:(!duration - 1) ());
  !duration

let fresh_seeded ~m ~seed =
  let g = G.cyclic ~n:params.n ~m () in
  let net = N.create ~graph:g.graph ~policy:Policies.fifo () in
  for _ = 1 to seed do
    ignore (N.place_initial ~tag:"seed" net (G.seed_route g))
  done;
  (net, g)

let seed = 2 * params.s0 + 2
let slack = 4 * params.n (* generous integrality allowance *)

(* Lemma 3.15: startup establishes C(S', F(1)) with S' close to the predicted
   2S(1-R_n) and above S(1+eps). *)
let startup_postcondition () =
  let net, g = fresh_seeded ~m:4 ~seed in
  let duration = run_phase net (Aqt.Startup.phase ~params ~gadget:g) in
  check_int "duration 2S + n" (seed + params.n) duration;
  let m = I.measure net g ~k:1 in
  check_bool "invariant with slack" true
    (I.holds_with_slack ~slack net g ~k:1);
  let predicted = Aqt.Params.s' ~r:params.r ~n:params.n ~total_old:seed in
  check_bool "s_ingress matches prediction" true
    (abs (m.s_ingress - predicted) <= slack);
  check_bool "s_epath matches prediction" true
    (abs (m.s_epath - predicted) <= slack);
  let target =
    int_of_float
      (float_of_int (seed / 2) *. (1.0 +. R.to_float eps))
  in
  check_bool "S' >= S(1+eps)" true (m.s_ingress >= target)

(* Lemma 3.6: the pump moves C(S, F(1)) to C(S', F(2)) with S' ~ S * 2(1-R_n),
   and empties gadget 1. *)
let pump_postcondition () =
  let net, g = fresh_seeded ~m:4 ~seed in
  ignore (run_phase net (Aqt.Startup.phase ~params ~gadget:g));
  let before = I.measure net g ~k:1 in
  ignore (run_phase net (Aqt.Pump.phase ~params ~gadget:g ~k:1));
  let after = I.measure net g ~k:2 in
  check_bool "C on gadget 2" true (I.holds_with_slack ~slack net g ~k:2);
  let factor = Aqt.Params.pump_factor ~r:params.r ~n:params.n in
  let predicted = int_of_float (float_of_int before.s_ingress *. factor) in
  check_bool "pumped size near prediction" true
    (abs (after.s_ingress - predicted) <= slack);
  check_bool "grew at least (1+eps)" true
    (after.s_ingress
    >= int_of_float (float_of_int before.s_ingress *. (1.0 +. R.to_float eps)));
  (* Gadget 1 is (nearly) empty: a handful of stragglers at most. *)
  let left = I.measure net g ~k:1 in
  check_bool "gadget 1 drained" true
    (left.s_epath + left.s_ingress + left.extraneous <= slack)

(* Two pumps in sequence keep compounding. *)
let pump_composes () =
  let net, g = fresh_seeded ~m:4 ~seed in
  ignore (run_phase net (Aqt.Startup.phase ~params ~gadget:g));
  ignore (run_phase net (Aqt.Pump.phase ~params ~gadget:g ~k:1));
  let s2 = (I.measure net g ~k:2).s_ingress in
  ignore (run_phase net (Aqt.Pump.phase ~params ~gadget:g ~k:2));
  let m3 = I.measure net g ~k:3 in
  check_bool "C on gadget 3" true (I.holds_with_slack ~slack net g ~k:3);
  check_bool "second pump grows too" true
    (m3.s_ingress
    >= int_of_float (float_of_int s2 *. (1.0 +. R.to_float eps)))

(* Lemma 3.16: the stitch converts a drained egress queue into ~r^3 S fresh
   single-edge packets at the chain's ingress, leaving nothing else. *)
let stitch_postcondition () =
  let m_gadgets = 3 in
  let net, g = fresh_seeded ~m:m_gadgets ~seed in
  ignore (run_phase net (Aqt.Startup.phase ~params ~gadget:g));
  ignore (run_phase net (Aqt.Pump.phase ~params ~gadget:g ~k:1));
  ignore (run_phase net (Aqt.Pump.phase ~params ~gadget:g ~k:2));
  (* Drain: idle until the egress holds the leftovers. *)
  let s_ing = N.buffer_len net (G.ingress g ~k:m_gadgets) in
  let driver = Phased.sequence [ Phased.idle (s_ing + params.n) ] in
  ignore (Sim.run ~net ~driver ~horizon:(s_ing + params.n) ());
  let egress = G.egress g ~k:m_gadgets in
  let s_before = N.buffer_len net egress in
  check_bool "drain left a queue at the egress" true (s_before > params.s0 / 2);
  (* All remaining routes are the single egress edge. *)
  List.iter
    (fun p ->
      check_int "remaining length 1" 1 (Aqt_engine.Packet.remaining p))
    (N.buffer_packets net egress);
  let tau = N.now net in
  let plan =
    Aqt.Stitch.plan ~rate:params.rate ~relay:(G.stitch_route g)
      ~start:(tau + 1) ~s:s_before
  in
  ignore (run_phase net (Aqt.Stitch.phase ~rate:params.rate ~gadget:g));
  let fresh = N.buffer_packets net (G.ingress g ~k:1) in
  let n_fresh = List.length fresh in
  check_bool "fresh queue ~ r^3 S" true (abs (n_fresh - plan.r3s) <= slack);
  (* Everything else is gone. *)
  check_bool "network holds only the fresh seeds" true
    (N.in_flight net - n_fresh <= slack);
  (* Every queued packet is one hop from absorption, and all but a few
     stragglers were injected after tau + S (Lemma 3.16's freshness claim). *)
  List.iter
    (fun p ->
      check_int "remaining one hop" 1 (Aqt_engine.Packet.remaining p))
    fresh;
  let stale =
    List.length
      (List.filter
         (fun p -> p.Aqt_engine.Packet.injected_at <= tau + plan.s)
         fresh)
  in
  check_bool "seeds are fresh" true (stale <= slack)

(* Theorem 3.17: seeds grow strictly over full cycles, and the growth is
   sustained (each cycle multiplies by > 1.2 with the default actual-model
   chain length of margin 1.5 minus integrality losses). *)
let instability_growth () =
  let cfg = Aqt.Instability.config ~eps ~s0:400 ~cycles:3 () in
  let res = Aqt.Instability.run cfg in
  check_int "recorded cycles+1 stats" (cfg.cycles + 1)
    (Array.length res.stats);
  Array.iteri
    (fun i g ->
      if g <= 1.2 then
        Alcotest.failf "cycle %d growth %.3f not sustained" i g)
    res.growth;
  check_bool "queues grew overall" true
    (res.stats.(Array.length res.stats - 1).seed > 2 * res.stats.(0).seed)

(* The composed adversary is a legal rate-r adversary even with rerouting:
   Lemma 3.3, checked exactly. *)
let instability_rate_legal () =
  let cfg =
    Aqt.Instability.config ~eps ~s0:400 ~cycles:2 ~log_injections:true ()
  in
  let res = Aqt.Instability.run cfg in
  let m = Aqt_graph.Digraph.n_edges res.gadget.graph in
  let log = N.injection_log res.net in
  check_bool "nontrivial log" true (Array.length log > 10_000);
  check_bool "reroutes happened" true (N.reroute_count res.net > 1_000);
  (match Aqt_adversary.Rate_check.check_rate ~m ~rate:params.rate log with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "rate violated: %s"
        (Format.asprintf "%a" Aqt_adversary.Rate_check.pp_violation v));
  check_int "burstiness zero" 0
    (Aqt_adversary.Rate_check.burstiness ~m ~rate:params.rate log)

(* Lemma 3.3's equivalence: replaying the logged (time, final route) pairs as
   a static adversary under FIFO reproduces the exact same execution. *)
let replay_equivalence () =
  let cfg =
    Aqt.Instability.config ~eps ~s0:400 ~cycles:1 ~log_injections:true ()
  in
  let res = Aqt.Instability.run cfg in
  let log = N.injection_log res.net in
  let net2 =
    N.create ~log_injections:true ~graph:res.gadget.graph
      ~policy:Policies.fifo ()
  in
  (* Reproduce the initial configuration with its final effective routes —
     the first startup phase rerouted the seeds, and A' must inject those
     final routes from the start. *)
  let seeds = N.initial_final_routes res.net in
  check_int "all seeds logged" cfg.seed (Array.length seeds);
  Array.iter
    (fun route -> ignore (N.place_initial ~tag:"seed" net2 route))
    seeds;
  let adv = Aqt_adversary.Stock.replay ~rate:params.rate log in
  let _ =
    Sim.run ~net:net2 ~driver:adv.Aqt_adversary.Stock.driver
      ~horizon:(N.now res.net) ()
  in
  check_int "same absorbed" (N.absorbed res.net) (N.absorbed net2);
  check_int "same in flight" (N.in_flight res.net) (N.in_flight net2);
  check_int "same max queue" (N.max_queue_ever res.net) (N.max_queue_ever net2);
  (* Buffer-by-buffer equality of the final states. *)
  for e = 0 to Aqt_graph.Digraph.n_edges res.gadget.graph - 1 do
    check_int
      (Printf.sprintf "buffer %d equal" e)
      (N.buffer_len res.net e) (N.buffer_len net2 e)
  done

(* The same injection sequence does not destabilize LIS: Theorem 3.17 is a
   property of FIFO, not of the workload. *)
let construction_is_policy_specific () =
  let cfg =
    Aqt.Instability.config ~eps ~s0:400 ~cycles:2 ~log_injections:true ()
  in
  let res = Aqt.Instability.run cfg in
  let log = N.injection_log res.net in
  let fifo_backlog = N.in_flight res.net in
  let results =
    Aqt.Baselines.replay_against
      ~initial:(N.initial_final_routes res.net)
      ~graph:res.gadget.graph ~rate:params.rate ~log
      ~policies:[ Policies.lis; Policies.ftg ]
      ~settle:(2 * params.s0) ()
  in
  List.iter
    (fun (r : Aqt.Baselines.replay_result) ->
      check_bool
        (Printf.sprintf "%s backlog below FIFO's" r.policy)
        true
        (r.backlog < fifo_backlog / 2))
    results

(* Pointing the adaptive construction at other policies: resilient runs
   report the collapse instead of raising. *)
let resilient_collapse () =
  let cfg = Aqt.Instability.config ~eps ~s0:400 ~cycles:2 () in
  let fifo_run = Aqt.Instability.run ~resilient:true cfg in
  check_bool "fifo completes" true (fifo_run.collapsed = None);
  let ftg_run =
    Aqt.Instability.run ~policy:Policies.ftg ~resilient:true cfg
  in
  (match ftg_run.collapsed with
  | Some msg ->
      check_bool "ftg rejected at rerouting" true
        (String.length msg > 0
        && String.sub msg 0 13 = "Startup.phase")
  | None -> Alcotest.fail "FTG must collapse (not historic)");
  let lis_run =
    Aqt.Instability.run ~policy:Policies.lis ~resilient:true cfg
  in
  match lis_run.collapsed with
  | Some msg ->
      check_bool "lis collapses at the pump" true
        (String.length msg > 0 && String.sub msg 0 10 = "Pump.phase")
  | None -> Alcotest.fail "LIS must not sustain the invariant"

(* The Section 5 generalization: the asymmetric gadget F_(n,1) sustains the
   same growth and remains a legal rate-r adversary. *)
let lean_gadget_construction () =
  let cfg =
    Aqt.Instability.config ~eps ~s0:400 ~f_len:1 ~cycles:2
      ~log_injections:true ()
  in
  let res = Aqt.Instability.run cfg in
  check_bool "no collapse" true (res.collapsed = None);
  Array.iter
    (fun g ->
      if g <= 1.2 then Alcotest.failf "lean gadget growth %.3f not sustained" g)
    res.growth;
  (* Smaller graph than the symmetric one. *)
  let sym = G.cyclic ~n:cfg.params.n ~m:cfg.m () in
  check_bool "fewer edges" true
    (Aqt_graph.Digraph.n_edges res.gadget.graph
    < Aqt_graph.Digraph.n_edges sym.graph);
  (* Still a legal rate-r adversary after all the rerouting. *)
  let m = Aqt_graph.Digraph.n_edges res.gadget.graph in
  check_bool "rate-r legal" true
    (Aqt_adversary.Rate_check.check_rate ~m ~rate:params.rate
       (N.injection_log res.net)
    = Ok ())

(* Stitch plans are internally consistent for any queue size and rate. *)
let prop_stitch_plan_consistent =
  QCheck.Test.make ~name:"stitch plan volumes and duration are consistent"
    ~count:200
    (QCheck.triple
       (QCheck.pair (QCheck.int_range 1 9) (QCheck.int_range 2 10))
       (QCheck.int_range 1 5000) (QCheck.int_range 1 1000))
    (fun ((p', q'), s, start) ->
      QCheck.assume (p' < q');
      let rate = R.make p' q' in
      let g = G.cyclic ~n:3 ~m:2 () in
      let pl : Aqt.Stitch.plan =
        Aqt.Stitch.plan ~rate ~relay:(G.stitch_route g) ~start ~s
      in
      pl.rs = Aqt_util.Ratio.floor_mul rate s
      && pl.r2s = Aqt_util.Ratio.floor_mul rate pl.rs
      && pl.r3s = Aqt_util.Ratio.floor_mul rate pl.r2s
      && pl.r3s <= pl.r2s
      && pl.r2s <= pl.rs
      && pl.rs <= pl.s
      && pl.duration = pl.s + pl.rs + pl.r2s
      && List.fold_left (fun acc f -> acc + Aqt_adversary.Flow.total f) 0
           pl.flows
         = pl.rs + pl.r2s + pl.r3s)

let () =
  Alcotest.run "aqt_phases"
    [
      ( "lemma-3.15",
        [ Alcotest.test_case "startup postcondition" `Slow startup_postcondition ]
      );
      ( "lemma-3.6",
        [
          Alcotest.test_case "pump postcondition" `Slow pump_postcondition;
          Alcotest.test_case "pump composes" `Slow pump_composes;
        ] );
      ( "lemma-3.16",
        [ Alcotest.test_case "stitch postcondition" `Slow stitch_postcondition ]
      );
      ( "theorem-3.17",
        [
          Alcotest.test_case "seed growth" `Slow instability_growth;
          Alcotest.test_case "rate-r legality (Lemma 3.3)" `Slow
            instability_rate_legal;
          Alcotest.test_case "replay equivalence (Lemma 3.3)" `Slow
            replay_equivalence;
          Alcotest.test_case "policy specificity" `Slow
            construction_is_policy_specific;
          Alcotest.test_case "resilient collapse" `Slow resilient_collapse;
          Alcotest.test_case "lean gadget (Sec. 5)" `Slow
            lean_gadget_construction;
          QCheck_alcotest.to_alcotest prop_stitch_plan_consistent;
        ] );
    ]
