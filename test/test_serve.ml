(* lib/serve: HTTP codec, (rho,sigma) admission bucket, metrics registry,
   and loopback integration against live daemons. *)

module Http = Aqt_serve.Http
module Bucket = Aqt_serve.Bucket
module Metrics = Aqt_serve.Metrics
module Server = Aqt_serve.Server
module Registry = Aqt_harness.Registry
module Spec = Aqt_harness.Spec
module Journal = Aqt_harness.Journal
module Jsonx = Aqt_util.Jsonx
module Prng = Aqt_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "aqt_serve_test_%d_%d" (Unix.getpid ()) !counter)

(* ------------------------------------------------------------------ *)
(* HTTP codec (socketpair, no network)                                 *)
(* ------------------------------------------------------------------ *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      close_quietly a;
      close_quietly b)
    (fun () -> f a b)

(* Feed raw bytes to read_request; the writing end closes, so the parser
   sees exactly this input followed by EOF. *)
let feed ?max_line ?max_headers ?max_body bytes =
  with_pair (fun a b ->
      ignore (Unix.write_substring a bytes 0 (String.length bytes));
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Http.read_request ?max_line ?max_headers ?max_body b)

let http_percent_decode () =
  check_string "space and plus" "a b c" (Http.percent_decode "a%20b+c");
  check_string "hex" "A/Z" (Http.percent_decode "%41%2fZ");
  check_string "bad escape passes through" "%zz%4" (Http.percent_decode "%zz%4");
  check_string "empty" "" (Http.percent_decode "")

let http_parse_query () =
  check_bool "pairs" true
    (Http.parse_query "a=1&b=two%20words&flag&=x"
    = [ ("a", "1"); ("b", "two words"); ("flag", ""); ("", "x") ]);
  check_bool "empty" true (Http.parse_query "" = []);
  check_bool "stray separators" true (Http.parse_query "&&a=1&" = [ ("a", "1") ])

let http_request_roundtrip () =
  match
    feed "GET /p%61th?x=1&y=a+b HTTP/1.1\r\nHost: h\r\nX-Foo:  bar \r\n\r\n"
  with
  | Error e -> Alcotest.failf "parse failed: %s" (Http.error_to_string e)
  | Ok req ->
      check_string "meth" "GET" req.Http.meth;
      check_string "path decoded" "/path" req.Http.path;
      check_bool "query" true (req.Http.query = [ ("x", "1"); ("y", "a b") ]);
      check_bool "header lower-cased and trimmed" true
        (Http.header req "X-FOO" = Some "bar");
      check_string "no body" "" req.Http.body

let http_post_body () =
  match
    feed "POST /sweep HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"d\": 3}..."
  with
  | Error e -> Alcotest.failf "parse failed: %s" (Http.error_to_string e)
  | Ok req ->
      check_string "meth" "POST" req.Http.meth;
      check_string "body" "{\"d\": 3}..." req.Http.body

let http_tolerances () =
  (match feed "\r\nGET / HTTP/1.1\r\n\r\n" with
  | Ok req -> check_string "leading blank line tolerated" "/" req.Http.path
  | Error e -> Alcotest.failf "blank line: %s" (Http.error_to_string e));
  (match feed "get / HTTP/1.0\nhost: h\n\n" with
  | Ok req ->
      check_string "bare LF + case" "GET" req.Http.meth;
      check_bool "host header" true (Http.header req "host" = Some "h")
  | Error e -> Alcotest.failf "bare LF: %s" (Http.error_to_string e))

let expect_malformed label input =
  match feed input with
  | Error (Http.Malformed _) -> ()
  | Error e ->
      Alcotest.failf "%s: expected Malformed, got %s" label
        (Http.error_to_string e)
  | Ok _ -> Alcotest.failf "%s: accepted" label

let http_malformed () =
  expect_malformed "no spaces" "GARBAGE\r\n\r\n";
  expect_malformed "http/0.9" "GET /\r\n\r\n";
  expect_malformed "bad version" "GET / SPDY/9\r\n\r\n";
  expect_malformed "nameless header" "GET / HTTP/1.1\r\n: v\r\n\r\n";
  expect_malformed "colonless header" "GET / HTTP/1.1\r\nnocolon\r\n\r\n";
  expect_malformed "chunked rejected"
    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  expect_malformed "bad content-length"
    "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
  expect_malformed "negative content-length"
    "POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n"

let http_limits () =
  (match feed ~max_line:32 ("GET /" ^ String.make 64 'a' ^ " HTTP/1.1\r\n\r\n") with
  | Error (Http.Too_large "line") -> ()
  | r ->
      Alcotest.failf "long line: %s"
        (match r with Ok _ -> "accepted" | Error e -> Http.error_to_string e));
  (match
     feed ~max_headers:2
       "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n"
   with
  | Error (Http.Too_large "headers") -> ()
  | _ -> Alcotest.fail "header count cap");
  match feed ~max_body:8 "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789" with
  | Error (Http.Too_large "body") -> ()
  | _ -> Alcotest.fail "body cap"

let http_closed () =
  (match feed "" with
  | Error Http.Closed -> ()
  | _ -> Alcotest.fail "empty input should be Closed");
  match feed "GET / HTTP/1.1\r\nHost: h\r\n" with
  | Error Http.Closed -> ()
  | _ -> Alcotest.fail "truncated headers should be Closed"

let read_all fd =
  let buf = Bytes.create 4096 in
  let out = Buffer.create 256 in
  let rec go () =
    match Unix.read fd buf 0 4096 with
    | 0 -> Buffer.contents out
    | n ->
        Buffer.add_subbytes out buf 0 n;
        go ()
  in
  go ()

let http_write_response () =
  let wire =
    with_pair (fun a b ->
        Http.write_response a
          ~headers:[ ("Content-Type", "application/json") ]
          ~status:200 ~body:"{\"ok\":true}";
        Unix.shutdown a Unix.SHUTDOWN_SEND;
        read_all b)
  in
  check_bool "status line" true
    (String.starts_with ~prefix:"HTTP/1.1 200 OK\r\n" wire);
  check_bool "content-length" true
    (let re = "Content-Length: 11\r\n" in
     let rec find i =
       i + String.length re <= String.length wire
       && (String.sub wire i (String.length re) = re || find (i + 1))
     in
     find 0);
  check_bool "connection close" true
    (let needle = "Connection: close\r\n\r\n" in
     let rec find i =
       i + String.length needle <= String.length wire
       && (String.sub wire i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  check_bool "body last" true (String.ends_with ~suffix:"{\"ok\":true}" wire);
  let head =
    with_pair (fun a b ->
        Http.write_response a ~head_only:true ~status:200 ~body:"abc";
        Unix.shutdown a Unix.SHUTDOWN_SEND;
        read_all b)
  in
  check_bool "HEAD keeps length header" true
    (let re = "Content-Length: 3\r\n" in
     let rec find i =
       i + String.length re <= String.length head
       && (String.sub head i (String.length re) = re || find (i + 1))
     in
     find 0);
  check_bool "HEAD omits body" true (String.ends_with ~suffix:"\r\n\r\n" head)

(* ------------------------------------------------------------------ *)
(* Bucket (fake clock)                                                 *)
(* ------------------------------------------------------------------ *)

let bucket_burst_then_refill () =
  let now = ref 0. in
  let b = Bucket.create ~now:(fun () -> !now) ~rho:2. ~sigma:3 () in
  check_bool "starts full: sigma admitted" true
    (Bucket.try_take b && Bucket.try_take b && Bucket.try_take b);
  check_bool "then empty" false (Bucket.try_take b);
  now := 0.5;
  check_bool "refills at rho" true (Bucket.try_take b);
  check_bool "but only one token accrued" false (Bucket.try_take b);
  now := 100.;
  check_bool "level capped at sigma" true (Bucket.level b <= 3.);
  check_bool "burst again" true
    (Bucket.try_take b && Bucket.try_take b && Bucket.try_take b);
  check_bool "capped burst" false (Bucket.try_take b)

let bucket_rate_bound () =
  (* The (rho,sigma) law itself: over [0,T] at most rho*T + sigma admitted,
     whatever the arrival pattern. *)
  let now = ref 0. in
  let b = Bucket.create ~now:(fun () -> !now) ~rho:5. ~sigma:4 () in
  let admitted = ref 0 in
  let horizon = 1000 in
  for step = 0 to horizon - 1 do
    now := float_of_int step *. 0.01;
    (* a greedy adversary hammers three times per tick *)
    for _ = 1 to 3 do
      if Bucket.try_take b then incr admitted
    done
  done;
  let t = float_of_int (horizon - 1) *. 0.01 in
  check_bool "admitted <= rho*T + sigma" true
    (float_of_int !admitted <= (5. *. t) +. 4.);
  check_bool "admission keeps pace with rho" true
    (float_of_int !admitted >= 5. *. t *. 0.9)

let bucket_refund_clamped () =
  (* Regression: a refund must never credit past sigma.  A full bucket
     plus a spurious-looking refund (admit, long idle refill, then the
     endpoint layer sheds and refunds) must still cap at sigma — an
     over-credit would let a later burst exceed the (rho,sigma) law. *)
  let now = ref 0. in
  let b = Bucket.create ~now:(fun () -> !now) ~rho:2. ~sigma:3 () in
  check_bool "take from full" true (Bucket.try_take b);
  now := 100.;
  (* refill brings the level back to sigma before the refund lands *)
  Bucket.refund b;
  check_bool "refund clamped to sigma" true (Bucket.level b <= 3.);
  let admitted = ref 0 in
  for _ = 1 to 10 do
    if Bucket.try_take b then incr admitted
  done;
  check_int "burst still bounded by sigma" 3 !admitted;
  (* Refund into a non-full bucket is an exact +1, not a fractional
     re-derivation from the clock. *)
  let c = Bucket.create ~now:(fun () -> !now) ~rho:1. ~sigma:2 () in
  check_bool "drain" true (Bucket.try_take c && Bucket.try_take c);
  Bucket.refund c;
  check_bool "one token back" true (Bucket.try_take c);
  check_bool "exactly one" false (Bucket.try_take c)

let bucket_validation () =
  Alcotest.check_raises "rho <= 0"
    (Invalid_argument "Bucket.create: rho must be > 0") (fun () ->
      ignore (Bucket.create ~rho:0. ~sigma:1 ()));
  Alcotest.check_raises "sigma < 1"
    (Invalid_argument "Bucket.create: sigma must be >= 1") (fun () ->
      ignore (Bucket.create ~rho:1. ~sigma:0 ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let count_occurrences hay needle =
  let nl = String.length needle in
  let rec go i acc =
    if i + nl > String.length hay then acc
    else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let metrics_counter_and_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x_total" ~help:"things" in
  Metrics.inc c;
  Metrics.inc ~by:2 c;
  check_int "counter value" 3 (Metrics.counter_value c);
  check_bool "get-or-create returns the same" true
    (Metrics.counter_value (Metrics.counter m "x_total") = 3);
  let g = Metrics.gauge m "depth" in
  Metrics.set_gauge g 4.;
  Metrics.add_gauge g (-1.);
  check_bool "gauge value" true (Metrics.gauge_value g = 3.);
  check_bool "peak survives the decrement" true (Metrics.gauge_peak g = 4.);
  let out = Metrics.render m in
  check_bool "HELP line" true (contains out "# HELP x_total things\n");
  check_bool "TYPE line" true (contains out "# TYPE x_total counter\n");
  check_bool "counter sample" true (contains out "x_total 3\n");
  check_bool "gauge sample" true (contains out "depth 3\n")

let metrics_kind_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: x exists with another kind") (fun () ->
      ignore (Metrics.gauge m "x"))

let metrics_label_family () =
  let m = Metrics.create () in
  Metrics.inc (Metrics.counter m "rsp_total{status=\"200\"}" ~help:"by status");
  Metrics.inc (Metrics.counter m "rsp_total{status=\"404\"}" ~help:"by status");
  let out = Metrics.render m in
  check_int "one TYPE line per family" 1
    (count_occurrences out "# TYPE rsp_total counter\n");
  check_bool "both series" true
    (contains out "rsp_total{status=\"200\"} 1\n"
    && contains out "rsp_total{status=\"404\"} 1\n")

let metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" ~buckets:[ 0.01; 0.1; 1.0 ] in
  List.iter (Metrics.observe h) [ 0.005; 0.005; 0.05; 0.5; 5.0 ];
  check_int "count" 5 (Metrics.histogram_count h);
  let out = Metrics.render m in
  check_bool "cumulative buckets" true
    (contains out "lat_bucket{le=\"0.01\"} 2\n"
    && contains out "lat_bucket{le=\"0.1\"} 3\n"
    && contains out "lat_bucket{le=\"1\"} 4\n"
    && contains out "lat_bucket{le=\"+Inf\"} 5\n");
  check_bool "count line" true (contains out "lat_count 5\n");
  (* p50 falls in the (0.01, 0.1] bucket; quantiles never exceed the last
     finite bound. *)
  let p50 = Metrics.quantile h 0.5 in
  check_bool "p50 in bucket" true (p50 > 0.01 && p50 <= 0.1);
  check_bool "p99 bounded by last finite bucket" true
    (Metrics.quantile h 0.99 <= 1.0);
  check_bool "empty histogram quantile" true
    (Metrics.quantile (Metrics.histogram m "lat2") 0.5 = 0.)

let metrics_snapshot () =
  let m = Metrics.create () in
  Metrics.inc (Metrics.counter m "a_total");
  Metrics.set_gauge (Metrics.gauge m "g") 2.5;
  Metrics.observe (Metrics.histogram m "h") 0.02;
  let snap = Metrics.snapshot m in
  check_bool "counter" true (List.assoc_opt "a_total" snap = Some 1.);
  check_bool "gauge + peak" true
    (List.assoc_opt "g" snap = Some 2.5
    && List.assoc_opt "g_peak" snap = Some 2.5);
  check_bool "histogram summary keys" true
    (List.mem_assoc "h_count" snap && List.mem_assoc "h_sum" snap
   && List.mem_assoc "h_p99" snap)

(* ------------------------------------------------------------------ *)
(* Integration: live daemon on an ephemeral port                       *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  let r = Registry.create () in
  Registry.register r
    {
      Registry.name = "tiny";
      title = "tiny test experiment";
      tags = [];
      spec = [ ("version", Spec.Int 1) ];
      run =
        (fun () ->
          let rb = Registry.Rb.create () in
          Registry.Rb.note rb "hello";
          Registry.Rb.metric rb "answer" 42.;
          Registry.Rb.result rb);
    };
  r

let test_figure =
  {
    Aqt_report.Report.id = "unit";
    title = "unit figure";
    caption = "";
    experiments = [];
    render = (fun _ -> "<svg xmlns=\"http://www.w3.org/2000/svg\"></svg>");
  }

let boot ?(rho = 10_000.) ?(sigma = 100) ?(workers = 2) ?registry ?figures () =
  Server.start ?registry ?figures
    {
      Server.default_config with
      Server.port = 0;
      workers;
      rho;
      sigma;
      read_timeout = 2.;
      write_timeout = 2.;
      campaign_dir = temp_dir ();
      snapshot_every = 0.;
      journal = false;
      quiet = true;
    }

let with_server ?rho ?sigma ?workers ?registry ?figures f =
  let srv = boot ?rho ?sigma ?workers ?registry ?figures () in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let get ?meth ?body srv path =
  match Http.request ?meth ?body ~timeout:10. ~port:(Server.port srv) path with
  | Ok r -> r
  | Error e -> Alcotest.failf "request %s failed: %s" path e

let serve_basic_endpoints () =
  with_server (fun srv ->
      let r = get srv "/healthz" in
      check_int "healthz status" 200 r.Http.status;
      check_string "healthz body" "ok\n" r.Http.body;
      let r = get srv "/" in
      check_bool "index mentions endpoints" true (contains r.Http.body "/sweep");
      check_int "unknown path" 404 (get srv "/nope").Http.status;
      check_int "unknown method" 405 (get ~meth:"DELETE" srv "/healthz").Http.status;
      let r = get ~meth:"HEAD" srv "/healthz" in
      check_int "HEAD status" 200 r.Http.status;
      check_string "HEAD has no body" "" r.Http.body;
      check_bool "HEAD keeps content-length" true
        (List.assoc_opt "content-length" r.Http.resp_headers = Some "3"))

let serve_metrics_endpoint () =
  with_server (fun srv ->
      ignore (get srv "/healthz");
      let r = get srv "/metrics" in
      check_int "status" 200 r.Http.status;
      check_bool "prometheus content type" true
        (match List.assoc_opt "content-type" r.Http.resp_headers with
        | Some ct -> contains ct "version=0.0.4"
        | None -> false);
      let b = r.Http.body in
      check_bool "request counter family" true
        (contains b "# TYPE serve_requests_total counter");
      check_bool "latency histogram" true
        (contains b "serve_request_seconds_bucket{le=");
      check_bool "queue depth gauge" true (contains b "serve_queue_depth");
      check_bool "per-status series" true
        (contains b "serve_responses_total{status=\"200\"}");
      check_bool "per-worker gc series" true
        (contains b "serve_worker_minor_words{worker=\"0\"}"))

let sweep_path = "/sweep?network=ring:6&d=3&horizon=300&rates=1/4&policy=fifo"

let body_json r = Jsonx.of_string r.Http.body

let cached_flag r =
  match Jsonx.member "cached" (body_json r) with
  | Some (Jsonx.Bool b) -> b
  | _ -> Alcotest.fail "no cached flag in response"

let serve_sweep_cached () =
  with_server (fun srv ->
      let cold = get srv sweep_path in
      check_int "cold status" 200 cold.Http.status;
      check_bool "cold computes" false (cached_flag cold);
      let warm = get srv sweep_path in
      check_bool "warm is a cache hit" true (cached_flag warm);
      (* The POST body spells the same spec, so it must hit the same key. *)
      let post =
        get ~meth:"POST"
          ~body:
            {|{"network":"ring:6","d":3,"horizon":300,"rates":["1/4"],"policies":["fifo"]}|}
          srv "/sweep"
      in
      check_int "post status" 200 post.Http.status;
      check_bool "post hits the same cache key" true (cached_flag post);
      (* and the payload carries the verdict table *)
      check_bool "table present" true (contains cold.Http.body "serve_sweep"))

let serve_sweep_rejects () =
  with_server (fun srv ->
      let expect_400 path =
        check_int (Printf.sprintf "400 for %s" path) 400 (get srv path).Http.status
      in
      expect_400 "/sweep?horizon=0";
      expect_400 "/sweep?horizon=999999999";
      expect_400 "/sweep?policy=quantum";
      expect_400 "/sweep?rates=one/two";
      expect_400 "/sweep?network=torus:4";
      expect_400 "/sweep?d=banana";
      let r = get ~meth:"POST" ~body:"{not json" srv "/sweep" in
      check_int "bad JSON body" 400 r.Http.status;
      let r = get ~meth:"POST" ~body:"[1,2]" srv "/sweep" in
      check_int "non-object body" 400 r.Http.status)

let serve_experiment_cached () =
  with_server ~registry:(test_registry ()) (fun srv ->
      check_int "unknown experiment" 404 (get srv "/experiment/nope").Http.status;
      let cold = get srv "/experiment/tiny" in
      check_int "cold status" 200 cold.Http.status;
      check_bool "cold computes" false (cached_flag cold);
      check_bool "result payload carries metrics" true
        (contains cold.Http.body "answer");
      let warm = get srv "/experiment/tiny" in
      check_bool "warm is a cache hit" true (cached_flag warm))

let serve_figure () =
  with_server ~figures:[ test_figure ] (fun srv ->
      check_int "unknown figure" 404 (get srv "/figure/nope").Http.status;
      let r = get srv "/figure/unit" in
      check_int "status" 200 r.Http.status;
      check_bool "svg content type" true
        (List.assoc_opt "content-type" r.Http.resp_headers
        = Some "image/svg+xml");
      check_bool "svg body" true (String.starts_with ~prefix:"<svg" r.Http.body);
      let again = get srv "/figure/unit" in
      check_string "memoized render is identical" r.Http.body again.Http.body)

let serve_simulate_seeded () =
  with_server (fun srv ->
      let path =
        "/simulate?network=ring:6&policy=fifo&rate=1/4&horizon=500&seed=11"
      in
      let a = get srv path and b = get srv path in
      check_int "status" 200 a.Http.status;
      check_string "same seed, same run" a.Http.body b.Http.body;
      (match Jsonx.member "injected" (body_json a) with
      | Some (Jsonx.Int n) -> check_bool "injected packets" true (n > 0)
      | _ -> Alcotest.fail "no injected field");
      (* Without a seed the worker draws one from its own stream and
         reports it. *)
      let r = get srv "/simulate?horizon=200" in
      match Jsonx.member "seed" (body_json r) with
      | Some (Jsonx.Int _) -> ()
      | _ -> Alcotest.fail "no seed reported")

(* The cheapest admitted endpoint: /healthz is fast-path (bypasses
   admission), so capacity tests drive a tiny seeded /simulate. *)
let sim_tiny_path = "/simulate?network=ring:6&policy=fifo&rate=1/4&horizon=200&seed=3"

(* Below capacity: an admissible client stream is never shed (the serving
   layer's Theorem 4.1 analogue). *)
let serve_below_capacity () =
  with_server ~rho:10_000. ~sigma:100 (fun srv ->
      let statuses =
        List.concat_map Domain.join
          (List.init 3 (fun _ ->
               Domain.spawn (fun () ->
                   List.init 10 (fun _ -> (get srv sim_tiny_path).Http.status))))
      in
      check_int "every request answered 200" 30
        (List.length (List.filter (Int.equal 200) statuses)))

(* Above capacity: bounded shedding, no hangs, queue bounded by sigma. *)
let serve_above_capacity () =
  with_server ~rho:25. ~sigma:5 (fun srv ->
      let statuses =
        List.init 60 (fun _ ->
            match
              Http.request ~timeout:10. ~port:(Server.port srv) sim_tiny_path
            with
            | Ok r -> r.Http.status
            | Error _ -> -1)
      in
      let n s = List.length (List.filter (Int.equal s) statuses) in
      check_int "no hangs or dropped responses" 0 (n (-1));
      check_bool "some served" true (n 200 > 0);
      check_bool "some shed with 429" true (n 429 > 0);
      check_bool "nothing but 200/429/503" true
        (List.for_all (fun s -> s = 200 || s = 429 || s = 503) statuses);
      let m = Server.metrics srv in
      check_bool "shed counter matches" true
        (Metrics.counter_value (Metrics.counter m "serve_shed_total") = n 429);
      check_bool "queue peak bounded by sigma" true
        (Metrics.gauge_peak (Metrics.gauge m "serve_queue_depth") <= 5.))

(* Malformed-request fuzz: random garbage must never hang a worker or kill
   the daemon — every connection ends in a response or a clean close. *)
let serve_malformed_fuzz () =
  with_server (fun srv ->
      let port = Server.port srv in
      let rng = Prng.create 0xF022 in
      let exchange bytes =
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> close_quietly fd)
          (fun () ->
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 8.;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO 8.;
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            (try ignore (Unix.write fd bytes 0 (Bytes.length bytes))
             with Unix.Unix_error _ -> ());
            (try Unix.shutdown fd Unix.SHUTDOWN_SEND
             with Unix.Unix_error _ -> ());
            let buf = Bytes.create 4096 in
            let rec drain () =
              match Unix.read fd buf 0 4096 with
              | 0 -> true
              | _ -> drain ()
              | exception
                  Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                  true
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  false (* deadline expired: the server hung on us *)
            in
            drain ())
      in
      for case = 1 to 12 do
        let len = Prng.int rng 200 in
        let bytes =
          Bytes.init len (fun _ ->
              (* bias toward structure so some cases get past the first
                 line: spaces, CRLF, header-ish colons *)
              match Prng.int rng 6 with
              | 0 -> ' '
              | 1 -> '\r'
              | 2 -> '\n'
              | 3 -> ':'
              | _ -> Char.chr (Prng.int rng 256))
        in
        check_bool
          (Printf.sprintf "fuzz case %d terminates" case)
          true (exchange bytes)
      done;
      (* the daemon survived all of it *)
      check_int "still alive" 200 (get srv "/healthz").Http.status)

(* Graceful shutdown: in-flight requests complete, then the port closes. *)
let serve_graceful_drain () =
  let srv = boot () in
  let port = Server.port srv in
  let m = Server.metrics srv in
  let accepted = Metrics.counter m "serve_requests_total" in
  let before = Metrics.counter_value accepted in
  let client =
    Domain.spawn (fun () ->
        Http.request ~timeout:10. ~port
          "/simulate?network=ring:8&policy=fifo&rate=1/4&horizon=200000&seed=3")
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while
    Metrics.counter_value accepted <= before
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.002
  done;
  Server.request_stop srv;
  (match Domain.join client with
  | Ok r ->
      check_int "in-flight request completed" 200 r.Http.status;
      check_bool "with a full body" true (String.length r.Http.body > 0)
  | Error e -> Alcotest.failf "in-flight request failed: %s" e);
  Server.wait srv;
  check_bool "stopped" true (Server.stopped srv);
  (match Http.request ~timeout:2. ~port "/healthz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "port should be closed after shutdown");
  Server.stop srv (* idempotent *)

(* The daemon journals Snapshot events with its metrics. *)
let serve_journal_snapshot () =
  let dir = temp_dir () in
  let srv =
    Server.start
      {
        Server.default_config with
        Server.port = 0;
        workers = 1;
        rho = 10_000.;
        sigma = 100;
        read_timeout = 2.;
        write_timeout = 2.;
        campaign_dir = dir;
        snapshot_every = 3600.;
        journal = true;
        quiet = true;
      }
  in
  ignore (get srv "/healthz");
  Server.stop srv;
  match Journal.files ~dir with
  | [] -> Alcotest.fail "no journal written"
  | file :: _ -> (
      let events = Journal.load file in
      match
        List.filter_map
          (function
            | Journal.Snapshot { label; values; _ } -> Some (label, values)
            | _ -> None)
          events
      with
      | [] -> Alcotest.fail "no snapshot event"
      | (label, values) :: _ ->
          check_string "label" "serve.metrics" label;
          check_bool "request counter in snapshot" true
            (List.assoc_opt "serve_requests_total" values = Some 1.))

(* ------------------------------------------------------------------ *)
(* Incremental parser: pipelined requests, arbitrary chunk boundaries  *)
(* ------------------------------------------------------------------ *)

(* Whatever the read boundaries, a pipelined byte stream must parse
   into exactly the requests that were encoded, in order. *)
let parser_chunking_qcheck =
  QCheck.Test.make ~name:"pipelined parse is chunking-invariant" ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 5)
          (QCheck.pair (QCheck.int_range 0 3) (QCheck.int_range 0 60)))
       (QCheck.list (QCheck.int_range 1 13)))
    (fun (specs, cuts) ->
      let reqs =
        List.mapi
          (fun i (kind, n) ->
            let path = Printf.sprintf "/p%d?i=%d" kind i in
            match kind with
            | 0 -> ("GET", path, None, [])
            | 1 -> ("POST", path, Some (String.make n 'b'), [])
            | 2 -> ("GET", path, None, [ ("x-pad", String.make n 'x') ])
            | _ -> ("HEAD", path, None, []))
          specs
      in
      let wire =
        String.concat ""
          (List.map
             (fun (meth, path, body, req_headers) ->
               Http.encode_request ~meth ~req_headers ?body path)
             reqs)
      in
      let p = Http.Parser.create () in
      let parsed = ref [] in
      let drain () =
        let continue = ref true in
        while !continue do
          match Http.Parser.next p with
          | `Request r -> parsed := r :: !parsed
          | `Await -> continue := false
          | `Error e ->
              QCheck.Test.fail_reportf "parse error: %s"
                (Http.error_to_string e)
        done
      in
      let cuts = if cuts = [] then [ 1 ] else cuts in
      let pos = ref 0 and ci = ref 0 in
      while !pos < String.length wire do
        let len =
          min (List.nth cuts (!ci mod List.length cuts))
            (String.length wire - !pos)
        in
        Http.Parser.feed_string p (String.sub wire !pos len);
        pos := !pos + len;
        incr ci;
        drain ()
      done;
      let parsed = List.rev !parsed in
      List.length parsed = List.length reqs
      && List.for_all2
           (fun (meth, _, body, _) (r : Http.request) ->
             r.Http.meth = meth
             && r.Http.body = Option.value body ~default:""
             && String.starts_with ~prefix:"/p" r.Http.path)
           reqs parsed)

(* ------------------------------------------------------------------ *)
(* Timer wheel (fake clock)                                            *)
(* ------------------------------------------------------------------ *)

module Timewheel = Aqt_serve.Timewheel

let timewheel_fires_by_deadline () =
  let w = Timewheel.create ~slots:16 ~tick:0.1 ~now:0. () in
  Timewheel.add w ~deadline:0.25 "late";
  Timewheel.add w ~deadline:0.05 "early";
  Timewheel.add w ~deadline:10.0 "far";
  check_int "three pending" 3 (Timewheel.pending w);
  let fired = ref [] in
  let adv now = Timewheel.advance w ~now (fun x -> fired := x :: !fired) in
  adv 0.1;
  check_bool "only the early deadline fired" true (!fired = [ "early" ]);
  adv 0.3;
  check_bool "then the late one" true (!fired = [ "late"; "early" ]);
  (* An entry beyond the wheel's span recirculates until its time. *)
  adv 9.9;
  check_bool "far future not fired early" false (List.mem "far" !fired);
  check_int "still parked" 1 (Timewheel.pending w);
  adv 10.1;
  check_bool "fires once due" true (List.mem "far" !fired);
  check_int "empty" 0 (Timewheel.pending w)

let timewheel_same_slot_order () =
  let w = Timewheel.create ~slots:8 ~tick:1.0 ~now:0. () in
  for i = 1 to 20 do
    Timewheel.add w ~deadline:(float_of_int i *. 0.049) i
  done;
  let fired = ref [] in
  Timewheel.advance w ~now:0.5 (fun x -> fired := x :: !fired);
  check_int "partial batch" 10 (List.length !fired);
  Timewheel.advance w ~now:2.0 (fun x -> fired := x :: !fired);
  check_int "the rest" 20 (List.length !fired);
  check_int "nothing pending" 0 (Timewheel.pending w)

let timewheel_rearm_during_advance () =
  (* Regression: a fire callback that re-arms with an already-due deadline
     used to file against the stale hand, landing in a slot the sweep had
     already drained — and firing one full wheel revolution late.  The
     re-armed deadline hashes into the very slot being drained, the
     nastiest case: it must fire in this advance. *)
  let w = Timewheel.create ~slots:8 ~tick:1.0 ~now:0. () in
  let fired = ref [] in
  Timewheel.add w ~deadline:0.2 "first";
  Timewheel.advance w ~now:0.5 (fun x ->
      fired := x :: !fired;
      if x = "first" then Timewheel.add w ~deadline:0.4 "rearmed");
  check_bool "re-armed due entry fires in the same advance" true
    (!fired = [ "rearmed"; "first" ]);
  check_int "nothing left behind" 0 (Timewheel.pending w);
  (* A re-arm into a future slot of the same sweep also fires now... *)
  let fired = ref [] in
  Timewheel.add w ~deadline:1.2 "a";
  Timewheel.advance w ~now:3.5 (fun x ->
      fired := x :: !fired;
      if x = "a" then Timewheel.add w ~deadline:2.5 "b");
  check_bool "chained deadline crossed later in the sweep" true
    (!fired = [ "b"; "a" ]);
  (* ...while a re-arm beyond [now] waits for its own slot, exactly one
     slot boundary away, not a revolution away. *)
  let fired = ref [] in
  Timewheel.add w ~deadline:4.2 "c";
  Timewheel.advance w ~now:4.5 (fun x ->
      fired := x :: !fired;
      if x = "c" then Timewheel.add w ~deadline:4.8 "d");
  check_bool "not-yet-due re-arm does not fire early" true (!fired = [ "c" ]);
  Timewheel.advance w ~now:5.1 (fun x -> fired := x :: !fired);
  check_bool "and fires at the next slot boundary, not a revolution late"
    true
    (!fired = [ "d"; "c" ])

let timewheel_fire_order_at_slot_boundary () =
  (* Deadlines straddling a slot boundary, advanced exactly onto the
     boundary: the earlier slot's entry fires, the later slot's does not,
     even though both live one tick apart. *)
  let w = Timewheel.create ~slots:4 ~tick:1.0 ~now:0. () in
  let fired = ref [] in
  Timewheel.add w ~deadline:0.9 "before";
  Timewheel.add w ~deadline:1.0 "on";
  Timewheel.add w ~deadline:1.1 "after";
  Timewheel.advance w ~now:1.0 (fun x -> fired := x :: !fired);
  check_bool "boundary advance fires up to and including now" true
    (List.sort compare !fired = [ "before"; "on" ]);
  Timewheel.advance w ~now:2.0 (fun x -> fired := x :: !fired);
  check_bool "next tick collects the remainder" true
    (List.sort compare !fired = [ "after"; "before"; "on" ]);
  check_int "drained" 0 (Timewheel.pending w)

(* ------------------------------------------------------------------ *)
(* Keyed buckets: per-client isolation and LRU eviction (fake clock)   *)
(* ------------------------------------------------------------------ *)

let keyed_bucket_isolation () =
  let now = ref 0. in
  let kb = Bucket.Keyed.create ~now:(fun () -> !now) ~rho:1. ~sigma:2 () in
  check_bool "a bursts sigma" true
    (Bucket.Keyed.try_take kb "a" && Bucket.Keyed.try_take kb "a");
  check_bool "a exhausted" false (Bucket.Keyed.try_take kb "a");
  check_bool "b unaffected by a's exhaustion" true
    (Bucket.Keyed.try_take kb "b" && Bucket.Keyed.try_take kb "b");
  check_bool "b exhausted independently" false (Bucket.Keyed.try_take kb "b");
  now := 1.;
  check_bool "a refills at rho" true (Bucket.Keyed.try_take kb "a");
  check_bool "one token only" false (Bucket.Keyed.try_take kb "a");
  check_int "two live keys" 2 (Bucket.Keyed.keys kb)

let keyed_bucket_lru_eviction () =
  let now = ref 0. in
  let kb =
    Bucket.Keyed.create ~now:(fun () -> !now) ~max_entries:2 ~rho:0.001
      ~sigma:1 ()
  in
  ignore (Bucket.Keyed.try_take kb "a");
  now := 1.;
  ignore (Bucket.Keyed.try_take kb "b");
  now := 2.;
  check_bool "a exhausted (and freshly used)" false
    (Bucket.Keyed.try_take kb "a");
  now := 3.;
  (* Table is full: c's arrival evicts the least-recently-used key, b. *)
  check_bool "c admitted into a fresh bucket" true
    (Bucket.Keyed.try_take kb "c");
  check_int "bounded at max_entries" 2 (Bucket.Keyed.keys kb);
  now := 4.;
  check_bool "a survived that eviction: still exhausted" false
    (Bucket.Keyed.try_take kb "a");
  now := 5.;
  check_bool "c spent its only token" false (Bucket.Keyed.try_take kb "c");
  now := 6.;
  (* b's return is itself an insertion into a full table, evicting the
     least-recently-used of {a, c} — a.  Forgetting a's debt is the
     price of keeping the table bounded. *)
  check_bool "b was evicted: returns with a full bucket" true
    (Bucket.Keyed.try_take kb "b");
  now := 7.;
  check_bool "a's eviction reset its debt" true (Bucket.Keyed.try_take kb "a");
  check_int "still bounded" 2 (Bucket.Keyed.keys kb)

(* ------------------------------------------------------------------ *)
(* Keep-alive and pipelining against a live daemon                     *)
(* ------------------------------------------------------------------ *)

(* Three requests written back to back in one burst; three responses
   must come back in order on the same connection, which stays open for
   a fourth. *)
let serve_pipelined_burst () =
  with_server (fun srv ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> close_quietly fd)
        (fun () ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 8.;
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
          (* No HEAD here: a HEAD response carries Content-Length with no
             body, which a generic response parser cannot re-frame. *)
          let wire =
            Http.encode_request "/healthz"
            ^ Http.encode_request "/"
            ^ Http.encode_request "/nope"
          in
          ignore (Unix.write_substring fd wire 0 (String.length wire));
          let rp = Http.Rparser.create () in
          let buf = Bytes.create 4096 in
          let responses = ref [] in
          let deadline = Unix.gettimeofday () +. 8. in
          while
            List.length !responses < 3 && Unix.gettimeofday () < deadline
          do
            (match Unix.read fd buf 0 4096 with
            | 0 -> Alcotest.fail "server closed a keep-alive connection"
            | n -> Http.Rparser.feed rp buf 0 n
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                ());
            let continue = ref true in
            while !continue do
              match Http.Rparser.next rp with
              | `Response r -> responses := r :: !responses
              | `Await -> continue := false
              | `Error e ->
                  Alcotest.failf "response parse: %s" (Http.error_to_string e)
            done
          done;
          match List.rev !responses with
          | [ a; b; c ] ->
              check_int "first 200" 200 a.Http.status;
              check_string "first body in order" "ok\n" a.Http.body;
              check_int "second 200" 200 b.Http.status;
              check_bool "second is the index" true (contains b.Http.body "/sweep");
              check_int "third answered in order" 404 c.Http.status;
              check_string "third body" "not found\n" c.Http.body;
              check_bool "keep-alive advertised" true
                (List.assoc_opt "connection" a.Http.resp_headers
                = Some "keep-alive");
              (* the connection is still usable *)
              let wire = Http.encode_request "/healthz" in
              ignore (Unix.write_substring fd wire 0 (String.length wire));
              let rec read_one () =
                match Http.Rparser.next rp with
                | `Response r -> r
                | `Await ->
                    (match Unix.read fd buf 0 4096 with
                    | 0 -> Alcotest.fail "closed before fourth response"
                    | n -> Http.Rparser.feed rp buf 0 n);
                    read_one ()
                | `Error e ->
                    Alcotest.failf "fourth response: %s"
                      (Http.error_to_string e)
              in
              check_int "fourth request on the same connection" 200
                (read_one ()).Http.status
          | l -> Alcotest.failf "expected 3 responses, got %d" (List.length l)))

let serve_client_reuse_counts_one_conn () =
  with_server (fun srv ->
      let m = Server.metrics srv in
      let conns = Metrics.counter m "serve_connections_total" in
      let before = Metrics.counter_value conns in
      (match Http.Client.connect ~port:(Server.port srv) () with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok cl ->
          for i = 1 to 10 do
            match Http.Client.request cl "/healthz" with
            | Ok r -> check_int (Printf.sprintf "request %d" i) 200 r.Http.status
            | Error e -> Alcotest.failf "request %d: %s" i e
          done;
          Http.Client.close cl);
      check_int "ten requests, one accept" (before + 1)
        (Metrics.counter_value conns))

(* Per-client admission: one client's burst must not spend another's
   budget.  Keyed on the x-client-id header so one loopback peer can
   impersonate two clients. *)
let serve_per_client_isolation () =
  let srv =
    Server.start
      {
        Server.default_config with
        Server.port = 0;
        workers = 2;
        rho = 10_000.;
        sigma = 100;
        client_rho = 5.;
        client_sigma = 2;
        client_key_header = "x-client-id";
        read_timeout = 2.;
        write_timeout = 2.;
        campaign_dir = temp_dir ();
        snapshot_every = 0.;
        journal = false;
        quiet = true;
      }
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let ask id =
        match
          Http.request ~timeout:10. ~req_headers:[ ("x-client-id", id) ]
            ~port:(Server.port srv) sim_tiny_path
        with
        | Ok r -> r.Http.status
        | Error e -> Alcotest.failf "client %s: %s" id e
      in
      let noisy = List.init 10 (fun _ -> ask "noisy") in
      let n s = List.length (List.filter (Int.equal s) noisy) in
      check_bool "noisy client sheds beyond its own (rho,sigma)" true
        (n 429 > 0 && n 200 >= 2);
      check_int "quiet client has its own full budget" 200 (ask "quiet");
      let m = Server.metrics srv in
      check_bool "sheds charged to the client layer" true
        (Metrics.counter_value
           (Metrics.counter m "serve_shed_client_total")
        = n 429))

(* Fast-path endpoints bypass admission entirely: liveness probes and
   metrics scrapes must answer 200 even when the buckets are drained and
   every admitted endpoint sheds. *)
let serve_fast_path_bypasses_admission () =
  with_server ~rho:0.01 ~sigma:1 (fun srv ->
      check_int "the single token admits one request" 200
        (get srv sim_tiny_path).Http.status;
      check_int "the drained bucket sheds the next" 429
        (get srv sim_tiny_path).Http.status;
      List.iter
        (fun p ->
          check_int (p ^ " answers 200 while shedding") 200
            (get srv p).Http.status)
        [ "/healthz"; "/metrics"; "/" ])

(* An endpoint-layer shed must refund the client token: aggregate
   overload does not charge a client that stayed inside its own
   (rho,sigma) envelope. *)
let serve_endpoint_shed_refunds_client () =
  let srv =
    Server.start
      {
        Server.default_config with
        Server.port = 0;
        workers = 2;
        rho = 0.01;
        sigma = 1;
        client_rho = 5.;
        client_sigma = 2;
        read_timeout = 2.;
        write_timeout = 2.;
        campaign_dir = temp_dir ();
        snapshot_every = 0.;
        journal = false;
        quiet = true;
      }
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let statuses =
        List.init 4 (fun _ -> (get srv sim_tiny_path).Http.status)
      in
      (* One endpoint token, client_sigma = 2: without the refund the
         client bucket would drain by request 3 and start charging the
         client layer. *)
      check_bool "first admitted, rest shed at the endpoint" true
        (statuses = [ 200; 429; 429; 429 ]);
      let m = Server.metrics srv in
      check_int "no shed charged to the client layer" 0
        (Metrics.counter_value (Metrics.counter m "serve_shed_client_total"));
      check_int "all sheds charged to the endpoint bucket" 3
        (Metrics.counter_value (Metrics.counter m "serve_shed_total")))

(* ------------------------------------------------------------------ *)
(* Load generator                                                      *)
(* ------------------------------------------------------------------ *)

module Loadgen = Aqt_serve.Loadgen

(* Quantiles of the loadgen's histogram against a known distribution:
   10k uniform samples over (0,1] interpolate to exact quantiles. *)
let loadgen_percentiles_known_distribution () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "loadgen_request_seconds" in
  for i = 1 to 10_000 do
    Metrics.observe h (float_of_int i /. 10_000.)
  done;
  let close label expect got =
    check_bool
      (Printf.sprintf "%s: |%.4f - %.4f| < 0.01" label got expect)
      true
      (Float.abs (got -. expect) < 0.01)
  in
  close "p50" 0.5 (Metrics.quantile h 0.50);
  close "p99" 0.99 (Metrics.quantile h 0.99);
  close "p999" 0.999 (Metrics.quantile h 0.999);
  let snap = Metrics.snapshot m in
  check_bool "p999 series exported in snapshots" true
    (List.mem_assoc "loadgen_request_seconds_p999" snap)

let loadgen_closed_loop_smoke () =
  with_server ~rho:1_000_000. ~sigma:1000 (fun srv ->
      let r =
        Loadgen.run
          {
            Loadgen.default_config with
            Loadgen.port = Server.port srv;
            conns = 8;
            requests = 2_000;
            pipeline = 4;
          }
      in
      check_int "every request completed" 2_000 r.Loadgen.completed;
      check_int "no errors" 0 r.Loadgen.errors;
      check_int "all admitted under a huge budget" 2_000 r.Loadgen.ok;
      check_bool "quantiles ordered" true
        (r.Loadgen.p50 <= r.Loadgen.p99 && r.Loadgen.p99 <= r.Loadgen.p999);
      check_bool "throughput positive" true (r.Loadgen.throughput > 0.);
      check_bool "histogram counted every response" true
        (Metrics.histogram_count
           (Metrics.histogram r.Loadgen.metrics "loadgen_request_seconds")
        = 2_000))

let loadgen_open_loop_smoke () =
  with_server ~rho:1_000_000. ~sigma:1000 (fun srv ->
      let r =
        Loadgen.run
          {
            Loadgen.default_config with
            Loadgen.port = Server.port srv;
            conns = 8;
            requests = 600;
            mode = Loadgen.Open 2_000.;
          }
      in
      check_int "every scheduled request completed" 600 r.Loadgen.completed;
      check_int "no errors" 0 r.Loadgen.errors;
      (* 600 requests at 2000/s is ~0.3s of schedule *)
      check_bool "duration tracks the schedule" true
        (r.Loadgen.duration >= 0.25 && r.Loadgen.duration < 10.))

let loadgen_report_formats () =
  with_server ~rho:1_000_000. ~sigma:1000 (fun srv ->
      let r =
        Loadgen.run
          {
            Loadgen.default_config with
            Loadgen.port = Server.port srv;
            conns = 2;
            requests = 50;
          }
      in
      let csv = Loadgen.result_csv r in
      List.iter
        (fun key -> check_bool ("csv has " ^ key) true (contains csv key))
        [ "completed"; "throughput_rps"; "p50_s"; "p99_s"; "p999_s"; "shed" ];
      match Loadgen.result_json r with
      | Jsonx.Obj fields ->
          check_bool "json has quantiles" true
            (List.mem_assoc "p999" fields && List.mem_assoc "completed" fields)
      | _ -> Alcotest.fail "result_json should be an object")

let () =
  Alcotest.run "aqt_serve"
    [
      ( "http",
        [
          Alcotest.test_case "percent decode" `Quick http_percent_decode;
          Alcotest.test_case "query parsing" `Quick http_parse_query;
          Alcotest.test_case "request round-trip" `Quick http_request_roundtrip;
          Alcotest.test_case "post body" `Quick http_post_body;
          Alcotest.test_case "tolerances" `Quick http_tolerances;
          Alcotest.test_case "malformed inputs" `Quick http_malformed;
          Alcotest.test_case "size limits" `Quick http_limits;
          Alcotest.test_case "closed peer" `Quick http_closed;
          Alcotest.test_case "response writing" `Quick http_write_response;
          QCheck_alcotest.to_alcotest parser_chunking_qcheck;
        ] );
      ( "timewheel",
        [
          Alcotest.test_case "fires by deadline" `Quick
            timewheel_fires_by_deadline;
          Alcotest.test_case "same-slot batching" `Quick
            timewheel_same_slot_order;
          Alcotest.test_case "re-arm during advance" `Quick
            timewheel_rearm_during_advance;
          Alcotest.test_case "fire order at slot boundary" `Quick
            timewheel_fire_order_at_slot_boundary;
        ] );
      ( "bucket",
        [
          Alcotest.test_case "burst then refill" `Quick bucket_burst_then_refill;
          Alcotest.test_case "(rho,sigma) bound" `Quick bucket_rate_bound;
          Alcotest.test_case "refund clamped at sigma" `Quick
            bucket_refund_clamped;
          Alcotest.test_case "validation" `Quick bucket_validation;
          Alcotest.test_case "keyed isolation" `Quick keyed_bucket_isolation;
          Alcotest.test_case "keyed LRU eviction" `Quick
            keyed_bucket_lru_eviction;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick metrics_counter_and_gauge;
          Alcotest.test_case "kind mismatch" `Quick metrics_kind_mismatch;
          Alcotest.test_case "label families" `Quick metrics_label_family;
          Alcotest.test_case "histogram" `Quick metrics_histogram;
          Alcotest.test_case "snapshot" `Quick metrics_snapshot;
        ] );
      ( "server",
        [
          Alcotest.test_case "basic endpoints" `Quick serve_basic_endpoints;
          Alcotest.test_case "metrics endpoint" `Quick serve_metrics_endpoint;
          Alcotest.test_case "sweep cache" `Quick serve_sweep_cached;
          Alcotest.test_case "sweep rejects bad params" `Quick
            serve_sweep_rejects;
          Alcotest.test_case "experiment cache" `Quick serve_experiment_cached;
          Alcotest.test_case "figure render" `Quick serve_figure;
          Alcotest.test_case "simulate seeded" `Quick serve_simulate_seeded;
          Alcotest.test_case "below capacity all 200" `Quick
            serve_below_capacity;
          Alcotest.test_case "above capacity bounded shed" `Quick
            serve_above_capacity;
          Alcotest.test_case "malformed fuzz" `Quick serve_malformed_fuzz;
          Alcotest.test_case "graceful drain" `Quick serve_graceful_drain;
          Alcotest.test_case "journal snapshot" `Quick serve_journal_snapshot;
          Alcotest.test_case "pipelined burst in order" `Quick
            serve_pipelined_burst;
          Alcotest.test_case "keep-alive reuse" `Quick
            serve_client_reuse_counts_one_conn;
          Alcotest.test_case "per-client isolation" `Quick
            serve_per_client_isolation;
          Alcotest.test_case "fast path bypasses admission" `Quick
            serve_fast_path_bypasses_admission;
          Alcotest.test_case "endpoint shed refunds client token" `Quick
            serve_endpoint_shed_refunds_client;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "percentiles vs known distribution" `Quick
            loadgen_percentiles_known_distribution;
          Alcotest.test_case "closed-loop smoke" `Quick
            loadgen_closed_loop_smoke;
          Alcotest.test_case "open-loop smoke" `Quick loadgen_open_loop_smoke;
          Alcotest.test_case "report formats" `Quick loadgen_report_formats;
        ] );
    ]
