(* Report subsystem: deterministic SVG emission, degenerate plot inputs,
   graph layout, heatmaps, journal readers, and byte-identical report
   generation from a synthetic campaign. *)

module Svg = Aqt_report.Svg
module Plot = Aqt_report.Plot
module Layout = Aqt_report.Layout
module Heatmap = Aqt_report.Heatmap
module Report = Aqt_report.Report
module Registry = Aqt_harness.Registry
module Rb = Aqt_harness.Registry.Rb
module Campaign = Aqt_harness.Campaign
module Journal = Aqt_harness.Journal
module Spec = Aqt_harness.Spec
module G = Aqt.Gadget

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "aqt_report_test_%d_%d" (Unix.getpid ()) !counter)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* A miniature XML well-formedness checker                             *)
(* ------------------------------------------------------------------ *)

(* Enough XML to validate what Svg emits: tags balance, attributes are
   quoted, no stray '<' or '>' in character data (Svg escapes them). *)
let xml_well_formed s =
  let n = String.length s in
  let stack = ref [] in
  let fail = ref None in
  let i = ref 0 in
  (* Skip the declaration. *)
  if n > 1 && s.[0] = '<' && s.[1] = '?' then begin
    match String.index_from_opt s 0 '>' with
    | Some j -> i := j + 1
    | None -> fail := Some "unterminated declaration"
  end;
  while !fail = None && !i < n do
    match s.[!i] with
    | '<' -> (
        match String.index_from_opt s !i '>' with
        | None -> fail := Some "unterminated tag"
        | Some j ->
            let body = String.sub s (!i + 1) (j - !i - 1) in
            (if String.length body = 0 then fail := Some "empty tag"
             else if body.[0] = '/' then begin
               let name = String.sub body 1 (String.length body - 1) in
               match !stack with
               | top :: rest when top = name -> stack := rest
               | top :: _ ->
                   fail :=
                     Some (Printf.sprintf "mismatch: </%s> vs <%s>" name top)
               | [] -> fail := Some ("close without open: " ^ name)
             end
             else begin
               let self_closing = body.[String.length body - 1] = '/' in
               let name_end =
                 match String.index_opt body ' ' with
                 | Some k -> k
                 | None ->
                     String.length body - if self_closing then 1 else 0
               in
               let name = String.sub body 0 name_end in
               (* Attribute values must be double-quoted: an odd quote
                  count means a bare or broken attribute. *)
               let quotes =
                 String.fold_left
                   (fun acc c -> if c = '"' then acc + 1 else acc)
                   0 body
               in
               if quotes mod 2 <> 0 then
                 fail := Some ("odd quote count in <" ^ name ^ ">")
               else if not self_closing then stack := name :: !stack
             end);
            i := j + 1)
    | '>' ->
        fail := Some "stray '>'";
        incr i
    | _ -> incr i
  done;
  match (!fail, !stack) with
  | None, [] -> Ok ()
  | None, top :: _ -> Error ("unclosed <" ^ top ^ ">")
  | Some msg, _ -> Error msg

let check_xml name s =
  match xml_well_formed s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: not well-formed XML: %s" name msg

(* ------------------------------------------------------------------ *)
(* Svg                                                                 *)
(* ------------------------------------------------------------------ *)

let svg_number_formatting () =
  check_string "integer" "1" (Svg.f 1.0);
  check_string "two decimals" "1.25" (Svg.f 1.25);
  check_string "rounded" "1.23" (Svg.f 1.2345);
  check_string "trailing zero trimmed" "1.5" (Svg.f 1.50);
  check_string "negative" "-2.5" (Svg.f (-2.5));
  check_string "negative zero normalized" "0" (Svg.f (-0.001));
  check_string "nan is zero" "0" (Svg.f Float.nan);
  check_string "inf is zero" "0" (Svg.f Float.infinity);
  check_string "neg inf is zero" "0" (Svg.f Float.neg_infinity)

let svg_escaping () =
  let doc =
    Svg.document ~w:10.0 ~h:10.0
      [ Svg.text_at ~x:1.0 ~y:1.0 "a<b & \"c\" 'd'" ]
  in
  check_xml "escaped text" doc;
  check_bool "no raw ampersand" true (contains ~needle:"&amp;" doc);
  check_bool "lt escaped" true (contains ~needle:"&lt;" doc)

let svg_sequential_clamps () =
  check_string "0 is the surface" (Svg.sequential 0.0) Svg.surface;
  check_string "clamped below" (Svg.sequential (-3.0)) (Svg.sequential 0.0);
  check_string "clamped above" (Svg.sequential 9.0) (Svg.sequential 1.0);
  check_string "nan maps to 0" (Svg.sequential Float.nan) (Svg.sequential 0.0);
  (* Monotone-ish smoke: distinct thirds give distinct colors. *)
  check_bool "distinct steps" true
    (Svg.sequential 0.2 <> Svg.sequential 0.6)

(* ------------------------------------------------------------------ *)
(* Plot                                                                *)
(* ------------------------------------------------------------------ *)

let plot_ticks () =
  let t = Plot.ticks ~lo:0.0 ~hi:10.0 ~max_ticks:6 in
  check_bool "covers range" true (List.hd t = 0.0 && List.exists (( = ) 10.0) t);
  check_bool "at most 7 ticks" true (List.length t <= 7);
  check_int "empty interval" 1 (List.length (Plot.ticks ~lo:5.0 ~hi:5.0 ~max_ticks:6));
  check_int "nan interval" 1
    (List.length (Plot.ticks ~lo:Float.nan ~hi:1.0 ~max_ticks:6))

let plot_degenerate_inputs () =
  let r = Plot.render ~title:"empty" [] in
  check_xml "empty series list" r;
  check_bool "notes no data" true (contains ~needle:"no data" r);
  let r = Plot.render ~title:"no points" [ Plot.series "s" [||] ] in
  check_xml "series without points" r;
  check_bool "notes no data" true (contains ~needle:"no data" r);
  let nan_only =
    Plot.render ~title:"nan"
      [ Plot.series "s" [| (Float.nan, 1.0); (1.0, Float.nan) |] ]
  in
  check_xml "nan-only series" nan_only;
  check_bool "nan series renders as no data" true
    (contains ~needle:"no data" nan_only);
  let single =
    Plot.render ~title:"single" [ Plot.series "s" [| (2.0, 3.0) |] ]
  in
  check_xml "single point" single;
  check_bool "single point draws a marker" true
    (contains ~needle:"<circle" single);
  let constant =
    Plot.render ~title:"const"
      [ Plot.series "s" [| (0.0, 5.0); (1.0, 5.0); (2.0, 5.0) |] ]
  in
  check_xml "constant series" constant;
  check_bool "constant series draws a line" true
    (contains ~needle:"<polyline" constant)

let plot_legend_rule () =
  let one =
    Plot.render ~title:"one" [ Plot.series "only" [| (0.0, 1.0); (1.0, 2.0) |] ]
  in
  check_bool "single series has no legend entry" false
    (contains ~needle:">only</text>" one);
  let two =
    Plot.render ~title:"two"
      [
        Plot.series "alpha" [| (0.0, 1.0); (1.0, 2.0) |];
        Plot.series "beta" [| (0.0, 2.0); (1.0, 1.0) |];
      ]
  in
  check_xml "two series" two;
  check_bool "legend names first series" true (contains ~needle:"alpha" two);
  check_bool "legend names second series" true (contains ~needle:"beta" two)

let plot_hbars () =
  let r =
    Plot.hbars ~log_x:true ~x_label:"ns" ~title:"bench"
      [ ("fast", 12.0); ("slow", 140000.0); ("zero", 0.0) ]
  in
  check_xml "hbars" r;
  check_bool "labels present" true (contains ~needle:"slow" r);
  check_xml "empty hbars" (Plot.hbars ~title:"none" [])

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let layout_chain_and_cycle () =
  let chain = G.chain ~n:3 ~m:2 () in
  let r = Layout.render ~title:"chain" chain.G.graph in
  check_xml "chain layout" r;
  check_bool "names the source node" true (contains ~needle:"x0" r);
  check_bool "labels an e-path edge" true (contains ~needle:"e1_1" r);
  check_bool "no feedback arc in a DAG" false (contains ~needle:"<path" r);
  let cyc = G.cyclic ~n:3 ~m:2 () in
  let r = Layout.render ~title:"cycle" cyc.G.graph in
  check_xml "cyclic layout" r;
  check_bool "stitch edge labelled" true (contains ~needle:"e0" r);
  check_bool "stitch drawn as an arc" true (contains ~needle:"<path" r)

(* ------------------------------------------------------------------ *)
(* Heatmap                                                             *)
(* ------------------------------------------------------------------ *)

let count ~needle hay =
  let nl = String.length needle in
  let rec go i acc =
    if i + nl > String.length hay then acc
    else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let heatmap_render () =
  let m = [| [| 0.0; 1.0 |]; [| 2.0; 4.0 |] |] in
  let r =
    Heatmap.render ~title:"hm" ~rows:[ "a"; "b" ] ~cols:[ "t0"; "t1" ] m
  in
  check_xml "heatmap" r;
  check_bool "row label present" true (contains ~needle:">a</text>" r);
  (* The zero cell is skipped: surface rect + 20 colorbar steps + 3 value
     cells. *)
  check_int "cells besides chrome" 24 (count ~needle:"<rect" r);
  let annot =
    [| [| Some "S"; None |]; [| None; Some "G" |] |]
  in
  let r =
    Heatmap.render ~annot ~log_scale:true ~title:"hm" ~rows:[ "a"; "b" ]
      ~cols:[ "t0"; "t1" ] m
  in
  check_xml "annotated log heatmap" r;
  check_bool "annotation on a zero cell still emitted" true
    (contains ~needle:">S</text>" r);
  check_bool "second annotation" true (contains ~needle:">G</text>" r);
  check_xml "empty heatmap"
    (Heatmap.render ~title:"empty" ~rows:[] ~cols:[] [||])

(* ------------------------------------------------------------------ *)
(* Journal readers                                                     *)
(* ------------------------------------------------------------------ *)

let journal_readers () =
  let dir = temp_dir () in
  check_int "no journal dir" 0 (List.length (Journal.files ~dir));
  check_bool "no latest" true (Journal.latest ~dir = None);
  let write name events =
    let w = Journal.create (Filename.concat dir (Filename.concat "journal" name)) in
    List.iter (Journal.write w) events;
    Journal.close w
  in
  let finish ?(trajectory = []) name =
    Journal.Task_finish
      {
        name;
        at = 0.0;
        outcome = Journal.Done;
        duration = 0.1;
        max_queue = None;
        gc_minor_words = None;
        gc_major_words = None;
        trajectory;
      }
  in
  write "run-b.jsonl" [ finish "x" ~trajectory:[ [ ("t", 1.0) ] ] ];
  write "run-a.jsonl" [ finish "x" ];
  check_int "two journals" 2 (List.length (Journal.files ~dir));
  check_bool "sorted oldest first" true
    (match Journal.files ~dir with
    | [ a; b ] -> Filename.basename a = "run-a.jsonl" && Filename.basename b = "run-b.jsonl"
    | _ -> false);
  check_bool "latest is run-b" true
    (match Journal.latest ~dir with
    | Some f -> Filename.basename f = "run-b.jsonl"
    | None -> false);
  let events =
    [
      finish "early" ~trajectory:[ [ ("t", 0.0); ("v", 1.0) ] ];
      finish "empty";
      finish "early" ~trajectory:[ [ ("t", 1.0); ("v", 2.0) ] ];
      finish "late" ~trajectory:[ [ ("t", 0.0) ] ];
    ]
  in
  match Journal.final_trajectories events with
  | [ ("early", tr); ("late", _) ] ->
      check_bool "last trajectory wins" true (tr = [ [ ("t", 1.0); ("v", 2.0) ] ])
  | other ->
      Alcotest.failf "unexpected trajectories: %d entries, order broken"
        (List.length other)

(* ------------------------------------------------------------------ *)
(* Report helpers                                                      *)
(* ------------------------------------------------------------------ *)

let table_parsing () =
  let t =
    {
      Registry.id = "t";
      headers = [ "eps"; "growth"; "ok"; "n" ];
      rows =
        [
          [ "1/5"; "1.85x"; "true"; "42" ];
          [ "1/10"; "1.5x"; "false"; "x" ];
        ];
    }
  in
  let eps = Report.column t "eps" in
  check_bool "ratio parsed" true (Float.abs (eps.(0) -. 0.2) < 1e-9);
  let g = Report.column t "growth" in
  check_bool "growth factor parsed" true (Float.abs (g.(0) -. 1.85) < 1e-9);
  let ok = Report.column t "ok" in
  check_bool "bools parsed" true (ok.(0) = 1.0 && ok.(1) = 0.0);
  let n = Report.column t "n" in
  check_bool "junk is nan" true (Float.is_nan n.(1));
  check_bool "unknown header raises" true
    (match Report.column t "nope" with
    | exception Not_found -> true
    | _ -> false);
  let pts =
    Report.trajectory_points
      [ [ ("t", 0.0); ("v", 1.0) ]; [ ("v", 2.0) ]; [ ("t", 2.0); ("v", 3.0) ] ]
      ~x:"t" ~y:"v"
  in
  check_bool "rows missing keys skipped" true (pts = [| (0.0, 1.0); (2.0, 3.0) |])

let default_figure_set () =
  let figs = Report.default_figures () in
  check_bool "at least 6 figures" true (List.length figs >= 6);
  let ids = List.map (fun (f : Report.figure) -> f.id) figs in
  let unique = List.sort_uniq compare ids in
  check_int "ids unique" (List.length ids) (List.length unique);
  check_bool "figure 3.1 present" true (List.mem "fig_3_1" ids);
  check_bool "figure 3.2 present" true (List.mem "fig_3_2" ids)

(* ------------------------------------------------------------------ *)
(* End-to-end: byte-identical generation from a synthetic campaign     *)
(* ------------------------------------------------------------------ *)

let synthetic_registry () =
  let registry = Registry.create () in
  Registry.register registry
    {
      Registry.name = "syn";
      title = "synthetic";
      tags = [];
      spec = [ ("k", Spec.Int 3) ];
      run =
        (fun () ->
          let rb = Rb.create () in
          Rb.table rb ~id:"syn_table" ~headers:[ "x"; "y" ]
            [ [ "0"; "1" ]; [ "1"; "3" ]; [ "2"; "9" ] ];
          Rb.trajectory rb
            [ [ ("t", 0.0); ("q", 1.0) ]; [ ("t", 10.0); ("q", 4.0) ] ];
          Rb.result rb);
    };
  registry

let synthetic_figures () =
  [
    {
      Report.id = "syn_plot";
      title = "Synthetic table";
      caption = "y against x from the synthetic experiment.";
      experiments = [ "syn" ];
      render =
        (fun ctx ->
          match Report.find_table ctx ~experiment:"syn" ~id:"syn_table" with
          | None -> Plot.render ~title:"missing" []
          | Some t ->
              let x = Report.column t "x" and y = Report.column t "y" in
              Plot.render ~title:"Synthetic table"
                [ Plot.series "y" (Array.map2 (fun a b -> (a, b)) x y) ]);
    };
    {
      Report.id = "syn_traj";
      title = "Synthetic trajectory";
      caption = "the journalled trajectory.";
      experiments = [ "syn" ];
      render =
        (fun ctx ->
          let rows =
            match List.assoc_opt "syn" ctx.Report.trajectories with
            | Some r -> r
            | None -> []
          in
          Plot.render ~title:"Synthetic trajectory"
            [
              Plot.series ~step:true "q"
                (Report.trajectory_points rows ~x:"t" ~y:"q");
            ]);
    };
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let generate_is_deterministic () =
  let campaign_dir = temp_dir () in
  let options =
    { Campaign.default_options with dir = campaign_dir; quiet = true }
  in
  let registry = synthetic_registry () in
  let out1 = temp_dir () and out2 = temp_dir () in
  let gen out =
    Report.generate ~figures:(synthetic_figures ())
      ~bench_csv:(Filename.concat campaign_dir "missing.csv") ~registry
      ~options ~out ()
  in
  (* First run executes the experiment; the second is served from the
     campaign cache — the bytes must not change either way. *)
  let paths1 = gen out1 in
  let paths2 = gen out2 in
  check_int "same file count" (List.length paths1) (List.length paths2);
  check_int "index + one svg per figure" 3 (List.length paths1);
  List.iter2
    (fun p1 p2 ->
      check_string
        (Printf.sprintf "%s identical" (Filename.basename p1))
        (read_file p1) (read_file p2))
    paths1 paths2;
  List.iter
    (fun p ->
      if Filename.check_suffix p ".svg" then check_xml (Filename.basename p) (read_file p))
    paths1;
  let index = read_file (List.hd paths1) in
  check_bool "index embeds the plot figure" true
    (contains ~needle:"![Synthetic table](syn_plot.svg)" index);
  check_bool "index names the experiment" true
    (contains ~needle:"`syn`" index);
  check_bool "trajectory figure has points" true
    (contains ~needle:"<polyline" (read_file (List.nth paths1 2)))

let unknown_figure_rejected () =
  let options =
    { Campaign.default_options with dir = temp_dir (); quiet = true }
  in
  check_bool "unknown figure id raises" true
    (match
       Report.generate ~figures:(synthetic_figures ()) ~only:[ "nope" ]
         ~registry:(synthetic_registry ()) ~options ~out:(temp_dir ()) ()
     with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "aqt_report"
    [
      ( "svg",
        [
          Alcotest.test_case "number formatting" `Quick svg_number_formatting;
          Alcotest.test_case "escaping" `Quick svg_escaping;
          Alcotest.test_case "sequential ramp" `Quick svg_sequential_clamps;
        ] );
      ( "plot",
        [
          Alcotest.test_case "ticks" `Quick plot_ticks;
          Alcotest.test_case "degenerate inputs" `Quick plot_degenerate_inputs;
          Alcotest.test_case "legend rule" `Quick plot_legend_rule;
          Alcotest.test_case "hbars" `Quick plot_hbars;
        ] );
      ( "layout",
        [ Alcotest.test_case "chain and cycle" `Quick layout_chain_and_cycle ] );
      ( "heatmap", [ Alcotest.test_case "render" `Quick heatmap_render ] );
      ( "journal",
        [ Alcotest.test_case "files, latest, trajectories" `Quick journal_readers ] );
      ( "report",
        [
          Alcotest.test_case "table parsing" `Quick table_parsing;
          Alcotest.test_case "default figures" `Quick default_figure_set;
          Alcotest.test_case "byte-identical generation" `Quick
            generate_is_deterministic;
          Alcotest.test_case "unknown figure" `Quick unknown_figure_rejected;
        ] );
    ]
